package repro

import "testing"

func TestFacadePlatforms(t *testing.T) {
	if len(Platforms()) != 2 {
		t.Fatal("expected two platforms")
	}
	if Broadwell().Name != "broadwell" || KNL().Name != "knl" {
		t.Fatal("platform names wrong")
	}
}

func TestFacadeMachineRun(t *testing.T) {
	m, err := NewMachine(Broadwell(), ModeEDRAM)
	if err != nil {
		t.Fatal(err)
	}
	w := NewStream(Broadwell().ScaledBytes(64 << 20))
	r, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if r.GFlops <= 0 || r.Seconds <= 0 {
		t.Fatalf("bad result %+v", r)
	}
	if _, err := NewMachine(Broadwell(), ModeFlat); err == nil {
		t.Fatal("flat mode on Broadwell accepted")
	}
}

func TestFacadeDense(t *testing.T) {
	m, err := NewMachine(KNL(), ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.RunDense(GEMM, 8192, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if r.GFlops < 100 {
		t.Fatalf("GEMM too slow: %v", r.GFlops)
	}
	if _, err := m.RunDense(Cholesky, 8192, 1024); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeWorkloadConstructors(t *testing.T) {
	for _, w := range []Workload{
		NewStream(1 << 20),
		NewStencil(1<<20, 16),
		NewFFT(1 << 20),
	} {
		if w.Flops() <= 0 || w.FootprintBytes() <= 0 {
			t.Fatalf("%s: bad accounting", w.Name())
		}
	}
}

func TestFacadeExperiments(t *testing.T) {
	exps := Experiments()
	if len(exps) < 25 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	rep, err := RunExperiment("table2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Text == "" || len(rep.Findings) == 0 {
		t.Fatal("empty report")
	}
	if _, err := RunExperiment("fig99", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
