#!/bin/sh
# lint-diff.sh — compare opmlint's current findings against the
# committed baseline (scripts/lint-baseline.json). The baseline is the
# accepted debt ledger: [] today, and the gate's job is to keep it
# there. Exits 0 when the findings match the baseline exactly, 1 when
# they drifted (new findings OR fixed ones that should be removed from
# the baseline), 2 when opmlint itself failed to load the tree.
#
# Usage: scripts/lint-diff.sh [package...]     (defaults to ./...)
#        scripts/lint-diff.sh -write-baseline [pkg...] to rewrite the
#        baseline (-update is the historical alias). The baseline is
#        deterministic — findings sorted by file/line/col/check, stable
#        JSON rendering — so regenerating on an unchanged tree is a
#        byte-identical no-op and the committed file never churns.
set -u
cd "$(dirname "$0")/.."

baseline="scripts/lint-baseline.json"

update=0
case "${1:-}" in
-update | -write-baseline)
	update=1
	shift
	;;
esac
pkgs="${*:-./...}"

current="$(mktemp)"
trap 'rm -f "$current"' EXIT

# Exit 1 just means findings exist — that is data here, not failure.
# Exit 2 means the tree would not load/type-check: propagate it.
go run ./cmd/opmlint -json $pkgs >"$current"
status=$?
if [ "$status" -ge 2 ]; then
	echo "lint-diff: opmlint failed (exit $status)" >&2
	exit 2
fi

if [ "$update" -eq 1 ]; then
	cp "$current" "$baseline"
	echo "lint-diff: baseline rewritten ($(grep -c '"check"' "$baseline" || true) findings)"
	exit 0
fi

if diff -u "$baseline" "$current"; then
	echo "lint-diff: findings match baseline"
	exit 0
fi
echo "lint-diff: findings drifted from $baseline" >&2
echo "lint-diff: fix new findings, or run scripts/lint-diff.sh -write-baseline to accept" >&2
exit 1
