#!/bin/sh
# check.sh — the full pre-merge gate: static analysis plus the entire
# test suite under the race detector. The sweep engine is the one
# place this repo runs goroutines, so -race here is what guards the
# parallel/sequential equivalence contract.
#
# Usage: scripts/check.sh [package...]   (defaults to ./...)
set -eu
cd "$(dirname "$0")/.."

pkgs="${*:-./...}"

echo "== go vet $pkgs"
go vet $pkgs

# staticcheck is optional: it is not vendored and this gate must work
# in hermetic containers that cannot install tools. When present it
# runs as a hard check; when absent we say so and move on.
if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck $pkgs"
	staticcheck $pkgs
else
	echo "== staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

echo "== go test -race $pkgs"
go test -race $pkgs

# The store's crash-safety claims rest on its locking discipline; run
# its suite twice under the race detector to shake out ordering flakes.
echo "== go test -race -count=2 ./internal/store"
go test -race -count=2 ./internal/store
