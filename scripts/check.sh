#!/bin/sh
# check.sh — the full pre-merge gate: static analysis plus the entire
# test suite under the race detector. The sweep engine is the one
# place this repo runs goroutines, so -race here is what guards the
# parallel/sequential equivalence contract.
#
# Usage: scripts/check.sh [package...]   (defaults to ./...)
set -eu
cd "$(dirname "$0")/.."

pkgs="${*:-./...}"

echo "== go vet $pkgs"
go vet $pkgs

echo "== go test -race $pkgs"
go test -race $pkgs
