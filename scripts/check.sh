#!/bin/sh
# check.sh — the full pre-merge gate: static analysis plus the entire
# test suite under the race detector. The sweep engine is the one
# place this repo runs goroutines, so -race here is what guards the
# parallel/sequential equivalence contract.
#
# Usage: scripts/check.sh [package...]   (defaults to ./...)
set -eu
cd "$(dirname "$0")/.."

pkgs="${*:-./...}"

echo "== go vet $pkgs"
go vet $pkgs

# opmlint is this repo's own contract linter (cmd/opmlint): it
# mechanizes the determinism, telemetry and resilience rules the
# equivalence suites depend on. It is a hard gate — a finding fails
# the build; legitimate exceptions carry //opmlint:allow annotations
# with reasons (see DESIGN.md §10).
echo "== opmlint $pkgs"
go run ./cmd/opmlint $pkgs

# staticcheck is optional: it is not vendored and this gate must work
# in hermetic containers that cannot install tools. When present it
# runs as a hard check; when absent we say so and move on.
if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck $pkgs"
	staticcheck $pkgs
else
	echo "== staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

# Twin calibration gate: sweep the analytic twin and the exact
# simulator over the quick paper grid and fail if any kernel family's
# MAPE regressed past scripts/calib-baseline.json (10% relative slack
# plus half a point absolute — see internal/twin/calib.Check). A
# deliberate model change re-baselines with `make calib-baseline`.
echo "== twin calibration (cmd/opmcalib -check)"
go run ./cmd/opmcalib -check

# The harness suite is simulator-bound and the race detector costs
# >10x on it (TestTablesTiny alone is ~2 minutes clean and well past
# 20 under -race on a small container), so the default 10m
# per-package timeout has no headroom; 60m keeps a loaded box from
# flaking without masking a genuine hang.
echo "== go test -race $pkgs"
go test -race -timeout 60m $pkgs

# The store's crash-safety claims rest on its locking discipline; run
# its suite twice under the race detector to shake out ordering flakes.
echo "== go test -race -count=2 ./internal/store"
go test -race -count=2 ./internal/store

# Perf-regression gate: re-measure the fixed benchmark roster and
# compare against scripts/bench-baseline.json. The 2x factor
# (BENCH_GATE_FACTOR to override) is deliberately generous — it exists
# to catch algorithmic regressions, not scheduler noise. A deliberate
# perf change re-baselines with `make bench-baseline`.
echo "== bench gate (scripts/bench-json.sh -check)"
scripts/bench-json.sh -check

# Chaos gate: the fault-injection scenarios run explicitly, under the
# race detector, with their fixed fault seeds (every chaos spec pins
# seed=N, so the injected fault set is identical on every run). The
# torn-write scenarios (TestChaosStoreTornWrites and
# TestTornWritesAreAbsorbed) assert the store-corruption counters —
# store/torn_writes and store/write_repairs — are non-zero, so a
# silently disabled injector fails this gate instead of passing
# vacuously.
echo "== chaos suite (go test -race, fixed fault seeds)"
go test -race -count=1 -run 'TestChaos|TestTornWrites|TestCorruptWrites|TestStoreChaos' \
	./internal/harness ./internal/store

# Process-chaos gate: sharded sweeps under injected worker kill -9,
# hangs, torn shard-journal tails and a coordinator crash+resume must
# merge to a store byte-identical to the sequential run
# (TestChaosGateShardedByteIdentity is the acceptance assertion; the
# suite spawns real re-exec'd worker processes).
echo "== process-chaos suite (go test -race ./internal/shard)"
go test -race -count=1 ./internal/shard
