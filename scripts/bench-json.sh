#!/bin/sh
# bench-json.sh — emit the repo's perf trajectory as JSON.
#
# Runs the fixed benchmark roster (sweep-engine overheads, the memory
# simulator's streaming hot loop, twin-vs-exact, store warm/cold, and
# the obs registry/tracer overhead guards) through `go test -bench
# -json`, extracts every "<name> ns/op" result from the test2json
# stream, and writes the sorted {benchmark: ns_per_op} map to
# BENCH_sweep.json.
#
# Usage:
#   scripts/bench-json.sh           # measure, (over)write BENCH_sweep.json
#   scripts/bench-json.sh -check    # measure, then gate against
#                                   # scripts/bench-baseline.json: fail when
#                                   # any baselined benchmark is more than
#                                   # BENCH_GATE_FACTOR (default 2.0) times
#                                   # slower, or disappeared entirely
#
# -check exit codes: 0 ok, 1 perf regression, 2 configuration error
# (missing baseline, a measured benchmark the baseline does not list,
# or a non-numeric BENCH_GATE_FACTOR).
#
# The baseline's absolute numbers are machine-specific; the generous 2x
# factor is what makes the gate portable enough to catch relative
# regressions (an accidental quadratic loop, a lock on the sweep hot
# path) without flaking on hardware drift. After a deliberate perf
# change, re-baseline with `make bench-baseline` and commit the diff.
set -eu
cd "$(dirname "$0")/.."

out="BENCH_sweep.json"
baseline="scripts/bench-baseline.json"
factor="${BENCH_GATE_FACTOR:-2.0}"

# Configuration errors are exit 2, detected before the multi-minute
# measurement; exit 1 is reserved for a genuine perf regression, so CI
# can tell "fix the setup" from "fix the code".
if [ "${1:-}" = "-check" ]; then
	case "$factor" in
	''|.|*[!0-9.]*|*.*.*)
		echo "bench gate: BENCH_GATE_FACTOR must be a positive number, got \"$factor\"" >&2
		exit 2 ;;
	esac
	if ! awk -v f="$factor" 'BEGIN { exit !(f > 0) }'; then
		echo "bench gate: BENCH_GATE_FACTOR must be a positive number, got \"$factor\"" >&2
		exit 2
	fi
	if [ ! -f "$baseline" ]; then
		echo "bench gate: no $baseline committed — run 'make bench-baseline' to create one" >&2
		exit 2
	fi
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

bench() { # package regex benchtime
	echo "== bench $1 ($2, $3)" >&2
	go test -run '^$' -bench "$2" -benchtime "$3" -count 1 -json "$1" >>"$raw"
}

bench ./internal/sweep  'BenchmarkMap(DisabledResilience|IdleResilience|NilInjector)$' 100x
bench ./internal/memsim 'BenchmarkSimStreamingAccess$' 1s
bench ./internal/twin   'BenchmarkTwinVsExact$' 1x
bench .                 'BenchmarkObsOverhead$' 1x
bench .                 'BenchmarkTraceOverhead$' 1x
bench .                 'BenchmarkStoreWarmVsCold$' 1x
bench ./internal/serve  'BenchmarkServeHotPath$' 1s
bench ./internal/shard  'BenchmarkShardMerge$' 5x
bench ./internal/lint   'BenchmarkLintRepo$' 3x

# test2json wraps stdout writes in Output actions, and one benchmark
# result line spans several of them (the name is printed before the
# timing): reassemble the payloads in order, expand the \n/\t escapes,
# then pull each "<name> ... ns/op" line. The GOMAXPROCS suffix is
# stripped — core count is hardware, not code. Sort by name and render
# as a flat JSON object.
sed -n 's/.*"Output":"\(.*\)"}$/\1/p' "$raw" |
awk '{ printf "%s", $0 }' |
sed 's/\\t/ /g; s/\\n/\n/g' |
awk '/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i <= NF; i++)
		if ($i == "ns/op") { print name, $(i - 1); break }
}' | sort | awk '
	BEGIN { print "{" }
	{ lines[NR] = sprintf("  \"%s\": %s", $1, $2) }
	END {
		for (i = 1; i <= NR; i++)
			print lines[i] (i < NR ? "," : "")
		print "}"
	}
' >"$out"

n="$(grep -c '":' "$out")" || n=0
echo "wrote $out ($n benchmarks)"
if [ "$n" -eq 0 ]; then
	echo "bench-json: no benchmark produced output" >&2
	exit 1
fi

[ "${1:-}" = "-check" ] || exit 0

awk -v factor="$factor" -F'"' '
	FNR == 1 { file++ }
	/":/ {
		name = $2
		val = $3
		sub(/^: */, "", val)
		sub(/,? *$/, "", val)
		if (file == 1) base[name] = val + 0
		else cur[name] = val + 0
	}
	END {
		fail = 0
		conf = 0
		for (name in base) {
			if (!(name in cur)) {
				printf "bench gate: %s is baselined but was not measured — restore it or re-baseline\n", name
				conf = 1
				continue
			}
			if (cur[name] > base[name] * factor) {
				printf "bench gate: %s regressed %.2fx (%.0f -> %.0f ns/op, gate %.1fx)\n",
					name, cur[name] / base[name], base[name], cur[name], factor
				fail = 1
			}
		}
		for (name in cur)
			if (!(name in base)) {
				printf "bench gate: %s is absent from the baseline — run make bench-baseline and commit the diff\n", name
				conf = 1
			}
		if (conf) exit 2
		exit fail
	}
' "$baseline" "$out"
echo "bench gate: ok ($out within ${factor}x of $baseline)"
