package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/store"
)

// benchExperiment runs one harness experiment per benchmark iteration.
// Every table and figure of the paper's evaluation has a bench target
// here (DESIGN.md §4 maps them); `go test -bench=.` regenerates the
// whole evaluation at quick scale, and `opmbench -exp all -full` at
// paper scale.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	benchExperimentOpts(b, id, harness.Options{})
}

func benchExperimentOpts(b *testing.B, id string, opt harness.Options) {
	b.Helper()
	e, err := harness.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Findings) == 0 {
			b.Fatalf("%s produced no findings", id)
		}
	}
}

// BenchmarkSweepEngine pits the sweep engine's 1-worker sequential
// baseline against the full GOMAXPROCS pool on a fig9 subsample (the
// simulator-bound sparse sweep the engine exists for). On a
// single-core host both run the same code path; on an N-core host the
// parallel variant should approach N-fold speedup because the matrix
// jobs are independent and the per-worker simulator pool removes all
// shared mutable state.
func BenchmarkSweepEngine(b *testing.B) {
	opt := harness.Options{Stride: 48}
	workers := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		o := opt
		o.Workers = w
		b.Run(fmt.Sprintf("fig9/workers=%d", w), func(b *testing.B) {
			benchExperimentOpts(b, "fig9", o)
		})
	}
}

// BenchmarkObsOverhead measures the cost of a live metrics registry on
// the sweep hot path: the same fig9 subsample with telemetry disabled
// (nil registry — every instrument call is a nil-receiver no-op) and
// enabled (counters, latency/queue-wait histograms, per-level cache
// counters all recording). The enabled variant should stay within a
// couple percent of disabled; the jobs are simulator-bound, so a
// handful of atomic ops per job is noise.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		benchExperimentOpts(b, "fig9", harness.Options{Stride: 48})
	})
	b.Run("enabled", func(b *testing.B) {
		o := harness.Options{Stride: 48, Obs: obs.NewRegistry()}
		benchExperimentOpts(b, "fig9", o)
	})
}

// BenchmarkTraceOverhead measures the causal event tracer on the same
// sweep hot path as BenchmarkObsOverhead: "disabled" (nil tracer —
// every Emit and context lookup is a branch-and-return), "ring"
// (bounded in-memory ring recording every chain), and "jsonl" (ring
// plus the append-only file sink opmbench -trace uses). The ring
// variant should stay within a couple percent of disabled and the
// disabled variant should be indistinguishable from no tracer at all;
// the jobs are simulator-bound, so per-event lock-plus-copy is noise.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		benchExperimentOpts(b, "fig9", harness.Options{Stride: 48})
	})
	b.Run("ring", func(b *testing.B) {
		benchExperimentOpts(b, "fig9", harness.Options{Stride: 48, Trace: obs.NewTracer(0)})
	})
	b.Run("jsonl", func(b *testing.B) {
		tr := obs.NewTracer(0)
		if err := tr.SinkFile(b.TempDir() + "/trace.jsonl"); err != nil {
			b.Fatal(err)
		}
		defer tr.Close()
		benchExperimentOpts(b, "fig9", harness.Options{Stride: 48, Trace: tr})
	})
}

// BenchmarkStoreWarmVsCold quantifies the persistent result store:
// "cold" opens a fresh store per iteration, so every job simulates and
// commits; "warm" runs the same sweep against a prepopulated store, so
// every job is a journal lookup and the sweep pool never starts. The
// gap is the simulation time the store saves on reruns; the cold/none
// gap is the journaling overhead, which should be noise next to the
// simulator-bound jobs.
func BenchmarkStoreWarmVsCold(b *testing.B) {
	opt := harness.Options{Stride: 48}
	e, err := harness.Get("fig9")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, st *store.Store) {
		b.Helper()
		o := opt
		o.Store = st
		rep, err := e.Run(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Findings) == 0 {
			b.Fatal("fig9 produced no findings")
		}
	}
	b.Run("none", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, nil)
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(b.TempDir(), nil)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			run(b, st)
			b.StopTimer()
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		st, err := store.Open(dir, nil)
		if err != nil {
			b.Fatal(err)
		}
		run(b, st) // populate
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(dir, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			run(b, st)
			b.StopTimer()
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
}

func BenchmarkTable2Characteristics(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig5Roofline(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6SteppingModel(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig1GEMMDensity(b *testing.B)       { benchExperiment(b, "fig1") }

func BenchmarkFig7GEMMBroadwell(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8CholeskyBroadwell(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig15GEMMKNL(b *testing.B)          { benchExperiment(b, "fig15") }
func BenchmarkFig16CholeskyKNL(b *testing.B)      { benchExperiment(b, "fig16") }

func BenchmarkFig9SpMVBroadwell(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10SpTRANSBroadwell(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11SpTRSVBroadwell(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig17SpMVKNL(b *testing.B)          { benchExperiment(b, "fig17") }
func BenchmarkFig18SpTRANSKNL(b *testing.B)       { benchExperiment(b, "fig18") }
func BenchmarkFig19SpTRSVKNL(b *testing.B)        { benchExperiment(b, "fig19") }

func BenchmarkFig12StreamBroadwell(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13StencilBroadwell(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14FFTBroadwell(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig23StreamKNL(b *testing.B)        { benchExperiment(b, "fig23") }
func BenchmarkFig24StencilKNL(b *testing.B)       { benchExperiment(b, "fig24") }
func BenchmarkFig25FFTKNL(b *testing.B)           { benchExperiment(b, "fig25") }

func BenchmarkTable4EDRAMSummary(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable5MCDRAMSummary(b *testing.B) { benchExperiment(b, "table5") }

func BenchmarkFig26BroadwellPower(b *testing.B) { benchExperiment(b, "fig26") }
func BenchmarkFig27KNLPower(b *testing.B)       { benchExperiment(b, "fig27") }

func BenchmarkFig28EDRAMTuning(b *testing.B)    { benchExperiment(b, "fig28") }
func BenchmarkFig29MCDRAMTuning(b *testing.B)   { benchExperiment(b, "fig29") }
func BenchmarkFig30HardwareTuning(b *testing.B) { benchExperiment(b, "fig30") }

// Extension and ablation experiments (beyond the paper's figures).
func BenchmarkExtSkylakeMemSide(b *testing.B) { benchExperiment(b, "ext-skylake") }
func BenchmarkExtMultiTenant(b *testing.B)    { benchExperiment(b, "ext-multiuser") }
func BenchmarkAblations(b *testing.B)         { benchExperiment(b, "abl-ablations") }
