# Convenience targets; see scripts/check.sh for the full gate.

.PHONY: build test lint lint-diff check calib calib-baseline chaos shard-chaos bench bench-obs bench-store bench-resilience bench-twin bench-json bench-baseline bench-trace bench-serve bench-shard profile serve

build:
	go build ./...

test:
	go test ./...

# Contract linter (cmd/opmlint): determinism, telemetry and resilience
# rules as a hard gate. Suppress with //opmlint:allow <check> — <reason>.
lint:
	go run ./cmd/opmlint ./...

# Compare current findings against scripts/lint-baseline.json.
lint-diff:
	scripts/lint-diff.sh

# Full pre-merge gate: vet + opmlint + (optional) staticcheck +
# race-enabled tests.
check:
	scripts/check.sh

# Twin calibration: sweep both estimators over the quick paper grid,
# print per-family MAPE / Pearson r, and fail if any family regressed
# past scripts/calib-baseline.json (+10% relative slack).
calib:
	go run ./cmd/opmcalib -check

# Re-measure and overwrite the checked-in calibration baseline. Run
# after a deliberate twin-model change, and commit the diff together
# with the matching twin.DefaultBounds update.
calib-baseline:
	go run ./cmd/opmcalib -write-baseline

# Twin payoff guard: both estimators over the same dense + curve sweep
# slices; the curve cells are where exact simulation pays per access.
bench-twin:
	go test -bench=BenchmarkTwinVsExact -benchtime=3x -run=^$$ ./internal/twin

# Chaos suite: fault-injected sweeps, retry/breaker/deadline paths, and
# store write damage, all under the race detector with fixed fault
# seeds (the specs pin seed=N, so every run injects identically).
chaos:
	go test -race -count=1 -run 'TestChaos|TestTornWrites|TestCorruptWrites|TestStoreChaos' \
		./internal/harness ./internal/store
	go test -race -count=1 -run 'Resilient|Retry|Breaker|Deadline|Cancellation|Injected|Quarantine' \
		./internal/sweep

bench:
	go test -bench=BenchmarkSweepEngine -benchtime=1x -run=^$$ .

# Telemetry overhead guard: enabled registry vs disabled on the same sweep.
bench-obs:
	go test -bench=BenchmarkObsOverhead -benchtime=3x -run=^$$ .

# Result-store payoff: no store vs cold (journal everything) vs warm
# (every job answered from the journal, zero simulation).
bench-store:
	go test -bench=BenchmarkStoreWarmVsCold -benchtime=3x -run=^$$ .

# Tracing overhead guard: nil tracer vs in-memory ring vs ring + JSONL
# sink on the same sweep.
bench-trace:
	go test -bench=BenchmarkTraceOverhead -benchtime=3x -run=^$$ .

# Perf trajectory: run the fixed benchmark roster (sweep, memsim, twin,
# store, obs, trace) and write the sorted {benchmark: ns_per_op} map to
# BENCH_sweep.json.
bench-json:
	scripts/bench-json.sh

# Re-measure and overwrite the committed baseline the check gate
# (scripts/bench-json.sh -check) compares against. Run after a
# deliberate perf change and commit the diff.
bench-baseline:
	scripts/bench-json.sh
	cp BENCH_sweep.json scripts/bench-baseline.json

# Resilience overhead guard: the sweep's production path (nil policy,
# nil injector) vs an armed-but-idle policy vs an empty injector.
bench-resilience:
	go test -bench='BenchmarkMap(DisabledResilience|IdleResilience|NilInjector)' \
		-benchtime=100x -run=^$$ ./internal/sweep

# Run the serving daemon (cmd/opmserve) over the default local store.
# Warm it from a batch run first (go run ./cmd/opmbench -store .opmstore)
# and most queries are sub-millisecond hits.
serve:
	go run ./cmd/opmserve -store .opmstore -addr localhost:8080

# Warm-hit latency guard: the full hot-path request cycle (mux, decode,
# resolve, LRU hit, render, encode) must stay sub-millisecond.
bench-serve:
	go test -bench=BenchmarkServeHotPath -benchtime=1s -run=^$$ ./internal/serve

# Process-chaos suite: sharded sweeps with injected worker kill -9,
# hangs, torn shard-journal tails and coordinator crash+resume — the
# merged store must stay byte-identical to a sequential run. Spawns
# real worker processes (the re-exec'd test binary), so it is excluded
# from the -short quick tier.
shard-chaos:
	go test -race -count=1 ./internal/shard

# Merge-path guard: scanning 4 shard journals of 250 cells each and
# writing the canonical store — the coordinator's serial tail.
bench-shard:
	go test -bench=BenchmarkShardMerge -benchtime=5x -run=^$$ ./internal/shard

# Profile a short dense sweep with live pprof plus a CPU profile and a
# metrics dump under prof/. Inspect with: go tool pprof prof/opmbench.cpu
profile:
	mkdir -p prof
	go run ./cmd/opmbench -exp fig7 -q -pprof localhost:0 \
		-cpuprofile prof/opmbench.cpu -metrics prof/metrics.json
	@echo "wrote prof/opmbench.cpu and prof/metrics.json"
