# Convenience targets; see scripts/check.sh for the full gate.

.PHONY: build test check bench bench-obs bench-store profile

build:
	go build ./...

test:
	go test ./...

# Full pre-merge gate: vet + (optional) staticcheck + race-enabled tests.
check:
	scripts/check.sh

bench:
	go test -bench=BenchmarkSweepEngine -benchtime=1x -run=^$$ .

# Telemetry overhead guard: enabled registry vs disabled on the same sweep.
bench-obs:
	go test -bench=BenchmarkObsOverhead -benchtime=3x -run=^$$ .

# Result-store payoff: no store vs cold (journal everything) vs warm
# (every job answered from the journal, zero simulation).
bench-store:
	go test -bench=BenchmarkStoreWarmVsCold -benchtime=3x -run=^$$ .

# Profile a short dense sweep with live pprof plus a CPU profile and a
# metrics dump under prof/. Inspect with: go tool pprof prof/opmbench.cpu
profile:
	mkdir -p prof
	go run ./cmd/opmbench -exp fig7 -q -pprof localhost:0 \
		-cpuprofile prof/opmbench.cpu -metrics prof/metrics.json
	@echo "wrote prof/opmbench.cpu and prof/metrics.json"
