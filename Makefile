# Convenience targets; see scripts/check.sh for the full gate.

.PHONY: build test check bench

build:
	go build ./...

test:
	go test ./...

# Full pre-merge gate: vet + race-enabled tests.
check:
	scripts/check.sh

bench:
	go test -bench=BenchmarkSweepEngine -benchtime=1x -run=^$$ .
