package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/store"
)

// ErrInjectedCrash is what Run returns when a coord:crash fault fires:
// the coordinator abandons the sweep mid-flight — workers orphaned,
// journals unread, nothing cleaned up — exactly like a real crash. The
// recovery path is a plain re-run of the same Options with Generation
// bumped: resume finds the committed cells in the shard journals.
var ErrInjectedCrash = errors.New("shard: injected coordinator crash")

// Options configures one coordinator run.
type Options struct {
	Spec Spec
	// Dir is the run directory: per-spawn worker stores go to
	// Dir/w-<slot>-g<gen>, the canonical merged store to Dir/store.
	Dir    string
	Shards int
	// Faults is the chaos spec shared by coordinator and workers (the
	// same string rides into every worker manifest, so fire decisions
	// stay a pure function of seed + key).
	Faults string
	// Generation counts coordinator incarnations: a resume after a
	// crash passes 1, which is how coord:crash rules heal.
	Generation int

	Reg   *obs.Registry
	Trace *obs.Tracer
	Log   *slog.Logger

	// HeartbeatEvery is the workers' beat period (default 100ms).
	// StallAfter is how long a frozen heartbeat Seq means hung
	// (default 5s). RestartBase/RestartCap bound the exponential
	// respawn backoff (defaults 50ms/2s); MaxRestarts retires a slot
	// (default 5), sending its remainder to other shards.
	HeartbeatEvery time.Duration
	StallAfter     time.Duration
	RestartBase    time.Duration
	RestartCap     time.Duration
	MaxRestarts    int
}

// Report summarizes one coordinator run.
type Report struct {
	// Cells is the plan size; Resumed counts cells found already
	// committed in shard journals at startup (a prior incarnation's
	// work); Committed counts cells computed this run.
	Cells, Resumed, Committed int
	// Spawns counts worker processes launched; Restarts the subset
	// that replaced a dead or stalled worker; Kills the workers the
	// supervisor killed for staleness; Steals the work-stealing
	// reassignments; Retired the slots that exhausted MaxRestarts.
	Spawns, Restarts, Kills, Steals, Retired int
	Merge                                    MergeReport
	// OutDir is the canonical merged store.
	OutDir string
}

// slot is one supervised shard: its pending cells and, when running,
// the live process.
type slot struct {
	id      int
	pending []Cell // cells this slot still owes (requeued on restart)
	retired bool

	cmd       *exec.Cmd
	gen       int    // spawn generation (proc-fault attempt number)
	dir       string // this spawn's private store dir
	beatPath  string
	cells     []Cell // cells in this spawn's manifest (beat.Next indexes it)
	lastSeq   int64
	lastBeat  time.Time
	restarts  int
	backoff   time.Duration
	respawnAt time.Time // earliest next spawn (backoff gate)
}

type exitEvent struct {
	slot int
	gen  int
	err  error
}

// coordinator is the in-flight state of one Run.
type coordinator struct {
	opt    Options
	plan   *Plan
	inj    *faultinject.Injector
	log    *slog.Logger
	runID  string
	spawns int

	committed map[string]bool
	slots     []*slot
	exitCh    chan exitEvent
	rep       *Report

	mSpawns, mRestarts, mKills, mSteals, mResumed *obs.Counter
}

// Run executes the sharded sweep: resume from any prior incarnation's
// journals, partition the remainder by digest, supervise the worker
// fleet to completion, and merge. It is safe to kill the coordinator
// at any point and call Run again (Generation+1): committed cells are
// never recomputed.
func Run(ctx context.Context, opt Options) (*Report, error) {
	if opt.Shards <= 0 {
		opt.Shards = 1
	}
	if opt.HeartbeatEvery <= 0 {
		opt.HeartbeatEvery = 100 * time.Millisecond
	}
	if opt.StallAfter <= 0 {
		opt.StallAfter = 5 * time.Second
	}
	if opt.RestartBase <= 0 {
		opt.RestartBase = 50 * time.Millisecond
	}
	if opt.RestartCap <= 0 {
		opt.RestartCap = 2 * time.Second
	}
	if opt.MaxRestarts <= 0 {
		opt.MaxRestarts = 5
	}
	if opt.Log == nil {
		opt.Log = slog.New(slog.DiscardHandler)
	}
	plan, err := NewPlan(opt.Spec)
	if err != nil {
		return nil, err
	}
	var inj *faultinject.Injector
	if opt.Faults != "" {
		if inj, err = faultinject.Parse(opt.Faults); err != nil {
			return nil, err
		}
		inj.Bind(opt.Reg)
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}

	c := &coordinator{
		opt:       opt,
		plan:      plan,
		inj:       inj,
		log:       opt.Log,
		runID:     obs.TraceID("shard-run", plan.Cells[0].Digest),
		committed: map[string]bool{},
		exitCh:    make(chan exitEvent, opt.Shards*4),
		rep:       &Report{Cells: len(plan.Cells), OutDir: filepath.Join(opt.Dir, "store")},
		mSpawns:   opt.Reg.Counter("shard/spawns"),
		mRestarts: opt.Reg.Counter("shard/restarts"),
		mKills:    opt.Reg.Counter("shard/kills"),
		mSteals:   opt.Reg.Counter("shard/steals"),
		mResumed:  opt.Reg.Counter("shard/resumed_cells"),
	}
	return c.run(ctx)
}

func (c *coordinator) run(ctx context.Context) (*Report, error) {
	// Resume: scan every prior worker journal read-only. Orphans of a
	// crashed incarnation may still be appending — the scan never
	// truncates, and this incarnation spawns into fresh directories,
	// so no file is ever shared between two writers.
	if err := c.rescan(); err != nil {
		return nil, err
	}
	c.rep.Resumed = len(c.committed)
	c.mResumed.Add(int64(c.rep.Resumed))
	if c.rep.Resumed > 0 {
		c.log.Info("shard resume", "committed", c.rep.Resumed, "cells", len(c.plan.Cells))
	}

	// Partition the outstanding cells by digest. Content-based
	// placement is incarnation-stable: any coordinator derives the
	// same home shard for every cell.
	c.slots = make([]*slot, c.opt.Shards)
	for i := range c.slots {
		c.slots[i] = &slot{id: i}
	}
	for _, cell := range c.plan.Cells {
		if c.committed[cell.Digest] {
			continue
		}
		s := c.slots[ShardOf(cell.Digest, c.opt.Shards)]
		s.pending = append(s.pending, cell)
	}
	for _, s := range c.slots {
		c.opt.Trace.Emit(c.runID, obs.EvShardAssign, "", s.id, 0, fmt.Sprintf("%d:%d", s.id, len(s.pending)))
		if len(s.pending) > 0 {
			if err := c.spawn(s); err != nil {
				return nil, err
			}
		}
	}

	tick := time.NewTicker(c.opt.HeartbeatEvery)
	defer tick.Stop()
	for !c.done() {
		select {
		case <-ctx.Done():
			//opmlint:allow ctxflow — killAll's wait is bounded by SIGKILL, not by worker progress: every killed process's Wait goroutine reports within OS time
			c.killAll()
			return nil, ctx.Err()
		case ev := <-c.exitCh:
			if err := c.onExit(ev); err != nil {
				return nil, err
			}
		case <-tick.C:
			c.checkStalls()
			c.respawnDue()
			c.steal()
			if err := c.deadlocked(); err != nil {
				//opmlint:allow ctxflow — killAll's wait is bounded by SIGKILL, not by worker progress: every killed process's Wait goroutine reports within OS time
				c.killAll()
				return nil, err
			}
		}
		// The injected coordinator crash fires only once real progress
		// exists — resuming from zero would prove nothing. Workers are
		// deliberately left running: the resumed incarnation must cope
		// with orphans appending to their journals.
		if c.progressed() && c.inj.Coord(c.opt.Generation) {
			c.log.Warn("injected coordinator crash", "generation", c.opt.Generation)
			return nil, ErrInjectedCrash
		}
	}

	//opmlint:allow ctxflow — killAll's wait is bounded by SIGKILL, not by worker progress: every killed process's Wait goroutine reports within OS time
	c.killAll()
	//opmlint:allow ctxflow — the merge's journal appends must complete once begun; a frame torn by cancellation is exactly the corruption the store guards against
	rep, err := Merge(c.plan, c.opt.Dir, c.rep.OutDir, c.opt.Reg, c.opt.Trace)
	if err != nil {
		return nil, err
	}
	c.rep.Merge = rep
	c.rep.Committed = len(c.committed) - c.rep.Resumed
	return c.rep, nil
}

// rescan folds every shard journal's committed digests into the
// committed set (read-only; safe against live appenders).
func (c *coordinator) rescan() error {
	dirs, err := shardDirs(c.opt.Dir)
	if err != nil {
		return err
	}
	for _, dir := range dirs {
		entries, _, err := store.ReadJournal(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			c.committed[e.Digest] = true
		}
	}
	return nil
}

// rescanSlot folds one exited spawn's journal into the committed set
// and returns the slot's still-outstanding cells.
func (c *coordinator) rescanSlot(s *slot) ([]Cell, error) {
	entries, _, err := store.ReadJournal(s.dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		c.committed[e.Digest] = true
	}
	var rest []Cell
	for _, cell := range s.pending {
		if !c.committed[cell.Digest] {
			rest = append(rest, cell)
		}
	}
	return rest, nil
}

// spawn launches one worker process for slot s covering s.pending.
// Every spawn gets a fresh private directory — coordinator incarnation
// and spawn sequence in the name — so no worker ever touches a file
// its dead (or orphaned, or hung-but-not-yet-dead) predecessor might
// still hold open, even across a coordinator crash+resume.
func (c *coordinator) spawn(s *slot) error {
	gen := s.restarts
	dir := filepath.Join(c.opt.Dir, fmt.Sprintf("w-%04d-c%d-s%04d", s.id, c.opt.Generation, c.spawns))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	m := manifest{
		Shard:            s.id,
		Generation:       gen,
		StoreDir:         dir,
		Heartbeat:        filepath.Join(dir, "heartbeat.json"),
		HeartbeatEveryNS: int64(c.opt.HeartbeatEvery),
		Spec:             c.opt.Spec,
		Cells:            s.pending,
		Faults:           c.opt.Faults,
	}
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("shard: encoding manifest: %w", err)
	}
	mpath := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(mpath, data, 0o644); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), workerEnv+"="+mpath)
	stderr, err := os.Create(filepath.Join(dir, "stderr.log"))
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		stderr.Close() //opmlint:allow errdiscard — best-effort scrap of the log handle; the start error is returned
		return fmt.Errorf("shard: spawning worker %d: %w", s.id, err)
	}
	s.cmd, s.gen, s.dir = cmd, gen, dir
	s.beatPath = m.Heartbeat
	s.cells = s.pending
	s.lastSeq = 0
	s.lastBeat = time.Now() //opmlint:allow determinism — supervision clocks feed liveness policy only, never results; byte-identity is proven by the chaos suite
	c.spawns++
	c.rep.Spawns++
	c.mSpawns.Inc()
	c.log.Debug("shard spawn", "slot", s.id, "generation", gen, "cells", len(s.pending))
	go func(id, gen int) {
		err := cmd.Wait()
		stderr.Close() //opmlint:allow errdiscard — log file close after the process died; nothing to recover
		c.exitCh <- exitEvent{slot: id, gen: gen, err: err}
	}(s.id, gen)
	return nil
}

// onExit handles one worker exit: harvest its journal, requeue what it
// still owed, and restart (with backoff) or retire the slot.
func (c *coordinator) onExit(ev exitEvent) error {
	s := c.slots[ev.slot]
	if s.cmd == nil || s.gen != ev.gen {
		return nil // stale exit of a spawn already superseded
	}
	s.cmd = nil
	rest, err := c.rescanSlot(s)
	if err != nil {
		return err
	}
	s.pending = rest
	if len(rest) == 0 {
		if ev.err != nil {
			c.log.Debug("shard worker exit after finishing", "slot", s.id, "err", ev.err)
		}
		return nil // slot idle; the steal pass may give it new work
	}
	cause := "exit"
	if ev.err != nil {
		cause = ev.err.Error()
	}
	s.restarts++
	if s.restarts > c.opt.MaxRestarts {
		// Dead shard: reassign its remainder across the surviving
		// slots (digest order keeps the reassignment deterministic).
		s.retired = true
		c.rep.Retired++
		c.log.Warn("shard slot retired", "slot", s.id, "restarts", s.restarts, "reassigned", len(rest))
		c.opt.Trace.Emit(c.runID, obs.EvShardSteal, "", s.id, 0, fmt.Sprintf("%d:retired:%d", s.id, len(rest)))
		return c.reassign(rest)
	}
	s.backoff = c.opt.RestartBase << (s.restarts - 1)
	if s.backoff > c.opt.RestartCap {
		s.backoff = c.opt.RestartCap
	}
	s.respawnAt = time.Now().Add(s.backoff) //opmlint:allow determinism — supervision clocks feed liveness policy only, never results
	c.rep.Restarts++
	c.mRestarts.Inc()
	c.opt.Trace.Emit(c.runID, obs.EvShardRestart, "", s.id, s.backoff, fmt.Sprintf("%d:%d:%s", s.id, s.restarts, cause))
	c.log.Info("shard worker died, restart scheduled", "slot", s.id, "generation", ev.gen,
		"cause", cause, "backoff", s.backoff, "remaining", len(rest))
	return nil
}

// respawnDue launches the restarts whose backoff has elapsed.
func (c *coordinator) respawnDue() {
	now := time.Now() //opmlint:allow determinism — supervision clocks feed liveness policy only, never results
	for _, s := range c.slots {
		if s.cmd == nil && !s.retired && len(s.pending) > 0 && !now.Before(s.respawnAt) {
			if err := c.spawn(s); err != nil {
				// Spawn failures feed the same restart ladder as
				// crashes; the deadlock guard catches the terminal case.
				c.log.Warn("shard respawn failed", "slot", s.id, "err", err)
				s.restarts++
			}
		}
	}
}

// checkStalls kills workers whose heartbeat Seq has frozen for longer
// than StallAfter. The kill produces a normal exit event, so recovery
// rides the existing restart path.
func (c *coordinator) checkStalls() {
	now := time.Now() //opmlint:allow determinism — supervision clocks feed liveness policy only, never results
	for _, s := range c.slots {
		if s.cmd == nil {
			continue
		}
		if b, ok := readBeat(s.beatPath); ok && b.Seq > s.lastSeq {
			s.lastSeq, s.lastBeat = b.Seq, now
			continue
		}
		if now.Sub(s.lastBeat) > c.opt.StallAfter {
			c.log.Warn("shard worker stalled, killing", "slot", s.id, "generation", s.gen,
				"stalled_for", now.Sub(s.lastBeat))
			c.rep.Kills++
			c.mKills.Inc()
			s.cmd.Process.Kill() //opmlint:allow errdiscard — the process may have exited between the stall check and the kill; either way the Wait goroutine reports it
			s.lastBeat = now     // one kill per stall; the exit event resets the slot
		}
	}
}

// steal moves the tail half of the slowest running slot's remaining
// cells onto an idle slot. The victim keeps computing its full list —
// the duplicate work is deliberate (first commit wins nothing; the
// copies are byte-identical and the merge dedupes them), because
// cancelling remotely would race the victim's own progress.
func (c *coordinator) steal() {
	var idle *slot
	for _, s := range c.slots {
		if s.cmd == nil && !s.retired && len(s.pending) == 0 {
			idle = s
			break
		}
	}
	if idle == nil {
		return
	}
	var victim *slot
	victimRest := 0
	for _, s := range c.slots {
		if s.cmd == nil {
			continue
		}
		b, ok := readBeat(s.beatPath)
		if !ok {
			continue
		}
		if rest := len(s.cells) - b.Next; rest > victimRest {
			victim, victimRest = s, rest
		}
	}
	// Stealing one or two cells churns processes for nothing; require
	// enough of a tail that halving it plausibly helps.
	if victim == nil || victimRest < 4 {
		return
	}
	cut := len(victim.cells) - victimRest/2
	stolen := victim.cells[cut:]
	idle.pending = append([]Cell(nil), stolen...)
	c.rep.Steals++
	c.mSteals.Inc()
	c.opt.Trace.Emit(c.runID, obs.EvShardSteal, "", idle.id, 0, fmt.Sprintf("%d:%d:%d", victim.id, idle.id, len(stolen)))
	c.log.Info("shard steal", "from", victim.id, "to", idle.id, "cells", len(stolen))
	if err := c.spawn(idle); err != nil {
		c.log.Warn("shard steal spawn failed", "to", idle.id, "err", err)
		idle.pending = nil
	}
}

// done reports whether every plan cell is committed. It reads only the
// committed set, which exit events and rescans maintain; live workers'
// commits surface when their process exits.
func (c *coordinator) done() bool {
	return len(c.committed) >= len(c.plan.Cells)
}

// progressed reports whether this incarnation has observed any commit
// beyond what it resumed with — the gate on the injected crash.
func (c *coordinator) progressed() bool {
	return len(c.committed) > c.rep.Resumed
}

// reassign spreads a retired slot's cells across the surviving slots'
// pending queues (their next respawn picks them up); with no survivor
// the deadlock guard will surface the failure.
func (c *coordinator) reassign(cells []Cell) error {
	var alive []*slot
	for _, s := range c.slots {
		if !s.retired {
			alive = append(alive, s)
		}
	}
	if len(alive) == 0 {
		return fmt.Errorf("shard: all %d shards retired with %d cells outstanding", len(c.slots), len(cells))
	}
	for i, cell := range cells {
		s := alive[i%len(alive)]
		s.pending = append(s.pending, cell)
	}
	return nil
}

// deadlocked detects the terminal state: outstanding work, but no
// running worker and nothing eligible to spawn.
func (c *coordinator) deadlocked() error {
	outstanding := len(c.plan.Cells) - len(c.committed)
	if outstanding == 0 {
		return nil
	}
	for _, s := range c.slots {
		if s.cmd != nil || (!s.retired && len(s.pending) > 0) {
			return nil
		}
	}
	return fmt.Errorf("shard: %d cells outstanding but every shard is retired or idle", outstanding)
}

// killAll terminates the remaining workers and drains their exit
// events (harvesting final journals), so the merge reads only files no
// live process is appending to.
func (c *coordinator) killAll() {
	live := 0
	for _, s := range c.slots {
		if s.cmd != nil {
			live++
			s.cmd.Process.Kill() //opmlint:allow errdiscard — the worker may already be exiting; the Wait goroutine reports either way
		}
	}
	for live > 0 {
		ev := <-c.exitCh
		s := c.slots[ev.slot]
		if s.cmd != nil && s.gen == ev.gen {
			s.cmd = nil
			live--
			if rest, err := c.rescanSlot(s); err == nil {
				s.pending = rest
			}
		}
	}
}
