package shard

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/store"
	"repro/internal/sweep"
)

// workerEnv is the re-exec protocol: the coordinator launches its own
// binary again with this variable pointing at a manifest file, and
// RunWorkerEnv — called first thing in main — diverts the process into
// the worker loop instead of the CLI.
const workerEnv = "OPMSHARD_WORKER"

// Worker exit codes. 137 mirrors a real kill -9 (128+SIGKILL), so the
// supervisor treats injected and genuine kills identically.
const (
	exitOK       = 0
	exitManifest = 3
	exitFailed   = 4
	exitKilled   = 137
)

// manifest is everything one worker process needs: its identity, its
// slice of the plan, and the chaos spec. Written by the coordinator,
// read once by the re-exec'd child.
type manifest struct {
	// Shard is the slot this worker serves; Generation counts restarts
	// of the slot and is the attempt number of proc-point faults.
	Shard      int `json:"shard"`
	Generation int `json:"generation"`
	// StoreDir is this worker's private journal directory — unique per
	// spawn, so a restarted worker never shares a file with an orphan
	// of its predecessor.
	StoreDir string `json:"store_dir"`
	// Heartbeat is the liveness file the worker rewrites.
	Heartbeat        string `json:"heartbeat"`
	HeartbeatEveryNS int64  `json:"heartbeat_every_ns"`
	Spec             Spec   `json:"spec"`
	Cells            []Cell `json:"cells"`
	Faults           string `json:"faults,omitempty"`
}

// RunWorkerEnv diverts the process into the shard-worker loop when the
// re-exec environment variable is set, and never returns in that case.
// Call it first in main() of any binary the coordinator may re-exec —
// cmd/opmshard does, and the shard test binary's TestMain does.
func RunWorkerEnv() {
	path := os.Getenv(workerEnv)
	if path == "" {
		return
	}
	os.Exit(runWorker(path))
}

// warnf writes a worker diagnostic to stderr, which the coordinator
// captures into the spawn's stderr.log.
func warnf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "shard worker: "+format+"\n", args...) //opmlint:allow errdiscard — stderr diagnostics have nowhere better to report a write failure
}

// runWorker is one worker process's whole life: read the manifest,
// rebuild the plan, compute the assigned cells into a private store
// (each Put a crash-safe checkpoint), heartbeat throughout, and exit.
func runWorker(manifestPath string) int {
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		warnf("%v", err)
		return exitManifest
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		warnf("manifest: %v", err)
		return exitManifest
	}
	plan, err := NewPlan(m.Spec)
	if err != nil {
		warnf("%v", err)
		return exitManifest
	}
	var inj *faultinject.Injector
	if m.Faults != "" {
		if inj, err = faultinject.Parse(m.Faults); err != nil {
			warnf("%v", err)
			return exitManifest
		}
	}
	st, err := store.Open(m.StoreDir, nil)
	if err != nil {
		warnf("%v", err)
		return exitManifest
	}
	st.SetInjector(inj)

	every := time.Duration(m.HeartbeatEveryNS)
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	hb := newBeater(m.Heartbeat, every)
	defer hb.stop()

	ctx := context.Background() //opmlint:allow ctxflow — the worker subprocess's root: its lifetime is bounded by the supervisor's SIGKILL, not a parent context
	w := sweep.NewWorker(m.Shard)
	failed := 0
	for i, c := range m.Cells {
		hb.set(func(b *beat) { b.Next = i })
		switch inj.Proc(c.Key, m.Generation) {
		case faultinject.KindKill:
			// Abrupt death mid-cell: no store close, no final beat —
			// exactly the state a real kill -9 leaves.
			os.Exit(exitKilled)
		case faultinject.KindHang:
			// A hang must look like a live process making no progress:
			// quiesce the beater so Seq freezes, then block forever.
			// The supervisor's staleness detection kills us.
			hb.stop()
			select {}
		case faultinject.KindTorn:
			// Crash mid-append: leave a half-written frame at the
			// journal tail, then die. The merge's read-only scan must
			// step over it without repairing the file.
			tearTail(m.StoreDir)
			os.Exit(exitKilled)
		}
		if _, ok := st.GetRaw(c.Digest); ok {
			hb.set(func(b *beat) { b.Committed++ })
			continue
		}
		pt, err := plan.Compute(ctx, w, c)
		if err != nil {
			warnf("%s fp=%d: %v", c.Kernel, c.FP, err)
			failed++
			hb.set(func(b *beat) { b.Failed++ })
			continue
		}
		if err := st.Put(c.Digest, c.Exp, c.Key, pt); err != nil {
			warnf("%v", err)
			failed++
			hb.set(func(b *beat) { b.Failed++ })
			continue
		}
		hb.set(func(b *beat) { b.Committed++ })
	}
	hb.set(func(b *beat) { b.Next = len(m.Cells); b.Done = true })
	hb.stop()
	if err := st.Close(); err != nil {
		warnf("%v", err)
		return exitFailed
	}
	if failed > 0 {
		return exitFailed
	}
	return exitOK
}

// tearTail appends the first bytes of a frame whose payload never
// made it to disk — a header claiming 64KiB followed by nothing. Best
// effort: the process is about to die either way.
func tearTail(storeDir string) {
	f, err := os.OpenFile(filepath.Join(storeDir, "journal"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], 64<<10)
	binary.BigEndian.PutUint32(hdr[4:8], 0xdeadbeef)
	f.Write(hdr[:]) //opmlint:allow errdiscard — simulating a crash mid-append; a failed partial write is an equally valid torn tail
	f.Close()       //opmlint:allow errdiscard — the process exits abruptly right after; close is best-effort
}

// beater owns the worker's heartbeat file: state changes write through
// immediately, and a background ticker keeps Seq advancing while a
// long cell computes, so "Seq stalled" reliably means hung — never
// merely busy.
type beater struct {
	path  string
	every time.Duration

	mu      sync.Mutex
	cur     beat
	stopped bool
	quit    chan struct{}
	done    chan struct{}
}

func newBeater(path string, every time.Duration) *beater {
	h := &beater{path: path, every: every, quit: make(chan struct{}), done: make(chan struct{})}
	h.set(nil) // publish Seq 1 immediately: spawned and alive
	go h.loop()
	return h
}

func (h *beater) loop() {
	defer close(h.done)
	t := time.NewTicker(h.every)
	defer t.Stop()
	for {
		select {
		case <-h.quit:
			return
		case <-t.C:
			h.set(nil)
		}
	}
}

// set applies a state mutation (nil = liveness tick only), bumps Seq,
// and rewrites the file. Write errors are deliberately swallowed: a
// worker that cannot heartbeat looks stalled and gets killed and
// restarted by the supervisor, which is the correct recovery anyway.
func (h *beater) set(mut func(*beat)) {
	h.mu.Lock()
	if mut != nil {
		mut(&h.cur)
	}
	h.cur.Seq++
	b := h.cur
	h.mu.Unlock()
	writeBeat(h.path, b) //opmlint:allow errdiscard — an unwritable heartbeat reads as a stall; supervisor kill+restart is the intended recovery
}

// stop quiesces the beater (idempotent). After stop, Seq never
// advances again — which is exactly what the injected hang wants the
// supervisor to observe.
func (h *beater) stop() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.stopped = true
	h.mu.Unlock()
	close(h.quit)
	<-h.done
}
