package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/store"
)

// MergeReport tallies one merge pass over the shard journals.
type MergeReport struct {
	// Cells is the number of plan cells folded into the canonical
	// store; Duplicates counts extra byte-identical copies (work
	// stealing and restarts legitimately compute a cell twice).
	Cells      int
	Duplicates int
	// Quarantined counts digests whose shards disagree on the payload
	// bytes. Disagreement means nondeterminism or corruption the CRC
	// missed — there is no safe winner, so the variants go to
	// quarantine.json and the digest is excluded from the canonical
	// store.
	Quarantined int
	// Torn and Corrupt aggregate the damage the read-only scans
	// stepped over across all shard journals.
	Torn    int64
	Corrupt int
}

// quarantineRecord is one conflicting digest in quarantine.json.
type quarantineRecord struct {
	Digest   string            `json:"digest"`
	Exp      string            `json:"exp"`
	Key      string            `json:"key"`
	Variants []json.RawMessage `json:"variants"`
}

// variant is one distinct payload observed for a digest.
type variant struct {
	data   json.RawMessage
	exp    string
	key    string
	copies int
}

// Merge folds every shard journal under runDir into one canonical
// store at outDir, committing in plan order so the merged journal is
// byte-identical to what a sequential run writes. Shard journals are
// scanned read-only (orphaned workers may still be appending); the
// canonical store is built in a temp directory and renamed into place,
// so a crash mid-merge costs only a redo. Missing cells are an error —
// the coordinator calls Merge only once everything is committed.
func Merge(p *Plan, runDir, outDir string, reg *obs.Registry, tr *obs.Tracer) (MergeReport, error) {
	var rep MergeReport
	dirs, err := shardDirs(runDir)
	if err != nil {
		return rep, err
	}
	byDigest := map[string][]*variant{}
	for _, dir := range dirs {
		entries, st, err := store.ReadJournal(dir)
		if err != nil {
			return rep, err
		}
		rep.Torn += st.TruncatedBytes
		rep.Corrupt += st.Corrupt
		for _, e := range entries {
			vs := byDigest[e.Digest]
			found := false
			for _, v := range vs {
				if bytes.Equal(v.data, e.Data) {
					v.copies++
					found = true
					break
				}
			}
			if !found {
				byDigest[e.Digest] = append(vs, &variant{data: e.Data, exp: e.Exp, key: e.Key, copies: 1})
			}
		}
	}

	tmp := outDir + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return rep, fmt.Errorf("shard: %w", err)
	}
	st, err := store.Open(tmp, reg)
	if err != nil {
		return rep, err
	}
	var quarantined []quarantineRecord
	mCells := reg.Counter("shard/merge_cells")
	mDup := reg.Counter("shard/merge_duplicates")
	mQuar := reg.Counter("shard/merge_quarantined")
	for _, c := range p.Cells {
		vs := byDigest[c.Digest]
		if len(vs) == 0 {
			st.Close() //opmlint:allow errdiscard — best-effort scrap of the temp store; the missing-cell error is returned
			return rep, fmt.Errorf("shard: merge: cell %s fp=%d (digest %.12s) missing from every shard journal", c.Kernel, c.FP, c.Digest)
		}
		copies := 0
		for _, v := range vs {
			copies += v.copies
		}
		rep.Duplicates += copies - 1
		if len(vs) > 1 {
			// Conflicting bytes under one content address: no winner
			// exists. Preserve every variant for forensics and keep
			// the canonical store free of the doubt.
			q := quarantineRecord{Digest: c.Digest, Exp: c.Exp, Key: c.Key}
			for _, v := range vs {
				q.Variants = append(q.Variants, v.data)
			}
			sort.Slice(q.Variants, func(i, j int) bool { return bytes.Compare(q.Variants[i], q.Variants[j]) < 0 })
			quarantined = append(quarantined, q)
			rep.Quarantined++
			mQuar.Inc()
			tr.Emit(harness.CellTraceID(c.Digest), obs.EvShardMerge, c.Kernel+"|"+c.Key, -1, 0, "quarantined")
			continue
		}
		// json.Marshal of a RawMessage is the bytes verbatim, so this
		// Put journals exactly what the worker's Put journaled — which
		// is exactly what a sequential run's Put journals.
		if err := st.Put(c.Digest, vs[0].exp, vs[0].key, vs[0].data); err != nil {
			st.Close() //opmlint:allow errdiscard — best-effort scrap of the temp store; the put error is returned
			return rep, err
		}
		rep.Cells++
		mCells.Inc()
		if copies > 1 {
			mDup.Add(int64(copies - 1))
			tr.Emit(harness.CellTraceID(c.Digest), obs.EvShardMerge, c.Kernel+"|"+c.Key, -1, 0, fmt.Sprintf("duplicates=%d", copies-1))
		} else {
			tr.Emit(harness.CellTraceID(c.Digest), obs.EvShardMerge, c.Kernel+"|"+c.Key, -1, 0, "")
		}
	}
	if err := st.Close(); err != nil {
		return rep, err
	}
	if len(quarantined) > 0 {
		qdata, err := json.MarshalIndent(quarantined, "", "  ")
		if err != nil {
			return rep, fmt.Errorf("shard: encoding quarantine: %w", err)
		}
		if err := os.WriteFile(filepath.Join(runDir, "quarantine.json"), qdata, 0o644); err != nil {
			return rep, fmt.Errorf("shard: %w", err)
		}
	}
	// Atomic publish: the canonical store either exists complete or
	// not at all. A pre-existing outDir is a prior (equally complete)
	// merge a crashed coordinator already published — replace it.
	if err := os.RemoveAll(outDir); err != nil {
		return rep, fmt.Errorf("shard: %w", err)
	}
	if err := os.Rename(tmp, outDir); err != nil {
		return rep, fmt.Errorf("shard: %w", err)
	}
	return rep, nil
}

// shardDirs lists every worker store directory under runDir in sorted
// (spawn) order.
func shardDirs(runDir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(runDir, "w-*"))
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	var dirs []string
	for _, m := range matches {
		if fi, err := os.Stat(m); err == nil && fi.IsDir() {
			dirs = append(dirs, m)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
