package shard_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/shard"
)

// TestMain hooks the re-exec protocol into the test binary: when the
// coordinator under test spawns a worker, the child is THIS binary,
// and RunWorkerEnv diverts it into the worker loop before any test
// runs. This is exactly the wiring cmd/opmshard has in production.
func TestMain(m *testing.M) {
	shard.RunWorkerEnv()
	os.Exit(m.Run())
}

// twinSpec is the chaos suite's standard plan: the full curve roster
// on the quick grid under the analytic twin, so one cell costs
// microseconds and a test can afford dozens of process spawns.
func twinSpec() shard.Spec {
	return shard.Spec{Platform: "broadwell", Estimator: "twin"}
}

// fastOpts returns coordinator options tuned for tests: tight
// heartbeats and backoffs so injected failures resolve in tens of
// milliseconds, and a stall window generous enough to never
// false-positive on a loaded CI machine.
func fastOpts(spec shard.Spec, dir, faults string) shard.Options {
	return shard.Options{
		Spec:           spec,
		Dir:            dir,
		Shards:         3,
		Faults:         faults,
		HeartbeatEvery: 20 * time.Millisecond,
		StallAfter:     time.Second,
		RestartBase:    10 * time.Millisecond,
		RestartCap:     200 * time.Millisecond,
		MaxRestarts:    8,
	}
}

// storeBytes reads a store directory's journal and index — the two
// files the byte-identity contract covers.
func storeBytes(t *testing.T, dir string) (journal, index []byte) {
	t.Helper()
	journal, err := os.ReadFile(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	index, err = os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	return journal, index
}

// seqBaseline computes the plan sequentially and returns the baseline
// store bytes every sharded run must reproduce exactly.
func seqBaseline(t *testing.T, spec shard.Spec) (journal, index []byte) {
	t.Helper()
	p, err := shard.NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := shard.RunSequential(context.Background(), p, dir, nil); err != nil {
		t.Fatal(err)
	}
	return storeBytes(t, dir)
}

// requireIdentical asserts the merged store is byte-identical to the
// sequential baseline — journal and index both.
func requireIdentical(t *testing.T, spec shard.Spec, mergedDir string) {
	t.Helper()
	wantJ, wantI := seqBaseline(t, spec)
	gotJ, gotI := storeBytes(t, mergedDir)
	if !bytes.Equal(gotJ, wantJ) {
		t.Fatalf("merged journal diverges from sequential baseline (%d vs %d bytes)", len(gotJ), len(wantJ))
	}
	if !bytes.Equal(gotI, wantI) {
		t.Fatalf("merged index diverges from sequential baseline (%d vs %d bytes)", len(gotI), len(wantI))
	}
}

// TestPlanDeterministic checks the plan is a pure function of the
// spec: two builds agree cell for cell, digests are unique, and the
// order is canonical (kernels in roster order, footprints ascending).
func TestPlanDeterministic(t *testing.T) {
	a, err := shard.NewPlan(twinSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := shard.NewPlan(twinSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) || len(a.Cells) == 0 {
		t.Fatalf("plan sizes: %d vs %d", len(a.Cells), len(b.Cells))
	}
	seen := map[string]bool{}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a.Cells[i], b.Cells[i])
		}
		if seen[a.Cells[i].Digest] {
			t.Fatalf("duplicate digest at cell %d", i)
		}
		seen[a.Cells[i].Digest] = true
		if i > 0 && a.Cells[i].Kernel == a.Cells[i-1].Kernel && a.Cells[i].FP <= a.Cells[i-1].FP {
			t.Fatalf("footprints not ascending within kernel at cell %d", i)
		}
	}

	// A bad kernel or platform fails at plan time, not in a worker.
	if _, err := shard.NewPlan(shard.Spec{Platform: "broadwell", Kernels: []string{"Nope"}}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := shard.NewPlan(shard.Spec{Platform: "mystery"}); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

// TestShardOfPartition checks digest placement: stable, in range, and
// spread across shards (content-hashed digests cannot all collapse
// onto one shard).
func TestShardOfPartition(t *testing.T) {
	p, err := shard.NewPlan(twinSpec())
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	counts := make([]int, n)
	for _, c := range p.Cells {
		s := shard.ShardOf(c.Digest, n)
		if s != shard.ShardOf(c.Digest, n) {
			t.Fatal("placement not stable")
		}
		if s < 0 || s >= n {
			t.Fatalf("shard %d out of range", s)
		}
		counts[s]++
	}
	populated := 0
	for _, c := range counts {
		if c > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("all %d cells landed on one shard: %v", len(p.Cells), counts)
	}
	if shard.ShardOf(p.Cells[0].Digest, 1) != 0 || shard.ShardOf(p.Cells[0].Digest, 0) != 0 {
		t.Fatal("degenerate shard counts must map to 0")
	}
}

// TestSequentialResume checks RunSequential's trivial resume: a second
// run over the same store recomputes nothing and leaves the bytes
// untouched.
func TestSequentialResume(t *testing.T) {
	spec := shard.Spec{Platform: "broadwell", Kernels: []string{"Stream"}, Points: 4, Estimator: "twin"}
	p, err := shard.NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := shard.RunSequential(context.Background(), p, dir, nil); err != nil {
		t.Fatal(err)
	}
	j1, i1 := storeBytes(t, dir)
	if err := shard.RunSequential(context.Background(), p, dir, nil); err != nil {
		t.Fatal(err)
	}
	j2, i2 := storeBytes(t, dir)
	if !bytes.Equal(j1, j2) || !bytes.Equal(i1, i2) {
		t.Fatal("sequential resume rewrote store bytes")
	}
}

// TestShardedCleanByteIdentity is the no-fault half of the contract:
// a 3-shard run with healthy workers merges to exactly the sequential
// bytes.
func TestShardedCleanByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes; excluded from the quick tier")
	}
	spec := twinSpec()
	dir := t.TempDir()
	rep, err := shard.Run(context.Background(), fastOpts(spec, dir, ""))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merge.Quarantined != 0 {
		t.Fatalf("clean run quarantined %d cells", rep.Merge.Quarantined)
	}
	if rep.Committed+rep.Resumed != rep.Cells || rep.Merge.Cells != rep.Cells {
		t.Fatalf("report inconsistent: %+v", rep)
	}
	if rep.Spawns < 2 {
		t.Fatalf("expected a multi-process run, got %d spawns", rep.Spawns)
	}
	requireIdentical(t, spec, rep.OutDir)
}
