// Package shard is the multi-process execution strategy: a coordinator
// partitions a sweep's cell list across N re-exec'd worker processes
// by content digest, supervises them (heartbeat liveness, backoff
// restart, work stealing off the slowest or dead shard), and merges
// the per-shard append-only journals into one canonical store. The
// contract it extends is the repo's oldest: every execution strategy
// yields byte-identical results — warm==cold, parallel==sequential,
// traced==untraced, and now sharded==sequential, at the level of the
// merged journal's bytes (see DESIGN.md §14 and the process-chaos
// suite).
//
// Crash safety is inherited, not reinvented: each worker owns a
// private internal/store journal where every committed cell is a
// checkpoint, so a killed worker loses at most the cell it was
// computing, and a coordinator killed mid-sweep resumes by scanning
// the shard journals read-only (store.ReadJournal) — never reopening a
// file an orphaned worker may still be appending to.
package shard

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/twin"
)

// Spec describes one sharded curve sweep. It is the unit of agreement
// between coordinator and workers — serialized verbatim into every
// worker manifest, so both sides derive the same plan, the same
// digests, and the same store bytes.
type Spec struct {
	// Platform is the curve platform ("broadwell" or "knl").
	Platform string `json:"platform"`
	// Kernels lists the curve kernels to sweep, in plan order. Empty
	// means the full curve roster (Stream, Stencil, FFT).
	Kernels []string `json:"kernels,omitempty"`
	// Points overrides the footprint-grid size (0 keeps the 16-point
	// quick grid, or 32 with Full).
	Points int  `json:"points,omitempty"`
	Full   bool `json:"full,omitempty"`
	// Estimator selects the evaluation policy ("exact", "twin" or
	// "auto"; empty means exact) with TwinMaxErr as auto's tolerance.
	Estimator  string  `json:"estimator,omitempty"`
	TwinMaxErr float64 `json:"twin_max_err,omitempty"`
}

// Cell is one unit of sharded work: a (kernel, footprint) curve cell
// with its full store identity precomputed, so partitioning, skip
// checks, and the merge all key on the digest without re-deriving it.
type Cell struct {
	Kernel string `json:"kernel"`
	FP     int64  `json:"fp"`
	Digest string `json:"digest"`
	Exp    string `json:"exp"`
	Key    string `json:"key"`
}

// Plan is a spec resolved against the platform registry: the full cell
// list in canonical order (kernels in spec order × footprints
// ascending — the exact order a sequential run commits in, which is
// the order the merge replays) plus the compute seam the workers run.
type Plan struct {
	Spec  Spec
	Cells []Cell

	curve *harness.CurveSpec
	est   core.Estimator
}

// DefaultKernels is the curve roster a spec with no kernel list sweeps.
var DefaultKernels = []string{"Stream", "Stencil", "FFT"}

// NewPlan resolves a spec: estimator selection, machine set, footprint
// grid, and the per-cell digests. Both the coordinator and every
// re-exec'd worker call this with the same spec, so disagreement about
// any cell's identity is impossible by construction.
func NewPlan(spec Spec) (*Plan, error) {
	est, err := twin.Select(spec.Estimator, spec.TwinMaxErr)
	if err != nil {
		return nil, err
	}
	cs, err := harness.NewCurveSpec(spec.Platform)
	if err != nil {
		return nil, err
	}
	kernels := spec.Kernels
	if len(kernels) == 0 {
		kernels = DefaultKernels
	}
	fps := cs.Footprints(harness.Options{Full: spec.Full, CurvePoints: spec.Points})
	cfg := cs.ConfigHash()
	p := &Plan{Spec: spec, curve: cs, est: est}
	for _, k := range kernels {
		// Validate the kernel name up front: a bad spec must fail at
		// plan time, not inside a worker process.
		if _, err := cs.Workload(k, fps[0]); err != nil {
			return nil, err
		}
		sweepID := harness.CurveSweepID(k)
		exp := harness.CellFamilyID(est, sweepID)
		for _, fp := range fps {
			key := harness.CurveCellKey(fp)
			p.Cells = append(p.Cells, Cell{
				Kernel: k,
				FP:     fp,
				Digest: harness.CellDigest(est, sweepID, cfg, key),
				Exp:    exp,
				Key:    key,
			})
		}
	}
	return p, nil
}

// Compute evaluates one cell through the plan's estimator — the same
// per-job body the curve figures run, so a sharded worker's result
// bytes match a sequential run's exactly.
func (p *Plan) Compute(ctx context.Context, w *sweep.Worker, c Cell) (harness.CurvePoint, error) {
	return p.curve.ComputeCell(ctx, nil, w, p.est, c.Kernel, c.FP)
}

// ShardOf maps a cell digest to its home shard: the digest's leading
// 32 bits modulo the shard count. Content-based placement means the
// partition is a pure function of the plan — any coordinator
// incarnation, resumed or fresh, assigns every cell to the same shard.
func ShardOf(digest string, shards int) int {
	if shards <= 1 {
		return 0
	}
	// The digest is hex (store.Digest → sha256); its first 8 chars are
	// already uniformly distributed.
	u, err := strconv.ParseUint(digest[:8], 16, 64)
	if err != nil {
		// Not reachable for store digests; fall back to a stable
		// non-hex bucket rather than panicking on foreign input.
		u = uint64(len(digest))
	}
	return int(u % uint64(shards))
}

// RunSequential computes the plan single-process into a store at dir,
// committing in plan order — the byte-identity baseline every sharded
// run is compared against. Cells already in the store are skipped, so
// it is also the trivial resume path.
func RunSequential(ctx context.Context, p *Plan, dir string, reg *obs.Registry) error {
	st, err := store.Open(dir, reg)
	if err != nil {
		return err
	}
	defer st.Close() // guards the error returns; the success path closes explicitly
	w := sweep.NewWorker(0)
	for _, c := range p.Cells {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, ok := st.GetRaw(c.Digest); ok {
			continue
		}
		pt, err := p.Compute(ctx, w, c)
		if err != nil {
			return fmt.Errorf("shard: sequential %s fp=%d: %w", c.Kernel, c.FP, err)
		}
		//opmlint:allow ctxflow — a journal append must complete once begun; the loop checks ctx.Err() between cells, which is the cancellation boundary
		if err := st.Put(c.Digest, c.Exp, c.Key, pt); err != nil {
			return err
		}
	}
	return st.Close()
}
