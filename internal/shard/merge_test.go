package shard_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/shard"
	"repro/internal/store"
)

// fakePlan builds a synthetic plan of n cells — Merge only consumes
// the cell list, so merge unit tests need no simulator.
func fakePlan(n int) *shard.Plan {
	p := &shard.Plan{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("cell-%03d", i)
		p.Cells = append(p.Cells, shard.Cell{
			Kernel: "Fake",
			FP:     int64(i),
			Digest: store.Digest("v", "cfg", "fake", key),
			Exp:    "fake",
			Key:    key,
		})
	}
	return p
}

// writeShard journals the given cells (by index, with value payloads)
// into a worker-style directory under runDir.
func writeShard(t *testing.T, runDir, name string, p *shard.Plan, idx []int, val func(int) any) string {
	t.Helper()
	dir := filepath.Join(runDir, name)
	st, err := store.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range idx {
		c := p.Cells[i]
		if err := st.Put(c.Digest, c.Exp, c.Key, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

type fakeCell struct {
	V int
	S string
}

// TestMergeDedupesAndOrders checks the happy path: overlapping shards
// (work stealing legitimately duplicates cells) merge to one canonical
// store in plan order, duplicates counted, nothing quarantined.
func TestMergeDedupesAndOrders(t *testing.T) {
	p := fakePlan(6)
	run := t.TempDir()
	val := func(i int) any { return fakeCell{V: i, S: "payload"} }
	writeShard(t, run, "w-0000-c0-s0000", p, []int{3, 0, 5}, val)
	writeShard(t, run, "w-0001-c0-s0001", p, []int{1, 4, 3, 2}, val) // 3 duplicated

	out := filepath.Join(run, "store")
	rep, err := shard.Merge(p, run, out, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells != 6 || rep.Duplicates != 1 || rep.Quarantined != 0 {
		t.Fatalf("report: %+v", rep)
	}

	// Canonical order and bytes must match a direct plan-order write.
	want := t.TempDir()
	st, err := store.Open(want, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range p.Cells {
		if err := st.Put(c.Digest, c.Exp, c.Key, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	gotJ, _ := os.ReadFile(filepath.Join(out, "journal"))
	wantJ, _ := os.ReadFile(filepath.Join(want, "journal"))
	if !bytes.Equal(gotJ, wantJ) {
		t.Fatal("merged journal is not byte-identical to a plan-order write")
	}
}

// TestMergeQuarantinesConflicts checks the conflict rule: when two
// shards journal different bytes under one digest, the merge refuses
// to pick a winner — the digest is excluded from the canonical store
// and every variant lands in quarantine.json.
func TestMergeQuarantinesConflicts(t *testing.T) {
	p := fakePlan(3)
	run := t.TempDir()
	writeShard(t, run, "w-0000-c0-s0000", p, []int{0, 1, 2}, func(i int) any { return fakeCell{V: i} })
	writeShard(t, run, "w-0001-c0-s0001", p, []int{1}, func(i int) any { return fakeCell{V: -1} })

	out := filepath.Join(run, "store")
	rep, err := shard.Merge(p, run, out, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells != 2 || rep.Quarantined != 1 {
		t.Fatalf("report: %+v", rep)
	}
	st, err := store.Open(out, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, ok := st.GetRaw(p.Cells[1].Digest); ok {
		t.Fatal("quarantined digest reached the canonical store")
	}
	if _, ok := st.GetRaw(p.Cells[0].Digest); !ok {
		t.Fatal("clean digest missing from the canonical store")
	}

	qdata, err := os.ReadFile(filepath.Join(run, "quarantine.json"))
	if err != nil {
		t.Fatal(err)
	}
	var q []struct {
		Digest   string            `json:"digest"`
		Key      string            `json:"key"`
		Variants []json.RawMessage `json:"variants"`
	}
	if err := json.Unmarshal(qdata, &q); err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[0].Digest != p.Cells[1].Digest || len(q[0].Variants) != 2 {
		t.Fatalf("quarantine.json: %s", qdata)
	}
}

// TestMergeMissingCellFails checks the merge refuses to publish a
// partial canonical store: a plan cell no shard journaled is an error,
// and no output directory appears.
func TestMergeMissingCellFails(t *testing.T) {
	p := fakePlan(3)
	run := t.TempDir()
	writeShard(t, run, "w-0000-c0-s0000", p, []int{0, 2}, func(i int) any { return fakeCell{V: i} })

	out := filepath.Join(run, "store")
	_, err := shard.Merge(p, run, out, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("want missing-cell error, got %v", err)
	}
	if _, serr := os.Stat(out); !os.IsNotExist(serr) {
		t.Fatal("failed merge published an output directory")
	}
}

// TestMergeToleratesTornShardTail checks a shard journal with a torn
// tail (worker crashed mid-append) merges fine from its intact prefix
// — and the merge never repairs the damaged file.
func TestMergeToleratesTornShardTail(t *testing.T) {
	p := fakePlan(4)
	run := t.TempDir()
	val := func(i int) any { return fakeCell{V: i} }
	dirA := writeShard(t, run, "w-0000-c0-s0000", p, []int{0, 1}, val)
	writeShard(t, run, "w-0001-c0-s0001", p, []int{2, 3}, val)

	jpath := filepath.Join(dirA, "journal")
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], 64<<10)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	damaged, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := shard.Merge(p, run, filepath.Join(run, "store"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells != 4 || rep.Torn != int64(len(hdr)) {
		t.Fatalf("report: %+v", rep)
	}
	after, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, damaged) {
		t.Fatal("merge repaired a shard journal it must only read")
	}
}

// BenchmarkShardMerge measures the merge path end to end: scanning 4
// shard journals of 250 cells each and writing the canonical store.
// This is the coordinator's serial tail, so a regression here delays
// every sharded sweep's publish.
func BenchmarkShardMerge(b *testing.B) {
	p := fakePlan(1000)
	run := b.TempDir()
	for s := 0; s < 4; s++ {
		dir := filepath.Join(run, fmt.Sprintf("w-%04d-c0-s%04d", s, s))
		st, err := store.Open(dir, nil)
		if err != nil {
			b.Fatal(err)
		}
		for i := s; i < len(p.Cells); i += 4 {
			c := p.Cells[i]
			if err := st.Put(c.Digest, c.Exp, c.Key, fakeCell{V: i, S: strings.Repeat("x", 160)}); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
	out := filepath.Join(run, "store")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shard.Merge(p, run, out, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
