package shard_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/shard"
)

// The process-chaos suite: every injected process-level failure —
// worker kill -9, worker hang, shard-journal torn tail, coordinator
// crash — and the merged store still comes out byte-identical to the
// sequential single-process run. Each test spawns real worker
// processes (the re-exec'd test binary; see TestMain), so the suite is
// excluded from the -short quick tier and runs under -race in the
// extended CI job.

func runChaos(t *testing.T, faults string) (*shard.Report, shard.Spec, string) {
	t.Helper()
	if testing.Short() {
		t.Skip("spawns worker processes; excluded from the quick tier")
	}
	spec := twinSpec()
	dir := t.TempDir()
	rep, err := shard.Run(context.Background(), fastOpts(spec, dir, faults))
	if err != nil {
		t.Fatal(err)
	}
	return rep, spec, dir
}

// TestProcessChaosKill injects kill -9 into roughly half the cells'
// workers: every shard's first generation dies mid-list, the
// supervisor restarts each with backoff, and the merge is exact.
func TestProcessChaosKill(t *testing.T) {
	rep, spec, _ := runChaos(t, "seed=11,proc:kill@0.5")
	if rep.Restarts == 0 {
		t.Fatalf("kill rate 0.5 caused no restarts: %+v", rep)
	}
	if rep.Merge.Quarantined != 0 {
		t.Fatalf("kills quarantined cells: %+v", rep.Merge)
	}
	requireIdentical(t, spec, rep.OutDir)
}

// TestProcessChaosHang injects hangs: the worker freezes its heartbeat
// and blocks forever, the supervisor's staleness detector kills it,
// and the restart path recovers. Proves liveness detection, not just
// exit handling.
func TestProcessChaosHang(t *testing.T) {
	rep, spec, _ := runChaos(t, "seed=5,proc:hang@0.3")
	if rep.Kills == 0 {
		t.Fatalf("hang rate 0.3 triggered no staleness kills: %+v", rep)
	}
	if rep.Restarts == 0 {
		t.Fatalf("killed workers were not restarted: %+v", rep)
	}
	requireIdentical(t, spec, rep.OutDir)
}

// TestProcessChaosTornTail injects crash-mid-append: workers leave a
// half-written frame at their journal tail and die. The merge's
// read-only scan steps over the torn bytes, the restarted worker
// recomputes the lost cell, and the canonical bytes are exact.
func TestProcessChaosTornTail(t *testing.T) {
	rep, spec, _ := runChaos(t, "seed=9,proc:torn@0.5")
	if rep.Restarts == 0 {
		t.Fatalf("torn rate 0.5 caused no restarts: %+v", rep)
	}
	if rep.Merge.Torn == 0 {
		t.Fatalf("no torn tail reached the merge scan: %+v", rep.Merge)
	}
	requireIdentical(t, spec, rep.OutDir)
}

// TestCoordinatorCrashResume kills the coordinator itself mid-sweep
// (workers become orphans, journals unread) and resumes with a fresh
// incarnation: committed cells are never recomputed, orphan journals
// are read without being truncated, and the merge is exact.
func TestCoordinatorCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes; excluded from the quick tier")
	}
	spec := twinSpec()
	dir := t.TempDir()
	opt := fastOpts(spec, dir, "seed=2,coord:crash@1")

	if _, err := shard.Run(context.Background(), opt); !errors.Is(err, shard.ErrInjectedCrash) {
		t.Fatalf("first incarnation: want ErrInjectedCrash, got %v", err)
	}

	opt.Generation = 1 // the crash rule heals for the resumed incarnation
	rep, err := shard.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed == 0 {
		t.Fatalf("resume recomputed everything (crash fired before any commit?): %+v", rep)
	}
	if rep.Merge.Quarantined != 0 {
		t.Fatalf("resume quarantined cells: %+v", rep.Merge)
	}
	requireIdentical(t, spec, rep.OutDir)
}

// TestChaosGateShardedByteIdentity is the acceptance gate: worker
// kill -9, shard-journal torn tails, AND a coordinator crash+resume in
// one run — and the merged store is still byte-identical to the
// sequential single-process run.
func TestChaosGateShardedByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes; excluded from the quick tier")
	}
	spec := twinSpec()
	dir := t.TempDir()
	reg := obs.NewRegistry()
	opt := fastOpts(spec, dir, "seed=3,proc:kill@0.4,proc:torn@0.3,coord:crash@1")
	opt.Reg = reg

	if _, err := shard.Run(context.Background(), opt); !errors.Is(err, shard.ErrInjectedCrash) {
		t.Fatalf("first incarnation: want ErrInjectedCrash, got %v", err)
	}

	opt.Generation = 1
	rep, err := shard.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merge.Quarantined != 0 {
		t.Fatalf("chaos gate quarantined cells: %+v", rep.Merge)
	}
	if rep.Resumed == 0 {
		t.Fatalf("crash+resume resumed nothing: %+v", rep)
	}
	requireIdentical(t, spec, rep.OutDir)

	// The chaos must actually have bitten: the injector's fired
	// counters prove kills and torn tails happened in worker
	// processes (their exit codes and journals carried the evidence
	// back through the restart path).
	if reg.Counter("shard/restarts").Value() == 0 {
		t.Fatal("no worker was ever restarted — the chaos spec did not bite")
	}
	if reg.Counter("shard/resumed_cells").Value() == 0 {
		t.Fatal("no cell was resumed across the coordinator crash")
	}
}

// TestShardTraceChain checks the coordinator emits its supervision
// events and the merge joins each cell's store-digest trace chain.
func TestShardTraceChain(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes; excluded from the quick tier")
	}
	spec := shard.Spec{Platform: "broadwell", Kernels: []string{"Stream"}, Points: 6, Estimator: "twin"}
	dir := t.TempDir()
	tr := obs.NewTracer(4096)
	opt := fastOpts(spec, dir, "seed=7,proc:kill@0.5")
	opt.Trace = tr
	rep, err := shard.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range tr.Events() {
		counts[ev.Name]++
	}
	if counts[obs.EvShardAssign] != opt.Shards {
		t.Fatalf("assign events: %d, want %d", counts[obs.EvShardAssign], opt.Shards)
	}
	if counts[obs.EvShardRestart] != rep.Restarts {
		t.Fatalf("restart events %d != report restarts %d", counts[obs.EvShardRestart], rep.Restarts)
	}
	if counts[obs.EvShardMerge] != rep.Merge.Cells {
		t.Fatalf("merge events %d != merged cells %d", counts[obs.EvShardMerge], rep.Merge.Cells)
	}
}
