package shard

import (
	"encoding/json"
	"fmt"
	"os"
)

// beat is a worker's liveness record, rewritten atomically (temp file
// + rename) so the coordinator never reads a half-written one. Seq
// strictly increases while the worker is making progress — including
// *within* one long-running cell, because the beater goroutine keeps
// ticking while the compute runs — so a stalled Seq means the process
// is hung (or dead), not merely slow.
type beat struct {
	// Seq increases on every heartbeat tick and every state change.
	Seq int64 `json:"seq"`
	// Next is the index into the worker's manifest cell list it is
	// computing (== len(cells) when the list is exhausted). The
	// coordinator's work stealing reads it to find the slowest shard.
	Next int `json:"next"`
	// Committed and Failed count cells this worker finished.
	Committed int `json:"committed"`
	Failed    int `json:"failed"`
	// Done means the worker finished its list and is about to exit.
	Done bool `json:"done"`
}

// writeBeat atomically replaces the heartbeat file.
func writeBeat(path string, b beat) error {
	data, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("shard: encoding heartbeat: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //opmlint:allow errdiscard — best-effort scrap of the temp file; the rename error is returned
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// readBeat returns the worker's last heartbeat, or false when the file
// does not exist yet (worker spawned but not started) or is unreadable
// (treated as no progress — staleness detection will handle it).
func readBeat(path string) (beat, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return beat{}, false
	}
	var b beat
	if err := json.Unmarshal(data, &b); err != nil {
		return beat{}, false
	}
	return b, true
}
