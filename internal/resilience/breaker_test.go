package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives a breaker's cooldown without real sleeps.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() int64              { return c.ns.Load() }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func testBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{}
	b := (&Policy{BreakerThreshold: threshold, BreakerCooldown: cooldown}).NewBreaker()
	b.nowNS = clk.now
	return b, clk
}

// TestBreakerHalfOpenRecovery walks the full state machine: trip, fail
// fast during cooldown, admit exactly one probe after cooldown, close
// on probe success — and re-open on probe failure.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk := testBreaker(2, time.Second)

	if b.Failure() {
		t.Fatal("tripped below threshold")
	}
	if !b.Failure() {
		t.Fatal("did not trip at threshold")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a job before cooldown")
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("admitted a job 1ms before cooldown elapsed")
	}
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe admitted after cooldown")
	}
	if b.Allow() {
		t.Fatal("second job admitted while the probe is in flight")
	}
	// Probe fails: straight back to open for another full cooldown.
	if !b.Failure() {
		t.Fatal("failed probe did not count as a trip")
	}
	if b.Allow() {
		t.Fatal("admitted a job right after a failed probe")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no second probe after the second cooldown")
	}
	// Probe succeeds: closed, and the failure count starts fresh.
	b.Success()
	if b.Tripped() {
		t.Fatal("breaker still tripped after successful probe")
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker not admitting jobs")
	}
	if b.Failure() {
		t.Fatal("tripped on first failure after recovery — consec count not reset")
	}
}

// TestBreakerZeroCooldownStaysOpen pins the batch-sweep contract: with
// no cooldown configured an open breaker never half-opens, no matter
// how much time passes.
func TestBreakerZeroCooldownStaysOpen(t *testing.T) {
	b, clk := testBreaker(1, 0)
	b.Failure()
	clk.advance(24 * time.Hour)
	if b.Allow() {
		t.Fatal("zero-cooldown breaker admitted a probe")
	}
	if !b.Tripped() {
		t.Fatal("breaker not tripped")
	}
}

// TestBreakerHalfOpenConcurrentCallers hammers an open-past-cooldown
// breaker from many goroutines and checks the half-open contract under
// contention: exactly one caller wins the probe slot per cooldown
// window, and after a successful probe the breaker serves everyone.
// Run with -race, this is also the memory-ordering check for the
// state/openedNS pair.
func TestBreakerHalfOpenConcurrentCallers(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Failure() // trip
	clk.advance(time.Second)

	const callers = 32
	for round := 0; round < 5; round++ {
		var admitted atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if b.Allow() {
					admitted.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
		if got := admitted.Load(); got != 1 {
			t.Fatalf("round %d: %d callers admitted as probe, want exactly 1", round, got)
		}
		// Fail the probe, roll the clock past the next cooldown, and
		// contend again — every window must elect exactly one probe.
		b.Failure()
		clk.advance(time.Second)
	}

	// Let the final window's probe succeed and verify full recovery
	// under the same concurrent load.
	if !b.Allow() {
		t.Fatal("no probe in final window")
	}
	b.Success()
	var denied atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !b.Allow() {
				denied.Add(1)
			}
		}()
	}
	wg.Wait()
	if denied.Load() != 0 {
		t.Fatalf("closed breaker denied %d of %d callers", denied.Load(), callers)
	}
}
