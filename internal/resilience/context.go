package resilience

import "context"

type attemptKey struct{}

// WithAttempt annotates a job attempt's context with its zero-based
// attempt number. The sweep engine sets it on every try; the fault
// injector reads it so injected faults can heal on retry (an injected
// "transient" fault fires only while the attempt is below its count).
func WithAttempt(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, attemptKey{}, n)
}

// Attempt returns the context's attempt number (0 when unset, i.e.
// outside the retry loop or on the first try).
func Attempt(ctx context.Context) int {
	if n, ok := ctx.Value(attemptKey{}).(int); ok {
		return n
	}
	return 0
}
