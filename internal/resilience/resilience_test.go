package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestBackoffDeterministic checks the jitter is a pure function of
// (seed, key, attempt): the whole point of hash-derived backoff is
// that two runs of the same faulty sweep wait identically.
func TestBackoffDeterministic(t *testing.T) {
	p := &Policy{Seed: 7, BaseBackoff: time.Millisecond, MaxBackoff: 64 * time.Millisecond}
	q := &Policy{Seed: 7, BaseBackoff: time.Millisecond, MaxBackoff: 64 * time.Millisecond}
	for attempt := 1; attempt <= 8; attempt++ {
		for _, key := range []string{"0", "1", "42"} {
			if a, b := p.Backoff(key, attempt), q.Backoff(key, attempt); a != b {
				t.Fatalf("backoff(%s, %d) not deterministic: %v vs %v", key, attempt, a, b)
			}
		}
	}
	if p.Backoff("0", 1) == (&Policy{Seed: 8, BaseBackoff: time.Millisecond}).Backoff("0", 1) &&
		p.Backoff("1", 1) == (&Policy{Seed: 8, BaseBackoff: time.Millisecond}).Backoff("1", 1) &&
		p.Backoff("2", 1) == (&Policy{Seed: 8, BaseBackoff: time.Millisecond}).Backoff("2", 1) {
		t.Fatal("changing the seed never changed the jitter")
	}
}

// TestBackoffGrowthAndCap checks the envelope: exponential from base,
// jitter in [0.5, 1.5), hard-capped at 1.5×MaxBackoff.
func TestBackoffGrowthAndCap(t *testing.T) {
	base := 2 * time.Millisecond
	maxB := 16 * time.Millisecond
	p := &Policy{Seed: 1, BaseBackoff: base, MaxBackoff: maxB}
	for attempt := 1; attempt <= 10; attempt++ {
		nominal := base << (attempt - 1)
		if nominal > maxB {
			nominal = maxB
		}
		d := p.Backoff("k", attempt)
		lo := time.Duration(float64(nominal) * 0.5)
		hi := time.Duration(float64(nominal) * 1.5)
		if d < lo || d >= hi {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, lo, hi)
		}
	}
	if d := (*Policy)(nil).Backoff("k", 3); d != 0 {
		t.Fatalf("nil policy backoff = %v, want 0", d)
	}
}

// TestRetryableClassification pins the default error taxonomy: the
// three retryable families retry, everything else is permanent.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("model diverged"), false},
		{"transient", MarkTransient(errors.New("glitch")), true},
		{"wrapped transient", fmt.Errorf("cell 3: %w", MarkTransient(errors.New("glitch"))), true},
		{"timeout", &TimeoutError{Attempt: 1, Limit: time.Second}, true},
		{"quarantine", Quarantine("cell", errors.New("nan gflops")), true},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"transient-wrapped cancel", MarkTransient(context.Canceled), false},
		{"breaker", ErrBreakerOpen, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("%s: Retryable = %v, want %v", c.name, got, c.want)
		}
	}
	// A custom classifier overrides the default.
	p := &Policy{Classify: func(error) bool { return true }}
	if !p.Retryable(errors.New("anything")) {
		t.Fatal("Classify override ignored")
	}
}

// TestQuarantineWrapping checks the quarantine error carries its key
// and cause, and nil stays nil.
func TestQuarantineWrapping(t *testing.T) {
	if Quarantine("k", nil) != nil {
		t.Fatal("Quarantine(nil) should stay nil")
	}
	cause := errors.New("hits+misses != accesses")
	err := fmt.Errorf("job: %w", Quarantine("spmv|ddr", cause))
	if !IsQuarantine(err) {
		t.Fatal("IsQuarantine missed a wrapped QuarantineError")
	}
	if !errors.Is(err, cause) {
		t.Fatal("QuarantineError should unwrap to its cause")
	}
	var q *QuarantineError
	if !errors.As(err, &q) || q.Key != "spmv|ddr" {
		t.Fatalf("quarantine key lost: %+v", q)
	}
	if IsQuarantine(errors.New("plain")) {
		t.Fatal("IsQuarantine on a plain error")
	}
}

// TestBreakerTripsOnConsecutiveFailures checks the trip threshold, the
// success reset, and the trip-once contract.
func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	b := (&Policy{BreakerThreshold: 3}).NewBreaker()
	b.Failure()
	b.Failure()
	b.Success() // resets the run
	if b.Failure() || b.Failure() {
		t.Fatal("breaker tripped below threshold")
	}
	if !b.Allow() || b.Tripped() {
		t.Fatal("breaker open before threshold")
	}
	if !b.Failure() {
		t.Fatal("third consecutive failure should trip")
	}
	if b.Allow() || !b.Tripped() {
		t.Fatal("tripped breaker still allowing jobs")
	}
	if b.Failure() {
		t.Fatal("breaker reported a second trip")
	}
}

// TestBreakerNilSafety checks the disabled breaker (nil) never trips
// and a policy without a threshold returns one.
func TestBreakerNilSafety(t *testing.T) {
	var b *Breaker
	if !b.Allow() || b.Tripped() || b.Failure() {
		t.Fatal("nil breaker misbehaved")
	}
	b.Success()
	if (&Policy{}).NewBreaker() != nil || (*Policy)(nil).NewBreaker() != nil {
		t.Fatal("threshold-less policy built a breaker")
	}
}

// TestPolicyNilDefaults checks a nil policy reproduces the
// pre-resilience behaviour: one attempt, no deadline.
func TestPolicyNilDefaults(t *testing.T) {
	var p *Policy
	if p.Attempts() != 1 || p.Timeout() != 0 {
		t.Fatalf("nil policy: attempts %d timeout %v", p.Attempts(), p.Timeout())
	}
	if (&Policy{MaxAttempts: 1}).Attempts() != 1 || (&Policy{MaxAttempts: 4}).Attempts() != 4 {
		t.Fatal("attempt budget mis-resolved")
	}
}

// TestSleepBackoffCancellation checks a cancelled context aborts the
// wait immediately with the context error — the guarantee the sweep's
// no-resubmit-after-cancel behaviour rests on.
func TestSleepBackoffCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Policy{}
	start := time.Now()
	if err := p.SleepBackoff(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("SleepBackoff on cancelled ctx = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("SleepBackoff did not return promptly on cancellation")
	}
	if err := p.SleepBackoff(context.Background(), 0); err != nil {
		t.Fatalf("zero-duration sleep = %v", err)
	}
	// The Sleep seam replaces the real wait entirely.
	called := false
	seam := &Policy{Sleep: func(context.Context, time.Duration) error { called = true; return nil }}
	if err := seam.SleepBackoff(context.Background(), time.Hour); err != nil || !called {
		t.Fatal("Sleep seam not used")
	}
}

// TestAttemptContext checks the attempt number rides the context and
// defaults to zero outside the retry loop.
func TestAttemptContext(t *testing.T) {
	ctx := context.Background()
	if Attempt(ctx) != 0 {
		t.Fatal("bare context should read attempt 0")
	}
	if got := Attempt(WithAttempt(ctx, 3)); got != 3 {
		t.Fatalf("attempt = %d, want 3", got)
	}
}

// TestHash64Deterministic checks the shared mixing hash is stable and
// sensitive to each part — the fault injector's fire decisions and the
// backoff jitter both ride on it.
func TestHash64Deterministic(t *testing.T) {
	a := Hash64(1, "job", uint64(2), "17")
	if a != Hash64(1, "job", uint64(2), "17") {
		t.Fatal("Hash64 not deterministic")
	}
	for _, other := range []uint64{
		Hash64(2, "job", uint64(2), "17"),
		Hash64(1, "store", uint64(2), "17"),
		Hash64(1, "job", uint64(3), "17"),
		Hash64(1, "job", uint64(2), "18"),
	} {
		if a == other {
			t.Fatal("Hash64 insensitive to an input part")
		}
	}
}
