package resilience

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen fails the jobs a tripped circuit breaker short-
// circuits. It is permanent (never retried) and is not a context
// error, so sweep.Compact keeps the partial results and the harness
// annotates the dropped cells instead of aborting the report.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// Breaker states. The zero value is closed, so an atomically-zeroed
// Breaker starts in the right state.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a circuit breaker: it trips after a threshold of
// *consecutive* dropped jobs (a success resets the count). With no
// cooldown configured, once open it stays open — right for a finite
// batch sweep, where the remaining cells of a systematically broken
// family should fail fast. With a positive cooldown (the serve
// daemon's configuration), an open breaker half-opens after the
// cooldown elapses: exactly one probe job is admitted; its success
// closes the breaker, its failure re-opens it for another cooldown.
// All methods are safe for concurrent use and on a nil receiver
// (which never trips).
type Breaker struct {
	threshold int64
	cooldown  time.Duration
	// nowNS is the monotonic-enough clock the cooldown is measured
	// on; a test seam so half-open transitions don't need real sleeps.
	nowNS    func() int64
	consec   atomic.Int64
	state    atomic.Int32
	openedNS atomic.Int64
	trips    atomic.Int64
}

func (b *Breaker) clock() int64 {
	if b.nowNS != nil {
		return b.nowNS()
	}
	return time.Now().UnixNano() //opmlint:allow determinism — breaker cooldown is wall-clock policy, not simulation state
}

// Allow reports whether a job may run. Closed always admits. Open
// admits nothing until the cooldown (if any) elapses; the first caller
// to observe an expired cooldown wins the half-open transition and
// becomes the single probe — concurrent callers keep failing fast
// until the probe's verdict is in.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	switch b.state.Load() {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.cooldown > 0 && b.clock()-b.openedNS.Load() >= int64(b.cooldown) {
			// CAS so exactly one concurrent caller is the probe.
			return b.state.CompareAndSwap(breakerOpen, breakerHalfOpen)
		}
		return false
	default: // half-open: a probe is already in flight
		return false
	}
}

// Success records a completed job, resetting the consecutive-failure
// count and closing a half-open breaker (the probe succeeded).
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.consec.Store(0)
	b.state.CompareAndSwap(breakerHalfOpen, breakerClosed)
}

// Failure records a dropped job (permanent failure or exhausted
// retries) and reports whether this failure tripped the breaker. A
// failed half-open probe re-opens immediately — one strike, back to
// cooldown — and counts as a trip.
func (b *Breaker) Failure() bool {
	if b == nil {
		return false
	}
	if b.state.CompareAndSwap(breakerHalfOpen, breakerOpen) {
		b.openedNS.Store(b.clock())
		b.trips.Add(1)
		return true
	}
	if b.consec.Add(1) >= b.threshold && b.state.CompareAndSwap(breakerClosed, breakerOpen) {
		b.openedNS.Store(b.clock())
		b.trips.Add(1)
		return true
	}
	return false
}

// Tripped reports whether the breaker is open or probing (i.e. not
// fully closed).
func (b *Breaker) Tripped() bool {
	return b != nil && b.state.Load() != breakerClosed
}
