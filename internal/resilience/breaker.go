package resilience

import (
	"errors"
	"sync/atomic"
)

// ErrBreakerOpen fails the jobs a tripped circuit breaker short-
// circuits. It is permanent (never retried) and is not a context
// error, so sweep.Compact keeps the partial results and the harness
// annotates the dropped cells instead of aborting the report.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// Breaker is a per-sweep-family circuit breaker: it trips after a
// threshold of *consecutive* dropped jobs (a success resets the
// count), and once open it stays open for the rest of the sweep —
// sweeps are finite, so there is no half-open probe state. All methods
// are safe for concurrent use and on a nil receiver (which never
// trips).
type Breaker struct {
	threshold int64
	consec    atomic.Int64
	open      atomic.Bool
	trips     atomic.Int64
}

// Allow reports whether a job may run (false once tripped).
func (b *Breaker) Allow() bool {
	return b == nil || !b.open.Load()
}

// Success records a completed job, resetting the consecutive-failure
// count.
func (b *Breaker) Success() {
	if b != nil {
		b.consec.Store(0)
	}
}

// Failure records a dropped job (permanent failure or exhausted
// retries) and reports whether this failure tripped the breaker.
func (b *Breaker) Failure() bool {
	if b == nil {
		return false
	}
	if b.consec.Add(1) >= b.threshold && b.open.CompareAndSwap(false, true) {
		b.trips.Add(1)
		return true
	}
	return false
}

// Tripped reports whether the breaker has opened.
func (b *Breaker) Tripped() bool {
	return b != nil && b.open.Load()
}
