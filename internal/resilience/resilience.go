// Package resilience is the fault-handling policy layer of the sweep
// pipeline: per-job retry with capped exponential backoff and seeded
// jitter, per-attempt deadlines, a per-sweep-family circuit breaker,
// and the error taxonomy (transient vs permanent vs quarantined) the
// retry loop classifies failures with.
//
// The package is policy only — it decides whether to retry, how long
// to wait, and when to stop trying; the sweep engine owns the loop
// that applies those decisions (sweep.Map). Everything is
// deterministic for a given Policy.Seed: backoff jitter derives from a
// hash of (seed, job key, attempt), never from a global RNG or the
// clock, so two runs of the same faulty sweep retry identically.
//
// Like internal/obs, a nil *Policy is the off switch: every method is
// nil-safe and reproduces the pre-resilience behaviour (one attempt,
// no deadline, no breaker) at the cost of one branch per job.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Policy configures per-job resilience for one sweep. The zero value
// (and nil) disables everything: one attempt, no per-job deadline, no
// breaker.
type Policy struct {
	// MaxAttempts bounds the total tries per job, counting the first;
	// <= 1 disables retry.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it, capped at MaxBackoff. Zero selects 1ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Zero selects 100ms.
	MaxBackoff time.Duration
	// Seed feeds the deterministic backoff jitter (and nothing else).
	Seed uint64
	// JobTimeout, when positive, bounds each *attempt* with its own
	// context deadline. An attempt that outlives it fails with a
	// retryable *TimeoutError; the whole-run context is unaffected.
	JobTimeout time.Duration
	// BreakerThreshold, when positive, trips the sweep's circuit
	// breaker after this many consecutive dropped jobs (permanent
	// failures or exhausted retries). A tripped breaker fails the
	// sweep's remaining jobs fast with ErrBreakerOpen so a
	// systematically broken sweep degrades to a partial-but-annotated
	// report instead of grinding through every doomed cell.
	BreakerThreshold int
	// BreakerCooldown, when positive, lets an open breaker half-open
	// after this long: one probe job is admitted, its success closes
	// the breaker, its failure re-opens it for another cooldown. Zero
	// keeps the batch-sweep behaviour — once open, open for good —
	// which is what finite sweeps want; the long-running serve daemon
	// sets a cooldown so a transiently broken family recovers.
	BreakerCooldown time.Duration
	// Classify, when non-nil, overrides Retryable as the transient-
	// failure test.
	Classify func(error) bool
	// Sleep, when non-nil, replaces the context-aware backoff sleep —
	// the test seam for the cancellation-during-backoff races.
	Sleep func(context.Context, time.Duration) error
}

// Attempts returns the attempt budget (1 on a nil or unset policy).
func (p *Policy) Attempts() int {
	if p == nil || p.MaxAttempts <= 1 {
		return 1
	}
	return p.MaxAttempts
}

// Timeout returns the per-attempt deadline (0 = none).
func (p *Policy) Timeout() time.Duration {
	if p == nil {
		return 0
	}
	return p.JobTimeout
}

// Retryable reports whether the policy classifies err as transient.
func (p *Policy) Retryable(err error) bool {
	if p != nil && p.Classify != nil {
		return p.Classify(err)
	}
	return Retryable(err)
}

// Backoff returns the deterministic pre-retry delay for a job: capped
// exponential growth from BaseBackoff with ±50% jitter derived from
// (Seed, key, attempt). attempt counts the failures so far (>= 1).
func (p *Policy) Backoff(key string, attempt int) time.Duration {
	if p == nil {
		return 0
	}
	base := p.BaseBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 100 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	// Jitter in [0.5, 1.5): spreads retry storms without ever
	// zeroing the delay. Hash-derived, so a (seed, key, attempt)
	// triple always waits the same time.
	u := float64(hash64(p.Seed, "backoff", key, uint64(attempt))%1024) / 1024
	return time.Duration(float64(d) * (0.5 + u))
}

// SleepBackoff waits out a backoff delay, returning early with the
// context error if the sweep is cancelled mid-wait — the guarantee
// that a cancelled sweep never re-submits an in-flight retry.
func (p *Policy) SleepBackoff(ctx context.Context, d time.Duration) error {
	if p != nil && p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// NewBreaker builds the per-sweep circuit breaker the policy asks for,
// or nil (never trips) when breaking is disabled.
func (p *Policy) NewBreaker() *Breaker {
	if p == nil || p.BreakerThreshold <= 0 {
		return nil
	}
	return &Breaker{threshold: int64(p.BreakerThreshold), cooldown: p.BreakerCooldown}
}

// hash64 mixes the parts into a deterministic 64-bit value. The FNV
// stream is finished with a murmur-style avalanche: FNV's final
// multiply spreads a last-byte difference upward but barely moves the
// low bits (the prime is ~2^40, so two keys differing only in their
// final digit land within ~2^9 of each other mod 2^20), and both the
// injector's fire decision and the backoff jitter sample low bits —
// without the finalizer, per-key draws over "0", "1", "2", ... would
// be nearly identical.
func hash64(seed uint64, parts ...any) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(seed)
	for _, p := range parts {
		switch v := p.(type) {
		case string:
			h.Write([]byte{0})
			h.Write([]byte(v))
		case uint64:
			put(v)
		default:
			fmt.Fprintf(h, "%v", v)
		}
	}
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// Hash64 is the package's deterministic mixing hash, shared with the
// fault injector so both layers draw from the same keyed stream.
func Hash64(seed uint64, parts ...any) uint64 { return hash64(seed, parts...) }

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err so Retryable reports true for it. A nil err
// stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// TimeoutError is an attempt that outlived the policy's per-job
// deadline. It is retryable: the next attempt gets a fresh deadline.
type TimeoutError struct {
	Attempt int
	Limit   time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("resilience: attempt %d exceeded job deadline %s", e.Attempt, e.Limit)
}

// QuarantineError is a result that failed the simulator-invariant
// validation gate: the value is discarded (never committed to the
// store) and the cause recorded. Retryable — a transient glitch heals
// on the next attempt, while a deterministic model bug exhausts the
// budget and surfaces as a dropped, annotated cell.
type QuarantineError struct {
	Key string
	Err error
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("resilience: quarantined invalid result (%s): %v", e.Key, e.Err)
}

func (e *QuarantineError) Unwrap() error { return e.Err }

// Quarantine wraps a validation failure for key. A nil err stays nil.
func Quarantine(key string, err error) error {
	if err == nil {
		return nil
	}
	return &QuarantineError{Key: key, Err: err}
}

// IsQuarantine reports whether err carries a QuarantineError.
func IsQuarantine(err error) bool {
	var q *QuarantineError
	return errors.As(err, &q)
}

// Retryable is the default failure classifier: transient-marked
// errors, per-attempt timeouts, and quarantined results retry;
// everything else (including real panics and context cancellation) is
// permanent. Deterministic model errors re-fail identically, so
// retrying unclassified failures would only slow a broken sweep down.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t *transientError
	if errors.As(err, &t) {
		return true
	}
	var to *TimeoutError
	if errors.As(err, &to) {
		return true
	}
	return IsQuarantine(err)
}
