// Package power provides the RAPL-like analytic power/energy model
// standing in for the paper's RAPL+PAPI measurements (Section 5.2,
// Figures 26–27): package and DRAM power are first-order linear in
// activity (flops and per-level byte traffic), with static floors.
// Constants are calibrated to the paper's reported aggregates: eDRAM
// adds 5.6 W (+8.6%) on average on Broadwell, MCDRAM flat mode adds
// 9.8 W (+6.9%) on KNL, and MCDRAM sometimes *reduces* DDR power by
// cutting DDR traffic.
package power

import (
	"fmt"

	"repro/internal/memsim"
)

// Model holds the linear power coefficients for one platform.
type Model struct {
	Platform string
	// PkgStatic is the idle package power (cores, uncore, fabric), W.
	PkgStatic float64
	// PerGFlop is package power per achieved GFlop/s, W/(GFlop/s).
	PerGFlop float64
	// PerGBOnChip is package power per GB/s of on-chip cache traffic.
	PerGBOnChip float64
	// PerGBOPM is package power per GB/s of OPM traffic (eDRAM sits
	// on-package so its power bills to the package domain; so does
	// MCDRAM on KNL).
	PerGBOPM float64
	// OPMStatic is the standby power the OPM draws whenever it cannot
	// be disabled (MCDRAM; eDRAM switched off in BIOS draws zero).
	OPMStatic float64
	// DRAMStatic and PerGBDRAM model the separate DRAM RAPL domain.
	DRAMStatic float64
	PerGBDRAM  float64
}

// Broadwell returns the calibrated Broadwell model (65 W TDP part).
func Broadwell() Model {
	return Model{
		Platform:    "broadwell",
		PkgStatic:   48,
		PerGFlop:    0.08,
		PerGBOnChip: 0.03,
		PerGBOPM:    0.10,
		OPMStatic:   0, // eDRAM physically off in BIOS
		DRAMStatic:  1.5,
		PerGBDRAM:   0.18,
	}
}

// KNL returns the calibrated Knights Landing model (215 W TDP part).
func KNL() Model {
	return Model{
		Platform:    "knl",
		PkgStatic:   78,
		PerGFlop:    0.055,
		PerGBOnChip: 0.015,
		PerGBOPM:    0.028,
		OPMStatic:   2.5, // MCDRAM cannot be powered off
		DRAMStatic:  6,
		PerGBDRAM:   0.10,
	}
}

// Skylake returns the model for the Skylake extension platform (45 W
// mobile-class part with the same eDRAM as Broadwell).
func Skylake() Model {
	m := Broadwell()
	m.Platform = "skylake"
	m.PkgStatic = 44
	return m
}

// ForPlatform returns the model for a platform name.
func ForPlatform(name string) (Model, error) {
	switch name {
	case "broadwell":
		return Broadwell(), nil
	case "knl":
		return KNL(), nil
	case "skylake":
		return Skylake(), nil
	}
	return Model{}, fmt.Errorf("power: no model for platform %q", name)
}

// Sample is one power reading, split like RAPL's PKG and DRAM domains.
type Sample struct {
	PkgW  float64
	DRAMW float64
}

// Total returns PkgW + DRAMW.
func (s Sample) Total() float64 { return s.PkgW + s.DRAMW }

// Estimate computes the average power draw of a simulated run.
func (m Model) Estimate(res memsim.Result) Sample {
	sec := res.Seconds
	if sec <= 0 {
		return Sample{PkgW: m.PkgStatic + m.OPMStatic, DRAMW: m.DRAMStatic}
	}
	gbs := func(src memsim.Source) float64 {
		return float64(res.Traffic.Bytes[src]+res.Traffic.WBBytes[src]) / sec / 1e9
	}
	onChip := gbs(memsim.SrcL2) + gbs(memsim.SrcL3)
	opm := gbs(memsim.SrcEDRAM) + gbs(memsim.SrcMCDRAM)
	ddr := gbs(memsim.SrcDDR)
	return Sample{
		PkgW:  m.PkgStatic + m.OPMStatic + m.PerGFlop*res.GFlops + m.PerGBOnChip*onChip + m.PerGBOPM*opm,
		DRAMW: m.DRAMStatic + m.PerGBDRAM*ddr,
	}
}

// EnergyJ returns the total energy of a run in joules.
func (m Model) EnergyJ(res memsim.Result) float64 {
	return m.Estimate(res).Total() * res.Seconds
}

// BreakEvenGain implements Eq. 1 of the paper: with an average power
// increase of W (fractional, e.g. 0.086 for eDRAM), the OPM saves
// energy only when the performance gain P satisfies
//
//	(1/(1+P)) · (1+W) < 1  ⟺  P > W.
//
// It returns the minimum fractional speedup that saves energy.
func BreakEvenGain(powerIncrease float64) float64 { return powerIncrease }

// SavesEnergy reports whether a performance gain P under a power
// increase W is a net energy win (Eq. 1).
func SavesEnergy(perfGain, powerIncrease float64) bool {
	if perfGain <= -1 {
		return false
	}
	return (1+powerIncrease)/(1+perfGain) < 1
}

// EnergyDelayProduct returns E·T^w, the generalized metric mentioned
// alongside Eq. 1 (w=0 pure energy, w=1 classic EDP, w=2 ED²P).
func EnergyDelayProduct(energyJ, seconds float64, w float64) float64 {
	if w == 0 {
		return energyJ
	}
	out := energyJ
	for i := 0; i < int(w); i++ {
		out *= seconds
	}
	return out
}
