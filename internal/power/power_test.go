package power

import (
	"math"
	"testing"

	"repro/internal/memsim"
)

func fakeResult(seconds, gflops float64, opmGBs, ddrGBs float64) memsim.Result {
	var tr memsim.Traffic
	tr.Bytes[memsim.SrcEDRAM] = uint64(opmGBs * seconds * 1e9)
	tr.Bytes[memsim.SrcDDR] = uint64(ddrGBs * seconds * 1e9)
	return memsim.Result{Seconds: seconds, GFlops: gflops, Traffic: tr}
}

func TestForPlatform(t *testing.T) {
	for _, name := range []string{"broadwell", "knl"} {
		m, err := ForPlatform(name)
		if err != nil || m.Platform != name {
			t.Fatalf("ForPlatform(%s) = %+v, %v", name, m, err)
		}
	}
	if _, err := ForPlatform("epyc"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestEstimateScalesWithActivity(t *testing.T) {
	m := Broadwell()
	idle := m.Estimate(fakeResult(1, 0, 0, 0))
	busy := m.Estimate(fakeResult(1, 200, 40, 20))
	if busy.PkgW <= idle.PkgW {
		t.Fatal("package power must grow with activity")
	}
	if busy.DRAMW <= idle.DRAMW {
		t.Fatal("DRAM power must grow with DDR traffic")
	}
	if idle.PkgW != m.PkgStatic {
		t.Fatalf("idle pkg = %v, want static %v", idle.PkgW, m.PkgStatic)
	}
}

func TestEstimateZeroSecondsFallsBackToStatic(t *testing.T) {
	m := KNL()
	s := m.Estimate(memsim.Result{})
	if s.PkgW != m.PkgStatic+m.OPMStatic || s.DRAMW != m.DRAMStatic {
		t.Fatalf("zero-run sample = %+v", s)
	}
}

func TestBroadwellEDRAMDeltaNearPaper(t *testing.T) {
	// The paper reports eDRAM adds ~5.6 W (+8.6%) on average. A
	// representative mid-intensity kernel: 50 GFlop/s, with 50 GB/s of
	// traffic moving from DDR (w/o) to eDRAM (w/).
	m := Broadwell()
	without := m.Estimate(fakeResult(1, 50, 0, 18))
	with := m.Estimate(fakeResult(1, 55, 45, 5))
	delta := with.PkgW - without.PkgW
	if delta < 2 || delta > 9 {
		t.Fatalf("eDRAM package delta = %v W, want ~5.6", delta)
	}
	rel := delta / without.PkgW
	if rel < 0.04 || rel > 0.16 {
		t.Fatalf("eDRAM relative delta = %v, want ~0.086", rel)
	}
}

func TestKNLMCDRAMReducesDDRPower(t *testing.T) {
	// Figure 27: using MCDRAM sometimes reduces DDR power (traffic
	// moves on package).
	m := KNL()
	ddrOnly := m.Estimate(fakeResultKNL(1, 400, 0, 80))
	flat := m.Estimate(fakeResultKNL(1, 420, 400, 5))
	if flat.DRAMW >= ddrOnly.DRAMW {
		t.Fatal("MCDRAM should reduce DDR power")
	}
	if flat.PkgW <= ddrOnly.PkgW {
		t.Fatal("MCDRAM traffic should raise package power")
	}
}

func fakeResultKNL(seconds, gflops, mcGBs, ddrGBs float64) memsim.Result {
	var tr memsim.Traffic
	tr.Bytes[memsim.SrcMCDRAM] = uint64(mcGBs * seconds * 1e9)
	tr.Bytes[memsim.SrcDDR] = uint64(ddrGBs * seconds * 1e9)
	return memsim.Result{Seconds: seconds, GFlops: gflops, Traffic: tr}
}

func TestEnergyJ(t *testing.T) {
	m := Broadwell()
	r := fakeResult(2, 100, 0, 10)
	e := m.EnergyJ(r)
	if math.Abs(e-m.Estimate(r).Total()*2) > 1e-9 {
		t.Fatal("EnergyJ must be power * time")
	}
}

func TestEq1BreakEven(t *testing.T) {
	// Eq. 1: energy saved iff perf gain > power increase.
	if BreakEvenGain(0.086) != 0.086 {
		t.Fatal("break-even gain should equal the power increase")
	}
	if !SavesEnergy(0.10, 0.086) {
		t.Fatal("10% gain at 8.6% power should save energy")
	}
	if SavesEnergy(0.05, 0.086) {
		t.Fatal("5% gain at 8.6% power should not save energy")
	}
	if SavesEnergy(0.086, 0.086) {
		t.Fatal("exact break-even is not a saving")
	}
	if SavesEnergy(-1.5, 0.01) {
		t.Fatal("degenerate gain accepted")
	}
}

func TestEnergyDelayProduct(t *testing.T) {
	if EnergyDelayProduct(10, 2, 0) != 10 {
		t.Fatal("w=0 should be pure energy")
	}
	if EnergyDelayProduct(10, 2, 1) != 20 {
		t.Fatal("w=1 EDP wrong")
	}
	if EnergyDelayProduct(10, 2, 2) != 40 {
		t.Fatal("w=2 ED2P wrong")
	}
}
