package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Journal file layout. The file opens with a fixed magic line naming
// the format generation, then a sequence of independently checksummed
// records:
//
//	[4-byte big-endian payload length][4-byte CRC-32C of payload][payload]
//
// The payload is one JSON envelope (see entry). Appends are a single
// write(2) of the fully assembled frame, so a process crash leaves at
// worst one torn frame at the tail — which the open-time scan detects
// (short frame, or checksum mismatch on the final record) and
// truncates away. A corrupted record in the interior (bit flip on
// disk) fails its checksum but leaves the framing intact, so the scan
// skips it and keeps everything after it.
const (
	journalMagic = "OPMSTORE1\n"
	journalName  = "journal"
	indexName    = "index.json"

	// entryVersion is the record schema generation. Records written
	// by a different generation are skipped on open (counted as
	// stale), never trusted.
	entryVersion = 1

	// maxRecordLen bounds a single payload. A length field above this
	// cannot come from a healthy journal, so the scan treats it as
	// corruption of the framing itself and truncates there.
	maxRecordLen = 64 << 20

	frameHeaderLen = 8
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// entry is the JSON envelope of one journal record.
type entry struct {
	// V is the record schema version (entryVersion at write time).
	V int `json:"v"`
	// Digest is the content address (see Digest).
	Digest string `json:"digest"`
	// Exp and Key record the human-readable provenance of the digest:
	// the sweep family and the job key. They are informational — the
	// digest alone addresses the record.
	Exp string `json:"exp"`
	Key string `json:"key"`
	// Data is the cached result, verbatim.
	Data json.RawMessage `json:"data"`
}

// frame assembles the on-disk bytes of one payload.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeaderLen:], payload)
	return buf
}

// scanOutcome is what replaying a journal produced: the live entries
// in first-seen order, and the damage tally.
type scanOutcome struct {
	entries []entry
	// goodEnd is the offset just past the last structurally sound
	// frame; bytes beyond it are torn or unframeable and must be
	// truncated before appending.
	goodEnd int64
	// corrupt counts interior records whose checksum or JSON failed;
	// stale counts records of a different schema version; truncated
	// is the number of tail bytes cut off.
	corrupt   int
	stale     int
	truncated int64
}

// scanJournal replays a journal from r (positioned after the magic,
// with size bytes of records remaining, starting at offset start).
func scanJournal(r io.Reader, start, size int64) scanOutcome {
	out := scanOutcome{goodEnd: start}
	var hdr [frameHeaderLen]byte
	remaining := size
	for remaining >= frameHeaderLen {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break
		}
		n := int64(binary.BigEndian.Uint32(hdr[0:4]))
		want := binary.BigEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordLen || n > remaining-frameHeaderLen {
			// The length field itself is untrustworthy (torn tail or
			// corrupted framing): nothing beyond this point can be
			// re-framed, so the scan stops and the tail is truncated.
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		remaining -= frameHeaderLen + n
		out.goodEnd += frameHeaderLen + n
		if crc32.Checksum(payload, castagnoli) != want {
			// Framing held but the payload is damaged (bit flip):
			// skip just this record.
			out.corrupt++
			continue
		}
		var e entry
		if err := json.Unmarshal(payload, &e); err != nil || e.Digest == "" {
			out.corrupt++
			continue
		}
		if e.V != entryVersion {
			out.stale++
			continue
		}
		out.entries = append(out.entries, e)
	}
	out.truncated = size - (out.goodEnd - start)
	return out
}

// writeAtomic writes data to path via a temp file and rename, so a
// crash mid-write can never leave a half-written file under path.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //opmlint:allow errdiscard — best-effort scrap of the temp file; the rename error is returned
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
