package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestReadJournalMatchesReplay checks the read-only scan returns the
// same live set, in the same first-commit order and with the same
// payload bytes, as Open's replay would index — the property the shard
// merge's byte-identity rests on.
func TestReadJournalMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	for i, key := range []string{"a", "b", "c"} {
		d := Digest("v", "cfg", "fam", key)
		if err := s.Put(d, "fam", key, payload{GFlops: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Supersede "a": the scan must return the later bytes, once, in
	// the original first-commit position.
	da := Digest("v", "cfg", "fam", "a")
	if err := s.Put(da, "fam", "a", payload{GFlops: 99}); err != nil {
		t.Fatal(err)
	}

	// Scan while the writer still has the journal open — every Put is
	// one complete write(2), so the live file is always scannable.
	entries, st, err := ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 3 || st.Superseded != 1 || st.Corrupt != 0 || st.Stale != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("stats: %+v", st)
	}
	wantOrder := []string{"a", "b", "c"}
	for i, e := range entries {
		if e.Key != wantOrder[i] || e.Exp != "fam" {
			t.Fatalf("entry %d = %s/%s, want fam/%s", i, e.Exp, e.Key, wantOrder[i])
		}
	}
	var got payload
	if err := json.Unmarshal(entries[0].Data, &got); err != nil || got.GFlops != 99 {
		t.Fatalf("superseded entry not replaced: %+v err=%v", got, err)
	}

	// Cross-check against the replay path byte for byte.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, nil)
	defer s2.Close()
	for _, e := range entries {
		raw, ok := s2.GetRaw(e.Digest)
		if !ok {
			t.Fatalf("replay missing %s", e.Digest)
		}
		if !bytes.Equal(raw, e.Data) {
			t.Fatalf("payload bytes diverge for %s: %s vs %s", e.Key, raw, e.Data)
		}
	}
}

// TestReadJournalNeverRepairs checks the scan observes damage without
// touching the file: a torn tail and an interior bit flip are counted,
// the file's bytes stay identical, and a second scan agrees — the
// guarantee that makes it safe to read a journal an orphaned worker is
// still appending to.
func TestReadJournalNeverRepairs(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	for _, key := range []string{"x", "y"} {
		if err := s.Put(Digest(key), "e", key, payload{GFlops: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, journalName)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit inside the first record (past magic + header)
	// and append half a frame at the tail, like a writer crashed
	// mid-append.
	damaged := append([]byte(nil), before...)
	damaged[len(journalMagic)+frameHeaderLen+2] ^= 0x40
	torn := make([]byte, frameHeaderLen+3)
	binary.BigEndian.PutUint32(torn[0:4], 1000) // claims more bytes than exist
	damaged = append(damaged, torn...)
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	for pass := 0; pass < 2; pass++ {
		entries, st, err := ReadJournal(dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Entries != 1 || st.Corrupt != 1 || st.TruncatedBytes != int64(len(torn)) {
			t.Fatalf("pass %d stats: %+v", pass, st)
		}
		if len(entries) != 1 || entries[0].Key != "y" {
			t.Fatalf("pass %d: surviving entries %+v", pass, entries)
		}
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, damaged) {
		t.Fatal("read-only scan modified the journal")
	}
}

// TestReadJournalMissingAndForeign pins the edge cases: a missing dir
// or journal is an empty store (not an error), an empty file likewise,
// and a foreign magic line reports one stale journal without setting
// the file aside the way Open's recovery would.
func TestReadJournalMissingAndForeign(t *testing.T) {
	if entries, st, err := ReadJournal(filepath.Join(t.TempDir(), "never-created")); err != nil || len(entries) != 0 || st != (ReadStats{}) {
		t.Fatalf("missing dir: entries=%v stats=%+v err=%v", entries, st, err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if entries, st, err := ReadJournal(dir); err != nil || len(entries) != 0 || st != (ReadStats{}) {
		t.Fatalf("empty journal: entries=%v stats=%+v err=%v", entries, st, err)
	}

	if err := os.WriteFile(path, []byte("NOTASTORE9\nwhatever"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, st, err := ReadJournal(dir)
	if err != nil || len(entries) != 0 || st.Stale != 1 {
		t.Fatalf("foreign journal: entries=%v stats=%+v err=%v", entries, st, err)
	}
	if _, err := os.Stat(path + ".old"); !os.IsNotExist(err) {
		t.Fatal("read-only scan set the foreign journal aside")
	}
}
