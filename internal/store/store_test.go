package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
)

type payload struct {
	GFlops float64
	Label  string
}

func openT(t *testing.T, dir string, reg *obs.Registry) *Store {
	t.Helper()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	want := payload{GFlops: 9.600000000000001, Label: "fig9"}
	d := Digest("v1", "cfg", "sparse/SpMV", "m-001")
	if err := s.Put(d, "sparse/SpMV", "m-001", want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if ok, err := s.Get(d, &got); err != nil || !ok {
		t.Fatalf("same-session get: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, nil)
	defer s2.Close()
	got = payload{}
	if ok, err := s2.Get(d, &got); err != nil || !ok {
		t.Fatalf("reopened get: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("float64 did not round-trip exactly: got %+v want %+v", got, want)
	}
	if ok, _ := s2.Get(Digest("v1", "cfg", "sparse/SpMV", "m-002"), &got); ok {
		t.Fatal("unknown digest hit")
	}
	st := s2.Stats()
	if st.Live != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLastWriterWinsAndCompact(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	d := Digest("k")
	for i := 0; i < 3; i++ {
		if err := s.Put(d, "e", "k", payload{GFlops: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(Digest("other"), "e", "other", payload{GFlops: 42}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if ok, _ := s.Get(d, &got); !ok || got.GFlops != 2 {
		t.Fatalf("last writer should win: %+v", got)
	}
	if st := s.Stats(); st.Superseded != 2 || st.Live != 2 {
		t.Fatalf("stats before compact: %+v", st)
	}
	before := journalSize(t, dir)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if after := journalSize(t, dir); after >= before {
		t.Fatalf("compaction did not shrink journal: %d -> %d", before, after)
	}
	// The store keeps working after the in-place journal swap.
	if err := s.Put(Digest("post"), "e", "post", payload{GFlops: 7}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, nil)
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("live after compact+reopen: %d", s2.Len())
	}
	if ok, _ := s2.Get(d, &got); !ok || got.GFlops != 2 {
		t.Fatalf("compacted value wrong: %+v", got)
	}
	if st := s2.Stats(); st.Superseded != 0 {
		t.Fatalf("compacted journal still has superseded records: %+v", st)
	}

	// index.json exists and is valid JSON listing every live digest.
	data, err := os.ReadFile(filepath.Join(dir, indexName))
	if err != nil {
		t.Fatal(err)
	}
	var idx indexFile
	if err := json.Unmarshal(data, &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Live != 3 || len(idx.Entries) != 3 {
		t.Fatalf("index: %+v", idx)
	}
}

// seed writes n entries and returns their digests.
func seed(t *testing.T, dir string, n int) []string {
	t.Helper()
	s := openT(t, dir, nil)
	var digests []string
	for i := 0; i < n; i++ {
		d := Digest(fmt.Sprint(i))
		digests = append(digests, d)
		if err := s.Put(d, "exp", fmt.Sprint(i), payload{GFlops: float64(i), Label: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	// Close without index write noise: Close also compacts only on
	// garbage, so the journal keeps its append-order layout.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return digests
}

func journalSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// frameOffsets returns the start offset and total length of every
// frame in the journal, in order.
func frameOffsets(t *testing.T, dir string) [][2]int64 {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	var out [][2]int64
	off := int64(len(journalMagic))
	for off+frameHeaderLen <= int64(len(data)) {
		n := int64(binary.BigEndian.Uint32(data[off : off+4]))
		out = append(out, [2]int64{off, frameHeaderLen + n})
		off += frameHeaderLen + n
	}
	return out
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	digests := seed(t, dir, 3)
	// Simulate a crash mid-append: a frame header promising more
	// bytes than the file holds.
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var torn [frameHeaderLen + 4]byte
	binary.BigEndian.PutUint32(torn[0:4], 500) // claims 500 payload bytes, provides 4
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore := journalSize(t, dir)

	reg := obs.NewRegistry()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	defer s.Close()
	if s.Len() != 3 {
		t.Fatalf("live after torn tail: %d", s.Len())
	}
	st := s.Stats()
	if st.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("truncated %d bytes, want %d", st.TruncatedBytes, len(torn))
	}
	if journalSize(t, dir) != sizeBefore-int64(len(torn)) {
		t.Fatal("journal not physically truncated")
	}
	// Appending after recovery lands on a clean boundary.
	if err := s.Put(Digest("new"), "exp", "new", payload{GFlops: 99}); err != nil {
		t.Fatal(err)
	}
	var got payload
	for _, d := range append(digests, Digest("new")) {
		if ok, _ := s.Get(d, &got); !ok {
			t.Fatalf("digest %s lost after recovery", d[:8])
		}
	}
}

func TestBitFlippedChecksumSkipsOnlyThatRecord(t *testing.T) {
	dir := t.TempDir()
	digests := seed(t, dir, 3)
	frames := frameOffsets(t, dir)
	if len(frames) != 3 {
		t.Fatalf("expected 3 frames, got %d", len(frames))
	}
	// Flip one payload byte in the middle record.
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid := frames[1][0] + frameHeaderLen + frames[1][1]/2
	var b [1]byte
	if _, err := f.ReadAt(b[:], mid); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], mid); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := obs.NewRegistry()
	s, err := Open(dir, reg)
	if err != nil {
		t.Fatalf("bit flip must not fail open: %v", err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("live after bit flip: %d, want 2", s.Len())
	}
	var got payload
	if ok, _ := s.Get(digests[1], &got); ok {
		t.Fatal("damaged record served")
	}
	// Records before AND after the damage survive — interior
	// corruption does not truncate the rest of the journal.
	for _, d := range []string{digests[0], digests[2]} {
		if ok, _ := s.Get(d, &got); !ok {
			t.Fatalf("undamaged record %s lost", d[:8])
		}
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt count: %+v", st)
	}
	if v := reg.Counter("store/corrupt_records").Value(); v != 1 {
		t.Fatalf("store/corrupt_records = %d", v)
	}
}

func TestVersionMismatchedEntrySkipped(t *testing.T) {
	dir := t.TempDir()
	digests := seed(t, dir, 2)
	// Append a structurally valid record from a "future" schema
	// generation: correct CRC, unknown entry version.
	e := entry{V: entryVersion + 7, Digest: Digest("future"), Exp: "e", Key: "k",
		Data: json.RawMessage(`{"GFlops":1}`)}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame(raw)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("version mismatch must not fail open: %v", err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("live: %d, want 2", s.Len())
	}
	var got payload
	if ok, _ := s.Get(Digest("future"), &got); ok {
		t.Fatal("version-mismatched record served")
	}
	for _, d := range digests {
		if ok, _ := s.Get(d, &got); !ok {
			t.Fatalf("current-version record %s lost", d[:8])
		}
	}
	if st := s.Stats(); st.Stale != 1 {
		t.Fatalf("stale count: %+v", st)
	}
}

func TestForeignJournalSetAsideNotDestroyed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("NOTASTORE\nsomething else\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("foreign journal must not fail open: %v", err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("live: %d", s.Len())
	}
	if err := s.Put(Digest("a"), "e", "a", payload{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".old"); err != nil {
		t.Fatalf("foreign journal not preserved: %v", err)
	}
}

func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				key := fmt.Sprintf("%d/%d", w, i)
				if err := s.Put(Digest(key), "e", key, payload{GFlops: float64(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, nil)
	defer s2.Close()
	if s2.Len() != workers*each {
		t.Fatalf("live after concurrent puts: %d, want %d", s2.Len(), workers*each)
	}
	var got payload
	for w := 0; w < workers; w++ {
		for i := 0; i < each; i++ {
			if ok, err := s2.Get(Digest(fmt.Sprintf("%d/%d", w, i)), &got); !ok || err != nil {
				t.Fatalf("lost %d/%d: ok=%v err=%v", w, i, ok, err)
			}
		}
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	if ok, err := s.Get("d", nil); ok || err != nil {
		t.Fatal("nil store Get")
	}
	if err := s.Put("d", "e", "k", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Dir() != "" || s.Stats() != (Stats{}) {
		t.Fatal("nil store accessors")
	}
}

func TestDigestSeparatesParts(t *testing.T) {
	if Digest("a", "bc") == Digest("ab", "c") {
		t.Fatal("part boundaries must be hashed")
	}
	if Digest("a") != Digest("a") {
		t.Fatal("digest not deterministic")
	}
	if Digest("v", "c", "e", "k") == Digest("v", "c", "e", "k2") {
		t.Fatal("job key ignored")
	}
}

// TestCRCDetectsEveryHeaderCorruption flips each header byte of a
// single-record journal and checks open never fails and never serves
// the record with a wrong frame.
func TestCRCDetectsEveryHeaderCorruption(t *testing.T) {
	for bit := 0; bit < frameHeaderLen; bit++ {
		dir := t.TempDir()
		d := seed(t, dir, 1)[0]
		frames := frameOffsets(t, dir)
		f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		off := frames[0][0] + int64(bit)
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x01
		if _, err := f.WriteAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		f.Close()
		s, err := Open(dir, nil)
		if err != nil {
			t.Fatalf("header byte %d: open failed: %v", bit, err)
		}
		var got payload
		if ok, _ := s.Get(d, &got); ok && got.Label != "x" {
			t.Fatalf("header byte %d: served damaged data %+v", bit, got)
		}
		s.Close()
	}
}

// sanity-check the CRC polynomial choice is wired (Castagnoli, not IEEE).
func TestChecksumIsCastagnoli(t *testing.T) {
	p := []byte("opm")
	if crc32.Checksum(p, castagnoli) == crc32.ChecksumIEEE(p) {
		t.Skip("polynomials coincide on this input")
	}
	fr := frame(p)
	if binary.BigEndian.Uint32(fr[4:8]) != crc32.Checksum(p, castagnoli) {
		t.Fatal("frame checksum is not CRC-32C")
	}
}
