package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCompactionWhileReaderReplays pins the property a long-running
// serve daemon leans on: a reader replaying the journal concurrently
// with appends and compactions always sees a structurally sound file.
// Compaction commits by renaming a fresh journal over the path, so a
// reader holding an fd keeps its consistent pre-compaction snapshot,
// and a reader opening at any instant gets either the old or the new
// journal — never a half-rewritten one. Appends are a single write of
// a framed record, so the worst a racing reader observes is a short
// tail, which scanJournal truncates rather than misparses.
func TestCompactionWhileReaderReplays(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const total = 300
	digests := make([]string, total)
	valid := make(map[string]bool, total)
	for i := range digests {
		digests[i] = Digest("reader-replay", fmt.Sprint(i))
		valid[digests[i]] = true
	}
	put := func(i int) {
		t.Helper()
		if err := s.Put(digests[i], "replay-test", fmt.Sprint(i), map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	// Seed entries plus superseding re-puts so every Compact has
	// garbage to drop (a no-garbage compact still rewrites, but this
	// keeps the journal genuinely shrinking under the reader).
	for i := 0; i < 50; i++ {
		put(i)
		put(i)
	}

	stop := make(chan struct{})
	var readerErr atomic.Value
	fail := func(format string, args ...any) {
		readerErr.Store(fmt.Errorf(format, args...))
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		path := filepath.Join(dir, journalName)
		magic := make([]byte, len(journalMagic))
		for replays := 0; ; replays++ {
			select {
			case <-stop:
				if replays == 0 {
					fail("reader finished zero replays — test raced to completion")
				}
				return
			default:
			}
			f, err := os.Open(path)
			if err != nil {
				// Rename is atomic: the path must always resolve.
				fail("journal vanished mid-compaction: %v", err)
				return
			}
			if _, err := io.ReadFull(f, magic); err != nil || string(magic) != journalMagic {
				fail("bad magic under concurrent compaction: %q err=%v", magic, err)
				f.Close()
				return
			}
			fi, err := f.Stat()
			if err != nil {
				fail("stat: %v", err)
				f.Close()
				return
			}
			out := scanJournal(f, int64(len(journalMagic)), fi.Size()-int64(len(journalMagic)))
			f.Close()
			if out.corrupt > 0 || out.stale > 0 {
				fail("replay under concurrent compaction saw %d corrupt, %d stale records",
					out.corrupt, out.stale)
				return
			}
			for _, e := range out.entries {
				if !valid[e.Digest] {
					fail("replay saw foreign digest %q", e.Digest)
					return
				}
			}
		}
	}()

	for i := 50; i < total; i++ {
		put(i)
		if i%2 == 0 {
			put(i) // supersede — garbage for the next compact
		}
		if i%25 == 0 {
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err, ok := readerErr.Load().(error); ok {
		t.Fatal(err)
	}

	// The surviving store replays to exactly the live set.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != total {
		t.Fatalf("reopened store has %d live entries, want %d", s2.Len(), total)
	}
	st := s2.Stats()
	if st.Corrupt != 0 || st.Stale != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("reopened store found damage: %+v", st)
	}
}
