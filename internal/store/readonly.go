package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Entry is one live journal record as a read-only scan sees it: the
// content address, its human-readable provenance, and the cached
// result bytes verbatim.
type Entry struct {
	Digest string
	Exp    string
	Key    string
	Data   json.RawMessage
}

// ReadStats is the damage tally of one read-only journal scan. The
// fields mirror Stats but count only what this scan observed — nothing
// is repaired, truncated, or set aside.
type ReadStats struct {
	// Entries is the number of live records returned (after
	// superseding: a digest committed twice counts once).
	Entries int
	// Superseded counts records shadowed by a later commit to the same
	// digest within this journal.
	Superseded int
	// Corrupt counts interior records whose checksum or JSON failed;
	// Stale counts version-mismatched records, or 1 for a whole journal
	// whose magic line is foreign (no records are returned then).
	Corrupt, Stale int
	// TruncatedBytes is the length of the unreadable tail — torn bytes
	// a crashed writer left behind, or bytes a live writer is still
	// appending. A read-only scan leaves them on disk untouched.
	TruncatedBytes int64
}

// ReadJournal scans the journal in dir without opening the store: no
// truncation, no repair, no write handle. This is the only safe way to
// observe a journal another process may still be appending to — a
// shard coordinator resuming after a crash reads orphaned workers'
// journals this way, where Open's torn-tail truncation would corrupt a
// file mid-append. Entries come back in first-commit order with later
// same-digest commits superseding earlier ones, exactly as Open's
// replay would index them. A missing journal (or missing dir) is an
// empty store, not an error.
func ReadJournal(dir string) ([]Entry, ReadStats, error) {
	var st ReadStats
	f, err := os.Open(filepath.Join(dir, journalName))
	if os.IsNotExist(err) {
		return nil, st, nil
	}
	if err != nil {
		return nil, st, fmt.Errorf("store: %w", err)
	}
	defer f.Close()

	fi, err := f.Stat()
	if err != nil {
		return nil, st, fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		return nil, st, nil
	}
	magic := make([]byte, len(journalMagic))
	//opmlint:allow errdiscard — a short read and a read error mean the same thing here: no trustable magic, reported as a stale journal
	if n, _ := f.ReadAt(magic, 0); n < len(journalMagic) || string(magic) != journalMagic {
		st.Stale = 1
		return nil, st, nil
	}
	if _, err := f.Seek(int64(len(journalMagic)), 0); err != nil {
		return nil, st, fmt.Errorf("store: %w", err)
	}
	out := scanJournal(f, int64(len(journalMagic)), size-int64(len(journalMagic)))

	index := make(map[string]int, len(out.entries))
	var live []Entry
	for _, e := range out.entries {
		ne := Entry{Digest: e.Digest, Exp: e.Exp, Key: e.Key, Data: e.Data}
		if i, ok := index[e.Digest]; ok {
			st.Superseded++
			live[i] = ne
			continue
		}
		index[e.Digest] = len(live)
		live = append(live, ne)
	}
	st.Entries = len(live)
	st.Corrupt = out.corrupt
	st.Stale += out.stale
	st.TruncatedBytes = out.truncated
	return live, st, nil
}
