package store

import (
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// skipInShort keeps the chaos tier out of -short runs: CI runs the
// quick build/test/lint split (.github/workflows/ci.yml); the chaos
// scenarios run locally under the race detector via scripts/check.sh.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("chaos tier is local-only (scripts/check.sh); skipped under -short")
	}
}

func chaosInjector(t *testing.T, kind faultinject.Kind, rate float64) *faultinject.Injector {
	t.Helper()
	in := faultinject.New(5)
	if err := in.Add(faultinject.PointStore, kind, rate, 1, 0); err != nil {
		t.Fatal(err)
	}
	return in
}

// TestTornWritesAreAbsorbed checks the torn-write chaos vector: every
// Put commits despite the injected crash-mid-append, the damage and
// its in-place repair are both counted, and a reopen replays a clean
// journal — no corrupt records, no truncated tail, every value intact.
func TestTornWritesAreAbsorbed(t *testing.T) {
	skipInShort(t)
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := openT(t, dir, reg)
	s.SetInjector(chaosInjector(t, faultinject.KindTorn, 1))
	want := map[string]payload{}
	for _, k := range []string{"m-001", "m-002", "m-003", "m-004"} {
		v := payload{GFlops: float64(len(k)) * 1.5, Label: k}
		want[Digest("v1", k)] = v
		if err := s.Put(Digest("v1", k), "sparse/SpMV", k, v); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.TornWrites != 4 || st.WriteRepairs != 4 {
		t.Fatalf("torn/repairs = %d/%d, want 4/4", st.TornWrites, st.WriteRepairs)
	}
	if reg.Counter("store/torn_writes").Value() != 4 || reg.Counter("store/write_repairs").Value() != 4 {
		t.Fatal("torn-write counters not published")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, nil)
	defer s2.Close()
	st2 := s2.Stats()
	if st2.Corrupt != 0 || st2.TruncatedBytes != 0 {
		t.Fatalf("repaired journal still damaged on reopen: %+v", st2)
	}
	if s2.Len() != len(want) {
		t.Fatalf("reopen lost records: %d of %d", s2.Len(), len(want))
	}
	for d, w := range want {
		var got payload
		if ok, err := s2.Get(d, &got); err != nil || !ok || got != w {
			t.Fatalf("get %s after torn-write run: ok=%v err=%v got=%+v", d, ok, err, got)
		}
	}
}

// TestCorruptWritesDetectedOnReplay checks the silent-damage vector:
// the running session keeps serving the good in-memory entry, but the
// bit-flipped journal record fails its CRC on reopen, is skipped and
// counted, and the cell falls back to a miss (the recompute path).
func TestCorruptWritesDetectedOnReplay(t *testing.T) {
	skipInShort(t)
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := openT(t, dir, reg)
	s.SetInjector(chaosInjector(t, faultinject.KindCorrupt, 1))
	d := Digest("v1", "m-corrupt")
	want := payload{GFlops: 3.25, Label: "m-corrupt"}
	if err := s.Put(d, "sparse/SpMV", "m-corrupt", want); err != nil {
		t.Fatal(err)
	}
	if s.Stats().CorruptWrites != 1 || reg.Counter("store/corrupt_writes").Value() != 1 {
		t.Fatal("corrupt write not counted")
	}
	// Same session: the in-memory index still holds the good value.
	var got payload
	if ok, err := s.Get(d, &got); err != nil || !ok || got != want {
		t.Fatalf("same-session get after corrupt write: ok=%v err=%v got=%+v", ok, err, got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := obs.NewRegistry()
	s2 := openT(t, dir, reg2)
	defer s2.Close()
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("reopen Corrupt = %d, want 1 (%+v)", st.Corrupt, st)
	}
	if reg2.Counter("store/corrupt_records").Value() != 1 {
		t.Fatal("corrupt record not counted on replay")
	}
	if ok, _ := s2.Get(d, &got); ok {
		t.Fatal("bit-flipped record served after reopen")
	}
	// The miss is survivable: the cell recomputes and recommits.
	s2.SetInjector(nil) // chaos over
	if err := s2.Put(d, "sparse/SpMV", "m-corrupt", want); err != nil {
		t.Fatal(err)
	}
	if ok, err := s2.Get(d, &got); err != nil || !ok || got != want {
		t.Fatalf("recommit after corruption: ok=%v err=%v", ok, err)
	}
}

// TestStoreChaosMix interleaves torn, corrupt and clean writes (rate
// 0.5 over many keys) and checks the session-end invariant: clean +
// torn records replay, corrupt ones drop, and the reopened store
// serves exactly the surviving set.
func TestStoreChaosMix(t *testing.T) {
	skipInShort(t)
	dir := t.TempDir()
	s := openT(t, dir, nil)
	in := faultinject.New(9)
	if err := in.Add(faultinject.PointStore, faultinject.KindTorn, 0.4, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := in.Add(faultinject.PointStore, faultinject.KindCorrupt, 0.4, 1, 0); err != nil {
		t.Fatal(err)
	}
	s.SetInjector(in)
	const n = 64
	for i := 0; i < n; i++ {
		k := Digest("mix", string(rune('a'+i%26)), string(rune('0'+i/26)))
		if err := s.Put(k, "exp", k, payload{GFlops: float64(i), Label: k}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.TornWrites == 0 || st.CorruptWrites == 0 {
		t.Fatalf("chaos mix fired torn=%d corrupt=%d, want both > 0", st.TornWrites, st.CorruptWrites)
	}
	if st.TornWrites != st.WriteRepairs {
		t.Fatalf("unrepaired torn writes: %d torn, %d repairs", st.TornWrites, st.WriteRepairs)
	}
	if st.Commits != n {
		t.Fatalf("commits = %d, want %d (damage must not lose commits this session)", st.Commits, n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, nil)
	defer s2.Close()
	st2 := s2.Stats()
	if st2.Corrupt != st.CorruptWrites {
		t.Fatalf("reopen dropped %d records, want %d (every corrupt write, nothing else)",
			st2.Corrupt, st.CorruptWrites)
	}
	if got, want := s2.Len(), n-st.CorruptWrites; got != want {
		t.Fatalf("survivors = %d, want %d", got, want)
	}
}

// TestSetInjectorNilSafety checks the chaos seam's off switches: a nil
// store and a detached injector both no-op.
func TestSetInjectorNilSafety(t *testing.T) {
	var s *Store
	s.SetInjector(faultinject.New(1)) // must not panic

	dir := t.TempDir()
	s2 := openT(t, dir, nil)
	defer s2.Close()
	s2.SetInjector(chaosInjector(t, faultinject.KindTorn, 1))
	s2.SetInjector(nil)
	if err := s2.Put(Digest("k"), "exp", "k", payload{GFlops: 1}); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.TornWrites != 0 {
		t.Fatal("detached injector still firing")
	}
}
