package store

import (
	"fmt"
	"io"

	"repro/internal/faultinject"
)

// This file is the store's chaos seam: with an injector attached
// (opmbench -faults, the chaos suite), Put routes its journal append
// through the injector's "store" point. Without one — the production
// path — the only cost is a nil check inside faultinject.StoreWrite.
//
// Two failure modes are modelled, matching the two damage classes the
// open-time scan repairs:
//
//   - torn: a crash mid-append. The frame is written short, exactly the
//     state a killed process leaves, and then repaired the way reopen
//     would repair it — truncate the torn tail, append the full frame.
//     The commit still lands; the counters record that damage happened
//     and was healed (store/torn_writes, store/write_repairs).
//
//   - corrupt: silent media damage. A payload bit flips after the CRC
//     is computed, so the running session is unaffected (the in-memory
//     index holds the good entry) but replay on the next open fails the
//     record's checksum, skips it, and the cell recomputes — the
//     degraded-but-correct path (store/corrupt_writes at damage time,
//     store/corrupt_records at detection time).

// SetInjector attaches (or, with nil, detaches) the chaos injector
// consulted on every journal append. Safe on a nil store.
func (s *Store) SetInjector(in *faultinject.Injector) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inj = in
}

// appendFrame journals one framed payload, routing through the chaos
// injector. Caller holds mu.
func (s *Store) appendFrame(digest string, payload []byte) error {
	buf := frame(payload)
	switch s.inj.StoreWrite(digest) {
	case faultinject.KindTorn:
		off, err := s.f.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}
		// Crash mid-append: only a prefix of the frame reaches the file.
		if _, err := s.f.Write(buf[:frameHeaderLen+len(payload)/2]); err != nil {
			return err
		}
		s.stats.TornWrites++
		s.mTorn.Inc()
		// Repair exactly as reopen would: cut the torn tail, re-append.
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("repairing torn write: %w", err)
		}
		if _, err := s.f.Seek(off, io.SeekStart); err != nil {
			return err
		}
		s.stats.WriteRepairs++
		s.mRepairs.Inc()
	case faultinject.KindCorrupt:
		buf = append([]byte(nil), buf...)
		// Flip one payload bit after the CRC was computed: invisible
		// now, caught by the checksum on the next replay.
		buf[frameHeaderLen] ^= 0x80
		s.stats.CorruptWrites++
		s.mCorruptW.Inc()
	}
	_, err := s.f.Write(buf)
	return err
}
