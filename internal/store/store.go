// Package store is the persistent, content-addressed experiment
// result store behind checkpointed sweeps and crash-safe resume. A
// result is keyed by a deterministic digest of (model version,
// platform+mode configuration hash, sweep family, job key) and
// persisted the moment its job finishes, through an append-only
// journal of length-prefixed, checksummed JSON records. Opening a
// store replays the journal: a torn final record (crash mid-append) is
// truncated away, an interior record with a damaged checksum or an
// unknown schema version is skipped, and everything else becomes the
// in-memory index. The journal is the single source of truth; Compact
// rewrites it without dead records and refreshes a human-readable
// index.json beside it, both atomically.
//
// The store never feeds anything that is not byte-identical to what a
// cold run would compute: cached payloads are the exact JSON of the
// original result, and Go's float64 JSON round trip is exact, so a
// warm sweep renders the same report bytes as a cold one (the
// warm==cold equivalence contract; see DESIGN.md).
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Store is a content-addressed result store backed by one journal
// file in a directory. All methods are safe for concurrent use; Get
// and Put on a nil *Store report a miss and drop the commit, so
// callers without a store never nil-check.
type Store struct {
	mu    sync.Mutex
	dir   string
	f     *os.File // journal, positioned at its end
	index map[string]entry
	order []string // digests in first-commit order (compaction order)
	stats Stats

	reg *obs.Registry
	// inj, when non-nil, fault-injects journal appends (see chaos.go).
	inj *faultinject.Injector
	// Instruments resolve once at open; all nil (no-op) without a
	// registry.
	mHits, mMisses, mCommits, mCommitErrs *obs.Counter
	mCorrupt, mStale, mSuperseded         *obs.Counter
	mTorn, mCorruptW, mRepairs            *obs.Counter
}

// Stats is the running damage-and-usage tally of one store session.
type Stats struct {
	// Live is the number of distinct digests currently resolvable.
	Live int
	// Hits, Misses and Commits count Get/Put outcomes this session.
	Hits, Misses, Commits int
	// Corrupt and Stale count journal records dropped on open
	// (checksum/JSON damage and schema-version mismatch
	// respectively); Superseded counts records shadowed by a later
	// commit to the same digest.
	Corrupt, Stale, Superseded int
	// TruncatedBytes is how much torn tail the open-time scan cut.
	TruncatedBytes int64
	// TornWrites, CorruptWrites and WriteRepairs count chaos-injected
	// append damage this session (see chaos.go): short writes, silent
	// payload bit flips, and torn writes healed in place. All zero
	// without an injector.
	TornWrites, CorruptWrites, WriteRepairs int
}

// Open opens (creating if needed) the store in dir and replays its
// journal. Damage never fails the open: torn tails are truncated,
// unreadable or version-mismatched records are skipped and counted in
// Stats (and, with a registry, on store/corrupt_records and
// store/stale_records). reg may be nil; it receives the store's cache
// counters and an aggregate store/open span.
func Open(dir string, reg *obs.Registry) (*Store, error) {
	sp := reg.StartSpan("store/open")
	defer sp.End()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:         dir,
		f:           f,
		index:       map[string]entry{},
		reg:         reg,
		mHits:       reg.Counter("store/hits"),
		mMisses:     reg.Counter("store/misses"),
		mCommits:    reg.Counter("store/commits"),
		mCommitErrs: reg.Counter("store/commit_errors"),
		mCorrupt:    reg.Counter("store/corrupt_records"),
		mStale:      reg.Counter("store/stale_records"),
		mSuperseded: reg.Counter("store/superseded_records"),
		mTorn:       reg.Counter("store/torn_writes"),
		mCorruptW:   reg.Counter("store/corrupt_writes"),
		mRepairs:    reg.Counter("store/write_repairs"),
	}
	if err := s.replay(); err != nil {
		f.Close() //opmlint:allow errdiscard — best-effort close on a failed open; the replay error is returned
		return nil, err
	}
	return s, nil
}

// replay loads the journal into the index, repairing as it goes.
func (s *Store) replay() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		if _, err := s.f.Write([]byte(journalMagic)); err != nil {
			return fmt.Errorf("store: writing journal header: %w", err)
		}
		return nil
	}
	magic := make([]byte, len(journalMagic))
	//opmlint:allow errdiscard — a short read and a read error mean the same thing here: no trustable magic, handled by the set-aside path below
	if n, _ := s.f.ReadAt(magic, 0); n < len(journalMagic) || string(magic) != journalMagic {
		// A foreign or older-generation journal. Its framing cannot
		// be trusted, so recovery sets it aside (journal.old, for
		// manual inspection) and starts fresh rather than failing the
		// run or silently destroying the bytes.
		s.stats.Stale++
		s.mStale.Inc()
		s.f.Close() //opmlint:allow errdiscard — foreign journal we are about to set aside; its close error changes nothing about the recovery
		path := filepath.Join(s.dir, journalName)
		if err := os.Rename(path, path+".old"); err != nil {
			return fmt.Errorf("store: setting aside unreadable journal: %w", err)
		}
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.f = f
		if _, err := f.Write([]byte(journalMagic)); err != nil {
			return fmt.Errorf("store: writing journal header: %w", err)
		}
		return nil
	}
	if _, err := s.f.Seek(int64(len(journalMagic)), 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	out := scanJournal(s.f, int64(len(journalMagic)), size-int64(len(journalMagic)))
	for _, e := range out.entries {
		if _, ok := s.index[e.Digest]; ok {
			s.stats.Superseded++
			s.mSuperseded.Inc()
		} else {
			s.order = append(s.order, e.Digest)
		}
		s.index[e.Digest] = e
	}
	s.stats.Corrupt += out.corrupt
	s.stats.Stale += out.stale
	s.stats.TruncatedBytes = out.truncated
	s.mCorrupt.Add(int64(out.corrupt))
	s.mStale.Add(int64(out.stale))
	if out.truncated > 0 {
		if err := s.f.Truncate(out.goodEnd); err != nil {
			return fmt.Errorf("store: truncating torn journal tail: %w", err)
		}
	}
	if _, err := s.f.Seek(out.goodEnd, 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Get looks up a digest and unmarshals the cached result into out.
// It reports whether the lookup hit. A nil store always misses.
func (s *Store) Get(digest string, out any) (bool, error) {
	if s == nil {
		return false, nil
	}
	s.mu.Lock()
	e, ok := s.index[digest]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		s.mMisses.Inc()
		return false, nil
	}
	s.stats.Hits++
	s.mu.Unlock()
	s.mHits.Inc()
	if err := json.Unmarshal(e.Data, out); err != nil {
		return false, fmt.Errorf("store: decoding %s: %w", digest, err)
	}
	return true, nil
}

// GetRaw returns a copy of the cached JSON payload for digest without
// decoding it — the serving fast path: the bytes a hit returns are the
// exact bytes the original Put journaled, so a cache layered above the
// store (the serve daemon's hot set) can hold and serve them verbatim.
// Counts as a hit or miss exactly like Get. A nil store always misses.
func (s *Store) GetRaw(digest string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	e, ok := s.index[digest]
	if !ok {
		s.stats.Misses++
		s.mu.Unlock()
		s.mMisses.Inc()
		return nil, false
	}
	s.stats.Hits++
	data := make([]byte, len(e.Data))
	copy(data, e.Data)
	s.mu.Unlock()
	s.mHits.Inc()
	return data, true
}

// Put journals a result under its digest — one framed, checksummed
// append — and indexes it (last writer wins). This is the sweep's
// checkpoint: once Put returns, the result survives a crash. On a nil
// store Put is a no-op.
func (s *Store) Put(digest, exp, key string, v any) error {
	if s == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		s.countCommitErr()
		return fmt.Errorf("store: encoding %s: %w", digest, err)
	}
	e := entry{V: entryVersion, Digest: digest, Exp: exp, Key: key, Data: data}
	payload, err := json.Marshal(e)
	if err != nil {
		s.countCommitErr()
		return fmt.Errorf("store: encoding %s: %w", digest, err)
	}
	sp := s.reg.StartSpan("store/put")
	defer sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	//opmlint:allow lockscope — mu IS the single-writer journal serialization point: the append must happen under it or frames interleave
	if err := s.appendFrame(digest, payload); err != nil {
		s.mCommitErrs.Inc()
		return fmt.Errorf("store: journaling %s: %w", digest, err)
	}
	if _, ok := s.index[digest]; ok {
		s.stats.Superseded++
		s.mSuperseded.Inc()
	} else {
		s.order = append(s.order, digest)
	}
	s.index[digest] = e
	s.stats.Commits++
	s.mCommits.Inc()
	return nil
}

func (s *Store) countCommitErr() {
	s.mCommitErrs.Inc()
}

// Len returns the number of live entries (0 on a nil store).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Dir returns the store directory ("" on a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns the session's tally. Safe on a nil store.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Live = len(s.index)
	return st
}

// garbage reports whether the journal holds dead records worth
// compacting away. Caller holds mu.
func (s *Store) garbage() bool {
	return s.stats.Corrupt > 0 || s.stats.Stale > 0 || s.stats.Superseded > 0
}

// Compact rewrites the journal with only the live records, in
// first-commit order, via a temp file and rename — a crash mid-compact
// leaves the old journal intact. It then refreshes index.json.
func (s *Store) Compact() error {
	if s == nil {
		return nil
	}
	sp := s.reg.StartSpan("store/compact")
	defer sp.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	//opmlint:allow lockscope — mu IS the single-writer journal serialization point: compaction rewrites the journal and must exclude appends
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	path := filepath.Join(s.dir, journalName)
	tmp := path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// One cleanup path for every pre-rename failure: scrap the temp
	// file and leave the old journal as the source of truth.
	committed := false
	defer func() {
		if !committed {
			nf.Close()     //opmlint:allow errdiscard — best-effort scrap of the temp journal; the causing error is already being returned
			os.Remove(tmp) //opmlint:allow errdiscard — best-effort scrap of the temp journal; the causing error is already being returned
		}
	}()
	if _, err := nf.Write([]byte(journalMagic)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, digest := range s.order {
		payload, err := json.Marshal(s.index[digest])
		if err != nil {
			return fmt.Errorf("store: compacting %s: %w", digest, err)
		}
		if _, err := nf.Write(frame(payload)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := nf.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	committed = true
	s.f.Close() //opmlint:allow errdiscard — old pre-compaction fd; the rename already committed the new journal, nothing is actionable here
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening compacted journal: %w", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close() //opmlint:allow errdiscard — best-effort close of a fd we failed to seek; the Seek error is returned
		return fmt.Errorf("store: %w", err)
	}
	s.f = f
	s.stats.Corrupt, s.stats.Stale, s.stats.Superseded = 0, 0, 0
	return s.writeIndexLocked()
}

// indexFile is the shape of index.json: a compact, human-readable
// digest listing refreshed on Compact and Close. The journal remains
// the source of truth; the index is for inspection and tooling.
type indexFile struct {
	Version int          `json:"version"`
	Live    int          `json:"live"`
	Entries []indexEntry `json:"entries"`
}

type indexEntry struct {
	Digest string `json:"digest"`
	Exp    string `json:"exp"`
	Key    string `json:"key"`
	Bytes  int    `json:"bytes"`
}

func (s *Store) writeIndexLocked() error {
	idx := indexFile{Version: entryVersion, Live: len(s.index)}
	for _, digest := range s.order {
		e := s.index[digest]
		idx.Entries = append(idx.Entries, indexEntry{
			Digest: digest, Exp: e.Exp, Key: e.Key, Bytes: len(e.Data),
		})
	}
	sort.Slice(idx.Entries, func(a, b int) bool { return idx.Entries[a].Digest < idx.Entries[b].Digest })
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeAtomic(filepath.Join(s.dir, indexName), append(data, '\n'))
}

// Close compacts the journal if it accumulated dead records, writes
// index.json, and closes the file. Safe on a nil store.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.garbage() {
		//opmlint:allow lockscope — mu IS the single-writer journal serialization point: Close's final compact must exclude appends
		err = s.compactLocked()
	} else {
		//opmlint:allow lockscope — mu IS the single-writer journal serialization point: the index snapshot must be consistent with the journal
		err = s.writeIndexLocked()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Digest content-addresses one cached result from its identity parts
// — by convention (model version, config hash, sweep family, job key).
// Parts are length-prefixed before hashing so no concatenation of
// different parts can collide ("a","bc" never equals "ab","c").
func Digest(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
