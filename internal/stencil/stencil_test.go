package stencil

import (
	"math"
	"testing"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 4, 4); err == nil {
		t.Fatal("zero dimension accepted")
	}
	g, err := NewGrid(4, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cells() != 120 {
		t.Fatalf("cells = %d", g.Cells())
	}
	if g.FootprintBytes() != 960 {
		t.Fatalf("footprint = %d", g.FootprintBytes())
	}
}

func TestGridAccessAndHalo(t *testing.T) {
	g, _ := NewGrid(3, 3, 3)
	g.Set(1, 2, 0, 7)
	if g.At(1, 2, 0) != 7 {
		t.Fatal("Set/At broken")
	}
	// Halo cells are addressable via the stencil but zero: setting an
	// interior cell must not leak.
	if g.At(0, 0, 0) != 0 {
		t.Fatal("unexpected nonzero cell")
	}
}

func TestCoefficientsSumToZero(t *testing.T) {
	// A second-derivative stencil must annihilate constants:
	// c0 + 2*sum(c_r) == 0 (per axis).
	s := Coeff[0]
	for r := 1; r <= Radius; r++ {
		s += 2 * Coeff[r]
	}
	if math.Abs(s) > 1e-12 {
		t.Fatalf("stencil does not annihilate constants: %v", s)
	}
}

func TestStepConstantFieldStaysConstant(t *testing.T) {
	// With cur = prev = const, lap ≈ 0 so next = 2c - c = c.
	nx, ny, nz := 20, 20, 20
	cur, _ := NewGrid(nx, ny, nz)
	prev, _ := NewGrid(nx, ny, nz)
	next, _ := NewGrid(nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				cur.Set(x, y, z, 5)
				prev.Set(x, y, z, 5)
			}
		}
	}
	// Fill halo too so boundary cells see a constant field.
	fillHalo(cur, 5)
	if err := Step(next, cur, prev, 0.1, Block{8, 8, 8}, 2); err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if d := math.Abs(next.At(x, y, z) - 5); d > worst {
					worst = d
				}
			}
		}
	}
	if worst > 1e-5 {
		t.Fatalf("constant field drifted by %v", worst)
	}
}

// fillHalo sets every storage cell (including halo) of cells currently
// zero to v — test helper for constant-field experiments.
func fillHalo(g *Grid, v float64) {
	for i := range g.data {
		if g.data[i] == 0 {
			g.data[i] = v
		}
	}
}

func TestStepMatchesDirectEvaluation(t *testing.T) {
	nx, ny, nz := 24, 20, 18
	cur, _ := NewGrid(nx, ny, nz)
	prev, _ := NewGrid(nx, ny, nz)
	next, _ := NewGrid(nx, ny, nz)
	cur.FillRandom(1)
	prev.FillRandom(2)
	const v2dt2 = 0.25
	if err := Step(next, cur, prev, v2dt2, Block{7, 5, 9}, 3); err != nil {
		t.Fatal(err)
	}
	// Direct evaluation at a few interior points.
	points := [][3]int{{12, 10, 9}, {8, 8, 8}, {0, 0, 0}, {23, 19, 17}}
	for _, pt := range points {
		x, y, z := pt[0], pt[1], pt[2]
		lap := 3 * Coeff[0] * cur.At(x, y, z)
		for r := 1; r <= Radius; r++ {
			lap += Coeff[r] * (atSafe(cur, x+r, y, z) + atSafe(cur, x-r, y, z) +
				atSafe(cur, x, y+r, z) + atSafe(cur, x, y-r, z) +
				atSafe(cur, x, y, z+r) + atSafe(cur, x, y, z-r))
		}
		want := 2*cur.At(x, y, z) - prev.At(x, y, z) + v2dt2*lap
		if d := math.Abs(next.At(x, y, z) - want); d > 1e-12 {
			t.Fatalf("cell %v: got %v want %v", pt, next.At(x, y, z), want)
		}
	}
}

// atSafe reads a cell that may sit in the halo (returns the stored
// halo value, zero by default).
func atSafe(g *Grid, x, y, z int) float64 { return g.data[g.idx(x, y, z)] }

func TestStepBlockInvariance(t *testing.T) {
	// Result must be identical regardless of blocking.
	nx, ny, nz := 30, 26, 22
	mk := func() (*Grid, *Grid, *Grid) {
		cur, _ := NewGrid(nx, ny, nz)
		prev, _ := NewGrid(nx, ny, nz)
		next, _ := NewGrid(nx, ny, nz)
		cur.FillRandom(4)
		prev.FillRandom(5)
		return cur, prev, next
	}
	cur1, prev1, next1 := mk()
	cur2, prev2, next2 := mk()
	if err := Step(next1, cur1, prev1, 0.3, Block{64, 64, 96}, 1); err != nil {
		t.Fatal(err)
	}
	if err := Step(next2, cur2, prev2, 0.3, Block{5, 7, 3}, 4); err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if d := math.Abs(next1.At(x, y, z) - next2.At(x, y, z)); d > worst {
					worst = d
				}
			}
		}
	}
	if worst != 0 {
		t.Fatalf("blocking changed the result by %v", worst)
	}
}

func TestStepErrors(t *testing.T) {
	a, _ := NewGrid(8, 8, 8)
	b, _ := NewGrid(8, 8, 9)
	if Step(a, b, a, 0.1, DefaultBlock, 1) == nil {
		t.Fatal("dimension mismatch accepted")
	}
	c, _ := NewGrid(8, 8, 8)
	if Step(a, c, c, 0.1, Block{0, 1, 1}, 1) == nil {
		t.Fatal("bad block accepted")
	}
}

func TestRunRotatesGrids(t *testing.T) {
	cur, _ := NewGrid(16, 16, 16)
	prev, _ := NewGrid(16, 16, 16)
	scratch, _ := NewGrid(16, 16, 16)
	cur.FillRandom(6)
	prev.FillRandom(7)
	out, err := Run(cur, prev, scratch, 0.1, 4, Block{8, 8, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || out.Cells() != 4096 {
		t.Fatal("Run returned bad grid")
	}
	// Energy should stay finite for a small CFL factor.
	var sum float64
	for z := 0; z < 16; z++ {
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				v := out.At(x, y, z)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatal("solution blew up")
				}
				sum += v * v
			}
		}
	}
	if sum == 0 {
		t.Fatal("solution vanished")
	}
}

func TestFlops(t *testing.T) {
	if Flops(1000, 3) != 61*1000*3 {
		t.Fatal("Flops formula wrong")
	}
}

func BenchmarkStep(b *testing.B) {
	nx, ny, nz := 128, 128, 64
	cur, _ := NewGrid(nx, ny, nz)
	prev, _ := NewGrid(nx, ny, nz)
	next, _ := NewGrid(nx, ny, nz)
	cur.FillRandom(1)
	prev.FillRandom(2)
	b.SetBytes(cur.Cells() * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Step(next, cur, prev, 0.1, DefaultBlock, 0); err != nil {
			b.Fatal(err)
		}
		next, cur, prev = prev, next, cur
	}
	b.ReportMetric(Flops(cur.Cells(), b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}
