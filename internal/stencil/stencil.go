// Package stencil implements the paper's structured-grid kernel: a 3D
// finite-difference wave propagator matching YASK's "iso3dfd" —
// 16th-order in space (radius-8 star stencil over 48 neighbour cells)
// and 2nd-order in time — with the spatial cache blocking (default
// 64×64×96) the paper cites.
package stencil

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
)

// Radius is the half-width of the 16th-order star stencil.
const Radius = 8

// FlopsPerCell is the operation count per grid cell the paper uses
// (Table 2: 61 operations through 48 neighbouring cells).
const FlopsPerCell = 61

// Coeff holds the per-axis 16th-order central-difference
// second-derivative weights (Fornberg); the 3D Laplacian applies
// Coeff[0] once per axis. Computed exactly in init via
//
//	c_k = 2·(−1)^{k+1}·(M!)² / (k²·(M−k)!·(M+k)!),  c_0 = −2·Σ c_k
//
// with M = Radius = 8.
var Coeff [Radius + 1]float64

func init() {
	fact := func(n int) float64 {
		f := 1.0
		for i := 2; i <= n; i++ {
			f *= float64(i)
		}
		return f
	}
	const m = Radius
	fm := fact(m)
	sum := 0.0
	for k := 1; k <= m; k++ {
		c := 2 * fm * fm / (float64(k*k) * fact(m-k) * fact(m+k))
		if k%2 == 0 {
			c = -c
		}
		Coeff[k] = c
		sum += c
	}
	Coeff[0] = -2 * sum
}

// Grid is a 3D scalar field with halo padding of Radius cells on every
// side, stored x-fastest.
type Grid struct {
	NX, NY, NZ int // interior dimensions
	sx, sy     int // strides
	data       []float64
}

// NewGrid allocates a zeroed grid of interior size nx×ny×nz.
func NewGrid(nx, ny, nz int) (*Grid, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("stencil: bad grid %dx%dx%d", nx, ny, nz)
	}
	g := &Grid{NX: nx, NY: ny, NZ: nz}
	g.sx = nx + 2*Radius
	g.sy = g.sx * (ny + 2*Radius)
	g.data = make([]float64, g.sy*(nz+2*Radius))
	return g, nil
}

// idx maps interior coordinates (0-based) to storage offsets.
func (g *Grid) idx(x, y, z int) int {
	return (z+Radius)*g.sy + (y+Radius)*g.sx + (x + Radius)
}

// At returns the value at interior cell (x, y, z).
func (g *Grid) At(x, y, z int) float64 { return g.data[g.idx(x, y, z)] }

// Set assigns interior cell (x, y, z).
func (g *Grid) Set(x, y, z int, v float64) { g.data[g.idx(x, y, z)] = v }

// Cells returns the interior cell count.
func (g *Grid) Cells() int64 { return int64(g.NX) * int64(g.NY) * int64(g.NZ) }

// FootprintBytes returns the paper's Table 2 accounting of 8 bytes per
// cell per grid; a 2nd-order-in-time propagation holds three grids
// (prev, cur, next) but streams ~8 bytes per cell per sweep.
func (g *Grid) FootprintBytes() int64 { return g.Cells() * 8 }

// FillRandom fills the interior with deterministic values.
func (g *Grid) FillRandom(seed uint64) {
	rng := rand.New(rand.NewPCG(seed, seed|1))
	for z := 0; z < g.NZ; z++ {
		for y := 0; y < g.NY; y++ {
			base := g.idx(0, y, z)
			row := g.data[base : base+g.NX]
			for i := range row {
				row[i] = rng.Float64()
			}
		}
	}
}

// Block describes the spatial cache-blocking dimensions; the paper's
// runs use 64×64×96 (≈3 MB working set).
type Block struct{ X, Y, Z int }

// DefaultBlock is the paper's blocking.
var DefaultBlock = Block{X: 64, Y: 64, Z: 96}

// Step advances the wave equation one time step:
//
//	next = 2·cur − prev + v²Δt² · ∇²₁₆(cur)
//
// blocked spatially and parallel over Z-slabs of blocks. next, cur and
// prev must share dimensions; next must not alias cur or prev.
func Step(next, cur, prev *Grid, v2dt2 float64, blk Block, workers int) error {
	if next.NX != cur.NX || next.NY != cur.NY || next.NZ != cur.NZ ||
		prev.NX != cur.NX || prev.NY != cur.NY || prev.NZ != cur.NZ {
		return fmt.Errorf("stencil: grid dimension mismatch")
	}
	if blk.X < 1 || blk.Y < 1 || blk.Z < 1 {
		return fmt.Errorf("stencil: bad block %+v", blk)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type task struct{ z0, z1 int }
	tasks := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				stepSlab(next, cur, prev, v2dt2, blk, t.z0, t.z1)
			}
		}()
	}
	for z0 := 0; z0 < cur.NZ; z0 += blk.Z {
		z1 := z0 + blk.Z
		if z1 > cur.NZ {
			z1 = cur.NZ
		}
		tasks <- task{z0, z1}
	}
	close(tasks)
	wg.Wait()
	return nil
}

func stepSlab(next, cur, prev *Grid, v2dt2 float64, blk Block, z0, z1 int) {
	sx, sy := cur.sx, cur.sy
	for y0 := 0; y0 < cur.NY; y0 += blk.Y {
		y1 := min(y0+blk.Y, cur.NY)
		for x0 := 0; x0 < cur.NX; x0 += blk.X {
			x1 := min(x0+blk.X, cur.NX)
			for z := z0; z < z1; z++ {
				for y := y0; y < y1; y++ {
					base := cur.idx(x0, y, z)
					c := cur.data
					for x := x0; x < x1; x++ {
						i := base + (x - x0)
						lap := 3 * Coeff[0] * c[i] // center tap once per axis
						for r := 1; r <= Radius; r++ {
							lap += Coeff[r] * (c[i+r] + c[i-r] +
								c[i+r*sx] + c[i-r*sx] +
								c[i+r*sy] + c[i-r*sy])
						}
						next.data[i] = 2*c[i] - prev.data[i] + v2dt2*lap
					}
				}
			}
		}
	}
}

// Run advances steps time steps, rotating the three grids, and returns
// the grid holding the final state.
func Run(cur, prev, scratch *Grid, v2dt2 float64, steps int, blk Block, workers int) (*Grid, error) {
	next := scratch
	for s := 0; s < steps; s++ {
		if err := Step(next, cur, prev, v2dt2, blk, workers); err != nil {
			return nil, err
		}
		prev, cur, next = cur, next, prev
	}
	return cur, nil
}

// Flops returns the Table 2 operation count 61 per cell per step.
func Flops(cells int64, steps int) float64 {
	return float64(cells) * FlopsPerCell * float64(steps)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
