package sweep

import "context"

// Cache is the engine's lookup/commit hook for memoized sweeps. A
// cached job bypasses the worker pool entirely — it never occupies a
// worker slot or counts as an executed job — and every job that does
// run is committed the moment it finishes (checkpointing), not in an
// end-of-run dump, so a cancelled sweep resumes from its last
// completed job.
//
// Implementations must be safe for concurrent use: Commit is called
// from worker goroutines as jobs complete. Lookup is called serially
// before the pool starts. A Lookup hit must return a result
// byte-equivalent to what fn would compute — the warm==cold report
// equivalence contract rests on it.
type Cache[J, R any] interface {
	// Lookup returns the memoized result for a job and whether it hit.
	Lookup(job J) (R, bool)
	// Commit persists one completed job's result. Failures must be
	// absorbed (counted, logged) — a broken cache may slow a sweep
	// down but must never fail it.
	Commit(job J, r R)
}

// MapCached is Map with memoization: jobs that hit the cache are
// resolved up front and only the misses are dispatched to the worker
// pool; each miss is committed to the cache as it completes. Results
// come back in submission order exactly as Map returns them, and any
// JobError indices refer to the original jobs slice. A nil cache makes
// MapCached identical to Map.
//
// Progress reports (and the ETA) cover the executed jobs but Done and
// Total include the cache hits, so a resumed 968-job sweep with 900
// hits reports 901/968, 902/968, ... rather than restarting at 1/68.
func MapCached[J, R any](ctx context.Context, e *Engine, jobs []J, cache Cache[J, R], fn func(ctx context.Context, w *Worker, job J) (R, error)) ([]R, error) {
	if cache == nil {
		return Map(ctx, e, jobs, fn)
	}
	results := make([]R, len(jobs))
	missIdx := make([]int, 0, len(jobs))
	for i, job := range jobs {
		if r, ok := cache.Lookup(job); ok {
			results[i] = r
		} else {
			missIdx = append(missIdx, i)
		}
	}
	hits := len(jobs) - len(missIdx)
	if len(missIdx) == 0 {
		if e != nil && e.Progress != nil && hits > 0 {
			e.Progress(Progress{Done: hits, Total: hits})
		}
		return results, nil
	}
	miss := make([]J, len(missIdx))
	for k, i := range missIdx {
		miss[k] = jobs[i]
	}
	sub := Engine{}
	if e != nil {
		sub = *e
	}
	if prog := sub.Progress; prog != nil && hits > 0 {
		sub.Progress = func(p Progress) {
			p.Done += hits
			p.Total += hits
			prog(p)
		}
	}
	missRes, err := Map(ctx, &sub, miss, func(ctx context.Context, w *Worker, job J) (R, error) {
		r, ferr := fn(ctx, w, job)
		if ferr == nil {
			cache.Commit(job, r)
		}
		return r, ferr
	})
	for k, i := range missIdx {
		results[i] = missRes[k]
	}
	return results, remapErrors(err, missIdx)
}

// remapErrors rewrites JobError indices from the miss slice back to
// the caller's original submission indices. Map returns its Errors
// sorted by index and missIdx is ascending, so order is preserved.
func remapErrors(err error, missIdx []int) error {
	if err == nil {
		return nil
	}
	errs, ok := err.(Errors)
	if !ok {
		return err
	}
	out := make(Errors, len(errs))
	for k, je := range errs {
		out[k] = &JobError{Index: missIdx[je.Index], Err: je.Err}
	}
	return out
}
