package sweep

import (
	"context"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Cache is the engine's lookup/commit hook for memoized sweeps. A
// cached job bypasses the worker pool entirely — it never occupies a
// worker slot or counts as an executed job — and every job that does
// run is committed the moment it finishes (checkpointing), not in an
// end-of-run dump, so a cancelled sweep resumes from its last
// completed job.
//
// Implementations must be safe for concurrent use: Commit is called
// from worker goroutines as jobs complete. Lookup is called serially
// before the pool starts. A Lookup hit must return a result
// byte-equivalent to what fn would compute — the warm==cold report
// equivalence contract rests on it.
type Cache[J, R any] interface {
	// Lookup returns the memoized result for a job and whether it hit.
	Lookup(job J) (R, bool)
	// Commit persists one completed job's result. Failures must be
	// absorbed (counted, logged) — a broken cache may slow a sweep
	// down but must never fail it.
	Commit(job J, r R)
}

// TraceKeyer is the optional Cache extension that gives traced jobs
// their content-derived identity: TraceInfo returns the stable trace
// ID (derived from the same digest that addresses the job's cached
// result) and the human job key. When a traced MapCached's cache
// implements it, the run that computes a cell and every later run that
// serves it warm emit chains under the same trace ID — traces join
// against cached results across runs. Caches that don't implement it
// fall back to per-run sweep-sequence IDs.
type TraceKeyer[J any] interface {
	TraceInfo(job J) (id, key string)
}

// MapCached is Map with memoization: jobs that hit the cache are
// resolved up front and only the misses are dispatched to the worker
// pool; each miss is committed to the cache as it completes. Results
// come back in submission order exactly as Map returns them, and any
// JobError indices refer to the original jobs slice. A nil cache makes
// MapCached identical to Map.
//
// Progress reports (and the ETA) cover the executed jobs but Done and
// Total include the cache hits, so a resumed 968-job sweep with 900
// hits reports 901/968, 902/968, ... rather than restarting at 1/68.
//
// With e.Trace set, every job's chain opens with an enqueue here (in
// submission order) followed by its lookup verdict: hits emit
// store/hit and close immediately with a cache_hit done event (worker
// -1 — no worker ever touched them); misses emit store/miss, flow
// through Map under their digest-derived IDs, and emit store/commit as
// they checkpoint.
//
//opmlint:allow determinism — lookup/commit wall-clock feeds only trace events; results depend solely on the cache contents and fn, which the warm==cold equivalence tests pin byte-for-byte
func MapCached[J, R any](ctx context.Context, e *Engine, jobs []J, cache Cache[J, R], fn func(ctx context.Context, w *Worker, job J) (R, error)) ([]R, error) {
	if cache == nil {
		return Map(ctx, e, jobs, fn)
	}
	var tr *obs.Tracer
	if e != nil {
		tr = e.Trace
	}
	// Resolve every job's trace identity before any lookup: from the
	// cache's content digests when it offers them, else from the same
	// per-tracer sweep sequence Map would use.
	var traceIDs, traceKeys []string
	if tr != nil {
		traceIDs = make([]string, len(jobs))
		traceKeys = make([]string, len(jobs))
		if tk, ok := cache.(TraceKeyer[J]); ok {
			for i, job := range jobs {
				traceIDs[i], traceKeys[i] = tk.TraceInfo(job)
			}
		} else {
			sweepN := strconv.FormatUint(tr.NextSweep(), 10)
			for i := range jobs {
				idx := strconv.Itoa(i)
				traceIDs[i] = obs.TraceID("sweep", sweepN, "job", idx)
				traceKeys[i] = idx
			}
		}
	}
	results := make([]R, len(jobs))
	missIdx := make([]int, 0, len(jobs))
	for i, job := range jobs {
		var t0 time.Time
		if tr != nil {
			tr.Emit(traceIDs[i], obs.EvEnqueue, traceKeys[i], -1, 0, "")
			t0 = time.Now()
		}
		if r, ok := cache.Lookup(job); ok {
			results[i] = r
			if tr != nil {
				d := time.Since(t0)
				tr.Emit(traceIDs[i], obs.EvStoreHit, traceKeys[i], -1, d, "")
				tr.Emit(traceIDs[i], obs.EvDone, traceKeys[i], -1, d, "cache_hit")
			}
		} else {
			if tr != nil {
				tr.Emit(traceIDs[i], obs.EvStoreMiss, traceKeys[i], -1, time.Since(t0), "")
			}
			missIdx = append(missIdx, i)
		}
	}
	hits := len(jobs) - len(missIdx)
	if len(missIdx) == 0 {
		if e != nil && e.Progress != nil && hits > 0 {
			e.Progress(Progress{Done: hits, Total: hits})
		}
		return results, nil
	}
	miss := make([]J, len(missIdx))
	for k, i := range missIdx {
		miss[k] = jobs[i]
	}
	sub := Engine{}
	if e != nil {
		sub = *e
	}
	if tr != nil {
		// The misses keep their already-announced identities; Map must
		// not re-enqueue them under fresh sweep-sequence IDs.
		sub.traceMeta = func(k int) (string, string) {
			return traceIDs[missIdx[k]], traceKeys[missIdx[k]]
		}
	}
	if prog := sub.Progress; prog != nil && hits > 0 {
		sub.Progress = func(p Progress) {
			p.Done += hits
			p.Total += hits
			prog(p)
		}
	}
	missRes, err := Map(ctx, &sub, miss, func(ctx context.Context, w *Worker, job J) (R, error) {
		r, ferr := fn(ctx, w, job)
		if ferr == nil {
			if tr != nil {
				c0 := time.Now()
				cache.Commit(job, r)
				obs.TraceEventDur(ctx, obs.EvStoreCommit, time.Since(c0), "")
			} else {
				cache.Commit(job, r)
			}
		}
		return r, ferr
	})
	for k, i := range missIdx {
		results[i] = missRes[k]
	}
	return results, remapErrors(err, missIdx)
}

// remapErrors rewrites JobError indices from the miss slice back to
// the caller's original submission indices. Map returns its Errors
// sorted by index and missIdx is ascending, so order is preserved.
func remapErrors(err error, missIdx []int) error {
	if err == nil {
		return nil
	}
	errs, ok := err.(Errors)
	if !ok {
		return err
	}
	out := make(Errors, len(errs))
	for k, je := range errs {
		out[k] = &JobError{Index: missIdx[je.Index], Err: je.Err}
	}
	return out
}
