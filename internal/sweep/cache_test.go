package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// mapCache is a threadsafe map-backed Cache for tests.
type mapCache struct {
	mu      sync.Mutex
	data    map[int]string
	commits map[int]string
	lookups int
}

func newMapCache(warm map[int]string) *mapCache {
	if warm == nil {
		warm = map[int]string{}
	}
	return &mapCache{data: warm, commits: map[int]string{}}
}

func (c *mapCache) Lookup(job int) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	r, ok := c.data[job]
	return r, ok
}

func (c *mapCache) Commit(job int, r string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.commits[job] = r
	c.data[job] = r
}

func cachedFn(executed *sync.Map) func(context.Context, *Worker, int) (string, error) {
	return func(_ context.Context, _ *Worker, job int) (string, error) {
		executed.Store(job, true)
		return fmt.Sprintf("r%d", job), nil
	}
}

func TestMapCachedHitsBypassPoolAndKeepOrder(t *testing.T) {
	jobs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	warm := map[int]string{}
	for _, j := range jobs {
		if j%2 == 0 {
			warm[j] = fmt.Sprintf("r%d", j)
		}
	}
	cache := newMapCache(warm)
	var executed sync.Map
	results, err := MapCached(context.Background(), &Engine{Workers: 4}, jobs, cache, cachedFn(&executed))
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if want := fmt.Sprintf("r%d", j); results[i] != want {
			t.Fatalf("results[%d] = %q want %q", i, results[i], want)
		}
	}
	for _, j := range jobs {
		_, ran := executed.Load(j)
		if j%2 == 0 && ran {
			t.Fatalf("cached job %d executed", j)
		}
		if j%2 == 1 && !ran {
			t.Fatalf("uncached job %d skipped", j)
		}
	}
	// Only the misses were committed.
	if len(cache.commits) != 5 {
		t.Fatalf("commits: %v", cache.commits)
	}
	for j, r := range cache.commits {
		if j%2 != 1 || r != fmt.Sprintf("r%d", j) {
			t.Fatalf("bad commit %d=%q", j, r)
		}
	}
}

func TestMapCachedAllHitsRunsNothing(t *testing.T) {
	jobs := []int{1, 2, 3}
	warm := map[int]string{1: "r1", 2: "r2", 3: "r3"}
	var lastProgress Progress
	e := &Engine{Progress: func(p Progress) { lastProgress = p }}
	results, err := MapCached(context.Background(), e, jobs, newMapCache(warm),
		func(context.Context, *Worker, int) (string, error) {
			t.Fatal("fn called on fully warm sweep")
			return "", nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || results[0] != "r1" || results[2] != "r3" {
		t.Fatalf("results: %v", results)
	}
	if lastProgress.Done != 3 || lastProgress.Total != 3 {
		t.Fatalf("fully warm sweep should report completion: %+v", lastProgress)
	}
}

func TestMapCachedErrorIndicesAreOriginal(t *testing.T) {
	jobs := []int{10, 11, 12, 13, 14}
	warm := map[int]string{10: "r10", 12: "r12"} // misses: 11, 13, 14
	boom := errors.New("boom")
	_, err := MapCached(context.Background(), &Engine{Workers: 1}, jobs, newMapCache(warm),
		func(_ context.Context, _ *Worker, job int) (string, error) {
			if job == 13 {
				return "", boom
			}
			return fmt.Sprintf("r%d", job), nil
		})
	var errs Errors
	if !errors.As(err, &errs) || len(errs) != 1 {
		t.Fatalf("err = %v", err)
	}
	// Job 13 is miss #1 but submission index 3; the JobError must
	// carry the submission index.
	if errs[0].Index != 3 || !errors.Is(errs[0], boom) {
		t.Fatalf("JobError = %+v", errs[0])
	}
}

func TestMapCachedProgressIncludesHits(t *testing.T) {
	jobs := make([]int, 8)
	warm := map[int]string{}
	for i := range jobs {
		jobs[i] = i
		if i < 6 {
			warm[i] = fmt.Sprintf("r%d", i)
		}
	}
	var mu sync.Mutex
	var dones []int
	e := &Engine{Workers: 1, Progress: func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		dones = append(dones, p.Done)
		if p.Total != 8 {
			t.Errorf("Total = %d want 8", p.Total)
		}
	}}
	var executed sync.Map
	if _, err := MapCached(context.Background(), e, jobs, newMapCache(warm), cachedFn(&executed)); err != nil {
		t.Fatal(err)
	}
	if len(dones) != 2 || dones[0] != 7 || dones[1] != 8 {
		t.Fatalf("progress Done sequence: %v (want [7 8])", dones)
	}
}

func TestMapCachedNilCacheEqualsMap(t *testing.T) {
	jobs := []int{1, 2, 3}
	var executed sync.Map
	got, err := MapCached[int, string](context.Background(), nil, jobs, nil, cachedFn(&executed))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Map(context.Background(), nil, jobs, cachedFn(&executed))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil-cache MapCached diverges from Map at %d", i)
		}
	}
}

func TestMapCachedFailedJobsNotCommitted(t *testing.T) {
	jobs := []int{0, 1, 2}
	cache := newMapCache(nil)
	_, err := MapCached(context.Background(), &Engine{Workers: 1}, jobs, cache,
		func(_ context.Context, _ *Worker, job int) (string, error) {
			if job == 1 {
				return "", errors.New("bad cell")
			}
			return fmt.Sprintf("r%d", job), nil
		})
	if err == nil {
		t.Fatal("expected error")
	}
	if _, ok := cache.commits[1]; ok {
		t.Fatal("failed job was committed")
	}
	if len(cache.commits) != 2 {
		t.Fatalf("commits: %v", cache.commits)
	}
}
