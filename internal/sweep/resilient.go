package sweep

import (
	"context"
	"strconv"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// This file is the resilience half of the engine: the per-job loop that
// applies an Engine.Policy (retry, backoff, per-attempt deadline,
// circuit breaker) and fires the Engine.Inject "job" chaos point. With
// both nil, Map bypasses it entirely — the production fast path.

// resInstruments are the resilience counters one Map resolves up front
// (nil registry → nil counters → no-op increments).
type resInstruments struct {
	retries   *obs.Counter // resilience/retries: attempts beyond the first
	exhausted *obs.Counter // resilience/retry_exhausted: retryable jobs dropped after the last attempt
	quarant   *obs.Counter // resilience/quarantined: results rejected by the validation gate
	deadline  *obs.Counter // resilience/job_deadline_exceeded: attempts that outlived JobTimeout
	trips     *obs.Counter // resilience/breaker_trips: breakers opened
	shorted   *obs.Counter // resilience/breaker_short_circuits: jobs failed fast by an open breaker
}

func resolveResInstruments(reg *obs.Registry) resInstruments {
	return resInstruments{
		retries:   reg.Counter("resilience/retries"),
		exhausted: reg.Counter("resilience/retry_exhausted"),
		quarant:   reg.Counter("resilience/quarantined"),
		deadline:  reg.Counter("resilience/job_deadline_exceeded"),
		trips:     reg.Counter("resilience/breaker_trips"),
		shorted:   reg.Counter("resilience/breaker_short_circuits"),
	}
}

// runJobResilient runs one job under the engine's policy: the breaker
// gate, then up to Attempts() tries, each with its own attempt-stamped
// (and, with JobTimeout, deadline-bounded) context, separated by
// deterministic backoff sleeps that abort — without re-submitting — the
// moment the sweep context is cancelled.
func runJobResilient[J, R any](ctx context.Context, pol *resilience.Policy, inj *faultinject.Injector,
	br *resilience.Breaker, w *Worker, index int, job J,
	fn func(context.Context, *Worker, J) (R, error), mPanics *obs.Counter, ri resInstruments) (R, error) {
	var zero R
	if !br.Allow() {
		ri.shorted.Inc()
		obs.TraceEvent(ctx, obs.EvBreakerOpen, "short_circuit")
		return zero, resilience.ErrBreakerOpen
	}
	// The job key feeds the injector's fire decision and the backoff
	// jitter; the submission index is the one identity every job has.
	key := strconv.Itoa(index)
	attempts := pol.Attempts()
	timeout := pol.Timeout()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		obs.TraceEvent(ctx, obs.EvAttempt, strconv.Itoa(attempt+1))
		actx := resilience.WithAttempt(ctx, attempt)
		cancel := context.CancelFunc(func() {})
		if timeout > 0 {
			actx, cancel = context.WithTimeout(actx, timeout)
		}
		r, err := runJob(actx, w, job, fn, mPanics, inj, key)
		// Attribute attempt-deadline expiry (parent still alive) to the
		// policy: the failure is retryable, and a success that arrived
		// only after its deadline is no success at all.
		if timeout > 0 && actx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			err = &resilience.TimeoutError{Attempt: attempt, Limit: timeout}
			ri.deadline.Inc()
		}
		cancel()
		if err == nil {
			br.Success()
			return r, nil
		}
		lastErr = err
		if resilience.IsQuarantine(err) {
			ri.quarant.Inc()
		}
		if ctx.Err() != nil {
			// Whole-sweep cancellation is not a job failure: surface the
			// context error and leave the breaker alone.
			return zero, err
		}
		if !pol.Retryable(err) {
			break
		}
		if attempt+1 >= attempts {
			if attempts > 1 {
				ri.exhausted.Inc()
			}
			break
		}
		backoff := pol.Backoff(key, attempt+1)
		obs.TraceEventDur(ctx, obs.EvRetry, backoff, err.Error())
		if serr := pol.SleepBackoff(ctx, backoff); serr != nil {
			// Cancelled mid-backoff: the retry is never re-submitted.
			return zero, serr
		}
		ri.retries.Inc()
	}
	if br.Failure() {
		ri.trips.Inc()
		obs.TraceEvent(ctx, obs.EvBreakerOpen, "tripped")
	}
	return zero, lastErr
}
