package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMapPreservesSubmissionOrder checks results land at their job's
// index no matter how completion interleaves.
func TestMapPreservesSubmissionOrder(t *testing.T) {
	jobs := make([]int, 200)
	for i := range jobs {
		jobs[i] = i
	}
	e := &Engine{Workers: 8}
	out, err := Map(context.Background(), e, jobs, func(_ context.Context, _ *Worker, j int) (int, error) {
		// Stagger completion so later submissions often finish first.
		time.Sleep(time.Duration((j%7)*50) * time.Microsecond)
		return j * 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
}

// TestMapCollectsPerJobErrors checks a failing job neither kills the
// sweep nor displaces its neighbours' results.
func TestMapCollectsPerJobErrors(t *testing.T) {
	jobs := []int{0, 1, 2, 3, 4, 5}
	sentinel := errors.New("bad matrix")
	out, err := Map(context.Background(), &Engine{Workers: 3}, jobs, func(_ context.Context, _ *Worker, j int) (int, error) {
		if j%3 == 1 {
			return 0, fmt.Errorf("cell %d: %w", j, sentinel)
		}
		return j + 100, nil
	})
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("want Errors, got %T: %v", err, err)
	}
	if len(errs) != 2 || errs[0].Index != 1 || errs[1].Index != 4 {
		t.Fatalf("errs = %v", errs)
	}
	if !errors.Is(err, sentinel) {
		t.Fatal("Errors should unwrap to the job's cause")
	}
	for _, i := range []int{0, 2, 3, 5} {
		if out[i] != i+100 {
			t.Fatalf("surviving job %d lost its result: %d", i, out[i])
		}
	}
	kept, errs2, err2 := Compact(out, err)
	if err2 != nil {
		t.Fatalf("Compact should survive job failures: %v", err2)
	}
	if len(kept) != 4 || len(errs2) != 2 {
		t.Fatalf("Compact kept %d results, %d errors", len(kept), len(errs2))
	}
}

// TestMapRecoversPanics checks a panicking job is contained as its own
// error.
func TestMapRecoversPanics(t *testing.T) {
	out, err := Map(context.Background(), &Engine{Workers: 2}, []int{0, 1, 2}, func(_ context.Context, _ *Worker, j int) (string, error) {
		if j == 1 {
			panic("buffer overrun")
		}
		return "ok", nil
	})
	var errs Errors
	if !errors.As(err, &errs) || len(errs) != 1 || errs[0].Index != 1 {
		t.Fatalf("want one JobError at index 1, got %v", err)
	}
	if out[0] != "ok" || out[2] != "ok" {
		t.Fatalf("panic poisoned neighbouring jobs: %v", out)
	}
}

// TestMapCancellationIsPrompt checks a cancelled sweep stops quickly,
// keeps the results already computed, and marks the rest with the
// context error.
func TestMapCancellationIsPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := make([]int, 500)
	for i := range jobs {
		jobs[i] = i
	}
	var started atomic.Int64
	begin := time.Now()
	out, err := Map(ctx, &Engine{Workers: 2}, jobs, func(ctx context.Context, _ *Worker, j int) (int, error) {
		if started.Add(1) == 4 {
			cancel()
		}
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
		return j + 1, nil
	})
	if elapsed := time.Since(begin); elapsed > 3*time.Second {
		t.Fatalf("cancelled sweep took %v", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in %v", err)
	}
	var errs Errors
	if !errors.As(err, &errs) || !errs.Canceled() {
		t.Fatalf("want cancellation-marked Errors, got %v", err)
	}
	if len(errs) == len(jobs) {
		t.Fatal("no job completed before cancellation")
	}
	completed := 0
	for _, v := range out {
		if v != 0 {
			completed++
		}
	}
	if completed == 0 {
		t.Fatal("partial results lost")
	}
	if _, _, err := Compact(out, err); !errors.Is(err, context.Canceled) {
		t.Fatalf("Compact must treat cancellation as fatal, got %v", err)
	}
}

// TestWorkerPoolReusesResources checks Get builds once per worker and
// Drop forces a rebuild.
func TestWorkerPoolReusesResources(t *testing.T) {
	var builds atomic.Int64
	jobs := make([]int, 20)
	for i := range jobs {
		jobs[i] = i
	}
	_, err := Map(context.Background(), &Engine{Workers: 1}, jobs, func(_ context.Context, w *Worker, j int) (int, error) {
		v, err := w.Get("sim", func() (any, error) {
			builds.Add(1)
			return new(int), nil
		})
		if err != nil {
			return 0, err
		}
		*(v.(*int))++
		if j == 9 {
			w.Drop("sim")
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 2 {
		t.Fatalf("resource built %d times, want 2 (initial + post-Drop)", got)
	}
}

// TestProgressReporting checks every completion is reported and the
// final report covers the whole sweep.
func TestProgressReporting(t *testing.T) {
	var calls int
	var last Progress
	e := &Engine{Workers: 4, Progress: func(p Progress) {
		calls++
		last = p
	}}
	jobs := make([]int, 37)
	if _, err := Map(context.Background(), e, jobs, func(_ context.Context, _ *Worker, j int) (int, error) {
		return j, nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != len(jobs) {
		t.Fatalf("progress called %d times, want %d", calls, len(jobs))
	}
	if last.Done != len(jobs) || last.Total != len(jobs) {
		t.Fatalf("final progress %+v", last)
	}
}

// TestETAIsGuardedAndSmoothed pins the ETA contract: unknown (zero)
// on the first completed job of a sweep — one sample is not a trend —
// positive mid-sweep, zero again at completion, and never negative.
func TestETAIsGuardedAndSmoothed(t *testing.T) {
	reg := obs.NewRegistry()
	var reports []Progress
	e := &Engine{Workers: 1, Obs: reg, Progress: func(p Progress) {
		reports = append(reports, p)
	}}
	jobs := make([]int, 8)
	if _, err := Map(context.Background(), e, jobs, func(_ context.Context, _ *Worker, j int) (int, error) {
		time.Sleep(2 * time.Millisecond)
		return j, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(jobs) {
		t.Fatalf("%d reports, want %d", len(reports), len(jobs))
	}
	for _, p := range reports {
		if p.ETA < 0 {
			t.Fatalf("negative ETA: %+v", p)
		}
		switch {
		case p.Done < minETAJobs:
			if p.ETA != 0 {
				t.Fatalf("ETA %v extrapolated from %d job(s)", p.ETA, p.Done)
			}
		case p.Done == p.Total:
			if p.ETA != 0 {
				t.Fatalf("finished sweep still reports ETA %v", p.ETA)
			}
		default:
			if p.ETA == 0 {
				t.Fatalf("mid-sweep report lost its ETA: %+v", p)
			}
		}
	}
	// The last mid-sweep ETA also lands in the gauge before the final
	// report zeroes it.
	if got := reg.Gauge("sweep/eta_seconds").Value(); got != 0 {
		t.Fatalf("eta gauge not cleared at completion: %v", got)
	}
}

// TestMapRecordsTelemetry checks the engine's registry metrics: job
// and error counters, latency/queue-wait histograms, and a worker
// utilization in (0, 1].
func TestMapRecordsTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	e := &Engine{Workers: 2, Obs: reg}
	jobs := make([]int, 12)
	for i := range jobs {
		jobs[i] = i
	}
	_, err := Map(context.Background(), e, jobs, func(_ context.Context, _ *Worker, j int) (int, error) {
		time.Sleep(time.Millisecond)
		switch j {
		case 3:
			return 0, errors.New("bad cell")
		case 7:
			panic("modelled segfault")
		}
		return j, nil
	})
	var errs Errors
	if !errors.As(err, &errs) || len(errs) != 2 {
		t.Fatalf("want 2 job errors, got %v", err)
	}
	if got := reg.Counter("sweep/jobs").Value(); got != int64(len(jobs)) {
		t.Fatalf("sweep/jobs = %d, want %d", got, len(jobs))
	}
	if got := reg.Counter("sweep/job_errors").Value(); got != 2 {
		t.Fatalf("sweep/job_errors = %d, want 2", got)
	}
	if got := reg.Counter("sweep/job_panics").Value(); got != 1 {
		t.Fatalf("sweep/job_panics = %d, want 1", got)
	}
	if got := reg.Histogram("sweep/job_latency").Count(); got != int64(len(jobs)) {
		t.Fatalf("job_latency count = %d, want %d", got, len(jobs))
	}
	if got := reg.Histogram("sweep/queue_wait").Count(); got != int64(len(jobs)) {
		t.Fatalf("queue_wait count = %d, want %d", got, len(jobs))
	}
	if util := reg.Gauge("sweep/worker_utilization").Value(); util <= 0 || util > 1 {
		t.Fatalf("worker utilization %v outside (0, 1]", util)
	}
}

// TestEngineDefaults checks the zero Engine and empty job lists work.
func TestEngineDefaults(t *testing.T) {
	out, err := Map[int, int](context.Background(), nil, nil, func(_ context.Context, _ *Worker, j int) (int, error) {
		return j, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: %v %v", out, err)
	}
	var e Engine
	if n := e.workerCount(3); n < 1 || n > 3 {
		t.Fatalf("workerCount(3) = %d", n)
	}
	if n := (&Engine{Workers: 16}).workerCount(4); n != 4 {
		t.Fatalf("workerCount should clamp to job count, got %d", n)
	}
}
