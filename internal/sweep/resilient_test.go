package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// fastPolicy removes real sleeps from retry tests: backoff resolves
// through the Sleep seam, which returns immediately.
func fastPolicy(attempts int) *resilience.Policy {
	return &resilience.Policy{
		MaxAttempts: attempts,
		Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
	}
}

// TestRetryHealsTransientFailures checks the core retry contract: a
// job that fails transiently on its first tries succeeds within the
// attempt budget, and the counters record exactly the retries taken.
func TestRetryHealsTransientFailures(t *testing.T) {
	reg := obs.NewRegistry()
	var calls atomic.Int64
	e := &Engine{Workers: 2, Obs: reg, Policy: fastPolicy(3)}
	jobs := []int{0, 1, 2, 3}
	out, err := Map(context.Background(), e, jobs, func(ctx context.Context, _ *Worker, j int) (int, error) {
		calls.Add(1)
		if resilience.Attempt(ctx) < 2 && j%2 == 0 {
			return 0, resilience.MarkTransient(fmt.Errorf("cell %d flaked", j))
		}
		return j + 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+10 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// Jobs 0 and 2 each took 3 attempts, jobs 1 and 3 one.
	if got := calls.Load(); got != 8 {
		t.Fatalf("fn invoked %d times, want 8", got)
	}
	if got := reg.Counter("resilience/retries").Value(); got != 4 {
		t.Fatalf("resilience/retries = %d, want 4", got)
	}
	if got := reg.Counter("resilience/retry_exhausted").Value(); got != 0 {
		t.Fatalf("resilience/retry_exhausted = %d, want 0", got)
	}
}

// TestRetryExhaustionDropsJob checks a fault that outlives the budget
// surfaces as that job's error (the last attempt's cause) while its
// neighbours survive — the partial-but-annotated degradation.
func TestRetryExhaustionDropsJob(t *testing.T) {
	reg := obs.NewRegistry()
	e := &Engine{Workers: 2, Obs: reg, Policy: fastPolicy(3)}
	out, err := Map(context.Background(), e, []int{0, 1, 2}, func(_ context.Context, _ *Worker, j int) (int, error) {
		if j == 1 {
			return 0, resilience.MarkTransient(errors.New("never heals"))
		}
		return j + 10, nil
	})
	var errs Errors
	if !errors.As(err, &errs) || len(errs) != 1 || errs[0].Index != 1 {
		t.Fatalf("err = %v", err)
	}
	if errs.Canceled() {
		t.Fatal("exhausted retries misreported as cancellation")
	}
	kept, dropped, cerr := Compact(out, err)
	if cerr != nil || len(kept) != 2 || len(dropped) != 1 {
		t.Fatalf("Compact = %d kept %d dropped err %v", len(kept), len(dropped), cerr)
	}
	if got := reg.Counter("resilience/retry_exhausted").Value(); got != 1 {
		t.Fatalf("resilience/retry_exhausted = %d, want 1", got)
	}
	if got := reg.Counter("resilience/retries").Value(); got != 2 {
		t.Fatalf("resilience/retries = %d, want 2", got)
	}
}

// TestPermanentErrorNotRetried checks the classifier gate: an
// unclassified (permanent) failure consumes exactly one attempt.
func TestPermanentErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	e := &Engine{Workers: 1, Policy: fastPolicy(5)}
	_, err := Map(context.Background(), e, []int{0}, func(context.Context, *Worker, int) (int, error) {
		calls.Add(1)
		return 0, errors.New("deterministic model bug")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("permanent failure retried: %d attempts", got)
	}
}

// TestCancellationDuringBackoffNeverResubmits is the
// cancellation-racing-a-retry guarantee: a sweep cancelled while a
// job waits out its backoff must not re-submit the attempt, and the
// sweep must surface the cancellation. The Sleep seam stands in for
// the timer so the cancel lands deterministically mid-backoff.
func TestCancellationDuringBackoffNeverResubmits(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	pol := &resilience.Policy{
		MaxAttempts: 5,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			// The sweep is cancelled exactly while this retry waits out
			// its backoff.
			cancel()
			<-ctx.Done()
			return ctx.Err()
		},
	}
	e := &Engine{Workers: 2, Policy: pol}
	_, err := Map(ctx, e, []int{0, 1, 2, 3}, func(context.Context, *Worker, int) (int, error) {
		calls.Add(1)
		return 0, resilience.MarkTransient(errors.New("flake"))
	})
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatalf("want Errors, got %v", err)
	}
	if !errs.Canceled() {
		t.Fatal("cancelled sweep must report Canceled()")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("Errors should unwrap to context.Canceled")
	}
	// Workers=2: at most the two in-flight jobs ran their first
	// attempt; the cancel mid-backoff forbids any second attempt, and
	// the drain path forbids starting the remaining jobs.
	if got := calls.Load(); got > 2 {
		t.Fatalf("fn invoked %d times after cancellation, want <= 2 (no re-submission)", got)
	}
}

// TestCancellationBetweenAttemptsRace cancels a sweep from outside
// while many transiently-failing jobs are mid-retry — the -race
// exercise of the cancel/backoff/re-submit interleavings. Retries are
// only re-submitted through SleepBackoff, which returns the context
// error once cancelled, so every attempt that does start holds a
// then-live sweep context; the assertions here are that the sweep
// terminates promptly and reports the cancellation. (The cancel can
// land between SleepBackoff approving a retry and the attempt
// starting, so "attempt sees a live context" is deliberately not
// asserted here — the deterministic no-re-submit contract is
// TestCancellationDuringBackoffNeverResubmits.)
func TestCancellationBetweenAttemptsRace(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	pol := &resilience.Policy{
		MaxAttempts: 4,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			time.Sleep(20 * time.Microsecond)
			return ctx.Err()
		},
	}
	jobs := make([]int, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	_, err := Map(ctx, &Engine{Workers: 4, Policy: pol}, jobs, func(ctx context.Context, _ *Worker, _ int) (int, error) {
		started.Add(1)
		return 0, resilience.MarkTransient(errors.New("flake"))
	})
	<-done
	var errs Errors
	if !errors.As(err, &errs) || !errs.Canceled() {
		t.Fatalf("cancelled sweep err = %v", err)
	}
	if started.Load() == 0 {
		t.Fatal("no attempt ran before the cancel — the race never happened")
	}
}

// TestBreakerShortCircuitsSweep checks the circuit breaker: after the
// threshold of consecutive drops the remaining jobs fail fast with
// ErrBreakerOpen, partial results survive Compact, and the trip and
// short-circuit counters record the episode.
func TestBreakerShortCircuitsSweep(t *testing.T) {
	reg := obs.NewRegistry()
	pol := fastPolicy(1)
	pol.BreakerThreshold = 3
	e := &Engine{Workers: 1, Obs: reg, Policy: pol} // sequential: deterministic trip point
	jobs := make([]int, 10)
	for i := range jobs {
		jobs[i] = i
	}
	var calls atomic.Int64
	out, err := Map(context.Background(), e, jobs, func(_ context.Context, _ *Worker, j int) (int, error) {
		calls.Add(1)
		if j >= 2 {
			return 0, errors.New("systematic failure")
		}
		return j + 10, nil
	})
	var errs Errors
	if !errors.As(err, &errs) {
		t.Fatal(err)
	}
	// Jobs 0,1 succeed; 2,3,4 fail and trip the breaker; 5..9 are
	// short-circuited without running.
	if got := calls.Load(); got != 5 {
		t.Fatalf("fn invoked %d times, want 5 (breaker should skip the rest)", got)
	}
	if len(errs) != 8 {
		t.Fatalf("%d errors, want 8", len(errs))
	}
	shorted := 0
	for _, je := range errs {
		if errors.Is(je.Err, resilience.ErrBreakerOpen) {
			shorted++
		}
	}
	if shorted != 5 {
		t.Fatalf("%d breaker short-circuits, want 5", shorted)
	}
	if errs.Canceled() {
		t.Fatal("breaker drop misreported as cancellation — Compact would discard the partials")
	}
	kept, _, cerr := Compact(out, err)
	if cerr != nil || len(kept) != 2 {
		t.Fatalf("Compact kept %d err %v, want the 2 successes", len(kept), cerr)
	}
	if got := reg.Counter("resilience/breaker_trips").Value(); got != 1 {
		t.Fatalf("resilience/breaker_trips = %d, want 1", got)
	}
	if got := reg.Counter("resilience/breaker_short_circuits").Value(); got != 5 {
		t.Fatalf("resilience/breaker_short_circuits = %d, want 5", got)
	}
}

// TestJobDeadlineRetries checks the per-attempt deadline: an attempt
// that outlives JobTimeout fails with a retryable TimeoutError while
// the sweep context stays alive, and a faster retry succeeds.
func TestJobDeadlineRetries(t *testing.T) {
	reg := obs.NewRegistry()
	pol := fastPolicy(2)
	pol.JobTimeout = 5 * time.Millisecond
	e := &Engine{Workers: 1, Obs: reg, Policy: pol}
	out, err := Map(context.Background(), e, []int{0}, func(ctx context.Context, _ *Worker, j int) (int, error) {
		if resilience.Attempt(ctx) == 0 {
			<-ctx.Done() // simulate a hung first attempt
			return 0, ctx.Err()
		}
		return 99, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 99 {
		t.Fatalf("out = %v", out)
	}
	if got := reg.Counter("resilience/job_deadline_exceeded").Value(); got != 1 {
		t.Fatalf("resilience/job_deadline_exceeded = %d, want 1", got)
	}
}

// TestJobDeadlineExhaustion checks a job that never beats its deadline
// surfaces a TimeoutError, not a bare context error — so Compact keeps
// the sweep's other results instead of treating it as cancellation.
func TestJobDeadlineExhaustion(t *testing.T) {
	pol := fastPolicy(2)
	pol.JobTimeout = 2 * time.Millisecond
	e := &Engine{Workers: 2, Policy: pol}
	out, err := Map(context.Background(), e, []int{0, 1}, func(ctx context.Context, _ *Worker, j int) (int, error) {
		if j == 0 {
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return 11, nil
	})
	var errs Errors
	if !errors.As(err, &errs) || len(errs) != 1 || errs[0].Index != 0 {
		t.Fatalf("err = %v", err)
	}
	var te *resilience.TimeoutError
	if !errors.As(errs[0].Err, &te) {
		t.Fatalf("want TimeoutError, got %v", errs[0].Err)
	}
	if errs.Canceled() {
		t.Fatal("per-attempt deadline misreported as sweep cancellation")
	}
	if out[1] != 11 {
		t.Fatal("healthy neighbour lost its result")
	}
}

// TestInjectedFaultsHealByConstruction drives Map with the injector's
// three healing job kinds at rate 1: with one retry of headroom every
// job must succeed, because injected faults fire only on attempt 0.
func TestInjectedFaultsHealByConstruction(t *testing.T) {
	for _, kind := range []faultinject.Kind{faultinject.KindTransient, faultinject.KindPanic} {
		inj := faultinject.New(11)
		if err := inj.Add(faultinject.PointJob, kind, 1, 1, 0); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		inj.Bind(reg)
		e := &Engine{Workers: 3, Obs: reg, Policy: fastPolicy(2), Inject: inj}
		jobs := make([]int, 12)
		out, err := Map(context.Background(), e, jobs, func(_ context.Context, _ *Worker, j int) (int, error) {
			return 7, nil
		})
		if err != nil {
			t.Fatalf("%v faults did not heal: %v", kind, err)
		}
		for i, v := range out {
			if v != 7 {
				t.Fatalf("kind %v: out[%d] = %d", kind, i, v)
			}
		}
		name := "fault/job_" + kind.String()
		if got := reg.Counter(name).Value(); got != 12 {
			t.Fatalf("%s = %d, want 12", name, got)
		}
		if got := reg.Counter("resilience/retries").Value(); got != 12 {
			t.Fatalf("kind %v: retries = %d, want 12", kind, got)
		}
		if kind == faultinject.KindPanic {
			if got := reg.Counter("sweep/job_panics").Value(); got != 12 {
				t.Fatalf("sweep/job_panics = %d, want 12", got)
			}
		}
	}
}

// TestInjectedPermanentFaultExhausts checks the exhaustion vector: a
// permanent injected fault never heals, so the job drops after one
// attempt (permanent = not retryable) with the injected cause.
func TestInjectedPermanentFaultExhausts(t *testing.T) {
	inj := faultinject.New(11)
	if err := inj.Add(faultinject.PointJob, faultinject.KindPermanent, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	e := &Engine{Workers: 2, Policy: fastPolicy(3), Inject: inj}
	_, err := Map(context.Background(), e, []int{0, 1}, func(context.Context, *Worker, int) (int, error) {
		calls.Add(1)
		return 0, nil
	})
	var errs Errors
	if !errors.As(err, &errs) || len(errs) != 2 {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 0 {
		t.Fatal("permanent injected fault should fire before fn on every attempt")
	}
}

// TestQuarantineRetriesAndCounts checks the validation-gate error is
// retryable and counted on resilience/quarantined.
func TestQuarantineRetriesAndCounts(t *testing.T) {
	reg := obs.NewRegistry()
	e := &Engine{Workers: 1, Obs: reg, Policy: fastPolicy(2)}
	out, err := Map(context.Background(), e, []int{0}, func(ctx context.Context, _ *Worker, _ int) (int, error) {
		if resilience.Attempt(ctx) == 0 {
			return 0, resilience.Quarantine("cell", errors.New("NaN GFlop/s"))
		}
		return 5, nil
	})
	if err != nil || out[0] != 5 {
		t.Fatalf("out %v err %v", out, err)
	}
	if got := reg.Counter("resilience/quarantined").Value(); got != 1 {
		t.Fatalf("resilience/quarantined = %d, want 1", got)
	}
}

// TestResilientMapMatchesPlainMap checks the resilient path with a
// policy but no faults is observationally identical to the plain path:
// same results, same order, no errors.
func TestResilientMapMatchesPlainMap(t *testing.T) {
	jobs := make([]int, 50)
	for i := range jobs {
		jobs[i] = i
	}
	fn := func(_ context.Context, _ *Worker, j int) (int, error) { return j * j, nil }
	plain, err1 := Map(context.Background(), &Engine{Workers: 4}, jobs, fn)
	res, err2 := Map(context.Background(), &Engine{Workers: 4, Policy: fastPolicy(3)}, jobs, fn)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range plain {
		if plain[i] != res[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, plain[i], res[i])
		}
	}
}

// BenchmarkMapDisabledResilience pins the production fast path: with
// nil Policy and nil Injector, Map must bypass the resilient loop
// entirely (one branch per job). Compare against
// BenchmarkMapIdleResilience to see what enabling the machinery with
// no faults costs.
func BenchmarkMapDisabledResilience(b *testing.B) {
	benchMap(b, &Engine{Workers: 4})
}

// BenchmarkMapIdleResilience is the same sweep with the retry loop
// engaged but never firing: the per-job overhead of an armed policy.
func BenchmarkMapIdleResilience(b *testing.B) {
	benchMap(b, &Engine{Workers: 4, Policy: &resilience.Policy{MaxAttempts: 3}})
}

// BenchmarkMapNilInjector arms only the injector with an empty rule
// set: the cost of the chaos hooks when nothing can fire.
func BenchmarkMapNilInjector(b *testing.B) {
	benchMap(b, &Engine{Workers: 4, Inject: faultinject.New(1)})
}

func benchMap(b *testing.B, e *Engine) {
	jobs := make([]int, 256)
	fn := func(_ context.Context, _ *Worker, j int) (int, error) { return j + 1, nil }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Map(context.Background(), e, jobs, fn); err != nil {
			b.Fatal(err)
		}
	}
}
