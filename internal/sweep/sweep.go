// Package sweep is the concurrent sweep-execution engine behind the
// paper's evaluation: thousands of independent (machine, workload)
// cells — 968 sparse matrices × memory modes, ~1900-cell dense heat
// maps — dispatched onto a bounded worker pool instead of nested
// sequential loops. The engine preserves deterministic submission-order
// output regardless of completion order, collects per-job errors so one
// bad matrix cannot kill a 968-matrix sweep, honours context
// cancellation and timeouts, reports progress, and gives each worker a
// keyed resource pool so hot sweeps reuse one hierarchy simulator per
// worker instead of allocating one per cell.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Engine configures one sweep run. The zero value is ready to use:
// GOMAXPROCS workers, no progress reporting, no telemetry, no
// resilience policy, no fault injection.
type Engine struct {
	// Workers bounds the pool size; <= 0 selects runtime.GOMAXPROCS(0).
	// Workers = 1 reproduces the sequential path exactly (and is what
	// the equivalence tests compare against).
	Workers int
	// Progress, when non-nil, is invoked (serialized) after every
	// completed job with the sweep's advancement.
	Progress func(Progress)
	// Obs, when non-nil, receives sweep telemetry: per-job latency and
	// queue-wait histograms, completed/failed/panicked job counters,
	// and worker-utilization plus ETA gauges (see Map for the metric
	// names). A nil registry costs one branch per job.
	Obs *obs.Registry
	// Policy, when non-nil, applies per-job resilience: retry with
	// capped exponential backoff and seeded jitter for transient
	// failures, a per-attempt deadline, and a per-sweep circuit
	// breaker that short-circuits the remaining jobs after a run of
	// consecutive drops. Nil reproduces the single-attempt behaviour
	// at the cost of one branch per job.
	Policy *resilience.Policy
	// Inject, when non-nil, is the chaos hook: the engine fires the
	// injector's "job" point (keyed by submission index) before every
	// attempt. Nil — the production setting — costs one branch per
	// job; the chaos suite's nil-injector benchmark holds it there.
	Inject *faultinject.Injector
	// Trace, when non-nil, receives the causal per-job event chain:
	// enqueue/dispatch/done on every job, plus attempt/retry/breaker
	// events from the resilient path and estimator/gate/store events
	// from the layers below (via the job context). Nil — the default —
	// costs one branch per job. Like Obs, the tracer observes the sweep
	// without touching its results: traced and untraced runs are
	// byte-identical.
	Trace *obs.Tracer

	// traceMeta, when set (by MapCached), supplies each job's stable
	// trace ID and human key by submission index, and transfers
	// ownership of the enqueue events to the caller. When nil, Map
	// derives IDs from a per-tracer sweep sequence number and emits the
	// enqueue chain itself.
	traceMeta func(i int) (id, key string)
}

// Progress is one advancement report of a running sweep.
type Progress struct {
	Done, Total int
	Elapsed     time.Duration
	// ETA estimates the remaining wall time from the completed
	// fraction, smoothed by an exponential moving average of the
	// per-job rate so one slow cell does not whip the estimate
	// around. It is zero (meaning "unknown") until at least two jobs
	// have completed — extrapolating a 968-matrix sweep from its
	// first finished cell produces garbage — and zero again once the
	// sweep is done. It is never negative.
	ETA time.Duration
}

// ETA smoothing parameters: estimates start after minETAJobs
// completions and blend each new overall rate sample into the running
// estimate with weight etaAlpha.
const (
	minETAJobs = 2
	etaAlpha   = 0.25
)

// workerCount resolves the pool size for a job count.
func (e *Engine) workerCount(jobs int) int {
	n := e.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// JobError ties one failed job to its submission index.
type JobError struct {
	Index int
	Err   error
}

func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Errors collects the failed jobs of one sweep in submission order.
// It satisfies error, and unwraps to the individual causes so
// errors.Is(err, context.Canceled) works on a cancelled sweep.
type Errors []*JobError

func (es Errors) Error() string {
	if len(es) == 0 {
		return "sweep: no errors"
	}
	if len(es) == 1 {
		return "sweep: " + es[0].Error()
	}
	return fmt.Sprintf("sweep: %d jobs failed (first: %v)", len(es), es[0])
}

// Unwrap supports the multi-error traversal of errors.Is/As.
func (es Errors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// Canceled reports whether any failure was a context cancellation or
// deadline — the signal that remaining jobs were skipped, not broken.
func (es Errors) Canceled() bool {
	for _, e := range es {
		if errors.Is(e.Err, context.Canceled) || errors.Is(e.Err, context.DeadlineExceeded) {
			return true
		}
	}
	return false
}

// Worker is the per-goroutine state handed to every job: an identity
// and a keyed pool of reusable resources. A sweep over N machines keys
// one hierarchy simulator per machine configuration, so each worker
// allocates each simulator once and resets it between cells.
type Worker struct {
	id   int
	pool map[any]any
}

// ID returns the worker's index in [0, Workers).
func (w *Worker) ID() int { return w.id }

// NewWorker returns a standalone worker with its own empty resource
// pool. Map builds its workers internally; this constructor exists for
// long-lived callers — the serve daemon's persistent worker pool —
// that dispatch jobs onto workers outside Map and want the same pooled
// simulator reuse across requests. id is the worker's identity in
// traces and routing.
func NewWorker(id int) *Worker { return &Worker{id: id, pool: map[any]any{}} }

// Get returns the pooled resource under key, building and caching it on
// first use. Keys must be comparable; the pool is worker-local, so no
// locking is involved. A nil worker builds without pooling, so code
// written against workers also runs standalone (calibration, tests).
func (w *Worker) Get(key any, build func() (any, error)) (any, error) {
	if w == nil {
		return build()
	}
	if v, ok := w.pool[key]; ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	w.pool[key] = v
	return v, nil
}

// Drop evicts a pooled resource, forcing the next Get to rebuild it —
// used after a failure that may have left the resource inconsistent.
// No-op on a nil worker (which pools nothing).
func (w *Worker) Drop(key any) {
	if w == nil {
		return
	}
	delete(w.pool, key)
}

// Map runs fn over every job on the engine's worker pool and returns
// the results in submission order. A failed (or panicking) job
// contributes its zero-value result and a JobError; the sweep
// continues. When ctx is cancelled or times out, workers stop promptly
// and every unstarted job records the context error. The returned
// error is nil when every job succeeded, otherwise the accumulated
// Errors (sorted by job index).
//
// With e.Obs set, Map records:
//
//	sweep/jobs                jobs executed, successful or not (counter)
//	sweep/job_errors          failed or skipped jobs (counter)
//	sweep/job_panics          jobs that panicked (counter)
//	sweep/job_latency         per-job run time (histogram)
//	sweep/queue_wait          submission-to-start delay (histogram)
//	sweep/worker_utilization  busy time / (workers × wall) (gauge)
//	sweep/eta_seconds         smoothed remaining-time estimate (gauge)
//
//opmlint:allow determinism — the wall clock feeds only telemetry (latency/wait histograms, utilization, ETA) and progress callbacks; results[i] depends solely on jobs[i], which the parallel==sequential equivalence tests pin byte-for-byte
func Map[J, R any](ctx context.Context, e *Engine, jobs []J, fn func(ctx context.Context, w *Worker, job J) (R, error)) ([]R, error) {
	if e == nil {
		e = &Engine{}
	}
	results := make([]R, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	var (
		next   atomic.Int64
		done   atomic.Int64
		busyNS atomic.Int64
		mu     sync.Mutex
		errs   Errors
		start  = time.Now()
		wg     sync.WaitGroup
	)
	// Instruments resolve once per sweep, not once per job; on a nil
	// registry they are nil and every use below no-ops.
	obsOn := e.Obs != nil
	var (
		mJobs   = e.Obs.Counter("sweep/jobs")
		mErrs   = e.Obs.Counter("sweep/job_errors")
		mPanics = e.Obs.Counter("sweep/job_panics")
		mLat    = e.Obs.Histogram("sweep/job_latency")
		mWait   = e.Obs.Histogram("sweep/queue_wait")
		mUtil   = e.Obs.Gauge("sweep/worker_utilization")
		mETA    = e.Obs.Gauge("sweep/eta_seconds")
	)
	total := len(jobs)
	// Trace identity resolves once per sweep: either the caller
	// (MapCached) supplied digest-derived IDs via traceMeta, or Map
	// derives stable fallback IDs from a per-tracer sweep sequence
	// number and the submission index — and then also owns the enqueue
	// events, emitted here in submission order before the pool starts.
	tr := e.Trace
	var traceIDs, traceKeys []string
	if tr != nil {
		meta := e.traceMeta
		ownEnqueue := meta == nil
		if meta == nil {
			sweepN := strconv.FormatUint(tr.NextSweep(), 10)
			meta = func(i int) (string, string) {
				idx := strconv.Itoa(i)
				return obs.TraceID("sweep", sweepN, "job", idx), idx
			}
		}
		traceIDs = make([]string, total)
		traceKeys = make([]string, total)
		for i := 0; i < total; i++ {
			traceIDs[i], traceKeys[i] = meta(i)
			if ownEnqueue {
				tr.Emit(traceIDs[i], obs.EvEnqueue, traceKeys[i], -1, 0, "")
			}
		}
	}
	// Resilience state: one breaker per Map call (= per sweep family),
	// instruments resolved once. resilient stays false on the
	// production fast path (nil policy, nil injector).
	resilient := e.Policy != nil || e.Inject != nil
	var (
		breaker *resilience.Breaker
		resIns  resInstruments
	)
	if resilient {
		breaker = e.Policy.NewBreaker()
		resIns = resolveResInstruments(e.Obs)
	}
	// etaRate is the EWMA-smoothed overall ns-per-job estimate,
	// guarded by mu (report is serialized).
	var etaRate float64
	report := func() {
		if e.Progress == nil && !obsOn {
			return
		}
		d := int(done.Load())
		elapsed := time.Since(start)
		mu.Lock()
		var eta time.Duration
		if d >= minETAJobs && d < total {
			rate := float64(elapsed) / float64(d)
			if etaRate == 0 {
				etaRate = rate
			} else {
				etaRate += etaAlpha * (rate - etaRate)
			}
			if eta = time.Duration(etaRate * float64(total-d)); eta < 0 {
				eta = 0
			}
		}
		mETA.Set(eta.Seconds())
		if e.Progress != nil {
			e.Progress(Progress{Done: d, Total: total, Elapsed: elapsed, ETA: eta})
		}
		mu.Unlock()
	}
	fail := func(i int, err error) {
		mErrs.Inc()
		mu.Lock()
		errs = append(errs, &JobError{Index: i, Err: err})
		mu.Unlock()
	}
	workers := e.workerCount(total)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := &Worker{id: wi, pool: map[any]any{}}
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				if err := ctx.Err(); err != nil {
					// Cancelled: drain the remaining indices cheaply so
					// the sweep returns promptly with partial results.
					if tr != nil {
						tr.Emit(traceIDs[i], obs.EvError, traceKeys[i], -1, 0, "skipped: "+err.Error())
					}
					fail(i, err)
					continue
				}
				timed := obsOn || tr != nil
				var t0 time.Time
				if timed {
					t0 = time.Now()
					mWait.Observe(t0.Sub(start))
				}
				jctx := ctx
				if tr != nil {
					tr.Emit(traceIDs[i], obs.EvDispatch, traceKeys[i], wi, 0, "")
					jctx = obs.WithTraceContext(ctx, tr, traceIDs[i], traceKeys[i], wi)
				}
				var r R
				var err error
				if resilient {
					r, err = runJobResilient(jctx, e.Policy, e.Inject, breaker, w, i, jobs[i], fn, mPanics, resIns)
				} else {
					r, err = runJob(jctx, w, jobs[i], fn, mPanics, nil, "")
				}
				if err != nil {
					fail(i, err)
				} else {
					results[i] = r
				}
				var d time.Duration
				if timed {
					d = time.Since(t0)
					busyNS.Add(int64(d))
					mLat.Observe(d)
					mJobs.Inc()
				}
				if tr != nil {
					if err != nil {
						tr.Emit(traceIDs[i], obs.EvError, traceKeys[i], wi, d, err.Error())
					} else {
						tr.Emit(traceIDs[i], obs.EvDone, traceKeys[i], wi, d, "")
					}
				}
				done.Add(1)
				report()
			}
		}(wi)
	}
	wg.Wait()
	if obsOn {
		if wall := time.Since(start); wall > 0 {
			mUtil.Set(float64(busyNS.Load()) / (float64(wall) * float64(workers)))
		}
	}
	if len(errs) == 0 {
		return results, nil
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
	return results, errs
}

// runJob invokes fn with panic containment: a panicking cell (e.g. a
// buffer bounds violation in a trace generator) becomes that job's
// error instead of killing the whole sweep, counted on panics. With a
// non-nil injector the "job" chaos point fires first, inside the
// recover scope so injected panics are contained like real ones — but
// classified transient (an InjectedPanic heals on retry, a real panic
// is a deterministic bug that would only panic again).
func runJob[J, R any](ctx context.Context, w *Worker, job J, fn func(context.Context, *Worker, J) (R, error), panics *obs.Counter, inj *faultinject.Injector, key string) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			panics.Inc()
			if ip, ok := p.(faultinject.InjectedPanic); ok {
				err = resilience.MarkTransient(fmt.Errorf("sweep: job panicked: %s", ip))
				return
			}
			err = fmt.Errorf("sweep: job panicked: %v", p)
		}
	}()
	if ferr := inj.Job(ctx, key); ferr != nil {
		return r, ferr
	}
	return fn(ctx, w, job)
}

// Compact splits a Map outcome into the surviving results and the
// failures. A cancelled sweep is fatal: Compact returns the context
// error so callers abort instead of reporting a silently truncated
// sweep. Other per-job failures are survivable — their zero-value
// results are dropped and the Errors returned for reporting.
func Compact[R any](results []R, err error) ([]R, Errors, error) {
	if err == nil {
		return results, nil, nil
	}
	var errs Errors
	if !errors.As(err, &errs) {
		return nil, nil, err
	}
	if errs.Canceled() {
		for _, e := range errs {
			if errors.Is(e.Err, context.Canceled) || errors.Is(e.Err, context.DeadlineExceeded) {
				return nil, errs, e.Err
			}
		}
	}
	drop := make(map[int]bool, len(errs))
	for _, e := range errs {
		drop[e.Index] = true
	}
	kept := make([]R, 0, len(results)-len(errs))
	for i, r := range results {
		if !drop[i] {
			kept = append(kept, r)
		}
	}
	return kept, errs, nil
}
