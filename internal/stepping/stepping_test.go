package stepping

import (
	"testing"
)

// testLevels is a Broadwell-like hierarchy: L3 + eDRAM + DDR.
func testLevels(withEDRAM bool) []Level {
	ls := []Level{
		{Name: "L3", Cap: 6 << 20, BWGBs: 150, LatNS: 12},
	}
	if withEDRAM {
		ls = append(ls, Level{Name: "eDRAM", Cap: 128 << 20, BWGBs: 48, LatNS: 42, OPM: true})
	}
	return append(ls, Level{Name: "DDR", Cap: 0, BWGBs: 20, LatNS: 85})
}

func streamKernel() Kernel {
	return Kernel{Name: "Stream", AI: 0.0625, PeakGFlops: 200, MLP: 64, RampFactor: 6}
}

func TestModelValidation(t *testing.T) {
	k := streamKernel()
	if _, err := Model("x", testLevels(true)[:1], k, 1, 2, 3); err == nil {
		t.Error("single level accepted")
	}
	bad := testLevels(true)
	bad[len(bad)-1].Cap = 1 << 30 // memory must be unbounded
	if _, err := Model("x", bad, k, 1, 2, 3); err == nil {
		t.Error("bounded memory accepted")
	}
	if _, err := Model("x", testLevels(true), k, 0, 2, 3); err == nil {
		t.Error("zero minFP accepted")
	}
	if _, err := Model("x", testLevels(true), k, 4, 2, 3); err == nil {
		t.Error("inverted sweep accepted")
	}
	if _, err := Model("x", testLevels(true), k, 1, 2, 1); err == nil {
		t.Error("single point accepted")
	}
}

func TestSteppingCurveShape(t *testing.T) {
	k := streamKernel()
	with := MustModel("edram", testLevels(true), k, 1<<20, 1<<31, 120)
	without := MustModel("ddr", testLevels(false), k, 1<<20, 1<<31, 120)

	at := func(c Curve, fp int64) Point {
		best := c.Points[0]
		for _, p := range c.Points {
			if abs64(p.Footprint-fp) < abs64(best.Footprint-fp) {
				best = p
			}
		}
		return best
	}

	// In-cache region: both equal, served by L3 at L3 bandwidth.
	inL3 := at(without, 4<<20)
	if inL3.Serving != "L3" || inL3.GBs < 100 {
		t.Fatalf("in-L3 point wrong: %+v", inL3)
	}
	// eDRAM effective region: with > without.
	wIn, woIn := at(with, 64<<20), at(without, 64<<20)
	if wIn.GFlops <= woIn.GFlops {
		t.Fatalf("eDRAM region not effective: %v vs %v", wIn.GFlops, woIn.GFlops)
	}
	// Far plateau: both converge near DDR bandwidth.
	wFar, woFar := at(with, 1<<31), at(without, 1<<31)
	ratio := wFar.GFlops / woFar.GFlops
	if ratio < 0.95 || ratio > 1.45 {
		t.Fatalf("plateaus diverge: ratio %v", ratio)
	}
	// Valley: past L3 (hits gone, MLP not yet ramped), throughput dips
	// below the far plateau.
	valley := at(without, 13<<20)
	if valley.GFlops >= woFar.GFlops {
		t.Fatalf("no cache valley: valley %v >= plateau %v", valley.GFlops, woFar.GFlops)
	}
}

func TestComputeCeilingCaps(t *testing.T) {
	k := streamKernel()
	k.AI = 1000 // compute bound everywhere
	c := MustModel("x", testLevels(true), k, 1<<20, 1<<30, 20)
	for _, p := range c.Points {
		if p.GFlops != k.PeakGFlops {
			t.Fatalf("compute-bound point below peak: %+v", p)
		}
	}
}

func TestScaleCapacityExtendsPeak(t *testing.T) {
	// Figure 30(A): doubling OPM capacity extends the cache peak to
	// the right: at a footprint between C and 2C, the scaled hierarchy
	// wins.
	k := streamKernel()
	base := MustModel("base", testLevels(true), k, 160<<20, 200<<20, 10)
	big := MustModel("big", ScaleCapacity(testLevels(true), "eDRAM", 2), k, 160<<20, 200<<20, 10)
	for i := range base.Points {
		if big.Points[i].GFlops < base.Points[i].GFlops {
			t.Fatalf("larger OPM slower at %d", base.Points[i].Footprint)
		}
	}
	if big.Points[5].GFlops <= base.Points[5].GFlops {
		t.Fatal("larger OPM should win between C and 2C")
	}
}

func TestScaleBandwidthAmplifiesPeak(t *testing.T) {
	// Figure 30(B): doubling OPM bandwidth amplifies the peak inside
	// the effective region.
	k := streamKernel()
	base := MustModel("base", testLevels(true), k, 32<<20, 96<<20, 8)
	fast := MustModel("fast", ScaleBandwidth(testLevels(true), "eDRAM", 2), k, 32<<20, 96<<20, 8)
	improved := false
	for i := range base.Points {
		if fast.Points[i].GFlops > base.Points[i].GFlops*1.3 {
			improved = true
		}
		if fast.Points[i].GFlops < base.Points[i].GFlops-1e-9 {
			t.Fatal("faster OPM slower")
		}
	}
	if !improved {
		t.Fatal("bandwidth scaling had no effect")
	}
}

func TestEffectiveRegion(t *testing.T) {
	k := streamKernel()
	with := MustModel("edram", testLevels(true), k, 1<<20, 1<<31, 150)
	without := MustModel("ddr", testLevels(false), k, 1<<20, 1<<31, 150)
	lo, hi, ok := EffectiveRegion(with, without, 1.05)
	if !ok {
		t.Fatal("no effective region found")
	}
	// PER should bracket the eDRAM-but-not-L3 capacity range.
	if lo > 64<<20 || hi < 128<<20 {
		t.Fatalf("PER [%d, %d] does not cover the eDRAM region", lo, hi)
	}
	// EER (higher threshold per Eq. 1) is no wider than PER.
	elo, ehi, eok := EffectiveRegion(with, without, 1.5)
	if eok && (elo < lo || ehi > hi) {
		t.Fatalf("EER [%d,%d] wider than PER [%d,%d]", elo, ehi, lo, hi)
	}
	// Mismatched grids are rejected.
	short := Curve{Points: with.Points[:3]}
	if _, _, ok := EffectiveRegion(short, without, 1); ok {
		t.Fatal("mismatched grids accepted")
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
