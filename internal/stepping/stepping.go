// Package stepping implements the paper's Stepping model (Figure 6) —
// the visual analytic model derived from the valley model that plots
// attainable throughput against problem footprint for a multi-level
// memory hierarchy — and the tuning-guideline curves built from it
// (Figures 28, 29 and the hardware what-ifs of Figure 30).
package stepping

import (
	"fmt"
	"math"
)

// Level describes one rung of the hierarchy for the analytic model.
// Levels are ordered nearest-first; the last level is memory (Cap 0 =
// unbounded).
type Level struct {
	Name  string
	Cap   int64   // capacity in bytes; 0 means backing memory
	BWGBs float64 // sustained bandwidth
	LatNS float64 // unloaded latency
	// OPM marks on-package memory levels. Prefetch/MLP ramping is a
	// property of the on-chip miss stream, so OPM levels are excluded
	// from the ramp anchor (enabling an OPM never lowers MLP).
	OPM bool
}

// Kernel carries the kernel-side parameters of the analytic curves.
type Kernel struct {
	Name       string
	AI         float64 // flops per byte of demand traffic
	PeakGFlops float64 // compute ceiling (already efficiency-scaled)
	MLP        float64 // total outstanding misses at full ramp
	RampFactor float64 // footprint multiple of a spilled cache for full MLP
}

// Point is one sample of a stepping curve.
type Point struct {
	Footprint int64
	GFlops    float64
	GBs       float64 // achieved demand bandwidth
	Serving   string  // level serving the marginal traffic
}

// Curve is a stepping-model curve over a footprint sweep.
type Curve struct {
	Name   string
	Points []Point
}

// Model evaluates the analytic stepping curve over logarithmically
// spaced footprints in [minFP, maxFP]. The hit distribution uses a
// streaming-cliff approximation: cyclic reuse under LRU loses hits
// quickly once the working set W passes capacity C, so a cache
// captures a (2C−W)/W share for C < W < 2C and nothing beyond — the
// behaviour that carves the model's cache valleys.
func Model(name string, levels []Level, k Kernel, minFP, maxFP int64, points int) (Curve, error) {
	if len(levels) < 2 {
		return Curve{}, fmt.Errorf("stepping: need at least one cache and one memory level")
	}
	if levels[len(levels)-1].Cap != 0 {
		return Curve{}, fmt.Errorf("stepping: last level must be memory (Cap 0)")
	}
	if minFP <= 0 || maxFP < minFP || points < 2 {
		return Curve{}, fmt.Errorf("stepping: bad sweep [%d, %d] x %d", minFP, maxFP, points)
	}
	c := Curve{Name: name, Points: make([]Point, 0, points)}
	lmin, lmax := math.Log(float64(minFP)), math.Log(float64(maxFP))
	for i := 0; i < points; i++ {
		fp := int64(math.Exp(lmin + (lmax-lmin)*float64(i)/float64(points-1)))
		c.Points = append(c.Points, eval(levels, k, fp))
	}
	return c, nil
}

// MustModel is Model that panics on error.
//
// Deprecated: retained for examples and tests. Library and harness
// code should call Model and surface the error.
func MustModel(name string, levels []Level, k Kernel, minFP, maxFP int64, points int) Curve {
	c, err := Model(name, levels, k, minFP, maxFP, points)
	if err != nil {
		panic(err)
	}
	return c
}

func eval(levels []Level, k Kernel, fp int64) Point {
	w := float64(fp)
	// Share of traffic served by each level.
	share := make([]float64, len(levels))
	remaining := 1.0
	for i, l := range levels {
		if l.Cap == 0 || float64(l.Cap) >= w {
			share[i] = remaining
			remaining = 0
			continue
		}
		f := (2*float64(l.Cap) - w) / w // streaming cliff
		if f < 0 {
			f = 0
		}
		s := remaining * f
		share[i] = s
		remaining -= s
	}
	// Bandwidth time per byte and latency per byte.
	var tPerByte, latPerByte float64
	serving, worstShare := levels[0].Name, 0.0
	for i, l := range levels {
		if share[i] <= 0 {
			continue
		}
		tb := share[i] / (l.BWGBs * 1e9)
		tPerByte += tb
		if share[i] > worstShare {
			worstShare, serving = share[i], l.Name
		}
		if i > 0 { // latency of non-innermost levels
			latPerByte += share[i] * l.LatNS * 1e-9 / 64
		}
	}
	// MLP ramp relative to the largest spilled on-chip cache.
	mlp := k.MLP
	if k.RampFactor > 1 {
		var spilled float64
		for _, l := range levels[:len(levels)-1] {
			if l.OPM {
				continue
			}
			if l.Cap != 0 && float64(l.Cap) < w && float64(l.Cap) > spilled {
				spilled = float64(l.Cap)
			}
		}
		if spilled > 0 {
			ramp := math.Min(1, w/(k.RampFactor*spilled))
			mlp = math.Max(1, k.MLP*ramp)
		}
	}
	perByte := math.Max(tPerByte, latPerByte/mlp)
	gbs := 1 / perByte / 1e9
	gflops := math.Min(k.PeakGFlops, k.AI*gbs)
	return Point{Footprint: fp, GFlops: gflops, GBs: gbs, Serving: serving}
}

// ScaleCapacity returns a copy of levels with the named level's
// capacity multiplied by factor — Figure 30(A)'s what-if (a larger OPM
// stretches the cache peak to the right).
func ScaleCapacity(levels []Level, name string, factor float64) []Level {
	out := append([]Level(nil), levels...)
	for i := range out {
		if out[i].Name == name {
			out[i].Cap = int64(float64(out[i].Cap) * factor)
		}
	}
	return out
}

// ScaleBandwidth returns a copy of levels with the named level's
// bandwidth multiplied by factor — Figure 30(B)'s what-if (a faster
// OPM amplifies the cache peak).
func ScaleBandwidth(levels []Level, name string, factor float64) []Level {
	out := append([]Level(nil), levels...)
	for i := range out {
		if out[i].Name == name {
			out[i].BWGBs *= factor
		}
	}
	return out
}

// EffectiveRegion returns the footprint interval where curve `with`
// outperforms `without` by more than threshold (e.g. 1.0 for the
// performance-effective region PER, 1.086 for Broadwell's
// energy-effective region EER per Eq. 1). Curves must share their
// footprint grid.
func EffectiveRegion(with, without Curve, threshold float64) (lo, hi int64, ok bool) {
	if len(with.Points) != len(without.Points) {
		return 0, 0, false
	}
	for i := range with.Points {
		base := without.Points[i].GFlops
		if base <= 0 {
			continue
		}
		if with.Points[i].GFlops/base > threshold {
			if !ok {
				lo, ok = with.Points[i].Footprint, true
			}
			hi = with.Points[i].Footprint
		}
	}
	return lo, hi, ok
}
