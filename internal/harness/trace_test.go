package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/twin"
)

// tracedRun executes one experiment with a fresh tracer attached,
// returning the report and the tracer's full event stream.
func tracedRun(t *testing.T, id, spec string, pol *resilience.Policy, st *store.Store) (*Report, []obs.Event) {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	opt := tiny
	opt.Resilience = pol
	opt.Store = st
	opt.Trace = obs.NewTracer(0)
	if spec != "" {
		reg := obs.NewRegistry()
		opt.Obs = reg
		inj, err := faultinject.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		inj.Bind(reg)
		opt.Inject = inj
	}
	rep, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatalf("%s traced under faults %q: %v", id, spec, err)
	}
	return rep, opt.Trace.Events()
}

// TestTraceByteIdentity is the tentpole contract of the tracing layer:
// attaching a tracer must never change a report's bytes — sparse
// (fig9), dense (fig7), and a chaos-injected sparse run all render
// identically with tracing on and off, while the tracer records a
// non-trivial event stream.
func TestTraceByteIdentity(t *testing.T) {
	// One untraced fig9 baseline serves both the clean and the chaos
	// comparison: the chaos scenario heals, so its traced report must
	// equal the clean bytes too (the chaos suite already pins
	// faulted==clean without tracing).
	cleanFig9, _ := chaosRun(t, "fig9", "", nil, nil)
	cleanFig7, _ := chaosRun(t, "fig7", "", nil, nil)
	for _, tc := range []struct {
		label, id, spec string
		pol             *resilience.Policy
		clean           *Report
	}{
		{"sparse/fig9", "fig9", "", nil, cleanFig9},
		{"dense/fig7", "fig7", "", nil, cleanFig7},
		{"chaos/fig9", "fig9", "seed=7,job:transient@0.4,result:corrupt@0.3", chaosPolicy(), cleanFig9},
	} {
		t.Run(tc.label, func(t *testing.T) {
			traced, events := tracedRun(t, tc.id, tc.spec, tc.pol, nil)
			reportEqual(t, tc.label+": traced vs untraced", traced, tc.clean)
			if len(events) == 0 {
				t.Fatal("tracer recorded nothing")
			}
			p := obs.AnalyzeTrace(events)
			if p.Jobs == 0 {
				t.Fatal("no job chains reconstructed")
			}
			for _, c := range p.Chains {
				for i := 1; i < len(c.Events); i++ {
					if c.Events[i].TSNS < c.Events[i-1].TSNS {
						t.Fatalf("chain %s runs backwards at event %d", c.Trace, i)
					}
				}
			}
		})
	}
}

// chainShape flattens a trace's per-job chains into a deterministic
// signature: for each trace ID, the ordered (name, detail, job) steps
// with all timing and worker assignment stripped.
func chainShape(events []obs.Event) map[string][]string {
	out := map[string][]string{}
	for _, c := range obs.AnalyzeTrace(events).Chains {
		var steps []string
		for _, ev := range c.Events {
			steps = append(steps, ev.Name+"|"+ev.Detail+"|"+ev.Job)
		}
		out[c.Trace] = steps
	}
	return out
}

// TestTraceChainDeterminism runs the same parallel sweep twice with
// four workers: the global event interleaving is scheduling-dependent,
// but every per-trace chain — the causal unit opmprof and the Perfetto
// export group by — must be step-identical across runs (run under
// -race in CI, which also exercises the emit lock).
func TestTraceChainDeterminism(t *testing.T) {
	run := func() []obs.Event {
		e, err := Get("fig9")
		if err != nil {
			t.Fatal(err)
		}
		opt := tiny
		opt.Workers = 4
		opt.Trace = obs.NewTracer(0)
		if _, err := e.Run(context.Background(), opt); err != nil {
			t.Fatal(err)
		}
		return opt.Trace.Events()
	}
	a, b := chainShape(run()), chainShape(run())
	if len(a) != len(b) {
		t.Fatalf("runs produced %d vs %d trace IDs", len(a), len(b))
	}
	for id, steps := range a {
		got, ok := b[id]
		if !ok {
			t.Fatalf("trace %s missing from second run", id)
		}
		if strings.Join(steps, "\n") != strings.Join(got, "\n") {
			t.Fatalf("trace %s chain diverged:\nrun1: %v\nrun2: %v", id, steps, got)
		}
	}
}

// TestTraceChainShapesUnderChaos checks that the causal chain records
// what actually happened: with transient faults and retries on, some
// chain must show fault/fire followed by a retry backoff and a second
// attempt, and every chain still ends in job/done (the scenario
// heals).
func TestTraceChainShapesUnderChaos(t *testing.T) {
	_, events := tracedRun(t, "fig9", "seed=7,job:transient@0.4", chaosPolicy(), nil)
	p := obs.AnalyzeTrace(events)
	healed := false
	for _, c := range p.Chains {
		if c.Failed {
			t.Fatalf("chain %s failed in a healing scenario: %s", c.Trace, c.Detail)
		}
		if c.Faults == 0 {
			continue
		}
		if c.Retries == 0 || c.Attempts < 2 {
			t.Fatalf("faulted chain %s: %d attempts, %d retries — fault did not retry", c.Trace, c.Attempts, c.Retries)
		}
		var names []string
		for _, ev := range c.Events {
			names = append(names, ev.Name)
		}
		seq := strings.Join(names, " ")
		if !strings.Contains(seq, obs.EvFault+" "+obs.EvRetry+" "+obs.EvAttempt) {
			t.Fatalf("faulted chain %s lacks fault→backoff→reattempt order: %s", c.Trace, seq)
		}
		healed = true
	}
	if !healed {
		t.Fatal("no chain recorded a healed fault — the scenario tested nothing")
	}
}

// TestTraceEscalationEvents checks the estimator leg of the chain:
// under an auto policy with a tolerance no family meets, every chain
// carries an estimator/escalate event before its exact serve.
func TestTraceEscalationEvents(t *testing.T) {
	est, err := twin.Select("auto", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Get("fig9")
	if err != nil {
		t.Fatal(err)
	}
	opt := tiny
	opt.Estimator = est
	opt.Trace = obs.NewTracer(0)
	if _, err := e.Run(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	p := obs.AnalyzeTrace(opt.Trace.Events())
	for _, c := range p.Chains {
		if c.Escalations == 0 {
			t.Fatalf("chain %s never escalated under a tolerance no family meets", c.Trace)
		}
		exact := false
		for _, ev := range c.Events {
			if ev.Name == obs.EvEstimator && ev.Detail == "exact" {
				exact = true
			}
		}
		if !exact {
			t.Fatalf("chain %s escalated but no exact serve followed", c.Trace)
		}
	}
}

// TestTraceJoinsStore is the content-derived identity contract: a cold
// store-backed run and the warm rerun that serves every cell from the
// journal emit chains under the same digest-derived trace IDs, with
// the warm occurrences flagged as cache hits at worker -1.
func TestTraceJoinsStore(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, nil)
	_, coldEvents := tracedRun(t, "fig9", "", nil, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir, nil)
	defer st2.Close()
	_, warmEvents := tracedRun(t, "fig9", "", nil, st2)

	cold, warm := obs.AnalyzeTrace(coldEvents), obs.AnalyzeTrace(warmEvents)
	if warm.Hits == 0 || warm.Hits != warm.Jobs {
		t.Fatalf("warm run: %d/%d hits, want all", warm.Hits, warm.Jobs)
	}
	coldIDs := map[string]bool{}
	for _, c := range cold.Chains {
		coldIDs[c.Trace] = true
	}
	for _, c := range warm.Chains {
		if !coldIDs[c.Trace] {
			t.Fatalf("warm chain %s (%s) has no cold counterpart — trace IDs are not content-derived", c.Trace, c.Job)
		}
		if !c.CacheHit || c.Worker != -1 {
			t.Fatalf("warm chain %s not an inline store hit: %+v", c.Trace, c)
		}
	}
}
