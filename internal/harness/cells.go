package harness

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// The exported cell catalog: the serve daemon answers "kernel K at
// footprint F on platform P in mode X" queries by resolving them onto
// the exact cells the batch figures journal — same digest layout, same
// compute path, same stored bytes. Everything here is a thin exported
// seam over the internals the figure runners already use, so the two
// callers cannot drift apart: runCurves itself goes through CurveSpec,
// and cacheFor goes through the same digest-identity helper as
// CellDigest.

// estimatorDigestIdentity applies the digest-separation rule of
// DESIGN.md §11 to a sweep family: the exact estimator keeps the
// historical layout (core.ModelVersion, unprefixed family), any other
// estimator substitutes its own version and namespaces the family with
// its mode, so a twin- or auto-computed cell can never alias an exact
// one in either direction.
func estimatorDigestIdentity(est core.Estimator, sweepID string) (version, id string) {
	if est.Mode() == "exact" {
		return core.ModelVersion, sweepID
	}
	return est.Version(), est.Mode() + "/" + sweepID
}

// CellDigest returns the store digest addressing one cached cell of
// sweep family sweepID under estimator est — the four-part layout of
// DESIGN.md §8 with §11's estimator separation applied. This is the
// same digest cacheFor derives for batch sweeps, so a serve-side
// lookup hits exactly the entries an opmbench run journaled.
func CellDigest(est core.Estimator, sweepID, cfgHash, key string) string {
	version, id := estimatorDigestIdentity(est, sweepID)
	return store.Digest(version, cfgHash, id, key)
}

// CellTraceID returns the trace identity of a cell digest — the same
// derivation storeCache.TraceInfo uses, so serve request chains join
// the batch job chains for the same cell.
func CellTraceID(digest string) string { return obs.TraceID("store", digest) }

// CellFamilyID returns the estimator-namespaced sweep family — the Exp
// provenance label batch sweeps record on Put, exported so the serve
// daemon journals cells with identical provenance.
func CellFamilyID(est core.Estimator, sweepID string) string {
	_, id := estimatorDigestIdentity(est, sweepID)
	return id
}

// DenseSweepID is the store family of the dense analytic grid cells.
const DenseSweepID = "dense"

// DenseKey returns the store job key of one dense cell — the layout
// denseCache uses (the per-job machine config hash folds into the key;
// the family's cfgHash is empty).
func DenseKey(j core.DenseJob) string {
	return fmt.Sprintf("%s|%s|%d|%d", obs.Hash(j.Machine.Config()), j.Kind, j.N, j.NB)
}

// CurveSweepID is the store family of one kernel's curve cells.
func CurveSweepID(kernel string) string { return "curve/" + kernel }

// CurveCellKey is the store job key of one curve cell: the paper-scale
// footprint in bytes.
func CurveCellKey(fp int64) string { return fmt.Sprint(fp) }

// CurveSpec is one platform's curve-cell family: the machine set the
// paper compares (baseline DDR first, then the OPM modes in Table-1
// order) and the platform whose scale parameterizes the workloads.
// One spec pins the digest config hash, the footprint grid, and the
// per-footprint compute, so every consumer — figure runner or serving
// daemon — evaluates byte-identical cells.
type CurveSpec struct {
	Platform *platform.Platform
	Machines []*core.Machine
}

// NewCurveSpec builds the curve spec for a platform ("broadwell" or
// "knl").
func NewCurveSpec(platName string) (*CurveSpec, error) {
	base, opms, plat, err := machineSet(platName)
	if err != nil {
		return nil, err
	}
	return &CurveSpec{Platform: plat, Machines: append([]*core.Machine{base}, opms...)}, nil
}

// ConfigHash fingerprints the spec for the digest's config component:
// the machine-set configurations plus the scale the workload builder
// consumes.
func (s *CurveSpec) ConfigHash() string {
	return machinesHash(s.Machines, s.Platform.Scale)
}

// Footprints returns the paper-scale footprint grid the curve figures
// sweep (log-spaced; see curveFootprints for the per-platform spans).
func (s *CurveSpec) Footprints(opt Options) []int64 {
	return curveFootprints(s.Platform, opt)
}

// Machine returns the spec's machine for a mode, or false when the
// platform does not run that mode.
func (s *CurveSpec) Machine(mode memsim.Mode) (*core.Machine, bool) {
	for _, m := range s.Machines {
		if m.Mode == mode {
			return m, true
		}
	}
	return nil, false
}

// Workload builds the kernel's workload at one paper-scale footprint
// (scaled down to simulation size, floored at 4KiB).
func (s *CurveSpec) Workload(kernel string, fp int64) (trace.Workload, error) {
	simFP := s.Platform.ScaledBytes(fp)
	if simFP < 4096 {
		simFP = 4096
	}
	return curveWorkload(kernel, simFP, s.Platform.Scale)
}

// ComputeCell evaluates one curve cell — every mode of the machine set
// at one footprint — through est. This is the exact per-job body the
// curve figures run under sweep.MapCached, factored out so the serve
// daemon's cold path produces byte-identical cells.
func (s *CurveSpec) ComputeCell(ctx context.Context, eng *sweep.Engine, w *sweep.Worker, est core.Estimator, kernel string, fp int64) (CurvePoint, error) {
	wl, err := s.Workload(kernel, fp)
	if err != nil {
		return CurvePoint{}, err
	}
	pt := CurvePoint{
		GFlops: map[memsim.Mode]float64{},
		GBs:    map[memsim.Mode]float64{},
	}
	for _, mach := range s.Machines {
		r, err := est.EstimateCell(ctx, eng, w, mach, wl, fmt.Sprintf("%s|fp=%d|%s", kernel, fp, mach.Label()))
		if err != nil {
			return CurvePoint{}, fmt.Errorf("%s at %d MB on %s: %w", kernel, fp>>20, mach.Label(), err)
		}
		pt.GFlops[mach.Mode] = r.GFlops
		// App-level bandwidth by the paper's byte accounting:
		// bytes = flops / AI, AI = flops/bytes of Table 2.
		pt.GBs[mach.Mode] = appGBs(kernel, wl, r)
		pt.Footprint = r.FootprintBytes
	}
	return pt, nil
}
