//go:build opmlint_digest_mutation

package harness

// This file exists only under the opmlint_digest_mutation build tag:
// it is the digestpure check's mutation test. mutatedEstimator
// implements core.Estimator with a Version() that reads the wall
// clock — precisely the impurity a digest must never depend on. It is
// reachable from the real digest root CellDigest only through
// interface dispatch (estimatorDigestIdentity calls est.Version()),
// so the lint suite loading this tag proves the interprocedural
// closure covers interface-method expansion, not just direct calls.
// Nothing constructs the type; reachability is the point.

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

type mutatedEstimator struct{}

var _ core.Estimator = mutatedEstimator{}

func (mutatedEstimator) Mode() string { return "mutated" }

// Version is the injected impurity: a digest keyed on it would differ
// between two runs over identical inputs.
func (mutatedEstimator) Version() string {
	return time.Now().String()
}

func (mutatedEstimator) EstimateCell(ctx context.Context, eng *sweep.Engine, w *sweep.Worker, m *core.Machine, wl trace.Workload, key string) (memsim.Result, error) {
	return memsim.Result{}, nil
}

func (mutatedEstimator) EstimateDense(ctx context.Context, eng *sweep.Engine, j core.DenseJob, key string) (memsim.Result, error) {
	return memsim.Result{}, nil
}
