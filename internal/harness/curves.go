package harness

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/platform"
	"repro/internal/plot"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// curveFootprints returns the log-spaced paper-scale footprints of the
// Stream/Stencil/FFT sweeps (Figures 12–14 on Broadwell span ~1MB–1GB;
// Figures 23–25 on KNL span ~8MB–32GB).
func curveFootprints(p *platform.Platform, opt Options) []int64 {
	var minFP, maxFP int64
	if p.Name == "broadwell" {
		minFP, maxFP = 1<<20, 1<<30
	} else {
		minFP, maxFP = 8<<20, 32<<30
	}
	points := 16
	if opt.Full {
		points = 32
	}
	if opt.CurvePoints > 1 {
		points = opt.CurvePoints
	}
	out := make([]int64, 0, points)
	lmin, lmax := math.Log(float64(minFP)), math.Log(float64(maxFP))
	for i := 0; i < points; i++ {
		out = append(out, int64(math.Exp(lmin+(lmax-lmin)*float64(i)/float64(points-1))))
	}
	return out
}

// curveWorkload builds the footprint-parameterized workload of one
// kernel at simulated scale (scale also shrinks the stencil blocking).
func curveWorkload(kernel string, simFP, scale int64) (trace.Workload, error) {
	switch kernel {
	case "Stream":
		return trace.NewStream(simFP), nil
	case "Stencil":
		return trace.NewStencil(simFP, scale), nil
	case "FFT":
		return trace.NewFFT(simFP), nil
	}
	return nil, fmt.Errorf("harness: unknown curve kernel %q", kernel)
}

// CurvePoint is one footprint × machine observation — the unit the
// curve figures sweep over and the cell the serve daemon's curve
// queries resolve to. One cached cell holds every mode's value, so a
// mode-specific query renders a field out of the same stored bytes the
// batch figures journal (field names are part of the store format; see
// DESIGN.md §8).
type CurvePoint struct {
	Footprint int64 // reported scale
	GFlops    map[memsim.Mode]float64
	GBs       map[memsim.Mode]float64 // app-level bandwidth (Stream figures)
}

// runCurves sweeps one kernel across footprints and modes on the sweep
// engine: one job per footprint point, each driving every mode through
// its worker's pooled simulators.
func runCurves(ctx context.Context, platName, kernel string, opt Options) ([]CurvePoint, []*core.Machine, error) {
	spec, err := NewCurveSpec(platName)
	if err != nil {
		return nil, nil, err
	}
	machines := spec.Machines
	fps := spec.Footprints(opt)
	opt.logger().Debug("curve sweep starting", "platform", platName, "kernel", kernel,
		"points", len(fps), "modes", len(machines))
	// One footprint point runs every mode, so the machine-set hash
	// (plus the scale the workload builder consumes) is the config
	// component and the footprint is the job key.
	cache := cacheFor[int64, CurvePoint](opt, "curve/"+kernel, spec.ConfigHash(), CurveCellKey)
	eng := opt.engine()
	sp := opt.Obs.StartSpan("curves/" + platName + "/" + kernel + "/sweep") //opmlint:allow counternames — platform and kernel come from the closed registry roster; the curves/<plat>/<kernel> namespace is enumerable
	defer sp.End()
	pts, err := sweep.MapCached(ctx, eng, fps, cache,
		func(ctx context.Context, w *sweep.Worker, fp int64) (CurvePoint, error) {
			return spec.ComputeCell(ctx, eng, w, opt.estimator(), kernel, fp)
		})
	if err != nil {
		// Curve points are few and equally weighted; a hole would warp
		// the plateau comparison, so any failure aborts the figure.
		return nil, nil, err
	}
	return pts, machines, nil
}

// appGBs converts a result to application-level GB/s using the
// kernel's Table 2 byte count (the paper reports Stream in GB/s).
func appGBs(kernel string, w trace.Workload, r memsim.Result) float64 {
	var bytes float64
	switch kernel {
	case "Stream":
		bytes = 32.0 / 2.0 * w.Flops() // 32 bytes per 2 flops
	case "Stencil":
		bytes = 8.0 / 61.0 * w.Flops()
	case "FFT":
		// 48n bytes for 5n·log2 n flops.
		n := float64(w.FootprintBytes() / 16)
		bytes = 48 * n
	default:
		bytes = float64(w.FootprintBytes())
	}
	if r.Seconds <= 0 {
		return 0
	}
	return bytes / r.Seconds / 1e9
}

// curveRunner builds Figures 12–14 and 23–25.
func curveRunner(platName, kernel string) func(context.Context, Options) (*Report, error) {
	return func(ctx context.Context, opt Options) (*Report, error) {
		pts, machines, err := runCurves(ctx, platName, kernel, opt)
		if err != nil {
			return nil, err
		}
		rep := &Report{CSV: map[string][]string{}}
		unit := "GFlop/s"
		value := func(pt CurvePoint, mode memsim.Mode) float64 { return pt.GFlops[mode] }
		if kernel == "Stream" {
			unit = "GB/s"
			value = func(pt CurvePoint, mode memsim.Mode) float64 { return pt.GBs[mode] }
		}
		var series []plot.Series
		csv := []string{csvLine("footprint_mb", "mode", "gflops", "app_gbs")}
		for _, mach := range machines {
			s := plot.Series{Name: mach.Mode.String()}
			for _, pt := range pts {
				s.X = append(s.X, float64(pt.Footprint)/(1<<20))
				s.Y = append(s.Y, value(pt, mach.Mode))
				csv = append(csv, csvLine(f(float64(pt.Footprint)/(1<<20)),
					mach.Mode.String(), f(pt.GFlops[mach.Mode]), f(pt.GBs[mach.Mode])))
			}
			series = append(series, s)
		}
		var b strings.Builder
		b.WriteString(plot.Lines(
			fmt.Sprintf("%s on %s: %s vs footprint (MB, paper scale)", kernel, platName, unit),
			series, 72, 16, true))
		rep.CSV[fmt.Sprintf("%s_%s_curve.csv", strings.ToLower(kernel), platName)] = csv

		// Findings: peak per mode plus plateau comparison at the
		// largest footprint below any capacity cliff.
		for _, mach := range machines {
			peak := 0.0
			for _, pt := range pts {
				peak = math.Max(peak, value(pt, mach.Mode))
			}
			rep.Findings = append(rep.Findings,
				fmt.Sprintf("%s %s/%s best: %.4g %s", kernel, platName, mach.Mode, peak, unit))
		}
		if len(machines) > 1 {
			last := pts[len(pts)-1]
			opm := machines[len(machines)-1].Mode
			rep.Findings = append(rep.Findings, fmt.Sprintf(
				"%s %s at largest footprint: %s %.4g vs ddr %.4g %s",
				kernel, platName, opm, value(last, opm), value(last, memsim.ModeDDR), unit))
		}
		rep.Text = b.String()
		return rep, nil
	}
}
