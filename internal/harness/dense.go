package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/plot"
	"repro/internal/trace"
)

// denseGrid returns the paper's (order, block) sweep for a platform
// (Appendix A.2.1/A.2.2): orders 256..16128 step 512 on Broadwell and
// 256..32000 step 1024 on KNL; blocks 128..4096 step 128 on both. The
// analytic dense model is cheap, so quick mode only coarsens the block
// axis.
func denseGrid(p *platform.Platform, full bool) (orders, blocks []int) {
	if p.Name == "broadwell" {
		for n := 256; n <= 16128; n += 512 {
			orders = append(orders, n)
		}
	} else {
		for n := 256; n <= 32000; n += 1024 {
			orders = append(orders, n)
		}
	}
	step := 128
	if !full {
		step = 256
	}
	for nb := 128; nb <= 4096; nb += step {
		blocks = append(blocks, nb)
	}
	return orders, blocks
}

func denseKind(kernel string) (trace.DenseKind, error) {
	switch kernel {
	case "GEMM":
		return trace.DenseGEMM, nil
	case "Cholesky":
		return trace.DenseCholesky, nil
	}
	return 0, fmt.Errorf("harness: unknown dense kernel %q", kernel)
}

// denseHeatmapRunner builds Figures 7/8 (Broadwell) and 15/16 (KNL):
// one (block × order) GFlop/s heat map per memory mode. The grid cells
// are submitted to the sweep engine machine-by-machine in row-major
// (block, order) order; results come back in submission order, so the
// assembled heat maps are byte-identical to the sequential nest they
// replace.
func denseHeatmapRunner(platName, kernel string) func(context.Context, Options) (*Report, error) {
	return func(ctx context.Context, opt Options) (*Report, error) {
		kind, err := denseKind(kernel)
		if err != nil {
			return nil, err
		}
		base, opms, plat, err := machineSet(platName)
		if err != nil {
			return nil, err
		}
		machines := append([]*core.Machine{base}, opms...)
		orders, blocks := denseGrid(plat, opt.Full)

		var jobs []core.DenseJob
		for _, m := range machines {
			for _, nb := range blocks {
				for _, n := range orders {
					jobs = append(jobs, core.DenseJob{Machine: m, Kind: kind, N: n, NB: nb})
				}
			}
		}
		opt.logger().Debug("dense sweep starting", "platform", platName, "kernel", kernel,
			"cells", len(jobs))
		sp := opt.Obs.StartSpan("dense/" + platName + "/" + kernel + "/sweep") //opmlint:allow counternames — platform and kernel come from the closed registry roster; the dense/<plat>/<kernel> namespace is enumerable
		results, err := core.RunDenseBatchWith(ctx, opt.engine(), jobs, denseCache(opt), opt.estimator())
		sp.End()
		if err != nil {
			// Dense cells fail only for systematic reasons (bad grid or
			// tuning), so any failure aborts the heat map.
			return nil, err
		}

		rep := &Report{CSV: map[string][]string{}}
		render := opt.Obs.StartSpan("dense/" + platName + "/" + kernel + "/render") //opmlint:allow counternames — platform and kernel come from the closed registry roster; the dense/<plat>/<kernel> namespace is enumerable
		defer render.End()
		var b strings.Builder
		idx := 0
		for _, m := range machines {
			grid := make([][]float64, len(blocks))
			csv := []string{csvLine("order", "block", "gflops", "bound")}
			peak := 0.0
			peakN, peakNB := 0, 0
			for bi, nb := range blocks {
				grid[bi] = make([]float64, len(orders))
				for oi, n := range orders {
					r := results[idx]
					idx++
					grid[bi][oi] = r.GFlops
					if r.GFlops > peak {
						peak, peakN, peakNB = r.GFlops, n, nb
					}
					csv = append(csv, csvLine(fmt.Sprint(n), fmt.Sprint(nb), f(r.GFlops), string(r.Bound)))
				}
			}
			label := fmt.Sprintf("%s %s (%s)", kernel, platName, m.Mode)
			b.WriteString(plot.Heatmap(
				fmt.Sprintf("%s GFlop/s heat map — peak %.1f at n=%d nb=%d", label, peak, peakN, peakNB),
				grid, "matrix order", "block size"))
			b.WriteString("\n")
			rep.CSV[fmt.Sprintf("%s_%s_%s.csv", strings.ToLower(kernel), platName, m.Mode)] = csv
			rep.Findings = append(rep.Findings,
				fmt.Sprintf("%s best: %.1f GFlop/s (n=%d, nb=%d)", label, peak, peakN, peakNB))
		}
		rep.Text = b.String()
		return rep, nil
	}
}
