package harness

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/store"
)

// chaosPolicy is the retry budget the chaos scenarios run under: three
// attempts with fast deterministic backoff.
func chaosPolicy() *resilience.Policy {
	return &resilience.Policy{
		MaxAttempts: 3,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  500 * time.Microsecond,
		Seed:        1,
	}
}

// chaosRun executes one experiment with a parsed fault spec and a
// fresh registry, returning the report and the registry's counters.
func chaosRun(t *testing.T, id, spec string, pol *resilience.Policy, st *store.Store) (*Report, map[string]int64) {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	opt := tiny
	opt.Resilience = pol
	reg := obs.NewRegistry()
	opt.Obs = reg
	opt.Store = st
	if spec != "" {
		inj, err := faultinject.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		inj.Bind(reg)
		opt.Inject = inj
		st.SetInjector(inj)
	}
	rep, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatalf("%s under faults %q: %v", id, spec, err)
	}
	return rep, reg.Snapshot().Counters
}

// reportEqual asserts two reports render byte-identical Text, Findings
// and CSV series.
func reportEqual(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if reportBytes(a) != reportBytes(b) {
		t.Fatalf("%s: Text/Findings diverge", label)
	}
	if !reflect.DeepEqual(a.CSV, b.CSV) {
		t.Fatalf("%s: CSV series diverge", label)
	}
}

// skipInShort keeps the chaos tier out of -short runs: CI runs the
// quick build/test/lint split (.github/workflows/ci.yml), while the
// chaos scenarios run locally under the race detector via
// scripts/check.sh. Plain `go test ./...` still runs everything.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("chaos tier is local-only (scripts/check.sh); skipped under -short")
	}
}

// TestChaosEquivalence is the acceptance contract of the fault
// framework: a run with transient faults injected into well over 10% of
// its jobs — transient errors, one-shot panics, delays, and
// corrupted results — plus retries produces byte-identical reports to
// a fault-free run, with zero dropped cells, because every injected
// fault heals within the attempt budget.
func TestChaosEquivalence(t *testing.T) {
	skipInShort(t)
	clean, _ := chaosRun(t, "fig9", "", nil, nil)

	spec := "seed=7,job:transient@0.4,job:panic@0.2,job:delay@0.3=200us,result:corrupt@0.4"
	faulted, counters := chaosRun(t, "fig9", spec, chaosPolicy(), nil)

	reportEqual(t, "faulted vs clean", faulted, clean)
	if faulted.Dropped != 0 {
		t.Fatalf("healed run dropped %d cells", faulted.Dropped)
	}
	injected := counters["fault/job_transient"] + counters["fault/job_panic"] +
		counters["fault/job_delay"] + counters["fault/result_corrupt"]
	if injected == 0 {
		t.Fatal("no fault fired — the scenario tested nothing")
	}
	if counters["resilience/retries"] == 0 {
		t.Fatal("faults fired but nothing retried")
	}
	if counters["fault/result_corrupt"] > 0 && counters["resilience/quarantined"] == 0 {
		t.Fatal("corrupted results were never quarantined")
	}
	if counters["resilience/retry_exhausted"] != 0 {
		t.Fatalf("%d jobs exhausted their budget in a healing scenario",
			counters["resilience/retry_exhausted"])
	}
}

// TestChaosExhaustionDegradesGracefully checks the other half of the
// contract: permanent faults exhaust and the run still completes — a
// partial report with the dropped cells annotated as warnings, never a
// hang or an abort.
func TestChaosExhaustionDegradesGracefully(t *testing.T) {
	skipInShort(t)
	rep, counters := chaosRun(t, "fig9", "seed=7,job:permanent@0.3", chaosPolicy(), nil)
	if rep.Dropped == 0 {
		t.Fatal("permanent faults dropped nothing")
	}
	if counters["fault/job_permanent"] == 0 {
		t.Fatal("permanent rule never fired")
	}
	warnings := 0
	for _, f := range rep.Findings {
		if strings.Contains(f, "WARNING") {
			warnings++
		}
	}
	if warnings != rep.Dropped {
		t.Fatalf("%d dropped cells but %d WARNING findings", rep.Dropped, warnings)
	}
	if rep.Text == "" || len(rep.CSV) == 0 {
		t.Fatal("degraded run lost its report body")
	}
}

// TestChaosDeterminism checks reproducibility: the same fault seed
// yields byte-identical reports and identical fault/retry counters
// across runs, and a different seed selects a different fault set.
func TestChaosDeterminism(t *testing.T) {
	skipInShort(t)
	spec := "seed=7,job:transient@0.4,result:corrupt@0.4"
	rep1, c1 := chaosRun(t, "fig9", spec, chaosPolicy(), nil)
	rep2, c2 := chaosRun(t, "fig9", spec, chaosPolicy(), nil)
	reportEqual(t, "same seed", rep1, rep2)
	for _, name := range []string{
		"fault/job_transient", "fault/result_corrupt",
		"resilience/retries", "resilience/quarantined",
	} {
		if c1[name] != c2[name] {
			t.Fatalf("%s diverged across identical runs: %d vs %d", name, c1[name], c2[name])
		}
	}

	_, c3 := chaosRun(t, "fig9", "seed=8,job:transient@0.4,result:corrupt@0.4", chaosPolicy(), nil)
	if c3["fault/job_transient"] == c1["fault/job_transient"] &&
		c3["fault/result_corrupt"] == c1["fault/result_corrupt"] &&
		c3["resilience/retries"] == c1["resilience/retries"] {
		t.Log("different seed fired identically — legal but suspicious on this few cells")
	}
}

// TestChaosStoreTornWrites drives the persistent store through a
// chaos run: every commit suffers a torn append that is repaired in
// place, the damage counters record it, and the journal reopens clean
// and warm-serves a byte-identical report.
func TestChaosStoreTornWrites(t *testing.T) {
	skipInShort(t)
	clean, _ := chaosRun(t, "fig9", "", nil, nil)

	dir := t.TempDir()
	st := mustOpen(t, dir, nil)
	rep, counters := chaosRun(t, "fig9", "seed=7,store:torn@0.6,job:transient@0.3", chaosPolicy(), st)
	if counters["fault/store_torn"] == 0 {
		t.Fatal("torn-write rule never fired")
	}
	if stats := st.Stats(); stats.TornWrites == 0 || stats.TornWrites != stats.WriteRepairs {
		t.Fatalf("torn writes %d, repairs %d — want equal and non-zero", stats.TornWrites, stats.WriteRepairs)
	}
	reportEqual(t, "chaos-store vs clean", rep, clean)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen without chaos: the repaired journal must be clean and the
	// warm run byte-identical.
	reg := obs.NewRegistry()
	st2 := mustOpen(t, dir, reg)
	defer st2.Close()
	if snap := reg.Snapshot(); snap.Counters["store/corrupt_records"] != 0 {
		t.Fatalf("repaired journal had %d corrupt records on reopen", snap.Counters["store/corrupt_records"])
	}
	warm, _ := chaosRun(t, "fig9", "", nil, st2)
	reportEqual(t, "warm-after-chaos vs clean", warm, clean)
}

// TestChaosStoreCorruptWritesRecompute checks the silent-damage path
// end to end: bit-flipped journal records are dropped on reopen and
// the affected cells recompute, still converging to a byte-identical
// report.
func TestChaosStoreCorruptWritesRecompute(t *testing.T) {
	skipInShort(t)
	clean, _ := chaosRun(t, "fig9", "", nil, nil)

	dir := t.TempDir()
	st := mustOpen(t, dir, nil)
	_, counters := chaosRun(t, "fig9", "seed=7,store:corrupt@0.5", chaosPolicy(), st)
	if counters["fault/store_corrupt"] == 0 {
		t.Fatal("corrupt-write rule never fired")
	}
	damaged := st.Stats().CorruptWrites
	if damaged == 0 {
		t.Fatal("no write damaged")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	st2 := mustOpen(t, dir, reg)
	defer st2.Close()
	snap := reg.Snapshot()
	if got := snap.Counters["store/corrupt_records"]; got != int64(damaged) {
		t.Fatalf("reopen dropped %d records, want %d", got, damaged)
	}
	// Half-warm run: surviving records hit, damaged ones recompute.
	rerun, _ := chaosRun(t, "fig9", "", nil, st2)
	reportEqual(t, "recomputed vs clean", rerun, clean)
	if st2.Stats().Misses == 0 {
		t.Fatal("no cell recomputed after journal damage")
	}
}

// TestChaosBreakerAnnotatesReport checks the circuit-breaker path at
// the report level: a sweep whose early jobs all fail permanently
// trips the breaker, the remaining cells are short-circuited, and the
// report carries the drops as warnings instead of aborting.
func TestChaosBreakerAnnotatesReport(t *testing.T) {
	skipInShort(t)
	pol := chaosPolicy()
	pol.BreakerThreshold = 2
	// Whether the breaker actually trips depends on two drops landing
	// consecutively in completion order, which worker scheduling makes
	// nondeterministic — the deterministic trip mechanics live in the
	// sweep layer's TestBreakerShortCircuitsSweep. What the harness
	// must guarantee either way is a whole, annotated report.
	rep, counters := chaosRun(t, "fig9", "seed=11,job:permanent@0.45", pol, nil)
	if counters["fault/job_permanent"] == 0 {
		t.Fatal("no permanent fault fired")
	}
	if rep.Dropped == 0 {
		t.Fatal("nothing dropped")
	}
	total := int64(rep.Dropped)
	if shorted := counters["resilience/breaker_short_circuits"]; shorted > 0 {
		if counters["resilience/breaker_trips"] == 0 {
			t.Fatal("short circuits without a recorded trip")
		}
		if shorted >= total {
			t.Fatalf("short-circuits %d >= total drops %d", shorted, total)
		}
	}
	if rep.Text == "" {
		t.Fatal("report body lost")
	}
}
