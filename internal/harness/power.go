package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/plot"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// powerPair is one kernel's (baseline, OPM) representative-input run
// pair. Fields are exported so the persistent store can round-trip it.
type powerPair struct {
	Base, OPM memsim.Result
}

// powerRunner builds Figures 26 (Broadwell) and 27 (KNL): per-kernel
// package and DRAM power with and without the OPM, the geometric-mean
// bars, and the Eq. 1 break-even statement. The per-kernel baseline/OPM
// run pairs are independent, so they go through the sweep engine (one
// job per kernel) and are assembled in kernel order.
func powerRunner(platName string) func(context.Context, Options) (*Report, error) {
	return func(ctx context.Context, opt Options) (*Report, error) {
		base, opms, _, err := machineSet(platName)
		if err != nil {
			return nil, err
		}
		// The power figures compare the baseline against the primary
		// OPM configuration (eDRAM on Broadwell, flat MCDRAM on KNL).
		opm := opms[len(opms)-1]
		for _, m := range opms {
			if m.Mode == memsim.ModeFlat || m.Mode == memsim.ModeEDRAM {
				opm = m
			}
		}
		model, err := power.ForPlatform(platName)
		if err != nil {
			return nil, err
		}

		cache := cacheFor[string, powerPair](opt, "power",
			machinesHash([]*core.Machine{base, opm}),
			func(kernel string) string { return kernel })
		eng := opt.engine()
		pairs, err := sweep.MapCached(ctx, eng, kernelOrder, cache,
			func(ctx context.Context, w *sweep.Worker, kernel string) (powerPair, error) {
				run, err := representativeWorkload(platName, kernel, opt.estimator())
				if err != nil {
					return powerPair{}, err
				}
				// The representative cells gate under the historical
				// power|kernel|platform keys (inject, validate,
				// quarantine), whichever estimator serves them.
				key := "power|" + kernel + "|" + platName
				rb, err := run(ctx, eng, w, base, key+"|base")
				if err != nil {
					return powerPair{}, fmt.Errorf("%s baseline: %w", kernel, err)
				}
				ro, err := run(ctx, eng, w, opm, key+"|opm")
				if err != nil {
					return powerPair{}, fmt.Errorf("%s %s: %w", kernel, opm.Mode, err)
				}
				return powerPair{Base: rb, OPM: ro}, nil
			})
		if err != nil {
			// Every kernel row feeds the geometric mean; a hole would
			// shift it, so any failure aborts the figure.
			return nil, err
		}

		var labels []string
		var pkgBase, pkgOPM, dramBase, dramOPM []float64
		var speedups []float64
		csv := []string{csvLine("kernel", "mode", "pkg_w", "dram_w", "gflops", "energy_j")}
		for ki, kernel := range kernelOrder {
			rb, ro := pairs[ki].Base, pairs[ki].OPM
			sb := model.Estimate(rb)
			so := model.Estimate(ro)
			labels = append(labels, kernel)
			pkgBase = append(pkgBase, sb.PkgW)
			pkgOPM = append(pkgOPM, so.PkgW)
			dramBase = append(dramBase, sb.DRAMW)
			dramOPM = append(dramOPM, so.DRAMW)
			speedups = append(speedups, ro.GFlops/rb.GFlops)
			csv = append(csv, csvLine(kernel, base.Mode.String(), f(sb.PkgW), f(sb.DRAMW), f(rb.GFlops), f(model.EnergyJ(rb))))
			csv = append(csv, csvLine(kernel, opm.Mode.String(), f(so.PkgW), f(so.DRAMW), f(ro.GFlops), f(model.EnergyJ(ro))))
		}
		gmB, err := stats.GeoMean(pkgBase)
		if err != nil {
			return nil, err
		}
		gmO, err := stats.GeoMean(pkgOPM)
		if err != nil {
			return nil, err
		}
		labels = append(labels, "GM")
		pkgBase = append(pkgBase, gmB)
		pkgOPM = append(pkgOPM, gmO)

		var b strings.Builder
		b.WriteString(plot.Bars(
			fmt.Sprintf("Package power w/o OPM (%s, W)", platName), labels, pkgBase, 40))
		b.WriteString("\n")
		b.WriteString(plot.Bars(
			fmt.Sprintf("Package power w/ %s (W)", opm.Mode), labels, pkgOPM, 40))
		b.WriteString("\n")
		b.WriteString(plot.Bars("DRAM power w/o OPM (W)", labels[:len(labels)-1], dramBase, 40))
		b.WriteString("\n")
		b.WriteString(plot.Bars(fmt.Sprintf("DRAM power w/ %s (W)", opm.Mode), labels[:len(labels)-1], dramOPM, 40))

		deltaW := gmO - gmB
		deltaPct := deltaW / gmB
		fmt.Fprintf(&b, "\nOPM raises average package power by %.1f W (%.1f%%)\n", deltaW, deltaPct*100)

		rep := &Report{CSV: map[string][]string{fmt.Sprintf("power_%s.csv", platName): csv}}
		rep.Findings = append(rep.Findings, fmt.Sprintf(
			"%s: OPM adds %.1f W (%.1f%%) average package power (paper: +5.6 W/+8.6%% eDRAM, +9.8 W/+6.9%% MCDRAM)",
			platName, deltaW, deltaPct*100))
		rep.Findings = append(rep.Findings, eq1Findings(platName, deltaPct))
		savers := 0
		for _, sp := range speedups {
			if power.SavesEnergy(sp-1, deltaPct) {
				savers++
			}
		}
		rep.Findings = append(rep.Findings, fmt.Sprintf(
			"%s: %d of %d kernels clear the Eq. 1 energy break-even at their representative input",
			platName, savers, len(speedups)))
		ddrDrop := 0
		for i := range dramBase {
			if dramOPM[i] < dramBase[i] {
				ddrDrop++
			}
		}
		rep.Findings = append(rep.Findings, fmt.Sprintf(
			"%s: OPM reduces DRAM-domain power for %d of %d kernels (traffic moved on package)",
			platName, ddrDrop, len(dramBase)))
		rep.Text = b.String()
		return rep, nil
	}
}
