package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tiny makes every experiment fast enough for unit tests.
var tiny = Options{Stride: 96, CurvePoints: 6, MaxPaperFootprint: 256 << 20}

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{
		"table2", "fig1", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig23", "fig24", "fig25",
		"table4", "table5", "fig26", "fig27", "fig28", "fig29", "fig30",
	}
	got := map[string]bool{}
	for _, e := range Registry() {
		got[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(IDs()) != len(Registry()) {
		t.Fatal("IDs/Registry mismatch")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("fig1000"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	e, err := Get("fig7")
	if err != nil || e.ID != "fig7" {
		t.Fatal("Get(fig7) failed")
	}
}

func TestMachineSetErrors(t *testing.T) {
	if _, _, _, err := machineSet("epyc"); err == nil {
		t.Fatal("unknown platform accepted")
	}
	base, opms, plat, err := machineSet("knl")
	if err != nil || base == nil || len(opms) != 3 || plat.Name != "knl" {
		t.Fatalf("machineSet(knl) = %v/%d/%v", base, len(opms), err)
	}
}

func TestModelExperiments(t *testing.T) {
	for _, id := range []string{"table2", "fig5", "fig6", "fig28", "fig29", "fig30"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(context.Background(), tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rep.Text == "" || len(rep.Findings) == 0 || len(rep.CSV) == 0 {
			t.Fatalf("%s: incomplete report", id)
		}
	}
}

func TestFig1DensityImproves(t *testing.T) {
	e, _ := Get("fig1")
	rep, err := e.Run(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if strings.Contains(f, "near-peak") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fig1 findings missing density comparison: %v", rep.Findings)
	}
}

func TestDenseHeatmaps(t *testing.T) {
	for _, id := range []string{"fig7", "fig15"} {
		e, _ := Get(id)
		rep, err := e.Run(context.Background(), tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(rep.Text, "heat map") {
			t.Fatalf("%s: no heat map rendered", id)
		}
		// One CSV per mode.
		wantCSVs := 2
		if id == "fig15" {
			wantCSVs = 4
		}
		if len(rep.CSV) != wantCSVs {
			t.Fatalf("%s: %d CSVs, want %d", id, len(rep.CSV), wantCSVs)
		}
	}
}

func TestSparseExperimentTiny(t *testing.T) {
	e, _ := Get("fig9")
	rep, err := e.Run(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "speedup") {
		t.Fatal("missing speedup panel")
	}
	if len(rep.Findings) < 2 {
		t.Fatalf("findings: %v", rep.Findings)
	}
}

func TestCurveExperimentTiny(t *testing.T) {
	e, _ := Get("fig12")
	rep, err := e.Run(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "GB/s") {
		t.Fatal("Stream figure should be in GB/s")
	}
}

func TestPowerExperimentTiny(t *testing.T) {
	e, _ := Get("fig26")
	rep, err := e.Run(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(rep.Findings, "\n")
	if !strings.Contains(joined, "Eq. 1") {
		t.Fatalf("missing Eq. 1 break-even: %v", rep.Findings)
	}
	if !strings.Contains(joined, "average package power") {
		t.Fatal("missing power delta finding")
	}
}

func TestTablesTiny(t *testing.T) {
	// The tables sweep every kernel on every platform even at tiny
	// scale, which dominates the package's wall clock (~2 min). CI's
	// quick tier (-short) skips it; plain `go test ./...` and
	// scripts/check.sh still run it.
	if testing.Short() {
		t.Skip("full-catalog table sweep is local-only; skipped under -short")
	}
	for _, id := range []string{"table4", "table5"} {
		e, _ := Get(id)
		rep, err := e.Run(context.Background(), tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, kernel := range kernelOrder {
			if !strings.Contains(rep.Text, kernel) {
				t.Fatalf("%s: missing row for %s", id, kernel)
			}
		}
	}
}

func TestWriteCSVs(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{CSV: map[string][]string{
		"a.csv": {"h1,h2", "1,2"},
	}}
	if err := rep.WriteCSVs(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "h1,h2\n1,2\n" {
		t.Fatalf("csv content %q", data)
	}
	// Empty dir is a no-op.
	if err := rep.WriteCSVs(""); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteSelection(t *testing.T) {
	_, _, brd, err := machineSet("broadwell")
	if err != nil {
		t.Fatal(err)
	}
	quick := suite(brd, Options{})
	full := suite(brd, Options{Full: true})
	if len(quick) >= len(full) {
		t.Fatal("quick suite should be smaller")
	}
	for _, sp := range full {
		if sp.PaperFootprint > 1<<30 {
			t.Fatal("Broadwell suite must cap at 1GB")
		}
	}
	_, _, knl, err := machineSet("knl")
	if err != nil {
		t.Fatal(err)
	}
	if len(suite(knl, Options{Full: true})) != 968 {
		t.Fatalf("KNL full suite = %d, want 968", len(suite(knl, Options{Full: true})))
	}
}

func TestRepresentativeWorkloads(t *testing.T) {
	base, _, _, err := machineSet("broadwell")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, kernel := range kernelOrder {
		run, err := representativeWorkload("broadwell", kernel, nil)
		if err != nil {
			t.Fatalf("%s: %v", kernel, err)
		}
		r, err := run(ctx, nil, nil, base, "test|"+kernel)
		if err != nil {
			t.Fatalf("%s: %v", kernel, err)
		}
		if r.GFlops <= 0 {
			t.Fatalf("%s: non-positive throughput", kernel)
		}
	}
}

func TestExtensionExperiments(t *testing.T) {
	if len(ExtensionIDs()) < 3 {
		t.Fatal("missing extension experiments")
	}
	for _, id := range ExtensionIDs() {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Run(context.Background(), tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rep.Text == "" || len(rep.Findings) == 0 || len(rep.CSV) == 0 {
			t.Fatalf("%s: incomplete report", id)
		}
	}
	// Extensions are not in the paper registry.
	for _, id := range IDs() {
		for _, ext := range ExtensionIDs() {
			if id == ext {
				t.Fatalf("extension %s leaked into the paper registry", id)
			}
		}
	}
}

func TestAblationFindingsShowMechanisms(t *testing.T) {
	e, err := Get("abl-ablations")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "present") {
		t.Fatalf("ablations should verify mechanisms present:\n%s", rep.Text)
	}
	if strings.Contains(rep.Text, "ABSENT") {
		t.Fatalf("a load-bearing mechanism is missing:\n%s", rep.Text)
	}
}

// TestParallelMatchesSequential is the engine's determinism contract
// at the harness level: a parallel run must render byte-identical
// reports (text, CSV, findings) to the 1-worker sequential baseline
// for both a simulator-driven sparse sweep and an analytic dense one.
func TestParallelMatchesSequential(t *testing.T) {
	for _, id := range []string{"fig9", "fig7"} {
		e, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		seqOpt, parOpt := tiny, tiny
		seqOpt.Workers = 1
		parOpt.Workers = 4
		seq, err := e.Run(context.Background(), seqOpt)
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		par, err := e.Run(context.Background(), parOpt)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if seq.Text != par.Text {
			t.Errorf("%s: parallel text differs from sequential", id)
		}
		if len(seq.CSV) != len(par.CSV) {
			t.Fatalf("%s: CSV count %d vs %d", id, len(par.CSV), len(seq.CSV))
		}
		for name, lines := range seq.CSV {
			if strings.Join(par.CSV[name], "\n") != strings.Join(lines, "\n") {
				t.Errorf("%s: CSV %s differs between parallel and sequential", id, name)
			}
		}
		if strings.Join(seq.Findings, "\n") != strings.Join(par.Findings, "\n") {
			t.Errorf("%s: findings differ:\nseq: %v\npar: %v", id, seq.Findings, par.Findings)
		}
	}
}

// TestRunHonorsCancellation aborts a sparse sweep mid-flight and
// expects a prompt context.Canceled, not a completed report.
func TestRunHonorsCancellation(t *testing.T) {
	e, err := Get("fig9")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	rep, err := e.Run(ctx, tiny)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("cancelled run still produced a report")
	}
	if d := time.Since(t0); d > 30*time.Second {
		t.Fatalf("cancelled run took %s", d)
	}
}

// TestRunHonorsTimeout exercises the deadline path the opmbench
// -timeout flag uses.
func TestRunHonorsTimeout(t *testing.T) {
	e, err := Get("fig9")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := e.Run(ctx, tiny); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
