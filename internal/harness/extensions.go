package harness

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/plot"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Extension experiments go beyond the paper's figures into questions
// it raises but could not measure: the Skylake memory-side eDRAM
// arrangement (Section 2.1's architectural contrast) and the
// multi-tenant OPM-sharing scenario from the future-work list.

// extensionExperiments returns the extra experiments appended to the
// registry, instrumented like the paper experiments.
func extensionExperiments() []Experiment {
	return instrumentAll([]Experiment{
		{
			ID:    "ext-skylake",
			Title: "Extension: CPU-side victim eDRAM (Broadwell) vs memory-side eDRAM (Skylake)",
			Run:   runExtSkylake,
		},
		{
			ID:    "ext-multiuser",
			Title: "Extension: two tenants sharing one OPM (future-work scenario)",
			Run:   runExtMultiuser,
		},
		{
			ID:    "abl-ablations",
			Title: "Ablations: model mechanisms switched off one at a time",
			Run:   runAblations,
		},
	})
}

// runExtSkylake sweeps a triad across both eDRAM arrangements. The
// footprint points are independent, so they run on the sweep engine
// (one job per footprint, three arrangements each) and are assembled
// in footprint order.
func runExtSkylake(ctx context.Context, opt Options) (*Report, error) {
	rep := &Report{CSV: map[string][]string{}}
	brd := platform.Broadwell()
	sky := platform.Skylake()
	mBrd, err := core.NewMachine(brd, memsim.ModeEDRAM)
	if err != nil {
		return nil, err
	}
	mSky, err := core.NewMachine(sky, memsim.ModeEDRAMMemSide)
	if err != nil {
		return nil, err
	}
	mDDR, err := core.NewMachine(brd, memsim.ModeDDR)
	if err != nil {
		return nil, err
	}

	points := 16
	if opt.CurvePoints > 1 {
		points = opt.CurvePoints
	}
	fps := logSpace(1<<20, 1<<30, points)
	// arrangementGBs is one footprint's triad bandwidth under the
	// three eDRAM arrangements; exported fields for the store.
	type arrangementGBs struct{ DDR, Victim, MemSide float64 }
	cache := cacheFor[int64, arrangementGBs](opt, "ext/skylake",
		machinesHash([]*core.Machine{mDDR, mBrd, mSky}, brd.Scale),
		func(fp int64) string { return fmt.Sprint(fp) })
	eng := opt.engine()
	triples, err := sweep.MapCached(ctx, eng, fps, cache,
		func(ctx context.Context, sw *sweep.Worker, fp int64) (arrangementGBs, error) {
			w := trace.NewStream(brd.ScaledBytes(fp))
			appB := 32.0 / 2.0 * w.Flops()
			var t arrangementGBs
			for _, leg := range []struct {
				m   *core.Machine
				out *float64
			}{{mDDR, &t.DDR}, {mBrd, &t.Victim}, {mSky, &t.MemSide}} {
				r, err := opt.estimator().EstimateCell(ctx, eng, sw, leg.m, w, fmt.Sprintf("triad|fp=%d|%s", fp, leg.m.Label()))
				if err != nil {
					return arrangementGBs{}, fmt.Errorf("triad at %d MB on %s: %w", fp>>20, leg.m.Label(), err)
				}
				*leg.out = appB / r.Seconds / 1e9
			}
			return t, nil
		})
	if err != nil {
		return nil, err
	}

	series := map[string]*plot.Series{
		"ddr":        {Name: "no eDRAM"},
		"victim":     {Name: "CPU-side victim (BRD)"},
		"memoryside": {Name: "memory-side (SKL)"},
	}
	csv := []string{csvLine("footprint_mb", "arrangement", "app_gbs")}
	add := func(key string, fp int64, gbs float64) {
		series[key].X = append(series[key].X, float64(fp)/(1<<20))
		series[key].Y = append(series[key].Y, gbs)
		csv = append(csv, csvLine(f(float64(fp)/(1<<20)), key, f(gbs)))
	}
	var vSum, mSum float64
	for i, fp := range fps {
		add("ddr", fp, triples[i].DDR)
		add("victim", fp, triples[i].Victim)
		add("memoryside", fp, triples[i].MemSide)
		vSum += triples[i].Victim
		mSum += triples[i].MemSide
	}
	var b strings.Builder
	b.WriteString(plot.Lines("eDRAM arrangement: victim (CPU-side) vs memory-side, STREAM GB/s vs footprint (MB)",
		[]plot.Series{*series["ddr"], *series["victim"], *series["memoryside"]}, 72, 16, true))
	b.WriteString("\nCPU-side tags allow earlier checking; the memory-side buffer fills on every\n" +
		"DRAM access (no victim-only population) but answers behind the controller —\n" +
		"the trade Section 2.1 describes for Skylake.\n")
	rep.CSV["ext_skylake.csv"] = csv
	rep.Findings = append(rep.Findings, fmt.Sprintf(
		"mean in-sweep bandwidth: victim %.1f GB/s vs memory-side %.1f GB/s (ratio %.3f)",
		vSum/float64(points), mSum/float64(points), vSum/mSum))
	rep.Text = b.String()
	return rep, nil
}

// runExtMultiuser measures interference when two triad tenants share
// the eDRAM and MCDRAM. The four tenant scenarios are independent
// jobs; each drives its solo and co-scheduled runs on its worker's
// pooled simulator.
func runExtMultiuser(ctx context.Context, opt Options) (*Report, error) {
	rep := &Report{CSV: map[string][]string{}}
	var b strings.Builder
	csv := []string{csvLine("platform", "mode", "tenant_fp_mb", "isolated_gbs", "shared_gbs", "interference")}
	type scenario struct {
		plat *platform.Platform
		mode memsim.Mode
		fp   int64 // per-tenant paper footprint
	}
	cases := []scenario{
		{platform.Broadwell(), memsim.ModeEDRAM, 48 << 20}, // 2x48MB < 128MB: both fit
		{platform.Broadwell(), memsim.ModeEDRAM, 96 << 20}, // 2x96MB > 128MB: contended
		{platform.KNL(), memsim.ModeCache, 4 << 30},        // 2x4GB < 16GB
		{platform.KNL(), memsim.ModeCache, 12 << 30},       // 2x12GB > 16GB
	}
	// tenancyGBs is one scenario's per-tenant bandwidth, isolated and
	// co-scheduled; exported fields for the store. Each scenario
	// builds its machine inside the job, so its simulator
	// configuration is hashed into the job key instead of a sweep-
	// level config hash.
	type tenancyGBs struct{ Solo, Shared float64 }
	cache := cacheFor[scenario, tenancyGBs](opt, "ext/multiuser", "",
		func(tc scenario) string {
			cfg, err := tc.plat.Config(tc.mode)
			if err != nil {
				return fmt.Sprintf("badcfg|%s|%s|%d", tc.plat.Name, tc.mode, tc.fp)
			}
			return fmt.Sprintf("%s|%d|%d", obs.Hash(cfg), tc.plat.Scale, tc.fp)
		})
	eng := opt.engine()
	outcomes, err := sweep.MapCached(ctx, eng, cases, cache,
		func(ctx context.Context, w *sweep.Worker, tc scenario) (tenancyGBs, error) {
			m, err := core.NewMachine(tc.plat, tc.mode)
			if err != nil {
				return tenancyGBs{}, err
			}
			simFP := tc.plat.ScaledBytes(tc.fp)
			solo := trace.NewStream(simFP)
			key := fmt.Sprintf("tenancy|%s|fp=%d", m.Label(), tc.fp)
			rSolo, err := opt.estimator().EstimateCell(ctx, eng, w, m, solo, key+"|solo")
			if err != nil {
				return tenancyGBs{}, err
			}
			co := trace.NewCoStream(simFP, simFP)
			rCo, err := opt.estimator().EstimateCell(ctx, eng, w, m, co, key+"|shared")
			if err != nil {
				return tenancyGBs{}, err
			}
			// Each tenant gets half the shared run's service.
			return tenancyGBs{
				Solo:   32.0 / 2.0 * solo.Flops() / rSolo.Seconds / 1e9,
				Shared: 32.0 / 2.0 * co.Flops() / 2 / rCo.Seconds / 1e9,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, tc := range cases {
		soloGBs, perTenant := outcomes[i].Solo, outcomes[i].Shared
		interference := soloGBs / perTenant
		fmt.Fprintf(&b, "%-10s %-7s tenant %4d MB: isolated %6.1f GB/s, shared %6.1f GB/s -> %.2fx slowdown\n",
			tc.plat.Name, tc.mode, tc.fp>>20, soloGBs, perTenant, interference)
		csv = append(csv, csvLine(tc.plat.Name, tc.mode.String(), i64(tc.fp>>20),
			f(soloGBs), f(perTenant), f(interference)))
		rep.Findings = append(rep.Findings, fmt.Sprintf(
			"%s/%s, 2 tenants x %d MB: %.2fx per-tenant slowdown vs isolation",
			tc.plat.Name, tc.mode, tc.fp>>20, interference))
	}
	b.WriteString("\nWhen the combined working set exceeds the OPM, tenants evict each other and\n" +
		"fall toward the DDR plateau — the fairness/efficiency question the paper's\n" +
		"future-work list poses for OS-level OPM management.\n")
	rep.CSV["ext_multiuser.csv"] = csv
	rep.Text = b.String()
	return rep, nil
}

// runAblations switches off one model mechanism at a time and reports
// which paper phenomenon disappears — the evidence that each mechanism
// is load-bearing (DESIGN.md §6).
func runAblations(_ context.Context, _ Options) (*Report, error) {
	rep := &Report{CSV: map[string][]string{}}
	var b strings.Builder
	csv := []string{csvLine("ablation", "metric", "with", "without")}

	// 1. MLP ramp off -> the Stream L3 valley disappears.
	brd := platform.Broadwell()
	valleyFP := brd.ScaledBytes(10 << 20)
	w := trace.NewStream(valleyFP)
	cfg, err := brd.Config(memsim.ModeDDR)
	if err != nil {
		return nil, err
	}
	run := func(cfg memsim.Config) (memsim.Result, error) {
		sim, err := memsim.NewSim(cfg)
		if err != nil {
			return memsim.Result{}, err
		}
		w.Simulate(sim)
		return memsim.Evaluate(&cfg, sim.Traffic(), memsim.KernelProps{
			Name: "Stream", Flops: w.Flops(), Threads: 8, MLP: 8, Eff: 0.8,
		})
	}
	withRamp, err := run(cfg)
	if err != nil {
		return nil, err
	}
	noRamp := cfg
	noRamp.MLPRampFactor = 0 // disables the ramp
	withoutRamp, err := run(noRamp)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "MLP ramp: valley throughput %.1f GB/s with ramp vs %.1f without (valley %s)\n",
		withRamp.MemGBs, withoutRamp.MemGBs, presentWord(withRamp.MemGBs < withoutRamp.MemGBs))
	csv = append(csv, csvLine("mlp_ramp", "valley_gbs", f(withRamp.MemGBs), f(withoutRamp.MemGBs)))

	// 2. Split penalty off -> flat mode no longer collapses past 16GB.
	knl := platform.KNL()
	big := trace.NewStream(knl.ScaledBytes(24 << 30))
	flatCfg, err := knl.Config(memsim.ModeFlat)
	if err != nil {
		return nil, err
	}
	runK := func(cfg memsim.Config) (memsim.Result, error) {
		sim, err := memsim.NewSim(cfg)
		if err != nil {
			return memsim.Result{}, err
		}
		big.Simulate(sim)
		return memsim.Evaluate(&cfg, sim.Traffic(), memsim.KernelProps{
			Name: "Stream", Flops: big.Flops(), Threads: 256, MLP: 8, Eff: 0.8,
		})
	}
	withSplit, err := runK(flatCfg)
	if err != nil {
		return nil, err
	}
	noSplit := flatCfg
	noSplit.SplitPenalty = 1
	withoutSplit, err := runK(noSplit)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "Split penalty: 24GB flat %.1f GB/s with penalty vs %.1f without (collapse %s)\n",
		withSplit.MemGBs, withoutSplit.MemGBs, presentWord(withSplit.MemGBs < withoutSplit.MemGBs/2))
	csv = append(csv, csvLine("split_penalty", "flat24gb_gbs", f(withSplit.MemGBs), f(withoutSplit.MemGBs)))

	// 3. MCDRAM tag overhead off -> cache mode catches up to flat.
	resident := trace.NewStream(knl.ScaledBytes(2 << 30))
	cacheCfg, err := knl.Config(memsim.ModeCache)
	if err != nil {
		return nil, err
	}
	simC, err := memsim.NewSim(cacheCfg)
	if err != nil {
		return nil, err
	}
	resident.Simulate(simC)
	tr := simC.Traffic()
	props := memsim.KernelProps{Name: "Stream", Flops: resident.Flops(), Threads: 256, MLP: 8, Eff: 0.8}
	withTag, err := memsim.Evaluate(&cacheCfg, tr, props)
	if err != nil {
		return nil, err
	}
	trNoTag := tr
	trNoTag.MCTagLines = 0
	withoutTag, err := memsim.Evaluate(&cacheCfg, trNoTag, props)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "MCDRAM tag overhead: cache-mode %.1f GB/s with tags vs %.1f without (flat>cache %s)\n",
		withTag.MemGBs, withoutTag.MemGBs, presentWord(withTag.MemGBs < withoutTag.MemGBs))
	csv = append(csv, csvLine("tag_overhead", "cache2gb_gbs", f(withTag.MemGBs), f(withoutTag.MemGBs)))

	rep.CSV["ablations.csv"] = csv
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("MLP ramp carves the cache valley (%.1f vs %.1f GB/s without it)", withRamp.MemGBs, withoutRamp.MemGBs),
		fmt.Sprintf("split penalty produces the flat-mode collapse (%.1f vs %.1f GB/s)", withSplit.MemGBs, withoutSplit.MemGBs),
		fmt.Sprintf("in-MCDRAM tags separate cache from flat mode (%.1f vs %.1f GB/s)", withTag.MemGBs, withoutTag.MemGBs))
	rep.Text = b.String()
	return rep, nil
}

func presentWord(ok bool) string {
	if ok {
		return "present"
	}
	return "ABSENT"
}

// logSpace returns n log-spaced int64 values in [lo, hi].
func logSpace(lo, hi int64, n int) []int64 {
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		out = append(out, int64(float64(lo)*math.Pow(float64(hi)/float64(lo), frac)))
	}
	return out
}
