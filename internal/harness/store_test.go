package harness

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sparse"
	"repro/internal/store"
	"repro/internal/sweep"
)

// reportBytes flattens the parts of a report that the warm==cold
// contract covers: rendered text, findings, and every CSV series.
func reportBytes(rep *Report) string {
	var b strings.Builder
	b.WriteString(rep.Text)
	for _, f := range rep.Findings {
		b.WriteString(f)
		b.WriteString("\n")
	}
	return b.String()
}

func mustOpen(t *testing.T, dir string, reg *obs.Registry) *store.Store {
	t.Helper()
	st, err := store.Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestWarmRunByteIdentical is the tentpole contract: a fully-warm run
// against a populated store produces byte-identical output to a bare
// run while executing zero simulator jobs — every point comes out of
// the journal.
func TestWarmRunByteIdentical(t *testing.T) {
	e, _ := Get("fig9")
	jobs := len(suite(platform.Broadwell(), tiny))

	bare, err := e.Run(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()

	// Cold run: everything misses, everything is committed.
	coldReg := obs.NewRegistry()
	st := mustOpen(t, dir, coldReg)
	opt := tiny
	opt.Store = st
	cold, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snap := coldReg.Snapshot()
	if snap.Counters["store/misses"] != int64(jobs) || snap.Counters["store/commits"] != int64(jobs) {
		t.Fatalf("cold run: misses=%d commits=%d, want %d each",
			snap.Counters["store/misses"], snap.Counters["store/commits"], jobs)
	}

	// Warm run: all hits, zero jobs reach the sweep pool.
	warmReg := obs.NewRegistry()
	st = mustOpen(t, dir, warmReg)
	opt = tiny
	opt.Store = st
	opt.Obs = warmReg
	warm, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	snap = warmReg.Snapshot()
	if snap.Counters["store/hits"] != int64(jobs) {
		t.Fatalf("warm run: %d hits, want %d", snap.Counters["store/hits"], jobs)
	}
	if snap.Counters["sweep/jobs"] != 0 {
		t.Fatalf("warm run executed %d simulator jobs, want 0", snap.Counters["sweep/jobs"])
	}

	if got, want := reportBytes(warm), reportBytes(bare); got != want {
		t.Error("warm report differs from bare report")
	}
	if got, want := reportBytes(cold), reportBytes(bare); got != want {
		t.Error("cold (store-enabled) report differs from bare report")
	}
	if !reflect.DeepEqual(warm.CSV, bare.CSV) || !reflect.DeepEqual(cold.CSV, bare.CSV) {
		t.Error("CSV series differ between bare/cold/warm runs")
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Force disables lookups: the same populated store yields no hits
	// and every job runs again — with identical bytes.
	forceReg := obs.NewRegistry()
	forced := mustOpen(t, dir, forceReg)
	opt = tiny
	opt.Store = forced
	opt.Obs = forceReg
	opt.Force = true
	frep, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	snap = forceReg.Snapshot()
	if snap.Counters["store/hits"] != 0 {
		t.Fatalf("force run: %d hits, want 0", snap.Counters["store/hits"])
	}
	if snap.Counters["sweep/jobs"] != int64(jobs) {
		t.Fatalf("force run executed %d jobs, want %d", snap.Counters["sweep/jobs"], jobs)
	}
	if got, want := reportBytes(frep), reportBytes(bare); got != want {
		t.Error("forced report differs from bare report")
	}
	if err := forced.Close(); err != nil {
		t.Fatal(err)
	}
}

// storeLen opens the store read-style, reads its live-entry count, and
// closes it again.
func storeLen(t *testing.T, dir string) int {
	t.Helper()
	st := mustOpen(t, dir, nil)
	n := st.Len()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestResumeEquivalence kills a sequential sweep partway through via
// context cancellation, then resumes against the same store: only the
// remaining jobs execute, and the final report is byte-identical to an
// uninterrupted run.
func TestResumeEquivalence(t *testing.T) {
	e, _ := Get("fig12")

	bare, err := e.Run(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()

	// First attempt: cancel after two jobs complete. Their results are
	// already journaled (Put is the checkpoint), so the crash loses
	// nothing that finished.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var total int64
	opt := tiny
	opt.Workers = 1
	opt.Store = mustOpen(t, dir, nil)
	opt.Progress = func(p sweep.Progress) {
		total = int64(p.Total)
		if p.Done >= 2 {
			cancel()
		}
	}
	if _, err := e.Run(ctx, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if err := opt.Store.Close(); err != nil {
		t.Fatal(err)
	}
	checkpointed := int64(storeLen(t, dir))
	if checkpointed < 2 || checkpointed >= total {
		t.Fatalf("store holds %d of %d jobs after interrupt, want a strict partial >= 2", checkpointed, total)
	}

	// Resume: a fresh context against the same store completes only the
	// remaining jobs.
	reg := obs.NewRegistry()
	opt = tiny
	opt.Store = mustOpen(t, dir, reg)
	opt.Obs = reg
	resumed, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["store/hits"] != checkpointed {
		t.Fatalf("resume: %d hits, want %d", snap.Counters["store/hits"], checkpointed)
	}
	if snap.Counters["sweep/jobs"] != total-checkpointed {
		t.Fatalf("resume executed %d jobs, want %d", snap.Counters["sweep/jobs"], total-checkpointed)
	}

	if got, want := reportBytes(resumed), reportBytes(bare); got != want {
		t.Error("resumed report differs from uninterrupted report")
	}
	if !reflect.DeepEqual(resumed.CSV, bare.CSV) {
		t.Error("resumed CSV series differ from uninterrupted run")
	}
	if err := opt.Store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDroppedCountsFailedJobs: the report's Dropped field (which
// -strict keys off) counts exactly the jobs that fell out of the sweep.
func TestDroppedCountsFailedJobs(t *testing.T) {
	specs := suite(platform.Broadwell(), tiny)
	doomed := specs[1].Name
	sparseJobHook = func(s sparse.Spec) error {
		if s.Name == doomed {
			return fmt.Errorf("injected failure for %s", s.Name)
		}
		return nil
	}
	defer func() { sparseJobHook = nil }()

	e, _ := Get("fig9")
	rep, err := e.Run(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 1 {
		t.Fatalf("rep.Dropped = %d, want 1", rep.Dropped)
	}
}

// TestFailedJobsAreNotCached: a job that errors must not poison the
// store; rerunning without the failure injection recomputes it.
func TestFailedJobsAreNotCached(t *testing.T) {
	specs := suite(platform.Broadwell(), tiny)
	doomed := specs[0].Name
	sparseJobHook = func(s sparse.Spec) error {
		if s.Name == doomed {
			return fmt.Errorf("injected failure for %s", s.Name)
		}
		return nil
	}

	dir := t.TempDir()
	e, _ := Get("fig9")
	opt := tiny
	opt.Store = mustOpen(t, dir, nil)
	if _, err := e.Run(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if err := opt.Store.Close(); err != nil {
		t.Fatal(err)
	}
	sparseJobHook = nil

	if got, want := storeLen(t, dir), len(specs)-1; got != want {
		t.Fatalf("store holds %d entries after one dropped job, want %d", got, want)
	}

	reg := obs.NewRegistry()
	opt = tiny
	opt.Store = mustOpen(t, dir, reg)
	rep, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 0 {
		t.Fatalf("rerun still dropped %d jobs", rep.Dropped)
	}
	snap := reg.Snapshot()
	if snap.Counters["store/misses"] != 1 || snap.Counters["store/hits"] != int64(len(specs)-1) {
		t.Fatalf("rerun: hits=%d misses=%d, want %d/1",
			snap.Counters["store/hits"], snap.Counters["store/misses"], len(specs)-1)
	}
	if err := opt.Store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGetUnknownListsRegistry: a typo'd -exp should teach, not just
// reject — the error carries the full experiment listing.
func TestGetUnknownListsRegistry(t *testing.T) {
	_, err := Get("fig999")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "known experiments") {
		t.Fatalf("error does not list experiments: %v", err)
	}
	for _, id := range []string{"fig9", "table4", "fig27"} {
		if !strings.Contains(msg, id) {
			t.Fatalf("error listing missing %s:\n%s", id, msg)
		}
	}
}
