package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// kernelOrder is the row order of Tables 4 and 5.
var kernelOrder = []string{"GEMM", "Cholesky", "SpMV", "SpTRANS", "SpTRSV", "Stream", "Stencil", "FFT"}

// kernelSeries returns paired per-input throughput series for one
// kernel across all modes of a platform. Inputs are the kernel's own
// sweep: (order, block) cells for dense kernels, the matrix suite for
// sparse ones, footprint points for Stream/Stencil/FFT.
func kernelSeries(ctx context.Context, platName, kernel string, opt Options) (map[memsim.Mode][]float64, []*core.Machine, error) {
	switch kernel {
	case "GEMM", "Cholesky":
		kind, err := denseKind(kernel)
		if err != nil {
			return nil, nil, err
		}
		base, opms, plat, err := machineSet(platName)
		if err != nil {
			return nil, nil, err
		}
		machines := append([]*core.Machine{base}, opms...)
		orders, blocks := denseGrid(plat, false)
		var jobs []core.DenseJob
		for _, m := range machines {
			for _, n := range orders {
				for _, nb := range blocks {
					jobs = append(jobs, core.DenseJob{Machine: m, Kind: kind, N: n, NB: nb})
				}
			}
		}
		results, err := core.RunDenseBatchWith(ctx, opt.engine(), jobs, denseCache(opt), opt.estimator())
		if err != nil {
			return nil, nil, err
		}
		out := map[memsim.Mode][]float64{}
		for i, j := range jobs {
			out[j.Machine.Mode] = append(out[j.Machine.Mode], results[i].GFlops)
		}
		return out, machines, nil
	case "SpMV", "SpTRANS", "SpTRSV":
		pts, machines, _, err := runSparse(ctx, platName, kernel, opt)
		if err != nil {
			return nil, nil, err
		}
		out := map[memsim.Mode][]float64{}
		for _, pt := range pts {
			for mode, v := range pt.GFlops {
				out[mode] = append(out[mode], v)
			}
		}
		return out, machines, nil
	case "Stream", "Stencil", "FFT":
		pts, machines, err := runCurves(ctx, platName, kernel, opt)
		if err != nil {
			return nil, nil, err
		}
		out := map[memsim.Mode][]float64{}
		for _, pt := range pts {
			for mode, v := range pt.GFlops {
				out[mode] = append(out[mode], v)
			}
		}
		return out, machines, nil
	}
	return nil, nil, fmt.Errorf("harness: unknown kernel %q", kernel)
}

// runTable4 reproduces Table 4: per-kernel eDRAM summary statistics on
// Broadwell.
func runTable4(ctx context.Context, opt Options) (*Report, error) {
	rep := &Report{ID: "table4", Title: "Table 4", CSV: map[string][]string{}}
	var b strings.Builder
	b.WriteString("Table 4: summarized statistics for applying eDRAM (Broadwell)\n")
	fmt.Fprintf(&b, "%-9s %12s %12s %10s %10s %10s %10s\n",
		"Kernel", "w/o best", "w/ best", "avg gap", "max gap", "avg spdup", "max spdup")
	csv := []string{csvLine("kernel", "best_wo", "best_w", "avg_gap", "max_gap", "avg_speedup", "max_speedup")}
	var avgSpeedups []string
	for _, kernel := range kernelOrder {
		series, _, err := kernelSeries(ctx, "broadwell", kernel, opt)
		if err != nil {
			return nil, err
		}
		sum, err := stats.Summarize(kernel, series[memsim.ModeDDR], series[memsim.ModeEDRAM])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%-9s %12.1f %12.1f %10.2f %10.2f %9.3fx %9.3fx\n",
			kernel, sum.BestBase, sum.BestOPM, sum.AvgGap, sum.MaxGap, sum.AvgSpeedup, sum.MaxSpeedup)
		csv = append(csv, csvLine(kernel, f(sum.BestBase), f(sum.BestOPM),
			f(sum.AvgGap), f(sum.MaxGap), f(sum.AvgSpeedup), f(sum.MaxSpeedup)))
		avgSpeedups = append(avgSpeedups, fmt.Sprintf("%s %.3fx", kernel, sum.AvgSpeedup))
		if sum.AvgSpeedup < 0.98 {
			rep.Findings = append(rep.Findings,
				fmt.Sprintf("WARNING: %s average eDRAM speedup below 1 (%.3f) — paper observes eDRAM never hurts", kernel, sum.AvgSpeedup))
		}
	}
	b.WriteString("(Stream row is GB/s-equivalent: the paper reports its bandwidth figure.)\n")
	rep.CSV["table4.csv"] = csv
	rep.Findings = append(rep.Findings, "eDRAM average speedups: "+strings.Join(avgSpeedups, ", "))
	rep.Text = b.String()
	return rep, nil
}

// runTable5 reproduces Table 5: per-kernel MCDRAM mode summaries on
// KNL (flat / cache / hybrid against the DDR baseline).
func runTable5(ctx context.Context, opt Options) (*Report, error) {
	rep := &Report{ID: "table5", Title: "Table 5", CSV: map[string][]string{}}
	modes := []memsim.Mode{memsim.ModeFlat, memsim.ModeCache, memsim.ModeHybrid}
	var b strings.Builder
	b.WriteString("Table 5: summarized statistics for MCDRAM modes (KNL), per kernel: flat/cache/hybrid\n")
	fmt.Fprintf(&b, "%-9s %10s %28s %26s %26s\n",
		"Kernel", "ddr best", "best f/c/h", "avg speedup f/c/h", "max speedup f/c/h")
	csv := []string{csvLine("kernel", "ddr_best", "mode", "best", "avg_gap", "max_gap", "avg_speedup", "max_speedup")}
	for _, kernel := range kernelOrder {
		series, _, err := kernelSeries(ctx, "knl", kernel, opt)
		if err != nil {
			return nil, err
		}
		base := series[memsim.ModeDDR]
		var bests, avgs, maxs []string
		ddrBest := 0.0
		for _, v := range base {
			if v > ddrBest {
				ddrBest = v
			}
		}
		for _, mode := range modes {
			sum, err := stats.Summarize(kernel, base, series[mode])
			if err != nil {
				return nil, err
			}
			bests = append(bests, fmt.Sprintf("%.0f", sum.BestOPM))
			avgs = append(avgs, fmt.Sprintf("%.3f", sum.AvgSpeedup))
			maxs = append(maxs, fmt.Sprintf("%.3f", sum.MaxSpeedup))
			csv = append(csv, csvLine(kernel, f(ddrBest), mode.String(), f(sum.BestOPM),
				f(sum.AvgGap), f(sum.MaxGap), f(sum.AvgSpeedup), f(sum.MaxSpeedup)))
		}
		fmt.Fprintf(&b, "%-9s %10.1f %28s %26s %26s\n", kernel, ddrBest,
			strings.Join(bests, "/"), strings.Join(avgs, "/"), strings.Join(maxs, "/"))
	}
	b.WriteString("(Stream row is GB/s-equivalent: the paper reports its bandwidth figure.)\n")
	rep.CSV["table5.csv"] = csv
	rep.Findings = append(rep.Findings,
		"MCDRAM summary computed for flat/cache/hybrid against the DDR baseline")
	rep.Text = b.String()
	return rep, nil
}

// representativeRun evaluates the power figures' single mid-size input
// on one machine: a cell in the OPM-relevant region, estimated by est
// and gated under key (the chaos injection identity).
type representativeRun func(ctx context.Context, eng *sweep.Engine, w *sweep.Worker, m *core.Machine, key string) (memsim.Result, error)

// representativeWorkload builds the single input used for the power
// figures: a mid-size instance sitting in the OPM-relevant region.
func representativeWorkload(platName, kernel string, est core.Estimator) (representativeRun, error) {
	_, _, plat, err := machineSet(platName)
	if err != nil {
		return nil, err
	}
	if est == nil {
		est = core.Exact
	}
	switch kernel {
	case "GEMM", "Cholesky":
		kind, err := denseKind(kernel)
		if err != nil {
			return nil, err
		}
		n := 8192
		if plat.Name == "knl" {
			n = 16384
		}
		return func(ctx context.Context, eng *sweep.Engine, _ *sweep.Worker, m *core.Machine, key string) (memsim.Result, error) {
			return est.EstimateDense(ctx, eng, core.DenseJob{Machine: m, Kind: kind, N: n, NB: 1024}, key)
		}, nil
	case "SpMV", "SpTRANS", "SpTRSV":
		// A mid-size matrix inside the OPM effective region.
		spec := suite(plat, Options{})[8]
		mat := spec.Instantiate(plat.Scale)
		wl, err := sparseWorkload(kernel, mat)
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context, eng *sweep.Engine, w *sweep.Worker, m *core.Machine, key string) (memsim.Result, error) {
			return est.EstimateCell(ctx, eng, w, m, wl, key)
		}, nil
	case "Stream", "Stencil", "FFT":
		fp := int64(96 << 20) // inside eDRAM region on Broadwell
		if plat.Name == "knl" {
			fp = 4 << 30 // inside MCDRAM on KNL
		}
		wl, err := curveWorkload(kernel, plat.ScaledBytes(fp), plat.Scale)
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context, eng *sweep.Engine, w *sweep.Worker, m *core.Machine, key string) (memsim.Result, error) {
			return est.EstimateCell(ctx, eng, w, m, wl, key)
		}, nil
	}
	return nil, fmt.Errorf("harness: unknown kernel %q", kernel)
}
