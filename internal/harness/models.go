package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/platform"
	"repro/internal/plot"
	"repro/internal/power"
	"repro/internal/roofline"
	"repro/internal/stats"
	"repro/internal/stepping"
	"repro/internal/trace"
)

// runTable2 renders Table 2 and the Figure 4 AI spectrum.
func runTable2(_ context.Context, _ Options) (*Report, error) {
	rep := &Report{ID: "table2", Title: "Table 2 / Fig 4", CSV: map[string][]string{}}
	var b strings.Builder
	b.WriteString("Table 2: Scientific kernel characteristics (n=1024, nnz=1024, M=32)\n")
	for _, row := range roofline.FormatTable2(roofline.DefaultProblem) {
		b.WriteString(row + "\n")
	}
	b.WriteString("\nFig 4: arithmetic intensity spectrum (flops/byte, ascending)\n")
	type pt struct {
		name string
		ai   float64
	}
	var pts []pt
	for _, c := range roofline.Table2() {
		pts = append(pts, pt{c.Algorithm, c.AI(roofline.DefaultProblem)})
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[j].ai < pts[i].ai {
				pts[i], pts[j] = pts[j], pts[i]
			}
		}
	}
	csv := []string{csvLine("kernel", "ai")}
	for _, p := range pts {
		fmt.Fprintf(&b, "  %-9s %10.5g\n", p.name, p.ai)
		csv = append(csv, csvLine(p.name, f(p.ai)))
	}
	rep.CSV["table2_ai.csv"] = csv
	rep.Findings = append(rep.Findings,
		fmt.Sprintf("AI spectrum spans %.4g (Stream) to %.4g (GEMM), matching Table 2", pts[0].ai, pts[len(pts)-1].ai))
	rep.Text = b.String()
	return rep, nil
}

// runFig5 renders the roofline for both platforms with and without the
// OPM bandwidth ceiling.
func runFig5(_ context.Context, _ Options) (*Report, error) {
	rep := &Report{ID: "fig5", Title: "Fig 5", CSV: map[string][]string{}}
	var b strings.Builder
	for _, p := range platform.All() {
		m := roofline.New(p)
		pts := roofline.Points(p)
		var dram, opm plot.Series
		dram.Name = p.DRAMKind
		opm.Name = p.OPMKind
		csv := []string{csvLine("kernel", "ai", "gflops_dram", "gflops_opm")}
		for _, pt := range pts {
			dram.X = append(dram.X, pt.AI)
			dram.Y = append(dram.Y, pt.DRAMGFlops)
			opm.X = append(opm.X, pt.AI)
			opm.Y = append(opm.Y, pt.WithOPMGFlops)
			csv = append(csv, csvLine(pt.Kernel, f(pt.AI), f(pt.DRAMGFlops), f(pt.WithOPMGFlops)))
		}
		rep.CSV["fig5_"+p.Name+".csv"] = csv
		b.WriteString(plot.Lines(
			fmt.Sprintf("Fig 5 (%s): attainable DP GFlop/s vs AI; ridge DRAM at %.2f, OPM at %.2f",
				p.Name, m.Ridge(p.DRAMGBs), m.Ridge(p.OPMGBs)),
			[]plot.Series{dram, opm}, 64, 12, true))
		b.WriteString("\n")
		rep.Findings = append(rep.Findings, fmt.Sprintf(
			"%s: OPM moves the roofline ridge from AI %.2f to %.2f, lifting all kernels below it",
			p.Name, m.Ridge(p.DRAMGBs), m.Ridge(p.OPMGBs)))
	}
	rep.Text = b.String()
	return rep, nil
}

// steppingLevels builds the analytic level stack of a platform+mode
// (paper-scale capacities).
func steppingLevels(p *platform.Platform, mode memsim.Mode) ([]stepping.Level, error) {
	scaled, err := p.Config(mode)
	if err != nil {
		return nil, fmt.Errorf("stepping levels for %s/%s: %w", p.Name, mode, err)
	}
	cfg := trace.UnscaledConfig(scaled)
	var ls []stepping.Level
	ls = append(ls, stepping.Level{Name: "L2", Cap: cfg.L2.Size,
		BWGBs: cfg.Links[memsim.SrcL2].BWGBs, LatNS: cfg.Links[memsim.SrcL2].LatNS})
	if cfg.L3.Size > 0 {
		ls = append(ls, stepping.Level{Name: "L3", Cap: cfg.L3.Size,
			BWGBs: cfg.Links[memsim.SrcL3].BWGBs, LatNS: cfg.Links[memsim.SrcL3].LatNS})
	}
	switch mode {
	case memsim.ModeEDRAM:
		ls = append(ls, stepping.Level{Name: "eDRAM", Cap: cfg.EDRAM.Size,
			BWGBs: cfg.Links[memsim.SrcEDRAM].BWGBs, LatNS: cfg.Links[memsim.SrcEDRAM].LatNS, OPM: true})
	case memsim.ModeCache:
		ls = append(ls, stepping.Level{Name: "MCDRAM$", Cap: cfg.MCDRAMBytes,
			BWGBs: cfg.Links[memsim.SrcMCDRAM].BWGBs, LatNS: cfg.Links[memsim.SrcMCDRAM].LatNS, OPM: true})
	case memsim.ModeHybrid:
		ls = append(ls, stepping.Level{Name: "MCDRAM$/2", Cap: cfg.MCDRAMBytes / 2,
			BWGBs: cfg.Links[memsim.SrcMCDRAM].BWGBs, LatNS: cfg.Links[memsim.SrcMCDRAM].LatNS, OPM: true})
	}
	ls = append(ls, stepping.Level{Name: "DDR", Cap: 0,
		BWGBs: cfg.Links[memsim.SrcDDR].BWGBs, LatNS: cfg.Links[memsim.SrcDDR].LatNS})
	return ls, nil
}

func steppingStream(peak float64) stepping.Kernel {
	return stepping.Kernel{Name: "Stream", AI: 0.0625, PeakGFlops: peak, MLP: 64, RampFactor: 6}
}

// runFig6 renders the illustrative Stepping model: one cache level
// (panel A) and two cache levels (panel B).
func runFig6(_ context.Context, _ Options) (*Report, error) {
	rep := &Report{ID: "fig6", Title: "Fig 6", CSV: map[string][]string{}}
	k := steppingStream(100)
	oneLevel := []stepping.Level{
		{Name: "cache", Cap: 8 << 20, BWGBs: 150, LatNS: 10},
		{Name: "mem", Cap: 0, BWGBs: 20, LatNS: 90},
	}
	twoLevel := []stepping.Level{
		{Name: "L2", Cap: 1 << 20, BWGBs: 300, LatNS: 4},
		{Name: "L3", Cap: 8 << 20, BWGBs: 150, LatNS: 12},
		{Name: "mem", Cap: 0, BWGBs: 20, LatNS: 90},
	}
	a, err := stepping.Model("one cache", oneLevel, k, 1<<18, 1<<30, 64)
	if err != nil {
		return nil, fmt.Errorf("fig6 one-cache curve: %w", err)
	}
	bCurve, err := stepping.Model("two caches", twoLevel, k, 1<<18, 1<<30, 64)
	if err != nil {
		return nil, fmt.Errorf("fig6 two-cache curve: %w", err)
	}
	var sb strings.Builder
	sb.WriteString(plot.Lines("Fig 6(A): cache peak, valley, memory plateau",
		[]plot.Series{curveSeries(a)}, 64, 12, true))
	sb.WriteString("\n")
	sb.WriteString(plot.Lines("Fig 6(B): a peak/valley pair per cache level",
		[]plot.Series{curveSeries(bCurve)}, 64, 12, true))
	rep.CSV["fig6.csv"] = curveCSV(map[string]stepping.Curve{"one": a, "two": bCurve})
	rep.Findings = append(rep.Findings,
		"Stepping model reproduces cache peaks, post-capacity valleys and bandwidth plateaus")
	rep.Text = sb.String()
	return rep, nil
}

func curveSeries(c stepping.Curve) plot.Series {
	s := plot.Series{Name: c.Name}
	for _, p := range c.Points {
		s.X = append(s.X, float64(p.Footprint))
		s.Y = append(s.Y, p.GFlops)
	}
	return s
}

func curveCSV(curves map[string]stepping.Curve) []string {
	// Emit series in sorted-name order: map iteration order would make
	// the CSV differ run to run, breaking the byte-identical contract.
	names := make([]string, 0, len(curves))
	for name := range curves {
		names = append(names, name)
	}
	sort.Strings(names)
	lines := []string{csvLine("curve", "footprint_bytes", "gflops", "gbs", "serving")}
	for _, name := range names {
		for _, p := range curves[name].Points {
			lines = append(lines, csvLine(name, i64(p.Footprint), f(p.GFlops), f(p.GBs), p.Serving))
		}
	}
	return lines
}

// runFig1 samples the Broadwell GEMM (order, block) grid with and
// without eDRAM and estimates the density of achievable GFlop/s.
func runFig1(ctx context.Context, opt Options) (*Report, error) {
	rep := &Report{ID: "fig1", Title: "Fig 1", CSV: map[string][]string{}}
	brd := platform.Broadwell()
	orders, blocks := denseGrid(brd, opt.Full)
	sample := func(mode memsim.Mode) ([]float64, error) {
		m, err := core.NewMachine(brd, mode)
		if err != nil {
			return nil, err
		}
		var jobs []core.DenseJob
		for _, n := range orders {
			for _, nb := range blocks {
				jobs = append(jobs, core.DenseJob{Machine: m, Kind: trace.DenseGEMM, N: n, NB: nb})
			}
		}
		results, err := core.RunDenseBatchWith(ctx, opt.engine(), jobs, denseCache(opt), opt.estimator())
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(results))
		for i, r := range results {
			vals[i] = r.GFlops
		}
		return vals, nil
	}
	without, err := sample(memsim.ModeDDR)
	if err != nil {
		return nil, err
	}
	with, err := sample(memsim.ModeEDRAM)
	if err != nil {
		return nil, err
	}
	peak := stats.Quantile(append(append([]float64{}, with...), without...), 1)
	fw := stats.FractionAbove(with, 0.9*peak)
	fo := stats.FractionAbove(without, 0.9*peak)
	dw, err := stats.KDE(with, 96)
	if err != nil {
		return nil, err
	}
	do, err := stats.KDE(without, 96)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString(plot.Lines(
		fmt.Sprintf("Fig 1: density of achievable GEMM GFlop/s over %d samples", len(with)),
		[]plot.Series{{Name: "w/o eDRAM", X: do.X, Y: do.Y}, {Name: "w/ eDRAM", X: dw.X, Y: dw.Y}},
		72, 14, false))
	fmt.Fprintf(&b, "\nfraction of samples above 90%% of peak: w/o eDRAM %.3f, w/ eDRAM %.3f\n", fo, fw)
	csv := []string{csvLine("x_gflops", "density_wo", "density_w")}
	for i := range dw.X {
		csv = append(csv, csvLine(f(do.X[i]), f(do.Y[i]), f(dw.Y[i])))
	}
	rep.CSV["fig1_density.csv"] = csv
	rep.Findings = append(rep.Findings, fmt.Sprintf(
		"eDRAM raises the share of near-peak (>90%%) GEMM samples from %.1f%% to %.1f%%; raw peak moves only %.3gx",
		fo*100, fw*100, stats.Quantile(with, 1)/stats.Quantile(without, 1)))
	rep.Text = b.String()
	return rep, nil
}

// runFig28 renders the eDRAM tuning curves with PER/EER regions.
func runFig28(_ context.Context, _ Options) (*Report, error) {
	rep := &Report{ID: "fig28", Title: "Fig 28", CSV: map[string][]string{}}
	brd := platform.Broadwell()
	k := steppingStream(200)
	edramLevels, err := steppingLevels(brd, memsim.ModeEDRAM)
	if err != nil {
		return nil, err
	}
	ddrLevels, err := steppingLevels(brd, memsim.ModeDDR)
	if err != nil {
		return nil, err
	}
	with, err := stepping.Model("w/ eDRAM", edramLevels, k, 1<<20, 2<<30, 128)
	if err != nil {
		return nil, fmt.Errorf("fig28 eDRAM curve: %w", err)
	}
	without, err := stepping.Model("w/o eDRAM", ddrLevels, k, 1<<20, 2<<30, 128)
	if err != nil {
		return nil, fmt.Errorf("fig28 DDR curve: %w", err)
	}
	perLo, perHi, _ := stepping.EffectiveRegion(with, without, 1.0001)
	// Eq. 1: Broadwell eDRAM adds ~8.6% power, so the energy-effective
	// region needs >8.6% speedup.
	eerLo, eerHi, _ := stepping.EffectiveRegion(with, without, 1+0.086)
	var b strings.Builder
	b.WriteString(plot.Lines("Fig 28: eDRAM tuning via Stepping model (Stream-like kernel)",
		[]plot.Series{curveSeries(without), curveSeries(with)}, 72, 14, true))
	fmt.Fprintf(&b, "\nPER (performance-effective region): %d MB .. %d MB\n", perLo>>20, perHi>>20)
	fmt.Fprintf(&b, "EER (energy-effective region, Eq. 1 at +8.6%% power): %d MB .. %d MB\n", eerLo>>20, eerHi>>20)
	rep.CSV["fig28.csv"] = curveCSV(map[string]stepping.Curve{"with": with, "without": without})
	rep.Findings = append(rep.Findings, fmt.Sprintf(
		"EER [%d..%d MB] is narrower than PER [%d..%d MB], as Fig 28(A) argues",
		eerLo>>20, eerHi>>20, perLo>>20, perHi>>20))
	rep.Text = b.String()
	return rep, nil
}

// runFig29 renders the MCDRAM mode guideline curves.
func runFig29(_ context.Context, _ Options) (*Report, error) {
	rep := &Report{ID: "fig29", Title: "Fig 29", CSV: map[string][]string{}}
	knl := platform.KNL()
	k := steppingStream(800)
	minFP, maxFP := int64(1<<22), int64(64)<<30
	levelsFor := func(mode memsim.Mode) ([]stepping.Level, error) { return steppingLevels(knl, mode) }
	curves := map[string]stepping.Curve{}
	// Iterate an explicitly ordered slice, not a map literal: the
	// first model error reported must be the same one on every run
	// (and opmlint's rangesort check bans map-literal iteration).
	for _, mc := range []struct {
		name, label string
		mode        memsim.Mode
	}{
		{"ddr", "w/o MCDRAM", memsim.ModeDDR},
		{"cache", "cache", memsim.ModeCache},
		{"hybrid", "hybrid", memsim.ModeHybrid},
	} {
		ls, err := levelsFor(mc.mode)
		if err != nil {
			return nil, err
		}
		c, err := stepping.Model(mc.label, ls, k, minFP, maxFP, 128)
		if err != nil {
			return nil, fmt.Errorf("fig29 %s curve: %w", mc.name, err)
		}
		curves[mc.name] = c
	}
	// Flat mode: MCDRAM is memory while resident, split pathology past
	// capacity. Model as MCDRAM-memory below 16GB, penalized beyond.
	ddrLevels, err := levelsFor(memsim.ModeDDR)
	if err != nil {
		return nil, err
	}
	flatLevels := []stepping.Level{
		ddrLevels[0],
		{Name: "MCDRAM", Cap: 0, BWGBs: 450, LatNS: 155},
	}
	flat, err := stepping.Model("flat", flatLevels, k, minFP, maxFP, 128)
	if err != nil {
		return nil, fmt.Errorf("fig29 flat curve: %w", err)
	}
	for i := range flat.Points {
		if flat.Points[i].Footprint > 16<<30 {
			flat.Points[i].GFlops /= 6 // split-allocation pathology
			flat.Points[i].GBs /= 6
			flat.Points[i].Serving = "split"
		}
	}
	curves["flat"] = flat
	var b strings.Builder
	b.WriteString(plot.Lines("Fig 29: MCDRAM tuning via Stepping model (Stream-like kernel)",
		[]plot.Series{
			curveSeries(curves["ddr"]), curveSeries(curves["cache"]),
			curveSeries(curves["flat"]), curveSeries(curves["hybrid"]),
		}, 72, 16, true))
	b.WriteString("\nGuidelines (Section 6): flat best when data < 16GB; hybrid best when hot set < 8GB\n" +
		"but data > 16GB; cache best for large data with locality; flat collapses when split.\n")
	rep.CSV["fig29.csv"] = curveCSV(curves)
	rep.Findings = append(rep.Findings,
		"Mode ordering matches Section 6: flat > cache below capacity; flat collapses past 16GB; hybrid degrades gracefully")
	rep.Text = b.String()
	return rep, nil
}

// runFig30 renders the hardware what-ifs: scaling OPM capacity and
// bandwidth.
func runFig30(_ context.Context, _ Options) (*Report, error) {
	rep := &Report{ID: "fig30", Title: "Fig 30", CSV: map[string][]string{}}
	brd := platform.Broadwell()
	k := steppingStream(200)
	base, err := steppingLevels(brd, memsim.ModeEDRAM)
	if err != nil {
		return nil, err
	}
	minFP, maxFP := int64(1<<20), int64(4)<<30
	curves := map[string]stepping.Curve{}
	for _, v := range []struct {
		key, label string
		levels     []stepping.Level
	}{
		{"base", "eDRAM 128MB/72GBs", base},
		{"cap2", "2x capacity", stepping.ScaleCapacity(base, "eDRAM", 2)},
		{"bw2", "2x bandwidth", stepping.ScaleBandwidth(base, "eDRAM", 2)},
	} {
		c, err := stepping.Model(v.label, v.levels, k, minFP, maxFP, 128)
		if err != nil {
			return nil, fmt.Errorf("fig30 %s curve: %w", v.key, err)
		}
		curves[v.key] = c
	}
	var b strings.Builder
	b.WriteString(plot.Lines("Fig 30: tuning eDRAM hardware for throughput",
		[]plot.Series{curveSeries(curves["base"]), curveSeries(curves["cap2"]), curveSeries(curves["bw2"])},
		72, 14, true))
	b.WriteString("\n(A) 2x capacity scales the cache peak rightward; (B) 2x bandwidth amplifies it.\n")
	rep.CSV["fig30.csv"] = curveCSV(curves)
	rep.Findings = append(rep.Findings,
		"Capacity scaling extends the eDRAM peak; bandwidth scaling amplifies it (Fig 30 A/B)")
	rep.Text = b.String()
	return rep, nil
}

// eq1Findings computes the Eq. 1 break-even statement for a measured
// power increase.
func eq1Findings(platName string, powerIncrease float64) string {
	return fmt.Sprintf("%s: Eq. 1 break-even — OPM saves energy only when speedup exceeds %.1f%%",
		platName, power.BreakEvenGain(powerIncrease)*100)
}
