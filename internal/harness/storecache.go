package harness

import (
	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/sweep"
)

// The store hooks below address every memoized sweep result by the
// four-part digest of DESIGN.md §8:
//
//	Digest(core.ModelVersion, configHash, sweepID, jobKey)
//
// configHash fingerprints the platform+mode simulator configurations
// a job runs against (obs.Hash over memsim.Config values, which are
// pure scalars/arrays, plus the platform scale where the job uses it
// directly); sweepID names the sweep *family* rather than the figure
// — table4 re-running fig9's SpMV suite, or fig1 re-sampling fig7's
// GEMM grid, hits the same entries. For sweeps whose jobs carry their
// own machine (the dense grids), the per-job config hash folds into
// the job key and configHash is empty — all four ingredients are
// still hashed.

// storeCache adapts a Store to one sweep's Cache hook.
type storeCache[J, R any] struct {
	st      *store.Store
	force   bool
	version string
	sweepID string
	cfgHash string
	key     func(J) string
}

// cacheFor builds the sweep cache hook for one experiment sweep, or
// nil (no memoization) when the options carry no store.
//
// Digest separation (DESIGN.md §11): the exact estimator keeps the
// historical layout — version = core.ModelVersion, unprefixed sweepID —
// so stores written before the estimator interface existed stay warm.
// Any other estimator substitutes its own Version() and namespaces the
// sweep family with its Mode(), so a twin- or auto-computed cell can
// never alias an exact one, in either direction.
func cacheFor[J, R any](opt Options, sweepID, cfgHash string, key func(J) string) sweep.Cache[J, R] {
	if opt.Store == nil {
		return nil
	}
	version, sweepID := estimatorDigestIdentity(opt.estimator(), sweepID)
	return &storeCache[J, R]{st: opt.Store, force: opt.Force, version: version,
		sweepID: sweepID, cfgHash: cfgHash, key: key}
}

func (c *storeCache[J, R]) digest(j J) string {
	return store.Digest(c.version, c.cfgHash, c.sweepID, c.key(j))
}

// Lookup consults the store; under Force it reports a miss without
// looking, so every job recomputes (and Commit overwrites).
func (c *storeCache[J, R]) Lookup(j J) (R, bool) {
	var r R
	if c.force {
		return r, false
	}
	ok, err := c.st.Get(c.digest(j), &r)
	if err != nil || !ok {
		// A decode failure is a miss, not a fatal error: the job
		// recomputes and its commit replaces the bad entry.
		var zero R
		return zero, false
	}
	return r, true
}

// Commit journals one completed job. Errors are absorbed — the store
// counts them (store/commit_errors) and a failed checkpoint must slow
// the sweep down, never kill it.
func (c *storeCache[J, R]) Commit(j J, r R) {
	_ = c.st.Put(c.digest(j), c.sweepID, c.key(j), r)
}

// TraceInfo derives the job's trace identity from the same content
// digest that addresses its cached result (sweep.TraceKeyer): the run
// that computes a cell and every later run that serves it warm emit
// their chains under one trace ID, so traces join against cached
// results across runs. The human key is the job's sweep key prefixed
// with the sweep family.
func (c *storeCache[J, R]) TraceInfo(j J) (id, key string) {
	return obs.TraceID("store", c.digest(j)), c.sweepID + "/" + c.key(j)
}

// machinesHash fingerprints the simulator configurations of a machine
// set (plus any extra scalars the jobs consume directly, e.g. the
// platform scale a matrix instantiation uses).
func machinesHash(machines []*core.Machine, extra ...any) string {
	vals := make([]any, 0, len(machines)+len(extra))
	for _, m := range machines {
		vals = append(vals, m.Config())
	}
	vals = append(vals, extra...)
	return obs.Hash(vals...)
}

// denseCache is the shared store hook of every dense analytic sweep
// (fig1, fig7/8, fig15/16, table4/5 dense rows): the job's machine
// configuration is hashed into the key, so any experiment evaluating
// the same (config, kind, n, nb) cell reuses the same entry.
func denseCache(opt Options) sweep.Cache[core.DenseJob, memsim.Result] {
	return cacheFor[core.DenseJob, memsim.Result](opt, DenseSweepID, "", DenseKey)
}
