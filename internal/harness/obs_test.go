package harness

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sparse"
)

// TestSparseWarningsSurfaceEachDroppedMatrix fails a deterministic
// subset of the fig9 suite through the test seam and checks that every
// sweep.JobError surfaces as exactly one report warning, in submission
// order, even under a parallel sweep.
func TestSparseWarningsSurfaceEachDroppedMatrix(t *testing.T) {
	opt := tiny
	opt.Workers = 4

	specs := suite(platform.Broadwell(), opt)
	if len(specs) < 3 {
		t.Fatalf("suite too small for the test: %d specs", len(specs))
	}

	// Fail every third matrix by name so failures are independent of
	// worker scheduling.
	doomed := map[string]int{} // name -> submission index
	for i, s := range specs {
		if i%3 == 1 {
			doomed[s.Name] = i
		}
	}
	sparseJobHook = func(s sparse.Spec) error {
		if _, ok := doomed[s.Name]; ok {
			return fmt.Errorf("injected failure for %s", s.Name)
		}
		return nil
	}
	defer func() { sparseJobHook = nil }()

	e, _ := Get("fig9")
	rep, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}

	var warnings []string
	for _, f := range rep.Findings {
		if strings.HasPrefix(f, "WARNING: dropped ") {
			warnings = append(warnings, f)
		}
	}
	if len(warnings) != len(doomed) {
		t.Fatalf("%d warnings for %d injected failures:\n%s",
			len(warnings), len(doomed), strings.Join(warnings, "\n"))
	}

	// Each warning carries its job index ("job %d: ...") and they must
	// appear in submission order, each exactly once.
	var want []string
	for i, s := range specs {
		if _, ok := doomed[s.Name]; ok {
			want = append(want, fmt.Sprintf("WARNING: dropped job %d: injected failure for %s", i, s.Name))
		}
	}
	if !reflect.DeepEqual(warnings, want) {
		t.Fatalf("warnings out of order or malformed:\ngot  %v\nwant %v", warnings, want)
	}
}

// TestObsDoesNotChangeReportBytes is the PR's core invariant: running
// with a live registry, debug logging, and a manifest must leave the
// report's Text, CSV, and Findings byte-identical to a bare run — and
// must actually populate the registry.
func TestObsDoesNotChangeReportBytes(t *testing.T) {
	e, _ := Get("fig9")

	bare, err := e.Run(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}

	opt := tiny
	opt.Obs = obs.NewRegistry()
	opt.Log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug}))
	instr, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}

	if bare.Text != instr.Text {
		t.Error("report text differs with observability enabled")
	}
	if !reflect.DeepEqual(bare.Findings, instr.Findings) {
		t.Errorf("findings differ:\nbare  %v\nobs   %v", bare.Findings, instr.Findings)
	}
	if !reflect.DeepEqual(bare.CSV, instr.CSV) {
		t.Error("CSV series differ with observability enabled")
	}

	// The bare run carries no manifest (no registry or logger), the
	// instrumented one must.
	if instr.Manifest == nil {
		t.Fatal("instrumented report missing manifest")
	}
	if instr.Manifest.Tool == "" || len(instr.Manifest.Machines) == 0 || instr.Manifest.ConfigHash == "" {
		t.Fatalf("manifest incomplete: %+v", instr.Manifest)
	}

	snap := opt.Obs.Snapshot()
	if snap.Counters["sweep/jobs"] <= 0 {
		t.Error("sweep/jobs not recorded")
	}
	if snap.Counters["memsim/l1/hits"] <= 0 {
		t.Error("memsim/l1/hits not recorded")
	}
	h, ok := snap.Histograms["sweep/job_latency"]
	if !ok || h.Count != snap.Counters["sweep/jobs"] {
		t.Errorf("job latency histogram missing or wrong count: %+v", h)
	}
	if u, ok := snap.Gauges["sweep/worker_utilization"]; !ok || u <= 0 || u > 1 {
		t.Errorf("worker utilization gauge = %v, %v", u, ok)
	}
	if opt.Obs.SpanReport() == "" {
		t.Error("no spans recorded")
	}
}
