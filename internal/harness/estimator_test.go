package harness

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/twin"
)

// TestExactEstimatorByteIdentical is the refactor's ground rule: the
// exact estimator threaded through Options is the same computation as
// the pre-interface path. A bare run, a cold store-backed run under an
// explicit core.Exact, and a warm run under the default (nil)
// estimator must all render the same bytes — and the warm run must hit
// every digest the explicit-estimator run committed, proving exact
// kept the historical store layout.
func TestExactEstimatorByteIdentical(t *testing.T) {
	e, _ := Get("fig9")
	jobs := len(suite(platform.Broadwell(), tiny))

	bare, err := e.Run(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	coldReg := obs.NewRegistry()
	opt := tiny
	opt.Estimator = core.Exact
	opt.Store = mustOpen(t, dir, coldReg)
	cold, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Store.Close(); err != nil {
		t.Fatal(err)
	}
	if snap := coldReg.Snapshot(); snap.Counters["store/commits"] != int64(jobs) {
		t.Fatalf("cold exact run committed %d jobs, want %d", snap.Counters["store/commits"], jobs)
	}

	warmReg := obs.NewRegistry()
	opt = tiny // default estimator: nil resolves to core.Exact
	opt.Store = mustOpen(t, dir, warmReg)
	warm, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Store.Close(); err != nil {
		t.Fatal(err)
	}
	snap := warmReg.Snapshot()
	if snap.Counters["store/hits"] != int64(jobs) {
		t.Fatalf("default-estimator warm run: %d hits, want %d (exact digests must not move)",
			snap.Counters["store/hits"], jobs)
	}

	if got, want := reportBytes(cold), reportBytes(bare); got != want {
		t.Error("explicit-exact report differs from bare report")
	}
	if got, want := reportBytes(warm), reportBytes(bare); got != want {
		t.Error("warm report differs from bare report")
	}
	if !reflect.DeepEqual(cold.CSV, bare.CSV) || !reflect.DeepEqual(warm.CSV, bare.CSV) {
		t.Error("CSV series differ between bare/cold/warm exact runs")
	}
}

// TestTwinDigestSeparation: DESIGN.md §11's aliasing invariant. A
// store populated by the exact estimator offers the twin nothing (zero
// hits — its digests carry the twin model version and mode-prefixed
// sweep ID), the twin's own commits land beside the exact entries
// without overwriting them, and a second twin run is fully warm.
func TestTwinDigestSeparation(t *testing.T) {
	e, _ := Get("fig9")
	jobs := len(suite(platform.Broadwell(), tiny))
	dir := t.TempDir()

	exactReg := obs.NewRegistry()
	opt := tiny
	opt.Store = mustOpen(t, dir, exactReg)
	if _, err := e.Run(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if err := opt.Store.Close(); err != nil {
		t.Fatal(err)
	}

	coldReg := obs.NewRegistry()
	opt = tiny
	opt.Estimator = twin.Estimator{}
	opt.Store = mustOpen(t, dir, coldReg)
	coldTwin, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Store.Close(); err != nil {
		t.Fatal(err)
	}
	snap := coldReg.Snapshot()
	if snap.Counters["store/hits"] != 0 {
		t.Fatalf("twin run hit %d exact entries, want 0 (digest aliasing)", snap.Counters["store/hits"])
	}
	if snap.Counters["store/commits"] != int64(jobs) {
		t.Fatalf("twin run committed %d jobs, want %d", snap.Counters["store/commits"], jobs)
	}

	// Exact entries survived the twin's commits.
	if got, want := storeLen(t, dir), 2*jobs; got != want {
		t.Fatalf("store holds %d entries after exact+twin runs, want %d", got, want)
	}

	warmReg := obs.NewRegistry()
	opt = tiny
	opt.Estimator = twin.Estimator{}
	opt.Store = mustOpen(t, dir, warmReg)
	warmTwin, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Store.Close(); err != nil {
		t.Fatal(err)
	}
	snap = warmReg.Snapshot()
	if snap.Counters["store/hits"] != int64(jobs) {
		t.Fatalf("second twin run: %d hits, want %d", snap.Counters["store/hits"], jobs)
	}

	if got, want := reportBytes(warmTwin), reportBytes(coldTwin); got != want {
		t.Error("warm twin report differs from cold twin report")
	}
}

// TestAutoEscalationDeterministic: the auto policy is a pure function
// of (family, bounds, tolerance). Under a tolerance no family meets,
// every cell escalates and the report is byte-identical to exact;
// under the default tolerance, repeated runs are byte-identical to
// each other and the twin actually serves.
func TestAutoEscalationDeterministic(t *testing.T) {
	e, _ := Get("fig9")

	bare, err := e.Run(context.Background(), tiny)
	if err != nil {
		t.Fatal(err)
	}

	tight, err := twin.Select("auto", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	tightReg := obs.NewRegistry()
	opt := tiny
	opt.Estimator = tight
	opt.Obs = tightReg
	escalated, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := tightReg.Snapshot()
	if snap.Counters["twin/escalations"] == 0 || snap.Counters["twin/serves"] != 0 {
		t.Fatalf("tight tolerance: serves=%d escalations=%d, want 0/+",
			snap.Counters["twin/serves"], snap.Counters["twin/escalations"])
	}
	if got, want := reportBytes(escalated), reportBytes(bare); got != want {
		t.Error("fully-escalated auto report differs from exact report")
	}

	loose, err := twin.Select("auto", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	looseReg := obs.NewRegistry()
	opt = tiny
	opt.Estimator = loose
	opt.Obs = looseReg
	first, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if snap := looseReg.Snapshot(); snap.Counters["twin/serves"] == 0 {
		t.Fatal("default tolerance never served the twin for SpMV (bound 0.025)")
	}
	second, err := e.Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportBytes(second), reportBytes(first); got != want {
		t.Error("repeated auto runs differ — escalation decisions are not deterministic")
	}
	if !reflect.DeepEqual(second.CSV, first.CSV) {
		t.Error("repeated auto runs produced different CSV series")
	}
}
