// Package harness maps every table and figure of the paper's
// evaluation section to a runnable experiment. Each experiment sweeps
// the same parameter space as the paper (scaled per DESIGN.md),
// renders the figure as text, emits CSV series, and reports headline
// findings (the numbers EXPERIMENTS.md records against the paper).
package harness

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/sweep"
)

// Options controls experiment scale, parallelism and output.
type Options struct {
	// Full selects the paper's complete sweeps (968 matrices, fine
	// heat-map grids). The default quick mode subsamples them to keep
	// a full reproduction run in minutes.
	Full bool
	// OutDir, when set, receives one CSV per emitted series.
	OutDir string
	// Stride overrides the sparse-suite subsampling (default 16 in
	// quick mode, 1 in full mode). Tests use large strides.
	Stride int
	// CurvePoints overrides the footprint-sweep resolution (default
	// 16 quick / 32 full).
	CurvePoints int
	// MaxPaperFootprint, when positive, drops sparse-suite matrices
	// larger than this many bytes at paper scale (tests use it).
	MaxPaperFootprint int64
	// Workers bounds the sweep engine's worker pool (0 = GOMAXPROCS,
	// 1 = the sequential baseline the equivalence tests compare
	// against).
	Workers int
	// Progress, when non-nil, receives live sweep advancement
	// (opmbench -progress wires it to stderr).
	Progress func(sweep.Progress)
	// Obs, when non-nil, receives run telemetry: sweep engine metrics,
	// per-level simulator counters, and hierarchical phase spans.
	// Telemetry never alters report bytes — a run with Obs set renders
	// byte-identical Text/CSV/Findings to one without.
	Obs *obs.Registry
	// Log, when non-nil, receives structured run logs (experiment
	// start/finish, sweep sizes, dropped cells). Nil disables logging.
	Log *slog.Logger
	// Store, when non-nil, memoizes per-job sweep results: cached
	// jobs bypass the worker pool (warm runs execute zero simulator
	// jobs) and completed jobs are journaled as they finish, so an
	// interrupted run resumes from its last checkpoint. A warm or
	// resumed run renders byte-identical Text/CSV/Findings to a cold
	// one (see DESIGN.md §8).
	Store *store.Store
	// Force disables store lookups (every job recomputes) while still
	// committing results, overwriting existing entries — the recovery
	// path when cached results are suspect.
	Force bool
	// Resilience, when non-nil, applies the per-job retry/deadline/
	// breaker policy to every sweep (opmbench -retries, -job-timeout,
	// -breaker). Nil runs each job once, as before.
	Resilience *resilience.Policy
	// Inject, when non-nil, is the chaos injector every sweep and
	// result gate consults (opmbench -faults). Nil — production — costs
	// one branch per injection site.
	Inject *faultinject.Injector
	// Estimator evaluates every sweep cell (opmbench -estimator). Nil
	// means core.Exact — the per-access simulation the repo has always
	// run, byte-identical to the pre-interface path. Non-exact
	// estimators (twin, auto) are stored under their own digests and
	// never alias exact results (DESIGN.md §11).
	Estimator core.Estimator
	// Trace, when non-nil, records every sweep job's causal event chain
	// (enqueue → dispatch → attempts/retries/faults → estimator/gate →
	// store → done) into the tracer's ring and optional JSONL sink
	// (opmbench -trace, analyzed by cmd/opmprof). Store-backed runs
	// derive trace IDs from the store's content digests, so traces of
	// different runs join on the same cells. Like Obs, tracing never
	// alters report bytes (DESIGN.md §12).
	Trace *obs.Tracer
}

// estimator returns the options' estimator, defaulting to the exact
// simulation.
func (o Options) estimator() core.Estimator {
	if o.Estimator == nil {
		return core.Exact
	}
	return o.Estimator
}

// engine builds the sweep engine the option set describes.
func (o Options) engine() *sweep.Engine {
	return &sweep.Engine{Workers: o.Workers, Progress: o.Progress, Obs: o.Obs,
		Policy: o.Resilience, Inject: o.Inject, Trace: o.Trace}
}

// logger returns the options' logger, or a drop-everything logger so
// call sites never nil-check.
func (o Options) logger() *slog.Logger {
	if o.Log == nil {
		return obs.NopLogger()
	}
	return o.Log
}

// Report is the outcome of one experiment. Text, CSV and Findings are
// the deterministic report bytes the equivalence tests compare;
// Manifest is run provenance riding beside them, never rendered into
// them.
type Report struct {
	ID       string
	Title    string
	Text     string              // rendered figure/table
	CSV      map[string][]string // file name -> lines (header first)
	Findings []string            // headline paper-vs-measured notes
	Manifest *obs.Manifest       // run provenance (attached by instrument)
	// Dropped counts survivable per-job sweep failures behind the
	// report's WARNING findings — what opmbench -strict turns into a
	// non-zero exit while still writing the partial report.
	Dropped int
}

// Experiment is one reproducible table or figure. Run's context
// cancels or times out the experiment's sweeps mid-flight.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, opt Options) (*Report, error)
}

// Registry returns all experiments in paper order, each wrapped by
// the observability layer (see instrument).
func Registry() []Experiment {
	return instrumentAll([]Experiment{
		{ID: "table2", Title: "Table 2 / Fig 4: kernel characteristics and AI spectrum", Run: runTable2},
		{ID: "fig5", Title: "Fig 5: roofline models for eDRAM and MCDRAM", Run: runFig5},
		{ID: "fig6", Title: "Fig 6: the Stepping model", Run: runFig6},
		{ID: "fig1", Title: "Fig 1: GEMM achievable-performance density w/ and w/o eDRAM", Run: runFig1},
		{ID: "fig7", Title: "Fig 7: GEMM on Broadwell heat maps", Run: denseHeatmapRunner("broadwell", "GEMM")},
		{ID: "fig8", Title: "Fig 8: Cholesky on Broadwell heat maps", Run: denseHeatmapRunner("broadwell", "Cholesky")},
		{ID: "fig9", Title: "Fig 9: SpMV on Broadwell", Run: sparseRunner("broadwell", "SpMV")},
		{ID: "fig10", Title: "Fig 10: SpTRANS on Broadwell", Run: sparseRunner("broadwell", "SpTRANS")},
		{ID: "fig11", Title: "Fig 11: SpTRSV on Broadwell", Run: sparseRunner("broadwell", "SpTRSV")},
		{ID: "fig12", Title: "Fig 12: Stream on Broadwell", Run: curveRunner("broadwell", "Stream")},
		{ID: "fig13", Title: "Fig 13: Stencil on Broadwell", Run: curveRunner("broadwell", "Stencil")},
		{ID: "fig14", Title: "Fig 14: FFT on Broadwell", Run: curveRunner("broadwell", "FFT")},
		{ID: "fig15", Title: "Fig 15: GEMM on KNL heat maps (4 modes)", Run: denseHeatmapRunner("knl", "GEMM")},
		{ID: "fig16", Title: "Fig 16: Cholesky on KNL heat maps (4 modes)", Run: denseHeatmapRunner("knl", "Cholesky")},
		{ID: "fig17", Title: "Fig 17 / Fig 20: SpMV on KNL", Run: sparseRunner("knl", "SpMV")},
		{ID: "fig18", Title: "Fig 18 / Fig 21: SpTRANS on KNL", Run: sparseRunner("knl", "SpTRANS")},
		{ID: "fig19", Title: "Fig 19 / Fig 22: SpTRSV on KNL", Run: sparseRunner("knl", "SpTRSV")},
		{ID: "fig23", Title: "Fig 23: Stream on KNL (4 modes)", Run: curveRunner("knl", "Stream")},
		{ID: "fig24", Title: "Fig 24: Stencil on KNL (4 modes)", Run: curveRunner("knl", "Stencil")},
		{ID: "fig25", Title: "Fig 25: FFT on KNL (4 modes)", Run: curveRunner("knl", "FFT")},
		{ID: "table4", Title: "Table 4: eDRAM summary statistics", Run: runTable4},
		{ID: "table5", Title: "Table 5: MCDRAM summary statistics", Run: runTable5},
		{ID: "fig26", Title: "Fig 26: Broadwell power", Run: powerRunner("broadwell")},
		{ID: "fig27", Title: "Fig 27: KNL power (+ Eq. 1 break-even)", Run: powerRunner("knl")},
		{ID: "fig28", Title: "Fig 28: eDRAM tuning via Stepping model", Run: runFig28},
		{ID: "fig29", Title: "Fig 29: MCDRAM tuning via Stepping model", Run: runFig29},
		{ID: "fig30", Title: "Fig 30: tuning OPM hardware (capacity/bandwidth what-ifs)", Run: runFig30},
	})
}

// instrumentAll wraps every experiment's runner with instrument.
func instrumentAll(exps []Experiment) []Experiment {
	for i := range exps {
		exps[i].Run = instrument(exps[i].ID, exps[i].Run)
	}
	return exps
}

// instrument wraps an experiment runner with the observability layer:
// an "exp/<id>" span, structured start/finish logs, and the run
// manifest attached to the finished report. It touches nothing the
// deterministic report bytes (Text/CSV/Findings) are built from, so
// enabling telemetry can never change a rendered figure.
//
//opmlint:allow determinism — wall time here is reported (logs, span, manifest timestamps), never fed back into simulated results; the equivalence suites compare report bytes that exclude it
func instrument(id string, run func(context.Context, Options) (*Report, error)) func(context.Context, Options) (*Report, error) {
	return func(ctx context.Context, opt Options) (*Report, error) {
		log := opt.logger()
		log.Debug("experiment starting", "id", id, "workers", opt.Workers, "full", opt.Full)
		start := time.Now()
		sp := opt.Obs.StartSpan("exp/" + id) //opmlint:allow counternames — id comes from the closed experiment registry (Registry/extensionExperiments); the exp/<id> namespace is enumerable via -list
		rep, err := run(ctx, opt)
		sp.End()
		elapsed := time.Since(start)
		if err != nil {
			log.Error("experiment failed", "id", id, "elapsed", elapsed, "err", err)
			return nil, err
		}
		if rep.ID == "" {
			rep.ID = id
		}
		rep.Manifest = manifestFor(opt, start)
		log.Info("experiment finished", "id", id, "elapsed", elapsed,
			"findings", len(rep.Findings), "csvs", len(rep.CSV))
		return rep, nil
	}
}

// manifestFor builds the provenance record attached to one report.
func manifestFor(opt Options, start time.Time) *obs.Manifest {
	m := obs.NewManifest("opmbench-harness")
	m.Start = start
	m.Workers = opt.Workers
	m.Machines = PlatformMatrix()
	m.ConfigHash = obs.Hash(opt.Full, opt.Stride, opt.CurvePoints, opt.MaxPaperFootprint, opt.Workers)
	m.Finish()
	return m
}

// PlatformMatrix lists every platform/mode pair the harness can run —
// the run manifest's record of the machine matrix under test.
func PlatformMatrix() []string {
	var out []string
	for _, p := range []*platform.Platform{platform.Broadwell(), platform.KNL(), platform.Skylake()} {
		for _, mode := range p.Modes {
			out = append(out, p.Name+"/"+mode.String())
		}
	}
	return out
}

// RegistryWithExtensions appends the beyond-the-paper experiments
// (Skylake memory-side eDRAM, multi-tenant sharing, model ablations).
func RegistryWithExtensions() []Experiment {
	return append(Registry(), extensionExperiments()...)
}

// Get returns the experiment with the given ID (paper experiments and
// extensions alike). An unknown ID's error carries the full registry
// listing, so a typo at the command line answers itself.
func Get(id string) (Experiment, error) {
	for _, e := range RegistryWithExtensions() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q; known experiments:\n%s", id, List())
}

// List renders the experiment-ID registry, one "id  description" line
// per experiment in paper order (extensions last) — what opmbench
// -list prints and what an unknown -exp error embeds.
func List() string {
	var b strings.Builder
	for _, e := range RegistryWithExtensions() {
		fmt.Fprintf(&b, "  %-14s %s\n", e.ID, e.Title)
	}
	return b.String()
}

// IDs lists the paper experiment IDs in order (extensions excluded;
// see ExtensionIDs).
func IDs() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// ExtensionIDs lists the beyond-the-paper experiment IDs.
func ExtensionIDs() []string {
	var ids []string
	for _, e := range extensionExperiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// WriteCSVs persists a report's CSV series under opt.OutDir.
func (r *Report) WriteCSVs(dir string) error {
	if dir == "" || len(r.CSV) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	names := make([]string, 0, len(r.CSV))
	for name := range r.CSV {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(strings.Join(r.CSV[name], "\n")+"\n"), 0o644); err != nil {
			return fmt.Errorf("harness: writing %s: %w", path, err)
		}
	}
	return nil
}

// machineSet returns the machines the paper compares on a platform:
// (baseline, OPM variants).
func machineSet(platName string) (base *core.Machine, opm []*core.Machine, plat *platform.Platform, err error) {
	switch platName {
	case "broadwell":
		plat = platform.Broadwell()
	case "knl":
		plat = platform.KNL()
	default:
		return nil, nil, nil, fmt.Errorf("harness: unknown platform %q", platName)
	}
	for _, mode := range plat.Modes {
		m, err := core.NewMachine(plat, mode)
		if err != nil {
			return nil, nil, nil, err
		}
		if mode == memsim.ModeDDR {
			base = m
		} else {
			opm = append(opm, m)
		}
	}
	return base, opm, plat, nil
}

// sweepWarning surfaces survivable per-job sweep failures (dropped
// cells) as report findings — one warning per failed job, in
// submission order, so a truncated sweep is never silent and no
// dropped matrix hides behind a "N jobs failed" summary.
func sweepWarning(rep *Report, errs sweep.Errors) {
	rep.Dropped += len(errs)
	for _, e := range errs {
		rep.Findings = append(rep.Findings, "WARNING: dropped "+e.Error())
	}
}

func csvLine(fields ...string) string { return strings.Join(fields, ",") }

func f(v float64) string { return fmt.Sprintf("%.6g", v) }

func i64(v int64) string { return fmt.Sprintf("%d", v) }
