package harness

import (
	"context"
	"strings"
	"testing"
)

// TestFig29StableOrder pins the fix for the map-iteration flake: fig29
// once built its curves by ranging over a map literal, so the CSV row
// order (and which model error surfaced first) varied run to run. The
// report must now be byte-identical across runs, with series emitted
// in sorted-name order.
func TestFig29StableOrder(t *testing.T) {
	run := func() *Report {
		rep, err := runFig29(context.Background(), tiny)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()

	csvA, csvB := a.CSV["fig29.csv"], b.CSV["fig29.csv"]
	if len(csvA) == 0 {
		t.Fatal("fig29.csv missing")
	}
	if strings.Join(csvA, "\n") != strings.Join(csvB, "\n") {
		t.Error("fig29.csv differs between two identical runs")
	}
	if a.Text != b.Text {
		t.Error("fig29 text report differs between two identical runs")
	}

	// Series blocks appear in sorted-name order: cache, ddr, flat,
	// hybrid — each contiguous.
	wantOrder := []string{"cache", "ddr", "flat", "hybrid"}
	var gotOrder []string
	for _, line := range csvA[1:] { // skip header
		name := line[:strings.Index(line, ",")]
		if len(gotOrder) == 0 || gotOrder[len(gotOrder)-1] != name {
			gotOrder = append(gotOrder, name)
		}
	}
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("want %d contiguous series blocks %v, got %v", len(wantOrder), wantOrder, gotOrder)
	}
	for i, name := range wantOrder {
		if gotOrder[i] != name {
			t.Fatalf("series order = %v, want %v", gotOrder, wantOrder)
		}
	}
}
