package harness

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/platform"
	"repro/internal/plot"
	"repro/internal/sparse"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// suite selects the matrix collection for one platform run. The paper
// uses all 968 UF matrices; quick mode subsamples, and Broadwell drops
// the multi-GB tail its figures do not reach.
func suite(p *platform.Platform, opt Options) []sparse.Spec {
	specs := sparse.Collection()
	if p.Name == "broadwell" {
		specs = sparse.FilterMaxFootprint(specs, 1<<30)
	}
	if opt.MaxPaperFootprint > 0 {
		specs = sparse.FilterMaxFootprint(specs, opt.MaxPaperFootprint)
	}
	stride := 16
	if opt.Full {
		stride = 1
	}
	if opt.Stride > 0 {
		stride = opt.Stride
	}
	return sparse.Subsample(specs, stride)
}

// sparseWorkload builds the trace workload of a sparse kernel for one
// instantiated matrix.
func sparseWorkload(kernel string, m *sparse.CSR) (trace.Workload, error) {
	switch kernel {
	case "SpMV":
		return &trace.SpMV{M: m}, nil
	case "SpTRANS":
		return &trace.SpTRANS{M: m}, nil
	case "SpTRSV":
		return trace.NewSpTRSV(m)
	}
	return nil, fmt.Errorf("harness: unknown sparse kernel %q", kernel)
}

// sparsePoint is one matrix × one machine observation.
type sparsePoint struct {
	Spec      sparse.Spec
	Rows, NNZ int
	Footprint int64 // reported (paper) scale
	GFlops    map[memsim.Mode]float64
}

// sparseJobHook, when non-nil, runs before each sparse job and may
// fail it — the test seam for the sweep's partial-failure reporting
// (every dropped matrix must surface as a report warning).
var sparseJobHook func(sparse.Spec) error

// runSparse sweeps the suite over all modes of a platform on the sweep
// engine: one job per matrix, each job driving every mode through its
// worker's pooled simulators. A failing matrix is dropped from the
// sweep (returned in errs) instead of killing it; only cancellation or
// systematic failure aborts. Each finished job snapshots its
// simulators' per-level counters into opt.Obs.
func runSparse(ctx context.Context, platName, kernel string, opt Options) ([]sparsePoint, []*core.Machine, sweep.Errors, error) {
	base, opms, plat, err := machineSet(platName)
	if err != nil {
		return nil, nil, nil, err
	}
	machines := append([]*core.Machine{base}, opms...)
	specs := suite(plat, opt)
	opt.logger().Debug("sparse sweep starting", "platform", platName, "kernel", kernel,
		"matrices", len(specs), "modes", len(machines))
	// Jobs are keyed by matrix name under the machine-set hash (the
	// spec plus plat.Scale fully determine the instantiated matrix),
	// so table4/5 reuse the figures' entries and quick/full runs
	// share their common matrices.
	cache := cacheFor[sparse.Spec, sparsePoint](opt, "sparse/"+kernel,
		machinesHash(machines, plat.Scale),
		func(s sparse.Spec) string { return s.Name })
	eng := opt.engine()
	sp := opt.Obs.StartSpan("sparse/" + platName + "/" + kernel + "/sweep") //opmlint:allow counternames — platform and kernel come from the closed registry roster; the sparse/<plat>/<kernel> namespace is enumerable
	results, runErr := sweep.MapCached(ctx, eng, specs, cache,
		func(ctx context.Context, w *sweep.Worker, spec sparse.Spec) (sparsePoint, error) {
			if sparseJobHook != nil {
				if err := sparseJobHook(spec); err != nil {
					return sparsePoint{}, err
				}
			}
			m, err := spec.Checked(plat.Scale)
			if err != nil {
				return sparsePoint{}, err
			}
			wl, err := sparseWorkload(kernel, m)
			if err != nil {
				return sparsePoint{}, err
			}
			pt := sparsePoint{
				Spec: spec,
				Rows: m.Rows,
				NNZ:  m.NNZ(),
				// Structure axes are reported at paper scale too: the
				// suite's instantiation shrinks rows/nnz by ~Scale.
				Footprint: 0,
				GFlops:    map[memsim.Mode]float64{},
			}
			for _, mach := range machines {
				// Every mode's cell runs through the result gate: inject,
				// validate, quarantine on violation.
				r, err := opt.estimator().EstimateCell(ctx, eng, w, mach, wl, spec.Name+"|"+mach.Label())
				if err != nil {
					return sparsePoint{}, fmt.Errorf("%s on %s: %w", spec.Name, mach.Label(), err)
				}
				pt.GFlops[mach.Mode] = r.GFlops
				pt.Footprint = r.FootprintBytes
			}
			return pt, nil
		})
	sp.End()
	points, errs, err := sweep.Compact(results, runErr)
	if err != nil {
		return nil, nil, errs, err
	}
	if len(errs) > 0 {
		opt.logger().Warn("sparse sweep dropped matrices", "platform", platName,
			"kernel", kernel, "dropped", len(errs), "kept", len(points))
	}
	return points, machines, errs, nil
}

// sparseRunner builds Figures 9–11 (Broadwell) and 17–22 (KNL): raw
// throughput vs footprint, speedups vs the DDR baseline, and the
// rows×nnz structure heat map.
func sparseRunner(platName, kernel string) func(context.Context, Options) (*Report, error) {
	return func(ctx context.Context, opt Options) (*Report, error) {
		points, machines, errs, err := runSparse(ctx, platName, kernel, opt)
		if err != nil {
			return nil, err
		}
		if len(points) == 0 {
			return nil, fmt.Errorf("harness: empty sparse suite")
		}
		rep := &Report{CSV: map[string][]string{}}
		sweepWarning(rep, errs)
		render := opt.Obs.StartSpan("sparse/" + platName + "/" + kernel + "/render") //opmlint:allow counternames — platform and kernel come from the closed registry roster; the sparse/<plat>/<kernel> namespace is enumerable
		defer render.End()
		var b strings.Builder

		// Raw throughput scatter (per mode).
		var rawSeries []plot.Series
		csv := []string{csvLine("matrix", "family", "rows", "nnz", "footprint_mb", "mode", "gflops")}
		for _, mach := range machines {
			s := plot.Series{Name: mach.Mode.String()}
			for _, pt := range points {
				fpMB := float64(pt.Footprint) / (1 << 20)
				s.X = append(s.X, fpMB)
				s.Y = append(s.Y, pt.GFlops[mach.Mode])
				csv = append(csv, csvLine(pt.Spec.Name, pt.Spec.Family.String(),
					fmt.Sprint(pt.Rows), fmt.Sprint(pt.NNZ), f(fpMB),
					mach.Mode.String(), f(pt.GFlops[mach.Mode])))
			}
			rawSeries = append(rawSeries, s)
		}
		b.WriteString(plot.Lines(
			fmt.Sprintf("%s on %s: GFlop/s vs memory footprint (MB, paper scale), %d matrices",
				kernel, platName, len(points)),
			rawSeries, 72, 16, true))
		b.WriteString("\n")
		rep.CSV[fmt.Sprintf("%s_%s_raw.csv", strings.ToLower(kernel), platName)] = csv

		// Speedups vs the DDR baseline.
		var spSeries []plot.Series
		for _, mach := range machines[1:] {
			s := plot.Series{Name: mach.Mode.String() + "/ddr"}
			for _, pt := range points {
				base := pt.GFlops[memsim.ModeDDR]
				if base <= 0 {
					continue
				}
				s.X = append(s.X, float64(pt.Footprint)/(1<<20))
				s.Y = append(s.Y, pt.GFlops[mach.Mode]/base)
			}
			spSeries = append(spSeries, s)
		}
		b.WriteString(plot.Lines(
			fmt.Sprintf("%s on %s: speedup vs footprint (MB)", kernel, platName),
			spSeries, 72, 12, true))
		b.WriteString("\n")

		// Structure heat map: rows × nnz binned mean throughput of the
		// best OPM mode (Figures 9–11 bottom / 20–22).
		opmMode := machines[len(machines)-1].Mode
		var xs, ys, vs []float64
		for _, pt := range points {
			xs = append(xs, float64(pt.NNZ))
			ys = append(ys, float64(pt.Rows))
			vs = append(vs, pt.GFlops[opmMode])
		}
		grid, err := stats.BinLog2D(xs, ys, vs, 18, 10)
		if err != nil {
			return nil, err
		}
		b.WriteString(plot.Heatmap(
			fmt.Sprintf("%s on %s (%s): mean GFlop/s by structure", kernel, platName, opmMode),
			grid.Mean, "log10 nonzeros", "log10 rows"))

		// Findings: where the best structure region sits.
		rep.Findings = append(rep.Findings, structureFinding(kernel, platName, grid))
		for _, mach := range machines[1:] {
			var bases, opms []float64
			for _, pt := range points {
				bases = append(bases, pt.GFlops[memsim.ModeDDR])
				opms = append(opms, pt.GFlops[mach.Mode])
			}
			if sum, err := stats.Summarize(kernel, bases, opms); err == nil {
				rep.Findings = append(rep.Findings, fmt.Sprintf(
					"%s %s vs ddr: best %.3g vs %.3g GFlop/s, avg speedup %.3fx, max %.3fx",
					kernel, mach.Mode, sum.BestOPM, sum.BestBase, sum.AvgSpeedup, sum.MaxSpeedup))
			}
		}
		rep.Text = b.String()
		return rep, nil
	}
}

// structureFinding locates the hottest structure-bin (the paper's
// "peak performance region concentrates at ..." observations).
func structureFinding(kernel, platName string, g stats.Grid2D) string {
	bestV := math.Inf(-1)
	bx, by := 0, 0
	for j := range g.Mean {
		for i := range g.Mean[j] {
			if !math.IsNaN(g.Mean[j][i]) && g.Mean[j][i] > bestV {
				bestV, bx, by = g.Mean[j][i], i, j
			}
		}
	}
	return fmt.Sprintf("%s %s: hottest structure bin near nnz=10^%.1f, rows=10^%.1f (%.3g GFlop/s)",
		kernel, platName, (g.XEdges[bx]+g.XEdges[bx+1])/2, (g.YEdges[by]+g.YEdges[by+1])/2, bestV)
}
