// Package roofline implements the classic roofline model (Williams et
// al.) used by the paper's Figure 5, plus the Table 2 kernel
// characteristics (operation counts, byte counts, arithmetic
// intensity) that place each kernel on the spectrum of Figure 4.
package roofline

import (
	"fmt"
	"math"

	"repro/internal/platform"
)

// Characteristics describes one kernel row of Table 2.
type Characteristics struct {
	Algorithm  string
	Dwarf      string
	Class      string // Dense, Sparse, Others
	Complexity string
	// Ops and Bytes are the Table 2 formulas evaluated on a Problem.
	Ops   func(p Problem) float64
	Bytes func(p Problem) float64
}

// Problem carries the symbolic parameters of Table 2: matrix order n,
// nonzeros nnz, and row count M.
type Problem struct {
	N   float64
	NNZ float64
	M   float64
}

// DefaultProblem is the instantiation used by Figure 5's kernel
// placements: n = 1024, nnz = 1024, M = 32.
var DefaultProblem = Problem{N: 1024, NNZ: 1024, M: 32}

// AI returns the arithmetic intensity Ops/Bytes.
func (c Characteristics) AI(p Problem) float64 {
	b := c.Bytes(p)
	if b == 0 {
		return 0
	}
	return c.Ops(p) / b
}

// Table2 returns the eight kernel rows in the paper's order.
func Table2() []Characteristics {
	return []Characteristics{
		{
			Algorithm: "GEMM", Dwarf: "Dense Linear Algebra", Class: "Dense", Complexity: "O(n^3)",
			Ops:   func(p Problem) float64 { return 2 * p.N * p.N * p.N },
			Bytes: func(p Problem) float64 { return 32 * p.N * p.N },
		},
		{
			Algorithm: "Cholesky", Dwarf: "Dense Linear Algebra", Class: "Dense", Complexity: "O(n^3)",
			Ops:   func(p Problem) float64 { return p.N * p.N * p.N / 3 },
			Bytes: func(p Problem) float64 { return 8 * p.N * p.N },
		},
		{
			Algorithm: "SpMV", Dwarf: "Sparse Linear Algebra", Class: "Sparse", Complexity: "O(nnz)",
			Ops:   func(p Problem) float64 { return p.NNZ + 2*p.M },
			Bytes: func(p Problem) float64 { return 12*p.NNZ + 20*p.M },
		},
		{
			Algorithm: "SpTRANS", Dwarf: "Sparse Linear Algebra", Class: "Sparse", Complexity: "O(nnz log nnz)",
			Ops:   func(p Problem) float64 { return p.NNZ * math.Log2(math.Max(2, p.NNZ)) },
			Bytes: func(p Problem) float64 { return 24*p.NNZ + 8*p.M },
		},
		{
			Algorithm: "SpTRSV", Dwarf: "Sparse Linear Algebra", Class: "Sparse", Complexity: "O(nnz)",
			Ops:   func(p Problem) float64 { return p.NNZ + 2*p.M },
			Bytes: func(p Problem) float64 { return 12*p.NNZ + 20*p.M },
		},
		{
			Algorithm: "FFT", Dwarf: "Spectral Methods", Class: "Others", Complexity: "O(n log n)",
			Ops:   func(p Problem) float64 { return 5 * p.N * math.Log2(math.Max(2, p.N)) },
			Bytes: func(p Problem) float64 { return 48 * p.N },
		},
		{
			Algorithm: "Stencil", Dwarf: "Structured Grid", Class: "Others", Complexity: "O(n^2)",
			Ops:   func(p Problem) float64 { return 61 * p.N * p.N },
			Bytes: func(p Problem) float64 { return 8 * p.N * p.N },
		},
		{
			Algorithm: "Stream", Dwarf: "N/A", Class: "Others", Complexity: "O(1)",
			Ops:   func(p Problem) float64 { return 2 * p.N },
			Bytes: func(p Problem) float64 { return 32 * p.N },
		},
	}
}

// Ceiling is one roofline bound.
type Ceiling struct {
	Name string
	// GFlops for compute ceilings; GBs for bandwidth ceilings (one of
	// the two is zero).
	GFlops float64
	GBs    float64
}

// Model is the roofline of one platform (Figure 5, one panel).
type Model struct {
	Platform string
	Ceilings []Ceiling
}

// New builds the roofline for a platform: DP and SP compute ceilings,
// plus DRAM and OPM bandwidth ceilings (spec-sheet values, as in the
// paper's figure).
func New(p *platform.Platform) Model {
	return Model{
		Platform: p.Name,
		Ceilings: []Ceiling{
			{Name: "DP peak", GFlops: p.DPGFlops},
			{Name: "SP peak", GFlops: p.SPGFlops},
			{Name: p.DRAMKind, GBs: p.DRAMGBs},
			{Name: p.OPMKind, GBs: p.OPMGBs},
		},
	}
}

// Attainable returns the attainable DP GFlop/s at arithmetic intensity
// ai under the given bandwidth ceiling: min(peakDP, ai·bw).
func (m Model) Attainable(ai, bwGBs float64) float64 {
	peak := 0.0
	for _, c := range m.Ceilings {
		if c.Name == "DP peak" {
			peak = c.GFlops
		}
	}
	return math.Min(peak, ai*bwGBs)
}

// Ridge returns the arithmetic intensity where the bandwidth ceiling
// meets the DP compute ceiling — the roofline ridge point.
func (m Model) Ridge(bwGBs float64) float64 {
	peak := 0.0
	for _, c := range m.Ceilings {
		if c.Name == "DP peak" {
			peak = c.GFlops
		}
	}
	if bwGBs <= 0 {
		return math.Inf(1)
	}
	return peak / bwGBs
}

// Point is a kernel placed on the roofline.
type Point struct {
	Kernel        string
	AI            float64
	WithOPMGFlops float64
	DRAMGFlops    float64
}

// Points places the Table 2 kernels (at DefaultProblem) on the
// platform's roofline, with and without the OPM bandwidth ceiling.
func Points(p *platform.Platform) []Point {
	m := New(p)
	out := make([]Point, 0, 8)
	for _, c := range Table2() {
		ai := c.AI(DefaultProblem)
		out = append(out, Point{
			Kernel:        c.Algorithm,
			AI:            ai,
			WithOPMGFlops: m.Attainable(ai, p.OPMGBs),
			DRAMGFlops:    m.Attainable(ai, p.DRAMGBs),
		})
	}
	return out
}

// FormatTable2 renders the Table 2 characteristics for a problem as
// aligned text rows.
func FormatTable2(p Problem) []string {
	rows := []string{fmt.Sprintf("%-9s %-22s %-6s %-15s %14s %14s %12s",
		"Algorithm", "Dwarf", "Class", "Complexity", "Operations", "Bytes", "AI")}
	for _, c := range Table2() {
		rows = append(rows, fmt.Sprintf("%-9s %-22s %-6s %-15s %14.4g %14.4g %12.6g",
			c.Algorithm, c.Dwarf, c.Class, c.Complexity, c.Ops(p), c.Bytes(p), c.AI(p)))
	}
	return rows
}
