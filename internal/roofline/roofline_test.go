package roofline

import (
	"math"
	"strings"
	"testing"

	"repro/internal/platform"
)

func TestTable2Formulas(t *testing.T) {
	p := Problem{N: 1024, NNZ: 1024, M: 32}
	byName := map[string]Characteristics{}
	for _, c := range Table2() {
		byName[c.Algorithm] = c
	}
	if len(byName) != 8 {
		t.Fatalf("Table 2 has %d kernels, want 8", len(byName))
	}
	// GEMM: 2n^3 ops, 32n^2 bytes, AI = n/16.
	g := byName["GEMM"]
	if g.Ops(p) != 2*1024*1024*1024 {
		t.Error("GEMM ops wrong")
	}
	if ai := g.AI(p); math.Abs(ai-1024.0/16) > 1e-12 {
		t.Errorf("GEMM AI = %v, want n/16 = 64", ai)
	}
	// Cholesky: AI = n/24.
	if ai := byName["Cholesky"].AI(p); math.Abs(ai-1024.0/24) > 1e-12 {
		t.Errorf("Cholesky AI = %v, want n/24", ai)
	}
	// SpMV: (nnz+2M)/(12nnz+20M).
	want := (1024.0 + 64) / (12*1024.0 + 640)
	if ai := byName["SpMV"].AI(p); math.Abs(ai-want) > 1e-12 {
		t.Errorf("SpMV AI = %v, want %v", ai, want)
	}
	// SpTRSV same AI as SpMV.
	if byName["SpTRSV"].AI(p) != byName["SpMV"].AI(p) {
		t.Error("SpTRSV AI should equal SpMV AI")
	}
	// FFT: 5 log2 n / 48.
	if ai := byName["FFT"].AI(p); math.Abs(ai-5*10.0/48) > 1e-12 {
		t.Errorf("FFT AI = %v, want 5*log2(1024)/48", ai)
	}
	// Stencil: 61/8 = 7.625 exactly as in Table 2.
	if ai := byName["Stencil"].AI(p); ai != 7.625 {
		t.Errorf("Stencil AI = %v, want 7.625", ai)
	}
	// Stream: 2/32 = 0.0625.
	if ai := byName["Stream"].AI(p); ai != 0.0625 {
		t.Errorf("Stream AI = %v, want 0.0625", ai)
	}
}

func TestAISpectrumOrdering(t *testing.T) {
	// Figure 4: Stream < SpTRANS/SpMV/SpTRSV < FFT < Stencil < Cholesky < GEMM.
	p := DefaultProblem
	ai := map[string]float64{}
	for _, c := range Table2() {
		ai[c.Algorithm] = c.AI(p)
	}
	if !(ai["Stream"] < ai["SpMV"] && ai["SpMV"] < ai["FFT"] &&
		ai["FFT"] < ai["Stencil"] && ai["Stencil"] < ai["Cholesky"] &&
		ai["Cholesky"] < ai["GEMM"]) {
		t.Fatalf("AI spectrum out of order: %v", ai)
	}
}

func TestRooflineAttainable(t *testing.T) {
	m := New(platform.Broadwell())
	// Memory bound region: tiny AI.
	if got := m.Attainable(0.0625, 34.1); math.Abs(got-0.0625*34.1) > 1e-9 {
		t.Errorf("attainable = %v", got)
	}
	// Compute bound region: huge AI caps at DP peak.
	if got := m.Attainable(1000, 34.1); got != 236.8 {
		t.Errorf("attainable = %v, want DP peak", got)
	}
	// Ridge point moves left with higher bandwidth — the OPM effect in
	// Figure 5.
	if m.Ridge(102.4) >= m.Ridge(34.1) {
		t.Error("OPM must move the ridge point left")
	}
}

func TestPointsBothPlatforms(t *testing.T) {
	for _, p := range platform.All() {
		pts := Points(p)
		if len(pts) != 8 {
			t.Fatalf("%s: %d points", p.Name, len(pts))
		}
		for _, pt := range pts {
			if pt.WithOPMGFlops < pt.DRAMGFlops {
				t.Errorf("%s/%s: OPM ceiling below DRAM ceiling", p.Name, pt.Kernel)
			}
			if pt.WithOPMGFlops <= 0 {
				t.Errorf("%s/%s: non-positive attainable", p.Name, pt.Kernel)
			}
		}
	}
}

func TestStreamGainsFullOPMRatio(t *testing.T) {
	// Memory-bound kernels gain the full bandwidth ratio from the OPM
	// ceiling: eDRAM/DDR3 = 102.4/34.1 ≈ 3.0.
	pts := Points(platform.Broadwell())
	for _, pt := range pts {
		if pt.Kernel != "Stream" {
			continue
		}
		ratio := pt.WithOPMGFlops / pt.DRAMGFlops
		if math.Abs(ratio-102.4/34.1) > 1e-9 {
			t.Fatalf("Stream OPM gain = %v, want %v", ratio, 102.4/34.1)
		}
	}
}

func TestFormatTable2(t *testing.T) {
	rows := FormatTable2(DefaultProblem)
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want header + 8", len(rows))
	}
	if !strings.Contains(rows[1], "GEMM") || !strings.Contains(rows[8], "Stream") {
		t.Fatal("rows out of order")
	}
}
