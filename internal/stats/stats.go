// Package stats provides the statistical reductions used by the
// paper's tables and figures: per-kernel gap/speedup summaries
// (Tables 4 and 5), kernel-density estimation for the achievable-
// performance distribution (Figure 1), geometric means (Figures
// 26–27's GM bars), and 2D log-binned heat maps for the sparse
// structure-impact plots (Figures 9–11 bottom, 20–22).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary compares a kernel across inputs with and without an OPM
// configuration — one row of Table 4 or 5.
type Summary struct {
	Kernel       string
	BestBase     float64 // best GFlop/s without the OPM
	BestOPM      float64 // best GFlop/s with it
	AvgGap       float64 // mean (opm - base) over inputs
	MaxGap       float64 // max  (opm - base)
	AvgSpeedup   float64 // mean (opm / base)
	MaxSpeedup   float64 // max  (opm / base)
	PeakGainPct  float64 // (BestOPM - BestBase) / BestBase * 100
	SamplePoints int
}

// Summarize pairs base[i] with opm[i] (same input i) and reduces them.
func Summarize(kernel string, base, opm []float64) (Summary, error) {
	if len(base) != len(opm) || len(base) == 0 {
		return Summary{}, fmt.Errorf("stats: mismatched or empty series (%d vs %d)", len(base), len(opm))
	}
	s := Summary{Kernel: kernel, SamplePoints: len(base), MaxGap: math.Inf(-1), MaxSpeedup: math.Inf(-1)}
	var sumGap, sumSp float64
	for i := range base {
		if base[i] <= 0 || opm[i] <= 0 {
			return Summary{}, fmt.Errorf("stats: non-positive throughput at %d", i)
		}
		if base[i] > s.BestBase {
			s.BestBase = base[i]
		}
		if opm[i] > s.BestOPM {
			s.BestOPM = opm[i]
		}
		gap := opm[i] - base[i]
		sp := opm[i] / base[i]
		sumGap += gap
		sumSp += sp
		if gap > s.MaxGap {
			s.MaxGap = gap
		}
		if sp > s.MaxSpeedup {
			s.MaxSpeedup = sp
		}
	}
	s.AvgGap = sumGap / float64(len(base))
	s.AvgSpeedup = sumSp / float64(len(base))
	s.PeakGainPct = (s.BestOPM - s.BestBase) / s.BestBase * 100
	return s, nil
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: GeoMean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean needs positive values, got %g", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0..1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Density is a sampled probability density (Figure 1's curves).
type Density struct {
	X []float64
	Y []float64
}

// KDE estimates the density of samples with a Gaussian kernel over a
// uniform grid of `points` between min and max (padded by one
// bandwidth). Bandwidth uses Silverman's rule of thumb.
func KDE(samples []float64, points int) (Density, error) {
	if len(samples) < 2 || points < 2 {
		return Density{}, fmt.Errorf("stats: KDE needs >=2 samples and points")
	}
	mean := Mean(samples)
	variance := 0.0
	for _, x := range samples {
		variance += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(variance / float64(len(samples)-1))
	if sd == 0 {
		sd = math.Max(1e-9, math.Abs(mean)*1e-3)
	}
	h := 1.06 * sd * math.Pow(float64(len(samples)), -0.2)
	lo, hi := samples[0], samples[0]
	for _, x := range samples {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	lo -= h
	hi += h
	d := Density{X: make([]float64, points), Y: make([]float64, points)}
	norm := 1 / (float64(len(samples)) * h * math.Sqrt(2*math.Pi))
	for i := 0; i < points; i++ {
		x := lo + (hi-lo)*float64(i)/float64(points-1)
		var y float64
		for _, s := range samples {
			u := (x - s) / h
			y += math.Exp(-0.5 * u * u)
		}
		d.X[i] = x
		d.Y[i] = y * norm
	}
	return d, nil
}

// FractionAbove returns the fraction of samples strictly above the
// threshold — e.g. the share of GEMM configurations reaching 90% of
// peak, the quantity Figure 1 argues eDRAM improves.
func FractionAbove(samples []float64, threshold float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := 0
	for _, x := range samples {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// Grid2D is a log-binned 2D aggregation (mean per cell), the
// structure-impact heat maps of Figures 9–11 and 20–22: x = nonzeros,
// y = rows, value = throughput.
type Grid2D struct {
	XEdges []float64 // log10 bin edges
	YEdges []float64
	Mean   [][]float64 // [y][x], NaN for empty cells
	Count  [][]int
}

// BinLog2D builds a Grid2D with nx×ny log10-spaced bins.
func BinLog2D(xs, ys, vs []float64, nx, ny int) (Grid2D, error) {
	if len(xs) != len(ys) || len(xs) != len(vs) || len(xs) == 0 {
		return Grid2D{}, fmt.Errorf("stats: ragged or empty bin input")
	}
	if nx < 1 || ny < 1 {
		return Grid2D{}, fmt.Errorf("stats: bad grid %dx%d", nx, ny)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return Grid2D{}, fmt.Errorf("stats: log binning needs positive coords")
		}
		minX, maxX = math.Min(minX, xs[i]), math.Max(maxX, xs[i])
		minY, maxY = math.Min(minY, ys[i]), math.Max(maxY, ys[i])
	}
	lminX, lmaxX := math.Log10(minX), math.Log10(maxX)
	lminY, lmaxY := math.Log10(minY), math.Log10(maxY)
	if lmaxX == lminX {
		lmaxX = lminX + 1
	}
	if lmaxY == lminY {
		lmaxY = lminY + 1
	}
	g := Grid2D{
		XEdges: make([]float64, nx+1),
		YEdges: make([]float64, ny+1),
		Mean:   make([][]float64, ny),
		Count:  make([][]int, ny),
	}
	for i := 0; i <= nx; i++ {
		g.XEdges[i] = lminX + (lmaxX-lminX)*float64(i)/float64(nx)
	}
	for j := 0; j <= ny; j++ {
		g.YEdges[j] = lminY + (lmaxY-lminY)*float64(j)/float64(ny)
	}
	sums := make([][]float64, ny)
	for j := 0; j < ny; j++ {
		g.Mean[j] = make([]float64, nx)
		g.Count[j] = make([]int, nx)
		sums[j] = make([]float64, nx)
	}
	for i := range xs {
		bx := binIndex(math.Log10(xs[i]), lminX, lmaxX, nx)
		by := binIndex(math.Log10(ys[i]), lminY, lmaxY, ny)
		sums[by][bx] += vs[i]
		g.Count[by][bx]++
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			if g.Count[j][i] == 0 {
				g.Mean[j][i] = math.NaN()
			} else {
				g.Mean[j][i] = sums[j][i] / float64(g.Count[j][i])
			}
		}
	}
	return g, nil
}

func binIndex(v, lo, hi float64, n int) int {
	idx := int((v - lo) / (hi - lo) * float64(n))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}
