package stats

import (
	"math"
	"testing"
)

func TestMAPETable(t *testing.T) {
	cases := []struct {
		name         string
		actual, pred []float64
		want         float64
		wantErr      bool
	}{
		{name: "exact match", actual: []float64{1, 2, 4}, pred: []float64{1, 2, 4}, want: 0},
		{name: "uniform 10% high", actual: []float64{10, 20, 40}, pred: []float64{11, 22, 44}, want: 0.1},
		{name: "uniform 10% low", actual: []float64{10, 20}, pred: []float64{9, 18}, want: 0.1},
		{name: "mixed", actual: []float64{100, 100}, pred: []float64{150, 50}, want: 0.5},
		{name: "negative actuals use magnitude", actual: []float64{-10}, pred: []float64{-11}, want: 0.1},
		{name: "empty", wantErr: true},
		{name: "mismatched", actual: []float64{1, 2}, pred: []float64{1}, wantErr: true},
		{name: "zero actual", actual: []float64{0}, pred: []float64{1}, wantErr: true},
		{name: "NaN actual", actual: []float64{math.NaN()}, pred: []float64{1}, wantErr: true},
		{name: "Inf pred", actual: []float64{1}, pred: []float64{math.Inf(1)}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := MAPE(tc.actual, tc.pred)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("MAPE(%v, %v) = %g, want error", tc.actual, tc.pred, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("MAPE(%v, %v): %v", tc.actual, tc.pred, err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("MAPE(%v, %v) = %g, want %g", tc.actual, tc.pred, got, tc.want)
			}
		})
	}
}

func TestPearsonRTable(t *testing.T) {
	cases := []struct {
		name    string
		xs, ys  []float64
		want    float64
		wantErr bool
	}{
		{name: "perfect positive", xs: []float64{1, 2, 3, 4}, ys: []float64{10, 20, 30, 40}, want: 1},
		{name: "perfect negative", xs: []float64{1, 2, 3}, ys: []float64{6, 4, 2}, want: -1},
		{name: "affine shift preserves r", xs: []float64{1, 2, 3}, ys: []float64{101, 102, 103}, want: 1},
		{name: "uncorrelated symmetric", xs: []float64{-1, 0, 1, 0}, ys: []float64{0, 1, 0, -1}, want: 0},
		{name: "constant xs", xs: []float64{5, 5, 5}, ys: []float64{1, 2, 3}, wantErr: true},
		{name: "constant ys", xs: []float64{1, 2, 3}, ys: []float64{7, 7, 7}, wantErr: true},
		{name: "too short", xs: []float64{1}, ys: []float64{2}, wantErr: true},
		{name: "empty", wantErr: true},
		{name: "mismatched", xs: []float64{1, 2}, ys: []float64{1}, wantErr: true},
		{name: "NaN input", xs: []float64{1, math.NaN()}, ys: []float64{1, 2}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := PearsonR(tc.xs, tc.ys)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("PearsonR(%v, %v) = %g, want error", tc.xs, tc.ys, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("PearsonR(%v, %v): %v", tc.xs, tc.ys, err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("PearsonR(%v, %v) = %g, want %g", tc.xs, tc.ys, got, tc.want)
			}
		})
	}
}

// TestPearsonRProperties checks the invariants calibration relies on
// over a deterministic pseudo-random family of series: r is symmetric,
// bounded by [-1, 1], exactly ±1 for affine relations, and invariant
// under positive affine rescaling of either argument.
func TestPearsonRProperties(t *testing.T) {
	// xorshift-style generator: deterministic, no global rand state.
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed%10000)/10000 - 0.5
	}
	for trial := 0; trial < 50; trial++ {
		n := 3 + trial%17
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = next() * 100
			ys[i] = next() * 100
		}
		r, err := PearsonR(xs, ys)
		if err != nil {
			// A degenerate constant draw is legal for the generator;
			// the error contract covers it.
			continue
		}
		if r < -1 || r > 1 {
			t.Fatalf("trial %d: r = %g outside [-1, 1]", trial, r)
		}
		rSwap, err := PearsonR(ys, xs)
		if err != nil {
			t.Fatalf("trial %d: symmetric call failed: %v", trial, err)
		}
		if math.Abs(r-rSwap) > 1e-12 {
			t.Fatalf("trial %d: r not symmetric: %g vs %g", trial, r, rSwap)
		}
		// Affine y = 3x + 7 correlates exactly.
		affine := make([]float64, n)
		scaled := make([]float64, n)
		for i := range xs {
			affine[i] = 3*xs[i] + 7
			scaled[i] = 0.25*ys[i] + 11
		}
		rAff, err := PearsonR(xs, affine)
		if err != nil {
			t.Fatalf("trial %d: affine call failed: %v", trial, err)
		}
		if math.Abs(rAff-1) > 1e-9 {
			t.Fatalf("trial %d: affine relation gave r = %g, want 1", trial, rAff)
		}
		rScaled, err := PearsonR(xs, scaled)
		if err != nil {
			t.Fatalf("trial %d: rescaled call failed: %v", trial, err)
		}
		if math.Abs(r-rScaled) > 1e-9 {
			t.Fatalf("trial %d: positive rescale changed r: %g vs %g", trial, r, rScaled)
		}
	}
}

// TestMAPEScaleInvariance: MAPE is invariant under uniform scaling of
// both series — the property that makes per-family errors comparable
// across kernels with very different absolute throughputs.
func TestMAPEScaleInvariance(t *testing.T) {
	actual := []float64{3, 17, 250, 9000}
	pred := []float64{3.3, 15, 275, 8100}
	base, err := MAPE(actual, pred)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{0.001, 42, 1e6} {
		sa := make([]float64, len(actual))
		sp := make([]float64, len(pred))
		for i := range actual {
			sa[i], sp[i] = k*actual[i], k*pred[i]
		}
		got, err := MAPE(sa, sp)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-base) > 1e-12 {
			t.Fatalf("scale %g changed MAPE: %g vs %g", k, got, base)
		}
	}
}
