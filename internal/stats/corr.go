package stats

import (
	"fmt"
	"math"
)

// This file holds the calibration reductions of the analytic twin
// (internal/twin/calib): mean absolute percentage error between the
// exact simulator and the twin's prediction, and the Pearson
// correlation of the two series. They are plain paired-series
// statistics, kept here so calibration math is testable independently
// of the estimators producing the series.

// MAPE returns the mean absolute percentage error of predicted against
// actual, as a fraction (0.07 = 7%): mean(|pred-actual| / |actual|).
// Every actual value must be finite and non-zero; series must be
// non-empty and of equal length.
func MAPE(actual, pred []float64) (float64, error) {
	if len(actual) != len(pred) || len(actual) == 0 {
		return 0, fmt.Errorf("stats: MAPE needs equal non-empty series (%d vs %d)", len(actual), len(pred))
	}
	var sum float64
	for i := range actual {
		if !isFinite(actual[i]) || !isFinite(pred[i]) {
			return 0, fmt.Errorf("stats: MAPE input not finite at %d (%g, %g)", i, actual[i], pred[i])
		}
		if actual[i] == 0 {
			return 0, fmt.Errorf("stats: MAPE undefined for zero actual at %d", i)
		}
		sum += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
	}
	return sum / float64(len(actual)), nil
}

// PearsonR returns the Pearson correlation coefficient of two paired
// series. A constant series has zero variance and no defined
// correlation, so it is rejected rather than returning NaN; inputs
// must be finite, non-empty and of equal length (at least 2 points).
func PearsonR(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, fmt.Errorf("stats: PearsonR needs equal series of >= 2 points (%d vs %d)", len(xs), len(ys))
	}
	var mx, my float64
	for i := range xs {
		if !isFinite(xs[i]) || !isFinite(ys[i]) {
			return 0, fmt.Errorf("stats: PearsonR input not finite at %d (%g, %g)", i, xs[i], ys[i])
		}
		mx += xs[i]
		my += ys[i]
	}
	n := float64(len(xs))
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: PearsonR undefined for a constant series")
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Floating-point roundoff can push a perfectly correlated series a
	// few ulps past ±1; clamp so callers can compare against ±1 exactly.
	return math.Max(-1, math.Min(1, r)), nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
