package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	base := []float64{10, 20, 5}
	opm := []float64{12, 20, 15}
	s, err := Summarize("SpMV", base, opm)
	if err != nil {
		t.Fatal(err)
	}
	if s.BestBase != 20 || s.BestOPM != 20 {
		t.Fatalf("bests = %v/%v", s.BestBase, s.BestOPM)
	}
	if s.MaxGap != 10 {
		t.Fatalf("max gap = %v, want 10", s.MaxGap)
	}
	if math.Abs(s.AvgGap-4) > 1e-12 {
		t.Fatalf("avg gap = %v, want 4", s.AvgGap)
	}
	if s.MaxSpeedup != 3 {
		t.Fatalf("max speedup = %v, want 3", s.MaxSpeedup)
	}
	if math.Abs(s.AvgSpeedup-(1.2+1+3)/3) > 1e-12 {
		t.Fatalf("avg speedup = %v", s.AvgSpeedup)
	}
	if s.PeakGainPct != 0 {
		t.Fatalf("peak gain = %v, want 0", s.PeakGainPct)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize("x", []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Summarize("x", nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Summarize("x", []float64{0}, []float64{1}); err == nil {
		t.Fatal("zero throughput accepted")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil || math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean = %v, %v", g, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestMeanAndQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = rng.NormFloat64()*2 + 10
	}
	d, err := KDE(samples, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoidal integral ≈ 1.
	var integral float64
	for i := 1; i < len(d.X); i++ {
		integral += (d.Y[i] + d.Y[i-1]) / 2 * (d.X[i] - d.X[i-1])
	}
	if math.Abs(integral-1) > 0.05 {
		t.Fatalf("KDE integral = %v, want ~1", integral)
	}
	// Mode near the true mean.
	best := 0
	for i := range d.Y {
		if d.Y[i] > d.Y[best] {
			best = i
		}
	}
	if math.Abs(d.X[best]-10) > 1 {
		t.Fatalf("KDE mode at %v, want ~10", d.X[best])
	}
}

func TestKDEErrors(t *testing.T) {
	if _, err := KDE([]float64{1}, 10); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := KDE([]float64{1, 2}, 1); err == nil {
		t.Fatal("single point accepted")
	}
	// Identical samples should not panic (zero sd fallback).
	if _, err := KDE([]float64{5, 5, 5}, 16); err != nil {
		t.Fatal(err)
	}
}

func TestFractionAbove(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if FractionAbove(xs, 2.5) != 0.5 {
		t.Fatal("fraction wrong")
	}
	if FractionAbove(nil, 1) != 0 {
		t.Fatal("empty should be 0")
	}
}

func TestBinLog2D(t *testing.T) {
	xs := []float64{10, 100, 1000, 10}
	ys := []float64{10, 100, 1000, 10}
	vs := []float64{1, 2, 3, 3}
	g, err := BinLog2D(xs, ys, vs, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Cell (0,0) holds samples 1 and 4: mean 2.
	if g.Count[0][0] != 2 || g.Mean[0][0] != 2 {
		t.Fatalf("cell(0,0) = %v x%d", g.Mean[0][0], g.Count[0][0])
	}
	// Top-right holds the value-3 sample (edge-inclusive).
	if g.Count[2][2] != 1 || g.Mean[2][2] != 3 {
		t.Fatalf("cell(2,2) = %v x%d", g.Mean[2][2], g.Count[2][2])
	}
	// Empty cells are NaN.
	if !math.IsNaN(g.Mean[0][2]) {
		t.Fatal("empty cell should be NaN")
	}
}

func TestBinLog2DErrors(t *testing.T) {
	if _, err := BinLog2D([]float64{1}, []float64{1, 2}, []float64{1}, 2, 2); err == nil {
		t.Fatal("ragged accepted")
	}
	if _, err := BinLog2D(nil, nil, nil, 2, 2); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := BinLog2D([]float64{-1}, []float64{1}, []float64{1}, 2, 2); err == nil {
		t.Fatal("negative coordinate accepted")
	}
	if _, err := BinLog2D([]float64{1}, []float64{1}, []float64{1}, 0, 2); err == nil {
		t.Fatal("zero bins accepted")
	}
	// Degenerate span (single point) must not panic.
	if _, err := BinLog2D([]float64{5}, []float64{5}, []float64{1}, 2, 2); err != nil {
		t.Fatal(err)
	}
}

// Property: summaries are permutation-invariant on paired inputs.
func TestPropertySummarizePermutationInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 5 + int(seed%20)
		base := make([]float64, n)
		opm := make([]float64, n)
		for i := range base {
			base[i] = rng.Float64() + 0.1
			opm[i] = rng.Float64() + 0.1
		}
		s1, err := Summarize("k", base, opm)
		if err != nil {
			return false
		}
		perm := rng.Perm(n)
		b2 := make([]float64, n)
		o2 := make([]float64, n)
		for i, p := range perm {
			b2[i], o2[i] = base[p], opm[p]
		}
		s2, err := Summarize("k", b2, o2)
		if err != nil {
			return false
		}
		near := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
		return near(s1.AvgGap, s2.AvgGap) && near(s1.MaxGap, s2.MaxGap) &&
			near(s1.AvgSpeedup, s2.AvgSpeedup) && near(s1.BestOPM, s2.BestOPM)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
