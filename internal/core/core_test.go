package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/memsim"
	"repro/internal/platform"
	"repro/internal/sparse"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func TestDefaultTuningCoversAllKernels(t *testing.T) {
	tuning := DefaultTuning()
	kernels := []string{"GEMM", "Cholesky", "SpMV", "SpTRANS", "SpTRSV", "FFT", "Stencil", "Stream"}
	if len(tuning) != len(kernels) {
		t.Fatalf("tuning has %d kernels, want %d", len(tuning), len(kernels))
	}
	for _, k := range kernels {
		tu, ok := tuning[k]
		if !ok {
			t.Fatalf("missing tuning for %s", k)
		}
		for _, p := range []string{"broadwell", "knl"} {
			eff, ok := tu.Eff[p]
			if !ok || eff <= 0 || eff > 1 {
				t.Fatalf("%s: bad efficiency for %s: %v", k, p, eff)
			}
		}
		if tu.MLP <= 0 {
			t.Fatalf("%s: bad MLP", k)
		}
	}
}

func TestMachineConstruction(t *testing.T) {
	brd := platform.Broadwell()
	m, err := NewMachine(brd, memsim.ModeEDRAM)
	if err != nil {
		t.Fatal(err)
	}
	if m.Label() != "broadwell/edram" {
		t.Fatalf("label = %q", m.Label())
	}
	if _, err := NewMachine(brd, memsim.ModeFlat); err == nil {
		t.Fatal("unsupported mode accepted")
	}
	machines, err := Machines(platform.KNL())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(machines); got != 4 {
		t.Fatalf("KNL machines = %d, want 4", got)
	}
}

func TestRunUnknownKernelRejected(t *testing.T) {
	m := MustMachine(platform.Broadwell(), memsim.ModeDDR)
	if _, err := m.Run(fakeWorkload{}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

type fakeWorkload struct{}

func (fakeWorkload) Name() string             { return "NotAKernel" }
func (fakeWorkload) Flops() float64           { return 1 }
func (fakeWorkload) FootprintBytes() int64    { return 1 }
func (fakeWorkload) Simulate(sim *memsim.Sim) { sim.Alloc("x", 64).Load(0, 8) }

func TestStreamEDRAMEffectiveRegion(t *testing.T) {
	brd := platform.Broadwell()
	ddr := MustMachine(brd, memsim.ModeDDR)
	ed := MustMachine(brd, memsim.ModeEDRAM)
	// Paper-scale 64MB triad: inside the eDRAM effective region.
	w := trace.NewStream(brd.ScaledBytes(64 << 20))
	rd := ddr.MustRun(w)
	re := ed.MustRun(w)
	sp := re.GFlops / rd.GFlops
	if sp < 1.5 || sp > 3.5 {
		t.Fatalf("eDRAM region speedup = %v, want ~2.4", sp)
	}
	// Reported footprint is back at paper scale.
	if rd.FootprintBytes < 50<<20 || rd.FootprintBytes > 80<<20 {
		t.Fatalf("reported footprint = %d, want ~64MB", rd.FootprintBytes)
	}
}

func TestStreamEDRAMNeverHurts(t *testing.T) {
	// Table 4's note: "we have not observed worse performance using
	// eDRAM than without eDRAM."
	brd := platform.Broadwell()
	ddr := MustMachine(brd, memsim.ModeDDR)
	ed := MustMachine(brd, memsim.ModeEDRAM)
	for _, mb := range []int64{2, 4, 8, 16, 64, 128, 160, 256, 1024} {
		w := trace.NewStream(brd.ScaledBytes(mb << 20))
		rd := ddr.MustRun(w)
		re := ed.MustRun(w)
		if re.GFlops < rd.GFlops*0.98 {
			t.Fatalf("eDRAM hurts at %dMB: %v vs %v", mb, re.GFlops, rd.GFlops)
		}
	}
}

func TestKNLStreamModeOrdering(t *testing.T) {
	knl := platform.KNL()
	w := trace.NewStream(knl.ScaledBytes(2 << 30)) // 2GB: flat resident
	res := map[memsim.Mode]memsim.Result{}
	for _, mode := range knl.Modes {
		res[mode] = MustMachine(knl, mode).MustRun(w)
	}
	// Flat >= cache (tag overhead), both >> DDR (Table 5 Stream row).
	if res[memsim.ModeFlat].GFlops < res[memsim.ModeCache].GFlops {
		t.Fatal("flat should not lose to cache mode for resident data")
	}
	ratio := res[memsim.ModeFlat].GFlops / res[memsim.ModeDDR].GFlops
	if ratio < 4 || ratio > 7 {
		t.Fatalf("flat/DDR plateau ratio = %v, want ~5.4", ratio)
	}
}

func TestKNLFlatSplitCollapse(t *testing.T) {
	// Beyond 16GB, flat mode collapses below pure DDR (Figures 15/23).
	knl := platform.KNL()
	w := trace.NewStream(knl.ScaledBytes(24 << 30))
	flat := MustMachine(knl, memsim.ModeFlat).MustRun(w)
	ddr := MustMachine(knl, memsim.ModeDDR).MustRun(w)
	if flat.GFlops >= ddr.GFlops {
		t.Fatalf("split flat should collapse below DDR: %v vs %v", flat.GFlops, ddr.GFlops)
	}
	if flat.Bound != memsim.BoundSplit {
		t.Fatalf("bound = %s, want split", flat.Bound)
	}
	// Hybrid at the same footprint stays healthy.
	hy := MustMachine(knl, memsim.ModeHybrid).MustRun(w)
	if hy.GFlops <= ddr.GFlops {
		t.Fatalf("hybrid should beat DDR at 24GB: %v vs %v", hy.GFlops, ddr.GFlops)
	}
}

func TestSpTRSVLatencyAnomalyOnKNL(t *testing.T) {
	// Section 4.2.2: SpTRSV has so little memory-level parallelism that
	// MCDRAM's higher idle latency makes it no better (or worse) than
	// DDR at large footprints.
	knl := platform.KNL()
	m := sparse.Collection()[2].Instantiate(knl.Scale * 4) // mid-size
	w, err := trace.NewSpTRSV(m)
	if err != nil {
		t.Fatal(err)
	}
	flat := MustMachine(knl, memsim.ModeFlat).MustRun(w)
	ddr := MustMachine(knl, memsim.ModeDDR).MustRun(w)
	if flat.GFlops > ddr.GFlops*1.3 {
		t.Fatalf("SpTRSV should not gain much from MCDRAM: flat %v vs ddr %v", flat.GFlops, ddr.GFlops)
	}
}

func TestSpTRSVThrottledByLevels(t *testing.T) {
	// A chain matrix (parallelism 1) must be far slower than a wide
	// one of similar size.
	brd := platform.Broadwell()
	m := MustMachine(brd, memsim.ModeDDR)
	chain, err := trace.NewSpTRSV(sparse.Tridiag(300000))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := trace.NewSpTRSV(sparse.BlockDiag(300000, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	rc := m.MustRun(chain)
	rw := m.MustRun(wide)
	// The chain is pinned to MLP 1; the wide schedule keeps the full
	// thread complement (8 × 0.6). Despite the wide schedule's strided
	// level-order traversal costing extra traffic, it must still win.
	if rc.EffectiveMLP != 1 {
		t.Fatalf("chain MLP = %v, want 1", rc.EffectiveMLP)
	}
	if rw.EffectiveMLP < 4 {
		t.Fatalf("wide MLP = %v, want ~4.8", rw.EffectiveMLP)
	}
	if rc.GFlops*1.3 > rw.GFlops {
		t.Fatalf("chain should be slower: chain %v vs wide %v", rc.GFlops, rw.GFlops)
	}
}

func TestRunDenseGEMMPeaksNearPaper(t *testing.T) {
	// Best Broadwell GEMM ~205 GFlop/s (Table 4), eDRAM moves the peak
	// by ≲ 5%.
	brd := platform.Broadwell()
	best := func(mode memsim.Mode) float64 {
		m := MustMachine(brd, mode)
		peak := 0.0
		for _, nb := range []int{256, 512, 1024, 2048, 4096} {
			r := m.MustRunDense(trace.DenseGEMM, 16128, nb)
			if r.GFlops > peak {
				peak = r.GFlops
			}
		}
		return peak
	}
	pd := best(memsim.ModeDDR)
	pe := best(memsim.ModeEDRAM)
	if pd < 180 || pd > 230 {
		t.Fatalf("Broadwell GEMM peak = %v, want ~205", pd)
	}
	gain := (pe - pd) / pd
	if gain < 0 || gain > 0.08 {
		t.Fatalf("eDRAM peak gain = %v, want small positive", gain)
	}
}

func TestRunDenseEDRAMExpandsNearPeakRegion(t *testing.T) {
	// Figure 7's key observation: with eDRAM more (n, nb) samples reach
	// 90% of peak.
	brd := platform.Broadwell()
	count90 := func(mode memsim.Mode) int {
		m := MustMachine(brd, mode)
		peak := 0.0
		var vals []float64
		for _, n := range []int{2048, 4096, 8192, 16128} {
			for _, nb := range []int{128, 512, 1024, 2048, 4096} {
				r := m.MustRunDense(trace.DenseGEMM, n, nb)
				vals = append(vals, r.GFlops)
				if r.GFlops > peak {
					peak = r.GFlops
				}
			}
		}
		n := 0
		for _, v := range vals {
			if v > 0.9*peak {
				n++
			}
		}
		return n
	}
	if count90(memsim.ModeEDRAM) <= count90(memsim.ModeDDR) {
		t.Fatal("eDRAM should expand the near-peak region")
	}
}

func TestRunDenseKNLFlatCollapse(t *testing.T) {
	knl := platform.KNL()
	flat := MustMachine(knl, memsim.ModeFlat)
	ok := flat.MustRunDense(trace.DenseGEMM, 16384, 1024)  // 8GB fits
	bad := flat.MustRunDense(trace.DenseGEMM, 30000, 1024) // 28.8GB splits
	if bad.GFlops > ok.GFlops/2 {
		t.Fatalf("flat should collapse past MCDRAM capacity: %v vs %v", bad.GFlops, ok.GFlops)
	}
	if bad.Bound != memsim.BoundSplit {
		t.Fatalf("bound = %s", bad.Bound)
	}
	// Hybrid survives the same size (Section 4.2.1 III).
	hy := MustMachine(knl, memsim.ModeHybrid).MustRunDense(trace.DenseGEMM, 30000, 1024)
	if hy.GFlops < ok.GFlops/2 {
		t.Fatalf("hybrid should stay healthy: %v", hy.GFlops)
	}
}

func TestRunDenseCholeskyEDRAMRecovery(t *testing.T) {
	// Figure 8: Broadwell Cholesky with oversized tiles is DDR bound;
	// eDRAM recovers it toward the compute ceiling while the peak
	// moves only a few percent (Table 4: 184.3 -> 192.6).
	brd := platform.Broadwell()
	ddr := MustMachine(brd, memsim.ModeDDR).MustRunDense(trace.DenseCholesky, 16128, 4096)
	ed := MustMachine(brd, memsim.ModeEDRAM).MustRunDense(trace.DenseCholesky, 16128, 4096)
	if ed.GFlops < ddr.GFlops*1.1 {
		t.Fatalf("eDRAM should recover oversized-tile Cholesky: %v vs %v", ed.GFlops, ddr.GFlops)
	}
	dBest := MustMachine(brd, memsim.ModeDDR).MustRunDense(trace.DenseCholesky, 16128, 512)
	if dBest.GFlops < 160 || dBest.GFlops > 230 {
		t.Fatalf("Broadwell Cholesky best = %v, want ~190", dBest.GFlops)
	}
}

func TestRunDenseErrors(t *testing.T) {
	m := MustMachine(platform.Broadwell(), memsim.ModeDDR)
	if _, err := m.RunDense(trace.DenseGEMM, 0, 64); err == nil {
		t.Fatal("zero order accepted")
	}
}

// TestRunOnPooledSimMatchesRun proves the pooled-simulator path is
// bit-identical to the allocate-per-run path across machines and
// workloads — the invariant that lets sweeps reuse simulators.
func TestRunOnPooledSimMatchesRun(t *testing.T) {
	brd := platform.Broadwell()
	machines, err := Machines(brd)
	if err != nil {
		t.Fatal(err)
	}
	spec := sparse.Collection()[40]
	mat := spec.Instantiate(brd.Scale)
	workloads := []trace.Workload{
		trace.NewStream(brd.ScaledBytes(64 << 20)),
		&trace.SpMV{M: mat},
		trace.NewFFT(brd.ScaledBytes(32 << 20)),
	}
	for _, m := range machines {
		sim, err := memsim.NewSim(m.Config())
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workloads {
			fresh, err := m.Run(w)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Label(), w.Name(), err)
			}
			pooled, err := m.RunOn(sim, w) // same sim reused across cells
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Label(), w.Name(), err)
			}
			if fresh != pooled {
				t.Errorf("%s/%s: pooled sim diverged:\nfresh:  %+v\npooled: %+v",
					m.Label(), w.Name(), fresh, pooled)
			}
		}
	}
}

// TestRunOnRejectsMismatchedSim checks a simulator built for another
// configuration is refused instead of silently producing wrong traffic.
func TestRunOnRejectsMismatchedSim(t *testing.T) {
	brd := platform.Broadwell()
	ddr := MustMachine(brd, memsim.ModeDDR)
	ed := MustMachine(brd, memsim.ModeEDRAM)
	sim, err := memsim.NewSim(ddr.Config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ed.RunOn(sim, trace.NewStream(1<<20)); err == nil {
		t.Fatal("mismatched simulator accepted")
	}
	if _, err := ed.RunOn(nil, trace.NewStream(1<<20)); err == nil {
		t.Fatal("nil simulator accepted")
	}
}

// TestRunBatchMatchesSequential proves the parallel batch produces the
// sequential path's results in submission order, and that a failing
// job is isolated without poisoning its worker's pooled simulator.
func TestRunBatchMatchesSequential(t *testing.T) {
	brd := platform.Broadwell()
	machines, err := Machines(brd)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for _, m := range machines {
		for _, mb := range []int64{8, 32, 96} {
			jobs = append(jobs, Job{Machine: m, Workload: trace.NewStream(brd.ScaledBytes(mb << 20))})
		}
	}
	want := make([]memsim.Result, len(jobs))
	for i, j := range jobs {
		r, err := j.Machine.Run(j.Workload)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, workers := range []int{1, 4} {
		got, err := RunBatch(context.Background(), &sweep.Engine{Workers: workers}, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d job %d: %+v != %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunBatchIsolatesFailures injects a bad job between good ones on a
// single worker: the good jobs must still match the sequential results
// exactly (the pooled simulator was not poisoned), and the bad job must
// surface as a sweep.JobError at its submission index.
func TestRunBatchIsolatesFailures(t *testing.T) {
	brd := platform.Broadwell()
	m := MustMachine(brd, memsim.ModeEDRAM)
	good := trace.NewStream(brd.ScaledBytes(64 << 20))
	jobs := []Job{
		{Machine: m, Workload: good},
		{Machine: m, Workload: fakeWorkload{}}, // unknown kernel: props error after simulating
		{Machine: m, Workload: good},
	}
	got, err := RunBatch(context.Background(), &sweep.Engine{Workers: 1}, jobs)
	var errs sweep.Errors
	if !errors.As(err, &errs) || len(errs) != 1 || errs[0].Index != 1 {
		t.Fatalf("want one JobError at index 1, got %v", err)
	}
	want, err2 := m.Run(good)
	if err2 != nil {
		t.Fatal(err2)
	}
	if got[0] != want || got[2] != want {
		t.Fatalf("failing job poisoned its worker's pooled sim: %+v / %+v vs %+v", got[0], got[2], want)
	}
	if got[1] != (memsim.Result{}) {
		t.Fatalf("failed job should yield zero result, got %+v", got[1])
	}
}

// TestRunDenseBatchMatchesSequential checks the analytic dense batch
// against direct RunDense calls.
func TestRunDenseBatchMatchesSequential(t *testing.T) {
	knl := platform.KNL()
	machines, err := Machines(knl)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []DenseJob
	for _, m := range machines {
		for _, nb := range []int{256, 1024} {
			jobs = append(jobs, DenseJob{Machine: m, Kind: trace.DenseGEMM, N: 8192, NB: nb})
		}
	}
	got, err := RunDenseBatch(context.Background(), &sweep.Engine{Workers: 3}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		want, err := j.Machine.RunDense(j.Kind, j.N, j.NB)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("job %d: %+v != %+v", i, got[i], want)
		}
	}
}
