package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/faultinject"
	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// This file is the result-validation gate: every sweep cell passes
// through it between simulation and the report/store. The gate checks
// the simulator invariants (memsim.Sim.CheckInvariants) and the
// evaluated result's own consistency (memsim.Result.Validate); a
// violation quarantines the result — it is returned as a retryable
// resilience.QuarantineError, never committed to the persistent store,
// and never rendered into a figure. The gate is also where the fault
// injector's "result" chaos point lands: InjectResult corrupts a
// just-computed result so the chaos suite can prove the gate catches
// it.

// CellKey is the stable identity of one sweep cell at the result
// injection point: deterministic across runs and worker schedules.
func CellKey(m *Machine, workload string, flops float64) string {
	return fmt.Sprintf("%s|%s|%g", workload, m.Label(), flops)
}

// InjectResult fires the "result" chaos point for key and, when it
// fires, corrupts r in a way the validation gate must catch (NaN
// throughput). No-op on a nil injector.
func InjectResult(ctx context.Context, inj *faultinject.Injector, key string, r *memsim.Result) {
	if inj.Result(ctx, key) {
		r.GFlops = math.NaN()
	}
}

// RunCell is the gated version of RunOn for sweep workers: pooled
// simulator, simulate + evaluate, result-corruption injection, then the
// invariant gate. On a model error the worker's pooled simulator is
// evicted (it may be inconsistent); on a gate violation the result is
// quarantined. On success the simulator's counters are recorded into
// reg. key identifies the cell to the injector and the quarantine
// record; eng supplies the injector (eng and its fields may be nil).
func (m *Machine) RunCell(ctx context.Context, eng *sweep.Engine, w *sweep.Worker, wl trace.Workload, key string) (memsim.Result, error) {
	var inj *faultinject.Injector
	var reg *obs.Registry
	if eng != nil {
		inj, reg = eng.Inject, eng.Obs
	}
	sim, err := m.PooledSim(w)
	if err != nil {
		return memsim.Result{}, err
	}
	r, err := m.RunOn(sim, wl)
	if err != nil {
		w.Drop(m.cfg)
		return memsim.Result{}, fmt.Errorf("core: %s on %s: %w", wl.Name(), m.Label(), err)
	}
	InjectResult(ctx, inj, key, &r)
	if verr := sim.CheckInvariants(); verr != nil {
		// A failed simulator invariant means the pooled state itself is
		// suspect: evict it so the retry rebuilds cold.
		w.Drop(m.cfg)
		obs.TraceEvent(ctx, obs.EvGate, "quarantine")
		return memsim.Result{}, resilience.Quarantine(key, verr)
	}
	if verr := r.Validate(); verr != nil {
		obs.TraceEvent(ctx, obs.EvGate, "quarantine")
		return memsim.Result{}, resilience.Quarantine(key, verr)
	}
	obs.TraceEvent(ctx, obs.EvGate, "ok")
	sim.RecordMetrics(reg)
	return r, nil
}

// GateResult applies the result gate to one cell whose simulator is
// out of reach (analytic dense cells, the power figure's representative
// runs): inject, then validate the result-level invariants only.
func GateResult(ctx context.Context, inj *faultinject.Injector, key string, r *memsim.Result) error {
	InjectResult(ctx, inj, key, r)
	if verr := r.Validate(); verr != nil {
		obs.TraceEvent(ctx, obs.EvGate, "quarantine")
		return resilience.Quarantine(key, verr)
	}
	obs.TraceEvent(ctx, obs.EvGate, "ok")
	return nil
}
