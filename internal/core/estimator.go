package core

import (
	"context"
	"fmt"

	"repro/internal/faultinject"
	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Estimator is the pluggable evaluation policy behind every sweep
// cell. The harness runners and batch entry points are written against
// this interface, not against the per-access simulator, so the same
// figure can be produced by the exact simulation (Exact), by the
// analytic stepping twin (internal/twin), or by an escalation policy
// mixing the two.
//
// Mode and Version together are the estimator's identity in the
// persistent result store: digests of non-exact estimators fold both
// in, so a twin-computed cell can never alias an exact one in the
// content-addressed journal (DESIGN.md §11). Implementations must be
// deterministic — the same job must produce the same Result bytes
// regardless of worker count or scheduling — and safe for concurrent
// use from sweep workers.
type Estimator interface {
	// Mode names the policy: "exact", "twin" or "auto".
	Mode() string
	// Version names the model generation producing the numbers (the
	// exact estimator returns ModelVersion). Any change that alters a
	// result must bump it, exactly like ModelVersion.
	Version() string
	// EstimateCell evaluates one trace-simulation cell: workload wl on
	// machine m. w is the sweep worker owning pooled simulators (may
	// be nil for estimators that do not simulate); key identifies the
	// cell to the fault injector and the quarantine record. Every
	// implementation must pass its result through the validation gate.
	EstimateCell(ctx context.Context, eng *sweep.Engine, w *sweep.Worker, m *Machine, wl trace.Workload, key string) (memsim.Result, error)
	// EstimateDense evaluates one analytic dense-model cell.
	EstimateDense(ctx context.Context, eng *sweep.Engine, j DenseJob, key string) (memsim.Result, error)
}

// Exact is the shared exact estimator: the per-access hierarchy
// simulation plus Stepping-model timing the repo has always run. It is
// the default wherever an Estimator is optional.
var Exact Estimator = ExactEstimator{}

// ExactEstimator wraps the existing per-access simulation path behind
// the Estimator interface. It is byte-identical to the pre-interface
// direct path (RunCell / RunDense + gate) — proven by the regression
// tests — and keeps the historical store-digest layout, so warm stores
// written before the refactor stay valid.
type ExactEstimator struct{}

// Mode returns "exact".
func (ExactEstimator) Mode() string { return "exact" }

// Version returns ModelVersion: the exact estimator is the model the
// digest scheme has always named.
func (ExactEstimator) Version() string { return ModelVersion }

// EstimateCell runs the gated simulation path: pooled simulator,
// simulate + evaluate, result-corruption injection, invariant gate.
func (ExactEstimator) EstimateCell(ctx context.Context, eng *sweep.Engine, w *sweep.Worker, m *Machine, wl trace.Workload, key string) (memsim.Result, error) {
	obs.TraceEvent(ctx, obs.EvEstimator, "exact")
	return m.RunCell(ctx, eng, w, wl, key)
}

// EstimateDense evaluates the analytic dense model and applies the
// result-level gate.
func (ExactEstimator) EstimateDense(ctx context.Context, eng *sweep.Engine, j DenseJob, key string) (memsim.Result, error) {
	obs.TraceEvent(ctx, obs.EvEstimator, "exact")
	var inj *faultinject.Injector
	if eng != nil {
		inj = eng.Inject
	}
	r, err := j.Machine.RunDense(j.Kind, j.N, j.NB)
	if err != nil {
		return memsim.Result{}, fmt.Errorf("core: %s n=%d nb=%d on %s: %w", j.Kind, j.N, j.NB, j.Machine.Label(), err)
	}
	if gerr := GateResult(ctx, inj, key, &r); gerr != nil {
		return memsim.Result{}, gerr
	}
	return r, nil
}

// DenseCellKey is the stable identity of one dense analytic cell at
// the result injection point — the dense counterpart of CellKey.
func DenseCellKey(j DenseJob) string {
	return fmt.Sprintf("%s|n=%d|nb=%d|%s", j.Kind, j.N, j.NB, j.Machine.Label())
}

// RunBatchWith is RunBatchCached with an explicit estimator: every
// cell is evaluated by est instead of the exact simulation. A nil
// estimator means Exact, reproducing RunBatchCached exactly.
func RunBatchWith(ctx context.Context, eng *sweep.Engine, jobs []Job, cache sweep.Cache[Job, memsim.Result], est Estimator) ([]memsim.Result, error) {
	if est == nil {
		est = Exact
	}
	return sweep.MapCached(ctx, eng, jobs, cache, func(ctx context.Context, w *sweep.Worker, j Job) (memsim.Result, error) {
		key := CellKey(j.Machine, j.Workload.Name(), j.Workload.Flops())
		return est.EstimateCell(ctx, eng, w, j.Machine, j.Workload, key)
	})
}

// RunDenseBatchWith is RunDenseBatchCached with an explicit estimator;
// a nil estimator means Exact.
func RunDenseBatchWith(ctx context.Context, eng *sweep.Engine, jobs []DenseJob, cache sweep.Cache[DenseJob, memsim.Result], est Estimator) ([]memsim.Result, error) {
	if est == nil {
		est = Exact
	}
	return sweep.MapCached(ctx, eng, jobs, cache, func(ctx context.Context, _ *sweep.Worker, j DenseJob) (memsim.Result, error) {
		return est.EstimateDense(ctx, eng, j, DenseCellKey(j))
	})
}
