// Package core is the evaluation engine of the reproduction — the
// paper's methodology as a reusable library. A Machine pairs a
// platform (Table 3) with a memory mode (Table 1); Run drives a kernel
// workload through the hierarchy simulator and the Stepping-model
// timing evaluation; RunDense evaluates the analytic tiled-traffic
// model for the paper-scale GEMM/Cholesky sweeps.
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/memsim"
	"repro/internal/platform"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// ModelVersion names the current generation of the simulator + timing
// model. It is the first component of every persistent-store digest,
// so bumping it (required whenever a change to memsim, trace, or the
// tuning tables alters any result) invalidates all previously cached
// results at once instead of serving numbers the current model would
// not reproduce.
const ModelVersion = "opm-model/1"

// Tuning carries the per-kernel model parameters of Table 2 and the
// timing model: thread policy (SMT column), memory-level parallelism,
// and per-platform compute efficiency (how close the benchmarked
// implementation sits to theoretical peak when compute bound).
type Tuning struct {
	SMT bool    // use SMT thread counts (8 on Broadwell, 256 on KNL)
	MLP float64 // per-thread outstanding misses at full ramp
	Eff map[string]float64
}

// DefaultTuning returns the kernel tuning table. Efficiencies are
// calibrated against the paper's best observed GFlop/s (Tables 4, 5):
// e.g. GEMM 0.90·236.8 ≈ 206 on Broadwell, 0.50·3072 ≈ 1540 on KNL.
func DefaultTuning() map[string]Tuning {
	return map[string]Tuning{
		"GEMM":     {SMT: false, MLP: 8, Eff: map[string]float64{"broadwell": 0.90, "knl": 0.52, "skylake": 0.90}},
		"Cholesky": {SMT: false, MLP: 8, Eff: map[string]float64{"broadwell": 0.84, "knl": 0.42, "skylake": 0.84}},
		// Sparse kernels are gather/scatter-rate limited, not FMA
		// limited: their "compute" ceilings encode the measured
		// in-cache bests (Tables 4/5: SpMV 9.6/46.5, SpTRANS
		// 21.8/5.2, SpTRSV ~70/38.8 GFlop/s by the paper's operation
		// accounting).
		"SpMV":    {SMT: true, MLP: 4, Eff: map[string]float64{"broadwell": 0.042, "knl": 0.016, "skylake": 0.045}},
		"SpTRANS": {SMT: false, MLP: 4, Eff: map[string]float64{"broadwell": 0.092, "knl": 0.0017, "skylake": 0.095}},
		"SpTRSV":  {SMT: true, MLP: 0.6, Eff: map[string]float64{"broadwell": 0.30, "knl": 0.0126, "skylake": 0.30}},
		"FFT":     {SMT: true, MLP: 4, Eff: map[string]float64{"broadwell": 0.20, "knl": 0.05, "skylake": 0.21}},
		"Stencil": {SMT: true, MLP: 6, Eff: map[string]float64{"broadwell": 0.27, "knl": 0.27, "skylake": 0.28}},
		"Stream":  {SMT: true, MLP: 8, Eff: map[string]float64{"broadwell": 0.80, "knl": 0.80, "skylake": 0.80}},
	}
}

// Machine is one platform in one memory mode — the unit the paper's
// per-figure sweeps iterate over.
type Machine struct {
	Plat   *platform.Platform
	Mode   memsim.Mode
	cfg    memsim.Config
	tuning map[string]Tuning
}

// NewMachine builds a machine, validating that the platform supports
// the mode (Table 1).
func NewMachine(p *platform.Platform, mode memsim.Mode) (*Machine, error) {
	cfg, err := p.Config(mode)
	if err != nil {
		return nil, err
	}
	return &Machine{Plat: p, Mode: mode, cfg: cfg, tuning: DefaultTuning()}, nil
}

// MustMachine is NewMachine that panics on error.
//
// Deprecated: retained for examples and tests. Library and harness
// code should call NewMachine and surface the error.
func MustMachine(p *platform.Platform, mode memsim.Mode) *Machine {
	m, err := NewMachine(p, mode)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine's simulator configuration.
func (m *Machine) Config() memsim.Config { return m.cfg }

// Label returns "platform/mode" for reports.
func (m *Machine) Label() string { return m.Plat.Name + "/" + m.Mode.String() }

// KernelProps builds the timing-model properties for a named kernel
// and operation count from the machine's tuning table — the hook
// analytic estimators (internal/twin) share with the exact path.
func (m *Machine) KernelProps(name string, flops float64) (memsim.KernelProps, error) {
	return m.props(name, flops)
}

// WorkloadProps is KernelProps for one workload, including the
// dependency-parallelism thread clamp (SpTRSV's level schedule).
func (m *Machine) WorkloadProps(w trace.Workload) (memsim.KernelProps, error) {
	props, err := m.props(w.Name(), w.Flops())
	if err != nil {
		return memsim.KernelProps{}, err
	}
	if pl, ok := w.(parallelismLimited); ok {
		avg := pl.AvgParallelism()
		if avg < 1 {
			avg = 1
		}
		if t := int(math.Ceil(avg)); t < props.Threads {
			props.Threads = t
		}
	}
	return props, nil
}

// props builds the timing-model kernel properties for a workload.
func (m *Machine) props(name string, flops float64) (memsim.KernelProps, error) {
	t, ok := m.tuning[name]
	if !ok {
		return memsim.KernelProps{}, fmt.Errorf("core: no tuning for kernel %q", name)
	}
	eff, ok := t.Eff[m.Plat.Name]
	if !ok {
		return memsim.KernelProps{}, fmt.Errorf("core: kernel %q has no efficiency for platform %q", name, m.Plat.Name)
	}
	return memsim.KernelProps{
		Name:    name,
		Flops:   flops,
		Threads: m.Plat.Threads(t.SMT),
		MLP:     t.MLP,
		Eff:     eff,
	}, nil
}

// parallelismLimited is implemented by workloads whose usable thread
// count is throttled by the input (SpTRSV's dependency levels).
type parallelismLimited interface {
	AvgParallelism() float64
}

// Run simulates one workload on the machine and evaluates it.
func (m *Machine) Run(w trace.Workload) (memsim.Result, error) {
	sim, err := memsim.NewSim(m.cfg)
	if err != nil {
		return memsim.Result{}, err
	}
	return m.RunOn(sim, w)
}

// RunOn is Run on a caller-provided simulator, which is Reset first so
// a pooled simulator reproduces a fresh one's behaviour exactly. The
// simulator must have been built from this machine's configuration.
func (m *Machine) RunOn(sim *memsim.Sim, w trace.Workload) (memsim.Result, error) {
	if sim == nil {
		return memsim.Result{}, fmt.Errorf("core: %s: nil simulator", m.Label())
	}
	if sim.Config() != m.cfg {
		return memsim.Result{}, fmt.Errorf("core: simulator config %s/%s does not match machine %s",
			sim.Config().Name, sim.Config().Mode, m.Label())
	}
	sim.Reset()
	w.Simulate(sim)
	props, err := m.WorkloadProps(w)
	if err != nil {
		return memsim.Result{}, err
	}
	return memsim.Evaluate(&m.cfg, sim.Traffic(), props)
}

// PooledSim returns the sweep worker's reusable simulator for this
// machine's configuration, building it on first use. Paired with
// RunOn's Reset, one simulator per (worker, configuration) serves an
// entire sweep without re-allocating cache arrays per cell.
func (m *Machine) PooledSim(w *sweep.Worker) (*memsim.Sim, error) {
	v, err := w.Get(m.cfg, func() (any, error) { return memsim.NewSim(m.cfg) })
	if err != nil {
		return nil, err
	}
	return v.(*memsim.Sim), nil
}

// MustRun is Run that panics on error.
//
// Deprecated: retained for examples and tests. Library and harness
// code should call Run (or RunBatch) and surface the error.
func (m *Machine) MustRun(w trace.Workload) memsim.Result {
	r, err := m.Run(w)
	if err != nil {
		panic(err)
	}
	return r
}

// RunDense evaluates the analytic dense model (GEMM or Cholesky heat
// maps) for order n and tile size nb at paper scale.
func (m *Machine) RunDense(kind trace.DenseKind, n, nb int) (memsim.Result, error) {
	model := trace.DenseModel{Kind: kind, N: n, NB: nb}
	cfg := trace.UnscaledConfig(m.cfg)
	tr, err := model.Traffic(&cfg)
	if err != nil {
		return memsim.Result{}, err
	}
	props, err := m.props(kind.String(), model.Flops())
	if err != nil {
		return memsim.Result{}, err
	}
	props.Eff *= model.TileEff() * model.SizeEff(m.Plat.Cores)
	return memsim.Evaluate(&cfg, tr, props)
}

// MustRunDense is RunDense that panics on error.
//
// Deprecated: retained for examples and tests. Library and harness
// code should call RunDense (or RunDenseBatch) and surface the error.
func (m *Machine) MustRunDense(kind trace.DenseKind, n, nb int) memsim.Result {
	r, err := m.RunDense(kind, n, nb)
	if err != nil {
		panic(err)
	}
	return r
}

// Machines builds one Machine per supported mode of a platform, in
// Table 1 order.
func Machines(p *platform.Platform) ([]*Machine, error) {
	out := make([]*Machine, 0, len(p.Modes))
	for _, mode := range p.Modes {
		m, err := NewMachine(p, mode)
		if err != nil {
			return nil, fmt.Errorf("core: machines for %s: %w", p.Name, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// Job is one trace-simulation cell of a batch sweep: a workload on a
// machine. When one Workload value is shared between jobs it is only
// read during Simulate, so the built-in trace generators are safe to
// share; stateful custom workloads should be one-per-job.
type Job struct {
	Machine  *Machine
	Workload trace.Workload
}

// DenseJob is one analytic dense-model cell of a batch sweep.
type DenseJob struct {
	Machine *Machine
	Kind    trace.DenseKind
	N, NB   int
}

// RunBatch executes trace-simulation jobs on the sweep engine and
// returns their results in submission order. Each worker pools one
// simulator per machine configuration; a failed job yields a zero
// Result plus a sweep.JobError without stopping the sweep, and a
// failure evicts that worker's pooled simulator so the next job
// rebuilds it cold. With eng.Obs set, each finished job's per-level
// cache and traffic counters are accumulated into the registry
// (memsim.Sim.RecordMetrics).
func RunBatch(ctx context.Context, eng *sweep.Engine, jobs []Job) ([]memsim.Result, error) {
	return RunBatchCached(ctx, eng, jobs, nil)
}

// RunBatchCached is RunBatch with a persistent-store hook: jobs whose
// digest is cached bypass simulation entirely, and every simulated
// job is committed as it completes (see sweep.MapCached). A nil cache
// reproduces RunBatch exactly. Every simulated cell passes through the
// result gate (RunCell): invariant violations quarantine the result
// instead of committing it.
func RunBatchCached(ctx context.Context, eng *sweep.Engine, jobs []Job, cache sweep.Cache[Job, memsim.Result]) ([]memsim.Result, error) {
	return RunBatchWith(ctx, eng, jobs, cache, Exact)
}

// RunDenseBatch executes analytic dense-model jobs on the sweep engine
// and returns their results in submission order.
func RunDenseBatch(ctx context.Context, eng *sweep.Engine, jobs []DenseJob) ([]memsim.Result, error) {
	return RunDenseBatchCached(ctx, eng, jobs, nil)
}

// RunDenseBatchCached is RunDenseBatch with a persistent-store hook;
// a nil cache reproduces RunDenseBatch exactly. Results pass through
// the analytic half of the result gate (GateResult) before committing.
func RunDenseBatchCached(ctx context.Context, eng *sweep.Engine, jobs []DenseJob, cache sweep.Cache[DenseJob, memsim.Result]) ([]memsim.Result, error) {
	return RunDenseBatchWith(ctx, eng, jobs, cache, Exact)
}
