// Package faultinject is the deterministic chaos layer of the sweep
// pipeline: a seedable injector with named injection points that the
// engine, the result gate, and the store journal consult. Production
// runs pass a nil *Injector and pay one pointer comparison per site;
// chaos runs (opmbench -faults, the chaos test suite) parse a spec
// like
//
//	seed=7,job:transient@0.1,job:panic@0.02x1,job:delay@0.2=2ms,
//	result:corrupt@0.05,store:torn@0.5,store:corrupt@0.25
//
// and get fully reproducible faults: whether a fault fires is a pure
// function of (seed, point, job key, attempt), never of wall clock,
// scheduling, or a shared RNG — so a faulty sweep runs identically no
// matter how many workers race through it, which is what lets the
// chaos suite assert byte-identical reports.
//
// Injection points and their kinds:
//
//	job     transient | permanent | panic | delay   (sweep.Map, pre-fn)
//	result  corrupt                                 (core result gate)
//	store   torn | corrupt                          (store.Put framing)
//	proc    kill | hang | torn                      (shard worker loop)
//	coord   crash                                   (shard coordinator)
//
// The proc and coord points are process-level (internal/shard): a
// fired proc:kill exits the worker process abruptly (kill -9),
// proc:hang stops its heartbeat and blocks forever (the supervisor
// must detect the stall and kill it), proc:torn leaves a torn frame at
// the tail of the worker's shard journal before dying, and coord:crash
// makes the coordinator itself die mid-sweep (resume is the recovery
// path under test). Their attempt number is the process restart
// generation, so — like job faults — they heal on restart by default.
//
// Every injected fault except store:corrupt heals on retry by default:
// a rule fires only while the attempt number is below its count
// (default 1), so "transient faults + retries produce byte-identical
// reports" holds by construction. A permanent rule never heals
// (count ∞) — it is the exhaustion/breaker test vector.
package faultinject

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// Kind is the failure mode of one injection rule.
type Kind int

// Fault kinds. KindNone is the zero value ("no fault fired").
const (
	KindNone Kind = iota
	KindTransient
	KindPermanent
	KindPanic
	KindDelay
	KindCorrupt
	KindTorn
	KindKill
	KindHang
	KindCrash
)

// String returns the spec-grammar name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindTransient:
		return "transient"
	case KindPermanent:
		return "permanent"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindCorrupt:
		return "corrupt"
	case KindTorn:
		return "torn"
	case KindKill:
		return "kill"
	case KindHang:
		return "hang"
	case KindCrash:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Injection point names.
const (
	PointJob    = "job"
	PointResult = "result"
	PointStore  = "store"
	PointProc   = "proc"
	PointCoord  = "coord"
)

// kindsByPoint lists the kinds each point accepts (spec validation).
var kindsByPoint = map[string][]Kind{
	PointJob:    {KindTransient, KindPermanent, KindPanic, KindDelay},
	PointResult: {KindCorrupt},
	PointStore:  {KindTorn, KindCorrupt},
	PointProc:   {KindKill, KindHang, KindTorn},
	PointCoord:  {KindCrash},
}

// rule is one parsed clause: fire kind at point with probability rate,
// for attempts below count, with an optional delay parameter.
type rule struct {
	kind  Kind
	rate  float64
	count int // attempts that fault; <0 = every attempt (permanent)
	delay time.Duration
	salt  uint64 // distinguishes same-point rules' random streams
	fired *obs.Counter
}

// InjectedPanic is the value injected panics throw. The sweep engine's
// recover treats it as a transient failure (retryable), unlike a real
// panic, which stays permanent — a deterministic bug would only panic
// again.
type InjectedPanic struct{ Key string }

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic (job %s)", p.Key)
}

// Injector decides, deterministically, which operations fault. A nil
// *Injector is the production off switch: every method no-ops after a
// single nil check, and the nil-injector benchmark holds that path to
// the cost of the check.
type Injector struct {
	seed  uint64
	rules map[string][]rule
	reg   *obs.Registry
}

// New returns an empty injector with the given decision seed.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, rules: map[string][]rule{}}
}

// Seed returns the injector's decision seed (0 on nil).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Enabled reports whether any rule is registered at point.
func (in *Injector) Enabled(point string) bool {
	return in != nil && len(in.rules[point]) > 0
}

// Add registers a rule: at point, fault with kind at the given rate
// (fraction of keys in [0,1]), for the first count attempts (count <=
// 0 means every attempt), with delay as the KindDelay sleep.
func (in *Injector) Add(point string, kind Kind, rate float64, count int, delay time.Duration) error {
	if in == nil {
		return fmt.Errorf("faultinject: Add on nil injector")
	}
	kinds, ok := kindsByPoint[point]
	if !ok {
		return fmt.Errorf("faultinject: unknown injection point %q (have job, result, store, proc, coord)", point)
	}
	valid := false
	for _, k := range kinds {
		valid = valid || k == kind
	}
	if !valid {
		return fmt.Errorf("faultinject: point %q does not accept kind %q", point, kind)
	}
	if math.IsNaN(rate) || rate < 0 || rate > 1 {
		return fmt.Errorf("faultinject: rate %v out of [0,1]", rate)
	}
	if kind == KindPermanent {
		count = -1 // never heals
	} else if count == 0 {
		count = 1
	}
	r := rule{kind: kind, rate: rate, count: count, delay: delay,
		salt: uint64(len(in.rules[point]) + 1)}
	r.fired = in.reg.Counter("fault/" + point + "_" + kind.String()) //opmlint:allow counternames — point and kind are closed enums validated above; the full fault/<point>_<kind> namespace is enumerable
	in.rules[point] = append(in.rules[point], r)
	return nil
}

// Bind attaches the registry the per-rule fired counters publish to
// (fault/<point>_<kind>). Call before injecting; re-binding re-resolves
// every counter.
func (in *Injector) Bind(reg *obs.Registry) {
	if in == nil {
		return
	}
	in.reg = reg
	for point, rules := range in.rules {
		for i := range rules {
			rules[i].fired = reg.Counter("fault/" + point + "_" + rules[i].kind.String()) //opmlint:allow counternames — point and kind are closed enums validated at AddRule; the full fault/<point>_<kind> namespace is enumerable
		}
		in.rules[point] = rules
	}
}

// pick returns the first rule at point that fires for (key, attempt).
// The decision hashes (seed, point, rule salt, key): a keyed uniform
// draw below rate selects the key, and the attempt gate decides
// whether this try still faults.
func (in *Injector) pick(point, key string, attempt int) (rule, bool) {
	for _, r := range in.rules[point] {
		if r.count >= 0 && attempt >= r.count {
			continue
		}
		u := float64(resilience.Hash64(in.seed, point, r.salt, key)%(1<<20)) / (1 << 20)
		if u < r.rate {
			return r, true
		}
	}
	return rule{}, false
}

// Job fires the "job" point for one sweep-job attempt. It returns nil
// (no fault), sleeps and returns nil (delay), returns a transient- or
// permanent-classified error, or panics with an InjectedPanic. The
// attempt number comes from the context (resilience.WithAttempt).
func (in *Injector) Job(ctx context.Context, key string) error {
	if in == nil {
		return nil
	}
	r, ok := in.pick(PointJob, key, resilience.Attempt(ctx))
	if !ok {
		return nil
	}
	r.fired.Inc()
	obs.TraceEvent(ctx, obs.EvFault, PointJob+":"+r.kind.String())
	switch r.kind {
	case KindTransient:
		return resilience.MarkTransient(fmt.Errorf("faultinject: injected transient fault (job %s)", key))
	case KindPermanent:
		return fmt.Errorf("faultinject: injected permanent fault (job %s)", key)
	case KindPanic:
		panic(InjectedPanic{Key: key})
	case KindDelay:
		t := time.NewTimer(r.delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
		case <-t.C:
		}
		return nil
	}
	return nil
}

// Result fires the "result" point: true means the caller must corrupt
// the just-computed result (the validation gate's chaos vector).
func (in *Injector) Result(ctx context.Context, key string) bool {
	if in == nil {
		return false
	}
	r, ok := in.pick(PointResult, key, resilience.Attempt(ctx))
	if ok {
		r.fired.Inc()
		obs.TraceEvent(ctx, obs.EvFault, PointResult+":"+r.kind.String())
	}
	return ok
}

// Proc fires the "proc" point for one shard-worker cell, keyed by the
// cell's job key with the worker's restart generation as the attempt
// number — so a default-count rule kills (or hangs, or tears) the
// process once and heals on the supervised restart. The caller (the
// shard worker loop) owns the process-level consequence: KindKill
// exits abruptly, KindHang stops heartbeating and blocks, KindTorn
// leaves a torn frame at the shard journal's tail before dying.
func (in *Injector) Proc(key string, generation int) Kind {
	if in == nil {
		return KindNone
	}
	r, ok := in.pick(PointProc, key, generation)
	if !ok {
		return KindNone
	}
	r.fired.Inc()
	return r.kind
}

// Coord fires the "coord" point for the shard coordinator itself,
// keyed by the coordinator's restart generation — a default-count
// crash rule kills the first incarnation mid-sweep and lets the
// resumed one finish. The caller owns the consequence (abandoning the
// run without cleanup).
func (in *Injector) Coord(generation int) bool {
	if in == nil {
		return false
	}
	r, ok := in.pick(PointCoord, "coord", generation)
	if ok {
		r.fired.Inc()
	}
	return ok
}

// StoreWrite fires the "store" point for one journal append, keyed by
// the record digest: KindTorn simulates a short write (crash
// mid-append), KindCorrupt flips payload bits after framing (silent
// media damage, caught by the CRC on replay), KindNone leaves the
// write alone. Store writes are not attempts, so rules fire on every
// matching Put.
func (in *Injector) StoreWrite(key string) Kind {
	if in == nil {
		return KindNone
	}
	r, ok := in.pick(PointStore, key, 0)
	if !ok {
		return KindNone
	}
	r.fired.Inc()
	return r.kind
}

// Parse builds an injector from a -faults spec: comma-separated
// clauses of "seed=N" or "point:kind@rate[xCOUNT][=DELAY]". See the
// package comment for the grammar and an example.
func Parse(spec string) (*Injector, error) {
	in := New(1)
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", rest, err)
			}
			in.seed = seed
			continue
		}
		point, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q: want point:kind@rate", clause)
		}
		kindStr, rest, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q: missing @rate", clause)
		}
		var kind Kind
		for k := KindTransient; k <= KindCrash; k++ {
			if k.String() == kindStr {
				kind = k
			}
		}
		if kind == KindNone {
			return nil, fmt.Errorf("faultinject: clause %q: unknown kind %q", clause, kindStr)
		}
		var delay time.Duration
		if rateStr, delayStr, ok := strings.Cut(rest, "="); ok {
			d, err := time.ParseDuration(delayStr)
			if err != nil {
				return nil, fmt.Errorf("faultinject: clause %q: bad delay: %v", clause, err)
			}
			delay, rest = d, rateStr
		}
		count := 0
		if rateStr, countStr, ok := strings.Cut(rest, "x"); ok {
			c, err := strconv.Atoi(countStr)
			if err != nil || c < 1 {
				return nil, fmt.Errorf("faultinject: clause %q: bad count %q", clause, countStr)
			}
			count, rest = c, rateStr
		}
		rate, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: clause %q: bad rate %q: %v", clause, rest, err)
		}
		if kind == KindDelay && delay <= 0 {
			return nil, fmt.Errorf("faultinject: clause %q: delay kind needs =DURATION", clause)
		}
		if err := in.Add(point, kind, rate, count, delay); err != nil {
			return nil, fmt.Errorf("faultinject: clause %q: %w", clause, err)
		}
	}
	if total := len(in.rules); total == 0 {
		return nil, fmt.Errorf("faultinject: spec %q has no fault clauses", spec)
	}
	return in, nil
}

// String renders the injector's active rules, one clause per line,
// for the CLI's chaos banner. Empty on nil.
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	var points []string
	for p := range in.rules {
		points = append(points, p)
	}
	sort.Strings(points)
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", in.seed)
	for _, p := range points {
		for _, r := range in.rules[p] {
			fmt.Fprintf(&b, ",%s:%s@%g", p, r.kind, r.rate)
			if r.count > 1 {
				fmt.Fprintf(&b, "x%d", r.count)
			}
			if r.delay > 0 {
				fmt.Fprintf(&b, "=%s", r.delay)
			}
		}
	}
	return b.String()
}
