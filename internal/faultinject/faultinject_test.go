package faultinject

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// TestParseGrammar checks the -faults spec grammar end to end: every
// clause form parses, and the String render round-trips through Parse
// to the same rule set.
func TestParseGrammar(t *testing.T) {
	spec := "seed=9,job:transient@0.25,job:panic@0.05x2,job:delay@0.5=2ms,result:corrupt@0.1,store:torn@0.75,store:corrupt@0.3,proc:kill@0.5,proc:hang@0.2,proc:torn@0.4x2,coord:crash@1"
	in, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 9 {
		t.Fatalf("seed = %d, want 9", in.Seed())
	}
	for _, p := range []string{PointJob, PointResult, PointStore, PointProc, PointCoord} {
		if !in.Enabled(p) {
			t.Fatalf("point %s not enabled", p)
		}
	}
	rendered := in.String()
	in2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("String output %q does not re-parse: %v", rendered, err)
	}
	if in2.String() != rendered {
		t.Fatalf("String round-trip drifted: %q vs %q", in2.String(), rendered)
	}
}

// TestParseRejects pins the spec-validation errors: each malformed
// clause is refused with a diagnostic, never silently dropped.
func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"",                      // no clauses at all
		"seed=7",                // seed only, no faults
		"seed=x,job:panic@0.1",  // bad seed
		"job@0.1",               // missing point:kind
		"job:transient",         // missing @rate
		"job:frobnicate@0.1",    // unknown kind
		"disk:torn@0.1",         // unknown point
		"job:torn@0.1",          // kind not valid at point
		"job:transient@1.5",     // rate out of range
		"job:transient@NaN",     // NaN rate
		"job:transient@0.1x0",   // bad count
		"job:delay@0.1",         // delay without =DURATION
		"job:delay@0.1=fast",    // unparsable duration
		"result:corrupt@squish", // unparsable rate
		"proc:crash@1",          // crash is a coord kind, not proc
		"proc:transient@0.5",    // job kind not valid at proc
		"coord:kill@1",          // kill is a proc kind, not coord
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

// TestFireDecisionsDeterministic checks whether a fault fires is a
// pure function of (seed, point, key): two injectors with the same
// spec agree on every key, and a different seed selects a different
// key set. This is the property the chaos suite's byte-identical
// report assertions rest on.
func TestFireDecisionsDeterministic(t *testing.T) {
	mk := func(seed uint64) *Injector {
		in := New(seed)
		if err := in.Add(PointJob, KindTransient, 0.3, 1, 0); err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b, c := mk(4), mk(4), mk(5)
	ctx := context.Background()
	same, diff := true, false
	fired := 0
	for i := 0; i < 1000; i++ {
		key := strconv.Itoa(i)
		ea, eb, ec := a.Job(ctx, key), b.Job(ctx, key), c.Job(ctx, key)
		if (ea == nil) != (eb == nil) {
			same = false
		}
		if (ea == nil) != (ec == nil) {
			diff = true
		}
		if ea != nil {
			fired++
			if !resilience.Retryable(ea) {
				t.Fatalf("injected transient fault not retryable: %v", ea)
			}
		}
	}
	if !same {
		t.Fatal("same seed disagreed on fire decisions")
	}
	if !diff {
		t.Fatal("different seed fired identically on 1000 keys")
	}
	// The keyed draw should land near the configured rate.
	if fired < 200 || fired > 400 {
		t.Fatalf("rate 0.3 fired %d/1000 times", fired)
	}
}

// TestAttemptHealing checks the retry contract: a rule fires only
// while the attempt number is below its count, and a permanent rule
// never heals.
func TestAttemptHealing(t *testing.T) {
	in := New(3)
	if err := in.Add(PointJob, KindTransient, 1, 2, 0); err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 5; attempt++ {
		ctx := resilience.WithAttempt(context.Background(), attempt)
		err := in.Job(ctx, "k")
		if attempt < 2 && err == nil {
			t.Fatalf("attempt %d: rate-1 count-2 rule did not fire", attempt)
		}
		if attempt >= 2 && err != nil {
			t.Fatalf("attempt %d: fault did not heal: %v", attempt, err)
		}
	}

	perm := New(3)
	if err := perm.Add(PointJob, KindPermanent, 1, 7, 0); err != nil { // count forced to -1
		t.Fatal(err)
	}
	for attempt := 0; attempt < 10; attempt++ {
		ctx := resilience.WithAttempt(context.Background(), attempt)
		err := perm.Job(ctx, "k")
		if err == nil {
			t.Fatalf("permanent fault healed at attempt %d", attempt)
		}
		if resilience.Retryable(err) {
			t.Fatalf("permanent fault classified retryable: %v", err)
		}
	}
}

// TestJobKinds checks each job-point kind produces its failure mode:
// panic throws InjectedPanic, delay sleeps and succeeds, and a
// cancelled context cuts the delay short.
func TestJobKinds(t *testing.T) {
	pan := New(1)
	if err := pan.Add(PointJob, KindPanic, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			p := recover()
			ip, ok := p.(InjectedPanic)
			if !ok || ip.Key != "k" {
				t.Fatalf("recovered %v, want InjectedPanic{k}", p)
			}
			if !strings.Contains(ip.String(), "injected panic") {
				t.Fatalf("InjectedPanic string: %q", ip.String())
			}
		}()
		pan.Job(context.Background(), "k")
		t.Fatal("panic rule did not panic")
	}()

	del := New(1)
	if err := del.Add(PointJob, KindDelay, 1, 1, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := del.Job(context.Background(), "k"); err != nil {
		t.Fatalf("delay fault returned error: %v", err)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("delay fault did not sleep")
	}

	slow := New(1)
	if err := slow.Add(PointJob, KindDelay, 1, 1, time.Hour); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start = time.Now()
	if err := slow.Job(ctx, "k"); err != nil {
		t.Fatalf("cancelled delay returned error: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled context did not cut the injected delay short")
	}
}

// TestStoreWriteAndResult covers the non-job points: StoreWrite
// returns the damage kind (on every Put — store writes are not
// attempts), Result reports corruption, and rates of 0 never fire.
func TestStoreWriteAndResult(t *testing.T) {
	in := New(2)
	if err := in.Add(PointStore, KindTorn, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	// count defaults to 1 but store writes always pass attempt 0, so
	// the rule fires on every matching key.
	for i := 0; i < 3; i++ {
		if k := in.StoreWrite("digest"); k != KindTorn {
			t.Fatalf("StoreWrite #%d = %v, want torn", i, k)
		}
	}

	res := New(2)
	if err := res.Add(PointResult, KindCorrupt, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if !res.Result(context.Background(), "cell") {
		t.Fatal("rate-1 result rule did not fire")
	}
	if res.Result(resilience.WithAttempt(context.Background(), 1), "cell") {
		t.Fatal("result corruption did not heal on retry")
	}

	off := New(2)
	if err := off.Add(PointJob, KindTransient, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if off.Job(context.Background(), strconv.Itoa(i)) != nil {
			t.Fatal("rate-0 rule fired")
		}
	}
}

// TestProcCoordPoints covers the process-level points: Proc returns
// the damage kind keyed by (cell key, restart generation) and heals on
// the supervised restart by default, and Coord fires once for the
// first coordinator incarnation and lets the resumed one finish.
func TestProcCoordPoints(t *testing.T) {
	in := New(6)
	if err := in.Add(PointProc, KindKill, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if k := in.Proc("cell", 0); k != KindKill {
		t.Fatalf("Proc generation 0 = %v, want kill", k)
	}
	if k := in.Proc("cell", 1); k != KindNone {
		t.Fatalf("Proc did not heal on restart generation 1: %v", k)
	}

	// A count-2 rule survives one restart and heals on the second.
	torn := New(6)
	if err := torn.Add(PointProc, KindTorn, 1, 2, 0); err != nil {
		t.Fatal(err)
	}
	for gen, want := range []Kind{KindTorn, KindTorn, KindNone, KindNone} {
		if k := torn.Proc("cell", gen); k != want {
			t.Fatalf("count-2 torn rule at generation %d = %v, want %v", gen, k, want)
		}
	}

	coord := New(6)
	if err := coord.Add(PointCoord, KindCrash, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if !coord.Coord(0) {
		t.Fatal("rate-1 coord crash did not fire for the first incarnation")
	}
	if coord.Coord(1) {
		t.Fatal("coord crash fired again after resume")
	}

	// Proc's keyed draw is a pure function of (seed, key): two
	// injectors with the same spec agree on every key.
	mk := func() *Injector {
		p := New(8)
		if err := p.Add(PointProc, KindKill, 0.5, 1, 0); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	fired := 0
	for i := 0; i < 200; i++ {
		key := strconv.Itoa(i)
		ka, kb := a.Proc(key, 0), b.Proc(key, 0)
		if ka != kb {
			t.Fatalf("same-seed Proc disagreed on key %s: %v vs %v", key, ka, kb)
		}
		if ka == KindKill {
			fired++
		}
	}
	if fired < 60 || fired > 140 {
		t.Fatalf("rate 0.5 proc rule fired %d/200 times", fired)
	}
}

// TestBindCounters checks firing publishes to fault/<point>_<kind>
// once the registry is bound, including rules added before Bind.
func TestBindCounters(t *testing.T) {
	in := New(1)
	if err := in.Add(PointJob, KindTransient, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	in.Bind(reg)
	for i := 0; i < 5; i++ {
		in.Job(context.Background(), strconv.Itoa(i))
	}
	if got := reg.Counter("fault/job_transient").Value(); got != 5 {
		t.Fatalf("fault/job_transient = %d, want 5", got)
	}
}

// TestNilInjector checks the production off switch: every method
// no-ops on nil.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if err := in.Job(context.Background(), "k"); err != nil {
		t.Fatal("nil Job returned error")
	}
	if in.Result(context.Background(), "k") {
		t.Fatal("nil Result fired")
	}
	if in.StoreWrite("k") != KindNone {
		t.Fatal("nil StoreWrite damaged a write")
	}
	if in.Proc("k", 0) != KindNone {
		t.Fatal("nil Proc fired")
	}
	if in.Coord(0) {
		t.Fatal("nil Coord fired")
	}
	if in.Enabled(PointJob) || in.Seed() != 0 || in.String() != "" {
		t.Fatal("nil accessors misbehaved")
	}
	if err := in.Add(PointJob, KindTransient, 1, 1, 0); err == nil {
		t.Fatal("Add on nil injector accepted")
	}
	in.Bind(obs.NewRegistry())
}
