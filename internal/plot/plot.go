// Package plot renders the reproduction's figures as fixed-width text:
// heat maps (Figures 7, 8, 15, 16, 20–22), line/step charts (Figures
// 12–14, 23–25, 6, 28–30), scatter summaries and density curves
// (Figure 1). Output is deliberately plain ASCII so figures land in
// terminals, logs and CSV sidecars without a plotting stack.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// ramp is the intensity ramp used by heat maps, coolest first (the
// paper's blue→red spectrum).
const ramp = " .:-=+*#%@"

// Heatmap renders a [rows][cols] value grid, row 0 at the bottom (like
// the paper's axes). NaN cells render as spaces. Values are normalized
// to the grid's min/max.
func Heatmap(title string, grid [][]float64, xLabel, yLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(grid) == 0 || len(grid[0]) == 0 {
		b.WriteString("(empty)\n")
		return b.String()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range grid {
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		b.WriteString("(all empty)\n")
		return b.String()
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	for r := len(grid) - 1; r >= 0; r-- {
		b.WriteString("  |")
		for _, v := range grid[r] {
			if math.IsNaN(v) {
				b.WriteByte(' ')
				continue
			}
			idx := int((v - lo) / span * float64(len(ramp)-1))
			b.WriteByte(ramp[idx])
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "  +%s+\n", strings.Repeat("-", len(grid[0])))
	fmt.Fprintf(&b, "  x: %s, y: %s, scale %.4g (%q) .. %.4g (%q)\n",
		xLabel, yLabel, lo, string(ramp[0]), hi, string(ramp[len(ramp)-1]))
	return b.String()
}

// Series is one named line of a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers distinguishes overlapping series.
const markers = "ox+*#@%&"

// Lines renders series over a shared log-x axis into a height×width
// character canvas with a legend and axis annotations.
func Lines(title string, series []Series, width, height int, logX bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if width < 8 || height < 4 || len(series) == 0 {
		b.WriteString("(empty)\n")
		return b.String()
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x := s.X[i]
			if logX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			x := s.X[i]
			if logX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			cx := int((x - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			canvas[height-1-cy][cx] = mark
		}
	}
	for r := 0; r < height; r++ {
		yv := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.3g |%s\n", yv, string(canvas[r]))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	if logX {
		fmt.Fprintf(&b, "%10s  x: 10^%.2f .. 10^%.2f (log)\n", "", minX, maxX)
	} else {
		fmt.Fprintf(&b, "%10s  x: %.4g .. %.4g\n", "", minX, maxX)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Bars renders a simple horizontal bar chart (the power figures).
func Bars(title string, labels []string, values []float64, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(labels) != len(values) || len(labels) == 0 {
		b.WriteString("(empty)\n")
		return b.String()
	}
	maxV := math.Inf(-1)
	maxL := 0
	for i, v := range values {
		maxV = math.Max(maxV, v)
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	for i, v := range values {
		n := int(v / maxV * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-*s |%s %.4g\n", maxL, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}
