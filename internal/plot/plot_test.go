package plot

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapRendersGradient(t *testing.T) {
	grid := [][]float64{
		{0, 1, 2, 3},
		{4, 5, 6, 7},
	}
	out := Heatmap("test", grid, "x", "y")
	if !strings.Contains(out, "test") {
		t.Fatal("missing title")
	}
	lines := strings.Split(out, "\n")
	// Row 1 (higher values) renders above row 0 and with denser chars.
	if !strings.Contains(lines[1], "@") {
		t.Fatalf("top row should contain the max glyph: %q", lines[1])
	}
	if !strings.Contains(lines[2], " ") {
		t.Fatalf("bottom row should contain the min glyph: %q", lines[2])
	}
	if !strings.Contains(out, "scale 0") {
		t.Fatal("missing scale annotation")
	}
}

func TestHeatmapHandlesNaNAndEmpty(t *testing.T) {
	out := Heatmap("t", [][]float64{{math.NaN(), 1}}, "x", "y")
	if !strings.Contains(out, "|") {
		t.Fatal("should render")
	}
	if !strings.Contains(Heatmap("t", nil, "x", "y"), "(empty)") {
		t.Fatal("nil grid should say empty")
	}
	if !strings.Contains(Heatmap("t", [][]float64{{math.NaN()}}, "x", "y"), "(all empty)") {
		t.Fatal("all-NaN grid should say all empty")
	}
}

func TestLinesBasic(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{1, 10, 100}, Y: []float64{1, 2, 3}},
		{Name: "b", X: []float64{1, 10, 100}, Y: []float64{3, 2, 1}},
	}
	out := Lines("chart", s, 40, 10, true)
	if !strings.Contains(out, "chart") || !strings.Contains(out, "o a") || !strings.Contains(out, "x b") {
		t.Fatalf("missing legend: %s", out)
	}
	if !strings.Contains(out, "log") {
		t.Fatal("missing log axis note")
	}
	outLin := Lines("chart", s, 40, 10, false)
	if strings.Contains(outLin, "log") {
		t.Fatal("linear axis should not claim log")
	}
}

func TestLinesDegenerate(t *testing.T) {
	if !strings.Contains(Lines("t", nil, 40, 10, false), "(empty)") {
		t.Fatal("no series should be empty")
	}
	if !strings.Contains(Lines("t", []Series{{Name: "a"}}, 40, 10, false), "(no data)") {
		t.Fatal("empty series should say no data")
	}
	// Non-positive x under log scale is skipped, not fatal.
	s := []Series{{Name: "a", X: []float64{-1, 10}, Y: []float64{1, 2}}}
	out := Lines("t", s, 40, 8, true)
	if !strings.Contains(out, "o a") {
		t.Fatal("should still render the positive point")
	}
	// Single point: degenerate ranges handled.
	one := []Series{{Name: "a", X: []float64{5}, Y: []float64{7}}}
	if !strings.Contains(Lines("t", one, 20, 5, false), "o a") {
		t.Fatal("single point should render")
	}
}

func TestBars(t *testing.T) {
	out := Bars("power", []string{"GEMM", "SpMV"}, []float64{60, 30}, 20)
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "GEMM") || !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Fatalf("max bar should be full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Fatalf("half bar should be half width: %q", lines[2])
	}
	if !strings.Contains(Bars("t", []string{"a"}, nil, 10), "(empty)") {
		t.Fatal("mismatch should be empty")
	}
}
