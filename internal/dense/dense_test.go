package dense

import (
	"math"
	"testing"
)

func TestNewAndAccess(t *testing.T) {
	m := New(3, 4)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatal("Set/At broken")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("new matrix not zeroed")
	}
	if len(m.Row(2)) != 4 {
		t.Fatal("row length wrong")
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 2)
}

func TestCloneIsDeep(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a, b := New(5, 5), New(5, 5)
	a.FillRandom(3)
	b.FillRandom(3)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed differs")
	}
	c := New(5, 5)
	c.FillRandom(4)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatal("different seeds identical")
	}
	for _, v := range a.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("value %v outside [-1,1)", v)
		}
	}
}

func TestFillSPDIsSymmetricDominant(t *testing.T) {
	m := New(16, 16)
	m.FillSPD(7)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatal("not symmetric")
			}
		}
		if m.At(i, i) < 2 {
			t.Fatal("diagonal not dominant")
		}
	}
}

func TestFillSPDPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).FillSPD(1)
}

func TestMaxAbsDiff(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	a.Set(1, 1, 3)
	b.Set(1, 1, 5)
	if got := MaxAbsDiff(a, b); got != 2 {
		t.Fatalf("diff = %v, want 2", got)
	}
	if !math.IsInf(MaxAbsDiff(a, New(3, 3)), 1) {
		t.Fatal("shape mismatch should be +Inf")
	}
}

func TestGEMMRefIdentity(t *testing.T) {
	n := 8
	eye := New(n, n)
	for i := 0; i < n; i++ {
		eye.Set(i, i, 1)
	}
	a := New(n, n)
	a.FillRandom(1)
	c := New(n, n)
	if err := GEMMRef(1, a, eye, 0, c); err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(a, c) > 1e-15 {
		t.Fatal("A*I != A")
	}
}

func TestGEMMRefAlphaBeta(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	a.Set(0, 0, 1)
	b.Set(0, 0, 1)
	c := New(2, 2)
	c.Set(0, 0, 10)
	if err := GEMMRef(2, a, b, 0.5, c); err != nil {
		t.Fatal(err)
	}
	if got := c.At(0, 0); got != 7 { // 2*1*1 + 0.5*10
		t.Fatalf("c[0,0] = %v, want 7", got)
	}
}

func TestGEMMRefShapeError(t *testing.T) {
	if GEMMRef(1, New(2, 3), New(2, 3), 0, New(2, 3)) == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestCholeskyRefReconstructs(t *testing.T) {
	n := 12
	a := New(n, n)
	a.FillSPD(5)
	orig := a.Clone()
	if err := CholeskyRef(a); err != nil {
		t.Fatal(err)
	}
	// L * L^T must reconstruct the original.
	lt := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lt.Set(i, j, a.At(j, i))
		}
	}
	rec := New(n, n)
	if err := GEMMRef(1, a, lt, 0, rec); err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(orig, rec); d > 1e-10 {
		t.Fatalf("L*L^T reconstruction error %v", d)
	}
}

func TestCholeskyRefRejects(t *testing.T) {
	if CholeskyRef(New(2, 3)) == nil {
		t.Fatal("non-square accepted")
	}
	bad := New(2, 2) // zero matrix is not PD
	if CholeskyRef(bad) == nil {
		t.Fatal("non-PD accepted")
	}
}
