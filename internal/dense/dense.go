// Package dense provides the dense-matrix substrate used by the GEMM
// and Cholesky kernels: row-major float64 matrices, deterministic
// random fills, and reference routines for validating the tiled
// parallel implementations in internal/kernels.
package dense

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Matrix is a row-major dense matrix.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// New allocates a zero matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dense: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(c.Row(i), m.Row(i))
	}
	return c
}

// FillRandom fills with deterministic uniform values in [-1, 1).
func (m *Matrix) FillRandom(seed uint64) {
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
}

// FillSPD fills the matrix with a symmetric positive-definite pattern:
// random symmetric entries with a dominant diagonal, the standard way
// to make Cholesky inputs well posed.
func (m *Matrix) FillSPD(seed uint64) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("dense: FillSPD needs square matrix, got %dx%d", m.Rows, m.Cols))
	}
	rng := rand.New(rand.NewPCG(seed, seed+0x2545f4914f6cdd1d))
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := (2*rng.Float64() - 1) / float64(n)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, 2+rng.Float64())
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	worst := 0.0
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if d := math.Abs(ra[j] - rb[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// GEMMRef computes C = alpha*A*B + beta*C with the naive triple loop —
// the correctness oracle for the tiled kernel.
func GEMMRef(alpha float64, a, b *Matrix, beta float64, c *Matrix) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("dense: GEMM shape mismatch %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols)
	}
	for i := 0; i < c.Rows; i++ {
		ci := c.Row(i)
		for j := range ci {
			ci[j] *= beta
		}
		for k := 0; k < a.Cols; k++ {
			aik := alpha * a.At(i, k)
			bk := b.Row(k)
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
	return nil
}

// CholeskyRef computes the lower Cholesky factor in place with the
// unblocked algorithm — the correctness oracle for the tiled kernel.
// The strict upper triangle is zeroed.
func CholeskyRef(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("dense: Cholesky needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= a.At(j, k) * a.At(j, k)
		}
		if d <= 0 {
			return fmt.Errorf("dense: matrix not positive definite at column %d", j)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			v := a.At(i, j)
			for k := 0; k < j; k++ {
				v -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, v/d)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.Set(i, j, 0)
		}
	}
	return nil
}
