package twin

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/platform"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// testWorkloads builds one workload per kernel family at a footprint
// that exercises the memory hierarchy of the given platform.
func testWorkloads(t *testing.T, plat *platform.Platform) []trace.Workload {
	t.Helper()
	simFP := plat.ScaledBytes(96 << 20)
	csr := sparse.Poisson3D(24)
	trsv, err := trace.NewSpTRSV(csr)
	if err != nil {
		t.Fatal(err)
	}
	return []trace.Workload{
		trace.NewStream(simFP),
		trace.NewCoStream(simFP/2, simFP/2),
		trace.NewStencil(simFP, plat.Scale),
		trace.NewFFT(simFP),
		&trace.SpMV{M: csr},
		&trace.SpTRANS{M: csr},
		trsv,
		&trace.GEMM{N: 384, NB: 96},
		&trace.Cholesky{N: 384, NB: 96},
	}
}

// TestPredictValidTraffic: every family's synthetic traffic satisfies
// the simulator's own traffic invariants on every platform × mode.
func TestPredictValidTraffic(t *testing.T) {
	for _, plat := range platform.AllWithExtensions() {
		machines, err := core.Machines(plat)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range machines {
			cfg := m.Config()
			for _, wl := range testWorkloads(t, plat) {
				tr, err := Predict(&cfg, wl)
				if err != nil {
					t.Fatalf("%s %s: %v", m.Label(), wl.Name(), err)
				}
				if err := tr.Validate(); err != nil {
					t.Errorf("%s %s: invalid traffic: %v", m.Label(), wl.Name(), err)
				}
			}
		}
	}
}

// TestEstimateCellFiniteAndGated: end-to-end twin estimates produce
// finite, gate-clean results for every family × machine.
func TestEstimateCellFiniteAndGated(t *testing.T) {
	ctx := context.Background()
	var est Estimator
	for _, plat := range platform.All() {
		machines, err := core.Machines(plat)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range machines {
			for _, wl := range testWorkloads(t, plat) {
				r, err := est.EstimateCell(ctx, nil, nil, m, wl, wl.Name()+"|"+m.Label())
				if err != nil {
					t.Fatalf("%s %s: %v", m.Label(), wl.Name(), err)
				}
				if r.GFlops <= 0 || math.IsNaN(r.GFlops) || math.IsInf(r.GFlops, 0) {
					t.Errorf("%s %s: GFlops = %g", m.Label(), wl.Name(), r.GFlops)
				}
			}
		}
	}
}

// TestEstimateCellDeterministic: the twin is a pure function of the
// cell — repeated estimates are identical.
func TestEstimateCellDeterministic(t *testing.T) {
	ctx := context.Background()
	var est Estimator
	m, err := core.NewMachine(platform.KNL(), memsim.ModeCache)
	if err != nil {
		t.Fatal(err)
	}
	wl := trace.NewStream(platform.KNL().ScaledBytes(1 << 30))
	a, err := est.EstimateCell(ctx, nil, nil, m, wl, "det")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		b, err := est.EstimateCell(ctx, nil, nil, m, wl, "det")
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("estimate %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// TestTwinOrdersModes: on a memory-bound footprint the twin preserves
// the paper's qualitative ordering — on-package memory beats DDR.
func TestTwinOrdersModes(t *testing.T) {
	ctx := context.Background()
	var est Estimator
	brd := platform.Broadwell()
	wl := trace.NewStream(brd.ScaledBytes(96 << 20)) // past eDRAM, memory bound
	gf := map[memsim.Mode]float64{}
	for _, mode := range []memsim.Mode{memsim.ModeDDR, memsim.ModeEDRAM} {
		m, err := core.NewMachine(brd, mode)
		if err != nil {
			t.Fatal(err)
		}
		r, err := est.EstimateCell(ctx, nil, nil, m, wl, "order")
		if err != nil {
			t.Fatal(err)
		}
		gf[mode] = r.GFlops
	}
	if gf[memsim.ModeEDRAM] <= gf[memsim.ModeDDR] {
		t.Fatalf("eDRAM %.2f should beat DDR %.2f on a memory-bound stream", gf[memsim.ModeEDRAM], gf[memsim.ModeDDR])
	}
}

// TestPredictDenseRejectsScaledConfig: paper-scale dense prediction
// must not silently run against a simulation-scale configuration.
func TestPredictDenseRejectsScaledConfig(t *testing.T) {
	m, err := core.NewMachine(platform.KNL(), memsim.ModeFlat)
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config() // scaled
	if _, err := PredictDense(&cfg, trace.DenseGEMM, 4096, 256); err == nil {
		t.Fatal("want error for scaled config")
	}
}

// TestEscalatingDeterministicRouting: the auto policy's twin-or-exact
// decision depends only on (family, bounds, tolerance) and matches the
// component estimators' own results exactly.
func TestEscalatingDeterministicRouting(t *testing.T) {
	ctx := context.Background()
	m, err := core.NewMachine(platform.Broadwell(), memsim.ModeEDRAM)
	if err != nil {
		t.Fatal(err)
	}
	wl := trace.NewStream(platform.Broadwell().ScaledBytes(32 << 20))
	var tw Estimator
	twinR, err := tw.EstimateCell(ctx, nil, nil, m, wl, "route")
	if err != nil {
		t.Fatal(err)
	}
	exactR, err := core.Exact.EstimateCell(ctx, nil, nil, m, wl, "route")
	if err != nil {
		t.Fatal(err)
	}
	bounds := map[string]float64{"stream": 0.05}
	serve := NewEscalating(0.10, bounds) // 0.05 <= 0.10: twin serves
	esc := NewEscalating(0.01, bounds)   // 0.05 > 0.01: escalate
	for i := 0; i < 3; i++ {
		r, err := serve.EstimateCell(ctx, nil, nil, m, wl, "route")
		if err != nil {
			t.Fatal(err)
		}
		if r != twinR {
			t.Fatalf("serving policy should return the twin's bytes")
		}
		r, err = esc.EstimateCell(ctx, nil, nil, m, wl, "route")
		if err != nil {
			t.Fatal(err)
		}
		if r != exactR {
			t.Fatalf("escalating policy should return the exact bytes")
		}
	}
}

// TestEscalatingUnknownFamilyEscalates: a family with no calibrated
// bound must never be served analytically.
func TestEscalatingUnknownFamilyEscalates(t *testing.T) {
	e := NewEscalating(1.0, map[string]float64{"stream": 0.01})
	if e.serveTwin("fft") {
		t.Fatal("unbounded family must escalate")
	}
	if !e.serveTwin("stream") {
		t.Fatal("bounded family within tolerance must serve")
	}
}

// TestEscalatingVersionFoldsPolicy: the store identity changes with
// tolerance and bounds, and is independent of map iteration order.
func TestEscalatingVersionFoldsPolicy(t *testing.T) {
	a := NewEscalating(0.10, map[string]float64{"stream": 0.05, "fft": 0.08})
	b := NewEscalating(0.10, map[string]float64{"fft": 0.08, "stream": 0.05})
	if a.Version() != b.Version() {
		t.Fatalf("version depends on map order: %q vs %q", a.Version(), b.Version())
	}
	if a.Version() == NewEscalating(0.20, map[string]float64{"stream": 0.05, "fft": 0.08}).Version() {
		t.Fatal("tolerance change must re-key the store")
	}
	if a.Version() == NewEscalating(0.10, map[string]float64{"stream": 0.04, "fft": 0.08}).Version() {
		t.Fatal("bounds change must re-key the store")
	}
}

// TestSelect: the flag-value factory.
func TestSelect(t *testing.T) {
	for _, tc := range []struct {
		mode    string
		maxErr  float64
		want    string
		wantErr bool
	}{
		{mode: "", want: "exact"},
		{mode: "exact", want: "exact"},
		{mode: "twin", want: "twin"},
		{mode: "auto", maxErr: 0.1, want: "auto"},
		{mode: "auto", maxErr: 0, wantErr: true},
		{mode: "bogus", wantErr: true},
	} {
		est, err := Select(tc.mode, tc.maxErr)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Select(%q, %g): want error", tc.mode, tc.maxErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("Select(%q, %g): %v", tc.mode, tc.maxErr, err)
			continue
		}
		if est.Mode() != tc.want {
			t.Errorf("Select(%q, %g).Mode() = %q, want %q", tc.mode, tc.maxErr, est.Mode(), tc.want)
		}
	}
}
