package twin

// DefaultBounds returns the per-family MAPE of the twin against the
// exact simulator, measured by `make calib` on the quick grid and kept
// in sync with scripts/calib-baseline.json (the CI gate compares a
// fresh run against that file; re-baselining updates both). Families
// are twin.Family keys; values are fractions (0.07 = 7%).
//
// The escalation policy treats these as the twin's trust boundary: a
// family is served analytically only when its bound is within the
// caller's -twin-max-err tolerance.
func DefaultBounds() map[string]float64 {
	return map[string]float64{
		"stream":   0.054,
		"stencil":  0.086,
		"fft":      0.077,
		"spmv":     0.025,
		"sptrans":  0.098,
		"sptrsv":   0.199,
		"gemm":     0.006,
		"cholesky": 0.017,
	}
}
