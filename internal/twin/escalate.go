package twin

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Escalating serves cells from the analytic twin when the kernel
// family's calibrated error bound is within the caller's tolerance,
// and escalates to the exact simulation otherwise. The decision is a
// pure function of (family, bounds, tolerance) — all fixed at
// construction — so the same job always takes the same path regardless
// of worker count, scheduling, or previous calls.
type Escalating struct {
	twin   Estimator
	exact  core.Estimator
	maxErr float64
	bounds map[string]float64
}

var _ core.Estimator = (*Escalating)(nil)

// NewEscalating builds the auto policy: cells whose family has a
// calibrated MAPE bound <= maxErr are served by the twin, everything
// else by the exact estimator. nil bounds means DefaultBounds(); a
// family absent from bounds always escalates (unknown error is treated
// as unbounded).
func NewEscalating(maxErr float64, bounds map[string]float64) *Escalating {
	if bounds == nil {
		bounds = DefaultBounds()
	}
	b := make(map[string]float64, len(bounds))
	for k, v := range bounds {
		b[Family(k)] = v
	}
	return &Escalating{exact: core.Exact, maxErr: maxErr, bounds: b}
}

// Mode returns "auto".
func (e *Escalating) Mode() string { return "auto" }

// Version folds in everything the served bytes depend on: both
// component model versions, the tolerance, and the calibrated bounds
// in sorted order — so re-calibration or a tolerance change re-keys
// the store instead of aliasing stale auto-mode results.
func (e *Escalating) Version() string {
	fams := make([]string, 0, len(e.bounds))
	//opmlint:allow digestpure — keys are collected then sorted before rendering; iteration order never reaches the version string
	for f := range e.bounds {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	var sb strings.Builder
	fmt.Fprintf(&sb, "auto/%s+%s/maxerr=%g", e.exact.Version(), e.twin.Version(), e.maxErr)
	for _, f := range fams {
		fmt.Fprintf(&sb, "/%s=%g", f, e.bounds[f])
	}
	return sb.String()
}

// serveTwin reports whether a kernel family stays on the twin.
func (e *Escalating) serveTwin(family string) bool {
	b, ok := e.bounds[family]
	return ok && b <= e.maxErr
}

// EstimateCell routes one trace cell by its kernel family. Escalations
// are counted under twin/escalations; twin-served cells count their
// own twin/serves inside the twin.
func (e *Escalating) EstimateCell(ctx context.Context, eng *sweep.Engine, w *sweep.Worker, m *core.Machine, wl trace.Workload, key string) (memsim.Result, error) {
	fam := Family(wl.Name())
	e.gauge(eng, fam)
	if e.serveTwin(fam) {
		return e.twin.EstimateCell(ctx, eng, w, m, wl, key)
	}
	registry(eng).Counter("twin/escalations").Inc()
	obs.TraceEvent(ctx, obs.EvEscalate, fam)
	return e.exact.EstimateCell(ctx, eng, w, m, wl, key)
}

// EstimateDense routes one dense cell by its kernel family.
func (e *Escalating) EstimateDense(ctx context.Context, eng *sweep.Engine, j core.DenseJob, key string) (memsim.Result, error) {
	fam := Family(j.Kind.String())
	e.gauge(eng, fam)
	if e.serveTwin(fam) {
		return e.twin.EstimateDense(ctx, eng, j, key)
	}
	registry(eng).Counter("twin/escalations").Inc()
	obs.TraceEvent(ctx, obs.EvEscalate, fam)
	return e.exact.EstimateDense(ctx, eng, j, key)
}

// gauge publishes the calibrated error bound steering this family so a
// metrics snapshot shows why cells escalated (or did not).
func (e *Escalating) gauge(eng *sweep.Engine, family string) {
	b, ok := e.bounds[family]
	if !ok {
		return
	}
	// The family set is the paper's closed eight-kernel roster, so the
	// gauge names form a fixed, enumerable namespace.
	//opmlint:allow counternames — closed eight-kernel family set
	registry(eng).Gauge("twin/err_bound/" + family).Set(b)
}

// Select builds the estimator named by an -estimator flag value:
// "exact", "twin", or "auto" (escalating with tolerance maxErr).
func Select(mode string, maxErr float64) (core.Estimator, error) {
	switch mode {
	case "", "exact":
		return core.Exact, nil
	case "twin":
		return Estimator{}, nil
	case "auto":
		if maxErr <= 0 {
			return nil, fmt.Errorf("twin: auto mode needs a positive -twin-max-err, got %g", maxErr)
		}
		return NewEscalating(maxErr, nil), nil
	}
	return nil, fmt.Errorf("twin: unknown estimator %q (want exact, twin or auto)", mode)
}
