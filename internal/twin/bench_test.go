package twin

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/memsim"
	"repro/internal/platform"
	"repro/internal/trace"
)

// benchMachines is the Broadwell baseline/eDRAM pair every sub-benchmark
// sweeps.
func benchMachines(b *testing.B) []*core.Machine {
	b.Helper()
	var machines []*core.Machine
	for _, mode := range []memsim.Mode{memsim.ModeDDR, memsim.ModeEDRAM} {
		m, err := core.NewMachine(platform.Broadwell(), mode)
		if err != nil {
			b.Fatal(err)
		}
		machines = append(machines, m)
	}
	return machines
}

// BenchmarkTwinVsExact measures both estimators over the same sweep
// slices: the dense (GEMM) grid and the trace-driven curve cells
// (Stream, Stencil, FFT at an OPM-relevant footprint) on Broadwell.
// The twin's whole reason to exist is this ratio — on the cells the
// exact path must simulate access-by-access, the acceptance bar is a
// >= 10x speedup.
//
//	go test ./internal/twin -bench TwinVsExact -benchtime 3x
func BenchmarkTwinVsExact(b *testing.B) {
	ctx := context.Background()
	machines := benchMachines(b)

	var jobs []core.DenseJob
	for _, m := range machines {
		for _, n := range []int{2048, 4096} {
			for _, nb := range []int{256, 1024} {
				jobs = append(jobs, core.DenseJob{Machine: m, Kind: trace.DenseGEMM, N: n, NB: nb})
			}
		}
	}
	fp := platform.Broadwell().ScaledBytes(96 << 20)
	workloads := []trace.Workload{
		trace.NewStream(fp),
		trace.NewStencil(fp, platform.Broadwell().Scale),
		trace.NewFFT(fp),
	}

	for _, tc := range []struct {
		name string
		est  core.Estimator
	}{
		{"exact", core.Exact},
		{"twin", Estimator{}},
	} {
		b.Run(tc.name+"/dense", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, j := range jobs {
					if _, err := tc.est.EstimateDense(ctx, nil, j, core.DenseCellKey(j)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(tc.name+"/curves", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, m := range machines {
					for _, wl := range workloads {
						if _, err := tc.est.EstimateCell(ctx, nil, nil, m, wl, wl.Name()+"|"+m.Label()); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
}
