// Package twin is the calibrated analytic stepping twin: an Estimator
// that predicts sweep cells from reuse-distance profiles of the trace
// generators' access patterns instead of replaying them through the
// per-access simulator. It generalizes internal/stepping's bounded
// throughput model per kernel family, feeds the same memsim timing
// evaluation as the exact path, and is orders of magnitude faster per
// cell. Its error against the exact simulator is measured per family by
// internal/twin/calib; the Escalating policy serves from the twin only
// where that calibrated error is within bound.
package twin

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// ModelVersion names the twin's model generation. It takes the place
// of core.ModelVersion in store digests of twin-computed cells, so twin
// and exact results can never alias in the content-addressed journal.
// Any change to the profile laws or the capture chain must bump it.
const ModelVersion = "twin-model/1"

// Estimator is the analytic twin. The zero value is ready to use.
type Estimator struct{}

var _ core.Estimator = Estimator{}

// Mode returns "twin".
func (Estimator) Mode() string { return "twin" }

// Version returns the twin's model generation.
func (Estimator) Version() string { return ModelVersion }

// EstimateCell predicts one trace cell analytically: synthesize the
// traffic the simulator would have counted, evaluate it with the
// machine's timing properties, and pass the result through the same
// validation gate as exact cells. The sweep worker is unused — the
// twin needs no pooled simulator.
func (Estimator) EstimateCell(ctx context.Context, eng *sweep.Engine, _ *sweep.Worker, m *core.Machine, wl trace.Workload, key string) (memsim.Result, error) {
	obs.TraceEvent(ctx, obs.EvEstimator, "twin")
	cfg := m.Config()
	tr, err := Predict(&cfg, wl)
	if err != nil {
		return memsim.Result{}, fmt.Errorf("twin: %s: %w", key, err)
	}
	props, err := m.WorkloadProps(wl)
	if err != nil {
		return memsim.Result{}, err
	}
	r, err := memsim.Evaluate(&cfg, tr, props)
	if err != nil {
		return memsim.Result{}, fmt.Errorf("twin: %s: %w", key, err)
	}
	if gerr := core.GateResult(ctx, injector(eng), key, &r); gerr != nil {
		return memsim.Result{}, gerr
	}
	registry(eng).Counter("twin/serves").Inc()
	return r, nil
}

// EstimateDense predicts one paper-scale dense cell from the twin's
// tile-reuse law over the unscaled configuration, with the same
// efficiency derating (tiling + strong-scaling) as the exact path.
func (Estimator) EstimateDense(ctx context.Context, eng *sweep.Engine, j core.DenseJob, key string) (memsim.Result, error) {
	obs.TraceEvent(ctx, obs.EvEstimator, "twin")
	cfg := trace.UnscaledConfig(j.Machine.Config())
	tr, err := PredictDense(&cfg, j.Kind, j.N, j.NB)
	if err != nil {
		return memsim.Result{}, fmt.Errorf("twin: %s: %w", key, err)
	}
	model := trace.DenseModel{Kind: j.Kind, N: j.N, NB: j.NB}
	props, err := j.Machine.KernelProps(j.Kind.String(), model.Flops())
	if err != nil {
		return memsim.Result{}, err
	}
	props.Eff *= model.TileEff() * model.SizeEff(j.Machine.Plat.Cores)
	r, err := memsim.Evaluate(&cfg, tr, props)
	if err != nil {
		return memsim.Result{}, fmt.Errorf("twin: %s: %w", key, err)
	}
	if gerr := core.GateResult(ctx, injector(eng), key, &r); gerr != nil {
		return memsim.Result{}, gerr
	}
	registry(eng).Counter("twin/serves").Inc()
	return r, nil
}

// registry returns the engine's metrics registry; obs instruments are
// nil-receiver safe, so a nil engine or registry degrades to no-ops.
func registry(eng *sweep.Engine) *obs.Registry {
	if eng == nil {
		return nil
	}
	return eng.Obs
}

func injector(eng *sweep.Engine) *faultinject.Injector {
	if eng == nil {
		return nil
	}
	return eng.Inject
}
