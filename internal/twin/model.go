package twin

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/memsim"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// This file is the twin's analytic traffic model: a reuse-distance
// summary per kernel family plus the streaming-cliff capture chain
// that turns it into per-source byte counts. The twin never replays an
// access stream — it predicts what the per-access simulator would have
// counted, then feeds the same memsim.Evaluate timing model, so its
// results live in the same units and pass the same validation gate as
// exact cells.

// Family canonicalizes a kernel name ("SpMV", "Stream", ...) to the
// calibration family key ("spmv", "stream", ...). Families are the
// granularity at which the twin's error is calibrated and at which the
// escalation policy decides twin-vs-exact.
func Family(kernel string) string { return strings.ToLower(kernel) }

// component is one analytically modelled demand stream of a kernel:
// volume bytes arrive per measured pass, and the share a cache of
// capacity C captures follows the streaming cliff over working set
// wset — the same (2C−W)/W law internal/stepping uses, applied per
// component instead of to a single monolithic footprint.
type component struct {
	volume float64 // demand bytes per measured pass (post-L1, line granular)
	wset   float64 // working set governing the cliff for this stream
	skipL1 bool    // scrambled access order: the filter cache never captures it
}

// denseReuse carries the tile-reuse law of the blocked dense kernels:
// bytes crossing below a cache of capacity C are ≈ flops·8/b_r(C),
// with the effective reuse block b_r set by the tile size and how many
// tiles fit in C (cf. trace.DenseModel, independently simplified here).
type denseReuse struct {
	flops      float64
	n, nb      float64
	fp         float64
	compulsory float64 // crossing when the footprint fits (0 once warmed)
}

// profile is the reuse-distance summary of one workload: either a set
// of streaming components or a dense tile-reuse law, plus the dirty
// fraction of memory-level traffic (writebacks).
type profile struct {
	components []component
	dense      *denseReuse
	writeFrac  float64
}

// missFrac is the streaming-cliff miss fraction of a cache of capacity
// c over a cyclically re-swept working set w: everything hits below
// capacity, hits decay linearly on (c, 2c), nothing survives past 2c.
func missFrac(c, w float64) float64 {
	if math.IsInf(w, 1) {
		return 1 // compulsory stream: no capacity captures it
	}
	if w <= c {
		return 0
	}
	captured := (2*c - w) / w
	if captured < 0 {
		captured = 0
	}
	return 1 - captured
}

// crossing returns the demand bytes crossing below a cache of capacity
// c under this profile; isL1 marks the filter-cache level, which
// skipL1 components always pass through.
func (p *profile) crossing(c float64, isL1 bool) float64 {
	if p.dense != nil {
		return p.dense.crossing(c)
	}
	var sum float64
	for _, comp := range p.components {
		if isL1 && comp.skipL1 {
			sum += comp.volume
			continue
		}
		sum += comp.volume * missFrac(c, comp.wset)
	}
	return sum
}

// demand returns the total bytes entering the hierarchy (below L1).
func (p *profile) demand() float64 { return p.crossing(0, false) }

func (d *denseReuse) crossing(c float64) float64 {
	if d.fp <= c {
		return d.compulsory
	}
	// Effective reuse block: the tile size, capped by how large a
	// 3-tile working set (24·b² bytes) the cache holds, floored at the
	// register micro-kernel.
	br := math.Min(d.nb, math.Sqrt(c/24))
	br = math.Max(8, math.Min(br, d.n))
	return d.flops*8/br + d.fp
}

// profileFor builds the reuse profile of one workload from the trace
// generator's own problem parameters (matrix structure, grid shape,
// tile size) — the reuse-distance analysis that replaces replaying its
// access stream.
func profileFor(wl trace.Workload) (profile, error) {
	fp := float64(wl.FootprintBytes())
	switch t := wl.(type) {
	case *trace.Stream, *trace.CoStream:
		// Triad: three arrays touched once per pass, one written.
		// CoStream interleaves two triads — same law over the combined
		// footprint, which is exactly how the tenants contend.
		return profile{
			components: []component{{volume: fp, wset: fp}},
			writeFrac:  1.0 / 3,
		}, nil
	case *trace.Stencil:
		// Three grids (prev, in, next) swept once; neighbour re-touches
		// are L1/L2-resident at line granularity, so the post-L1 demand
		// is the grids themselves.
		return profile{
			components: []component{{volume: fp, wset: fp}},
			writeFrac:  1.0 / 3,
		}, nil
	case *trace.FFT:
		// Three 1D passes (X, Y, Z), each reading and writing every
		// complex element. The X pass is sequential (2 sweeps); the Y/Z
		// passes stride across lines holding 4 complex values each, so
		// when the array spills they refetch partially-used lines —
		// calibrated at ~2.25 sweeps of excess per strided pass.
		return profile{
			components: []component{{volume: 11 * fp, wset: fp}},
			writeFrac:  1.0 / 2,
		}, nil
	case *trace.SpMV:
		return sparseProfile(fp, t.M, false), nil
	case *trace.SpTRSV:
		// Level-scheduled row order scrambles the access stream, so the
		// filter cache never holds the active lines.
		return sparseProfile(fp, t.L, true), nil
	case *trace.SpTRANS:
		// One-shot conversion measured cold: every footprint byte is a
		// compulsory miss no capacity absorbs, plus the second ColIdx
		// read and the scatter-round thrash when the per-column output
		// cursors outgrow the cache (one line fill per nonzero).
		cols, nnz := float64(t.M.Cols), float64(t.M.NNZ())
		p := profile{
			components: []component{
				{volume: fp, wset: math.Inf(1)},     // compulsory, cold
				{volume: 4 * nnz, wset: 4 * nnz},    // ColIdx re-read
				{volume: 52 * nnz, wset: 64 * cols}, // scatter thrash excess
			},
			writeFrac: 1.0 / 2,
		}
		return p, nil
	case *trace.GEMM:
		return denseProfile(wl.Flops(), t.N, t.NB, fp, 0), nil
	case *trace.Cholesky:
		return denseProfile(wl.Flops(), t.N, t.NB, fp, 0), nil
	}
	return profile{}, fmt.Errorf("twin: no analytic profile for workload %q (%T)", wl.Name(), wl)
}

// sparseProfile is the shared SpMV/SpTRSV reuse summary: the matrix
// (values + indices + row pointers) streams cyclically, the result
// vector streams once, and the x-gather's working set is the sliding
// column window the structure actually touches — the matrix bandwidth,
// not the whole vector — so banded and stencil-like matrices gather
// from cache even when x itself is large.
func sparseProfile(fp float64, m *sparse.CSR, scrambled bool) profile {
	rows, nnz := float64(m.Rows), float64(m.NNZ())
	met := sparse.Measure(m)
	matrix := fp - 8*rows // everything but the gathered vector streams
	if matrix < 0 {
		matrix = fp
	}
	window := 16*float64(met.Bandwidth) + 4096 // x[i-bw .. i+bw] plus line slop
	if max := 8 * rows; window > max {
		window = max
	}
	return profile{
		components: []component{
			{volume: matrix + 16*rows, wset: fp, skipL1: scrambled},
			// Gathers: a line fill per nonzero when the window does not
			// fit, halved for intra-row column locality.
			{volume: 32 * nnz, wset: window, skipL1: scrambled},
		},
		writeFrac: (8 * rows) / fp,
	}
}

// denseProfile builds the tile-reuse profile of GEMM/Cholesky.
// compulsory is the crossing when the footprint fits: 0 for the warmed
// trace cells, the footprint itself for paper-scale dense cells (no
// warm-up pass precedes the analytic sweep).
func denseProfile(flops float64, n, nb int, fp, compulsory float64) profile {
	return profile{
		dense: &denseReuse{
			flops: flops, n: float64(n), nb: float64(min(nb, n)),
			fp: fp, compulsory: compulsory,
		},
		// Tiled dense kernels re-write C/the trailing matrix: a modest
		// dirty share of what reaches memory.
		writeFrac: 1.0 / 4,
	}
}

// Predict returns the twin's synthetic traffic for one workload under
// a (scaled) simulator configuration — the analytic stand-in for
// Simulate + Sim.Traffic().
func Predict(cfg *memsim.Config, wl trace.Workload) (memsim.Traffic, error) {
	p, err := profileFor(wl)
	if err != nil {
		return memsim.Traffic{}, err
	}
	return synthesize(cfg, wl.FootprintBytes(), &p)
}

// PredictDense returns the twin's synthetic traffic for one
// paper-scale dense cell under an unscaled configuration.
func PredictDense(cfg *memsim.Config, kind trace.DenseKind, n, nb int) (memsim.Traffic, error) {
	if cfg.Scale != 1 {
		return memsim.Traffic{}, fmt.Errorf("twin: dense prediction needs an unscaled config (got scale %d)", cfg.Scale)
	}
	if n <= 0 || nb <= 0 {
		return memsim.Traffic{}, fmt.Errorf("twin: dense prediction needs positive n/nb, got %d/%d", n, nb)
	}
	model := trace.DenseModel{Kind: kind, N: n, NB: nb}
	fp := model.FootprintBytes()
	p := denseProfile(model.Flops(), n, nb, float64(fp), float64(fp))
	return synthesize(cfg, fp, &p)
}

// synthesize turns a reuse profile into memsim.Traffic: the capture
// chain assigns each cache level the bytes it serves, the residual is
// routed to memory per the mode (mirroring the per-access simulator's
// routing semantics), and writebacks are the profile's dirty fraction
// of each memory-side flow. The produced traffic satisfies
// memsim.Traffic.Validate by construction.
func synthesize(cfg *memsim.Config, fp int64, p *profile) (memsim.Traffic, error) {
	var tr memsim.Traffic
	tr.FootprintBytes = fp

	type lvl struct {
		src memsim.Source
		cap int64
	}
	var caches []lvl
	if cfg.L1.Size > 0 {
		// The filter cache matters: a working set resident in L1 is
		// served without any bandwidth bound, exactly as the simulator
		// counts it (L1 has no BW term in the timing model).
		caches = append(caches, lvl{memsim.SrcL1, cfg.L1.Size})
	}
	caches = append(caches, lvl{memsim.SrcL2, cfg.L2.Size})
	if cfg.L3.Size > 0 {
		caches = append(caches, lvl{memsim.SrcL3, cfg.L3.Size})
	}
	switch cfg.Mode {
	case memsim.ModeEDRAM, memsim.ModeEDRAMMemSide:
		caches = append(caches, lvl{memsim.SrcEDRAM, cfg.EDRAM.Size})
	case memsim.ModeCache:
		caches = append(caches, lvl{memsim.SrcMCDRAM, cfg.MCDRAMBytes})
	case memsim.ModeHybrid:
		caches = append(caches, lvl{memsim.SrcMCDRAM, cfg.MCDRAMBytes / 2})
	}

	demand := p.demand()
	if demand <= 0 {
		return memsim.Traffic{}, fmt.Errorf("twin: profile has no demand traffic (footprint %d)", fp)
	}
	// missBelow[i] = bytes crossing the boundary below caches[i],
	// clamped monotone: a deeper boundary never carries more traffic.
	missBelow := make([]float64, len(caches))
	prev := demand
	for i, c := range caches {
		b := p.crossing(float64(c.cap), c.src == memsim.SrcL1)
		if b > prev {
			b = prev
		}
		missBelow[i] = b
		prev = b
	}
	// Level i serves what crossed into it minus what crossed past it.
	in := demand
	for i, c := range caches {
		tr.Bytes[c.src] = uint64(math.Max(0, in-missBelow[i]))
		in = missBelow[i]
	}
	memBytes := missBelow[len(caches)-1]

	// Route the residual to memory, mode by mode (same semantics as
	// the simulator and the dense analytic model).
	switch cfg.Mode {
	case memsim.ModeFlat:
		if fp <= cfg.MCDRAMBytes {
			tr.Bytes[memsim.SrcMCDRAM] += uint64(memBytes)
		} else {
			frac := float64(cfg.MCDRAMBytes) / float64(fp)
			tr.Bytes[memsim.SrcMCDRAM] += uint64(memBytes * frac)
			tr.Bytes[memsim.SrcDDR] += uint64(memBytes * (1 - frac))
			tr.SplitFlat = true
		}
	case memsim.ModeCache:
		// Every access below the last on-chip cache consulted the
		// in-MCDRAM tags; misses install into the cache.
		pre := demand
		if len(caches) >= 2 {
			pre = missBelow[len(caches)-2]
		}
		tr.MCTagLines = uint64(pre / 64)
		tr.Bytes[memsim.SrcDDR] += uint64(memBytes)
		tr.WBBytes[memsim.SrcMCDRAM] += uint64(memBytes)
	case memsim.ModeHybrid:
		pre := demand
		if len(caches) >= 2 {
			pre = missBelow[len(caches)-2]
		}
		half := cfg.MCDRAMBytes / 2
		f := 1.0
		if fp > half {
			f = float64(half) / float64(fp)
		}
		flatBytes := pre * f
		cachedServed := math.Max(0, (pre-memBytes)*(1-f))
		// The chain already credited the cached half; rebuild the
		// MCDRAM flow as flat-resident plus cache-served traffic.
		tr.Bytes[memsim.SrcMCDRAM] = uint64(flatBytes + cachedServed)
		tr.MCTagLines = uint64(pre * (1 - f) / 64)
		tr.Bytes[memsim.SrcDDR] += uint64(memBytes * (1 - f))
		tr.WBBytes[memsim.SrcMCDRAM] += uint64(memBytes * (1 - f))
	case memsim.ModeEDRAMMemSide:
		// The memory-side buffer fills on every DRAM access.
		tr.Bytes[memsim.SrcDDR] += uint64(memBytes)
		tr.WBBytes[memsim.SrcEDRAM] += uint64(memBytes)
	default:
		tr.Bytes[memsim.SrcDDR] += uint64(memBytes)
	}

	// Dirty evictions: the profile's write fraction of every
	// memory-side demand flow returns as writeback traffic.
	if p.writeFrac > 0 {
		for _, s := range []memsim.Source{memsim.SrcEDRAM, memsim.SrcMCDRAM, memsim.SrcDDR} {
			tr.WBBytes[s] += uint64(p.writeFrac * float64(tr.Bytes[s]))
		}
	}
	for s := memsim.SrcL2; s <= memsim.SrcDDR; s++ {
		tr.Lines[s] = tr.Bytes[s] / 64
	}
	tr.Accesses = uint64(demand / 8)
	return tr, nil
}
