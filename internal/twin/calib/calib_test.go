package calib

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/platform"
)

// runOnce memoizes one small calibration run for all tests (Broadwell
// only: two modes keep the grid cheap).
var cached *Report

func smallRun(t *testing.T) *Report {
	t.Helper()
	if cached != nil {
		return cached
	}
	rep, err := Run(context.Background(), Options{
		MaxPaperFootprint: 64 << 20,
		Platforms:         []*platform.Platform{platform.Broadwell()},
	})
	if err != nil {
		t.Fatal(err)
	}
	cached = rep
	return rep
}

// TestRunCoversAllFamilies: the grid produces every kernel family with
// a defined MAPE and at least one cell.
func TestRunCoversAllFamilies(t *testing.T) {
	rep := smallRun(t)
	want := map[string]bool{
		"stream": false, "stencil": false, "fft": false,
		"spmv": false, "sptrans": false, "sptrsv": false,
		"gemm": false, "cholesky": false,
	}
	for _, f := range rep.Families {
		if _, ok := want[f.Family]; !ok {
			t.Errorf("unexpected family %q", f.Family)
			continue
		}
		want[f.Family] = true
		if f.Cells == 0 {
			t.Errorf("family %q has no cells", f.Family)
		}
		if f.MAPE < 0 {
			t.Errorf("family %q has negative MAPE %g", f.Family, f.MAPE)
		}
	}
	for fam, seen := range want {
		if !seen {
			t.Errorf("family %q missing from report", fam)
		}
	}
}

// TestBaselineRoundTrip: Bounds survive the baseline file format.
func TestBaselineRoundTrip(t *testing.T) {
	rep := smallRun(t)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := rep.WriteBaseline(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	for fam, mape := range rep.Bounds() {
		if got := b[fam]; got != mape {
			t.Errorf("family %q: baseline %g, want %g", fam, got, mape)
		}
	}
}

// TestCheckGates: a report passes against its own baseline, fails
// against a tightened one, and fails when a family is untracked.
func TestCheckGates(t *testing.T) {
	rep := smallRun(t)
	self := Baseline(rep.Bounds())
	if err := rep.Check(self, 0.10); err != nil {
		t.Fatalf("self-check failed: %v", err)
	}
	tight := Baseline{}
	for fam := range self {
		tight[fam] = -0.01 // limit becomes negative headroom + 0.005
	}
	if err := rep.Check(tight, 0); err == nil {
		t.Fatal("tightened baseline should fail")
	}
	missing := Baseline(rep.Bounds())
	delete(missing, "stream")
	if err := rep.Check(missing, 0.10); err == nil {
		t.Fatal("untracked family should fail")
	}
}
