// Package calib measures the analytic twin against the exact
// simulator over a paper-shaped grid: the Stream/Stencil/FFT footprint
// curves, a subsample of the sparse suite, and the dense tile grid,
// across every platform × mode. Its per-family MAPE and Pearson r are
// the numbers the escalation policy (twin.Escalating) and the CI
// regression gate (scripts/calib-baseline.json) consume.
package calib

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sparse"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/twin"
)

// Options scales the calibration grid. The zero value is the quick
// grid used by `make calib` and the CI gate; Full is the denser grid
// for re-baselining after a model change.
type Options struct {
	Full bool
	// MaxPaperFootprint caps curve and sparse cells (reported scale);
	// 0 means 256 MB quick, 1 GB full.
	MaxPaperFootprint int64
	// Platforms defaults to platform.All() (Broadwell + KNL).
	Platforms []*platform.Platform
}

// Cell is one calibrated grid point: the exact and twin GFlop/s of the
// same (workload, machine) cell.
type Cell struct {
	Family string  `json:"family"`
	Label  string  `json:"label"`
	Exact  float64 `json:"exact_gflops"`
	Twin   float64 `json:"twin_gflops"`
}

// FamilyReport is the calibration verdict for one kernel family.
type FamilyReport struct {
	Family string  `json:"family"`
	Cells  int     `json:"cells"`
	MAPE   float64 `json:"mape"`
	R      float64 `json:"pearson_r"`
}

// Report is one calibration run: every grid cell plus the per-family
// reductions, sorted by family name.
type Report struct {
	ExactVersion string         `json:"exact_version"`
	TwinVersion  string         `json:"twin_version"`
	Families     []FamilyReport `json:"families"`
	Cells        []Cell         `json:"cells,omitempty"`
}

// Run sweeps the calibration grid and reduces it per family. Cells the
// exact path cannot run (an unsupported workload would be a bug, a
// degenerate matrix is not) are skipped only when both estimators
// agree the cell is invalid; disagreement is an error.
func Run(ctx context.Context, opt Options) (*Report, error) {
	maxFP := opt.MaxPaperFootprint
	if maxFP == 0 {
		maxFP = 256 << 20
		if opt.Full {
			maxFP = 1 << 30
		}
	}
	plats := opt.Platforms
	if plats == nil {
		plats = platform.All()
	}
	var cells []Cell
	for _, plat := range plats {
		machines, err := core.Machines(plat)
		if err != nil {
			return nil, err
		}
		c, err := curveCells(ctx, plat, machines, maxFP, opt.Full)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c...)
		c, err = sparseCells(ctx, plat, machines, maxFP, opt.Full)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c...)
		c, err = denseCells(ctx, machines, opt.Full)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c...)
	}
	return reduce(cells)
}

// curveCells calibrates the footprint-parameterized streaming families
// over a log-spaced span of the paper's curve figures.
func curveCells(ctx context.Context, plat *platform.Platform, machines []*core.Machine, maxFP int64, full bool) ([]Cell, error) {
	minFP := int64(1 << 20)
	if plat.Name == "knl" {
		minFP = 8 << 20
	}
	points := 6
	if full {
		points = 12
	}
	var cells []Cell
	for _, fp := range logSpace(minFP, maxFP, points) {
		simFP := plat.ScaledBytes(fp)
		for _, kernel := range []string{"Stream", "Stencil", "FFT"} {
			var wl trace.Workload
			switch kernel {
			case "Stream":
				wl = trace.NewStream(simFP)
			case "Stencil":
				wl = trace.NewStencil(simFP, plat.Scale)
			case "FFT":
				wl = trace.NewFFT(simFP)
			}
			for _, m := range machines {
				label := fmt.Sprintf("%s|fp=%d|%s", kernel, fp, m.Label())
				cell, err := calibrateCell(ctx, m, wl, label)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// sparseCells calibrates SpMV/SpTRANS/SpTRSV over a subsample of the
// matrix collection, instantiated at the platform's simulation scale.
func sparseCells(ctx context.Context, plat *platform.Platform, machines []*core.Machine, maxFP int64, full bool) ([]Cell, error) {
	stride := 200
	if full {
		stride = 48
	}
	specs := sparse.Subsample(sparse.FilterMaxFootprint(sparse.Collection(), maxFP), stride)
	var cells []Cell
	for _, spec := range specs {
		csr := spec.Instantiate(plat.Scale)
		for _, kernel := range []string{"SpMV", "SpTRANS", "SpTRSV"} {
			var wl trace.Workload
			switch kernel {
			case "SpMV":
				wl = &trace.SpMV{M: csr}
			case "SpTRANS":
				wl = &trace.SpTRANS{M: csr}
			case "SpTRSV":
				w, err := trace.NewSpTRSV(csr)
				if err != nil {
					return nil, fmt.Errorf("calib: %s: %w", spec.Name, err)
				}
				wl = w
			}
			for _, m := range machines {
				label := fmt.Sprintf("%s|%s|%s", kernel, spec.Name, m.Label())
				cell, err := calibrateCell(ctx, m, wl, label)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// denseCells calibrates GEMM/Cholesky on a small paper-scale tile
// grid: both sides are analytic, so the cost is negligible.
func denseCells(ctx context.Context, machines []*core.Machine, full bool) ([]Cell, error) {
	ns := []int{2048, 8192}
	if full {
		ns = append(ns, 16384)
	}
	nbs := []int{256, 1024, 4096}
	var tw twin.Estimator
	var cells []Cell
	for _, m := range machines {
		for _, kind := range []trace.DenseKind{trace.DenseGEMM, trace.DenseCholesky} {
			for _, n := range ns {
				for _, nb := range nbs {
					if nb > n {
						continue
					}
					j := core.DenseJob{Machine: m, Kind: kind, N: n, NB: nb}
					key := core.DenseCellKey(j)
					exact, err := core.Exact.EstimateDense(ctx, nil, j, key)
					if err != nil {
						return nil, fmt.Errorf("calib: exact %s: %w", key, err)
					}
					pred, err := tw.EstimateDense(ctx, nil, j, key)
					if err != nil {
						return nil, fmt.Errorf("calib: twin %s: %w", key, err)
					}
					cells = append(cells, Cell{
						Family: twin.Family(kind.String()), Label: key,
						Exact: exact.GFlops, Twin: pred.GFlops,
					})
				}
			}
		}
	}
	return cells, nil
}

// calibrateCell runs one trace cell through both estimators.
func calibrateCell(ctx context.Context, m *core.Machine, wl trace.Workload, label string) (Cell, error) {
	exact, err := m.Run(wl)
	if err != nil {
		return Cell{}, fmt.Errorf("calib: exact %s: %w", label, err)
	}
	var tw twin.Estimator
	pred, err := tw.EstimateCell(ctx, nil, nil, m, wl, label)
	if err != nil {
		return Cell{}, fmt.Errorf("calib: twin %s: %w", label, err)
	}
	return Cell{Family: twin.Family(wl.Name()), Label: label, Exact: exact.GFlops, Twin: pred.GFlops}, nil
}

// reduce folds cells into the per-family report.
func reduce(cells []Cell) (*Report, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("calib: empty grid")
	}
	byFam := map[string][]Cell{}
	for _, c := range cells {
		byFam[c.Family] = append(byFam[c.Family], c)
	}
	rep := &Report{ExactVersion: core.ModelVersion, TwinVersion: twin.ModelVersion, Cells: cells}
	fams := make([]string, 0, len(byFam))
	for f := range byFam {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		group := byFam[f]
		exact := make([]float64, len(group))
		pred := make([]float64, len(group))
		for i, c := range group {
			exact[i], pred[i] = c.Exact, c.Twin
		}
		mape, err := stats.MAPE(exact, pred)
		if err != nil {
			return nil, fmt.Errorf("calib: family %s: %w", f, err)
		}
		r, err := stats.PearsonR(exact, pred)
		if err != nil {
			// A family whose exact series is constant over the grid has
			// no defined correlation; MAPE still gates it.
			r = 0
		}
		rep.Families = append(rep.Families, FamilyReport{Family: f, Cells: len(group), MAPE: mape, R: r})
	}
	return rep, nil
}

// Bounds returns the report's per-family MAPE, the map consumed by
// twin.NewEscalating and written to the checked-in baseline.
func (r *Report) Bounds() map[string]float64 {
	out := make(map[string]float64, len(r.Families))
	for _, f := range r.Families {
		out[f.Family] = f.MAPE
	}
	return out
}

// Baseline is the checked-in per-family MAPE the CI gate compares
// against (scripts/calib-baseline.json).
type Baseline map[string]float64

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("calib: baseline %s: %w", path, err)
	}
	return b, nil
}

// WriteBaseline writes the report's bounds as a baseline file, keys
// sorted for stable diffs.
func (r *Report) WriteBaseline(path string) error {
	data, err := json.MarshalIndent(r.Bounds(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Check fails if any family's MAPE regressed past the baseline with
// slack headroom (fractional, e.g. 0.10 = 10%, plus half a point
// absolute so near-zero families are not gated on noise), or if a
// family is missing from the baseline — re-baseline deliberately
// instead of silently admitting new untracked error.
func (r *Report) Check(b Baseline, slack float64) error {
	var bad []string
	for _, f := range r.Families {
		bound, ok := b[f.Family]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: not in baseline (got MAPE %.4f)", f.Family, f.MAPE))
			continue
		}
		limit := bound*(1+slack) + 0.005
		if f.MAPE > limit {
			bad = append(bad, fmt.Sprintf("%s: MAPE %.4f > limit %.4f (baseline %.4f)", f.Family, f.MAPE, limit, bound))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("calib: twin error regressed:\n  %s", joinLines(bad))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

func logSpace(lo, hi int64, points int) []int64 {
	if points < 2 || hi <= lo {
		return []int64{lo}
	}
	out := make([]int64, 0, points)
	llo, lhi := math.Log(float64(lo)), math.Log(float64(hi))
	for i := 0; i < points; i++ {
		out = append(out, int64(math.Exp(llo+(lhi-llo)*float64(i)/float64(points-1))))
	}
	return out
}
