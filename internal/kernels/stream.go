package kernels

import (
	"fmt"
	"runtime"
	"sync"
)

// StreamTriad computes x = a + alpha*b elementwise in parallel — the
// STREAM TRIAD kernel (McCalpin) the paper uses to probe sustainable
// bandwidth. Returns the number of bytes moved per the STREAM
// convention (two reads + one write, 24 bytes per element; the paper's
// Table 2 counts 32 with the write-allocate read).
func StreamTriad(x, a, b []float64, alpha float64, workers int) (int64, error) {
	if len(x) != len(a) || len(x) != len(b) {
		return 0, fmt.Errorf("kernels: StreamTriad length mismatch %d/%d/%d",
			len(x), len(a), len(b))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(x)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(x, a, b []float64) {
			defer wg.Done()
			for i := range x {
				x[i] = a[i] + alpha*b[i]
			}
		}(x[lo:hi], a[lo:hi], b[lo:hi])
	}
	wg.Wait()
	return int64(n) * 24, nil
}

// StreamFlops returns the Table 2 operation count 2n.
func StreamFlops(n int) float64 { return 2 * float64(n) }

// StreamBytes returns the Table 2 byte count 32n (write-allocate
// accounting).
func StreamBytes(n int) float64 { return 32 * float64(n) }
