package kernels

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/sparse"
)

func TestGEMMMatchesReference(t *testing.T) {
	for _, nb := range []int{1, 3, 8, 32, 100} {
		a, b := dense.New(37, 23), dense.New(23, 41)
		a.FillRandom(1)
		b.FillRandom(2)
		c := dense.New(37, 41)
		c.FillRandom(3)
		want := c.Clone()
		if err := dense.GEMMRef(1.5, a, b, 0.5, want); err != nil {
			t.Fatal(err)
		}
		if err := GEMM(1.5, a, b, 0.5, c, nb, 4); err != nil {
			t.Fatal(err)
		}
		if d := dense.MaxAbsDiff(want, c); d > 1e-12 {
			t.Fatalf("nb=%d: max diff %v", nb, d)
		}
	}
}

func TestGEMMErrors(t *testing.T) {
	a, b, c := dense.New(2, 3), dense.New(2, 3), dense.New(2, 3)
	if GEMM(1, a, b, 0, c, 8, 1) == nil {
		t.Fatal("shape mismatch accepted")
	}
	b2 := dense.New(3, 3)
	c2 := dense.New(2, 3)
	if GEMM(1, a, b2, 0, c2, 0, 1) == nil {
		t.Fatal("zero block size accepted")
	}
}

func TestGEMMFlops(t *testing.T) {
	if GEMMFlops(10) != 2000 {
		t.Fatal("GEMM flop formula wrong")
	}
	if CholeskyFlops(9) != 243 {
		t.Fatal("Cholesky flop formula wrong")
	}
	if StreamFlops(5) != 10 || StreamBytes(5) != 160 {
		t.Fatal("Stream formulas wrong")
	}
}

func TestCholeskyMatchesReference(t *testing.T) {
	for _, nb := range []int{1, 4, 16, 64} {
		n := 45
		a := dense.New(n, n)
		a.FillSPD(9)
		want := a.Clone()
		if err := dense.CholeskyRef(want); err != nil {
			t.Fatal(err)
		}
		got := a.Clone()
		if err := Cholesky(got, nb, 4); err != nil {
			t.Fatal(err)
		}
		if d := dense.MaxAbsDiff(want, got); d > 1e-10 {
			t.Fatalf("nb=%d: max diff %v", nb, d)
		}
	}
}

func TestCholeskyErrors(t *testing.T) {
	if Cholesky(dense.New(2, 3), 4, 1) == nil {
		t.Fatal("non-square accepted")
	}
	if Cholesky(dense.New(4, 4), 0, 1) == nil {
		t.Fatal("zero block accepted")
	}
	if Cholesky(dense.New(4, 4), 2, 1) == nil { // zero matrix not PD
		t.Fatal("non-PD accepted")
	}
}

func spmvRef(a *sparse.CSR, x []float64) []float64 {
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			y[i] += a.Val[p] * x[a.ColIdx[p]]
		}
	}
	return y
}

func TestSpMVMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		a := sparse.RMAT(300, 2500, 5)
		x := make([]float64, a.Cols)
		rng := rand.New(rand.NewPCG(1, 2))
		for i := range x {
			x[i] = rng.Float64()
		}
		want := spmvRef(a, x)
		y := make([]float64, a.Rows)
		if err := SpMV(a, x, y, workers); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-12 {
				t.Fatalf("workers=%d: y[%d] = %v, want %v", workers, i, y[i], want[i])
			}
		}
	}
}

func TestSpMVShapeError(t *testing.T) {
	a := sparse.Tridiag(4)
	if SpMV(a, make([]float64, 3), make([]float64, 4), 1) == nil {
		t.Fatal("bad x accepted")
	}
	if SpMV(a, make([]float64, 4), make([]float64, 3), 1) == nil {
		t.Fatal("bad y accepted")
	}
}

func TestNNZBalancedPartition(t *testing.T) {
	a := sparse.Arrow(200, 16, 3) // skewed rows
	bounds := nnzBalancedPartition(a, 4)
	if bounds[0] != 0 || bounds[4] != a.Rows {
		t.Fatal("partition must cover all rows")
	}
	total := int64(a.NNZ())
	for w := 0; w < 4; w++ {
		part := a.RowPtr[bounds[w+1]] - a.RowPtr[bounds[w]]
		if part > total { // sanity
			t.Fatal("partition larger than matrix")
		}
	}
	for w := 1; w <= 4; w++ {
		if bounds[w] < bounds[w-1] {
			t.Fatal("bounds not monotone")
		}
	}
}

func TestSpTRANSMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		a := sparse.RMAT(256, 3000, 11)
		got := SpTRANS(a, workers)
		if err := got.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := sparse.TransposeToCSC(a)
		if len(got.Val) != len(want.Val) {
			t.Fatalf("nnz mismatch %d vs %d", len(got.Val), len(want.Val))
		}
		for i := range want.ColPtr {
			if got.ColPtr[i] != want.ColPtr[i] {
				t.Fatalf("colptr[%d] = %d, want %d", i, got.ColPtr[i], want.ColPtr[i])
			}
		}
		for k := range want.Val {
			if got.RowIdx[k] != want.RowIdx[k] || got.Val[k] != want.Val[k] {
				t.Fatalf("entry %d differs", k)
			}
		}
	}
}

func TestSpTRANSEmptyAndTiny(t *testing.T) {
	coo := &sparse.COO{Rows: 3, Cols: 3}
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	out := SpTRANS(m, 4)
	if out.NNZ() != 0 || len(out.ColPtr) != 4 {
		t.Fatal("empty transpose wrong")
	}
}

func TestSpTRSVSolvesSystem(t *testing.T) {
	for _, workers := range []int{1, 4} {
		l, err := sparse.Poisson2D(20).LowerTriangle()
		if err != nil {
			t.Fatal(err)
		}
		n := l.Rows
		// Manufactured solution.
		want := make([]float64, n)
		for i := range want {
			want[i] = float64(i%17) + 0.5
		}
		b := spmvRef(l, want)
		x := make([]float64, n)
		if err := SpTRSV(l, b, x, workers); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-9 {
				t.Fatalf("workers=%d: x[%d] = %v, want %v", workers, i, x[i], want[i])
			}
		}
	}
}

func TestSpTRSVWideLevelsParallel(t *testing.T) {
	// Block-diagonal lower triangle has wide levels, exercising the
	// parallel dispatch path (>=64 rows per level).
	l, err := sparse.BlockDiag(512, 4, 3).LowerTriangle()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, l.Rows)
	for i := range want {
		want[i] = 1 + float64(i%7)
	}
	b := spmvRef(l, want)
	x := make([]float64, l.Rows)
	if err := SpTRSV(l, b, x, 8); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSpTRSVErrors(t *testing.T) {
	l, _ := sparse.Tridiag(4).LowerTriangle()
	if SpTRSV(l, make([]float64, 3), make([]float64, 4), 1) == nil {
		t.Fatal("bad b accepted")
	}
	// Non-triangular input must be rejected by level building.
	if SpTRSV(sparse.Tridiag(4), make([]float64, 4), make([]float64, 4), 1) == nil {
		t.Fatal("non-triangular accepted")
	}
}

func TestStreamTriad(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		n := 1000
		x, a, b := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := range a {
			a[i] = float64(i)
			b[i] = 2
		}
		moved, err := StreamTriad(x, a, b, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		if moved != int64(n*24) {
			t.Fatalf("bytes = %d, want %d", moved, n*24)
		}
		for i := range x {
			if x[i] != float64(i)+6 {
				t.Fatalf("workers=%d: x[%d] = %v", workers, i, x[i])
			}
		}
	}
}

func TestStreamTriadLengthMismatch(t *testing.T) {
	if _, err := StreamTriad(make([]float64, 2), make([]float64, 3), make([]float64, 2), 1, 1); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestSparseOpFormulas(t *testing.T) {
	a := sparse.Tridiag(100) // 298 nnz
	if got := SpMVFlops(a); got != 298+200 {
		t.Fatalf("SpMVFlops = %v", got)
	}
	if got := SpMVBytes(a); got != 12*298+20*100 {
		t.Fatalf("SpMVBytes = %v", got)
	}
	if got := SpTRANSBytes(a); got != 24*298+8*100 {
		t.Fatalf("SpTRANSBytes = %v", got)
	}
	want := 298 * math.Log2(298)
	if math.Abs(SpTRANSFlops(a)-want) > 1e-9 {
		t.Fatalf("SpTRANSFlops = %v, want %v", SpTRANSFlops(a), want)
	}
	l, _ := a.LowerTriangle()
	if SpTRSVFlops(l) != float64(l.NNZ())+200 {
		t.Fatal("SpTRSVFlops wrong")
	}
}

// Property: GEMM with alpha=1, beta=0 against identity-permuted B is
// consistent with the reference for random shapes and block sizes.
func TestPropertyGEMMRandomShapes(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		m, k, n := 1+rng.IntN(24), 1+rng.IntN(24), 1+rng.IntN(24)
		nb := 1 + rng.IntN(12)
		a, b := dense.New(m, k), dense.New(k, n)
		a.FillRandom(seed)
		b.FillRandom(seed + 1)
		c := dense.New(m, n)
		want := dense.New(m, n)
		if err := dense.GEMMRef(1, a, b, 0, want); err != nil {
			return false
		}
		if err := GEMM(1, a, b, 0, c, nb, 2); err != nil {
			return false
		}
		return dense.MaxAbsDiff(want, c) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: SpTRSV then SpMV round-trips b for random lower systems.
func TestPropertySpTRSVRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		n := 64 + int(seed%128)
		l, err := sparse.RandomUniform(n, 5, seed).LowerTriangle()
		if err != nil {
			return false
		}
		b := make([]float64, n)
		rng := rand.New(rand.NewPCG(seed, 9))
		for i := range b {
			b[i] = rng.Float64()
		}
		x := make([]float64, n)
		if err := SpTRSV(l, b, x, 4); err != nil {
			return false
		}
		back := spmvRef(l, x)
		for i := range back {
			if math.Abs(back[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: transposing with SpTRANS preserves column sums as row sums.
func TestPropertySpTRANSPreservesSums(t *testing.T) {
	f := func(seed uint64) bool {
		n := 50 + int(seed%100)
		a := sparse.RandomUniform(n, 6, seed)
		csc := SpTRANS(a, 3)
		// Row i sum of A = "column" i sum in CSC-of-A laid out as CSR
		// of A^T.
		at := &sparse.CSR{Rows: csc.Cols, Cols: csc.Rows, RowPtr: csc.ColPtr, ColIdx: csc.RowIdx, Val: csc.Val}
		for i := 0; i < n; i++ {
			var rowSum float64
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				rowSum += a.Val[p]
			}
			var colSum float64
			for j := 0; j < n; j++ {
				colSum += at.At(j, i)
			}
			if math.Abs(rowSum-colSum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGEMM(b *testing.B) {
	n, nb := 256, 64
	a, bm := dense.New(n, n), dense.New(n, n)
	a.FillRandom(1)
	bm.FillRandom(2)
	c := dense.New(n, n)
	b.SetBytes(int64(n) * int64(n) * 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := GEMM(1, a, bm, 0, c, nb, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(GEMMFlops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkCholesky(b *testing.B) {
	n := 256
	src := dense.New(n, n)
	src.FillSPD(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := src.Clone()
		b.StartTimer()
		if err := Cholesky(a, 64, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(CholeskyFlops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFlop/s")
}

func BenchmarkSpTRSVLevelScheduled(b *testing.B) {
	l, err := sparse.Poisson2D(256).LowerTriangle()
	if err != nil {
		b.Fatal(err)
	}
	sched, err := sparse.BuildLevels(l)
	if err != nil {
		b.Fatal(err)
	}
	bv := make([]float64, l.Rows)
	x := make([]float64, l.Rows)
	for i := range bv {
		bv[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SpTRSVWithSchedule(l, sched, bv, x, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamTriadReal(b *testing.B) {
	n := 1 << 20
	x, av, bv := make([]float64, n), make([]float64, n), make([]float64, n)
	b.SetBytes(int64(n) * 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := StreamTriad(x, av, bv, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}
