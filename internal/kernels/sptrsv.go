package kernels

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sparse"
)

// SpTRSV solves L*x = b for a lower-triangular CSR matrix with a full
// nonzero diagonal, using level scheduling (the
// synchronization-sparsified approach of SpMP, Park et al.): rows
// within a dependency level are independent and solved in parallel;
// levels run in order. The schedule can be reused across solves via
// SpTRSVWithSchedule.
func SpTRSV(l *sparse.CSR, b, x []float64, workers int) error {
	sched, err := sparse.BuildLevels(l)
	if err != nil {
		return err
	}
	return SpTRSVWithSchedule(l, sched, b, x, workers)
}

// SpTRSVWithSchedule solves with a prebuilt level schedule.
func SpTRSVWithSchedule(l *sparse.CSR, sched *sparse.LevelSchedule, b, x []float64, workers int) error {
	if len(b) != l.Rows || len(x) != l.Rows {
		return fmt.Errorf("kernels: SpTRSV shape mismatch: L %dx%d, b %d, x %d",
			l.Rows, l.Cols, len(b), len(x))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	solveRow := func(i int32) {
		s := b[i]
		var diag float64
		for p := l.RowPtr[i]; p < l.RowPtr[i+1]; p++ {
			c := l.ColIdx[p]
			if c == i {
				diag = l.Val[p]
			} else {
				s -= l.Val[p] * x[c]
			}
		}
		x[i] = s / diag
	}
	for lv := 0; lv < sched.Levels(); lv++ {
		rows := sched.Order[sched.Ptr[lv]:sched.Ptr[lv+1]]
		if len(rows) < 64 || workers == 1 {
			// Narrow levels: parallel dispatch costs more than it buys
			// (the dependency-chain regime that keeps SpTRSV slow).
			for _, i := range rows {
				solveRow(i)
			}
			continue
		}
		var wg sync.WaitGroup
		chunk := (len(rows) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, min((w+1)*chunk, len(rows))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(part []int32) {
				defer wg.Done()
				for _, i := range part {
					solveRow(i)
				}
			}(rows[lo:hi])
		}
		wg.Wait()
	}
	return nil
}

// SpTRSVFlops returns the Table 2 operation count nnz + 2M (same as
// SpMV: one multiply-add per entry plus the per-row divide).
func SpTRSVFlops(l *sparse.CSR) float64 { return float64(l.NNZ()) + 2*float64(l.Rows) }
