package kernels

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sparse"
)

// SpMV computes y = A*x in parallel over nnz-balanced row partitions —
// the load-balancing idea of the CSR5 implementation the paper
// benchmarks (equal work per partition regardless of row-length skew).
func SpMV(a *sparse.CSR, x, y []float64, workers int) error {
	if len(x) != a.Cols || len(y) != a.Rows {
		return fmt.Errorf("kernels: SpMV shape mismatch: A %dx%d, x %d, y %d",
			a.Rows, a.Cols, len(x), len(y))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bounds := nnzBalancedPartition(a, workers)
	var wg sync.WaitGroup
	for w := 0; w < len(bounds)-1; w++ {
		r0, r1 := bounds[w], bounds[w+1]
		if r0 == r1 {
			continue
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			for i := r0; i < r1; i++ {
				s := 0.0
				for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
					s += a.Val[p] * x[a.ColIdx[p]]
				}
				y[i] = s
			}
		}(r0, r1)
	}
	wg.Wait()
	return nil
}

// nnzBalancedPartition returns workers+1 row boundaries such that each
// partition holds roughly equal nonzeros.
func nnzBalancedPartition(a *sparse.CSR, workers int) []int {
	bounds := make([]int, workers+1)
	total := int64(a.NNZ())
	row := 0
	for w := 1; w < workers; w++ {
		target := total * int64(w) / int64(workers)
		for row < a.Rows && a.RowPtr[row] < target {
			row++
		}
		bounds[w] = row
	}
	bounds[workers] = a.Rows
	return bounds
}

// SpMVFlops returns the Table 2 operation count nnz + 2M.
func SpMVFlops(a *sparse.CSR) float64 { return float64(a.NNZ()) + 2*float64(a.Rows) }

// SpMVBytes returns the Table 2 byte count 12*nnz + 20M.
func SpMVBytes(a *sparse.CSR) float64 { return 12*float64(a.NNZ()) + 20*float64(a.Rows) }
