package kernels

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/sparse"
)

// SpMV5 computes y = A·x on the CSR5 layout with the format's
// segmented-sum algorithm: workers own tile ranges (equal nonzeros per
// worker regardless of row-length skew — CSR5's load-balancing
// property), accumulate lane sums, flush a row's sum at each row-break
// flag, and resolve rows spanning worker boundaries through a carry
// table merged serially — no atomics, as in the original.
func SpMV5(a *sparse.CSR5, x, y []float64, workers int) error {
	if len(x) != a.Cols || len(y) != a.Rows {
		return fmt.Errorf("kernels: SpMV5 shape mismatch: A %dx%d, x %d, y %d",
			a.Rows, a.Cols, len(x), len(y))
	}
	for i := range y {
		y[i] = 0
	}
	if a.NNZ() == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tiles := a.Tiles()
	if workers > tiles {
		workers = tiles
	}

	// rowOf locates the row of logical entry k via the row pointers.
	rowOf := func(k int) int {
		return sort.Search(a.Rows, func(i int) bool { return a.RowPtr[i+1] > int64(k) })
	}

	type carry struct {
		headRow int     // row receiving the pre-first-break sum
		head    float64 // that sum
		tailRow int     // row receiving the post-last-break sum
		tail    float64
		hasOwn  bool // chunk contained at least one row break
	}
	carries := make([]carry, workers)
	tileSz := a.TileSize()
	chunk := (tiles + workers - 1) / workers

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		t0, t1 := w*chunk, min((w+1)*chunk, tiles)
		if t0 >= t1 {
			break
		}
		wg.Add(1)
		go func(w, t0, t1 int) {
			defer wg.Done()
			start := t0 * tileSz
			end := min(t1*tileSz, len(a.Val))
			row := rowOf(min(start, a.NNZ()-1))
			sum := 0.0
			seenBreak := false
			c := &carries[w]
			c.headRow = row
			for k := start; k < end; k++ {
				phys := physIndex(a, k)
				if a.RowBreak[phys] && k != start {
					// Flush the finished segment.
					if !seenBreak {
						c.head = sum
						seenBreak = true
					} else {
						y[row] += sum // interior row: exclusively ours
					}
					sum = 0
					row = rowOf(k)
				} else if a.RowBreak[phys] && k == start {
					// The chunk begins exactly at a row start: the head
					// segment is empty.
					c.head = 0
					seenBreak = true
					row = rowOf(k)
				}
				sum += a.Val[phys] * x[a.ColIdx[phys]]
			}
			c.hasOwn = seenBreak
			if !seenBreak {
				// Whole chunk inside one row: everything is head carry.
				c.head = sum
				c.tailRow = -1
				return
			}
			c.tailRow = row
			c.tail = sum
		}(w, t0, t1)
	}
	wg.Wait()

	// Serial carry resolution: head partials join the previous chunk's
	// row; tails are this chunk's last (possibly shared) row.
	for w := range carries {
		c := &carries[w]
		if c.headRow >= 0 {
			y[c.headRow] += c.head
		}
		if c.tailRow >= 0 {
			y[c.tailRow] += c.tail
		}
	}
	return nil
}

// physIndex maps a logical (CSR-order) padded entry index to its
// physical position in the tile-transposed layout.
func physIndex(a *sparse.CSR5, k int) int {
	tileSz := a.TileSize()
	t := k / tileSz
	off := k % tileSz
	lane := off / a.Sigma
	slot := off % a.Sigma
	return t*tileSz + slot*a.Omega + lane
}
