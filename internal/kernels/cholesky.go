package kernels

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/dense"
)

// Cholesky computes the lower Cholesky factor of the symmetric
// positive-definite matrix A in place, using the tiled right-looking
// algorithm of Buttari et al. (the PLASMA dpotrf the paper benchmarks):
// factor the diagonal tile (POTRF), solve the panel (TRSM), then
// update the trailing submatrix (SYRK/GEMM) — the update tiles are
// independent and run in parallel. The strict upper triangle is
// zeroed on return.
func Cholesky(a *dense.Matrix, nb, workers int) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("kernels: Cholesky needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if nb <= 0 {
		return fmt.Errorf("kernels: Cholesky block size %d", nb)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := a.Rows
	for k0 := 0; k0 < n; k0 += nb {
		k1 := min(k0+nb, n)
		// POTRF: unblocked factorization of the diagonal tile.
		if err := potrfTile(a, k0, k1); err != nil {
			return err
		}
		// TRSM: panel solve L21 = A21 * L11^-T, parallel over row bands.
		parallelRows(k1, n, nb, workers, func(i0, i1 int) {
			trsmPanel(a, k0, k1, i0, i1)
		})
		// SYRK/GEMM trailing update: A22 -= L21 * L21^T, parallel over
		// row bands of the trailing matrix.
		parallelRows(k1, n, nb, workers, func(i0, i1 int) {
			for i := i0; i < i1; i++ {
				li := a.Row(i)[k0:k1]
				for j := k1; j <= i; j++ {
					lj := a.Row(j)[k0:k1]
					s := 0.0
					for t := range li {
						s += li[t] * lj[t]
					}
					a.Set(i, j, a.At(i, j)-s)
				}
			}
		})
	}
	// Zero and mirror-clean the strict upper triangle.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.Set(i, j, 0)
		}
	}
	return nil
}

// potrfTile factors A[k0:k1, k0:k1] in place (lower, unblocked).
func potrfTile(a *dense.Matrix, k0, k1 int) error {
	for j := k0; j < k1; j++ {
		d := a.At(j, j)
		for t := k0; t < j; t++ {
			d -= a.At(j, t) * a.At(j, t)
		}
		if d <= 0 {
			return fmt.Errorf("kernels: Cholesky: not positive definite at column %d", j)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < k1; i++ {
			v := a.At(i, j)
			for t := k0; t < j; t++ {
				v -= a.At(i, t) * a.At(j, t)
			}
			a.Set(i, j, v/d)
		}
	}
	return nil
}

// trsmPanel solves rows [i0,i1) of the panel against the factored
// diagonal tile [k0,k1).
func trsmPanel(a *dense.Matrix, k0, k1, i0, i1 int) {
	for i := i0; i < i1; i++ {
		for j := k0; j < k1; j++ {
			v := a.At(i, j)
			for t := k0; t < j; t++ {
				v -= a.At(i, t) * a.At(j, t)
			}
			a.Set(i, j, v/a.At(j, j))
		}
	}
}

// parallelRows runs fn over [lo,hi) split into nb-row bands across
// workers.
func parallelRows(lo, hi, nb, workers int, fn func(i0, i1 int)) {
	if lo >= hi {
		return
	}
	type band struct{ i0, i1 int }
	tasks := make(chan band)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range tasks {
				fn(b.i0, b.i1)
			}
		}()
	}
	for i0 := lo; i0 < hi; i0 += nb {
		tasks <- band{i0, min(i0+nb, hi)}
	}
	close(tasks)
	wg.Wait()
}

// CholeskyFlops returns the Table 2 operation count n³/3.
func CholeskyFlops(n int) float64 { return float64(n) * float64(n) * float64(n) / 3 }
