package kernels

import (
	"runtime"
	"sync"

	"repro/internal/sparse"
)

// MergeTrans converts CSR to CSC with the merge-based algorithm of
// MergeTrans (Wang et al., ICS'16) — the SpTRANS variant the paper
// runs on KNL, chosen there because "multiple rounds of merge" use the
// small per-tile caches better than ScanTrans's global scatter.
//
// Each CSR row is already a run sorted by column; rounds of pairwise
// merges (parallel across pairs, stable so row order within a column
// is preserved) reduce the runs to one sequence sorted by column —
// exactly the CSC layout.
func MergeTrans(a *sparse.CSR, workers int) *sparse.CSC {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nnz := a.NNZ()
	out := &sparse.CSC{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: make([]int64, a.Cols+1),
		RowIdx: make([]int32, nnz),
		Val:    make([]float64, nnz),
	}
	if nnz == 0 {
		return out
	}

	// Working triples: (col, row, val) flattened in CSR order. Runs
	// are delimited by bounds (initially the row pointers, with empty
	// runs dropped).
	cols := make([]int32, nnz)
	rows := make([]int32, nnz)
	vals := make([]float64, nnz)
	var bounds []int64
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		if lo == hi {
			continue
		}
		bounds = append(bounds, lo)
		for p := lo; p < hi; p++ {
			cols[p] = a.ColIdx[p]
			rows[p] = int32(i)
			vals[p] = a.Val[p]
		}
	}
	bounds = append(bounds, int64(nnz))

	// Double buffers for the merge rounds.
	cols2 := make([]int32, nnz)
	rows2 := make([]int32, nnz)
	vals2 := make([]float64, nnz)

	for len(bounds) > 2 {
		pairs := (len(bounds) - 1) / 2
		newBounds := make([]int64, 0, pairs+2)
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for p := 0; p < pairs; p++ {
			lo, mid, hi := bounds[2*p], bounds[2*p+1], bounds[2*p+2]
			newBounds = append(newBounds, lo)
			wg.Add(1)
			sem <- struct{}{}
			go func(lo, mid, hi int64) {
				defer wg.Done()
				defer func() { <-sem }()
				mergeRuns(cols, rows, vals, cols2, rows2, vals2, lo, mid, hi)
			}(lo, mid, hi)
		}
		// A trailing unpaired run is copied through.
		if (len(bounds)-1)%2 == 1 {
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			newBounds = append(newBounds, lo)
			copy(cols2[lo:hi], cols[lo:hi])
			copy(rows2[lo:hi], rows[lo:hi])
			copy(vals2[lo:hi], vals[lo:hi])
		}
		wg.Wait()
		newBounds = append(newBounds, int64(nnz))
		bounds = newBounds
		cols, cols2 = cols2, cols
		rows, rows2 = rows2, rows
		vals, vals2 = vals2, vals
	}

	// One run sorted by (col, row): emit CSC.
	for k := 0; k < nnz; k++ {
		out.ColPtr[cols[k]+1]++
		out.RowIdx[k] = rows[k]
		out.Val[k] = vals[k]
	}
	for c := 0; c < a.Cols; c++ {
		out.ColPtr[c+1] += out.ColPtr[c]
	}
	return out
}

// mergeRuns stably merges src[lo:mid) and src[mid:hi) by column into
// dst[lo:hi). Stability keeps rows ascending within a column because
// earlier runs hold smaller row indices.
func mergeRuns(cols, rows []int32, vals []float64, dcols, drows []int32, dvals []float64, lo, mid, hi int64) {
	i, j, o := lo, mid, lo
	for i < mid && j < hi {
		if cols[i] <= cols[j] {
			dcols[o], drows[o], dvals[o] = cols[i], rows[i], vals[i]
			i++
		} else {
			dcols[o], drows[o], dvals[o] = cols[j], rows[j], vals[j]
			j++
		}
		o++
	}
	for ; i < mid; i, o = i+1, o+1 {
		dcols[o], drows[o], dvals[o] = cols[i], rows[i], vals[i]
	}
	for ; j < hi; j, o = j+1, o+1 {
		dcols[o], drows[o], dvals[o] = cols[j], rows[j], vals[j]
	}
}
