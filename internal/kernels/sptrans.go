package kernels

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/sparse"
)

// SpTRANS converts a CSR matrix to CSC (a structural transposition)
// with the parallel two-round scan algorithm of ScanTrans (Wang et
// al., ICS'16): each worker histograms its slice of the nonzeros into
// a private column counter, the counters are prefix-summed into global
// per-worker offsets, and a second scan scatters entries to their
// final positions without atomics — exactly the "two rounds of scan
// ... to avoid atomic writes" design the paper describes.
func SpTRANS(a *sparse.CSR, workers int) *sparse.CSC {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nnz := a.NNZ()
	if workers > nnz && nnz > 0 {
		workers = nnz
	}
	if workers < 1 {
		workers = 1
	}
	out := &sparse.CSC{
		Rows:   a.Rows,
		Cols:   a.Cols,
		ColPtr: make([]int64, a.Cols+1),
		RowIdx: make([]int32, nnz),
		Val:    make([]float64, nnz),
	}

	// Expand row indices for slice-parallel processing (ScanTrans'
	// csrRowIdx auxiliary array).
	rowOf := make([]int32, nnz)
	for i := 0; i < a.Rows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			rowOf[p] = int32(i)
		}
	}

	// Round 1: private histograms per worker.
	hist := make([][]int64, workers)
	var wg sync.WaitGroup
	chunk := (nnz + workers - 1) / workers
	for w := 0; w < workers; w++ {
		hist[w] = make([]int64, a.Cols)
		lo, hi := w*chunk, min((w+1)*chunk, nnz)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := hist[w]
			for p := lo; p < hi; p++ {
				h[a.ColIdx[p]]++
			}
		}(w, lo, hi)
	}
	wg.Wait()

	// Prefix sum: per-column totals into ColPtr, then per-worker
	// starting offsets within each column segment.
	offsets := make([][]int64, workers)
	for w := range offsets {
		offsets[w] = make([]int64, a.Cols)
	}
	running := int64(0)
	for c := 0; c < a.Cols; c++ {
		out.ColPtr[c] = running
		for w := 0; w < workers; w++ {
			offsets[w][c] = running
			running += hist[w][c]
		}
	}
	out.ColPtr[a.Cols] = running

	// Round 2: scatter. Workers own disjoint destination slots.
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, nnz)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			off := offsets[w]
			for p := lo; p < hi; p++ {
				c := a.ColIdx[p]
				dst := off[c]
				off[c] = dst + 1
				out.RowIdx[dst] = rowOf[p]
				out.Val[dst] = a.Val[p]
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return out
}

// SpTRANSFlops returns the Table 2 operation count nnz*log2(nnz).
func SpTRANSFlops(a *sparse.CSR) float64 {
	nnz := float64(a.NNZ())
	if nnz < 2 {
		return nnz
	}
	return nnz * math.Log2(nnz)
}

// SpTRANSBytes returns the Table 2 byte count 24*nnz + 8M.
func SpTRANSBytes(a *sparse.CSR) float64 { return 24*float64(a.NNZ()) + 8*float64(a.Rows) }
