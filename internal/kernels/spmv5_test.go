package kernels

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func csr5Of(t testing.TB, m *sparse.CSR) *sparse.CSR5 {
	t.Helper()
	c5, err := sparse.ToCSR5(m, sparse.DefaultOmega, sparse.DefaultSigma)
	if err != nil {
		t.Fatal(err)
	}
	return c5
}

func TestSpMV5MatchesCSR(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, m := range []*sparse.CSR{
			sparse.Tridiag(300),
			sparse.RandomUniform(500, 6, 9),
			sparse.Arrow(400, 12, 2), // extreme row skew: rows span tiles
			sparse.RMAT(256, 4000, 7),
		} {
			c5 := csr5Of(t, m)
			x := make([]float64, m.Cols)
			rng := rand.New(rand.NewPCG(3, 4))
			for i := range x {
				x[i] = rng.Float64() - 0.5
			}
			want := spmvRef(m, x)
			y := make([]float64, m.Rows)
			if err := SpMV5(c5, x, y, workers); err != nil {
				t.Fatal(err)
			}
			for i := range y {
				if math.Abs(y[i]-want[i]) > 1e-10 {
					t.Fatalf("workers=%d: y[%d] = %v, want %v", workers, i, y[i], want[i])
				}
			}
		}
	}
}

func TestSpMV5EmptyRowsAndMatrix(t *testing.T) {
	// Matrix with empty rows.
	coo := &sparse.COO{Rows: 10, Cols: 10}
	coo.Add(0, 0, 2)
	coo.Add(5, 3, 4)
	coo.Add(9, 9, 1)
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	c5 := csr5Of(t, m)
	x := make([]float64, 10)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, 10)
	if err := SpMV5(c5, x, y, 4); err != nil {
		t.Fatal(err)
	}
	if y[0] != 2 || y[5] != 4 || y[9] != 1 || y[1] != 0 {
		t.Fatalf("y = %v", y)
	}

	// Fully empty matrix.
	empty, err := (&sparse.COO{Rows: 4, Cols: 4}).ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	c5e := csr5Of(t, empty)
	ye := []float64{9, 9, 9, 9}
	if err := SpMV5(c5e, make([]float64, 4), ye, 2); err != nil {
		t.Fatal(err)
	}
	for _, v := range ye {
		if v != 0 {
			t.Fatal("empty SpMV must zero y")
		}
	}
}

func TestSpMV5ShapeErrors(t *testing.T) {
	c5 := csr5Of(t, sparse.Tridiag(8))
	if SpMV5(c5, make([]float64, 7), make([]float64, 8), 1) == nil {
		t.Fatal("bad x accepted")
	}
	if SpMV5(c5, make([]float64, 8), make([]float64, 7), 1) == nil {
		t.Fatal("bad y accepted")
	}
}

// Property: SpMV5 agrees with the row-wise CSR SpMV for arbitrary
// structures, worker counts and tile geometries — including rows far
// longer than a tile and chunks that begin mid-row.
func TestPropertySpMV5EquivalentToSpMV(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		n := 64 + rng.IntN(256)
		var m *sparse.CSR
		switch rng.IntN(3) {
		case 0:
			m = sparse.RandomUniform(n, 1+rng.IntN(8), seed)
		case 1:
			m = sparse.Arrow(n, 4+rng.IntN(16), seed)
		default:
			m = sparse.Banded(n, 16, 4, seed)
		}
		omega := 1 + rng.IntN(6)
		sigma := 1 + rng.IntN(24)
		c5, err := sparse.ToCSR5(m, omega, sigma)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		want := spmvRef(m, x)
		y := make([]float64, n)
		if err := SpMV5(c5, x, y, 1+rng.IntN(7)); err != nil {
			return false
		}
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSpMVCSR(b *testing.B) {
	m := sparse.RMAT(1<<14, 1<<17, 3)
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SpMV(m, x, y, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpMVCSR5(b *testing.B) {
	m := sparse.RMAT(1<<14, 1<<17, 3)
	c5, err := sparse.ToCSR5(m, sparse.DefaultOmega, sparse.DefaultSigma)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SpMV5(c5, x, y, 0); err != nil {
			b.Fatal(err)
		}
	}
}
