package kernels

import (
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestMergeTransMatchesScanTrans(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, m := range []*sparse.CSR{
			sparse.Tridiag(200),
			sparse.RMAT(256, 3000, 13),
			sparse.Arrow(300, 10, 4),
			sparse.RandomUniform(150, 5, 21),
		} {
			got := MergeTrans(m, workers)
			if err := got.Validate(); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			want := sparse.TransposeToCSC(m)
			if len(got.Val) != len(want.Val) {
				t.Fatal("nnz mismatch")
			}
			for i := range want.ColPtr {
				if got.ColPtr[i] != want.ColPtr[i] {
					t.Fatalf("colptr[%d] = %d, want %d", i, got.ColPtr[i], want.ColPtr[i])
				}
			}
			for k := range want.Val {
				if got.RowIdx[k] != want.RowIdx[k] || got.Val[k] != want.Val[k] {
					t.Fatalf("entry %d: (%d,%v) vs (%d,%v)",
						k, got.RowIdx[k], got.Val[k], want.RowIdx[k], want.Val[k])
				}
			}
		}
	}
}

func TestMergeTransEdgeCases(t *testing.T) {
	// Empty matrix.
	empty, err := (&sparse.COO{Rows: 5, Cols: 5}).ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	out := MergeTrans(empty, 4)
	if out.NNZ() != 0 || len(out.ColPtr) != 6 {
		t.Fatal("empty transpose wrong")
	}
	// Single row with empty rows around it (odd run counts exercise
	// the unpaired-run copy-through path).
	coo := &sparse.COO{Rows: 7, Cols: 7}
	coo.Add(3, 1, 1)
	coo.Add(3, 4, 2)
	coo.Add(6, 0, 3)
	coo.Add(0, 6, 4)
	m, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	got := MergeTrans(m, 2)
	want := sparse.TransposeToCSC(m)
	for k := range want.Val {
		if got.RowIdx[k] != want.RowIdx[k] || got.Val[k] != want.Val[k] {
			t.Fatalf("entry %d differs", k)
		}
	}
}

// Property: MergeTrans and ScanTrans agree byte-for-byte for arbitrary
// structures and worker counts.
func TestPropertyMergeTransEqualsScanTrans(t *testing.T) {
	f := func(seed uint64) bool {
		n := 40 + int(seed%200)
		m := sparse.RandomUniform(n, 1+int(seed%7), seed)
		got := MergeTrans(m, 1+int(seed%5))
		want := sparse.TransposeToCSC(m)
		if len(got.Val) != len(want.Val) {
			return false
		}
		for i := range want.ColPtr {
			if got.ColPtr[i] != want.ColPtr[i] {
				return false
			}
		}
		for k := range want.Val {
			if got.RowIdx[k] != want.RowIdx[k] || got.Val[k] != want.Val[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScanTrans(b *testing.B) {
	m := sparse.RMAT(1<<14, 1<<17, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpTRANS(m, 0)
	}
}

func BenchmarkMergeTrans(b *testing.B) {
	m := sparse.RMAT(1<<14, 1<<17, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeTrans(m, 0)
	}
}
