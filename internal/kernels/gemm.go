// Package kernels provides from-scratch parallel Go implementations of
// the paper's eight scientific kernels (Table 2): GEMM, Cholesky,
// SpMV, SpTRANS, SpTRSV and Stream live here; FFT and the iso3dfd
// stencil have their own packages (internal/fft, internal/stencil).
//
// These are the correctness substrate of the reproduction: they compute
// real answers and are validated against reference implementations and
// algebraic invariants. Their loop/tiling structure mirrors the
// published implementations the paper benchmarks, and the access-stream
// generators in internal/trace replay exactly that structure through
// the memory-hierarchy simulator.
package kernels

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dense"
)

// GEMM computes C = alpha*A*B + beta*C with cache tiling (block size
// nb, the paper's --nb sweep parameter) and row-band parallelism
// across workers — the PLASMA-style tiled algorithm.
func GEMM(alpha float64, a, b *dense.Matrix, beta float64, c *dense.Matrix, nb, workers int) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("kernels: GEMM shape mismatch %dx%d * %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols)
	}
	if nb <= 0 {
		return fmt.Errorf("kernels: GEMM block size %d", nb)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Scale C by beta once up front.
	if beta != 1 {
		for i := 0; i < c.Rows; i++ {
			ci := c.Row(i)
			for j := range ci {
				ci[j] *= beta
			}
		}
	}
	// Tile-row work queue: each task owns a band of C rows, so no two
	// workers ever write the same cache line of C.
	type task struct{ i0, i1 int }
	tasks := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				gemmBand(alpha, a, b, c, t.i0, t.i1, nb)
			}
		}()
	}
	for i0 := 0; i0 < c.Rows; i0 += nb {
		i1 := min(i0+nb, c.Rows)
		tasks <- task{i0, i1}
	}
	close(tasks)
	wg.Wait()
	return nil
}

// gemmBand updates rows [i0,i1) of C using k/j tiling: for each k-tile
// the band of A is reused against all j-tiles of B, the blocking that
// makes GEMM compute bound once nb² floats fit in cache.
func gemmBand(alpha float64, a, b, c *dense.Matrix, i0, i1, nb int) {
	n := b.Cols
	kmax := a.Cols
	for k0 := 0; k0 < kmax; k0 += nb {
		k1 := min(k0+nb, kmax)
		for j0 := 0; j0 < n; j0 += nb {
			j1 := min(j0+nb, n)
			for i := i0; i < i1; i++ {
				ci := c.Row(i)[j0:j1]
				ar := a.Row(i)
				for k := k0; k < k1; k++ {
					aik := alpha * ar[k]
					if aik == 0 {
						continue
					}
					bk := b.Row(k)[j0:j1]
					for j := range ci {
						ci[j] += aik * bk[j]
					}
				}
			}
		}
	}
}

// GEMMFlops returns the Table 2 operation count 2n³ for order n.
func GEMMFlops(n int) float64 { return 2 * float64(n) * float64(n) * float64(n) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
