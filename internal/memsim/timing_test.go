package memsim

import (
	"math"
	"testing"
	"testing/quick"
)

func props(flops float64) KernelProps {
	return KernelProps{Name: "k", Flops: flops, Threads: 8, MLP: 8, Eff: 0.9}
}

func TestKernelPropsValidate(t *testing.T) {
	good := props(1e9)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []KernelProps{
		{Name: "x", Flops: 0, Threads: 1, MLP: 1, Eff: 0.5},
		{Name: "x", Flops: 1, Threads: 0, MLP: 1, Eff: 0.5},
		{Name: "x", Flops: 1, Threads: 1, MLP: 0, Eff: 0.5},
		{Name: "x", Flops: 1, Threads: 1, MLP: 1, Eff: 0},
		{Name: "x", Flops: 1, Threads: 1, MLP: 1, Eff: 1.5},
	} {
		if bad.Validate() == nil {
			t.Errorf("bad props accepted: %+v", bad)
		}
	}
}

func TestEvaluateComputeBound(t *testing.T) {
	cfg := testConfig(ModeDDR)
	// Huge flops, negligible traffic: compute bound at Eff*peak.
	tr := Traffic{FootprintBytes: 1 << 10}
	tr.Bytes[SrcL2] = 1 << 10
	k := props(1e12)
	res, err := Evaluate(&cfg, tr, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bound != BoundCompute {
		t.Fatalf("bound = %s, want compute", res.Bound)
	}
	want := 100.0 * 0.9 // peak * eff, all cores used
	if math.Abs(res.GFlops-want) > 1e-6 {
		t.Fatalf("GFlops = %v, want %v", res.GFlops, want)
	}
}

func TestEvaluateComputeScalesWithCores(t *testing.T) {
	cfg := testConfig(ModeDDR) // 4 cores
	tr := Traffic{FootprintBytes: 1 << 10}
	tr.Bytes[SrcL2] = 1 << 10
	k := props(1e12)
	k.Threads = 2 // half the cores
	res := MustEvaluate(&cfg, tr, k)
	want := 100.0 * 0.9 * 0.5
	if math.Abs(res.GFlops-want) > 1e-6 {
		t.Fatalf("GFlops = %v, want %v", res.GFlops, want)
	}
	// SMT threads beyond core count add no flops.
	k.Threads = 8
	res = MustEvaluate(&cfg, tr, k)
	if math.Abs(res.GFlops-90.0) > 1e-6 {
		t.Fatalf("GFlops = %v, want 90", res.GFlops)
	}
}

func TestEvaluateSinglePrecisionPeak(t *testing.T) {
	cfg := testConfig(ModeDDR)
	tr := Traffic{FootprintBytes: 1 << 10}
	tr.Bytes[SrcL2] = 1 << 10
	k := props(1e12)
	k.SinglePrecision = true
	res := MustEvaluate(&cfg, tr, k)
	if math.Abs(res.GFlops-200*0.9) > 1e-6 {
		t.Fatalf("SP GFlops = %v, want 180", res.GFlops)
	}
}

func TestEvaluateDDRBandwidthBound(t *testing.T) {
	cfg := testConfig(ModeDDR)
	var tr Traffic
	tr.FootprintBytes = 100 << 20   // deep past every cache: full MLP ramp
	tr.Bytes[SrcDDR] = uint64(20e9) // 20 GB demand
	tr.Lines[SrcDDR] = tr.Bytes[SrcDDR] / 64
	k := props(1e9) // tiny compute
	res := MustEvaluate(&cfg, tr, k)
	if res.Bound != BoundDDRBW {
		t.Fatalf("bound = %s, want bw:DDR (latency=%v bw=%v)", res.Bound, res.LatencySec, res.BWSec[SrcDDR])
	}
	if math.Abs(res.Seconds-1.0) > 0.01 {
		t.Fatalf("20GB at 20GB/s should take ~1s, got %v", res.Seconds)
	}
	if math.Abs(res.MemGBs-20) > 0.5 {
		t.Fatalf("achieved bandwidth = %v, want ~20", res.MemGBs)
	}
}

func TestEvaluateLatencyBoundInValley(t *testing.T) {
	cfg := testConfig(ModeDDR)
	// Footprint just past L3 (16KB): MLP ramp is weak, so the same
	// traffic is latency bound — the Stepping model's cache valley.
	var tr Traffic
	tr.FootprintBytes = 17 << 10
	tr.Bytes[SrcDDR] = 1 << 30
	tr.Lines[SrcDDR] = tr.Bytes[SrcDDR] / 64
	k := props(1e6)
	res := MustEvaluate(&cfg, tr, k)
	if res.Bound != BoundLatency {
		t.Fatalf("bound = %s, want latency", res.Bound)
	}

	// Same traffic with a fully ramped footprint is bandwidth bound
	// and strictly faster per byte.
	tr2 := tr
	tr2.FootprintBytes = 10 << 20
	res2 := MustEvaluate(&cfg, tr2, k)
	if res2.Bound != BoundDDRBW {
		t.Fatalf("bound = %s, want bw:DDR", res2.Bound)
	}
	if res2.Seconds >= res.Seconds {
		t.Fatal("full MLP ramp should be faster than the valley")
	}
}

func TestEvaluateSplitPenalty(t *testing.T) {
	cfg := testConfig(ModeFlat)
	var tr Traffic
	tr.FootprintBytes = 100 << 20
	tr.Bytes[SrcMCDRAM] = 4 << 30
	tr.Bytes[SrcDDR] = 4 << 30
	tr.Lines[SrcMCDRAM] = tr.Bytes[SrcMCDRAM] / 64
	tr.Lines[SrcDDR] = tr.Bytes[SrcDDR] / 64
	k := props(1e9)
	clean := MustEvaluate(&cfg, tr, k)
	tr.SplitFlat = true
	split := MustEvaluate(&cfg, tr, k)
	if split.Seconds < clean.Seconds*5 {
		t.Fatalf("split penalty too weak: clean=%v split=%v", clean.Seconds, split.Seconds)
	}
}

func TestEvaluateMCDRAMTagOverhead(t *testing.T) {
	// Identical MCDRAM traffic: cache mode pays tag bandwidth, flat
	// mode does not — flat must be at least as fast.
	var tr Traffic
	tr.FootprintBytes = 1 << 20
	tr.Bytes[SrcMCDRAM] = 8 << 30
	tr.Lines[SrcMCDRAM] = tr.Bytes[SrcMCDRAM] / 64
	k := props(1e9)
	k.Threads, k.MLP = 256, 8 // enough concurrency to be bandwidth bound
	cfgCache := testConfig(ModeCache)
	cfgCache.MSHRs = 4096
	cfgFlat := testConfig(ModeFlat)
	cfgFlat.MSHRs = 4096
	trCache := tr
	trCache.MCTagLines = tr.Lines[SrcMCDRAM] // every access consulted tags
	rc := MustEvaluate(&cfgCache, trCache, k)
	rf := MustEvaluate(&cfgFlat, tr, k)
	if rc.Seconds <= rf.Seconds {
		t.Fatalf("cache mode should pay tag overhead: cache=%v flat=%v", rc.Seconds, rf.Seconds)
	}
}

func TestEvaluateRejectsBadProps(t *testing.T) {
	cfg := testConfig(ModeDDR)
	if _, err := Evaluate(&cfg, Traffic{}, KernelProps{}); err == nil {
		t.Fatal("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustEvaluate should panic")
		}
	}()
	MustEvaluate(&cfg, Traffic{}, KernelProps{})
}

func TestSpilledCapacity(t *testing.T) {
	cfg := testConfig(ModeEDRAM) // L2 4K, L3 16K, eDRAM 64K
	cases := []struct {
		fp   int64
		want int64
	}{
		{2 << 10, 0},       // fits everywhere
		{8 << 10, 4 << 10}, // spills L2
		{32 << 10, 16 << 10},
		// OPM levels never enter the ramp: same spill as without eDRAM.
		{128 << 10, 16 << 10},
	}
	for _, c := range cases {
		if got := spilledCapacity(&cfg, c.fp); got != c.want {
			t.Errorf("spilledCapacity(%d) = %d, want %d", c.fp, got, c.want)
		}
	}
	// Modes must not change the ramp: eDRAM vs DDR identical.
	cfgDDR := testConfig(ModeDDR)
	if got := spilledCapacity(&cfgDDR, 128<<10); got != 16<<10 {
		t.Errorf("ddr spilled = %d, want L3", got)
	}
	// KNL-style hybrid (no L3): only L2 throttles the ramp.
	cfgHy := testConfig(ModeHybrid)
	if got := spilledCapacity(&cfgHy, 48<<10); got != 4<<10 {
		t.Errorf("hybrid spilled = %d, want L2 4K", got)
	}
}

func TestEffectiveMLPRampAndCap(t *testing.T) {
	cfg := testConfig(ModeDDR)
	k := props(1)
	// Deep footprint: full = min(threads*MLP, MSHRs) = min(64, 64).
	tr := Traffic{FootprintBytes: 10 << 20}
	if got := effectiveMLP(&cfg, tr, k); got != 64 {
		t.Fatalf("full MLP = %v, want 64", got)
	}
	// Just past L3: ramp = fp / (6*16K) ~ 0.177 -> 11.3.
	tr.FootprintBytes = 17 << 10
	got := effectiveMLP(&cfg, tr, k)
	if got < 10 || got > 13 {
		t.Fatalf("valley MLP = %v, want ~11.3", got)
	}
	// Never below 1.
	k2 := k
	k2.Threads, k2.MLP = 1, 0.1
	if got := effectiveMLP(&cfg, tr, k2); got != 1 {
		t.Fatalf("MLP floor = %v, want 1", got)
	}
}

// Property: evaluated time is always >= each individual bound and the
// reported GFlop/s is consistent with it.
func TestPropertyEvaluateConsistency(t *testing.T) {
	cfg := testConfig(ModeEDRAM)
	f := func(l2, l3, ed, ddr uint32, fp uint32) bool {
		var tr Traffic
		tr.FootprintBytes = int64(fp)%(1<<24) + 1
		tr.Bytes[SrcL2] = uint64(l2)
		tr.Bytes[SrcL3] = uint64(l3)
		tr.Bytes[SrcEDRAM] = uint64(ed)
		tr.Bytes[SrcDDR] = uint64(ddr)
		tr.Lines[SrcL3] = uint64(l3) / 64
		tr.Lines[SrcEDRAM] = uint64(ed) / 64
		tr.Lines[SrcDDR] = uint64(ddr) / 64
		k := props(1e9)
		res, err := Evaluate(&cfg, tr, k)
		if err != nil {
			return false
		}
		if res.Seconds < res.ComputeSec-1e-15 || res.Seconds < res.LatencySec-1e-15 {
			return false
		}
		for s := SrcL2; s <= SrcDDR; s++ {
			if res.Seconds < res.BWSec[s]-1e-15 {
				return false
			}
		}
		return math.Abs(res.GFlops*res.Seconds*1e9-k.Flops) < k.Flops*1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Shape test: a streaming sweep through a Broadwell-like hierarchy
// must show the Stepping model ordering: on-chip peak > eDRAM region >
// DDR plateau, with eDRAM strictly better than DDR-only in the
// effective region.
func TestSteppingShapeOnStreamSweep(t *testing.T) {
	run := func(mode Mode, bytes int64) Result {
		cfg := testConfig(mode)
		s := MustNewSim(cfg)
		buf := s.Alloc("x", bytes)
		buf.LoadLines(0, bytes) // cold
		s.ResetTraffic()
		for i := 0; i < 3; i++ {
			buf.LoadLines(0, bytes)
		}
		k := props(float64(bytes)) // 1 flop/byte: GFlops tracks GB/s
		return MustEvaluate(&cfg, s.Traffic(), k)
	}
	inL2 := run(ModeDDR, 2<<10)
	inEDRAM := run(ModeEDRAM, 32<<10) // between L3 16K and eDRAM 64K
	sameDDR := run(ModeDDR, 32<<10)
	plateauE := run(ModeEDRAM, 4<<20) // far past eDRAM
	plateauD := run(ModeDDR, 4<<20)

	if inL2.GFlops <= inEDRAM.GFlops {
		t.Fatalf("on-chip peak (%v) should beat eDRAM region (%v)", inL2.GFlops, inEDRAM.GFlops)
	}
	if inEDRAM.GFlops <= sameDDR.GFlops {
		t.Fatalf("eDRAM effective region (%v) should beat DDR-only (%v)", inEDRAM.GFlops, sameDDR.GFlops)
	}
	if ratio := plateauE.GFlops / plateauD.GFlops; ratio < 0.9 || ratio > 1.3 {
		t.Fatalf("plateaus should converge, ratio %v", ratio)
	}
}
