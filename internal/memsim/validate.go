package memsim

import (
	"fmt"
	"math"
)

// This file is the result-validation gate of the resilience layer: the
// simulator invariants every finished sweep cell must satisfy before
// its result may reach a report or the persistent store. A silently
// invalid cell (NaN throughput, impossible hit rate, traffic appearing
// from nowhere) is exactly the class of error that corrupts a
// 968-matrix figure without failing anything, so violations are
// surfaced as errors and the caller quarantines the result
// (resilience.Quarantine) instead of committing it.

// checkFinite rejects NaN/Inf and negative values for a named field.
func checkFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("memsim: %s is not finite (%v)", name, v)
	}
	if v < 0 {
		return fmt.Errorf("memsim: %s is negative (%v)", name, v)
	}
	return nil
}

// Validate checks the cross-field invariants of one evaluated result:
// throughput, time, bandwidth and flops must be finite and
// non-negative, a positive-flops run must have positive time and
// throughput, and the embedded traffic must satisfy its own
// conservation rules.
func (r *Result) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"GFlops", r.GFlops}, {"Seconds", r.Seconds}, {"MemGBs", r.MemGBs},
		{"Flops", r.Flops}, {"ComputeSec", r.ComputeSec}, {"LatencySec", r.LatencySec},
	} {
		if err := checkFinite(f.name, f.v); err != nil {
			return err
		}
	}
	if r.FootprintBytes < 0 {
		return fmt.Errorf("memsim: negative footprint (%d)", r.FootprintBytes)
	}
	if r.Flops > 0 && (r.Seconds <= 0 || r.GFlops <= 0) {
		return fmt.Errorf("memsim: %g flops evaluated to non-positive time/throughput (%gs, %g GFlop/s)",
			r.Flops, r.Seconds, r.GFlops)
	}
	return r.Traffic.Validate()
}

// Validate checks the traffic conservation invariants: an access
// stream must have been served by some source (bytes cannot vanish),
// and no source may report line fills without bytes (bytes cannot
// appear from nowhere).
func (t *Traffic) Validate() error {
	if t.FootprintBytes < 0 {
		return fmt.Errorf("memsim: traffic footprint negative (%d)", t.FootprintBytes)
	}
	var served uint64
	for src := Source(0); src < NumSources; src++ {
		if t.Lines[src] > 0 && t.Bytes[src] == 0 {
			return fmt.Errorf("memsim: source %s filled %d lines but served 0 bytes", src, t.Lines[src])
		}
		served += t.Bytes[src]
	}
	if t.Accesses > 0 && served == 0 {
		return fmt.Errorf("memsim: %d accesses issued but no source served any bytes", t.Accesses)
	}
	return nil
}

// CheckInvariants validates the per-level cache statistics of the
// simulator's last run: every level's hits and misses must partition
// its accesses (hit and miss rates in [0,1] by construction), and
// writebacks — dirty evictions — can never exceed evictions. The
// harness runs it after each cell as part of the result gate.
func (s *Sim) CheckInvariants() error {
	for _, ls := range s.LevelStats() {
		st := ls.Stats
		if st.Hits+st.Misses != st.Accesses {
			return fmt.Errorf("memsim: level %s: hits %d + misses %d != accesses %d (rate outside [0,1])",
				ls.Level, st.Hits, st.Misses, st.Accesses)
		}
		if st.Writebacks > st.Evictions {
			return fmt.Errorf("memsim: level %s: writebacks %d exceed evictions %d",
				ls.Level, st.Writebacks, st.Evictions)
		}
	}
	return s.traffic.Validate()
}
