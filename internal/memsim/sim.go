package memsim

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Address-space layout. Flat-mode MCDRAM occupies a low region so the
// allocator can place data there preferentially; DDR allocations start
// at ddrBase. The regions never collide at simulated scales.
const (
	mcdramBase = uint64(0)
	ddrBase    = uint64(1) << 44
)

// Traffic accumulates the per-source byte counts of one simulated run.
type Traffic struct {
	// Bytes[s] counts demand bytes served to the cores by source s.
	Bytes [NumSources]uint64
	// WBBytes[s] counts writeback bytes absorbed by source s (only
	// memory-side sources accumulate writebacks; inter-cache victim
	// movement is free on-die traffic).
	WBBytes [NumSources]uint64
	// Lines[s] counts demand line fills served by source s (latency
	// bound input).
	Lines [NumSources]uint64
	// MCTagLines counts accesses that consulted the MCDRAM cache's
	// in-MCDRAM tags (cache/hybrid modes); each costs a slice of
	// MCDRAM bandwidth beyond the data transfer. Flat-resident
	// accesses never pay it — the root of hybrid > cache for GEMM.
	MCTagLines uint64
	// Accesses is the total number of load/store byte-accesses issued.
	Accesses uint64
	// FootprintBytes is the total simulated allocation size.
	FootprintBytes int64
	// SplitFlat is true when flat-mode allocations straddled MCDRAM
	// and DDR (triggers the split-allocation penalty).
	SplitFlat bool
}

// TotalMemBytes returns demand+writeback bytes that crossed the
// package boundary or OPM interface (everything below L3).
func (t *Traffic) TotalMemBytes() uint64 {
	return t.Bytes[SrcEDRAM] + t.Bytes[SrcMCDRAM] + t.Bytes[SrcDDR] +
		t.WBBytes[SrcEDRAM] + t.WBBytes[SrcMCDRAM] + t.WBBytes[SrcDDR]
}

// Buffer is a simulated allocation. Offsets are byte offsets.
type Buffer struct {
	sim  *Sim
	base uint64
	size int64
	name string
}

// Size returns the allocation size in bytes.
func (b Buffer) Size() int64 { return b.size }

// InMCDRAM reports whether the buffer's base resides in flat-mode
// MCDRAM.
func (b Buffer) InMCDRAM() bool { return b.base < ddrBase }

// check panics on out-of-allocation accesses: a trace generator bug
// would otherwise silently alias another buffer's lines and corrupt
// the experiment (the simulated analogue of a segfault).
func (b Buffer) check(off, n int64) {
	if off < 0 || n <= 0 || off+n > (b.size+cache.LineSize-1)&^(cache.LineSize-1) {
		panic(fmt.Sprintf("memsim: buffer %q: access [%d, %d) outside %d bytes",
			b.name, off, off+n, b.size))
	}
}

// Load issues a read of n bytes at byte offset off.
func (b Buffer) Load(off int64, n int) {
	b.check(off, int64(n))
	b.sim.touch(b.base+uint64(off), int64(n), false)
}

// Store issues a write of n bytes at byte offset off.
func (b Buffer) Store(off int64, n int) {
	b.check(off, int64(n))
	b.sim.touch(b.base+uint64(off), int64(n), true)
}

// LoadLines issues reads covering [off, off+n) one line at a time —
// a fast path for streaming sweeps.
func (b Buffer) LoadLines(off, n int64) {
	b.check(off, n)
	b.sim.touchLines(b.base+uint64(off), n, false)
}

// StoreLines issues writes covering [off, off+n) one line at a time.
func (b Buffer) StoreLines(off, n int64) {
	b.check(off, n)
	b.sim.touchLines(b.base+uint64(off), n, true)
}

// Sim is one simulated machine instance. It is not safe for concurrent
// use; parallel kernels are modelled by interleaving their access
// streams and by the thread/MLP terms of the timing model.
type Sim struct {
	cfg Config

	l1      *cache.SetAssoc
	l2      *cache.SetAssoc
	l3      *cache.SetAssoc
	edram   *cache.SetAssoc
	edramMS *cache.SetAssoc     // memory-side eDRAM (Skylake arrangement)
	mcCache *cache.DirectMapped // MCDRAM cache portion (cache/hybrid)

	mcFlatCap   int64 // flat-addressable MCDRAM bytes (flat/hybrid)
	mcAllocated int64
	ddrCursor   uint64

	traffic  Traffic
	lastLine uint64 // trivial same-line coalescing for scalar streams
	lastWr   bool
	hasLast  bool
}

// NewSim builds a simulator from a validated config.
func NewSim(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, ddrCursor: ddrBase}
	if cfg.L1.Size > 0 {
		s.l1 = cache.NewSetAssoc("L1", cfg.L1.Size, cfg.L1.Ways)
	}
	s.l2 = cache.NewSetAssoc("L2", cfg.L2.Size, cfg.L2.Ways)
	if cfg.L3.Size > 0 {
		s.l3 = cache.NewSetAssoc("L3", cfg.L3.Size, cfg.L3.Ways)
	}
	switch cfg.Mode {
	case ModeEDRAM:
		s.edram = cache.NewSetAssoc("eDRAM", cfg.EDRAM.Size, cfg.EDRAM.Ways)
	case ModeEDRAMMemSide:
		s.edramMS = cache.NewSetAssoc("eDRAM-MS", cfg.EDRAM.Size, cfg.EDRAM.Ways)
	case ModeCache:
		s.mcCache = cache.NewDirectMapped("MCDRAM$", cfg.MCDRAMBytes)
	case ModeFlat:
		s.mcFlatCap = cfg.MCDRAMBytes
	case ModeHybrid:
		s.mcCache = cache.NewDirectMapped("MCDRAM$", cfg.MCDRAMBytes/2)
		s.mcFlatCap = cfg.MCDRAMBytes / 2
	}
	return s, nil
}

// MustNewSim is NewSim that panics on error (for tests and internal
// construction from vetted platform definitions).
func MustNewSim(cfg Config) *Sim {
	s, err := NewSim(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the simulator's configuration.
func (s *Sim) Config() Config { return s.cfg }

// Traffic returns a snapshot of the accumulated traffic counters.
func (s *Sim) Traffic() Traffic { return s.traffic }

// Reset returns the simulator to its freshly-constructed state: caches
// cold, allocator rewound, traffic counters cleared. A reset simulator
// reproduces a fresh one's traffic exactly, which lets sweep workers
// pool one simulator per configuration instead of paying the cache
// array allocations of NewSim once per sweep cell.
func (s *Sim) Reset() {
	for _, c := range []*cache.SetAssoc{s.l1, s.l2, s.l3, s.edram, s.edramMS} {
		if c != nil {
			c.Reset()
		}
	}
	if s.mcCache != nil {
		s.mcCache.Reset()
	}
	s.mcAllocated = 0
	s.ddrCursor = ddrBase
	s.traffic = Traffic{}
	s.lastLine, s.lastWr, s.hasLast = 0, false, false
}

// ResetTraffic clears traffic counters but keeps cache contents — used
// to discard warm-up passes so steady-state behaviour is measured, as
// the paper averages multiple executions.
func (s *Sim) ResetTraffic() {
	fp := s.traffic.FootprintBytes
	split := s.traffic.SplitFlat
	s.traffic = Traffic{FootprintBytes: fp, SplitFlat: split}
	s.hasLast = false
}

// LevelStats is the per-level cache statistics of one simulator: one
// entry per instantiated level, nearest to farthest. Names are
// metric-safe lowercase ("l1", "mcdram_cache", ...).
type LevelStats struct {
	Level string
	Stats cache.Stats
}

// LevelStats snapshots the hit/miss/eviction/writeback counters of
// every cache level the current mode instantiates.
func (s *Sim) LevelStats() []LevelStats {
	var out []LevelStats
	add := func(name string, st *cache.Stats) {
		out = append(out, LevelStats{Level: name, Stats: *st})
	}
	for _, lv := range []struct {
		name string
		c    *cache.SetAssoc
	}{{"l1", s.l1}, {"l2", s.l2}, {"l3", s.l3}, {"edram", s.edram}, {"edram_ms", s.edramMS}} {
		if lv.c != nil {
			add(lv.name, lv.c.Stats())
		}
	}
	if s.mcCache != nil {
		add("mcdram_cache", s.mcCache.Stats())
	}
	return out
}

// RecordMetrics adds the simulator's current per-level cache
// statistics and traffic counters into reg (no-op when reg is nil):
//
//	memsim/runs                                 simulations recorded
//	memsim/<level>/{accesses,hits,misses,evictions,writebacks}
//	memsim/traffic/<source>_bytes               demand bytes served
//	memsim/traffic/<source>_wb_bytes            writeback bytes absorbed
//	memsim/traffic/<source>_lines               demand line fills
//	memsim/traffic/{mc_tag_lines,accesses}
//
// The sweep harness calls it once per finished job — RunOn resets the
// simulator first, so each call contributes exactly that job's counts
// and the registry accumulates the whole sweep's totals.
//
//opmlint:allow counternames — level and traffic-source segments come from closed sets (Config.Levels, validated at NewSim, and the Source enum), so the full names are enumerable from the docs above
func (s *Sim) RecordMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("memsim/runs").Inc()
	for _, ls := range s.LevelStats() {
		p := "memsim/" + ls.Level + "/"
		reg.Counter(p + "accesses").AddUint64(ls.Stats.Accesses)
		reg.Counter(p + "hits").AddUint64(ls.Stats.Hits)
		reg.Counter(p + "misses").AddUint64(ls.Stats.Misses)
		reg.Counter(p + "evictions").AddUint64(ls.Stats.Evictions)
		reg.Counter(p + "writebacks").AddUint64(ls.Stats.Writebacks)
	}
	for src := Source(0); src < NumSources; src++ {
		name := strings.ToLower(src.String())
		if b := s.traffic.Bytes[src]; b > 0 {
			reg.Counter("memsim/traffic/" + name + "_bytes").AddUint64(b)
		}
		if wb := s.traffic.WBBytes[src]; wb > 0 {
			reg.Counter("memsim/traffic/" + name + "_wb_bytes").AddUint64(wb)
		}
		if l := s.traffic.Lines[src]; l > 0 {
			reg.Counter("memsim/traffic/" + name + "_lines").AddUint64(l)
		}
	}
	reg.Counter("memsim/traffic/mc_tag_lines").AddUint64(s.traffic.MCTagLines)
	reg.Counter("memsim/traffic/accesses").AddUint64(s.traffic.Accesses)
}

// Alloc reserves a simulated buffer. In flat and hybrid modes the
// allocator prefers MCDRAM (the paper's "numactl -p") and spills to
// DDR once the flat region is exhausted, setting the split flag.
func (s *Sim) Alloc(name string, size int64) Buffer {
	if size <= 0 {
		panic(fmt.Sprintf("memsim: Alloc(%s) with size %d", name, size))
	}
	// Round to line size so buffers never share lines.
	rounded := (size + cache.LineSize - 1) &^ (cache.LineSize - 1)
	s.traffic.FootprintBytes += size
	if s.mcFlatCap > 0 && s.mcAllocated+rounded <= s.mcFlatCap {
		base := mcdramBase + uint64(s.mcAllocated)
		s.mcAllocated += rounded
		return Buffer{sim: s, base: base, size: size, name: name}
	}
	// Only pure flat mode suffers the MCDRAM+DDR straddle pathology;
	// in hybrid mode the cached half absorbs the spill gracefully
	// (Section 4.2.1 II vs III).
	if s.cfg.Mode == ModeFlat && s.mcAllocated > 0 {
		s.traffic.SplitFlat = true
	}
	base := s.ddrCursor
	s.ddrCursor += uint64(rounded)
	return Buffer{sim: s, base: base, size: size, name: name}
}

// Footprint returns total allocated bytes (simulated scale).
func (s *Sim) Footprint() int64 { return s.traffic.FootprintBytes }

// touch issues an access of n bytes at byte address addr, visiting
// each covered line once.
func (s *Sim) touch(addr uint64, n int64, write bool) {
	s.traffic.Accesses++
	first := cache.LineAddr(addr)
	last := cache.LineAddr(addr + uint64(n) - 1)
	for line := first; line <= last; line++ {
		// Same-line coalescing: consecutive scalar accesses to one
		// line collapse into the first (an L1 would absorb them; this
		// keeps the filter cache small and the simulation fast).
		if s.hasLast && line == s.lastLine && (!write || s.lastWr) {
			s.traffic.Bytes[SrcL1] += cache.LineSize
			continue
		}
		s.accessLine(line, write)
		s.lastLine, s.lastWr, s.hasLast = line, write, true
	}
}

// touchLines issues a line-granular streaming access over [addr,
// addr+n).
func (s *Sim) touchLines(addr uint64, n int64, write bool) {
	first := cache.LineAddr(addr)
	last := cache.LineAddr(addr + uint64(n) - 1)
	s.traffic.Accesses += last - first + 1
	for line := first; line <= last; line++ {
		s.accessLine(line, write)
	}
	s.hasLast = false
}

// accessLine walks the hierarchy for one line access.
func (s *Sim) accessLine(line uint64, write bool) {
	if s.l1 != nil {
		hit, ev := s.l1.Access(line, write)
		if hit {
			s.traffic.Bytes[SrcL1] += cache.LineSize
			return
		}
		if ev.Valid && ev.Dirty {
			// Dirty L1 victims merge into L2 (lines were filled
			// through L2, so they are normally still present).
			s.l2.Insert(ev.Addr, true)
		}
		// fall through: fill from L2 and below, line installed above.
	}
	hit, ev := s.l2.Access(line, write)
	if hit {
		s.traffic.Bytes[SrcL2] += cache.LineSize
		return
	}
	if ev.Valid && ev.Dirty {
		s.evictFromL2(ev.Addr)
	}
	if s.l3 != nil {
		hit, ev3 := s.l3.Access(line, false)
		if ev3.Valid {
			s.evictFromL3(ev3)
		}
		if hit {
			s.traffic.Bytes[SrcL3] += cache.LineSize
			s.traffic.Lines[SrcL3]++
			return
		}
		// L3 miss: probe the eDRAM victim cache if present.
		if s.edram != nil {
			if found, dirty := s.edram.Invalidate(line); found {
				s.traffic.Bytes[SrcEDRAM] += cache.LineSize
				s.traffic.Lines[SrcEDRAM]++
				// Promoted line re-enters L3 (already inserted by the
				// Access fill above); preserve dirtiness.
				if dirty {
					s.l3.Insert(line, true)
				}
				return
			}
		}
		s.serveFromMemory(line, false)
		return
	}
	// KNL path: below L2 sits MCDRAM (mode-dependent) or DDR.
	s.serveFromMemory(line, false)
}

// evictFromL2 handles a dirty L2 victim: it is absorbed by L3 when
// present, otherwise written back to memory.
func (s *Sim) evictFromL2(line uint64) {
	if s.l3 != nil {
		ev := s.l3.Insert(line, true)
		if ev.Valid {
			s.evictFromL3(ev)
		}
		return
	}
	s.writebackToMemory(line)
}

// evictFromL3 routes an L3 victim into the eDRAM victim cache when
// enabled, else writes back dirty lines to memory.
func (s *Sim) evictFromL3(ev cache.Line) {
	if s.edram != nil {
		// The victim install itself consumes eDRAM (OPIO) bandwidth.
		s.traffic.WBBytes[SrcEDRAM] += cache.LineSize
		ev4 := s.edram.Insert(ev.Addr, ev.Dirty)
		if ev4.Valid && ev4.Dirty {
			s.writebackToMemory(ev4.Addr)
		}
		return
	}
	if ev.Dirty {
		s.writebackToMemory(ev.Addr)
	}
}

// serveFromMemory satisfies a demand fill from the memory side
// (MCDRAM and/or DDR depending on mode and address region).
func (s *Sim) serveFromMemory(line uint64, _ bool) {
	byteAddr := line << cache.LineShift
	switch s.cfg.Mode {
	case ModeFlat:
		if byteAddr < ddrBase {
			s.count(SrcMCDRAM)
		} else {
			s.count(SrcDDR)
		}
	case ModeCache:
		s.mcCacheAccess(line)
	case ModeHybrid:
		if byteAddr < ddrBase {
			s.count(SrcMCDRAM) // flat half
		} else {
			s.mcCacheAccess(line) // cached half in front of DDR
		}
	case ModeEDRAMMemSide:
		s.edramMSAccess(line)
	default: // ModeDDR, ModeEDRAM
		s.count(SrcDDR)
	}
}

// edramMSAccess models the Skylake-style memory-side eDRAM: a
// set-associative buffer behind the DRAM controller that caches all
// DRAM traffic (fills install directly, unlike the Broadwell victim
// cache that only captures L3 evictions).
func (s *Sim) edramMSAccess(line uint64) {
	hit, ev := s.edramMS.Access(line, false)
	if ev.Valid && ev.Dirty {
		s.traffic.WBBytes[SrcDDR] += cache.LineSize
	}
	if hit {
		s.count(SrcEDRAM)
		return
	}
	s.count(SrcDDR)
	// The install occupies eDRAM bandwidth.
	s.traffic.WBBytes[SrcEDRAM] += cache.LineSize
}

// mcCacheAccess models the direct-mapped memory-side MCDRAM cache.
func (s *Sim) mcCacheAccess(line uint64) {
	s.traffic.MCTagLines++
	hit, ev := s.mcCache.Access(line, false)
	if ev.Valid && ev.Dirty {
		s.traffic.WBBytes[SrcDDR] += cache.LineSize
	}
	if hit {
		s.count(SrcMCDRAM)
		return
	}
	// Miss: the fill crosses DDR and the install occupies MCDRAM
	// bandwidth; demand bytes attribute to DDR.
	s.count(SrcDDR)
	s.traffic.WBBytes[SrcMCDRAM] += cache.LineSize
}

// writebackToMemory accounts a dirty line leaving the cache hierarchy.
func (s *Sim) writebackToMemory(line uint64) {
	byteAddr := line << cache.LineShift
	switch s.cfg.Mode {
	case ModeFlat:
		if byteAddr < ddrBase {
			s.traffic.WBBytes[SrcMCDRAM] += cache.LineSize
		} else {
			s.traffic.WBBytes[SrcDDR] += cache.LineSize
		}
	case ModeEDRAMMemSide:
		ev := s.edramMS.Insert(line, true)
		if ev.Valid && ev.Dirty {
			s.traffic.WBBytes[SrcDDR] += cache.LineSize
		}
		s.traffic.WBBytes[SrcEDRAM] += cache.LineSize
	case ModeCache:
		// Memory-side cache absorbs the writeback.
		ev := s.mcCache.Insert(line, true)
		if ev.Valid && ev.Dirty {
			s.traffic.WBBytes[SrcDDR] += cache.LineSize
		}
		s.traffic.WBBytes[SrcMCDRAM] += cache.LineSize
	case ModeHybrid:
		if byteAddr < ddrBase {
			s.traffic.WBBytes[SrcMCDRAM] += cache.LineSize
		} else {
			ev := s.mcCache.Insert(line, true)
			if ev.Valid && ev.Dirty {
				s.traffic.WBBytes[SrcDDR] += cache.LineSize
			}
			s.traffic.WBBytes[SrcMCDRAM] += cache.LineSize
		}
	default:
		s.traffic.WBBytes[SrcDDR] += cache.LineSize
	}
}

func (s *Sim) count(src Source) {
	s.traffic.Bytes[src] += cache.LineSize
	s.traffic.Lines[src]++
}
