// Package memsim simulates the memory hierarchies of the two
// OPM-equipped machines studied in the paper: Broadwell with an eDRAM
// L4 victim cache, and Knights Landing with MCDRAM in cache, flat or
// hybrid mode. Kernel access-stream generators (internal/trace) drive a
// Sim; the resulting per-level traffic feeds a bounded throughput model
// (Evaluate) that is the paper's "Stepping model" made executable:
//
//	T = max( compute, per-level bandwidth, memory latency / MLP )
//
// Capacities in a Config are already scaled (see internal/platform);
// bandwidths, latencies and compute peaks are the real machine values,
// so simulated GFlop/s are directly comparable to the paper's.
package memsim

import "fmt"

// Mode selects the memory configuration under test (Table 1 of the
// paper).
type Mode int

const (
	// ModeDDR disables the OPM: Broadwell with eDRAM off, or KNL
	// preferring DDR ("w/o MCDRAM").
	ModeDDR Mode = iota
	// ModeEDRAM enables the Broadwell 128 MB eDRAM L4 victim cache.
	ModeEDRAM
	// ModeCache configures KNL MCDRAM as a direct-mapped memory-side
	// cache in front of DDR.
	ModeCache
	// ModeFlat exposes KNL MCDRAM as addressable memory; allocations
	// prefer MCDRAM (numactl -p) and spill to DDR when exhausted.
	ModeFlat
	// ModeHybrid splits KNL MCDRAM: half direct-mapped cache, half
	// flat addressable memory.
	ModeHybrid
	// ModeEDRAMMemSide places the eDRAM behind the DRAM controller as
	// a memory-side buffer caching all DRAM traffic — the Skylake
	// arrangement the paper contrasts with Broadwell's CPU-side
	// victim cache (Section 2.1).
	ModeEDRAMMemSide
)

// String returns the label used in reports (matching the paper's
// legends).
func (m Mode) String() string {
	switch m {
	case ModeDDR:
		return "ddr"
	case ModeEDRAM:
		return "edram"
	case ModeCache:
		return "cache"
	case ModeFlat:
		return "flat"
	case ModeHybrid:
		return "hybrid"
	case ModeEDRAMMemSide:
		return "edram-ms"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// MarshalText renders the mode's report label, so JSON maps keyed by
// Mode serialize as {"ddr": ...} with deterministic sorted keys —
// what the persistent result store round-trips.
func (m Mode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText parses a report label back into a Mode.
func (m *Mode) UnmarshalText(b []byte) error {
	v, err := ParseMode(string(b))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// ParseMode is the inverse of Mode.String for the known labels.
func ParseMode(s string) (Mode, error) {
	for mode := ModeDDR; mode <= ModeEDRAMMemSide; mode++ {
		if mode.String() == s {
			return mode, nil
		}
	}
	return 0, fmt.Errorf("memsim: unknown mode %q", s)
}

// Source identifies where a memory request was served from. Sources
// are ordered from nearest to farthest.
type Source int

const (
	// SrcL1 is the small private first-level filter cache.
	SrcL1 Source = iota
	// SrcL2 is the private/tile second-level cache.
	SrcL2
	// SrcL3 is the shared on-chip LLC (Broadwell only).
	SrcL3
	// SrcEDRAM is the on-package eDRAM L4 victim cache (Broadwell).
	SrcEDRAM
	// SrcMCDRAM is on-package MCDRAM, serving either cache-mode hits
	// or flat-mode resident data (KNL).
	SrcMCDRAM
	// SrcDDR is off-package DRAM.
	SrcDDR
	// NumSources is the number of Source values.
	NumSources
)

// String returns the source name.
func (s Source) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcL2:
		return "L2"
	case SrcL3:
		return "L3"
	case SrcEDRAM:
		return "eDRAM"
	case SrcMCDRAM:
		return "MCDRAM"
	case SrcDDR:
		return "DDR"
	}
	return fmt.Sprintf("src(%d)", int(s))
}

// CacheCfg describes one cache level. A zero Size disables the level.
type CacheCfg struct {
	Size int64 // capacity in bytes (already scaled)
	Ways int   // associativity; ignored for direct-mapped levels
}

// LinkParams gives the sustained bandwidth and unloaded latency of a
// hierarchy source as seen by the cores.
type LinkParams struct {
	BWGBs float64 // sustained bandwidth, GB/s (aggregate)
	LatNS float64 // unloaded access latency, ns
}

// Config fully describes a simulated machine in one memory mode.
type Config struct {
	Name string // e.g. "broadwell" or "knl"
	Mode Mode

	L1 CacheCfg // private filter (set-associative)
	L2 CacheCfg // set-associative
	L3 CacheCfg // set-associative; zero on KNL

	// EDRAM is the victim L4 (Broadwell, ModeEDRAM only).
	EDRAM CacheCfg
	// MCDRAMBytes is the total MCDRAM capacity (KNL). In ModeCache the
	// whole capacity is the direct-mapped cache; in ModeFlat the whole
	// capacity is addressable; in ModeHybrid half is each.
	MCDRAMBytes int64

	// Link parameters indexed by Source. Unused sources may be zero.
	Links [NumSources]LinkParams

	// PeakDPGFlops and PeakSPGFlops are theoretical peaks.
	PeakDPGFlops float64
	PeakSPGFlops float64
	// Cores and MaxThreads describe the compute resources.
	Cores      int
	MaxThreads int
	// MSHRs is the total number of outstanding memory requests the
	// chip sustains (caps memory-level parallelism).
	MSHRs int
	// SplitPenalty divides the effective bandwidth of both memories
	// when a flat-mode allocation straddles MCDRAM and DDR — the
	// paper's observed NoC/bus-conflict pathology (Section 4.2.1 II).
	SplitPenalty float64
	// MLPRampFactor scales how quickly memory-level parallelism
	// (prefetch depth, outstanding misses) builds up as the working
	// set grows past a cache capacity; used by Evaluate to produce
	// the Stepping model's cache valleys. A working set of
	// MLPRampFactor*C reaches full MLP after spilling a cache of
	// capacity C.
	MLPRampFactor float64
	// Scale is the capacity-scaling factor applied to Size fields and
	// problem footprints (reporting multiplies back).
	Scale int64
}

// Validate checks internal consistency of the configuration.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("memsim: config missing name")
	}
	if c.L2.Size <= 0 {
		return fmt.Errorf("memsim: %s: L2 required", c.Name)
	}
	switch c.Mode {
	case ModeEDRAM, ModeEDRAMMemSide:
		if c.EDRAM.Size <= 0 {
			return fmt.Errorf("memsim: %s: eDRAM modes need EDRAM size", c.Name)
		}
	case ModeCache, ModeFlat, ModeHybrid:
		if c.MCDRAMBytes <= 0 {
			return fmt.Errorf("memsim: %s: MCDRAM mode needs MCDRAMBytes", c.Name)
		}
	case ModeDDR:
	default:
		return fmt.Errorf("memsim: %s: unknown mode %d", c.Name, int(c.Mode))
	}
	if c.Links[SrcDDR].BWGBs <= 0 {
		return fmt.Errorf("memsim: %s: DDR bandwidth required", c.Name)
	}
	if c.Scale <= 0 {
		return fmt.Errorf("memsim: %s: scale must be >= 1", c.Name)
	}
	if c.PeakDPGFlops <= 0 {
		return fmt.Errorf("memsim: %s: compute peak required", c.Name)
	}
	return nil
}
