package memsim

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestModeTextRoundTrip: every Mode label parses back to itself, and a
// Mode-keyed map survives a JSON round trip bit-for-bit — the property
// the persistent result store relies on to make warm runs render
// byte-identical reports.
func TestModeTextRoundTrip(t *testing.T) {
	for m := ModeDDR; m <= ModeEDRAMMemSide; m++ {
		got, err := ParseMode(m.String())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got != m {
			t.Fatalf("ParseMode(%q) = %v want %v", m.String(), got, m)
		}
	}
	if _, err := ParseMode("nonsense"); err == nil {
		t.Fatal("ParseMode accepted garbage")
	}

	in := map[Mode]float64{ModeDDR: 1.1, ModeEDRAM: 9.600000000000001, ModeHybrid: 0.125}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out map[Mode]float64
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %v -> %s -> %v", in, data, out)
	}
}
