package memsim

import (
	"testing"

	"repro/internal/obs"
)

// TestLevelStatsPerMode checks each mode exposes exactly its
// instantiated levels, nearest first.
func TestLevelStatsPerMode(t *testing.T) {
	want := map[Mode][]string{
		// testConfig gives the eDRAM modes an L3 (Broadwell-like) and
		// the MCDRAM modes none (KNL-like).
		ModeDDR:          {"l1", "l2", "l3"},
		ModeEDRAM:        {"l1", "l2", "l3", "edram"},
		ModeEDRAMMemSide: {"l1", "l2", "l3", "edram_ms"},
		ModeCache:        {"l1", "l2", "mcdram_cache"},
		ModeFlat:         {"l1", "l2"},
		ModeHybrid:       {"l1", "l2", "mcdram_cache"},
	}
	for mode, levels := range want {
		s := MustNewSim(testConfig(mode))
		got := s.LevelStats()
		if len(got) != len(levels) {
			t.Fatalf("%s: %d levels, want %v", mode, len(got), levels)
		}
		for i, ls := range got {
			if ls.Level != levels[i] {
				t.Errorf("%s: level[%d] = %q, want %q", mode, i, ls.Level, levels[i])
			}
		}
	}
}

// TestRecordMetricsAccumulates drives two identical runs into one
// registry and checks the counters doubled — the per-job snapshot
// contract the sweep harness relies on.
func TestRecordMetricsAccumulates(t *testing.T) {
	cfg := testConfig(ModeCache)
	run := func(s *Sim) {
		b := s.Alloc("b", 48<<10)
		b.LoadLines(0, b.Size())
		b.StoreLines(0, b.Size())
	}
	reg := obs.NewRegistry()
	s := MustNewSim(cfg)
	run(s)
	s.RecordMetrics(reg)
	first := reg.Snapshot().Counters
	if first["memsim/runs"] != 1 {
		t.Fatalf("runs = %d", first["memsim/runs"])
	}
	for _, key := range []string{
		"memsim/l1/accesses", "memsim/l2/misses", "memsim/mcdram_cache/accesses",
		"memsim/traffic/ddr_bytes", "memsim/traffic/accesses", "memsim/traffic/mc_tag_lines",
	} {
		if first[key] <= 0 {
			t.Errorf("counter %s not recorded (have %v)", key, first[key])
		}
	}
	s.Reset()
	run(s)
	s.RecordMetrics(reg)
	second := reg.Snapshot().Counters
	for key, v := range first {
		if second[key] != 2*v {
			t.Errorf("%s = %d after two identical runs, want %d", key, second[key], 2*v)
		}
	}
	// Disabled telemetry is a no-op, not a crash.
	s.RecordMetrics(nil)
}
