package memsim

import "testing"

// exercise drives a deterministic mixed access pattern that touches
// every structure Reset must rewind: two buffers (the second large
// enough to spill flat MCDRAM), scalar loads/stores with same-line
// coalescing, streaming line sweeps, and enough reuse to cause
// evictions and writebacks at every level.
func exercise(s *Sim) Traffic {
	a := s.Alloc("a", 24<<10)
	b := s.Alloc("b", 48<<10)
	for pass := 0; pass < 3; pass++ {
		for off := int64(0); off < a.Size(); off += 8 {
			a.Load(off, 8)
			if off%64 == 0 {
				a.Store(off, 8)
			}
		}
		b.LoadLines(0, b.Size())
		b.StoreLines(0, b.Size()/2)
		// Strided reuse to churn the set-associative levels.
		for off := int64(0); off+8 <= b.Size(); off += 4096 {
			b.Load(off, 8)
		}
	}
	return s.Traffic()
}

// TestResetReproducesFreshSim proves a reset simulator's traffic is
// bit-identical to a brand-new one's in every memory mode — the
// property the sweep engine's per-worker simulator pool relies on.
func TestResetReproducesFreshSim(t *testing.T) {
	for _, mode := range []Mode{ModeDDR, ModeEDRAM, ModeEDRAMMemSide, ModeCache, ModeFlat, ModeHybrid} {
		cfg := testConfig(mode)
		pooled := MustNewSim(cfg)
		first := exercise(pooled)

		// A second run on the same sim without Reset must differ in
		// general (warm caches, allocator advanced); after Reset it
		// must match a fresh sim exactly.
		pooled.Reset()
		if tr := pooled.Traffic(); tr != (Traffic{}) {
			t.Fatalf("%s: Reset left traffic %+v", mode, tr)
		}
		again := exercise(pooled)
		fresh := exercise(MustNewSim(cfg))
		if again != fresh {
			t.Errorf("%s: reset sim diverged from fresh sim:\nreset: %+v\nfresh: %+v", mode, again, fresh)
		}
		if first != fresh {
			t.Errorf("%s: simulator is nondeterministic:\n%+v\n%+v", mode, first, fresh)
		}
	}
}

// TestResetRewindsAllocator checks flat-mode placement starts over
// after Reset (first allocation back in MCDRAM, no stale split flag).
func TestResetRewindsAllocator(t *testing.T) {
	s := MustNewSim(testConfig(ModeFlat)) // 64KB flat MCDRAM
	s.Alloc("big", 60<<10)
	s.Alloc("spill", 16<<10) // forces DDR spill + split flag
	if !s.Traffic().SplitFlat {
		t.Fatal("expected split allocation before reset")
	}
	s.Reset()
	a := s.Alloc("a", 32<<10)
	if !a.InMCDRAM() {
		t.Fatal("post-reset allocation should land in MCDRAM again")
	}
	if s.Traffic().SplitFlat {
		t.Fatal("split flag survived reset")
	}
	if s.Footprint() != 32<<10 {
		t.Fatalf("footprint after reset = %d", s.Footprint())
	}
}
