package memsim

import (
	"testing"

	"repro/internal/cache"
)

// testConfig returns a small hierarchy for unit tests: 1KB L1, 4KB L2,
// 16KB L3, 64KB eDRAM (when enabled), generous links.
func testConfig(mode Mode) Config {
	cfg := Config{
		Name: "test",
		Mode: mode,
		L1:   CacheCfg{Size: 1 << 10, Ways: 2},
		L2:   CacheCfg{Size: 4 << 10, Ways: 4},
		Links: [NumSources]LinkParams{
			SrcL2:     {BWGBs: 200, LatNS: 4},
			SrcL3:     {BWGBs: 100, LatNS: 12},
			SrcEDRAM:  {BWGBs: 50, LatNS: 40},
			SrcMCDRAM: {BWGBs: 400, LatNS: 150},
			SrcDDR:    {BWGBs: 20, LatNS: 90},
		},
		PeakDPGFlops:  100,
		PeakSPGFlops:  200,
		Cores:         4,
		MaxThreads:    8,
		MSHRs:         64,
		SplitPenalty:  6,
		MLPRampFactor: 6,
		Scale:         1,
	}
	switch mode {
	case ModeDDR, ModeEDRAM, ModeEDRAMMemSide:
		cfg.L3 = CacheCfg{Size: 16 << 10, Ways: 8}
		if mode != ModeDDR {
			cfg.EDRAM = CacheCfg{Size: 64 << 10, Ways: 16}
		}
	case ModeCache, ModeFlat, ModeHybrid:
		cfg.MCDRAMBytes = 64 << 10
	}
	return cfg
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{
		ModeDDR: "ddr", ModeEDRAM: "edram", ModeCache: "cache",
		ModeFlat: "flat", ModeHybrid: "hybrid",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode should still render")
	}
}

func TestSourceString(t *testing.T) {
	names := []string{"L1", "L2", "L3", "eDRAM", "MCDRAM", "DDR"}
	for s := SrcL1; s < NumSources; s++ {
		if s.String() != names[s] {
			t.Errorf("Source(%d) = %q, want %q", int(s), s.String(), names[s])
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(ModeEDRAM)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("missing name accepted")
	}
	bad = good
	bad.L2.Size = 0
	if bad.Validate() == nil {
		t.Error("missing L2 accepted")
	}
	bad = good
	bad.EDRAM.Size = 0
	if bad.Validate() == nil {
		t.Error("eDRAM mode without eDRAM accepted")
	}
	bad = testConfig(ModeCache)
	bad.MCDRAMBytes = 0
	if bad.Validate() == nil {
		t.Error("MCDRAM mode without capacity accepted")
	}
	bad = good
	bad.Links[SrcDDR].BWGBs = 0
	if bad.Validate() == nil {
		t.Error("missing DDR bandwidth accepted")
	}
	bad = good
	bad.Scale = 0
	if bad.Validate() == nil {
		t.Error("zero scale accepted")
	}
	bad = good
	bad.PeakDPGFlops = 0
	if bad.Validate() == nil {
		t.Error("zero peak accepted")
	}
	bad = good
	bad.Mode = Mode(42)
	if bad.Validate() == nil {
		t.Error("unknown mode accepted")
	}
}

func TestAllocPrefersMCDRAMThenSpills(t *testing.T) {
	s := MustNewSim(testConfig(ModeFlat)) // 64KB flat MCDRAM
	a := s.Alloc("a", 32<<10)
	if !a.InMCDRAM() {
		t.Fatal("first allocation should land in MCDRAM")
	}
	b := s.Alloc("b", 32<<10)
	if !b.InMCDRAM() {
		t.Fatal("second allocation still fits MCDRAM")
	}
	c := s.Alloc("c", 8<<10)
	if c.InMCDRAM() {
		t.Fatal("third allocation must spill to DDR")
	}
	if !s.Traffic().SplitFlat {
		t.Fatal("spill must set the split flag")
	}
	if got := s.Footprint(); got != 72<<10 {
		t.Fatalf("footprint = %d, want %d", got, 72<<10)
	}
}

func TestAllocDDRModeNeverSplits(t *testing.T) {
	s := MustNewSim(testConfig(ModeDDR))
	s.Alloc("a", 1<<20)
	s.Alloc("b", 1<<20)
	if s.Traffic().SplitFlat {
		t.Fatal("DDR mode cannot split")
	}
}

func TestAllocPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewSim(testConfig(ModeDDR)).Alloc("x", 0)
}

func TestHybridSplitsCapacity(t *testing.T) {
	s := MustNewSim(testConfig(ModeHybrid)) // 64KB: 32 flat + 32 cache
	a := s.Alloc("a", 32<<10)
	if !a.InMCDRAM() {
		t.Fatal("hybrid flat half should host the allocation")
	}
	b := s.Alloc("b", 1<<10)
	if b.InMCDRAM() {
		t.Fatal("beyond half capacity must go to DDR")
	}
}

func TestStreamingMissesGoToDDR(t *testing.T) {
	s := MustNewSim(testConfig(ModeDDR))
	buf := s.Alloc("x", 1<<20) // far larger than 16KB L3
	buf.LoadLines(0, 1<<20)
	tr := s.Traffic()
	wantLines := uint64(1 << 20 / cache.LineSize)
	if tr.Lines[SrcDDR] != wantLines {
		t.Fatalf("DDR lines = %d, want %d", tr.Lines[SrcDDR], wantLines)
	}
	if tr.Bytes[SrcDDR] != 1<<20 {
		t.Fatalf("DDR bytes = %d, want %d", tr.Bytes[SrcDDR], 1<<20)
	}
}

func TestFittingWorkingSetServedOnChip(t *testing.T) {
	s := MustNewSim(testConfig(ModeDDR))
	buf := s.Alloc("x", 2<<10) // fits 4KB L2
	for pass := 0; pass < 4; pass++ {
		buf.LoadLines(0, 2<<10)
	}
	tr := s.Traffic()
	// Only the cold pass should reach DDR.
	if tr.Bytes[SrcDDR] != 2<<10 {
		t.Fatalf("DDR bytes = %d, want %d (cold only)", tr.Bytes[SrcDDR], 2<<10)
	}
	if tr.Bytes[SrcL1]+tr.Bytes[SrcL2] == 0 {
		t.Fatal("warm passes should be served on-chip")
	}
}

func TestEDRAMCapturesL3Victims(t *testing.T) {
	cfg := testConfig(ModeEDRAM)
	s := MustNewSim(cfg)
	// Working set: 32KB — exceeds 16KB L3, fits 64KB eDRAM.
	buf := s.Alloc("x", 32<<10)
	buf.LoadLines(0, 32<<10) // cold: all from DDR
	cold := s.Traffic()
	if cold.Bytes[SrcEDRAM] != 0 {
		t.Fatal("no eDRAM hits expected on the cold pass")
	}
	s.ResetTraffic()
	for pass := 0; pass < 3; pass++ {
		buf.LoadLines(0, 32<<10)
	}
	warm := s.Traffic()
	if warm.Bytes[SrcEDRAM] == 0 {
		t.Fatal("warm passes should hit the eDRAM victim cache")
	}
	if warm.Bytes[SrcDDR] > warm.Bytes[SrcEDRAM]/4 {
		t.Fatalf("most warm traffic should be eDRAM: eDRAM=%d DDR=%d",
			warm.Bytes[SrcEDRAM], warm.Bytes[SrcDDR])
	}
}

func TestEDRAMOffGoesToDDR(t *testing.T) {
	s := MustNewSim(testConfig(ModeDDR))
	buf := s.Alloc("x", 32<<10)
	for pass := 0; pass < 4; pass++ {
		buf.LoadLines(0, 32<<10)
	}
	tr := s.Traffic()
	if tr.Bytes[SrcEDRAM] != 0 {
		t.Fatal("eDRAM disabled must never serve")
	}
	if tr.Bytes[SrcDDR] == 0 {
		t.Fatal("expected DDR traffic")
	}
}

func TestMCDRAMCacheModeServesRepeats(t *testing.T) {
	s := MustNewSim(testConfig(ModeCache))
	// 32KB working set: exceeds 4KB L2, fits 64KB MCDRAM cache.
	buf := s.Alloc("x", 32<<10)
	buf.LoadLines(0, 32<<10)
	s.ResetTraffic()
	for pass := 0; pass < 3; pass++ {
		buf.LoadLines(0, 32<<10)
	}
	tr := s.Traffic()
	if tr.Bytes[SrcMCDRAM] == 0 {
		t.Fatal("MCDRAM cache should serve warm passes")
	}
	if tr.Bytes[SrcDDR] != 0 {
		t.Fatalf("fitting working set should not touch DDR, got %d", tr.Bytes[SrcDDR])
	}
}

func TestMCDRAMFlatResidentTraffic(t *testing.T) {
	s := MustNewSim(testConfig(ModeFlat))
	buf := s.Alloc("x", 32<<10) // resident in 64KB flat MCDRAM
	for pass := 0; pass < 2; pass++ {
		buf.LoadLines(0, 32<<10)
	}
	tr := s.Traffic()
	if tr.Bytes[SrcDDR] != 0 {
		t.Fatal("flat-resident data must not touch DDR")
	}
	if tr.Bytes[SrcMCDRAM] == 0 {
		t.Fatal("expected MCDRAM traffic")
	}
	if tr.SplitFlat {
		t.Fatal("no split expected")
	}
}

func TestWritebackAccounting(t *testing.T) {
	s := MustNewSim(testConfig(ModeDDR))
	buf := s.Alloc("x", 256<<10)
	buf.StoreLines(0, 256<<10)
	// Stream a second buffer to force the dirty lines out.
	buf2 := s.Alloc("y", 256<<10)
	buf2.LoadLines(0, 256<<10)
	tr := s.Traffic()
	if tr.WBBytes[SrcDDR] == 0 {
		t.Fatal("dirty evictions must produce DDR writebacks")
	}
	if tr.WBBytes[SrcDDR] > uint64(256<<10) {
		t.Fatalf("writebacks exceed written bytes: %d", tr.WBBytes[SrcDDR])
	}
}

func TestTouchCoalescesWithinLine(t *testing.T) {
	s := MustNewSim(testConfig(ModeDDR))
	buf := s.Alloc("x", 1<<10)
	for i := int64(0); i < 64; i += 8 {
		buf.Load(i, 8) // 8 scalar loads within one line
	}
	tr := s.Traffic()
	if tr.Accesses != 8 {
		t.Fatalf("accesses = %d, want 8", tr.Accesses)
	}
	// Exactly one line fill from memory.
	if tr.Lines[SrcDDR] != 1 {
		t.Fatalf("DDR lines = %d, want 1", tr.Lines[SrcDDR])
	}
}

func TestTouchSpanningLines(t *testing.T) {
	s := MustNewSim(testConfig(ModeDDR))
	buf := s.Alloc("x", 1<<10)
	buf.Load(60, 8) // straddles two lines
	if got := s.Traffic().Lines[SrcDDR]; got != 2 {
		t.Fatalf("straddling access should fill 2 lines, got %d", got)
	}
}

func TestResetTrafficKeepsCacheState(t *testing.T) {
	s := MustNewSim(testConfig(ModeDDR))
	buf := s.Alloc("x", 2<<10)
	buf.LoadLines(0, 2<<10)
	s.ResetTraffic()
	buf.LoadLines(0, 2<<10)
	tr := s.Traffic()
	if tr.Bytes[SrcDDR] != 0 {
		t.Fatal("warm state lost across ResetTraffic")
	}
	if tr.FootprintBytes != 2<<10 {
		t.Fatal("footprint must survive ResetTraffic")
	}
}

func TestNewSimRejectsInvalid(t *testing.T) {
	bad := testConfig(ModeDDR)
	bad.L2.Size = 0
	if _, err := NewSim(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewSim should panic")
		}
	}()
	MustNewSim(bad)
}

func TestEDRAMMemSideFillsOnAccess(t *testing.T) {
	// The memory-side buffer (Skylake arrangement) populates on fills,
	// so the *second* pass hits — unlike the victim cache, which only
	// captures L3 evictions.
	cfg := testConfig(ModeEDRAMMemSide)
	cfg.L3 = CacheCfg{Size: 16 << 10, Ways: 8}
	cfg.EDRAM = CacheCfg{Size: 64 << 10, Ways: 16}
	s := MustNewSim(cfg)
	buf := s.Alloc("x", 32<<10) // > L3, fits eDRAM
	buf.LoadLines(0, 32<<10)    // cold: DDR + installs
	cold := s.Traffic()
	if cold.Bytes[SrcDDR] == 0 || cold.WBBytes[SrcEDRAM] == 0 {
		t.Fatalf("cold pass should fill from DDR and install into eDRAM: %+v", cold)
	}
	s.ResetTraffic()
	buf.LoadLines(0, 32<<10)
	warm := s.Traffic()
	if warm.Bytes[SrcDDR] != 0 {
		t.Fatalf("warm pass should be served by the memory-side buffer, DDR=%d", warm.Bytes[SrcDDR])
	}
	if warm.Bytes[SrcEDRAM] == 0 {
		t.Fatal("expected eDRAM service")
	}
}

func TestEDRAMMemSideAbsorbsWritebacks(t *testing.T) {
	cfg := testConfig(ModeEDRAMMemSide)
	cfg.L3 = CacheCfg{Size: 16 << 10, Ways: 8}
	cfg.EDRAM = CacheCfg{Size: 64 << 10, Ways: 16}
	s := MustNewSim(cfg)
	buf := s.Alloc("x", 32<<10)
	buf.StoreLines(0, 32<<10)
	evict := s.Alloc("y", 32<<10)
	evict.LoadLines(0, 32<<10) // push the dirty lines out of L3
	tr := s.Traffic()
	if tr.WBBytes[SrcEDRAM] == 0 {
		t.Fatal("memory-side buffer should absorb writebacks")
	}
}

func TestEDRAMMemSideValidation(t *testing.T) {
	cfg := testConfig(ModeEDRAMMemSide)
	cfg.EDRAM = CacheCfg{}
	if cfg.Validate() == nil {
		t.Fatal("memory-side mode without eDRAM accepted")
	}
	if ModeEDRAMMemSide.String() != "edram-ms" {
		t.Fatal("mode name")
	}
}

func BenchmarkSimStreamingAccess(b *testing.B) {
	s := MustNewSim(testConfig(ModeEDRAM))
	buf := s.Alloc("x", 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.LoadLines(0, 1<<20)
	}
}

func TestBufferBoundsChecking(t *testing.T) {
	s := MustNewSim(testConfig(ModeDDR))
	buf := s.Alloc("x", 100) // rounds to 128 bytes of lines
	buf.Load(96, 4)          // within the rounded allocation
	cases := []struct {
		name string
		fn   func()
	}{
		{"load past end", func() { buf.Load(128, 8) }},
		{"store past end", func() { buf.Store(200, 8) }},
		{"negative offset", func() { buf.Load(-8, 8) }},
		{"zero length", func() { buf.Load(0, 0) }},
		{"lines past end", func() { buf.LoadLines(64, 128) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}
