package memsim

import (
	"fmt"
	"math"
)

// mcTagOverheadBytes models the MCDRAM cache-mode tag-check overhead:
// tags live in MCDRAM itself (Section 2.2), so every lookup consumes a
// slice of MCDRAM bandwidth beyond the data transfer. This is the
// mechanism behind the paper's observation that hybrid mode can beat
// pure cache mode when the hot working set fits the cached half.
const mcTagOverheadBytes = 16

// KernelProps carries the kernel-side inputs of the timing model.
type KernelProps struct {
	// Name labels the kernel in results.
	Name string
	// Flops is the operation count as defined by Table 2 of the paper
	// (GFlop/s reported by the harness divides this by time).
	Flops float64
	// Threads is the number of worker threads (Table 2's Thds column).
	Threads int
	// MLP is the per-thread memory-level parallelism the kernel can
	// expose at full ramp (outstanding misses incl. prefetch): high
	// for Stream, moderate for SpMV/FFT/Stencil, near zero for the
	// dependency-bound SpTRSV.
	MLP float64
	// Eff is the fraction of theoretical compute peak a tuned
	// implementation reaches when compute bound.
	Eff float64
	// SinglePrecision selects the SP peak (all paper kernels are DP).
	SinglePrecision bool
}

// Validate checks the kernel properties.
func (k *KernelProps) Validate() error {
	if k.Flops <= 0 {
		return fmt.Errorf("memsim: kernel %s: flops must be positive", k.Name)
	}
	if k.Threads <= 0 {
		return fmt.Errorf("memsim: kernel %s: threads must be positive", k.Name)
	}
	if k.MLP <= 0 || k.Eff <= 0 || k.Eff > 1 {
		return fmt.Errorf("memsim: kernel %s: bad MLP/Eff (%g, %g)", k.Name, k.MLP, k.Eff)
	}
	return nil
}

// Bound identifies the binding constraint of a run.
type Bound string

// Bound values reported in Result.
const (
	BoundCompute   Bound = "compute"
	BoundL2BW      Bound = "bw:L2"
	BoundL3BW      Bound = "bw:L3"
	BoundEDRAMBW   Bound = "bw:eDRAM"
	BoundMCDRAMBW  Bound = "bw:MCDRAM"
	BoundDDRBW     Bound = "bw:DDR"
	BoundLatency   Bound = "latency"
	BoundSplit     Bound = "split"
	BoundUndefined Bound = "undefined"
)

var bwBoundBySource = map[Source]Bound{
	SrcL2:     BoundL2BW,
	SrcL3:     BoundL3BW,
	SrcEDRAM:  BoundEDRAMBW,
	SrcMCDRAM: BoundMCDRAMBW,
	SrcDDR:    BoundDDRBW,
}

// Result is the outcome of evaluating one kernel run on one machine
// configuration.
type Result struct {
	Kernel  string
	Machine string
	Mode    Mode
	GFlops  float64 // throughput by the paper's operation counts
	Seconds float64 // modelled execution time
	Bound   Bound   // the binding constraint
	MemGBs  float64 // achieved memory-side bandwidth (GB/s)
	Flops   float64
	Traffic Traffic
	// FootprintBytes is at *reported* (paper) scale: simulated
	// footprint multiplied by the platform scale factor.
	FootprintBytes int64
	// Component times (seconds) for analysis.
	ComputeSec float64
	BWSec      [NumSources]float64
	LatencySec float64
	// EffectiveMLP is the ramped memory-level parallelism used.
	EffectiveMLP float64
}

// Evaluate applies the executable Stepping model to the traffic of a
// simulated run: the run time is the max of the compute bound, each
// level's bandwidth bound, and the latency/MLP bound. See DESIGN.md §5.
func Evaluate(cfg *Config, t Traffic, k KernelProps) (Result, error) {
	if err := k.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{
		Kernel:         k.Name,
		Machine:        cfg.Name,
		Mode:           cfg.Mode,
		Flops:          k.Flops,
		Traffic:        t,
		FootprintBytes: t.FootprintBytes * cfg.Scale,
	}

	// Compute bound.
	peak := cfg.PeakDPGFlops
	if k.SinglePrecision {
		peak = cfg.PeakSPGFlops
	}
	// Compute throughput scales with used cores; SMT threads beyond
	// the core count do not add flops.
	coreFrac := math.Min(1, float64(k.Threads)/float64(cfg.Cores))
	res.ComputeSec = k.Flops / (peak * 1e9 * k.Eff * coreFrac)

	// Bandwidth bounds.
	worst := res.ComputeSec
	bound := BoundCompute
	for src := SrcL2; src <= SrcDDR; src++ {
		bw := cfg.Links[src].BWGBs
		if bw <= 0 {
			continue
		}
		demand := float64(t.Bytes[src] + t.WBBytes[src])
		if src == SrcMCDRAM {
			// Tag checks consume MCDRAM bandwidth on every access that
			// consulted the in-MCDRAM tags (cache/hybrid modes).
			demand += float64(t.MCTagLines) * mcTagOverheadBytes
		}
		sec := demand / (bw * 1e9)
		res.BWSec[src] = sec
		if sec > worst {
			worst, bound = sec, bwBoundBySource[src]
		}
	}

	// Latency bound: demand fills from memory-side sources divided by
	// the ramped memory-level parallelism.
	mlp := effectiveMLP(cfg, t, k)
	res.EffectiveMLP = mlp
	var latNS float64
	for _, src := range []Source{SrcEDRAM, SrcMCDRAM, SrcDDR} {
		latNS += float64(t.Lines[src]) * cfg.Links[src].LatNS
	}
	res.LatencySec = latNS * 1e-9 / mlp
	if res.LatencySec > worst {
		worst, bound = res.LatencySec, BoundLatency
	}

	// The flat-mode MCDRAM+DDR straddle pathology (Section 4.2.1 II):
	// NoC bus conflicts and L2 set conflicts between the two memories
	// stall the whole chip, so the penalty multiplies the run time
	// regardless of which bound was binding.
	if t.SplitFlat && cfg.SplitPenalty > 1 {
		worst *= cfg.SplitPenalty
		bound = BoundSplit
	}

	if worst <= 0 {
		return Result{}, fmt.Errorf("memsim: %s on %s: degenerate run (no time)", k.Name, cfg.Name)
	}
	res.Seconds = worst
	res.Bound = bound
	res.GFlops = k.Flops / worst / 1e9
	res.MemGBs = float64(t.TotalMemBytes()) / worst / 1e9
	return res, nil
}

// MustEvaluate panics on error; for internal use with vetted inputs.
func MustEvaluate(cfg *Config, t Traffic, k KernelProps) Result {
	r, err := Evaluate(cfg, t, k)
	if err != nil {
		panic(err)
	}
	return r
}

// effectiveMLP models how memory-level parallelism ramps up as the
// working set grows past a cache capacity: right past capacity C the
// miss stream is sparse and prefetchers are ineffective (the Stepping
// model's cache valley); once the footprint reaches MLPRampFactor*C
// the stream is long enough to reach full hardware concurrency.
func effectiveMLP(cfg *Config, t Traffic, k KernelProps) float64 {
	full := float64(k.Threads) * k.MLP
	if cfg.MSHRs > 0 {
		full = math.Min(full, float64(cfg.MSHRs))
	}
	spilled := spilledCapacity(cfg, t.FootprintBytes)
	ramp := 1.0
	if spilled > 0 && cfg.MLPRampFactor > 1 {
		ramp = math.Min(1, float64(t.FootprintBytes)/(cfg.MLPRampFactor*float64(spilled)))
	}
	mlp := full * ramp
	if mlp < 1 {
		mlp = 1
	}
	return mlp
}

// spilledCapacity returns the capacity of the largest *on-chip* cache
// smaller than the footprint — the level whose spill throttles the
// prefetch/MLP ramp — or 0 when the footprint fits on chip. OPM levels
// are deliberately excluded: prefetcher concurrency is a property of
// the on-chip miss stream, so enabling an OPM never lowers MLP (the
// paper never observes eDRAM making things slower).
func spilledCapacity(cfg *Config, footprint int64) int64 {
	caps := []int64{cfg.L2.Size}
	if cfg.L3.Size > 0 {
		caps = append(caps, cfg.L3.Size)
	}
	var spilled int64
	for _, c := range caps {
		if c < footprint && c > spilled {
			spilled = c
		}
	}
	return spilled
}
