package memsim

import (
	"reflect"
	"testing"
)

// trafficFieldPolicy is the explicit per-field decision table for
// Sim.ResetTraffic: true means the field is allocator/placement state
// that survives a traffic reset (warm-up discard), false means it is a
// measurement counter that must be cleared. Adding a field to Traffic
// without deciding here fails TestResetTrafficFieldGuard — the
// catch-the-next-field guard for the Reset/ResetTraffic asymmetry.
var trafficFieldPolicy = map[string]bool{
	"Bytes":          false,
	"WBBytes":        false,
	"Lines":          false,
	"MCTagLines":     false,
	"Accesses":       false,
	"FootprintBytes": true,
	"SplitFlat":      true,
}

// fillNonZero sets every field of a Traffic to a nonzero value via
// reflection so a forgotten field cannot hide behind its zero value.
func fillNonZero(t *testing.T, tr *Traffic) {
	t.Helper()
	v := reflect.ValueOf(tr).Elem()
	var fillValue func(f reflect.Value)
	fillValue = func(f reflect.Value) {
		switch f.Kind() {
		case reflect.Uint64, reflect.Uint32, reflect.Uint:
			f.SetUint(7)
		case reflect.Int64, reflect.Int32, reflect.Int:
			f.SetInt(7)
		case reflect.Float64, reflect.Float32:
			f.SetFloat(7)
		case reflect.Bool:
			f.SetBool(true)
		case reflect.Array, reflect.Slice:
			for i := 0; i < f.Len(); i++ {
				fillValue(f.Index(i))
			}
		default:
			t.Fatalf("Traffic field kind %s not handled by the guard; extend fillNonZero", f.Kind())
		}
	}
	for i := 0; i < v.NumField(); i++ {
		fillValue(v.Field(i))
	}
}

// TestResetTrafficFieldGuard verifies ResetTraffic's hand-written
// preservation list stays consistent with the Traffic struct as it
// grows: every field must be either explicitly preserved or explicitly
// cleared, per trafficFieldPolicy, and any field missing from the
// policy table fails loudly.
func TestResetTrafficFieldGuard(t *testing.T) {
	typ := reflect.TypeOf(Traffic{})
	if typ.NumField() != len(trafficFieldPolicy) {
		for i := 0; i < typ.NumField(); i++ {
			if _, ok := trafficFieldPolicy[typ.Field(i).Name]; !ok {
				t.Fatalf("Traffic grew field %q: decide whether ResetTraffic preserves it "+
					"(allocator state) or clears it (measurement counter), update ResetTraffic "+
					"accordingly, then record the decision in trafficFieldPolicy", typ.Field(i).Name)
			}
		}
		t.Fatalf("trafficFieldPolicy lists %d fields, Traffic has %d — remove stale entries",
			len(trafficFieldPolicy), typ.NumField())
	}

	s := MustNewSim(testConfig(ModeFlat))
	var filled Traffic
	fillNonZero(t, &filled)
	s.traffic = filled
	s.ResetTraffic()

	got := reflect.ValueOf(s.traffic)
	want := reflect.ValueOf(filled)
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		g, w := got.Field(i), want.Field(i)
		if trafficFieldPolicy[name] {
			if !reflect.DeepEqual(g.Interface(), w.Interface()) {
				t.Errorf("ResetTraffic must preserve %s: got %v, want %v", name, g, w)
			}
		} else if !g.IsZero() {
			t.Errorf("ResetTraffic must clear %s, left %v", name, g)
		}
	}

	// Full Reset clears everything, preserved fields included.
	s.traffic = filled
	s.Reset()
	if s.traffic != (Traffic{}) {
		t.Errorf("Reset left traffic %+v", s.traffic)
	}
}

// TestResetTrafficAfterRealRun exercises the documented warm-up-discard
// use: after a real pass, footprint and split flag survive while every
// counter restarts from zero and a second pass measures steady state.
func TestResetTrafficAfterRealRun(t *testing.T) {
	s := MustNewSim(testConfig(ModeFlat))
	s.Alloc("big", 60<<10)
	spill := s.Alloc("spill", 16<<10) // straddles MCDRAM and DDR
	spill.LoadLines(0, spill.Size())
	before := s.Traffic()
	if !before.SplitFlat || before.FootprintBytes != 76<<10 {
		t.Fatalf("setup traffic %+v", before)
	}
	s.ResetTraffic()
	after := s.Traffic()
	if after.FootprintBytes != before.FootprintBytes || after.SplitFlat != before.SplitFlat {
		t.Fatalf("allocator state lost: %+v", after)
	}
	if after.Accesses != 0 || after.TotalMemBytes() != 0 {
		t.Fatalf("counters survived ResetTraffic: %+v", after)
	}
}
