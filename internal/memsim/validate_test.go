package memsim

import (
	"math"
	"strings"
	"testing"
)

// validResult is a minimal result that satisfies every gate invariant.
func validResult() Result {
	var tr Traffic
	tr.Accesses = 100
	tr.Bytes[SrcDDR] = 6400
	tr.Lines[SrcDDR] = 100
	return Result{
		GFlops: 2.5, Seconds: 0.4, MemGBs: 1.0,
		Flops: 1e9, ComputeSec: 0.2, LatencySec: 0.2,
		FootprintBytes: 1 << 20, Traffic: tr,
	}
}

// TestResultValidateAccepts checks the gate passes a healthy result
// and the zero value (an empty cell has nothing to violate).
func TestResultValidateAccepts(t *testing.T) {
	r := validResult()
	if err := r.Validate(); err != nil {
		t.Fatalf("healthy result rejected: %v", err)
	}
	var zero Result
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero result rejected: %v", err)
	}
}

// TestResultValidateRejects pins each invariant the gate enforces:
// non-finite or negative fields, positive flops without time or
// throughput, and traffic conservation violations.
func TestResultValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Result)
		want   string
	}{
		{"NaN gflops", func(r *Result) { r.GFlops = math.NaN() }, "GFlops"},
		{"Inf seconds", func(r *Result) { r.Seconds = math.Inf(1) }, "Seconds"},
		{"negative bandwidth", func(r *Result) { r.MemGBs = -1 }, "MemGBs"},
		{"negative footprint", func(r *Result) { r.FootprintBytes = -4096 }, "footprint"},
		{"flops without time", func(r *Result) { r.Seconds, r.GFlops = 0, 0 }, "non-positive time"},
		{"lines without bytes", func(r *Result) {
			r.Traffic.Lines[SrcMCDRAM] = 5
			r.Traffic.Bytes[SrcMCDRAM] = 0
		}, "0 bytes"},
		{"accesses unserved", func(r *Result) {
			for s := Source(0); s < NumSources; s++ {
				r.Traffic.Bytes[s] = 0
				r.Traffic.Lines[s] = 0
			}
		}, "no source served"},
	}
	for _, c := range cases {
		r := validResult()
		c.mutate(&r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestSimCheckInvariantsOnRealRun checks the per-level invariants hold
// after a genuine simulation — the always-on gate must never reject a
// healthy cell.
func TestSimCheckInvariantsOnRealRun(t *testing.T) {
	s := MustNewSim(testConfig(ModeCache))
	buf := s.Alloc("x", 1<<20) // larger than every cache level
	buf.LoadLines(0, 1<<20)
	buf.StoreLines(0, 512<<10)
	buf.LoadLines(0, 256<<10)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("healthy simulator rejected: %v", err)
	}
}
