package platform

import (
	"testing"

	"repro/internal/memsim"
)

func TestTable3Values(t *testing.T) {
	brd := Broadwell()
	if brd.Cores != 4 || brd.FreqGHz != 3.7 || brd.DPGFlops != 236.8 {
		t.Fatalf("Broadwell compute spec wrong: %+v", brd)
	}
	if brd.DRAMGBs != 34.1 || brd.OPMGBs != 102.4 || brd.OPMBytes != 128<<20 {
		t.Fatal("Broadwell memory spec wrong")
	}
	knl := KNL()
	if knl.Cores != 64 || knl.DPGFlops != 3072 || knl.SPGFlops != 6144 {
		t.Fatalf("KNL compute spec wrong (note Table 3 SP/DP transposition): %+v", knl)
	}
	if knl.OPMBytes != 16<<30 || knl.DRAMBytes != 96<<30 || knl.OPMGBs != 490 {
		t.Fatal("KNL memory spec wrong")
	}
}

func TestTable1Modes(t *testing.T) {
	brd := Broadwell()
	if len(brd.Modes) != 2 {
		t.Fatalf("Broadwell supports on/off only, got %v", brd.Modes)
	}
	knl := KNL()
	if len(knl.Modes) != 4 {
		t.Fatalf("KNL supports ddr/cache/flat/hybrid, got %v", knl.Modes)
	}
	// eDRAM-only modes rejected on KNL and vice versa.
	if _, err := knl.Config(memsim.ModeEDRAM); err == nil {
		t.Fatal("KNL accepted eDRAM mode")
	}
	if _, err := brd.Config(memsim.ModeFlat); err == nil {
		t.Fatal("Broadwell accepted flat mode")
	}
}

func TestAllConfigsBuildSimulators(t *testing.T) {
	for _, p := range All() {
		for _, mode := range p.Modes {
			cfg := p.MustConfig(mode)
			if _, err := memsim.NewSim(cfg); err != nil {
				t.Fatalf("%s/%s: %v", p.Name, mode, err)
			}
		}
	}
}

func TestScaling(t *testing.T) {
	p := Broadwell()
	if p.ScaledBytes(128<<20) != (128<<20)/p.Scale {
		t.Fatal("ScaledBytes wrong")
	}
	if p.ReportedBytes(p.ScaledBytes(1<<30)) != 1<<30 {
		t.Fatal("scale round trip broken")
	}
	// Scaled capacities preserve the paper's capacity ratios.
	cfg := p.MustConfig(memsim.ModeEDRAM)
	if cfg.EDRAM.Size*p.Scale != 128<<20 {
		t.Fatalf("scaled eDRAM = %d", cfg.EDRAM.Size)
	}
	if cfg.L3.Size*p.Scale != 6<<20 {
		t.Fatalf("scaled L3 = %d", cfg.L3.Size)
	}
	knl := KNL()
	kcfg := knl.MustConfig(memsim.ModeCache)
	if kcfg.MCDRAMBytes*knl.Scale != 16<<30 {
		t.Fatalf("scaled MCDRAM = %d", kcfg.MCDRAMBytes)
	}
}

func TestThreadsMatchTable2(t *testing.T) {
	brd, knl := Broadwell(), KNL()
	if brd.Threads(false) != 4 || brd.Threads(true) != 8 {
		t.Fatal("Broadwell thread counts wrong")
	}
	if knl.Threads(false) != 64 || knl.Threads(true) != 256 {
		t.Fatal("KNL thread counts wrong")
	}
}

func TestBandwidthOrderings(t *testing.T) {
	// The stepping behaviour depends on these orderings.
	brd := Broadwell().MustConfig(memsim.ModeEDRAM)
	if !(brd.Links[memsim.SrcL2].BWGBs > brd.Links[memsim.SrcL3].BWGBs &&
		brd.Links[memsim.SrcL3].BWGBs > brd.Links[memsim.SrcEDRAM].BWGBs &&
		brd.Links[memsim.SrcEDRAM].BWGBs > brd.Links[memsim.SrcDDR].BWGBs) {
		t.Fatal("Broadwell bandwidth ordering broken")
	}
	// eDRAM latency sits between L3 and DDR (Section 2.3(b)).
	if !(brd.Links[memsim.SrcL3].LatNS < brd.Links[memsim.SrcEDRAM].LatNS &&
		brd.Links[memsim.SrcEDRAM].LatNS < brd.Links[memsim.SrcDDR].LatNS) {
		t.Fatal("Broadwell latency ordering broken")
	}
	knl := KNL().MustConfig(memsim.ModeFlat)
	if !(knl.Links[memsim.SrcMCDRAM].BWGBs > 4*knl.Links[memsim.SrcDDR].BWGBs) {
		t.Fatal("MCDRAM must be ~5x DDR bandwidth")
	}
	// MCDRAM idle latency is *higher* than DDR (Section 2.2) — the
	// SpTRSV anomaly depends on this.
	if knl.Links[memsim.SrcMCDRAM].LatNS <= knl.Links[memsim.SrcDDR].LatNS {
		t.Fatal("MCDRAM latency must exceed DDR latency")
	}
}

func TestSkylakeExtensionPlatform(t *testing.T) {
	sky := Skylake()
	if sky.Name != "skylake" || sky.OPMBytes != 128<<20 {
		t.Fatalf("skylake spec wrong: %+v", sky)
	}
	// Memory-side mode only; the CPU-side victim mode is Broadwell's.
	if _, err := sky.Config(memsim.ModeEDRAM); err == nil {
		t.Fatal("skylake should not offer the CPU-side victim mode")
	}
	cfg := sky.MustConfig(memsim.ModeEDRAMMemSide)
	if _, err := memsim.NewSim(cfg); err != nil {
		t.Fatal(err)
	}
	if len(AllWithExtensions()) != 3 {
		t.Fatal("AllWithExtensions should add skylake")
	}
	if len(All()) != 2 {
		t.Fatal("All must stay the paper's two platforms")
	}
}
