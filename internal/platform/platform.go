// Package platform defines the two evaluation machines of the paper
// (Table 3): the Broadwell i7-5775c with 128 MB eDRAM, and the Knights
// Landing 7210 with 16 GB MCDRAM. Each platform builds memsim.Config
// values for the memory modes of Table 1.
//
// # Capacity scaling
//
// Trace-simulating multi-gigabyte footprints access-by-access is not
// feasible, and the phenomena under study (cache peaks, valleys,
// effective regions) depend on capacity *ratios*. Every platform
// carries a Scale factor: cache and OPM capacities are divided by it
// inside the simulator, harness sweeps build problems at the scaled
// size, and results multiply footprints back up so the axes match the
// paper's figures. Bandwidths, latencies and compute peaks are the
// real machine values, so GFlop/s are directly comparable.
//
// # Calibration
//
// Sustained-bandwidth and latency constants below are calibrated so
// the shape targets in DESIGN.md §6 hold: e.g. the Broadwell Stream
// plateau ratio eDRAM/DDR ≈ 2.4 (Table 4 max speedup 2.421x) and the
// KNL MCDRAM/DDR plateau ratio ≈ 5.4 (Table 5 max speedup 5.443x).
package platform

import (
	"fmt"

	"repro/internal/memsim"
)

// Platform describes one evaluation machine.
type Platform struct {
	Name     string
	CPU      string
	Arch     string
	Cores    int
	FreqGHz  float64
	SPGFlops float64 // theoretical single-precision peak
	DPGFlops float64 // theoretical double-precision peak

	DRAMKind  string
	DRAMBytes int64   // off-package DRAM capacity (unscaled)
	DRAMGBs   float64 // spec-sheet DRAM bandwidth

	OPMKind  string
	OPMBytes int64   // on-package memory capacity (unscaled)
	OPMGBs   float64 // spec-sheet OPM bandwidth

	// Scale divides capacities for simulation (see package comment).
	Scale int64

	// Modes lists the memory modes this platform supports (Table 1).
	Modes []memsim.Mode

	// base is the mode-independent part of the memsim config.
	base memsim.Config
}

// Threads returns the optimal thread count from Table 2 for a kernel
// class: dense kernels and SpTRANS use one thread per core on
// Broadwell (4) and per-core on KNL (64); the bandwidth-hungry kernels
// use 2 or 4 SMT threads per core (8 on Broadwell, 256 on KNL).
func (p *Platform) Threads(smt bool) int {
	if !smt {
		return p.Cores
	}
	return p.base.MaxThreads
}

// ScaledBytes converts an unscaled (paper-sized) byte count to the
// simulated size.
func (p *Platform) ScaledBytes(b int64) int64 { return b / p.Scale }

// ReportedBytes converts a simulated byte count back to paper scale.
func (p *Platform) ReportedBytes(b int64) int64 { return b * p.Scale }

// Config builds the memsim configuration for one memory mode.
func (p *Platform) Config(mode memsim.Mode) (memsim.Config, error) {
	supported := false
	for _, m := range p.Modes {
		if m == mode {
			supported = true
			break
		}
	}
	if !supported {
		return memsim.Config{}, fmt.Errorf("platform %s: mode %s not supported (Table 1)", p.Name, mode)
	}
	cfg := p.base
	cfg.Mode = mode
	switch mode {
	case memsim.ModeDDR:
		cfg.EDRAM = memsim.CacheCfg{}
		cfg.MCDRAMBytes = 0
	case memsim.ModeEDRAM:
		// EDRAM geometry already present in base.
	case memsim.ModeCache, memsim.ModeFlat, memsim.ModeHybrid:
		// MCDRAMBytes already present in base.
	}
	if err := cfg.Validate(); err != nil {
		return memsim.Config{}, err
	}
	return cfg, nil
}

// MustConfig is Config that panics on error.
//
// Deprecated: retained for examples and tests. Library and harness
// code should call Config and surface the error.
func (p *Platform) MustConfig(mode memsim.Mode) memsim.Config {
	cfg, err := p.Config(mode)
	if err != nil {
		panic(err)
	}
	return cfg
}

// Broadwell returns the Core i7-5775c description: 4 cores @ 3.7 GHz,
// 6 MB L3, 128 MB eDRAM L4 (102.4 GB/s OPIO), DDR3-2133 (34.1 GB/s).
// Simulated with Scale=16.
func Broadwell() *Platform {
	const scale = 16
	p := &Platform{
		Name:      "broadwell",
		CPU:       "i7-5775c",
		Arch:      "Broadwell",
		Cores:     4,
		FreqGHz:   3.7,
		SPGFlops:  473.6,
		DPGFlops:  236.8,
		DRAMKind:  "DDR3-2133",
		DRAMBytes: 16 << 30,
		DRAMGBs:   34.1,
		OPMKind:   "eDRAM",
		OPMBytes:  128 << 20,
		OPMGBs:    102.4,
		Scale:     scale,
		Modes:     []memsim.Mode{memsim.ModeDDR, memsim.ModeEDRAM},
	}
	p.base = memsim.Config{
		Name:  p.Name,
		L1:    memsim.CacheCfg{Size: (32 << 10) * 4 / scale, Ways: 8},  // 4x32KB L1D
		L2:    memsim.CacheCfg{Size: (256 << 10) * 4 / scale, Ways: 8}, // 4x256KB
		L3:    memsim.CacheCfg{Size: (6 << 20) / scale, Ways: 12},
		EDRAM: memsim.CacheCfg{Size: (128 << 20) / scale, Ways: 16},
		Links: [memsim.NumSources]memsim.LinkParams{
			// Sustained L2 stream bandwidth: puts the Stream L2 peak at
			// ~206 GB/s app-level (paper's best: 201.3).
			memsim.SrcL2: {BWGBs: 155, LatNS: 3.5},
			// Sustained L3 stream bandwidth; the paper's best Stream
			// figure (201.3 GB/s, Table 4) is its L2/L3 cache peak.
			memsim.SrcL3: {BWGBs: 150, LatNS: 12},
			// eDRAM: 102.4 GB/s OPIO peak, ~72 GB/s sustained; victim
			// installs consume the same link, so steady-state service
			// is about half that — calibrated to the paper's 2.42x
			// Stream ceiling. Latency sits between L3 and DDR (2.3(b)).
			memsim.SrcEDRAM: {BWGBs: 72, LatNS: 42},
			// DDR3-2133 dual channel: 34.1 spec, ~20 sustained triad.
			memsim.SrcDDR: {BWGBs: 20, LatNS: 85},
		},
		PeakDPGFlops:  236.8,
		PeakSPGFlops:  473.6,
		Cores:         4,
		MaxThreads:    8,
		MSHRs:         64, // 10 L2 MSHRs/core + LFBs, rounded
		SplitPenalty:  1,  // no flat mode on Broadwell
		MLPRampFactor: 6,
		Scale:         scale,
	}
	return p
}

// KNL returns the Xeon Phi 7210 description: 64 cores @ 1.5 GHz (1.3
// AVX), 32 MB aggregate L2, 16 GB MCDRAM (490 GB/s), DDR4-2133
// (102 GB/s), quadrant cluster mode. Simulated with Scale=64.
//
// Note: Table 3 of the paper transposes the SP/DP peaks for KNL; the
// true values are SP 6144, DP 3072 GFlop/s and we use those.
func KNL() *Platform {
	const scale = 64
	p := &Platform{
		Name:      "knl",
		CPU:       "Xeon Phi 7210",
		Arch:      "Knights Landing",
		Cores:     64,
		FreqGHz:   1.5,
		SPGFlops:  6144,
		DPGFlops:  3072,
		DRAMKind:  "DDR4-2133",
		DRAMBytes: 96 << 30,
		DRAMGBs:   102,
		OPMKind:   "MCDRAM",
		OPMBytes:  16 << 30,
		OPMGBs:    490,
		Scale:     scale,
		Modes: []memsim.Mode{
			memsim.ModeDDR, memsim.ModeCache, memsim.ModeFlat, memsim.ModeHybrid,
		},
	}
	p.base = memsim.Config{
		Name: p.Name,
		// 64x64KB L1D aggregate, scaled.
		L1: memsim.CacheCfg{Size: (64 << 10) * 64 / scale, Ways: 8},
		// 32 MB aggregate tile L2 (Table 3), modelled as one shared
		// cache at simulation scale.
		L2:          memsim.CacheCfg{Size: (32 << 20) / scale, Ways: 16},
		L3:          memsim.CacheCfg{},
		MCDRAMBytes: (16 << 30) / scale,
		Links: [memsim.NumSources]memsim.LinkParams{
			// Aggregate sustained L2 stream bandwidth; yields the
			// ~793 GB/s app-level L2 cache peak of Table 5's Stream row.
			memsim.SrcL2: {BWGBs: 600, LatNS: 10},
			// MCDRAM: 490 GB/s spec, ~450 sustained; idle latency is
			// *higher* than DDR (Section 2.2), the root of the
			// SpTRSV anomaly (Fig 19).
			memsim.SrcMCDRAM: {BWGBs: 450, LatNS: 155},
			// DDR4-2133 six channels: 102 spec, ~83 sustained.
			memsim.SrcDDR: {BWGBs: 83, LatNS: 130},
		},
		PeakDPGFlops: 3072,
		PeakSPGFlops: 6144,
		Cores:        64,
		MaxThreads:   256,
		// Very high outstanding-request capacity across 32 tiles; KNL
		// needs hundreds of concurrent streams to saturate MCDRAM.
		MSHRs:         2048,
		SplitPenalty:  6, // flat-mode MCDRAM+DDR straddle pathology
		MLPRampFactor: 6,
		Scale:         scale,
	}
	return p
}

// Skylake returns a Skylake-with-eDRAM description (i7-6770HQ-class):
// the same 128 MB / 102.4 GB/s eDRAM part as Broadwell but arranged as
// a memory-side buffer behind the DRAM controller (Section 2.1 — "more
// like a memory-side buffer rather than a cache"). It exists to study
// the CPU-side-victim vs memory-side architectural question; the paper
// itself could not toggle eDRAM on Skylake in BIOS.
func Skylake() *Platform {
	const scale = 16
	p := &Platform{
		Name:      "skylake",
		CPU:       "i7-6770HQ",
		Arch:      "Skylake",
		Cores:     4,
		FreqGHz:   3.5,
		SPGFlops:  448,
		DPGFlops:  224,
		DRAMKind:  "DDR4-2133",
		DRAMBytes: 16 << 30,
		DRAMGBs:   34.1,
		OPMKind:   "eDRAM",
		OPMBytes:  128 << 20,
		OPMGBs:    102.4,
		Scale:     scale,
		Modes:     []memsim.Mode{memsim.ModeDDR, memsim.ModeEDRAMMemSide},
	}
	p.base = memsim.Config{
		Name:  p.Name,
		L1:    memsim.CacheCfg{Size: (32 << 10) * 4 / scale, Ways: 8},
		L2:    memsim.CacheCfg{Size: (256 << 10) * 4 / scale, Ways: 8},
		L3:    memsim.CacheCfg{Size: (6 << 20) / scale, Ways: 12},
		EDRAM: memsim.CacheCfg{Size: (128 << 20) / scale, Ways: 16},
		Links: [memsim.NumSources]memsim.LinkParams{
			memsim.SrcL2: {BWGBs: 160, LatNS: 3.4},
			memsim.SrcL3: {BWGBs: 155, LatNS: 11},
			// Memory-side position: slightly longer latency than the
			// Broadwell CPU-side arrangement, same OPIO bandwidth.
			memsim.SrcEDRAM: {BWGBs: 72, LatNS: 48},
			memsim.SrcDDR:   {BWGBs: 21, LatNS: 82},
		},
		PeakDPGFlops:  224,
		PeakSPGFlops:  448,
		Cores:         4,
		MaxThreads:    8,
		MSHRs:         64,
		SplitPenalty:  1,
		MLPRampFactor: 6,
		Scale:         scale,
	}
	return p
}

// All returns the paper's two evaluation platforms. AllWithExtensions
// adds the Skylake extension platform.
func All() []*Platform { return []*Platform{Broadwell(), KNL()} }

// AllWithExtensions returns every modelled platform including the
// Skylake memory-side-eDRAM extension.
func AllWithExtensions() []*Platform { return []*Platform{Broadwell(), KNL(), Skylake()} }
