package lint

// digestpure: the interprocedural closure of the determinism contract.
// Cell digests are the identity every byte-equivalence gate joins on —
// warm==cold, sharded==sequential, traced==untraced all compare
// content addressed by store.Digest, harness.CellDigest/CellTraceID
// and shard.ShardOf — so every function those roots can reach,
// transitively and through interface dispatch, must be free of wall
// clocks, the global math/rand source, and map-iteration-order leaks.
// The per-function determinism check misses exactly the dangerous
// case: a pure-looking digest root calling an impure helper three
// packages away. Additional roots opt in with an `opmlint:digest-root`
// doc-comment marker (the mutation-test probe rides on that seam).
//
// Unlike rangesort, ANY map range in digest-reachable code is flagged,
// even one whose order never visibly escapes today — order sorted
// after collection is fine but must be annotated so the audit trail
// records why.

import (
	"go/ast"
	"go/types"
)

var digestpureCheck = &Check{
	Name: "digestpure",
	Doc:  "functions reachable from digest roots are transitively clock-, rand- and map-order-free",
	Run: func(pass *Pass) {
		a := pass.World.interproc()
		for _, f := range a.order {
			if f.pkg != pass.Pkg {
				continue
			}
			root, reachable := a.digestRoot[f.fn]
			if !reachable {
				continue
			}
			reportDigestImpurities(pass, a, f, root)
		}
	},
}

func reportDigestImpurities(pass *Pass, a *ipa, f *ipaFunc, root *types.Func) {
	info := f.pkg.Info
	where := "is the digest root " + shortFuncName(root)
	if root != f.fn {
		where = "is reachable from digest root " + shortFuncName(root) + " (" + a.digestPath(f.fn) + ")"
	}
	hint := "digest inputs must be bit-deterministic: sort keys before iterating, inject the clock, seed the source — or annotate: //opmlint:allow digestpure — <why>"
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.For, hint,
						"%s %s: map iteration order is run-dependent", f.fn.Name(), where)
				}
			}
		case *ast.SelectorExpr:
			fn, ok := info.Uses[n.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(n.Pos(), hint,
						"%s %s: wall-clock read time.%s is run-dependent", f.fn.Name(), where, fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() == nil && !seededRandCtor[fn.Name()] {
					pass.Reportf(n.Pos(), hint,
						"%s %s: global-source rand.%s is run-dependent", f.fn.Name(), where, fn.Name())
				}
			}
		}
		return true
	})
}
