package lint

import "testing"

// BenchmarkLintRepo perf-gates the linter itself (scripts/bench-json.sh
// roster): cold measures a full parse+type-check+analysis of the repo
// with the world cache bypassed — the price CI pays once — and warm
// measures a re-run through the shared typed-package cache, the price
// every additional invocation in the same process pays. A loader
// regression (re-type-checking per check, losing the cache) shows up
// as warm collapsing toward cold.
func BenchmarkLintRepo(b *testing.B) {
	root, _, err := FindModule(".")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(root, Options{NoCache: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := Run(root, Options{}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Run(root, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
