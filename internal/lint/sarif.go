package lint

// SARIF 2.1.0 output (Static Analysis Results Interchange Format) so
// GitHub code scanning can annotate PR diffs with opmlint findings.
// The encoding is deliberately minimal — tool driver, one rule per
// check, one result per finding — and deterministic: rules are emitted
// in AllChecks order and results in the already-sorted finding order,
// so two runs over the same tree produce byte-identical SARIF.

import "encoding/json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// FormatSARIF renders findings as a SARIF 2.1.0 log. checks is the
// rule roster to declare (normally the checks that ran); findings from
// checks outside it — the synthetic directive-hygiene "opmlint" check
// in particular — get an ad-hoc rule appended so every result's ruleId
// resolves.
func FormatSARIF(fs []Finding, checks []*Check) (string, error) {
	rules := make([]sarifRule, 0, len(checks)+1)
	known := map[string]bool{}
	for _, c := range checks {
		rules = append(rules, sarifRule{ID: c.Name, ShortDescription: sarifMessage{Text: c.Doc}})
		known[c.Name] = true
	}
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		if !known[f.Check] {
			rules = append(rules, sarifRule{ID: f.Check,
				ShortDescription: sarifMessage{Text: "suppression-directive hygiene"}})
			known[f.Check] = true
		}
		msg := f.Msg
		if f.Hint != "" {
			msg += " (" + f.Hint + ")"
		}
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifMessage{Text: msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "opmlint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data) + "\n", nil
}
