package lint

// callgraph.go builds opmlint's interprocedural view of the module: an
// index of every function declaration, a static call graph (direct
// calls, method calls, function references, and interface methods
// expanded to their module implementations), a blocking-operation
// classification solved to a fixpoint over that graph, the reachability
// closure from the digest roots, and the index of atomically-accessed
// fields. Everything here is check-independent and built at most once
// per World (see (*World).interproc), so the ten checks share one
// analysis instead of re-walking the tree ten times.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// interproc returns the module-wide interprocedural analyses, built
// lazily on first use and shared by every check of the run (and, via
// the world cache, across runs).
func (w *World) interproc() *ipa {
	w.ipaOnce.Do(func() { w.ipaVal = buildIPA(w) })
	return w.ipaVal
}

// ipa is the interprocedural analysis state for one World.
type ipa struct {
	w *World

	// funcs indexes every module function or method that has a body.
	funcs map[*types.Func]*ipaFunc
	// order lists the same functions deterministically: by package
	// import path, then file, then declaration order.
	order []*ipaFunc

	// blockCtx classifies functions that can block in ways a context
	// should bound (ctxflow's notion); blockLock adds file I/O
	// (lockscope's notion: anything slow enough to matter under a
	// mutex). Both map a function to its earliest evidence.
	blockCtx  map[*types.Func]blockCause
	blockLock map[*types.Func]blockCause

	// digestRoot maps every function reachable from a digest root to
	// that root; digestFrom records the discovery edge for rendering
	// the call path in findings.
	digestRoot map[*types.Func]*types.Func
	digestFrom map[*types.Func]*types.Func

	// atomicObjs maps module fields/vars whose address is passed to a
	// sync/atomic function to the (sorted) positions of those calls;
	// atomicSpans are the source spans of the calls themselves, so the
	// atomic accesses are not flagged as plain ones.
	atomicObjs  map[types.Object][]token.Pos
	atomicSpans []posSpan
}

// ipaFunc is one module function declaration plus its analysis facts.
type ipaFunc struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl
	// hasCtx: the signature accepts a context.Context.
	hasCtx bool
	// hasGo: the body lexically contains a go statement. Such
	// functions get the fork-join exemption: their own channel traffic
	// is how they collect their goroutines, not unbounded blocking.
	hasGo bool
	edges []ipaEdge
	seeds []seedOp
}

// ipaEdge is one outgoing call-graph edge.
type ipaEdge struct {
	callee *types.Func
	pos    token.Pos
	// call: a call position; false means a function reference (the
	// callee escapes as a value). Blocking only propagates over calls;
	// digest reachability follows both.
	call bool
	// spawned: the edge sits inside a go statement (directly, or in a
	// go-spawned function literal) — the callee runs on another
	// goroutine and does not block this function.
	spawned bool
}

// seedKind says which blocking flavors a seed feeds, plus whether it
// is channel-shaped (the fork-join exemption applies to those).
type seedKind uint8

const (
	seedCtx  seedKind = 1 << iota // ctxflow: a context should bound it
	seedLock                      // lockscope: too slow under a mutex
	seedChan                      // channel-shaped: fork-join exempt
)

// seedOp is one directly-blocking operation observed in a body.
type seedOp struct {
	pos  token.Pos
	why  string
	kind seedKind
}

// blockCause is the earliest evidence that a function blocks: either a
// direct seed (why) or a call to a blocking module function (via).
type blockCause struct {
	pos token.Pos
	why string
	via *types.Func
}

type posSpan struct{ start, end token.Pos }

// ---------------------------------------------------------------------
// builder

type ipaBuilder struct {
	a        *ipa
	named    []types.Type
	implMemo map[*types.Func][]*types.Func
}

func buildIPA(w *World) *ipa {
	a := &ipa{
		w:          w,
		funcs:      map[*types.Func]*ipaFunc{},
		blockCtx:   map[*types.Func]blockCause{},
		blockLock:  map[*types.Func]blockCause{},
		digestRoot: map[*types.Func]*types.Func{},
		digestFrom: map[*types.Func]*types.Func{},
		atomicObjs: map[types.Object][]token.Pos{},
	}
	b := &ipaBuilder{a: a, implMemo: map[*types.Func][]*types.Func{}}
	for _, ppath := range sortedPkgPaths(w) {
		p := w.Pkgs[ppath]
		if p.Info == nil {
			continue
		}
		for _, file := range p.Files {
			for _, decl := range file.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				f := &ipaFunc{fn: obj, pkg: p, decl: fd, hasCtx: sigHasCtx(obj)}
				a.funcs[obj] = f
				a.order = append(a.order, f)
			}
		}
	}
	for _, f := range a.order {
		b.scan(f, f.decl.Body, false, false)
		b.identitySeeds(f)
	}
	a.blockCtx = b.solveBlocking(seedCtx)
	a.blockLock = b.solveBlocking(seedLock)
	b.solveDigest()
	b.scanAtomics()
	for _, positions := range a.atomicObjs {
		sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	}
	return a
}

func sortedPkgPaths(w *World) []string {
	paths := make([]string, 0, len(w.Pkgs))
	for p := range w.Pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// scan walks one function body recording call/reference edges and
// directly-blocking seed operations. spawned marks go-spawned code
// (runs on another goroutine, so its operations do not block this
// function); noChan suppresses the seed for a channel operand that is
// a select communication clause (the select itself is the seed).
func (b *ipaBuilder) scan(f *ipaFunc, n ast.Node, spawned, noChan bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.GoStmt:
		f.hasGo = true
		if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
			for _, arg := range n.Call.Args {
				b.scan(f, arg, spawned, false)
			}
			b.scan(f, lit.Body, true, false)
			return
		}
		b.scanCall(f, n.Call, spawned, true)
	case *ast.DeferStmt:
		b.scanCall(f, n.Call, spawned, false)
	case *ast.CallExpr:
		b.scanCall(f, n, spawned, false)
	case *ast.FuncLit:
		b.scan(f, n.Body, spawned, false)
	case *ast.SendStmt:
		if !noChan && !spawned {
			f.seeds = append(f.seeds, seedOp{pos: n.Arrow, why: "sends on a channel", kind: seedCtx | seedLock | seedChan})
		}
		b.scan(f, n.Chan, spawned, false)
		b.scan(f, n.Value, spawned, false)
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && !noChan && !spawned {
			f.seeds = append(f.seeds, seedOp{pos: n.OpPos, why: "receives from a channel", kind: seedCtx | seedLock | seedChan})
		}
		b.scan(f, n.X, spawned, false)
	case *ast.SelectStmt:
		if !spawned && !selectGuarded(f.pkg.Info, n) {
			f.seeds = append(f.seeds, seedOp{pos: n.Select, why: "waits in a select with no default or <-ctx.Done() case", kind: seedCtx | seedLock | seedChan})
		}
		for _, cl := range n.Body.List {
			cc := cl.(*ast.CommClause)
			b.scan(f, cc.Comm, spawned, true)
			for _, s := range cc.Body {
				b.scan(f, s, spawned, false)
			}
		}
	case *ast.ExprStmt:
		b.scan(f, n.X, spawned, noChan)
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			b.scan(f, r, spawned, noChan)
		}
		for _, l := range n.Lhs {
			b.scan(f, l, spawned, false)
		}
	case *ast.SelectorExpr:
		b.refEdge(f, n.Sel, spawned)
		b.scan(f, n.X, spawned, false)
	case *ast.Ident:
		b.refEdge(f, n, spawned)
	default:
		for _, c := range directChildren(n) {
			b.scan(f, c, spawned, noChan)
		}
	}
}

// scanCall records the edge for one call expression and scans its
// operands. goStmt marks `go f(...)` direct spawns.
func (b *ipaBuilder) scanCall(f *ipaFunc, call *ast.CallExpr, spawned, goStmt bool) {
	callee := staticCallee(f.pkg.Info, call)
	if callee != nil {
		f.edges = append(f.edges, ipaEdge{callee: callee, pos: call.Pos(), call: true, spawned: spawned || goStmt})
		if !spawned && !goStmt {
			if why, kind := extBlocking(callee); why != "" {
				f.seeds = append(f.seeds, seedOp{
					pos:  call.Pos(),
					why:  "calls " + shortFuncName(callee) + ", which " + why,
					kind: kind,
				})
			}
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			b.scan(f, sel.X, spawned, false)
		}
	} else {
		b.scan(f, call.Fun, spawned || goStmt, false)
	}
	for _, arg := range call.Args {
		b.scan(f, arg, spawned, false)
	}
}

// refEdge records a function reference when id resolves to a function.
func (b *ipaBuilder) refEdge(f *ipaFunc, id *ast.Ident, spawned bool) {
	if fn, ok := f.pkg.Info.Uses[id].(*types.Func); ok {
		f.edges = append(f.edges, ipaEdge{callee: fn, pos: id.Pos(), call: false, spawned: spawned})
	}
}

// identitySeeds marks module functions that block by contract rather
// than by anything visible in their bodies.
func (b *ipaBuilder) identitySeeds(f *ipaFunc) {
	// The store journal append is a synchronous disk write: a context
	// should bound reaching it, and no mutex should be held across it.
	if f.fn.Name() == "Put" && recvTypeName(f.fn) == "Store" &&
		path.Base(f.pkg.ImportPath) == "store" && !strings.Contains(f.pkg.ImportPath, "testdata") {
		f.seeds = append(f.seeds, seedOp{pos: f.decl.Pos(), why: "appends to the store journal", kind: seedCtx | seedLock})
	}
}

// extBlocking classifies calls into non-module packages that block.
// The why reads after "which ". Channel-shaped waits (WaitGroup.Wait)
// carry seedChan so fork-join spawners are exempt from them.
func extBlocking(fn *types.Func) (why string, kind seedKind) {
	if fn.Pkg() == nil {
		return "", 0
	}
	name := fn.Name()
	recv := recvTypeName(fn)
	switch fn.Pkg().Path() {
	case "time":
		if recv == "" && name == "Sleep" {
			return "sleeps", seedCtx | seedLock
		}
	case "sync":
		if recv == "WaitGroup" && name == "Wait" {
			return "waits on a WaitGroup", seedCtx | seedLock | seedChan
		}
	case "net/http":
		switch recv {
		case "", "Client":
			// (*http.Client).Do is exempt: its request carries the context.
			switch name {
			case "Get", "Head", "Post", "PostForm":
				return "performs an HTTP round-trip", seedCtx | seedLock
			}
		case "Server":
			switch name {
			case "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS":
				return "serves HTTP until shutdown", seedCtx | seedLock
			}
		}
	case "os/exec":
		if recv == "Cmd" {
			switch name {
			case "Run", "Wait", "Output", "CombinedOutput":
				return "waits on a child process", seedCtx | seedLock
			}
		}
	case "os":
		if recv == "File" {
			switch name {
			case "Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync", "Truncate":
				return "does file I/O", seedLock
			}
		}
		if recv == "" {
			switch name {
			case "ReadFile", "WriteFile", "Create", "Open", "OpenFile",
				"Rename", "Remove", "RemoveAll", "MkdirAll", "ReadDir":
				return "does file I/O", seedLock
			}
		}
	}
	return "", 0
}

// selectGuarded reports whether a select cannot block indefinitely
// without a cancellation path: it has a default case or receives from
// a context's Done channel.
func selectGuarded(info *types.Info, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		cc := cl.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default case
		}
		var x ast.Expr
		switch c := cc.Comm.(type) {
		case *ast.ExprStmt:
			x = c.X
		case *ast.AssignStmt:
			if len(c.Rhs) == 1 {
				x = c.Rhs[0]
			}
		}
		u, ok := unparen(x).(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			continue
		}
		call, ok := unparen(u.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		if done := staticCallee(info, call); done != nil && done.Name() == "Done" {
			if sig, ok := done.Type().(*types.Signature); ok && sig.Recv() != nil && isContextType(sig.Recv().Type()) {
				return true
			}
		}
	}
	return false
}

// solveBlocking computes the blocking set for one flavor to a fixpoint
// over call edges, then assigns each member its earliest evidence so
// messages are deterministic regardless of solve order.
func (b *ipaBuilder) solveBlocking(flavor seedKind) map[*types.Func]blockCause {
	forkJoinExempt := func(f *ipaFunc, kind seedKind) bool {
		return flavor&seedCtx != 0 && kind&seedChan != 0 && f.hasGo
	}
	in := map[*types.Func]bool{}
	for _, f := range b.a.order {
		for _, s := range f.seeds {
			if s.kind&flavor != 0 && !forkJoinExempt(f, s.kind) {
				in[f.fn] = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range b.a.order {
			if in[f.fn] {
				continue
			}
			for _, e := range f.edges {
				if e.call && !e.spawned && in[e.callee] {
					in[f.fn] = true
					changed = true
					break
				}
			}
		}
	}
	out := map[*types.Func]blockCause{}
	for _, f := range b.a.order {
		if !in[f.fn] {
			continue
		}
		var best blockCause
		consider := func(c blockCause) {
			if best.pos == token.NoPos || c.pos < best.pos {
				best = c
			}
		}
		for _, s := range f.seeds {
			if s.kind&flavor != 0 && !forkJoinExempt(f, s.kind) {
				consider(blockCause{pos: s.pos, why: s.why})
			}
		}
		for _, e := range f.edges {
			if e.call && !e.spawned && in[e.callee] {
				consider(blockCause{pos: e.pos, via: e.callee})
			}
		}
		out[f.fn] = best
	}
	return out
}

// blockWhy renders why fn blocks, following inherited causes through
// at most three call hops (which also bounds recursion cycles).
func (a *ipa) blockWhy(m map[*types.Func]blockCause, fn *types.Func) string {
	var sb strings.Builder
	cur := fn
	for hop := 0; ; hop++ {
		c, ok := m[cur]
		if !ok {
			sb.WriteString("blocks")
			return sb.String()
		}
		if c.via == nil {
			sb.WriteString(c.why)
			return sb.String()
		}
		if hop == 3 {
			sb.WriteString("blocks transitively")
			return sb.String()
		}
		fmt.Fprintf(&sb, "calls %s, which ", shortFuncName(c.via))
		cur = c.via
	}
}

// ---------------------------------------------------------------------
// digest reachability

// digestRootNames are the functions whose outputs the byte-identity
// gates compare: everything they can reach must be bit-deterministic.
var digestRootNames = map[[2]string]bool{
	{"harness", "CellDigest"}:  true,
	{"harness", "CellTraceID"}: true,
	{"shard", "ShardOf"}:       true,
	{"store", "Digest"}:        true,
}

const digestRootMarker = "opmlint:digest-root"

func isDigestRoot(f *ipaFunc) bool {
	if f.decl.Doc != nil && strings.Contains(f.decl.Doc.Text(), digestRootMarker) {
		return true
	}
	if strings.Contains(f.pkg.ImportPath, "testdata") {
		return false // fixture packages opt in via the marker only
	}
	return f.decl.Recv == nil &&
		digestRootNames[[2]string{path.Base(f.pkg.ImportPath), f.fn.Name()}]
}

// solveDigest computes the closure of functions reachable from the
// digest roots over call and reference edges, expanding interface
// methods to every module implementation.
func (b *ipaBuilder) solveDigest() {
	a := b.a
	var queue []*types.Func
	for _, f := range a.order {
		if isDigestRoot(f) {
			a.digestRoot[f.fn] = f.fn
			queue = append(queue, f.fn)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		cf := a.funcs[cur]
		if cf == nil {
			continue
		}
		root := a.digestRoot[cur]
		for _, e := range cf.edges {
			targets := []*types.Func{e.callee}
			if isIfaceMethod(e.callee) {
				targets = append(targets, b.implsOf(e.callee)...)
			}
			for _, t := range targets {
				if _, indexed := a.funcs[t]; !indexed {
					continue
				}
				if _, seen := a.digestRoot[t]; seen {
					continue
				}
				a.digestRoot[t] = root
				a.digestFrom[t] = cur
				queue = append(queue, t)
			}
		}
	}
}

// digestPath renders the discovery chain root → … → fn.
func (a *ipa) digestPath(fn *types.Func) string {
	var hops []string
	for cur := fn; cur != nil; cur = a.digestFrom[cur] {
		hops = append(hops, shortFuncName(cur))
		if len(hops) > 6 {
			hops = append(hops, "…")
			break
		}
		if a.digestFrom[cur] == nil {
			break
		}
	}
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return strings.Join(hops, " → ")
}

// moduleNamed lists every non-interface named type defined in the
// module, deterministically.
func (b *ipaBuilder) moduleNamed() []types.Type {
	if b.named != nil {
		return b.named
	}
	b.named = []types.Type{}
	for _, ppath := range sortedPkgPaths(b.a.w) {
		p := b.a.w.Pkgs[ppath]
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			b.named = append(b.named, named)
		}
	}
	return b.named
}

// implsOf expands an interface method to the corresponding methods of
// every module type implementing the interface.
func (b *ipaBuilder) implsOf(m *types.Func) []*types.Func {
	if cached, ok := b.implMemo[m]; ok {
		return cached
	}
	var out []*types.Func
	sig, _ := m.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			for _, named := range b.moduleNamed() {
				var impl types.Type
				switch {
				case types.Implements(named, iface):
					impl = named
				case types.Implements(types.NewPointer(named), iface):
					impl = types.NewPointer(named)
				default:
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
				if f, ok := obj.(*types.Func); ok {
					if _, indexed := b.a.funcs[f]; indexed {
						out = append(out, f)
					}
				}
			}
		}
	}
	b.implMemo[m] = out
	return out
}

// ---------------------------------------------------------------------
// atomic access index

// scanAtomics records every module field/var whose address is passed
// to a sync/atomic function, plus the spans of those calls.
func (b *ipaBuilder) scanAtomics() {
	a := b.a
	for _, ppath := range sortedPkgPaths(a.w) {
		p := a.w.Pkgs[ppath]
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := staticCallee(p.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || recvTypeName(fn) != "" {
					return true
				}
				a.atomicSpans = append(a.atomicSpans, posSpan{call.Pos(), call.End()})
				for _, arg := range call.Args {
					u, ok := unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					obj := refObj(p.Info, u.X)
					if obj == nil || obj.Pkg() == nil || !a.w.Internal(obj.Pkg().Path()) {
						continue
					}
					a.atomicObjs[obj] = append(a.atomicObjs[obj], call.Pos())
				}
				return true
			})
		}
	}
}

func (a *ipa) inAtomicSpan(pos token.Pos) bool {
	for _, s := range a.atomicSpans {
		if pos >= s.start && pos < s.end {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// shared helpers

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// staticCallee resolves a call to its declared function or method, or
// nil for dynamic calls (function values, function-literal calls),
// conversions and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// refObj resolves the object a simple expression denotes (for &x and
// &x.f atomic operands).
func refObj(info *types.Info, e ast.Expr) types.Object {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			return s.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func sigHasCtx(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func isIfaceMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// shortFuncName renders pkg.(*Recv).Name for messages: the package's
// last path segment keeps fixture goldens independent of module paths.
func shortFuncName(f *types.Func) string {
	var sb strings.Builder
	if f.Pkg() != nil {
		sb.WriteString(path.Base(f.Pkg().Path()))
		sb.WriteByte('.')
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			star = "*"
		}
		switch n := t.(type) {
		case *types.Named:
			fmt.Fprintf(&sb, "(%s%s).", star, n.Obj().Name())
		case *types.Interface:
			sb.WriteString("(interface).")
		}
	}
	sb.WriteString(f.Name())
	return sb.String()
}

// directChildren returns a node's immediate children, for generic
// descent with explicit state.
func directChildren(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			out = append(out, m)
		}
		return false
	})
	return out
}

// relPos renders a position as module-relative file:line for messages.
func (w *World) relPos(pos token.Pos) string {
	p := w.Fset.Position(pos)
	rel := p.Filename
	if r, err := filepath.Rel(w.Root, p.Filename); err == nil {
		rel = filepath.ToSlash(r)
	}
	return fmt.Sprintf("%s:%d", rel, p.Line)
}
