package lint

// load.go is opmlint's package loader: a small, stdlib-only stand-in
// for golang.org/x/tools/go/packages. It discovers the module root,
// expands "./..."-style patterns, parses every non-test file, and
// type-checks packages in dependency order. Module-internal imports
// are resolved by mapping the import path onto a directory under the
// module root; standard-library imports go through go/importer with
// export data first and a from-source fallback, so the tool works in
// hermetic containers that cannot fetch modules or tools.

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// World is one loaded-and-type-checked view of the module: every
// requested package plus the module-internal closure they import.
type World struct {
	Fset   *token.FileSet
	Module string // module path from go.mod
	Root   string // absolute module root directory
	Pkgs   map[string]*Package
	// Tags is the build-tag set files were selected under (see
	// Options.BuildTags); empty for a default load.
	Tags []string

	// interprocedural analyses, built lazily on first use and shared by
	// every check of the run (and, via the world cache, across runs).
	ipaOnce sync.Once
	ipaVal  *ipa
}

// Package is one parsed and type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string // absolute
	Files      []*File
	Types      *types.Package
	Info       *types.Info
	// Requested marks packages named by the load patterns; only these
	// are linted (imports pulled in for type-checking are not).
	Requested bool
}

// File is one parsed source file of a package.
type File struct {
	Rel string // module-root-relative path, forward slashes
	AST *ast.File
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// FindModule walks up from dir to the enclosing go.mod and returns
// the absolute module root and the module path.
func FindModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			m := moduleRE.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
			}
			return d, string(m[1]), nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Load parses and type-checks the packages matched by patterns.
// Patterns are directories relative to base (or absolute), with a
// trailing "/..." walking the subtree; testdata, vendor and hidden
// directories are skipped during walks but may be named explicitly.
func Load(base string, patterns []string) (*World, error) {
	return LoadTags(base, patterns, nil)
}

// worldCache memoizes loaded worlds per (base, patterns, tags) for the
// process lifetime. One `go test ./internal/lint` run loads the module
// many times over (self-check, fixtures, JSON determinism, benchmarks);
// type-checking the tree — and especially the from-source stdlib
// fallback — dominated that wall time before the cache. Worlds are
// immutable after load (directives are re-collected per run), so
// sharing is safe.
var worldCache = struct {
	sync.Mutex
	m map[string]*World
}{m: map[string]*World{}}

func loadCached(base string, patterns, tags []string) (*World, error) {
	abs, err := filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	key := abs + "\x00" + strings.Join(patterns, "\x00") + "\x01" + strings.Join(tags, "\x00")
	worldCache.Lock()
	w, ok := worldCache.m[key]
	worldCache.Unlock()
	if ok {
		return w, nil
	}
	w, err = LoadTags(base, patterns, tags)
	if err != nil {
		return nil, err
	}
	worldCache.Lock()
	worldCache.m[key] = w
	worldCache.Unlock()
	return w, nil
}

// LoadTags is Load with an explicit build-tag set: files whose
// //go:build constraint evaluates false under tags (plus the host
// GOOS/GOARCH) are skipped, exactly as the go tool would. The
// digestpure mutation probe rides in on this seam.
func LoadTags(base string, patterns, tags []string) (*World, error) {
	root, module, err := FindModule(base)
	if err != nil {
		return nil, err
	}
	w := &World{
		Fset:   token.NewFileSet(),
		Module: module,
		Root:   root,
		Pkgs:   map[string]*Package{},
		Tags:   tags,
	}
	dirs, err := w.expand(base, patterns)
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		if err := w.addDir(d, true); err != nil {
			return nil, err
		}
	}
	if err := w.closure(); err != nil {
		return nil, err
	}
	order, err := w.toposort()
	if err != nil {
		return nil, err
	}
	for _, p := range order {
		if err := w.typecheck(p); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Requested returns the linted packages sorted by import path.
func (w *World) Requested() []*Package {
	var out []*Package
	for _, p := range w.Pkgs {
		if p.Requested {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out
}

// Internal reports whether path names a package inside this module.
func (w *World) Internal(path string) bool {
	return path == w.Module || strings.HasPrefix(path, w.Module+"/")
}

// expand resolves patterns to absolute package directories.
func (w *World) expand(base string, patterns []string) ([]string, error) {
	absBase, err := filepath.Abs(base)
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		walk := false
		if strings.HasSuffix(pat, "/...") {
			walk = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		d := pat
		if !filepath.IsAbs(d) {
			d = filepath.Join(absBase, d)
		}
		d = filepath.Clean(d)
		if d != w.Root && !strings.HasPrefix(d, w.Root+string(filepath.Separator)) {
			return nil, fmt.Errorf("lint: pattern %q resolves outside module root %s", pat, w.Root)
		}
		if !walk {
			if !hasGoFiles(d) {
				return nil, fmt.Errorf("lint: no Go files in %s", d)
			}
			add(d)
			continue
		}
		err := filepath.WalkDir(d, func(path string, de os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !de.IsDir() {
				return nil
			}
			name := de.Name()
			if path != d && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps an absolute directory under the root to its
// import path.
func (w *World) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(w.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return w.Module, nil
	}
	return w.Module + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module-internal import path to its directory.
func (w *World) dirFor(path string) string {
	if path == w.Module {
		return w.Root
	}
	return filepath.Join(w.Root, filepath.FromSlash(strings.TrimPrefix(path, w.Module+"/")))
}

// addDir parses the package in dir (non-test files only). Already
// loaded packages are upgraded to requested when asked again.
func (w *World) addDir(dir string, requested bool) error {
	ipath, err := w.importPathFor(dir)
	if err != nil {
		return err
	}
	if p, ok := w.Pkgs[ipath]; ok {
		p.Requested = p.Requested || requested
		return nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	p := &Package{ImportPath: ipath, Dir: dir, Requested: requested}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(w.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: parsing %s: %w", full, err)
		}
		if !w.buildSelected(f) {
			continue
		}
		if p.Name == "" {
			p.Name = f.Name.Name
		} else if p.Name != f.Name.Name {
			return fmt.Errorf("lint: %s: packages %q and %q in one directory", dir, p.Name, f.Name.Name)
		}
		rel, err := filepath.Rel(w.Root, full)
		if err != nil {
			return err
		}
		p.Files = append(p.Files, &File{Rel: filepath.ToSlash(rel), AST: f})
	}
	if len(p.Files) == 0 {
		return fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	w.Pkgs[ipath] = p
	return nil
}

// buildSelected reports whether f's //go:build constraint (if any)
// evaluates true under the world's tag set. Host GOOS/GOARCH and go1.*
// version tags are always satisfied; everything else — including the
// conventional "ignore" — must appear in World.Tags to select the
// file, mirroring `go build -tags`.
func (w *World) buildSelected(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				// An unparseable constraint excludes the file, which is
				// the conservative reading for a linter.
				return false
			}
			return expr.Eval(func(tag string) bool {
				if tag == runtime.GOOS || tag == runtime.GOARCH || strings.HasPrefix(tag, "go1") {
					return true
				}
				for _, t := range w.Tags {
					if t == tag {
						return true
					}
				}
				return false
			})
		}
	}
	return true
}

// imports returns the module-internal import paths of p, sorted.
func (w *World) imports(p *Package) []string {
	seen := map[string]bool{}
	for _, f := range p.Files {
		for _, imp := range f.AST.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if w.Internal(path) {
				seen[path] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for path := range seen {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// closure loads every module-internal package transitively imported
// by the already loaded set, so type-checking can resolve them.
func (w *World) closure() error {
	for {
		var missing []string
		for _, p := range w.Pkgs {
			for _, dep := range w.imports(p) {
				if _, ok := w.Pkgs[dep]; !ok {
					missing = append(missing, dep)
				}
			}
		}
		if len(missing) == 0 {
			return nil
		}
		sort.Strings(missing)
		for _, path := range missing {
			if _, ok := w.Pkgs[path]; ok {
				continue
			}
			if err := w.addDir(w.dirFor(path), false); err != nil {
				return fmt.Errorf("lint: loading import %q: %w", path, err)
			}
		}
	}
}

// toposort orders packages so every module-internal import precedes
// its importer.
func (w *World) toposort() ([]*Package, error) {
	paths := make([]string, 0, len(w.Pkgs))
	for path := range w.Pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle: %s", strings.Join(append(stack, path), " -> "))
		}
		state[path] = visiting
		for _, dep := range w.imports(w.Pkgs[path]) {
			if err := visit(dep, append(stack, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, w.Pkgs[path])
		return nil
	}
	for _, path := range paths {
		if err := visit(path, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// typecheck runs go/types over one package. Dependencies must already
// be checked (see toposort).
func (w *World) typecheck(p *Package) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var terrs []error
	cfg := &types.Config{
		Importer: (*worldImporter)(w),
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	files := make([]*ast.File, len(p.Files))
	for i, f := range p.Files {
		files[i] = f.AST
	}
	tpkg, _ := cfg.Check(p.ImportPath, w.Fset, files, info)
	if len(terrs) > 0 {
		msgs := make([]string, 0, len(terrs))
		for _, e := range terrs {
			msgs = append(msgs, e.Error())
		}
		return fmt.Errorf("lint: type-checking %s:\n\t%s", p.ImportPath, strings.Join(msgs, "\n\t"))
	}
	p.Types, p.Info = tpkg, info
	return nil
}

// worldImporter resolves imports during type-checking: module-internal
// paths from the loaded world, everything else from the standard
// library importers.
type worldImporter World

func (wi *worldImporter) Import(path string) (*types.Package, error) {
	w := (*World)(wi)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if w.Internal(path) {
		p, ok := w.Pkgs[path]
		if !ok || p.Types == nil {
			return nil, fmt.Errorf("lint: internal package %q not loaded", path)
		}
		return p.Types, nil
	}
	return sharedStd.Import(path)
}

// stdImporter resolves standard-library packages: compiled export
// data when the toolchain provides it, falling back to type-checking
// the package from $GOROOT source. Results are cached.
type stdImporter struct {
	mu    sync.Mutex
	cache map[string]*types.Package
	gc    types.Importer
	src   types.Importer
}

// sharedStd is the process-wide standard-library importer. Stdlib
// packages carry no positions any check reports on, so every World —
// repo self-check, fixture packages, scratch test modules — shares one
// typed set instead of re-checking fmt/net/http from source per load.
var sharedStd = newStdImporter(token.NewFileSet())

func newStdImporter(fset *token.FileSet) *stdImporter {
	return &stdImporter{
		cache: map[string]*types.Package{},
		gc:    importer.ForCompiler(fset, "gc", nil),
		src:   importer.ForCompiler(fset, "source", nil),
	}
}

func (s *stdImporter) Import(path string) (*types.Package, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.cache[path]; ok {
		return p, nil
	}
	p, err := s.gc.Import(path)
	if err != nil {
		p, err = s.src.Import(path)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: importing %q: %w", path, err)
	}
	s.cache[path] = p
	return p, nil
}
