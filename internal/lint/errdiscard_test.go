package lint

import (
	"strings"
	"testing"
)

// TestErrdiscardApplies pins the check's package scope: the journal's
// crash-safety layer (store), the fault injector, the serving daemon
// on the journal's write path, and the shard coordinator that merges
// journals wholesale — and nothing else.
func TestErrdiscardApplies(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/store":       true,
		"repro/internal/faultinject": true,
		"repro/internal/serve":       true,
		"repro/internal/shard":       true,
		"repro/internal/sweep":       false,
		"repro/internal/harness":     false,
		"repro/cmd/opmserve":         false,
	} {
		if got := errdiscardCheck.Applies(nil, &Package{ImportPath: path}); got != want {
			t.Errorf("errdiscard.Applies(%s) = %v, want %v", path, got, want)
		}
	}
}

// TestErrdiscardFlagsServePackage proves the scope extension bites: a
// dropped error inside a package whose path contains "serve" is a
// finding, and the suppression idiom still works there.
func TestErrdiscardFlagsServePackage(t *testing.T) {
	dir := scratchModule(t, map[string]string{
		"serve/serve.go": `package serve

import "os"

// Drop loses a removal error — the shape a daemon must never have on
// its journal write path.
func Drop(path string) {
	os.Remove(path)
}

// Suppressed documents why losing it is safe.
func Suppressed(path string) {
	os.Remove(path) //opmlint:allow errdiscard — test: best-effort cleanup of a scratch file
}
`,
	})
	findings, err := Run(dir, Options{Patterns: []string{"./..."}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly the one unsuppressed discard, got:\n%s", FormatText(findings))
	}
	f := findings[0]
	if f.Check != "errdiscard" || !strings.Contains(f.Msg, "discards its error") {
		t.Fatalf("unexpected finding: %+v", f)
	}
}
