package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestFormatSARIF checks shape, determinism, and rule resolution: a
// valid 2.1.0 log, byte-identical across calls, one rule per check in
// canonical order, every result's ruleId declared — including the
// synthetic directive-hygiene "opmlint" check.
func TestFormatSARIF(t *testing.T) {
	findings := []Finding{
		{File: "internal/x/x.go", Line: 3, Col: 7, Check: "ctxflow",
			Msg: "context.Background() in library code defeats cancellation", Hint: "accept a ctx parameter"},
		{File: "internal/x/x.go", Line: 9, Col: 1, Check: "opmlint",
			Msg: "unused //opmlint:allow ctxflow"},
	}
	out1, err := FormatSARIF(findings, AllChecks())
	if err != nil {
		t.Fatal(err)
	}
	out2, err := FormatSARIF(findings, AllChecks())
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatal("SARIF output is not deterministic")
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out1), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q runs %d, want 2.1.0 and 1", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "opmlint" {
		t.Fatalf("driver name %q, want opmlint", run.Tool.Driver.Name)
	}
	declared := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		declared[r.ID] = true
	}
	for _, c := range AllChecks() {
		if !declared[c.Name] {
			t.Errorf("check %s missing from SARIF rules", c.Name)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("%d results, want 2", len(run.Results))
	}
	for _, r := range run.Results {
		if !declared[r.RuleID] {
			t.Errorf("result ruleId %q not declared in rules", r.RuleID)
		}
	}
	got := run.Results[0]
	if got.RuleID != "ctxflow" ||
		got.Locations[0].PhysicalLocation.ArtifactLocation.URI != "internal/x/x.go" ||
		got.Locations[0].PhysicalLocation.Region.StartLine != 3 {
		t.Errorf("first result mis-encoded: %+v", got)
	}
	if !strings.Contains(got.Message.Text, "accept a ctx parameter") {
		t.Errorf("hint not folded into message: %q", got.Message.Text)
	}

	// Empty findings still produce a valid log with an empty (never
	// null) results array — code scanning rejects null.
	empty, err := FormatSARIF(nil, AllChecks())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(empty, `"results": null`) {
		t.Error("empty findings rendered results as null")
	}
	if !strings.Contains(empty, `"results": []`) {
		t.Error("empty findings should render an empty results array")
	}
}
