package lint

import (
	"strings"
	"testing"
)

// TestDigestMutationCaught is digestpure's proof of claim: a wall
// clock injected into a digest-reachable helper must be caught. The
// probe (internal/harness/digest_mutation_probe.go) exists only under
// the opmlint_digest_mutation build tag and is reachable from the real
// digest root harness.CellDigest only via interface dispatch on
// core.Estimator.Version — so the catch also proves the closure's
// interface-method expansion works, not just direct call edges.
func TestDigestMutationCaught(t *testing.T) {
	root := repoRoot(t)
	checks, err := CheckByName("digestpure")
	if err != nil {
		t.Fatal(err)
	}

	// Without the tag the probe does not exist and harness is clean.
	clean, err := Run(root, Options{Patterns: []string{"internal/harness"}, Checks: checks})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != 0 {
		t.Fatalf("harness should be digest-pure without the mutation tag, got:\n%s", FormatText(clean))
	}

	// With the tag, the injected time.Now() must surface as a
	// digestpure finding attributed to a digest root.
	mutated, err := Run(root, Options{
		Patterns:  []string{"internal/harness"},
		Checks:    checks,
		BuildTags: []string{"opmlint_digest_mutation"},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range mutated {
		if f.Check == "digestpure" &&
			strings.Contains(f.Msg, "wall-clock read time.Now") &&
			strings.Contains(f.Msg, "digest root") {
			found = true
		}
	}
	if !found {
		t.Fatalf("mutation probe's time.Now() was not caught by digestpure; findings:\n%s", FormatText(mutated))
	}
}
