package lint

// lockscope: no blocking operation while a sync.Mutex/RWMutex is held.
// A lock held across channel traffic, file or journal I/O, an HTTP
// round-trip or a child-process wait turns every other contender into
// a convoy behind that latency — in the serving daemon that is a tail
// spike, in the shard coordinator a missed heartbeat window. The walk
// is cfg.go's symbolic execution of each body; what counts as
// blocking is the interprocedural lockscope classification (ctxflow's
// set plus file I/O), so a call into a helper that eventually writes
// the journal is flagged at the call site under the lock.
//
// Suppression: //opmlint:allow lockscope — <why> where the mutex IS
// the serialization point by design (the store's single-writer
// journal lock is the canonical case).

import "go/token"

var lockscopeCheck = &Check{
	Name: "lockscope",
	Doc:  "no blocking operation (channel, file/journal I/O, HTTP, process wait) under a held mutex",
	Run: func(pass *Pass) {
		a := pass.World.interproc()
		for _, f := range a.order {
			if f.pkg != pass.Pkg {
				continue
			}
			lw := &lockWalker{pass: pass, a: a, held: map[string]token.Pos{}}
			lw.stmt(f.decl.Body)
			// Function literals run on their own schedule: empty held set.
			for len(lw.lits) > 0 {
				lit := lw.lits[0]
				lw.lits = lw.lits[1:]
				inner := &lockWalker{pass: pass, a: a, held: map[string]token.Pos{}}
				inner.stmt(lit.Body)
				lw.lits = append(lw.lits, inner.lits...)
			}
		}
	},
}
