package lint

// rangesort: map-iteration order must never reach report output. The
// repo's reports, CSVs and findings are compared byte-for-byte by the
// parallel==sequential, warm==cold and chaos equivalence suites, and
// PR 4 hand-fixed exactly this flake in harness.curveCSV (series rows
// emitted in map order differed run to run). The check flags a
// `for range` over a map when:
//
//   - the body appends to a slice the enclosing function returns,
//     unless that slice is also passed to a sort call — the canonical
//     collect-keys-then-sort idiom stays clean;
//   - the body writes to an io.Writer (fmt.Fprint*, io.WriteString,
//     or a Write/WriteString/WriteByte/WriteRune method on anything
//     implementing io.Writer);
//   - the ranged expression is an inline map literal — consuming a
//     literal in iteration order is always better written as a slice.
//
// Ranges that only aggregate (sums, max, filling another map) are
// order-independent and never flagged.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var rangesortCheck = &Check{
	Name: "rangesort",
	Doc:  "no map iteration whose order can reach returned slices or writers",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						checkFuncRanges(pass, fn.Type, fn.Body)
					}
				case *ast.FuncLit:
					checkFuncRanges(pass, fn.Type, fn.Body)
				}
				return true
			})
		}
	},
}

// walkShallow visits n without descending into nested function
// literals, so each function's statements are attributed to exactly
// one ownership analysis.
func walkShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// checkFuncRanges analyzes one function body for order-leaking map
// ranges.
func checkFuncRanges(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	// returned: objects of named results and of identifiers that
	// appear directly in a return statement.
	returned := map[types.Object]bool{}
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}
	// sorted: objects handed to a sort.*/slices.Sort* call anywhere in
	// the function — the collect-then-sort idiom.
	sorted := map[types.Object]bool{}
	walkShallow(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if id, ok := res.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						returned[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			if len(s.Args) == 0 {
				return true
			}
			sel, ok := s.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			pkg, name := fn.Pkg().Path(), fn.Name()
			if (pkg == "sort" || pkg == "slices") && strings.HasPrefix(name, "Sort") ||
				pkg == "sort" && (name == "Strings" || name == "Ints" || name == "Float64s" || name == "Stable" || name == "Slice" || name == "SliceStable") {
				if id, ok := s.Args[0].(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						sorted[obj] = true
					}
				}
			}
		}
		return true
	})
	walkShallow(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.Types[rng.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if _, ok := ast.Unparen(rng.X).(*ast.CompositeLit); ok {
			pass.Reportf(rng.Pos(),
				"iterate a sorted or explicitly ordered slice instead",
				"range over an inline map literal visits entries in random order")
			return true
		}
		checkRangeBody(pass, rng, returned, sorted)
		return true
	})
}

// checkRangeBody flags the first order-leaking statement in one
// map-range body.
func checkRangeBody(pass *Pass, rng *ast.RangeStmt, returned, sorted map[types.Object]bool) {
	info := pass.Pkg.Info
	done := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if done {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) != len(s.Lhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id]
				}
				if obj != nil && returned[obj] && !sorted[obj] {
					done = true
					pass.Reportf(s.Pos(),
						"collect into a slice, sort it, then build the result — see harness.curveCSV",
						"appends to returned slice %q in map-iteration order", id.Name)
					return false
				}
			}
		case *ast.CallExpr:
			if pos, what := writerWrite(pass, s); what != "" {
				done = true
				pass.Reportf(pos,
					"buffer per key and emit in sorted-key order instead",
					"%s inside a map range leaks iteration order into output", what)
				return false
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// writerWrite reports whether call writes to an io.Writer, returning
// a short description of the call for the finding.
func writerWrite(pass *Pass, call *ast.CallExpr) (token.Pos, string) {
	info := pass.Pkg.Info
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return token.NoPos, ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return token.NoPos, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return token.NoPos, ""
	}
	if fn.Pkg() != nil && sig.Recv() == nil {
		switch {
		case fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"):
			return call.Pos(), "fmt." + fn.Name()
		case fn.Pkg().Path() == "io" && fn.Name() == "WriteString":
			return call.Pos(), "io.WriteString"
		}
		return token.NoPos, ""
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return token.NoPos, ""
	}
	recv := info.Types[sel.X].Type
	if recv == nil || !implementsWriter(recv) {
		return token.NoPos, ""
	}
	return call.Pos(), fn.Name() + " on an io.Writer"
}

// writerIface is a synthesized io.Writer, so the check needs no
// dependency on having loaded package io.
var writerIface = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", errType)),
		false)
	iface := types.NewInterfaceType(
		[]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

func implementsWriter(t types.Type) bool {
	if types.Implements(t, writerIface) {
		return true
	}
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return false
	}
	return types.Implements(types.NewPointer(t), writerIface)
}
