package lint

// ctxflow: cancellation must flow through the call graph. Library code
// that accepts a context.Context has promised its caller a cancellation
// bound, so handing control to something that blocks — channel traffic,
// store journal appends, HTTP round-trips, child processes — without
// threading the context breaks that promise exactly where it matters
// (the serving daemon's drain path and the shard coordinator's
// supervision loop both found real leaks this way). Two rules:
//
//  1. context.Background()/context.TODO() are banned outside cmd/ —
//     a library function either receives its context or derives one
//     from an injected base, it never mints a fresh root.
//  2. A function that accepts a context must not call a callee that
//     (transitively) blocks but accepts no context. Fork-join
//     spawners are exempt from channel-shaped blocking: collecting
//     your own goroutines over a channel or WaitGroup is bounded by
//     construction, not by cancellation.
//
// Suppression: //opmlint:allow ctxflow — <why> on sites whose blocking
// is the contract (e.g. harvesting child-process exits during kill).

import (
	"go/ast"
	"go/types"
	"strings"
)

var ctxflowCheck = &Check{
	Name: "ctxflow",
	Doc:  "context threads into every blocking callee; Background/TODO banned in library code",
	Applies: func(w *World, p *Package) bool {
		return p.Name != "main" && firstPathSegment(w, p) != "cmd"
	},
	Run: func(pass *Pass) {
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if name := fn.Name(); name == "Background" || name == "TODO" {
					pass.Reportf(sel.Pos(),
						"accept a ctx parameter or derive from an injected base context; annotate only process-lifetime roots: //opmlint:allow ctxflow — <why>",
						"context.%s() in library code defeats cancellation", name)
				}
				return true
			})
		}

		a := pass.World.interproc()
		for _, f := range a.order {
			if f.pkg != pass.Pkg || !f.hasCtx {
				continue
			}
			for _, e := range f.edges {
				if !e.call || e.spawned || sigHasCtx(e.callee) {
					continue
				}
				var why string
				if _, isModule := a.funcs[e.callee]; isModule {
					if _, blocking := a.blockCtx[e.callee]; blocking {
						why = a.blockWhy(a.blockCtx, e.callee)
					}
				} else if w, kind := extBlocking(e.callee); w != "" && kind&seedCtx != 0 {
					if kind&seedChan != 0 && f.hasGo {
						continue // fork-join spawner collecting its own goroutines
					}
					why = w
				}
				if why == "" {
					continue
				}
				pass.Reportf(e.pos,
					"thread the context into the callee, bound the call with a select on ctx.Done(), or annotate: //opmlint:allow ctxflow — <why>",
					"%s accepts a context but calls %s, which %s and accepts none",
					f.fn.Name(), shortFuncName(e.callee), why)
			}
		}
	},
}

// firstPathSegment returns the first module-relative path segment of a
// package ("cmd", "internal", …), or "" for the module root.
func firstPathSegment(w *World, p *Package) string {
	rel := strings.TrimPrefix(p.ImportPath, w.Module)
	rel = strings.TrimPrefix(rel, "/")
	if i := strings.IndexByte(rel, '/'); i >= 0 {
		return rel[:i]
	}
	return rel
}
