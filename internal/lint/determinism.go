package lint

// determinism: library code must not read the wall clock or draw from
// the process-global math/rand source. Every published result depends
// on bit-determinism — the warm==cold store equivalence, the chaos
// byte-identity suite and the parallel==sequential sweep tests all
// compare exact bytes — so the model packages (memsim, cache, core,
// sparse, stepping, roofline, platform, trace, kernels) and everything
// they can reach must compute the same values on every run. Clock use
// is the obs layer's privilege, and even there every read carries an
// //opmlint:allow annotation explaining why the value can never feed
// back into simulated results. Seeded generators
// (rand.New(rand.NewPCG(...))) are always fine; the global source
// never is. cmd/ and example binaries are exempt: their timing is
// operator-facing by definition.

import (
	"go/ast"
	"go/types"
)

// seededRandCtor lists the math/rand[/v2] package functions that build
// explicitly seeded state rather than touching the global source.
var seededRandCtor = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewSource":  true,
	"NewZipf":    true,
}

var determinismCheck = &Check{
	Name: "determinism",
	Doc:  "no time.Now/time.Since or global-source math/rand in library code",
	Applies: func(w *World, p *Package) bool {
		return p.Name != "main"
	},
	Run: func(pass *Pass) {
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				name := fn.Name()
				switch fn.Pkg().Path() {
				case "time":
					if name == "Now" || name == "Since" {
						pass.Reportf(sel.Pos(),
							"timing is the obs layer's privilege; if this value can never feed simulated results, annotate: //opmlint:allow determinism — <why>",
							"wall-clock read time.%s in library code breaks bit-determinism", name)
					}
				case "math/rand", "math/rand/v2":
					sig, ok := fn.Type().(*types.Signature)
					if !ok || sig.Recv() != nil {
						return true // method on an explicitly seeded *rand.Rand
					}
					if !seededRandCtor[name] {
						pass.Reportf(sel.Pos(),
							"draw from an explicitly seeded rand.New(rand.NewPCG(seed, ...)) instead",
							"global-source rand.%s is unseeded and run-dependent", name)
					}
				}
				return true
			})
		}
	},
}
