package lint

import (
	"strings"
	"testing"
)

// Suppression-directive hygiene for the five interprocedural checks:
// for each, a well-formed //opmlint:allow must actually silence a real
// violation, while a malformed directive (no reason), one naming an
// unknown check, and one suppressing nothing must each surface as
// synthetic "opmlint" findings — the same contract the PR-5 checks
// honor. Each case is a scratch module under internal/ (goroleak only
// applies there) holding one violation of its check and the three bad
// directives.
func TestDirectiveHygieneInterprocChecks(t *testing.T) {
	cases := map[string]string{
		"ctxflow": `package p

import "context"

func root() context.Context {
	return context.Background() //opmlint:allow ctxflow — scratch: sanctioned root
}

//opmlint:allow ctxflow
var malformed = 1

//opmlint:allow nosuchcheck — scratch reason
var unknown = 2

//opmlint:allow ctxflow — suppresses nothing
var unused = 3
`,
		"goroleak": `package p

func spin() {
	//opmlint:allow goroleak — scratch: process-lifetime monitor
	go func() {
		for {
		}
	}()
}

//opmlint:allow goroleak
var malformed = 1

//opmlint:allow nosuchcheck — scratch reason
var unknown = 2

//opmlint:allow goroleak — suppresses nothing
var unused = 3
`,
		"lockscope": `package p

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) publish(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- v //opmlint:allow lockscope — scratch: the mutex is the serialization point
}

//opmlint:allow lockscope
var malformed = 1

//opmlint:allow nosuchcheck — scratch reason
var unknown = 2

//opmlint:allow lockscope — suppresses nothing
var unused = 3
`,
		"digestpure": `package p

// digest is this scratch module's root.
//
// opmlint:digest-root
func digest(parts map[string]int) int {
	sum := 0
	//opmlint:allow digestpure — scratch: order-independent sum
	for _, v := range parts {
		sum += v
	}
	return sum
}

//opmlint:allow digestpure
var malformed = 1

//opmlint:allow nosuchcheck — scratch reason
var unknown = 2

//opmlint:allow digestpure — suppresses nothing
var unused = 3
`,
		"atomicmix": `package p

import "sync/atomic"

type stats struct {
	n int64
}

func (s *stats) inc() {
	atomic.AddInt64(&s.n, 1)
}

func (s *stats) total() int64 {
	return s.n //opmlint:allow atomicmix — scratch: single-threaded join phase
}

//opmlint:allow atomicmix
var malformed = 1

//opmlint:allow nosuchcheck — scratch reason
var unknown = 2

//opmlint:allow atomicmix — suppresses nothing
var unused = 3
`,
	}
	for check, src := range cases {
		t.Run(check, func(t *testing.T) {
			dir := scratchModule(t, map[string]string{"internal/p/p.go": src})
			findings, err := Run(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var gotMalformed, gotUnknown, gotUnused bool
			for _, f := range findings {
				if f.Check == check {
					t.Errorf("well-formed directive failed to suppress the %s violation: %s:%d %s",
						check, f.File, f.Line, f.Msg)
					continue
				}
				if f.Check != "opmlint" {
					t.Errorf("unexpected check %q fired: %s:%d %s", f.Check, f.File, f.Line, f.Msg)
					continue
				}
				switch {
				case strings.Contains(f.Msg, "missing reason"):
					gotMalformed = true
				case strings.Contains(f.Msg, `unknown check "nosuchcheck"`):
					gotUnknown = true
				case strings.Contains(f.Msg, "unused //opmlint:allow "+check):
					gotUnused = true
				default:
					t.Errorf("unclassified opmlint finding: %s", f.Msg)
				}
			}
			if !gotMalformed {
				t.Errorf("%s: malformed (reason-less) directive was not reported", check)
			}
			if !gotUnknown {
				t.Errorf("%s: unknown-check directive was not reported", check)
			}
			if !gotUnused {
				t.Errorf("%s: unused directive was not reported", check)
			}
		})
	}
}
