package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixturePkgs maps each check to its fixture package under testdata.
var fixturePkgs = map[string]string{
	"determinism":  "internal/lint/testdata/determinism/determinism",
	"rangesort":    "internal/lint/testdata/rangesort/rangesort",
	"mustpath":     "internal/lint/testdata/mustpath/mustpath",
	"counternames": "internal/lint/testdata/counternames/counternames",
	"errdiscard":   "internal/lint/testdata/errdiscard/store",
	"ctxflow":      "internal/lint/testdata/ctxflow/ctxflow",
	"goroleak":     "internal/lint/testdata/goroleak/goroleak",
	"lockscope":    "internal/lint/testdata/lockscope/lockscope",
	"digestpure":   "internal/lint/testdata/digestpure/digestpure",
	"atomicmix":    "internal/lint/testdata/atomicmix/atomicmix",
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, _, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestFixturesMatchGolden runs every check over its fixture package
// and compares the rendered findings against the committed golden
// file. Each fixture holds one violating file, one clean file and one
// suppressed file; only bad.go may appear in the golden.
func TestFixturesMatchGolden(t *testing.T) {
	root := repoRoot(t)
	for check, pkg := range fixturePkgs {
		t.Run(check, func(t *testing.T) {
			findings, err := Run(root, Options{Patterns: []string{pkg}})
			if err != nil {
				t.Fatal(err)
			}
			if len(findings) == 0 {
				t.Fatalf("expected findings in %s, got none", pkg)
			}
			for _, f := range findings {
				if f.Check != check {
					t.Errorf("unexpected check %q fired in %s fixture: %s:%d %s", f.Check, check, f.File, f.Line, f.Msg)
				}
				if filepath.Base(f.File) != "bad.go" {
					t.Errorf("finding outside bad.go: %s:%d [%s] %s", f.File, f.Line, f.Check, f.Msg)
				}
			}
			got := FormatText(findings)
			goldenPath := filepath.Join(root, "internal/lint/testdata", check, "expected.txt")
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("findings differ from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestSelfCheck is the gate behind scripts/check.sh: opmlint over the
// repo itself must report nothing — every legitimate exception
// carries an auditable //opmlint:allow annotation.
func TestSelfCheck(t *testing.T) {
	findings, err := Run(repoRoot(t), Options{Patterns: []string{"./..."}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("opmlint ./... on this repo must be clean, got %d findings:\n%s",
			len(findings), FormatText(findings))
	}
}

// TestCheckFilter exercises -checks: only the named check runs.
func TestCheckFilter(t *testing.T) {
	root := repoRoot(t)
	checks, err := CheckByName("determinism")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root, Options{
		Patterns: []string{fixturePkgs["errdiscard"]},
		Checks:   checks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("determinism check should not fire on the errdiscard fixture:\n%s", FormatText(findings))
	}
	if _, err := CheckByName("nosuchcheck"); err == nil {
		t.Error("CheckByName accepted an unknown check")
	}
}

// scratchModule writes a throwaway module so directive edge cases can
// be exercised without polluting the repo's own tree.
func scratchModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.22\n"
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestDirectiveScopes covers the three suppression placements: same
// line, line above, and enclosing declaration's doc comment.
func TestDirectiveScopes(t *testing.T) {
	dir := scratchModule(t, map[string]string{
		"clock/clock.go": `package clock

import "time"

// SameLine suppresses on the offending line.
func SameLine() int64 {
	return time.Now().UnixNano() //opmlint:allow determinism — test: same-line scope
}

// LineAbove suppresses from the line directly above.
func LineAbove() int64 {
	//opmlint:allow determinism — test: line-above scope
	return time.Now().UnixNano()
}

// DocScope suppresses everything in the declaration.
//
//opmlint:allow determinism — test: declaration-doc scope
func DocScope() int64 {
	a := time.Now().UnixNano()
	b := time.Now().UnixNano()
	return a + b
}
`,
	})
	findings, err := Run(dir, Options{Patterns: []string{"./..."}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("all clock reads are annotated, yet got:\n%s", FormatText(findings))
	}
}

// TestDirectiveAudit: malformed, unknown-check and unused directives
// are themselves findings, so a stale annotation cannot quietly
// disable a rule.
func TestDirectiveAudit(t *testing.T) {
	dir := scratchModule(t, map[string]string{
		"clock/clock.go": `package clock

import "time"

// NoReason has a directive without a reason: malformed.
func NoReason() int64 {
	return time.Now().UnixNano() //opmlint:allow determinism
}

// UnknownCheck names a check that does not exist.
func UnknownCheck() int64 {
	return time.Now().UnixNano() //opmlint:allow nosuchcheck — not a check
}

// Unused suppresses nothing.
func Unused() int {
	//opmlint:allow determinism — nothing to suppress here
	return 42
}
`,
	})
	findings, err := Run(dir, Options{Patterns: []string{"./..."}})
	if err != nil {
		t.Fatal(err)
	}
	var wantSubstrings = []string{
		"missing reason",                // NoReason directive
		"unknown check \"nosuchcheck\"", // UnknownCheck directive
		"unused //opmlint:allow",        // Unused directive
		"wall-clock read time.Now",      // NoReason's finding survives (×2 with UnknownCheck's)
	}
	text := FormatText(findings)
	for _, want := range wantSubstrings {
		if !strings.Contains(text, want) {
			t.Errorf("findings missing %q:\n%s", want, text)
		}
	}
	// The two malformed directives must not suppress their lines.
	clockReads := strings.Count(text, "wall-clock read time.Now")
	if clockReads != 2 {
		t.Errorf("want 2 surviving clock findings, got %d:\n%s", clockReads, text)
	}
}

// TestJSONDeterministic: the -json rendering is stable and always an
// array, for scripts/lint-diff.sh baselines.
func TestJSONDeterministic(t *testing.T) {
	root := repoRoot(t)
	var outs [2]string
	for i := range outs {
		findings, err := Run(root, Options{Patterns: []string{fixturePkgs["rangesort"]}})
		if err != nil {
			t.Fatal(err)
		}
		s, err := FormatJSON(findings)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = s
	}
	if outs[0] != outs[1] {
		t.Errorf("JSON output differs between identical runs:\n%s\nvs\n%s", outs[0], outs[1])
	}
	empty, err := FormatJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(empty) != "[]" {
		t.Errorf("empty findings must render as [], got %q", empty)
	}
}
