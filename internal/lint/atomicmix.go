package lint

// atomicmix: a field or variable accessed through sync/atomic anywhere
// must be accessed through sync/atomic everywhere. A plain read beside
// an atomic.AddInt64 is a data race the race detector only catches if
// a test happens to interleave it; the linter catches it on every
// build. The index of atomically-accessed objects is module-wide, so
// an atomic update in one package and a plain read in another still
// collide. The repo's own counters use the typed atomic.Int64 family,
// which is immune by construction — this check guards the addressed
// (&x) style against creeping in half-converted.

import (
	"go/ast"
)

var atomicmixCheck = &Check{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic are never accessed plainly elsewhere",
	Run: func(pass *Pass) {
		a := pass.World.interproc()
		if len(a.atomicObjs) == 0 {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Pkg.Info.Uses[id]
				if obj == nil {
					return true
				}
				atomicAt, indexed := a.atomicObjs[obj]
				if !indexed || a.inAtomicSpan(id.Pos()) {
					return true
				}
				pass.Reportf(id.Pos(),
					"use sync/atomic for every access, or drop atomics and guard with one mutex; annotate only provably single-threaded phases: //opmlint:allow atomicmix — <why>",
					"%s is accessed with sync/atomic (%s) but plainly here", id.Name, pass.World.relPos(atomicAt[0]))
				return true
			})
		}
	},
}
