package lint

// directives.go implements the audit trail for exceptions: the
// //opmlint:allow directive. A directive names the check(s) it
// silences and must carry a reason; it suppresses findings on its own
// line, on the line directly below it, or — when it sits in a
// declaration's doc comment — anywhere inside that declaration.
// Directives that are malformed, name an unknown check, or suppress
// nothing are reported as findings of the synthetic "opmlint" check,
// so a stale annotation cannot quietly disable a rule.

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

const allowPrefix = "//opmlint:allow"

// directive is one parsed //opmlint:allow comment.
type directive struct {
	file   string
	line   int
	checks map[string]bool
	reason string
	// [startLine, endLine] is the window of suppressed finding lines.
	startLine, endLine int
	used               bool
	// malformed, when non-empty, turns the directive into a finding.
	malformed string
}

// collectDirectives parses every //opmlint:allow comment in p.
func collectDirectives(w *World, p *Package) []*directive {
	known := map[string]bool{}
	for _, c := range AllChecks() {
		known[c.Name] = true
	}
	var out []*directive
	for _, f := range p.Files {
		// Doc-comment groups map to the whole declaration they document.
		docRange := map[*ast.CommentGroup][2]int{}
		for _, decl := range f.AST.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docRange[doc] = [2]int{
					w.Fset.Position(decl.Pos()).Line,
					w.Fset.Position(decl.End()).Line,
				}
			}
		}
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				line := w.Fset.Position(c.Pos()).Line
				d := parseDirective(c.Text, known)
				d.file, d.line = f.Rel, line
				if r, ok := docRange[cg]; ok {
					d.startLine, d.endLine = r[0], r[1]
				} else {
					d.startLine, d.endLine = line, line+1
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// parseDirective parses "//opmlint:allow <check>[,<check>] — <reason>".
// The reason separator is an em dash or "--".
func parseDirective(text string, known map[string]bool) *directive {
	d := &directive{checks: map[string]bool{}}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		d.malformed = "missing check name"
		return d
	}
	var checksPart string
	switch {
	case strings.Contains(rest, "—"):
		parts := strings.SplitN(rest, "—", 2)
		checksPart, d.reason = parts[0], strings.TrimSpace(parts[1])
	case strings.Contains(rest, "--"):
		parts := strings.SplitN(rest, "--", 2)
		checksPart, d.reason = parts[0], strings.TrimSpace(parts[1])
	default:
		d.malformed = "missing reason (want: //opmlint:allow <check> — <reason>)"
		return d
	}
	if d.reason == "" {
		d.malformed = "empty reason (want: //opmlint:allow <check> — <reason>)"
		return d
	}
	names := strings.Split(strings.TrimSpace(checksPart), ",")
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			d.malformed = "missing check name"
			return d
		}
		if !known[n] {
			d.malformed = fmt.Sprintf("unknown check %q", n)
			return d
		}
		d.checks[n] = true
	}
	return d
}

// applyDirectives filters one package's findings through its
// directives and appends the directives' own findings (malformed or
// unused annotations). enabled is the set of check names that
// actually ran: a directive is only auditable as "unused" when every
// check it names had the chance to fire.
func applyDirectives(dirs []*directive, findings []Finding, enabled map[string]bool) []Finding {
	var out []Finding
	for _, f := range findings {
		suppressed := false
		for _, d := range dirs {
			if d.malformed != "" || !d.checks[f.Check] || d.file != f.File {
				continue
			}
			if f.Line >= d.startLine && f.Line <= d.endLine {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, d := range dirs {
		switch {
		case d.malformed != "":
			out = append(out, Finding{
				File: d.file, Line: d.line, Col: 1, Check: "opmlint",
				Msg:  "malformed //opmlint:allow directive: " + d.malformed,
				Hint: "format: //opmlint:allow <check>[,<check>] — <reason>",
			})
		case !d.used:
			names := make([]string, 0, len(d.checks))
			allRan := true
			for n := range d.checks {
				names = append(names, n)
				if !enabled[n] {
					allRan = false
				}
			}
			if !allRan {
				continue
			}
			sort.Strings(names)
			out = append(out, Finding{
				File: d.file, Line: d.line, Col: 1, Check: "opmlint",
				Msg:  fmt.Sprintf("unused //opmlint:allow %s directive (suppresses nothing)", strings.Join(names, ",")),
				Hint: "delete the annotation or move it onto the offending line",
			})
		}
	}
	return out
}
