package lint

// cfg.go is the lightweight per-function control-flow walk behind
// lockscope: a symbolic execution of each function body that tracks
// the set of held sync.Mutex/RWMutex keys statement by statement.
// Branch bodies run on a copy of the held set and the walk resumes
// with the pre-branch state (the early-unlock-and-return idiom stays
// clean; a lock taken inside one branch arm never leaks out). A
// deferred Unlock leaves the lock held to function exit, which is the
// point: everything after `mu.Lock(); defer mu.Unlock()` runs under
// the lock and is checked as such. Function literals execute on their
// own schedule and are analyzed separately with an empty held set.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

const (
	lockAcquire = iota
	lockRelease
)

// lockWalker tracks held mutexes through one function body.
type lockWalker struct {
	pass *Pass
	a    *ipa
	held map[string]token.Pos
	lits []*ast.FuncLit
}

func (lw *lockWalker) heldAny() bool { return len(lw.held) > 0 }

func (lw *lockWalker) heldDesc() string {
	keys := make([]string, 0, len(lw.held))
	for k := range lw.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func (lw *lockWalker) snapshot() map[string]token.Pos {
	c := make(map[string]token.Pos, len(lw.held))
	for k, v := range lw.held {
		c[k] = v
	}
	return c
}

func (lw *lockWalker) restore(s map[string]token.Pos) {
	lw.held = make(map[string]token.Pos, len(s))
	for k, v := range s {
		lw.held[k] = v
	}
}

func (lw *lockWalker) report(pos token.Pos, what string) {
	lw.pass.Reportf(pos,
		"release the lock before blocking (copy under lock, act after), or annotate: //opmlint:allow lockscope — <why>",
		"%s while %s is held", what, lw.heldDesc())
}

func (lw *lockWalker) chanOp(pos token.Pos, what string) {
	if lw.heldAny() {
		lw.report(pos, what)
	}
}

func (lw *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			lw.stmt(st)
		}
	case *ast.ExprStmt:
		lw.expr(s.X, false)
	case *ast.SendStmt:
		lw.chanOp(s.Arrow, "sends on a channel")
		lw.expr(s.Chan, false)
		lw.expr(s.Value, false)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			lw.expr(r, false)
		}
		for _, l := range s.Lhs {
			lw.expr(l, false)
		}
	case *ast.DeferStmt:
		// Arguments evaluate now; the call itself runs at exit. A
		// deferred Unlock keeps the lock held through the body — that
		// is exactly the window being checked — so it must not clear
		// the held set here.
		if _, op, isLock := lockOp(lw.pass.Pkg.Info, s.Call); !isLock || op != lockRelease {
			for _, a := range s.Call.Args {
				lw.expr(a, false)
			}
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			lw.expr(a, false)
		}
		if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			lw.lits = append(lw.lits, lit)
		}
	case *ast.IfStmt:
		lw.stmt(s.Init)
		lw.expr(s.Cond, false)
		saved := lw.snapshot()
		lw.stmt(s.Body)
		lw.restore(saved)
		lw.stmt(s.Else)
		lw.restore(saved)
	case *ast.ForStmt:
		lw.stmt(s.Init)
		lw.expr(s.Cond, false)
		saved := lw.snapshot()
		lw.stmt(s.Body)
		lw.stmt(s.Post)
		lw.restore(saved)
	case *ast.RangeStmt:
		lw.expr(s.X, false)
		saved := lw.snapshot()
		lw.stmt(s.Body)
		lw.restore(saved)
	case *ast.SwitchStmt:
		lw.stmt(s.Init)
		lw.expr(s.Tag, false)
		lw.caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		lw.stmt(s.Init)
		lw.stmt(s.Assign)
		lw.caseBodies(s.Body)
	case *ast.SelectStmt:
		if lw.heldAny() && !selectHasDefault(s) {
			lw.report(s.Select, "waits in a select")
		}
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			saved := lw.snapshot()
			lw.commStmt(cc.Comm)
			for _, st := range cc.Body {
				lw.stmt(st)
			}
			lw.restore(saved)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			lw.expr(r, false)
		}
	case *ast.LabeledStmt:
		lw.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lw.expr(v, false)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		lw.expr(s.X, false)
	}
}

// caseBodies walks switch case clauses, each on a copy of held.
func (lw *lockWalker) caseBodies(body *ast.BlockStmt) {
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			lw.expr(e, false)
		}
		saved := lw.snapshot()
		for _, st := range cc.Body {
			lw.stmt(st)
		}
		lw.restore(saved)
	}
}

// commStmt walks a select communication clause; its top-level channel
// operation is the select's wait, already reported once.
func (lw *lockWalker) commStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.SendStmt:
		lw.expr(s.Chan, false)
		lw.expr(s.Value, false)
	case *ast.ExprStmt:
		lw.expr(s.X, true)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			lw.expr(r, true)
		}
		for _, l := range s.Lhs {
			lw.expr(l, false)
		}
	}
}

func (lw *lockWalker) expr(e ast.Expr, noChan bool) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		lw.call(e)
		return
	case *ast.UnaryExpr:
		if e.Op == token.ARROW && !noChan {
			lw.chanOp(e.OpPos, "receives from a channel")
		}
		lw.expr(e.X, false)
		return
	case *ast.FuncLit:
		lw.lits = append(lw.lits, e)
		return
	}
	for _, c := range directChildren(e) {
		switch c := c.(type) {
		case ast.Expr:
			lw.expr(c, false)
		case ast.Stmt:
			lw.stmt(c)
		}
	}
}

func (lw *lockWalker) call(call *ast.CallExpr) {
	info := lw.pass.Pkg.Info
	callee := staticCallee(info, call)
	if callee == nil {
		lw.expr(call.Fun, false)
		for _, a := range call.Args {
			lw.expr(a, false)
		}
		return
	}
	if key, op, isLock := lockOp(info, call); isLock {
		switch op {
		case lockAcquire:
			lw.held[key] = call.Pos()
		case lockRelease:
			delete(lw.held, key)
		}
		return
	}
	if lw.heldAny() {
		if _, isModule := lw.a.funcs[callee]; isModule {
			if _, blocking := lw.a.blockLock[callee]; blocking {
				lw.report(call.Pos(), "calls "+shortFuncName(callee)+", which "+lw.a.blockWhy(lw.a.blockLock, callee))
			}
		} else if why, kind := extBlocking(callee); why != "" && kind&seedLock != 0 {
			lw.report(call.Pos(), "calls "+shortFuncName(callee)+", which "+why)
		}
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		lw.expr(sel.X, false)
	}
	for _, a := range call.Args {
		lw.expr(a, false)
	}
}

// lockOp classifies a call as a mutex acquire/release and derives the
// lock's identity key from the receiver expression.
func lockOp(info *types.Info, call *ast.CallExpr) (key string, op int, ok bool) {
	callee := staticCallee(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return "", 0, false
	}
	if r := recvTypeName(callee); r != "Mutex" && r != "RWMutex" {
		return "", 0, false
	}
	switch callee.Name() {
	case "Lock", "RLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return "", 0, false
	}
	key = "a lock"
	if sel, isSel := unparen(call.Fun).(*ast.SelectorExpr); isSel {
		key = exprKey(sel.X)
	}
	return key, op, true
}

// exprKey renders a stable identity for a lock receiver expression.
func exprKey(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.IndexExpr:
		return exprKey(e.X) + "[]"
	case *ast.CallExpr:
		return exprKey(e.Fun) + "()"
	}
	return "?"
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
