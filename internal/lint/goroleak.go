package lint

// goroleak: every goroutine spawned in internal/ must have a provable
// bounded exit. A leaked goroutine is invisible until a drain hangs or
// a test binary never exits — the serve refinement workers and the
// shard heartbeat are the motivating cases. Accepted proofs, checked
// on the spawned body (a function literal or a resolved module
// function):
//
//   - no unbounded loop at all (the body runs to its return);
//   - every unconditional for-loop returns or breaks somewhere (the
//     usual shape: for { select { case <-ctx.Done(): return … } });
//   - a for-range over a channel some close() in the same package can
//     reach (worker pools draining a closed queue);
//   - the spawn is WaitGroup-covered: the spawner Adds, the body
//     Dones, and the package Waits — the spawner provably joins it.
//
// Bodies that are not module functions (e.g. go srv.Serve(ln)) cannot
// be proven and must carry an //opmlint:allow goroleak — <why>.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var goroleakCheck = &Check{
	Name: "goroleak",
	Doc:  "every go statement in internal/ has a provable bounded exit",
	Applies: func(w *World, p *Package) bool {
		return firstPathSegment(w, p) == "internal"
	},
	Run: func(pass *Pass) {
		a := pass.World.interproc()
		closedElems := map[*Package][]types.Type{}
		for _, f := range a.order {
			if f.pkg != pass.Pkg {
				continue
			}
			spawner := f
			ast.Inspect(f.decl.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, a, spawner, g, closedElems)
				return true
			})
		}
	},
}

func checkGoStmt(pass *Pass, a *ipa, spawner *ipaFunc, g *ast.GoStmt, closedElems map[*Package][]types.Type) {
	var body *ast.BlockStmt
	bodyPkg := pass.Pkg
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if callee := staticCallee(pass.Pkg.Info, g.Call); callee != nil {
		cf, ok := a.funcs[callee]
		if !ok {
			pass.Reportf(g.Pos(),
				"a goroutine running foreign code cannot be proven to exit; annotate: //opmlint:allow goroleak — <why>",
				"goroutine body %s is not a module function; bounded exit cannot be proven", shortFuncName(callee))
			return
		}
		body, bodyPkg = cf.decl.Body, cf.pkg
	} else {
		pass.Reportf(g.Pos(),
			"a dynamic goroutine body cannot be proven to exit; annotate: //opmlint:allow goroleak — <why>",
			"goroutine body is a dynamic function value; bounded exit cannot be proven")
		return
	}

	if wgCovered(pass.Pkg.Info, spawner.decl, body, bodyPkg) {
		return
	}
	detail := unboundedLoop(bodyPkg, body, closedElems)
	if detail == "" {
		return
	}
	pass.Reportf(g.Pos(),
		"exit on <-ctx.Done() or a closed channel, cover the spawn with a WaitGroup the spawner waits on, or annotate: //opmlint:allow goroleak — <why>",
		"goroutine has no provable bounded exit: %s", detail)
}

// unboundedLoop scans body (nested function literals excluded) for a
// loop with no provable exit and describes the first one found.
func unboundedLoop(pkg *Package, body *ast.BlockStmt, closedElems map[*Package][]types.Type) string {
	bad := ""
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || bad != "" {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ForStmt:
			if n.Cond == nil && !loopHasExit(n.Body) {
				bad = "unconditional for-loop never returns or breaks"
				return
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if ch, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if !loopHasExit(n.Body) && !chanClosedInPkg(pkg, ch.Elem(), closedElems) {
						bad = "ranges over a channel that no close() in its package can reach"
						return
					}
				}
			}
		}
		for _, c := range directChildren(n) {
			walk(c)
		}
	}
	walk(body)
	return bad
}

// loopHasExit reports whether a loop body contains a return, or a
// break that targets this loop (unlabeled at loop depth, or any
// labeled break). Nested function literals are skipped.
func loopHasExit(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node, breakable bool)
	walk = func(n ast.Node, breakable bool) {
		if n == nil || found {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			found = true
			return
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && (breakable || n.Label != nil) {
				found = true
			}
			return
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// An unlabeled break inside these targets them, not our loop.
			for _, c := range directChildren(n) {
				walk(c, false)
			}
			return
		}
		for _, c := range directChildren(n) {
			walk(c, breakable)
		}
	}
	walk(body, true)
	return found
}

// chanClosedInPkg reports whether pkg contains close(ch) on a channel
// whose element type matches elem — the drain signal a for-range over
// a channel exits on.
func chanClosedInPkg(pkg *Package, elem types.Type, closedElems map[*Package][]types.Type) bool {
	elems, ok := closedElems[pkg]
	if !ok {
		for _, f := range pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall || len(call.Args) != 1 {
					return true
				}
				id, isIdent := unparen(call.Fun).(*ast.Ident)
				if !isIdent {
					return true
				}
				if b, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "close" {
					return true
				}
				if tv, okT := pkg.Info.Types[call.Args[0]]; okT {
					if ch, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						elems = append(elems, ch.Elem())
					}
				}
				return true
			})
		}
		closedElems[pkg] = elems
	}
	for _, e := range elems {
		if types.Identical(e, elem) {
			return true
		}
	}
	return false
}

// wgCovered reports the WaitGroup proof: the spawner Adds, the body
// Dones, and the body's package Waits.
func wgCovered(info *types.Info, spawnerDecl *ast.FuncDecl, body *ast.BlockStmt, bodyPkg *Package) bool {
	if !hasWGCall(info, spawnerDecl, "Add") || !hasWGCall(bodyPkg.Info, body, "Done") {
		return false
	}
	for _, f := range bodyPkg.Files {
		if hasWGCall(bodyPkg.Info, f.AST, "Wait") {
			return true
		}
	}
	return false
}

func hasWGCall(info *types.Info, root ast.Node, name string) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(info, call)
		if fn != nil && fn.Name() == name && recvTypeName(fn) == "WaitGroup" &&
			fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			found = true
		}
		return true
	})
	return found
}
