package lint

// errdiscard: the store, faultinject, serve and shard packages may
// never drop an error on the floor. The journal is the single source
// of truth for cached results — a swallowed write or fsync error there
// turns "crash-safe checkpoint" into silent data loss, the fault
// injector's whole job is to prove errors propagate, the serving
// daemon sits on the journal's write path (a dropped commit error
// would quietly un-persist an answered query), and the shard merge
// rewrites journals wholesale (a swallowed error there loses a whole
// shard's results, not one record). Flagged forms:
// a call statement whose (last) result is an error, and a blank `_`
// assignment of an error-typed value. Exempt by contract: writes to
// strings.Builder, bytes.Buffer and hash.Hash* (defined to never
// fail) and `defer f.Close()` on read paths (the deferred-close
// idiom). Everything else either handles the error or carries an
// //opmlint:allow errdiscard annotation saying why losing it is safe.

import (
	"go/ast"
	"go/types"
	"strings"
)

var errdiscardCheck = &Check{
	Name: "errdiscard",
	Doc:  "no discarded errors in store/faultinject/serve/shard (journal write paths)",
	Applies: func(w *World, p *Package) bool {
		for _, seg := range strings.Split(p.ImportPath, "/") {
			if seg == "store" || seg == "faultinject" || seg == "serve" || seg == "shard" {
				return true
			}
		}
		return false
	},
	Run: func(pass *Pass) {
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.ExprStmt:
					call, ok := s.X.(*ast.CallExpr)
					if !ok || !callReturnsError(info, call) || neverFails(info, call) {
						return true
					}
					pass.Reportf(s.Pos(),
						"handle or return the error, or annotate: //opmlint:allow errdiscard — <why losing it is safe>",
						"call discards its error result")
				case *ast.AssignStmt:
					checkBlankErrAssign(pass, s)
				}
				return true
			})
		}
	},
}

// checkBlankErrAssign flags `_` receiving an error-typed value.
func checkBlankErrAssign(pass *Pass, s *ast.AssignStmt) {
	info := pass.Pkg.Info
	report := func(pos ast.Node) {
		pass.Reportf(pos.Pos(),
			"name the error and handle it, or annotate: //opmlint:allow errdiscard — <why losing it is safe>",
			"error discarded into blank identifier")
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok || neverFails(info, call) {
			return
		}
		tuple, ok := info.Types[call].Type.(*types.Tuple)
		if !ok || tuple.Len() != len(s.Lhs) {
			return
		}
		for i, lhs := range s.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				report(s)
				return
			}
		}
		return
	}
	if len(s.Rhs) != len(s.Lhs) {
		return
	}
	for i, lhs := range s.Lhs {
		if !isBlank(lhs) {
			continue
		}
		t := info.Types[s.Rhs[i]].Type
		if t == nil || !isErrorType(t) {
			continue
		}
		if call, ok := s.Rhs[i].(*ast.CallExpr); ok && neverFails(info, call) {
			continue
		}
		report(s)
		return
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// callReturnsError reports whether any result of call is an error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.Types[call].Type
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// neverFailTypes are receivers whose Write-family methods are defined
// to never return a non-nil error.
var neverFailTypes = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"hash.Hash":       true,
	"hash.Hash32":     true,
	"hash.Hash64":     true,
}

// neverFails reports whether call only writes to a by-contract
// infallible writer: a method on strings.Builder, bytes.Buffer or
// hash.Hash*, or a fmt.Fprint*/io.WriteString whose destination is
// one of those.
func neverFails(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			viaFmt := fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") ||
				fn.Pkg().Path() == "io" && fn.Name() == "WriteString"
			return viaFmt && len(call.Args) > 0 && isNeverFailType(info.Types[call.Args[0]].Type)
		}
	}
	return isNeverFailType(info.Types[sel.X].Type)
}

func isNeverFailType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return neverFailTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}
