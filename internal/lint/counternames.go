package lint

// counternames: every obs instrument name must be a compile-time
// string constant matching [a-z0-9_/]+. The chaos gate in
// scripts/check.sh greps for literal counter names (store/torn_writes,
// store/write_repairs), dashboards key on exact strings, and the
// README documents the full instrument namespace — a dynamically
// assembled name can silently escape all three. Constant folding is
// honored: "store/" + suffixConst is fine as long as the result is a
// compile-time constant; names built from variables are findings and
// need an //opmlint:allow annotation naming the closed set the parts
// come from.

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

var instrumentMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

var counterNameRE = regexp.MustCompile(`^[a-z0-9_/]+$`)

var counternamesCheck = &Check{
	Name: "counternames",
	Doc:  "obs instrument names are grep-able constants matching [a-z0-9_/]+",
	Run: func(pass *Pass) {
		info := pass.Pkg.Info
		obsPath := pass.World.Module + "/internal/obs"
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) < 1 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath || !instrumentMethods[fn.Name()] {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() == nil {
					return true
				}
				tv := info.Types[call.Args[0]]
				if tv.Value == nil || tv.Value.Kind() != constant.String {
					pass.Reportf(call.Args[0].Pos(),
						"use a literal (or constant-folded) name, or annotate the closed set it comes from: //opmlint:allow counternames — <why>",
						"dynamically built %s name cannot be found by grep or dashboards", fn.Name())
					return true
				}
				if name := constant.StringVal(tv.Value); !counterNameRE.MatchString(name) {
					pass.Reportf(call.Args[0].Pos(),
						"instrument names use lower-case slash-separated words: [a-z0-9_/]+",
						"%s name %q does not match [a-z0-9_/]+", fn.Name(), name)
				}
				return true
			})
		}
	},
}
