package lint

// counternames: every obs instrument, span, and trace-event name must
// be a compile-time string constant matching [a-z0-9_/]+. The chaos
// gate in scripts/check.sh greps for literal counter names
// (store/torn_writes, store/write_repairs), dashboards key on exact
// strings, opmprof's phase attribution switches on the Ev* trace-event
// constants, and the README documents the full instrument namespace —
// a dynamically assembled name can silently escape all four. Constant
// folding is honored: "store/" + suffixConst is fine as long as the
// result is a compile-time constant; names built from variables are
// findings and need an //opmlint:allow annotation naming the closed
// set the parts come from.

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// instrumentMethods maps each checked obs function to the index of its
// name argument: registry instruments and spans take the name first;
// the tracer's Emit and the context helpers TraceEvent/TraceEventDur
// take it after the trace ID / context.
var instrumentMethods = map[string]int{
	"Counter":       0,
	"Gauge":         0,
	"Histogram":     0,
	"StartSpan":     0,
	"Child":         0,
	"Emit":          1,
	"TraceEvent":    1,
	"TraceEventDur": 1,
}

var counterNameRE = regexp.MustCompile(`^[a-z0-9_/]+$`)

var counternamesCheck = &Check{
	Name: "counternames",
	Doc:  "obs instrument, span and trace-event names are grep-able constants matching [a-z0-9_/]+",
	Run: func(pass *Pass) {
		info := pass.Pkg.Info
		obsPath := pass.World.Module + "/internal/obs"
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
					return true
				}
				argIdx, checked := instrumentMethods[fn.Name()]
				if !checked || len(call.Args) <= argIdx {
					return true
				}
				arg := call.Args[argIdx]
				tv := info.Types[arg]
				if tv.Value == nil || tv.Value.Kind() != constant.String {
					pass.Reportf(arg.Pos(),
						"use a literal (or constant-folded) name, or annotate the closed set it comes from: //opmlint:allow counternames — <why>",
						"dynamically built %s name cannot be found by grep or dashboards", fn.Name())
					return true
				}
				if name := constant.StringVal(tv.Value); !counterNameRE.MatchString(name) {
					pass.Reportf(arg.Pos(),
						"instrument names use lower-case slash-separated words: [a-z0-9_/]+",
						"%s name %q does not match [a-z0-9_/]+", fn.Name(), name)
				}
				return true
			})
		}
	},
}
