// Package lint is opmlint's analysis engine: a standard-library-only
// static-analysis pass that mechanizes the repo's runtime contracts.
// Every published figure rests on properties that used to be enforced
// by convention — simulations are bit-deterministic, report bytes
// never leak map-iteration order, telemetry names are grep-able
// literals, and the store's journal never swallows an error. Each
// property has a check here, so a regression is a failed build
// instead of a flaky chaos suite three PRs later.
//
// Checks (see their files for the precise rules):
//
//	determinism   no wall-clock reads or global-source math/rand in
//	              library code — clock use is the obs layer's
//	              privilege, and every exception is annotated
//	rangesort     no map iteration whose order can reach output: a
//	              returned slice, an io.Writer, or an inline map
//	              literal consumed in range order
//	mustpath      deprecated panicking Must* helpers are callable only
//	              from cmd/ and _test.go files
//	counternames  obs counter/gauge/histogram names are compile-time
//	              constants matching [a-z0-9_/]+
//	errdiscard    no discarded errors in the store, faultinject and
//	              serve packages (the journal's crash-safety layer
//	              and the daemon on its write path)
//
// Five more checks are interprocedural, built on a shared module-wide
// call graph (interface methods expanded over module implementations),
// blocking-classification fixpoints, digest-root reachability, and a
// per-function CFG (see callgraph.go and cfg.go):
//
//	ctxflow       functions accepting a context thread it into every
//	              blocking callee; context.Background()/TODO() banned
//	              outside cmd/ and tests
//	goroleak      every go statement in internal/ has a provable
//	              bounded exit (ctx.Done()/closed-channel select, a
//	              WaitGroup the spawner waits on, or a finite loop)
//	lockscope     no blocking operation (channel, file/journal I/O,
//	              HTTP, process wait) while a mutex is held
//	digestpure    everything reachable from the digest roots is free
//	              of clocks, unseeded rand and map iteration,
//	              transitively
//	atomicmix     fields accessed via sync/atomic are never accessed
//	              plainly elsewhere
//
// Suppression is explicit and auditable: a finding is silenced only by
// a //opmlint:allow <check> — <reason> comment on the offending line,
// the line above it, or in the enclosing declaration's doc comment.
// Directives without a reason, naming unknown checks, or suppressing
// nothing are themselves findings.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation, addressed by module-root-relative
// file path and position.
type Finding struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
	Hint  string `json:"hint,omitempty"`
}

// Check is one named rule over a type-checked package.
type Check struct {
	Name string
	Doc  string // one line: what the check guards
	// Applies filters packages; nil means every package.
	Applies func(w *World, p *Package) bool
	Run     func(pass *Pass)
}

// Pass is the per-(check, package) context handed to Check.Run.
type Pass struct {
	World *World
	Pkg   *Package
	Check *Check

	findings []Finding
}

// Reportf records a finding at pos.
func (pass *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	position := pass.World.Fset.Position(pos)
	rel := position.Filename
	if r, err := filepath.Rel(pass.World.Root, position.Filename); err == nil {
		rel = filepath.ToSlash(r)
	}
	pass.findings = append(pass.findings, Finding{
		File:  rel,
		Line:  position.Line,
		Col:   position.Column,
		Check: pass.Check.Name,
		Msg:   fmt.Sprintf(format, args...),
		Hint:  hint,
	})
}

// AllChecks returns every check in its canonical order.
func AllChecks() []*Check {
	return []*Check{
		determinismCheck,
		rangesortCheck,
		mustpathCheck,
		counternamesCheck,
		errdiscardCheck,
		ctxflowCheck,
		goroleakCheck,
		lockscopeCheck,
		digestpureCheck,
		atomicmixCheck,
	}
}

// CheckByName resolves a comma-separated check list ("" means all).
func CheckByName(names string) ([]*Check, error) {
	if names == "" {
		return AllChecks(), nil
	}
	byName := map[string]*Check{}
	for _, c := range AllChecks() {
		byName[c.Name] = c
	}
	var out []*Check
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// Options configures one Run.
type Options struct {
	// Patterns are package directories relative to the base directory
	// ("./..." walks the tree). Default: {"./..."}.
	Patterns []string
	// Checks to run. Default: AllChecks().
	Checks []*Check
	// BuildTags selects additionally-constrained files, like `go build
	// -tags`. The digestpure mutation suite loads the repo with
	// "opmlint_digest_mutation" to prove an injected clock is caught.
	BuildTags []string
	// NoCache forces a fresh parse+type-check instead of reusing the
	// process-wide world cache (benchmarks measure the cold path).
	NoCache bool
}

// Run loads the packages matched by opts.Patterns (relative to base),
// runs every check, applies //opmlint:allow suppressions, and returns
// the surviving findings sorted by file, line, column and check. A
// non-nil error means the tree could not be loaded or type-checked —
// findings are the normal way violations come back.
func Run(base string, opts Options) ([]Finding, error) {
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	checks := opts.Checks
	if len(checks) == 0 {
		checks = AllChecks()
	}
	var w *World
	var err error
	if opts.NoCache {
		w, err = LoadTags(base, patterns, opts.BuildTags)
	} else {
		w, err = loadCached(base, patterns, opts.BuildTags)
	}
	if err != nil {
		return nil, err
	}
	enabled := make(map[string]bool, len(checks))
	for _, c := range checks {
		enabled[c.Name] = true
	}
	var findings []Finding
	for _, p := range w.Requested() {
		dirs := collectDirectives(w, p)
		var pkgFindings []Finding
		for _, c := range checks {
			if c.Applies != nil && !c.Applies(w, p) {
				continue
			}
			pass := &Pass{World: w, Pkg: p, Check: c}
			c.Run(pass)
			pkgFindings = append(pkgFindings, pass.findings...)
		}
		findings = append(findings, applyDirectives(dirs, pkgFindings, enabled)...)
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// FormatText renders findings one per line for humans (and for the
// golden files under testdata).
func FormatText(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Msg)
		if f.Hint != "" {
			fmt.Fprintf(&b, " (%s)", f.Hint)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatJSON renders findings as a deterministic JSON array (always
// an array, never null) for scripts/lint-diff.sh and other tooling.
func FormatJSON(fs []Finding) (string, error) {
	if fs == nil {
		fs = []Finding{}
	}
	data, err := json.MarshalIndent(fs, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data) + "\n", nil
}
