package lint

// mustpath: the repo's panicking Must* helpers (MustNewSim,
// MustEvaluate, MustMachine, MustModel, ...) are deprecated shims
// kept for examples and tests. Library and harness code must use the
// error-returning variants so a bad configuration degrades into a
// JobError or a partial report instead of killing a whole sweep —
// that is the resilience layer's contract. The check flags any call
// to a module-internal Must* function from a non-main package;
// cmd/ and examples (package main) and _test.go files (never linted)
// stay free to use them. A Must* helper may delegate to another
// Must* helper.

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"
)

var mustpathCheck = &Check{
	Name: "mustpath",
	Doc:  "deprecated Must* helpers callable only from cmd/ and _test.go files",
	Applies: func(w *World, p *Package) bool {
		return p.Name != "main" && !strings.HasPrefix(p.ImportPath, w.Module+"/cmd/")
	},
	Run: func(pass *Pass) {
		w, info := pass.World, pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.AST.Decls {
				var body ast.Node = decl
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if fd.Body == nil || isMustName(fd.Name.Name) {
						continue // Must* shims may compose other Must* shims
					}
					body = fd.Body
				}
				ast.Inspect(body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					var id *ast.Ident
					switch fun := call.Fun.(type) {
					case *ast.Ident:
						id = fun
					case *ast.SelectorExpr:
						id = fun.Sel
					default:
						return true
					}
					fn, ok := info.Uses[id].(*types.Func)
					if !ok || fn.Pkg() == nil || !isMustName(fn.Name()) {
						return true
					}
					if !w.Internal(fn.Pkg().Path()) {
						return true // e.g. regexp.MustCompile is not ours to police
					}
					pass.Reportf(call.Pos(),
						"use the error-returning variant; panicking shims are for cmd/ and tests",
						"deprecated %s.%s called from library code", fn.Pkg().Name(), fn.Name())
					return true
				})
			}
		}
	},
}

// isMustName reports whether name looks like a panicking helper:
// "Must" followed by an upper-case rune (MustRun, MustConfig, ...).
func isMustName(name string) bool {
	rest, ok := strings.CutPrefix(name, "Must")
	if !ok || rest == "" {
		return false
	}
	r, _ := utf8.DecodeRuneInString(rest)
	return unicode.IsUpper(r)
}
