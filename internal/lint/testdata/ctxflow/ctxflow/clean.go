package ctxflow

import "context"

// waitOn bounds its channel wait with the caller's context.
func waitOn(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Handle threads the context into every blocking callee.
func Handle(ctx context.Context, ch chan int) int {
	return waitOn(ctx, ch)
}
