package ctxflow

import "context"

// root mints a Background context in library code — cancellation from
// the caller can never reach anything derived from it.
func root() context.Context {
	return context.Background()
}

// blockingHelper receives from a channel with no context to bound the
// wait.
func blockingHelper(ch chan int) int {
	return <-ch
}

// Process accepts a context but drops it on the floor when calling
// its blocking helper.
func Process(ctx context.Context, ch chan int) int {
	return blockingHelper(ch)
}
