package ctxflow

import "context"

// detach returns this package's one sanctioned detached root.
func detach() context.Context {
	return context.Background() //opmlint:allow ctxflow — fixture: the one sanctioned process-lifetime root
}
