package rangesort

import (
	"fmt"
	"io"
	"sort"
)

// SortedKeys collects then sorts: the canonical fix, and the reason
// the check exempts slices that flow into a sort call.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DumpSorted writes entries in sorted-key order.
func DumpSorted(w io.Writer, m map[string]int) {
	for _, k := range SortedKeys(m) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Total aggregates over a map — order-independent, never flagged.
func Total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
