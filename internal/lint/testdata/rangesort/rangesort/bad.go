package rangesort

import (
	"fmt"
	"io"
)

// Keys returns map keys in iteration order — a different order every
// run.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Dump writes map entries straight to w in iteration order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Pick consumes an inline map literal in iteration order.
func Pick() string {
	s := ""
	for k := range map[string]bool{"a": true, "b": true} {
		s += k
	}
	return s
}
