package rangesort

// Tags returns the key set of a map whose consumers treat it as an
// unordered set.
func Tags(m map[string]bool) []string {
	var out []string
	for k := range m { //opmlint:allow rangesort — consumers treat this as an unordered set; nothing renders it
		out = append(out, k)
	}
	return out
}
