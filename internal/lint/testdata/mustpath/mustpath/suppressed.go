package mustpath

// Known feeds MustParse an input that cannot fail.
func Known() int {
	return MustParse(true) //opmlint:allow mustpath — constant true input cannot fail
}
