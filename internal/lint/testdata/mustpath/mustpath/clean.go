package mustpath

import "fmt"

// Parse returns n or an error; library code uses this variant.
func Parse(ok bool) (int, error) {
	if !ok {
		return 0, fmt.Errorf("mustpath: parse failed")
	}
	return 1, nil
}

// MustParse is the panicking shim, legal only in cmd/ and _test.go
// files. Defining it is fine; calling it from library code is not.
func MustParse(ok bool) int {
	n, err := Parse(ok)
	if err != nil {
		panic(err)
	}
	return n
}

// Doubled propagates the error like library code should.
func Doubled(ok bool) (int, error) {
	n, err := Parse(ok)
	if err != nil {
		return 0, err
	}
	return 2 * n, nil
}
