package mustpath

// Twice calls the deprecated panicking helper from library code: a
// bad input would kill the whole sweep instead of becoming a JobError.
func Twice() int {
	return MustParse(true) * 2
}
