package determinism

import "math/rand/v2"

// Draw uses an explicitly seeded generator: same seed, same stream,
// on every run and every machine.
func Draw(seed uint64) float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	return rng.Float64()
}

// Shuffled permutes a copy deterministically from the seed.
func Shuffled(seed uint64, xs []int) []int {
	out := append([]int(nil), xs...)
	rng := rand.New(rand.NewPCG(seed, seed|1))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
