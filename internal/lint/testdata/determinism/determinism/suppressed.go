package determinism

import "time"

// Wall reports elapsed wall time for operator display only.
func Wall(start time.Time) time.Duration {
	return time.Since(start) //opmlint:allow determinism — display-only timing, never fed back into results
}
