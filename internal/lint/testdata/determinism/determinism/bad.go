package determinism

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock from library code — exactly what a model
// package must never do.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Elapsed leaks the wall clock through time.Since.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Jitter draws from the process-global, unseeded random source.
func Jitter() float64 {
	return rand.Float64()
}
