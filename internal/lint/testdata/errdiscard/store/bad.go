package store

import "os"

// Scribble journals one line, ignoring every failure on the way —
// "crash-safe checkpoint" turned silent data loss.
func Scribble(f *os.File, line string) {
	f.WriteString(line)
	_ = f.Sync()
}

// Reopen swallows the error that says why the journal is gone.
func Reopen(path string) *os.File {
	f, _ := os.Open(path)
	return f
}
