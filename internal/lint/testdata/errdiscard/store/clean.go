package store

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"
)

// Persist propagates every write failure, as a journal must.
func Persist(f *os.File, line string) error {
	if _, err := f.WriteString(line); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// Fingerprint may ignore strings.Builder and hash.Hash write results:
// both are defined to never fail, and the check knows it.
func Fingerprint(parts []string) string {
	var b strings.Builder
	h := sha256.New()
	for _, p := range parts {
		b.WriteString(p)
		h.Write([]byte(p))
		fmt.Fprintf(&b, "/%d", len(p))
	}
	return fmt.Sprintf("%s:%x", b.String(), h.Sum(nil))
}

// Read closes via defer — the accepted read-path idiom the check
// leaves alone.
func Read(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return os.ReadFile(path)
}
