package store

import "os"

// Cleanup scraps a temp file on a path where the causing error is
// already being returned.
func Cleanup(f *os.File, tmp string) {
	f.Close()      //opmlint:allow errdiscard — best-effort cleanup on an already-failed path
	os.Remove(tmp) //opmlint:allow errdiscard — best-effort cleanup on an already-failed path
}
