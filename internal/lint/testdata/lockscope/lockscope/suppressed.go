package lockscope

import "sync"

type Journal struct {
	mu sync.Mutex
	ch chan int
}

// Append serializes writers on purpose: the mutex IS the single-writer
// ordering point.
func (j *Journal) Append(v int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	//opmlint:allow lockscope — fixture: the mutex is the single-writer serialization point by design
	j.ch <- v
}
