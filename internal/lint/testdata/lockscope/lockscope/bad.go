package lockscope

import "sync"

type Box struct {
	mu sync.Mutex
	ch chan int
	v  int
}

// Publish sends on a channel while holding the lock — every other
// caller convoys behind whoever is slow to receive.
func (b *Box) Publish() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- b.v
}

// Next receives under the lock: a missing sender wedges every caller.
func (b *Box) Next() int {
	b.mu.Lock()
	v := <-b.ch
	b.mu.Unlock()
	return v
}
