package lockscope

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
	ch chan int
}

// Bump copies under the lock and blocks only after releasing it.
func (c *Counter) Bump() {
	c.mu.Lock()
	c.n++
	n := c.n
	c.mu.Unlock()
	c.ch <- n
}
