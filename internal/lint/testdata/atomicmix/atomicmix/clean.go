package atomicmix

import "sync/atomic"

// Gauge uses the typed atomic family — a plain access does not
// type-check, so the mix cannot happen.
type Gauge struct {
	v atomic.Int64
}

func (g *Gauge) Set(n int64) { g.v.Store(n) }
func (g *Gauge) Get() int64  { return g.v.Load() }
