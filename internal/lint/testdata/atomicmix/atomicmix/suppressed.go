package atomicmix

import "sync/atomic"

type Phase struct {
	n int64
}

// Inc runs concurrently during the work phase.
func (p *Phase) Inc() {
	atomic.AddInt64(&p.n, 1)
}

// Total runs after every writer has joined; the plain read is safe and
// the annotation records why.
func (p *Phase) Total() int64 {
	return p.n //opmlint:allow atomicmix — fixture: read in the single-threaded join phase after all writers exit
}
