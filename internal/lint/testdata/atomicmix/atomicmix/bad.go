package atomicmix

import "sync/atomic"

type Stats struct {
	hits int64
}

// Record updates hits atomically from any goroutine.
func (s *Stats) Record() {
	atomic.AddInt64(&s.hits, 1)
}

// Snapshot reads the same field plainly — a data race the detector
// only sees if a test happens to interleave it with Record.
func (s *Stats) Snapshot() int64 {
	return s.hits
}
