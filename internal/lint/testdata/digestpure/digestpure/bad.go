package digestpure

// Digest is this fixture's digest root.
//
// opmlint:digest-root
func Digest(parts map[string]int) int {
	return fold(parts)
}

// fold folds map values in iteration order — two runs over the same
// map can visit them differently, so the digest is run-dependent.
func fold(parts map[string]int) int {
	sum := 0
	for _, v := range parts {
		sum = sum*31 + v
	}
	return sum
}
