package digestpure

// CleanDigest folds an already-ordered slice — nothing run-dependent
// anywhere in its closure.
//
// opmlint:digest-root
func CleanDigest(parts []string) int {
	h := 0
	for _, p := range parts {
		h = h*31 + len(p)
	}
	return h
}
