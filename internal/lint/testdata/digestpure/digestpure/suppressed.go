package digestpure

import "sort"

// SortedDigest collects map keys and sorts them before folding, so
// iteration order never reaches the result — the annotation records
// the audit.
//
// opmlint:digest-root
func SortedDigest(parts map[string]int) int {
	keys := make([]string, 0, len(parts))
	//opmlint:allow digestpure — fixture: keys are collected then sorted before use
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0
	for _, k := range keys {
		sum = sum*31 + parts[k]
	}
	return sum
}
