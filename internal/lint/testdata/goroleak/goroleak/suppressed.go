package goroleak

// Watch runs its callback for the life of the process by design.
func Watch(tick func()) {
	//opmlint:allow goroleak — fixture: the monitor loop runs for the process lifetime by design
	go func() {
		for {
			tick()
		}
	}()
}
