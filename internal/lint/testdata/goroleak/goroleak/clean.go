package goroleak

import "sync"

// Drain exits when the producer closes the channel — and produce
// below does.
func Drain(ch chan string) {
	go func() {
		for range ch {
		}
	}()
}

func produce(ch chan string) {
	ch <- "x"
	close(ch)
}

// Fan joins every worker it spawns on a WaitGroup.
func Fan(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
