package goroleak

// Spin leaks a goroutine: the loop has no exit anyone can trigger.
func Spin() {
	go func() {
		for {
		}
	}()
}

// Pump leaks too: nothing in this package ever closes a chan int, so
// the range never terminates.
func Pump(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}
