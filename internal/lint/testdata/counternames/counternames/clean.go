package counternames

import "repro/internal/obs"

// prefix is a compile-time constant, so names folded from it are
// still compile-time constants the check can read.
const prefix = "cache/"

// Publish uses literal and constant-folded names.
func Publish(reg *obs.Registry, n int64) {
	reg.Counter("cache/l2/hits").Add(n)
	reg.Counter(prefix + "l2/misses").Add(n)
	reg.Gauge("cache/utilization").Set(0.5)
	reg.Histogram("cache/fill_latency").Observe(0)
}
