package counternames

import (
	"context"

	"repro/internal/obs"
)

// prefix is a compile-time constant, so names folded from it are
// still compile-time constants the check can read.
const prefix = "cache/"

// Publish uses literal and constant-folded names.
func Publish(reg *obs.Registry, n int64) {
	reg.Counter("cache/l2/hits").Add(n)
	reg.Counter(prefix + "l2/misses").Add(n)
	reg.Gauge("cache/utilization").Set(0.5)
	reg.Histogram("cache/fill_latency").Observe(0)
}

// Phases times constant-named spans and emits constant-named trace
// events (literal and constant-folded).
func Phases(ctx context.Context, reg *obs.Registry, tr *obs.Tracer) {
	sp := reg.StartSpan("run/total")
	defer sp.End()
	sp.Child("render").End()
	obs.TraceEvent(ctx, "job/done", "")
	obs.TraceEventDur(ctx, prefix+"commit", 0, "")
	tr.Emit("id", "job/enqueue", "key", -1, 0, "")
}
