package counternames

import "repro/internal/obs"

// PerLevel publishes one counter per simulated cache level.
func PerLevel(reg *obs.Registry, level string) {
	reg.Counter("cache/" + level + "/evictions").Inc() //opmlint:allow counternames — level names come from the fixed, validated config set
}

// PhaseSpan times one pipeline phase; the name set is closed.
func PhaseSpan(reg *obs.Registry, phase string) {
	reg.StartSpan("phase/" + phase).End() //opmlint:allow counternames — phase names come from the fixed pipeline stage list
}
