package counternames

import "repro/internal/obs"

// PerLevel publishes one counter per simulated cache level.
func PerLevel(reg *obs.Registry, level string) {
	reg.Counter("cache/" + level + "/evictions").Inc() //opmlint:allow counternames — level names come from the fixed, validated config set
}
