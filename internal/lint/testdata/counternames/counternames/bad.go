package counternames

import (
	"context"

	"repro/internal/obs"
)

// Record publishes under a dynamically assembled name: the chaos
// gate's greps and the dashboards can never enumerate it.
func Record(reg *obs.Registry, level string, n int64) {
	reg.Counter("cache/" + level + "/hits").Add(n)
}

// BadName uses a literal that violates the [a-z0-9_/]+ charset.
func BadName(reg *obs.Registry) {
	reg.Gauge("Cache-Utilization%").Set(1)
}

// DynamicHistogram builds a histogram name at run time.
func DynamicHistogram(reg *obs.Registry, phase string) {
	reg.Histogram(phase + "_latency").Observe(0)
}

// DynamicSpan builds a span name at run time.
func DynamicSpan(reg *obs.Registry, phase string) {
	reg.StartSpan("run/" + phase).End()
}

// BadChild nests a sub-span whose name violates the charset.
func BadChild(reg *obs.Registry) {
	reg.StartSpan("run/total").Child("Render Phase").End()
}

// DynamicEvent emits a trace event under a run-time name.
func DynamicEvent(ctx context.Context, kind string) {
	obs.TraceEvent(ctx, "job/"+kind, "")
}

// BadEmit records an event whose name violates the charset.
func BadEmit(tr *obs.Tracer) {
	tr.Emit("id", "Job-Done!", "key", -1, 0, "")
}
