package counternames

import "repro/internal/obs"

// Record publishes under a dynamically assembled name: the chaos
// gate's greps and the dashboards can never enumerate it.
func Record(reg *obs.Registry, level string, n int64) {
	reg.Counter("cache/" + level + "/hits").Add(n)
}

// BadName uses a literal that violates the [a-z0-9_/]+ charset.
func BadName(reg *obs.Registry) {
	reg.Gauge("Cache-Utilization%").Set(1)
}

// DynamicHistogram builds a histogram name at run time.
func DynamicHistogram(reg *obs.Registry, phase string) {
	reg.Histogram(phase + "_latency").Observe(0)
}
