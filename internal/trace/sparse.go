package trace

import (
	"repro/internal/kernels"
	"repro/internal/memsim"
	"repro/internal/sparse"
)

// SpMV replays y = A·x over a real sparse pattern: sequential streams
// over RowPtr/ColIdx/Val and the x-gather whose locality depends on
// the matrix structure — the mechanism behind the paper's
// structure-impact heat maps (Figs 9–11 bottom, 20–22).
type SpMV struct {
	M *sparse.CSR
}

// Name implements Workload.
func (w *SpMV) Name() string { return "SpMV" }

// Flops implements Workload (Table 2: nnz + 2M).
func (w *SpMV) Flops() float64 { return kernels.SpMVFlops(w.M) }

// FootprintBytes implements Workload.
func (w *SpMV) FootprintBytes() int64 { return w.M.FootprintBytes() }

// Simulate implements Workload.
func (w *SpMV) Simulate(sim *memsim.Sim) {
	m := w.M
	rowPtr := sim.Alloc("rowptr", int64(m.Rows+1)*i32)
	colIdx := sim.Alloc("colidx", int64(m.NNZ())*i32)
	val := sim.Alloc("val", int64(m.NNZ())*f64)
	x := sim.Alloc("x", int64(m.Cols)*f64)
	y := sim.Alloc("y", int64(m.Rows)*f64)
	pass := func() {
		for i := 0; i < m.Rows; i++ {
			rowPtr.Load(int64(i)*i32, i32)
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				colIdx.Load(p*i32, i32)
				val.Load(p*f64, f64)
				x.Load(int64(m.ColIdx[p])*f64, f64) // structure-dependent gather
			}
			y.Store(int64(i)*f64, f64)
		}
	}
	pass()
	sim.ResetTraffic()
	pass()
}

// SpTRANS replays the ScanTrans CSR→CSC conversion: a histogram round
// (sequential ColIdx reads, scattered counter increments), a prefix
// scan, and a scatter round writing each entry to its
// column-determined destination — little reuse, as the paper notes.
type SpTRANS struct {
	M *sparse.CSR
}

// Name implements Workload.
func (w *SpTRANS) Name() string { return "SpTRANS" }

// Flops implements Workload (Table 2: nnz·log2 nnz).
func (w *SpTRANS) Flops() float64 { return kernels.SpTRANSFlops(w.M) }

// FootprintBytes implements Workload: input CSR + output CSC + counters.
func (w *SpTRANS) FootprintBytes() int64 {
	m := w.M
	return 2*(int64(m.NNZ())*(i32+f64)+int64(m.Rows+1)*i32) + int64(m.Cols)*i32
}

// Simulate implements Workload.
func (w *SpTRANS) Simulate(sim *memsim.Sim) {
	m := w.M
	colIdx := sim.Alloc("colidx", int64(m.NNZ())*i32)
	val := sim.Alloc("val", int64(m.NNZ())*f64)
	rowPtr := sim.Alloc("rowptr", int64(m.Rows+1)*i32)
	counters := sim.Alloc("counters", int64(m.Cols+1)*i32)
	outRow := sim.Alloc("outrow", int64(m.NNZ())*i32)
	outVal := sim.Alloc("outval", int64(m.NNZ())*f64)

	// SpTRANS is one-shot (no steady-state reuse across passes); the
	// measured pass is the whole conversion on cold-ish caches, as in
	// the benchmarked implementations. A light warm pass touches the
	// read-only inputs the way a prior format build would have.
	colIdx.LoadLines(0, int64(m.NNZ())*i32)
	sim.ResetTraffic()

	// Round 1: histogram.
	for p := 0; p < m.NNZ(); p++ {
		colIdx.Load(int64(p)*i32, i32)
		counters.Store(int64(m.ColIdx[p])*i32, i32) // scattered increment
	}
	// Prefix scan over counters.
	counters.LoadLines(0, int64(m.Cols+1)*i32)
	counters.StoreLines(0, int64(m.Cols+1)*i32)
	// Round 2: scatter using real destination cursors.
	cursor := make([]int64, m.Cols)
	base := make([]int64, m.Cols+1)
	for p := 0; p < m.NNZ(); p++ {
		base[m.ColIdx[p]+1]++
	}
	for c := 0; c < m.Cols; c++ {
		base[c+1] += base[c]
		cursor[c] = base[c]
	}
	for i := 0; i < m.Rows; i++ {
		rowPtr.Load(int64(i)*i32, i32)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			colIdx.Load(p*i32, i32)
			val.Load(p*f64, f64)
			c := m.ColIdx[p]
			dst := cursor[c]
			cursor[c] = dst + 1
			outRow.Store(dst*i32, i32)
			outVal.Store(dst*f64, f64)
		}
	}
}

// SpTRSV replays the level-scheduled lower triangular solve: per row a
// sequential segment of L plus the x-gather, executed level by level.
// Its dependency chains give it the lowest memory-level parallelism of
// all kernels (the timing model receives that through Tuning).
type SpTRSV struct {
	L     *sparse.CSR
	Sched *sparse.LevelSchedule
}

// NewSpTRSV levelizes the lower triangle of m.
func NewSpTRSV(m *sparse.CSR) (*SpTRSV, error) {
	l, err := m.LowerTriangle()
	if err != nil {
		return nil, err
	}
	sched, err := sparse.BuildLevels(l)
	if err != nil {
		return nil, err
	}
	return &SpTRSV{L: l, Sched: sched}, nil
}

// Name implements Workload.
func (w *SpTRSV) Name() string { return "SpTRSV" }

// Flops implements Workload (Table 2: nnz + 2M).
func (w *SpTRSV) Flops() float64 { return kernels.SpTRSVFlops(w.L) }

// FootprintBytes implements Workload.
func (w *SpTRSV) FootprintBytes() int64 { return w.L.FootprintBytes() }

// AvgParallelism exposes the schedule's average level width for the
// timing model's effective-thread throttling.
func (w *SpTRSV) AvgParallelism() float64 { return w.Sched.AvgParallelism() }

// Simulate implements Workload.
func (w *SpTRSV) Simulate(sim *memsim.Sim) {
	l := w.L
	rowPtr := sim.Alloc("rowptr", int64(l.Rows+1)*i32)
	colIdx := sim.Alloc("colidx", int64(l.NNZ())*i32)
	val := sim.Alloc("val", int64(l.NNZ())*f64)
	x := sim.Alloc("x", int64(l.Rows)*f64)
	b := sim.Alloc("b", int64(l.Rows)*f64)
	pass := func() {
		for lv := 0; lv < w.Sched.Levels(); lv++ {
			for p := w.Sched.Ptr[lv]; p < w.Sched.Ptr[lv+1]; p++ {
				i := w.Sched.Order[p]
				rowPtr.Load(int64(i)*i32, i32)
				b.Load(int64(i)*f64, f64)
				for q := l.RowPtr[i]; q < l.RowPtr[i+1]; q++ {
					colIdx.Load(q*i32, i32)
					val.Load(q*f64, f64)
					if c := l.ColIdx[q]; c != i {
						x.Load(int64(c)*f64, f64)
					}
				}
				x.Store(int64(i)*f64, f64)
			}
		}
	}
	pass()
	sim.ResetTraffic()
	pass()
}
