package trace

import "repro/internal/memsim"

// Stream replays the STREAM TRIAD access pattern x = a + α·b: two
// sequential read streams and one write stream (write-allocate, so
// the store also fills — Table 2's 32 bytes/element accounting).
type Stream struct {
	// N is the number of float64 elements per array (simulated scale).
	N int64
}

// NewStream builds a triad workload whose three arrays total
// footprint bytes at simulated scale.
func NewStream(footprint int64) *Stream {
	n := footprint / (3 * f64)
	if n < 8 {
		n = 8
	}
	return &Stream{N: n}
}

// Name implements Workload.
func (w *Stream) Name() string { return "Stream" }

// Flops implements Workload: 2n per pass.
func (w *Stream) Flops() float64 { return 2 * float64(w.N) }

// FootprintBytes implements Workload.
func (w *Stream) FootprintBytes() int64 { return 3 * w.N * f64 }

// Simulate implements Workload.
func (w *Stream) Simulate(sim *memsim.Sim) {
	bytes := w.N * f64
	x := sim.Alloc("x", bytes)
	a := sim.Alloc("a", bytes)
	b := sim.Alloc("b", bytes)
	pass := func() {
		// Interleave line-granular progress through the three streams
		// the way the hardware sees a triad: load a, load b, store x.
		const chunk = int64(64 * 16) // advance 16 lines per array at a time
		for off := int64(0); off < bytes; off += chunk {
			n := chunk
			if off+n > bytes {
				n = bytes - off
			}
			a.LoadLines(off, n)
			b.LoadLines(off, n)
			x.StoreLines(off, n)
		}
	}
	pass() // warm-up: populate caches
	sim.ResetTraffic()
	pass()
}
