package trace

import (
	"math"

	"repro/internal/memsim"
	"repro/internal/stencil"
)

// Stencil replays the iso3dfd sweep at cache-line granularity: for
// every 8-cell x-run it touches the centre line, the 16 y-neighbour
// and 16 z-neighbour lines (x-neighbours share the centre run's
// lines), the prev read and the next write — the radius-8 16th-order
// access pattern under the paper's 64×64×96 spatial blocking.
type Stencil struct {
	NX, NY, NZ int
	Block      stencil.Block
}

// NewStencil builds a grid triple totalling about footprint bytes at
// simulated scale, using the paper's default blocking scaled down by
// the platform's capacity factor (the 64×64×96 block is sized for the
// real caches; the simulated ones are 1/scale the size, so the block's
// ~3 MB working set shrinks by the same factor).
func NewStencil(footprint, scale int64) *Stencil {
	// Three grids of 8-byte cells; pick x-extent multiple of 8.
	cells := footprint / (3 * f64)
	n := 8
	for int64(n*2)*int64(n*2)*int64(n*2) <= cells {
		n *= 2
	}
	nz := n
	for int64(n)*int64(n)*int64(nz+nz/2) <= cells {
		nz += nz / 2
	}
	blk := stencil.DefaultBlock
	if scale > 1 {
		// Shrink each block dimension by scale^(1/3), keeping x a
		// multiple of 8 lines-worth of cells.
		f := math.Cbrt(float64(scale))
		shrink := func(v int, min int) int {
			out := int(float64(v) / f)
			if out < min {
				out = min
			}
			return out
		}
		blk = stencil.Block{X: shrink(blk.X, 8), Y: shrink(blk.Y, 4), Z: shrink(blk.Z, 4)}
	}
	return &Stencil{NX: n, NY: n, NZ: nz, Block: blk}
}

// Name implements Workload.
func (w *Stencil) Name() string { return "Stencil" }

// Flops implements Workload (Table 2: 61 per cell per sweep).
func (w *Stencil) Flops() float64 {
	return stencil.Flops(int64(w.NX)*int64(w.NY)*int64(w.NZ), 1)
}

// FootprintBytes implements Workload: three grids (prev, cur, next).
func (w *Stencil) FootprintBytes() int64 {
	return 3 * int64(w.NX) * int64(w.NY) * int64(w.NZ) * f64
}

// Simulate implements Workload.
func (w *Stencil) Simulate(sim *memsim.Sim) {
	nx, ny, nz := int64(w.NX), int64(w.NY), int64(w.NZ)
	// Pad the storage strides like YASK does: power-of-two plane
	// strides alias every z-neighbour of a column into one cache set
	// and thrash even generously sized caches.
	px, py := nx+8, ny+1
	gridBytes := px * py * nz * f64
	cur := sim.Alloc("cur", gridBytes)
	prev := sim.Alloc("prev", gridBytes)
	next := sim.Alloc("next", gridBytes)
	cell := func(x, y, z int64) int64 { return ((z*py+y)*px + x) * f64 }

	bx, by, bz := int64(w.Block.X), int64(w.Block.Y), int64(w.Block.Z)
	const r = int64(stencil.Radius)
	sweep := func() {
		for z0 := int64(0); z0 < nz; z0 += bz {
			z1 := min64(z0+bz, nz)
			for y0 := int64(0); y0 < ny; y0 += by {
				y1 := min64(y0+by, ny)
				for x0 := int64(0); x0 < nx; x0 += bx {
					x1 := min64(x0+bx, nx)
					for z := z0; z < z1; z++ {
						for y := y0; y < y1; y++ {
							for x := x0; x < x1; x += 8 {
								run := min64(8*f64, (x1-x)*f64)
								// Centre run covers the ±8 x-neighbours.
								cur.LoadLines(cell(x, y, z), run)
								for d := int64(1); d <= r; d++ {
									if y-d >= 0 {
										cur.LoadLines(cell(x, y-d, z), run)
									}
									if y+d < ny {
										cur.LoadLines(cell(x, y+d, z), run)
									}
									if z-d >= 0 {
										cur.LoadLines(cell(x, y, z-d), run)
									}
									if z+d < nz {
										cur.LoadLines(cell(x, y, z+d), run)
									}
								}
								prev.LoadLines(cell(x, y, z), run)
								next.StoreLines(cell(x, y, z), run)
							}
						}
					}
				}
			}
		}
	}
	sweep() // warm-up sweep (time iteration steady state)
	sim.ResetTraffic()
	sweep()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
