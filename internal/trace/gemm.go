package trace

import "repro/internal/memsim"

// GEMM replays the tiled C = A·B loop nest of kernels.GEMM at line
// granularity: per (i-band, k-tile, j-tile) it streams the A row
// segments, B tile rows and C row segments exactly as the compute
// kernel does. Used to validate the analytic dense-traffic model
// (densemodel.go) at small orders; the paper-scale heat-map sweeps use
// the analytic model (order 16128 would need ~10^12 simulated
// accesses).
type GEMM struct {
	N  int // matrix order
	NB int // tile size
}

// Name implements Workload.
func (w *GEMM) Name() string { return "GEMM" }

// Flops implements Workload (Table 2: 2n³).
func (w *GEMM) Flops() float64 { return 2 * float64(w.N) * float64(w.N) * float64(w.N) }

// FootprintBytes implements Workload (Table 2: 32n² = three matrices
// plus workspace; we allocate the three matrices).
func (w *GEMM) FootprintBytes() int64 { return 3 * int64(w.N) * int64(w.N) * f64 }

// Simulate implements Workload.
func (w *GEMM) Simulate(sim *memsim.Sim) {
	n, nb := int64(w.N), int64(w.NB)
	if nb > n {
		nb = n
	}
	mat := n * n * f64
	a := sim.Alloc("A", mat)
	b := sim.Alloc("B", mat)
	c := sim.Alloc("C", mat)
	at := func(i, j int64) int64 { return (i*n + j) * f64 }

	// GEMM is a single-shot kernel: the measured pass IS the run (the
	// paper times the whole multiplication, not a steady-state loop).
	sim.ResetTraffic()
	for i0 := int64(0); i0 < n; i0 += nb {
		i1 := min64(i0+nb, n)
		for k0 := int64(0); k0 < n; k0 += nb {
			k1 := min64(k0+nb, n)
			for j0 := int64(0); j0 < n; j0 += nb {
				j1 := min64(j0+nb, n)
				for i := i0; i < i1; i++ {
					c.LoadLines(at(i, j0), (j1-j0)*f64)
					for k := k0; k < k1; k++ {
						a.Load(at(i, k), f64)
						b.LoadLines(at(k, j0), (j1-j0)*f64)
					}
					c.StoreLines(at(i, j0), (j1-j0)*f64)
				}
			}
		}
	}
}
