package trace

import "repro/internal/memsim"

// CoStream models the paper's future-work question — "under a
// multi-user scenario, how would the OS distribute the OPM resources
// among applications" — by interleaving two independent STREAM triads
// in one address space. Tenant A and tenant B each own three arrays;
// their accesses alternate chunk by chunk, so they contend for every
// cache level and for the OPM the way two co-scheduled processes
// would.
type CoStream struct {
	A, B *Stream
}

// NewCoStream builds two co-running triads with the given simulated
// per-tenant footprints.
func NewCoStream(fpA, fpB int64) *CoStream {
	return &CoStream{A: NewStream(fpA), B: NewStream(fpB)}
}

// Name implements Workload.
func (w *CoStream) Name() string { return "Stream" } // tuned like Stream

// Flops implements Workload: both tenants' work.
func (w *CoStream) Flops() float64 { return w.A.Flops() + w.B.Flops() }

// FootprintBytes implements Workload.
func (w *CoStream) FootprintBytes() int64 { return w.A.FootprintBytes() + w.B.FootprintBytes() }

// Simulate implements Workload: chunk-interleaved triads.
func (w *CoStream) Simulate(sim *memsim.Sim) {
	bytesA := w.A.N * f64
	bytesB := w.B.N * f64
	xA := sim.Alloc("xA", bytesA)
	aA := sim.Alloc("aA", bytesA)
	bA := sim.Alloc("bA", bytesA)
	xB := sim.Alloc("xB", bytesB)
	aB := sim.Alloc("aB", bytesB)
	bB := sim.Alloc("bB", bytesB)

	const chunk = int64(64 * 16)
	pass := func() {
		offA, offB := int64(0), int64(0)
		for offA < bytesA || offB < bytesB {
			if offA < bytesA {
				n := min64(chunk, bytesA-offA)
				aA.LoadLines(offA, n)
				bA.LoadLines(offA, n)
				xA.StoreLines(offA, n)
				offA += n
			}
			if offB < bytesB {
				n := min64(chunk, bytesB-offB)
				aB.LoadLines(offB, n)
				bB.LoadLines(offB, n)
				xB.StoreLines(offB, n)
				offB += n
			}
		}
	}
	pass()
	sim.ResetTraffic()
	pass()
}
