package trace

import (
	"testing"

	"repro/internal/memsim"
	"repro/internal/sparse"
)

// smallCfg is an unscaled DDR-only config for workload unit tests.
func smallCfg(mode memsim.Mode) memsim.Config {
	cfg := memsim.Config{
		Name: "t",
		Mode: mode,
		L1:   memsim.CacheCfg{Size: 4 << 10, Ways: 4},
		L2:   memsim.CacheCfg{Size: 32 << 10, Ways: 8},
		L3:   memsim.CacheCfg{Size: 256 << 10, Ways: 8},
		Links: [memsim.NumSources]memsim.LinkParams{
			memsim.SrcL2:    {BWGBs: 200, LatNS: 4},
			memsim.SrcL3:    {BWGBs: 100, LatNS: 12},
			memsim.SrcEDRAM: {BWGBs: 50, LatNS: 40},
			memsim.SrcDDR:   {BWGBs: 20, LatNS: 90},
		},
		PeakDPGFlops:  200,
		PeakSPGFlops:  400,
		Cores:         4,
		MaxThreads:    8,
		MSHRs:         64,
		SplitPenalty:  6,
		MLPRampFactor: 6,
		Scale:         1,
	}
	if mode == memsim.ModeEDRAM {
		cfg.EDRAM = memsim.CacheCfg{Size: 2 << 20, Ways: 16}
	}
	return cfg
}

func runWorkload(t *testing.T, w Workload, mode memsim.Mode) memsim.Traffic {
	t.Helper()
	sim := memsim.MustNewSim(smallCfg(mode))
	w.Simulate(sim)
	return sim.Traffic()
}

func TestStreamWorkload(t *testing.T) {
	w := NewStream(3 << 20)
	if w.Name() != "Stream" {
		t.Fatal("name")
	}
	if w.Flops() != 2*float64(w.N) {
		t.Fatal("flops formula")
	}
	tr := runWorkload(t, w, memsim.ModeDDR)
	if tr.FootprintBytes != w.FootprintBytes() {
		t.Fatalf("footprint %d vs %d", tr.FootprintBytes, w.FootprintBytes())
	}
	// A 3MB triad on a 256KB LLC is DDR bound: measured pass moves
	// ~footprint bytes of demand from DDR.
	if tr.Bytes[memsim.SrcDDR] < uint64(w.FootprintBytes())*8/10 {
		t.Fatalf("DDR demand %d too small for footprint %d", tr.Bytes[memsim.SrcDDR], w.FootprintBytes())
	}
	// Write-allocate: the x stream must produce writebacks.
	if tr.WBBytes[memsim.SrcDDR] == 0 {
		t.Fatal("no writebacks from the store stream")
	}
	// Tiny footprint clamps to a sane minimum.
	if NewStream(1).N < 8 {
		t.Fatal("minimum size not enforced")
	}
}

func TestStreamFitsInCache(t *testing.T) {
	w := NewStream(12 << 10) // fits 32KB L2
	tr := runWorkload(t, w, memsim.ModeDDR)
	if tr.Bytes[memsim.SrcDDR] != 0 {
		t.Fatalf("fitting triad should be cache-resident after warm-up, DDR=%d", tr.Bytes[memsim.SrcDDR])
	}
}

func TestSpMVWorkloadStructureSensitivity(t *testing.T) {
	// Banded and random matrices with the same nnz/footprint: the
	// banded gather stays local, the random one misses — the mechanism
	// behind Figures 9/20.
	n, r := 20000, 8
	banded := &SpMV{M: sparse.Banded(n, 32, r, 1)}
	random := &SpMV{M: sparse.RandomUniform(n, r, 1)}
	trB := runWorkload(t, banded, memsim.ModeDDR)
	trR := runWorkload(t, random, memsim.ModeDDR)
	if trR.Bytes[memsim.SrcDDR] <= trB.Bytes[memsim.SrcDDR] {
		t.Fatalf("random gather should miss more: banded=%d random=%d",
			trB.Bytes[memsim.SrcDDR], trR.Bytes[memsim.SrcDDR])
	}
	if banded.Flops() <= 0 || banded.FootprintBytes() <= 0 {
		t.Fatal("bad accounting")
	}
}

func TestSpTRANSWorkload(t *testing.T) {
	m := sparse.RMAT(4096, 40000, 3)
	w := &SpTRANS{M: m}
	if w.Name() != "SpTRANS" {
		t.Fatal("name")
	}
	tr := runWorkload(t, w, memsim.ModeDDR)
	// Scatter writes must produce stores (writebacks or dirty lines).
	if tr.Accesses == 0 || tr.FootprintBytes < m.FootprintBytes() {
		t.Fatalf("bad traffic: %+v", tr)
	}
	if w.FootprintBytes() < 2*int64(m.NNZ())*12 {
		t.Fatal("SpTRANS footprint must cover input and output")
	}
}

func TestSpTRSVWorkload(t *testing.T) {
	w, err := NewSpTRSV(sparse.Poisson2D(64))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "SpTRSV" {
		t.Fatal("name")
	}
	if w.AvgParallelism() <= 1 {
		t.Fatal("poisson lower triangle has parallel levels")
	}
	tr := runWorkload(t, w, memsim.ModeDDR)
	if tr.Accesses == 0 {
		t.Fatal("no accesses")
	}
	// Chain matrix: avg parallelism 1.
	chain, err := NewSpTRSV(sparse.Tridiag(256))
	if err != nil {
		t.Fatal(err)
	}
	if chain.AvgParallelism() != 1 {
		t.Fatalf("tridiag avg parallelism = %v", chain.AvgParallelism())
	}
}

func TestFFTWorkloadShape(t *testing.T) {
	w := NewFFT(8 << 20)
	if w.NX&(w.NX-1) != 0 || w.NY&(w.NY-1) != 0 || w.NZ&(w.NZ-1) != 0 {
		t.Fatalf("non-pow2 dims %dx%dx%d", w.NX, w.NY, w.NZ)
	}
	if w.FootprintBytes() > 8<<20 || w.FootprintBytes() < 2<<20 {
		t.Fatalf("footprint %d far from target", w.FootprintBytes())
	}
	tr := runWorkload(t, &FFT{NX: 32, NY: 32, NZ: 16}, memsim.ModeDDR)
	if tr.Accesses == 0 {
		t.Fatal("no accesses")
	}
}

func TestStencilWorkload(t *testing.T) {
	w := NewStencil(6<<20, 16)
	if w.FootprintBytes() > 6<<20 {
		t.Fatalf("footprint %d exceeds target", w.FootprintBytes())
	}
	small := &Stencil{NX: 32, NY: 32, NZ: 32, Block: w.Block}
	tr := runWorkload(t, small, memsim.ModeDDR)
	if tr.Accesses == 0 {
		t.Fatal("no accesses")
	}
	if small.Flops() != 61*32*32*32 {
		t.Fatal("stencil flops formula")
	}
}

func TestGEMMTraceWorkload(t *testing.T) {
	w := &GEMM{N: 96, NB: 32}
	if w.Flops() != 2*96*96*96 {
		t.Fatal("flops")
	}
	tr := runWorkload(t, w, memsim.ModeDDR)
	if tr.Accesses == 0 || tr.FootprintBytes != 3*96*96*8 {
		t.Fatalf("bad traffic %+v", tr)
	}
}

func TestDenseModelValidation(t *testing.T) {
	cfg := smallCfg(memsim.ModeDDR)
	scaled := cfg
	scaled.Scale = 4
	m := DenseModel{Kind: DenseGEMM, N: 512, NB: 64}
	if _, err := m.Traffic(&scaled); err == nil {
		t.Fatal("scaled config accepted")
	}
	bad := DenseModel{Kind: DenseGEMM, N: 0, NB: 64}
	if _, err := bad.Traffic(&cfg); err == nil {
		t.Fatal("zero order accepted")
	}
}

func TestDenseModelKinds(t *testing.T) {
	if DenseGEMM.String() != "GEMM" || DenseCholesky.String() != "Cholesky" {
		t.Fatal("kind names")
	}
	g := DenseModel{Kind: DenseGEMM, N: 100, NB: 10}
	c := DenseModel{Kind: DenseCholesky, N: 100, NB: 10}
	if g.Flops() != 2e6 || c.Flops() != 1e6/3 {
		t.Fatalf("flops: %v, %v", g.Flops(), c.Flops())
	}
	if g.FootprintBytes() != 32*100*100 || c.FootprintBytes() != 24*100*100 {
		t.Fatal("footprints")
	}
	if g.TileEff() >= (DenseModel{Kind: DenseGEMM, N: 100, NB: 100}).TileEff() {
		t.Fatal("larger tiles should have higher tile efficiency")
	}
	if g.SizeEff(4) <= (DenseModel{Kind: DenseGEMM, N: 10, NB: 10}).SizeEff(4) {
		t.Fatal("larger problems should have higher size efficiency")
	}
}

func TestUnscaledConfig(t *testing.T) {
	cfg := smallCfg(memsim.ModeEDRAM)
	cfg.Scale = 8
	u := UnscaledConfig(cfg)
	if u.Scale != 1 || u.L2.Size != cfg.L2.Size*8 || u.EDRAM.Size != cfg.EDRAM.Size*8 {
		t.Fatalf("unscale wrong: %+v", u)
	}
}

// Cross-validation: the analytic dense model's memory traffic must
// agree with the trace-driven GEMM within a factor of 4 at small
// orders (DESIGN.md §5's validation promise).
func TestDenseModelMatchesTraceGEMM(t *testing.T) {
	cfg := smallCfg(memsim.ModeDDR)
	for _, tc := range []struct{ n, nb int }{
		{128, 16}, {128, 64}, {256, 32}, {256, 128},
	} {
		sim := memsim.MustNewSim(cfg)
		(&GEMM{N: tc.n, NB: tc.nb}).Simulate(sim)
		traceDDR := float64(sim.Traffic().Bytes[memsim.SrcDDR] + sim.Traffic().WBBytes[memsim.SrcDDR])

		model := DenseModel{Kind: DenseGEMM, N: tc.n, NB: tc.nb}
		tr, err := model.Traffic(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		modelDDR := float64(tr.Bytes[memsim.SrcDDR])
		if modelDDR == 0 || traceDDR == 0 {
			t.Fatalf("n=%d nb=%d: zero traffic (model %v, trace %v)", tc.n, tc.nb, modelDDR, traceDDR)
		}
		ratio := modelDDR / traceDDR
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("n=%d nb=%d: model/trace DDR ratio %.2f (model %.3g, trace %.3g)",
				tc.n, tc.nb, ratio, modelDDR, traceDDR)
		}
	}
}

// The analytic model must show the paper's qualitative eDRAM effect:
// oversized tiles on big matrices recover their traffic with eDRAM.
func TestDenseModelEDRAMRecoversOversizedTiles(t *testing.T) {
	ddr := smallCfg(memsim.ModeDDR)
	ed := smallCfg(memsim.ModeEDRAM)
	m := DenseModel{Kind: DenseGEMM, N: 4096, NB: 1024} // tiles >> 256KB L3
	trD, err := m.Traffic(&ddr)
	if err != nil {
		t.Fatal(err)
	}
	trE, err := m.Traffic(&ed)
	if err != nil {
		t.Fatal(err)
	}
	if trE.Bytes[memsim.SrcDDR] >= trD.Bytes[memsim.SrcDDR] {
		t.Fatalf("eDRAM should absorb tile refetches: %d vs %d",
			trE.Bytes[memsim.SrcDDR], trD.Bytes[memsim.SrcDDR])
	}
	if trE.Bytes[memsim.SrcEDRAM] == 0 {
		t.Fatal("eDRAM should serve traffic")
	}
}

func TestCoStreamInterference(t *testing.T) {
	// Two tenants whose combined set exceeds the cache must generate
	// more memory traffic per tenant than one tenant alone.
	solo := NewStream(200 << 10) // fits the 256KB L3 of smallCfg
	co := NewCoStream(200<<10, 200<<10)
	if co.Name() != "Stream" {
		t.Fatal("CoStream should reuse Stream tuning")
	}
	if co.Flops() != 2*solo.Flops() || co.FootprintBytes() != 2*solo.FootprintBytes() {
		t.Fatal("accounting should sum the tenants")
	}
	trSolo := runWorkload(t, solo, memsim.ModeDDR)
	trCo := runWorkload(t, co, memsim.ModeDDR)
	soloDDRPerByte := float64(trSolo.Bytes[memsim.SrcDDR]) / float64(solo.FootprintBytes())
	coDDRPerByte := float64(trCo.Bytes[memsim.SrcDDR]) / float64(co.FootprintBytes())
	if coDDRPerByte <= soloDDRPerByte*1.5 {
		t.Fatalf("co-tenants should thrash the shared cache: solo %.3f vs shared %.3f DDR bytes/byte",
			soloDDRPerByte, coDDRPerByte)
	}
}

func TestCholeskyTraceWorkload(t *testing.T) {
	w := &Cholesky{N: 96, NB: 32}
	if w.Name() != "Cholesky" || w.Flops() != 96.0*96*96/3 {
		t.Fatal("accounting wrong")
	}
	tr := runWorkload(t, w, memsim.ModeDDR)
	if tr.Accesses == 0 || tr.FootprintBytes != 96*96*8 {
		t.Fatalf("bad traffic %+v", tr)
	}
}

// Cross-validation: the analytic Cholesky model's memory traffic must
// agree with the trace generator within a factor of 4 at small orders,
// mirroring the GEMM validation.
func TestDenseModelMatchesTraceCholesky(t *testing.T) {
	cfg := smallCfg(memsim.ModeDDR)
	for _, tc := range []struct{ n, nb int }{
		{256, 32}, {256, 64}, {384, 48},
	} {
		sim := memsim.MustNewSim(cfg)
		(&Cholesky{N: tc.n, NB: tc.nb}).Simulate(sim)
		traceDDR := float64(sim.Traffic().Bytes[memsim.SrcDDR] + sim.Traffic().WBBytes[memsim.SrcDDR])

		model := DenseModel{Kind: DenseCholesky, N: tc.n, NB: tc.nb}
		tr, err := model.Traffic(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		modelDDR := float64(tr.Bytes[memsim.SrcDDR])
		if traceDDR == 0 || modelDDR == 0 {
			t.Fatalf("n=%d nb=%d: zero traffic (model %v, trace %v)", tc.n, tc.nb, modelDDR, traceDDR)
		}
		ratio := modelDDR / traceDDR
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("n=%d nb=%d: model/trace DDR ratio %.2f (model %.3g, trace %.3g)",
				tc.n, tc.nb, ratio, modelDDR, traceDDR)
		}
	}
}
