package trace

import "repro/internal/memsim"

// Cholesky replays the tiled right-looking factorization of
// kernels.Cholesky at line granularity: per panel step, the diagonal
// tile factor (POTRF), the panel solve (TRSM) and the trailing update
// (SYRK) with their actual read/write footprints. Like the GEMM
// generator it exists to validate the analytic dense model at small
// orders; paper-scale sweeps use DenseModel.
type Cholesky struct {
	N  int // matrix order
	NB int // tile size
}

// Name implements Workload.
func (w *Cholesky) Name() string { return "Cholesky" }

// Flops implements Workload (Table 2: n³/3).
func (w *Cholesky) Flops() float64 { return float64(w.N) * float64(w.N) * float64(w.N) / 3 }

// FootprintBytes implements Workload: the matrix itself.
func (w *Cholesky) FootprintBytes() int64 { return int64(w.N) * int64(w.N) * f64 }

// Simulate implements Workload.
func (w *Cholesky) Simulate(sim *memsim.Sim) {
	n, nb := int64(w.N), int64(w.NB)
	if nb > n {
		nb = n
	}
	a := sim.Alloc("A", n*n*f64)
	rowSeg := func(i, j0, j1 int64) {
		a.LoadLines((i*n+j0)*f64, (j1-j0)*f64)
	}
	rowSegW := func(i, j0, j1 int64) {
		a.StoreLines((i*n+j0)*f64, (j1-j0)*f64)
	}
	sim.ResetTraffic() // single-shot kernel, like the timed PLASMA run

	for k0 := int64(0); k0 < n; k0 += nb {
		k1 := min64(k0+nb, n)
		// POTRF on the diagonal tile: each row segment read and
		// rewritten against the preceding rows of the tile.
		for j := k0; j < k1; j++ {
			rowSeg(j, k0, j+1)
			rowSegW(j, k0, j+1)
		}
		// TRSM panel: every row below the tile reads the factored tile
		// rows and rewrites its own segment.
		for i := k1; i < n; i++ {
			rowSeg(i, k0, k1)
			for j := k0; j < k1; j += 8 { // tile rows, line-strided
				rowSeg(j, k0, k1)
			}
			rowSegW(i, k0, k1)
		}
		// SYRK trailing update: row i combines panel rows i and j and
		// rewrites its trailing segment A[i, k1..i].
		for i := k1; i < n; i++ {
			rowSeg(i, k0, k1)
			for j := k1; j <= i; j += 8 {
				rowSeg(j, k0, k1)
			}
			rowSeg(i, k1, i+1)
			rowSegW(i, k1, i+1)
		}
	}
}
