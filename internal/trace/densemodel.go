package trace

import (
	"fmt"
	"math"

	"repro/internal/memsim"
)

// DenseKind selects the dense kernel modelled analytically.
type DenseKind int

// Dense kernels with analytic traffic models.
const (
	DenseGEMM DenseKind = iota
	DenseCholesky
)

// String returns the kernel name.
func (k DenseKind) String() string {
	if k == DenseCholesky {
		return "Cholesky"
	}
	return "GEMM"
}

// DenseModel is the analytic tiled-traffic model for GEMM and Cholesky
// at paper scale. A full trace of order 16128 would need ~10^12
// accesses, but blocked dense kernels have closed-form per-level
// traffic: a tile pass reuses a b×b working set, so the bytes crossing
// the boundary below a cache of capacity C are ≈ flops·8/b_r(C), where
// the effective reuse block b_r degrades hyperbolically once the three
// tiles (3·b²·8 bytes) exceed C. The resulting per-source byte counts
// feed the same memsim.Evaluate timing model the trace simulator uses
// (validated against the trace GEMM generator at small orders in
// tests).
type DenseModel struct {
	Kind DenseKind
	N    int // matrix order (paper scale)
	NB   int // tile size (the paper's --nb sweep)
}

// Flops returns the Table 2 operation count (2n³ or n³/3).
func (m DenseModel) Flops() float64 {
	n := float64(m.N)
	if m.Kind == DenseCholesky {
		return n * n * n / 3
	}
	return 2 * n * n * n
}

// FootprintBytes returns the working footprint at paper scale:
// Table 2's 32n² for GEMM; Cholesky holds the matrix plus the tiled
// layout copy and panel workspace (~24n² for PLASMA-style storage).
func (m DenseModel) FootprintBytes() int64 {
	n := int64(m.N)
	if m.Kind == DenseCholesky {
		return 24 * n * n
	}
	return 32 * n * n
}

// TileEff models the loop/scheduling overhead of small tiles; SizeEff
// models the startup/parallelism cost of small problems (the paper's
// "sufficient data size is required ... maintaining high arithmetic
// intensity"). Both multiply the kernel's base compute efficiency.
func (m DenseModel) TileEff() float64 {
	nb := float64(min(m.NB, m.N))
	return nb / (nb + 24)
}

// SizeEff returns the problem-size efficiency factor; cores is the
// platform core count (more cores need larger problems to fill).
func (m DenseModel) SizeEff(cores int) float64 {
	n := float64(m.N)
	n0 := 60 * float64(cores) // ~240 on Broadwell, ~3840 on KNL
	return n / (n + n0)
}

// UnscaledConfig returns cfg with capacities restored to paper scale
// (Scale=1) so analytic paper-scale traffic can be evaluated directly.
func UnscaledConfig(cfg memsim.Config) memsim.Config {
	s := cfg.Scale
	out := cfg
	out.L1.Size *= s
	out.L2.Size *= s
	out.L3.Size *= s
	out.EDRAM.Size *= s
	out.MCDRAMBytes *= s
	out.Scale = 1
	return out
}

// Traffic computes the per-source byte counts of one run under the
// given (unscaled) configuration.
func (m DenseModel) Traffic(cfg *memsim.Config) (memsim.Traffic, error) {
	if cfg.Scale != 1 {
		return memsim.Traffic{}, fmt.Errorf("trace: DenseModel needs an unscaled config (got scale %d)", cfg.Scale)
	}
	if m.N <= 0 || m.NB <= 0 {
		return memsim.Traffic{}, fmt.Errorf("trace: DenseModel needs positive n/nb, got %d/%d", m.N, m.NB)
	}
	fp := m.FootprintBytes()
	var tr memsim.Traffic
	tr.FootprintBytes = fp

	// Cache levels above memory, nearest first. The L1 boundary is
	// special: tuned dense kernels keep a register/L1 micro-kernel
	// whose reuse does not collapse for oversized outer tiles, so L1
	// gets no thrash decay (innermost=true).
	type lvl struct {
		src       memsim.Source
		cap       int64
		innermost bool
	}
	caches := []lvl{
		{memsim.SrcL1, cfg.L1.Size, true},
		{memsim.SrcL2, cfg.L2.Size, false},
	}
	if cfg.L3.Size > 0 {
		caches = append(caches, lvl{memsim.SrcL3, cfg.L3.Size, false})
	}
	switch cfg.Mode {
	case memsim.ModeEDRAM, memsim.ModeEDRAMMemSide:
		caches = append(caches, lvl{memsim.SrcEDRAM, cfg.EDRAM.Size, false})
	case memsim.ModeCache:
		caches = append(caches, lvl{memsim.SrcMCDRAM, cfg.MCDRAMBytes, false})
	case memsim.ModeHybrid:
		caches = append(caches, lvl{memsim.SrcMCDRAM, cfg.MCDRAMBytes / 2, false})
	}

	// missBelow[i] = bytes crossing the boundary below caches[i],
	// clamped monotone (deeper boundaries carry no more traffic).
	missBelow := make([]float64, len(caches))
	prev := math.Inf(1)
	for i, c := range caches {
		b := m.crossingBytes(c.cap, c.innermost)
		if b > prev {
			b = prev
		}
		missBelow[i] = b
		prev = b
	}

	// Bytes served by cache level i+1 = missBelow[i] - missBelow[i+1].
	// L1 hits are free (SrcL1 carries no bandwidth bound).
	for i := 0; i+1 < len(caches); i++ {
		tr.Bytes[caches[i+1].src] = uint64(math.Max(0, missBelow[i]-missBelow[i+1]))
	}
	memBytes := missBelow[len(caches)-1]

	// Route the final misses to memory according to the mode. pre is
	// the traffic entering the memory subsystem (below the last
	// on-chip cache).
	switch cfg.Mode {
	case memsim.ModeFlat:
		if fp <= cfg.MCDRAMBytes {
			tr.Bytes[memsim.SrcMCDRAM] = uint64(memBytes)
		} else {
			// numactl-preferred allocation straddles: resident fraction
			// in MCDRAM, the rest in DDR, with the split pathology.
			frac := float64(cfg.MCDRAMBytes) / float64(fp)
			tr.Bytes[memsim.SrcMCDRAM] = uint64(memBytes * frac)
			tr.Bytes[memsim.SrcDDR] = uint64(memBytes * (1 - frac))
			tr.SplitFlat = true
		}
	case memsim.ModeCache:
		// Everything consulted the in-MCDRAM tags; misses also install.
		pre := missBelow[len(caches)-2]
		tr.MCTagLines = uint64(pre / 64)
		tr.Bytes[memsim.SrcDDR] = uint64(memBytes)
		tr.WBBytes[memsim.SrcMCDRAM] += uint64(memBytes) // fills install
	case memsim.ModeHybrid:
		// The flat half hosts a resident fraction f of the data whose
		// accesses bypass the tags; the rest flows through the cached
		// half (whose capacity the crossing chain already modelled).
		pre := missBelow[len(caches)-2]
		half := cfg.MCDRAMBytes / 2
		f := 1.0
		if fp > half {
			f = float64(half) / float64(fp)
		}
		flatBytes := pre * f
		cachedServed := math.Max(0, (pre-memBytes)*(1-f))
		tr.Bytes[memsim.SrcMCDRAM] = uint64(flatBytes + cachedServed)
		tr.MCTagLines = uint64(pre * (1 - f) / 64)
		tr.Bytes[memsim.SrcDDR] = uint64(memBytes * (1 - f))
		tr.WBBytes[memsim.SrcMCDRAM] += uint64(memBytes * (1 - f))
	case memsim.ModeEDRAMMemSide:
		// Fills install into the memory-side buffer.
		tr.Bytes[memsim.SrcDDR] = uint64(memBytes)
		tr.WBBytes[memsim.SrcEDRAM] += uint64(memBytes)
	default:
		tr.Bytes[memsim.SrcDDR] = uint64(memBytes)
	}
	for s := memsim.SrcL2; s <= memsim.SrcDDR; s++ {
		tr.Lines[s] = tr.Bytes[s] / 64
	}
	return tr, nil
}

// crossingBytes returns the bytes crossing the boundary below a cache
// of the given capacity. innermost marks the register/L1 micro-kernel
// boundary, whose reuse has a floor instead of thrash decay.
func (m DenseModel) crossingBytes(capBytes int64, innermost bool) float64 {
	fp := float64(m.FootprintBytes())
	if fp <= float64(capBytes) {
		// Fits: only compulsory traffic crosses.
		return fp
	}
	n := float64(m.N)
	if 12*n*n <= float64(capBytes) {
		// The re-swept panel (B plus active bands) is cache resident
		// even though the total footprint is not: no refetch traffic.
		return fp
	}
	nb := float64(min(m.NB, m.N))
	bFit := math.Sqrt(float64(capBytes) / 24) // 3 tiles of b² float64s
	bR := math.Min(nb, bFit)
	if !innermost && nb > bFit {
		bR = math.Max(8, bFit*bFit/nb) // thrash decay past capacity
	}
	if bR < 8 {
		bR = 8 // register micro-kernel floor
	}
	if bR > n {
		bR = n
	}
	// Tile streaming term: every flop touches operand tiles reused bR
	// ways, so bytes = flops·8/bR. The second term is the output-matrix
	// rewrite: tiled GEMM with the k-tile loop outside the j loop
	// re-streams C once per k-tile (16n³/nb); right-looking Cholesky
	// reads and writes the shrinking trailing matrix once per panel
	// (Σ(n−k·nb)²·16 ≈ 16n³/(3nb)).
	rewrite := 16 * n * n * (n/nb + 1)
	if m.Kind == DenseCholesky {
		rewrite = 16*n*n*n/(3*nb) + 16*n*n
	}
	return m.Flops()*8/bR + rewrite + fp
}
