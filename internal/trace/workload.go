// Package trace contains kernel access-stream generators: for each of
// the paper's kernels, a Workload that replays the kernel's memory
// behaviour (same loop nests, same blocking, same irregular index
// streams) through the memsim hierarchy simulator. Dense kernels
// (GEMM, Cholesky) additionally have an analytic tiled-traffic model
// (densemodel.go) used for the paper's large heat-map sweeps, which is
// cross-validated against the trace generators at small sizes.
package trace

import "repro/internal/memsim"

// Workload generates the simulated memory behaviour of one kernel run.
type Workload interface {
	// Name returns the kernel name (matches the paper's Table 2).
	Name() string
	// Flops returns the Table 2 operation count of one measured pass.
	Flops() float64
	// FootprintBytes estimates the simulated allocation size.
	FootprintBytes() int64
	// Simulate allocates buffers in sim, runs warm-up passes, resets
	// the traffic counters, and replays exactly one measured pass.
	Simulate(sim *memsim.Sim)
}

const (
	f64  = 8 // bytes per float64
	i32  = 4 // bytes per int32
	c128 = 16
)
