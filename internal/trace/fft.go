package trace

import (
	"repro/internal/fft"
	"repro/internal/memsim"
)

// FFT replays the paper's 3D-FFTW pass structure over a complex128
// array of shape (nz, ny, nx): a strided Y pass, a contiguous X pass
// and a strided Z pass, each reading and writing every element once
// (line transforms happen in cache). The strided passes are what makes
// large 3D FFTs bandwidth hungry.
type FFT struct {
	NX, NY, NZ int
}

// NewFFT builds a roughly cubic power-of-two 3D FFT whose complex
// array is close to footprint bytes at simulated scale.
func NewFFT(footprint int64) *FFT {
	// Pick the largest power-of-two cube ≤ footprint, then extend Z.
	n := 4
	for int64(n*2)*int64(n*2)*int64(n*2)*c128 <= footprint {
		n *= 2
	}
	nz := n
	for int64(n)*int64(n)*int64(nz*2)*c128 <= footprint {
		nz *= 2
	}
	return &FFT{NX: n, NY: n, NZ: nz}
}

// Name implements Workload.
func (w *FFT) Name() string { return "FFT" }

// Flops implements Workload (Table 2: 5·N·log2 N for the full 3D
// transform of N points).
func (w *FFT) Flops() float64 { return fft.Flops(w.NX * w.NY * w.NZ) }

// FootprintBytes implements Workload.
func (w *FFT) FootprintBytes() int64 {
	return int64(w.NX) * int64(w.NY) * int64(w.NZ) * c128
}

// Simulate implements Workload.
func (w *FFT) Simulate(sim *memsim.Sim) {
	nx, ny, nz := int64(w.NX), int64(w.NY), int64(w.NZ)
	data := sim.Alloc("data", nx*ny*nz*c128)
	elem := func(x, y, z int64) int64 { return ((z*ny+y)*nx + x) * c128 }

	yPass := func() {
		for z := int64(0); z < nz; z++ {
			for x := int64(0); x < nx; x++ {
				for y := int64(0); y < ny; y++ {
					data.Load(elem(x, y, z), c128)
				}
				for y := int64(0); y < ny; y++ {
					data.Store(elem(x, y, z), c128)
				}
			}
		}
	}
	xPass := func() {
		for z := int64(0); z < nz; z++ {
			for y := int64(0); y < ny; y++ {
				data.LoadLines(elem(0, y, z), nx*c128)
				data.StoreLines(elem(0, y, z), nx*c128)
			}
		}
	}
	zPass := func() {
		for y := int64(0); y < ny; y++ {
			for x := int64(0); x < nx; x++ {
				for z := int64(0); z < nz; z++ {
					data.Load(elem(x, y, z), c128)
				}
				for z := int64(0); z < nz; z++ {
					data.Store(elem(x, y, z), c128)
				}
			}
		}
	}
	// Warm-up: the plan/setup pass touches the array once.
	data.LoadLines(0, nx*ny*nz*c128)
	sim.ResetTraffic()
	yPass()
	xPass()
	zPass()
}
