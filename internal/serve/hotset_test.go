package serve

import (
	"fmt"
	"testing"
)

func TestHotSetLRUEviction(t *testing.T) {
	h := newHotSet(3)
	for i := 0; i < 3; i++ {
		h.add(fmt.Sprintf("d%d", i), hotEntry{data: []byte{byte(i)}})
	}
	// Touch d0 so d1 becomes the cold end.
	if _, ok := h.get("d0"); !ok {
		t.Fatal("d0 missing before eviction")
	}
	h.add("d3", hotEntry{data: []byte{3}})
	if _, ok := h.get("d1"); ok {
		t.Fatal("d1 should have been evicted as least recently used")
	}
	for _, d := range []string{"d0", "d2", "d3"} {
		if _, ok := h.get(d); !ok {
			t.Fatalf("%s missing after eviction", d)
		}
	}
	if h.len() != 3 {
		t.Fatalf("len = %d, want 3", h.len())
	}
}

func TestHotSetReplaceSemantics(t *testing.T) {
	// A refined entry always replaces a provisional one.
	h := newHotSet(4)
	h.add("d", hotEntry{data: []byte("twin"), estimator: "twin", provisional: true, errBound: 0.054})
	h.add("d", hotEntry{data: []byte("exact"), estimator: "exact"})
	e, ok := h.get("d")
	if !ok || e.provisional || string(e.data) != "exact" {
		t.Fatalf("refined entry did not replace provisional: %+v", e)
	}

	// A provisional entry never downgrades an existing refined one.
	h.add("d", hotEntry{data: []byte("twin"), estimator: "twin", provisional: true, errBound: 0.054})
	e, _ = h.get("d")
	if e.provisional || string(e.data) != "exact" {
		t.Fatalf("provisional entry downgraded refined one: %+v", e)
	}

	// A provisional entry may replace another provisional entry.
	h2 := newHotSet(4)
	h2.add("d", hotEntry{data: []byte("a"), provisional: true, errBound: 0.2})
	h2.add("d", hotEntry{data: []byte("b"), provisional: true, errBound: 0.1})
	e, _ = h2.get("d")
	if !e.provisional || string(e.data) != "b" || e.errBound != 0.1 {
		t.Fatalf("provisional-over-provisional replace failed: %+v", e)
	}
}

func TestHotSetDefaults(t *testing.T) {
	if got := newHotSet(0).cap; got != 4096 {
		t.Fatalf("default capacity = %d, want 4096", got)
	}
	if got := newHotSet(-5).cap; got != 4096 {
		t.Fatalf("negative capacity = %d, want 4096", got)
	}
	h := newHotSet(2)
	if _, ok := h.get("absent"); ok {
		t.Fatal("empty hot set reported a hit")
	}
}
