package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/memsim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// The catalog resolves a query onto the exact cell the batch figures
// journal: same digest layout (harness.CellDigest), same compute path
// (harness.CurveSpec.ComputeCell / Estimator.EstimateDense), same
// stored bytes — so a query warmed by an opmbench run is a store hit,
// and a cell computed by the daemon warms later opmbench runs.

// QueryRequest is the body of POST /v1/query and one element of
// POST /v1/sweep. The cell family is inferred: a kernel + footprint is
// a curve cell (Stream/Stencil/FFT), a kind + n + nb is a dense cell
// (GEMM/Cholesky).
type QueryRequest struct {
	Platform string `json:"platform"` // "broadwell" | "knl"
	Mode     string `json:"mode"`     // memsim mode label: ddr, edram, cache, flat, hybrid, edram-ms

	// Curve cells.
	Kernel    string `json:"kernel,omitempty"`          // Stream | Stencil | FFT
	Footprint int64  `json:"footprint_bytes,omitempty"` // paper-scale bytes

	// Dense cells.
	Kind string `json:"kind,omitempty"` // GEMM | Cholesky
	N    int    `json:"n,omitempty"`
	NB   int    `json:"nb,omitempty"`

	// Estimator selects the answering policy: exact (default), twin,
	// auto, or twin-first (answer from the twin within its calibrated
	// bound, refine to exact in the background).
	Estimator string `json:"estimator,omitempty"`
	// Class is the admission class ("interactive" default here,
	// "batch" on /v1/sweep).
	Class string `json:"class,omitempty"`
}

// QueryResponse is one answered cell.
type QueryResponse struct {
	Digest string `json:"digest"`
	Trace  string `json:"trace"`
	// Source is where the bytes came from: "hot" (memory), "store"
	// (journal), or "computed".
	Source string `json:"source"`
	// Estimator is the mode that produced the served value.
	Estimator string `json:"estimator"`
	// Refined is false only for a provisional twin-first answer whose
	// background exact computation has not landed yet.
	Refined bool `json:"refined"`
	// ErrBound is the calibrated family error bound a provisional
	// answer carries (fraction; 0 when Refined).
	ErrBound float64 `json:"err_bound,omitempty"`

	GFlops    float64 `json:"gflops"`
	AppGBs    float64 `json:"app_gbs,omitempty"` // curve cells: application-level GB/s
	Footprint int64   `json:"footprint_bytes,omitempty"`

	// Cell is the full cell payload, byte-for-byte as journaled.
	Cell json.RawMessage `json:"cell"`
}

// cell is one resolved query target: enough identity to derive the
// digest under any estimator, plus the compute and render hooks.
type cell struct {
	family  string // store sweep family before estimator namespacing
	cfgHash string
	key     string
	// kernelFamily is the twin calibration family (twin.Family input).
	kernelName string
	mode       memsim.Mode

	compute func(ctx context.Context, w *sweep.Worker, est core.Estimator) (any, error)
	render  func(data []byte, resp *QueryResponse) error
}

// digestFor returns the store digest of this cell under est —
// estimator separation included, byte-compatible with the batch
// sweeps' cacheFor.
func (c *cell) digestFor(est core.Estimator) string {
	return harness.CellDigest(est, c.family, c.cfgHash, c.key)
}

// expFor returns the provenance family label Put records (the
// estimator-namespaced sweep family, as batch sweeps record it).
func (c *cell) expFor(est core.Estimator) string {
	return harness.CellFamilyID(est, c.family)
}

// catalog caches per-platform curve specs (machine construction is
// cheap but the spec pins identity; one instance per platform keeps
// config hashing consistent and contention-free).
type catalog struct {
	mu    sync.Mutex
	specs map[string]*harness.CurveSpec
}

func newCatalog() *catalog {
	return &catalog{specs: map[string]*harness.CurveSpec{}}
}

func (c *catalog) spec(platform string) (*harness.CurveSpec, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.specs[platform]; ok {
		return s, nil
	}
	s, err := harness.NewCurveSpec(platform)
	if err != nil {
		return nil, err
	}
	c.specs[platform] = s
	return s, nil
}

// resolve maps a request onto its cell, validating platform, mode and
// parameters. eng is the engine estimators run under.
func (c *catalog) resolve(req QueryRequest, eng *sweep.Engine) (*cell, error) {
	spec, err := c.spec(req.Platform)
	if err != nil {
		return nil, err
	}
	mode, err := memsim.ParseMode(req.Mode)
	if err != nil {
		return nil, err
	}
	mach, ok := spec.Machine(mode)
	if !ok {
		return nil, fmt.Errorf("serve: platform %q does not run mode %q", req.Platform, req.Mode)
	}

	switch {
	case req.Kernel != "" && req.Kind == "":
		if req.Footprint <= 0 {
			return nil, fmt.Errorf("serve: curve query needs a positive footprint_bytes, got %d", req.Footprint)
		}
		if _, err := spec.Workload(req.Kernel, req.Footprint); err != nil {
			return nil, err
		}
		kernel, fp := req.Kernel, req.Footprint
		return &cell{
			family:     harness.CurveSweepID(kernel),
			cfgHash:    spec.ConfigHash(),
			key:        harness.CurveCellKey(fp),
			kernelName: kernel,
			mode:       mode,
			compute: func(ctx context.Context, w *sweep.Worker, est core.Estimator) (any, error) {
				return spec.ComputeCell(ctx, eng, w, est, kernel, fp)
			},
			render: func(data []byte, resp *QueryResponse) error {
				var pt harness.CurvePoint
				if err := json.Unmarshal(data, &pt); err != nil {
					return fmt.Errorf("serve: decoding curve cell: %w", err)
				}
				resp.GFlops = pt.GFlops[mode]
				resp.AppGBs = pt.GBs[mode]
				resp.Footprint = pt.Footprint
				return nil
			},
		}, nil

	case req.Kind != "" && req.Kernel == "":
		var kind trace.DenseKind
		switch req.Kind {
		case "GEMM":
			kind = trace.DenseGEMM
		case "Cholesky":
			kind = trace.DenseCholesky
		default:
			return nil, fmt.Errorf("serve: unknown dense kind %q (want GEMM or Cholesky)", req.Kind)
		}
		if req.N <= 0 || req.NB <= 0 || req.NB > req.N {
			return nil, fmt.Errorf("serve: dense query needs 0 < nb <= n, got n=%d nb=%d", req.N, req.NB)
		}
		j := core.DenseJob{Machine: mach, Kind: kind, N: req.N, NB: req.NB}
		return &cell{
			family:     harness.DenseSweepID,
			cfgHash:    "",
			key:        harness.DenseKey(j),
			kernelName: kind.String(),
			mode:       mode,
			compute: func(ctx context.Context, w *sweep.Worker, est core.Estimator) (any, error) {
				_ = w // dense cells are analytic; no pooled simulator involved
				return est.EstimateDense(ctx, eng, j, core.DenseCellKey(j))
			},
			render: func(data []byte, resp *QueryResponse) error {
				var r memsim.Result
				if err := json.Unmarshal(data, &r); err != nil {
					return fmt.Errorf("serve: decoding dense cell: %w", err)
				}
				resp.GFlops = r.GFlops
				resp.Footprint = r.FootprintBytes
				return nil
			},
		}, nil
	}
	return nil, fmt.Errorf("serve: query must name either a curve kernel (kernel + footprint_bytes) or a dense cell (kind + n + nb)")
}
