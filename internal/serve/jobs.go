package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// POST /v1/sweep accepts a batch of queries, answers them
// asynchronously under the "batch" admission class, and returns a job
// ID to poll on GET /v1/jobs/{id}. Batch cells run through exactly the
// same serving path as single queries — hot set, journal, admission,
// router — so a sweep re-requesting warm cells costs memory lookups.

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	Queries []QueryRequest `json:"queries"`
	// Class overrides the admission class for every cell (default
	// "batch").
	Class string `json:"class,omitempty"`
}

// JobStatus is the poll view of one batch job.
type JobStatus struct {
	ID      string           `json:"id"`
	State   string           `json:"state"` // "running" | "done"
	Total   int              `json:"total"`
	Done    int              `json:"done"`
	Failed  int              `json:"failed"`
	Results []*QueryResponse `json:"results,omitempty"` // per query; nil where errored
	Errors  []string         `json:"errors,omitempty"`  // per query; "" where ok
}

// jobTable tracks batch jobs, retaining the most recent `keep`
// finished ones.
type jobTable struct {
	mu       sync.Mutex
	next     int
	jobs     map[string]*JobStatus
	finished []string // FIFO of done job IDs for eviction
	keep     int
}

func newJobTable(keep int) *jobTable {
	if keep < 1 {
		keep = 1
	}
	return &jobTable{jobs: map[string]*JobStatus{}, keep: keep}
}

func (t *jobTable) create(total int) *JobStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	j := &JobStatus{
		ID:      fmt.Sprintf("job-%d", t.next),
		State:   "running",
		Total:   total,
		Results: make([]*QueryResponse, total),
		Errors:  make([]string, total),
	}
	t.jobs[j.ID] = j
	return j
}

// update records one cell's outcome under the table lock.
func (t *jobTable) update(j *JobStatus, i int, resp *QueryResponse, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j.Done++
	if err != nil {
		j.Failed++
		j.Errors[i] = err.Error()
	} else {
		j.Results[i] = resp
	}
}

// finish marks a job done and evicts the oldest finished jobs past
// the retention bound.
func (t *jobTable) finish(j *JobStatus) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j.State = "done"
	t.finished = append(t.finished, j.ID)
	for len(t.finished) > t.keep {
		delete(t.jobs, t.finished[0])
		t.finished = t.finished[1:]
	}
}

// get returns a deep-enough copy to render without racing updates.
func (t *jobTable) get(id string) (JobStatus, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	cp := *j
	cp.Results = append([]*QueryResponse(nil), j.Results...)
	cp.Errors = append([]string(nil), j.Errors...)
	return cp, true
}

func (t *jobTable) counts() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	running := 0
	for _, j := range t.jobs {
		if j.State == "running" {
			running++
		}
	}
	return map[string]int{"tracked": len(t.jobs), "running": running}
}

// handleSweep accepts a batch and answers it asynchronously.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !s.begin() {
		httpError(w, http.StatusServiceUnavailable, errors.New("serve: draining"))
		return
	}
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.done()
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding sweep: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		s.done()
		httpError(w, http.StatusBadRequest, errors.New("serve: sweep needs at least one query"))
		return
	}
	class := req.Class
	if class == "" {
		class = "batch"
	}
	job := s.jobs.create(len(req.Queries))
	s.reg.Counter("serve/sweeps").Inc()
	// The accepted batch holds its drain slot until every cell is
	// answered — graceful shutdown never abandons an accepted sweep.
	// Cells run under the server's base context, not the HTTP request's
	// (the response is already gone), so an interrupted Drain can still
	// cancel a half-finished batch instead of leaking it.
	go func() {
		defer s.done()
		defer s.jobs.finish(job)
		for i, q := range req.Queries {
			q.Class = class
			resp, err := s.answer(s.base, q)
			s.jobs.update(job, i, resp, err)
		}
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"job": job.ID})
}

// handleJob reports a batch job's progress and results.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, j)
}
