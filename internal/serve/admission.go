package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Token-bucket admission control with per-class rates and a bounded
// wait queue. A request that finds no token either waits (FIFO by
// reservation: tokens go negative, each waiter sleeps until its
// reserved refill instant) or, when the queue is full, is rejected
// with an OverloadError carrying the Retry-After hint. Classes are
// independent buckets, so batch traffic cannot starve interactive
// queries and background refinements cannot starve either.

// ClassConfig is one admission class's token bucket.
type ClassConfig struct {
	// Rate is the steady-state admission rate in requests per second.
	Rate float64
	// Burst is the bucket depth: how many requests can be admitted
	// instantly from a full bucket.
	Burst int
	// Queue bounds how many requests may wait for a token at once;
	// arrivals beyond it are rejected immediately with 429.
	Queue int
}

// DefaultClasses returns the admission classes the daemon starts
// with. "interactive" is /v1/query's default, "batch" is /v1/sweep's,
// and "refine" meters background twin-first refinements so they never
// crowd out foreground traffic.
func DefaultClasses() map[string]ClassConfig {
	return map[string]ClassConfig{
		"interactive": {Rate: 200, Burst: 50, Queue: 64},
		"batch":       {Rate: 50, Burst: 16, Queue: 256},
		"refine":      {Rate: 25, Burst: 8, Queue: 1024},
	}
}

// OverloadError is an admission rejection: the class's wait queue is
// full. RetryAfter estimates when a retry could be queued.
type OverloadError struct {
	Class      string
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: admission overload on class %q, retry after %s", e.Class, e.RetryAfter)
}

// bucket is one class's token bucket. nowNS and sleep are test seams.
type bucket struct {
	mu      sync.Mutex
	rate    float64 // tokens per second (> 0)
	burst   float64
	queue   int
	tokens  float64
	lastNS  int64
	waiting int
	nowNS   func() int64
	sleep   func(context.Context, time.Duration) error
}

func (b *bucket) refillLocked() {
	now := b.nowNS()
	if elapsed := now - b.lastNS; elapsed > 0 {
		b.tokens += float64(elapsed) / 1e9 * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.lastNS = now
}

// acquire takes one token, waiting its reserved share of the refill
// when the bucket is empty. It returns the time spent queued. A full
// queue returns *OverloadError without waiting; a context cancellation
// mid-wait returns the reservation to the bucket and the ctx error.
func (b *bucket) acquire(ctx context.Context, class string) (time.Duration, error) {
	b.mu.Lock()
	b.refillLocked()
	if b.tokens >= 1 {
		b.tokens--
		b.mu.Unlock()
		return 0, nil
	}
	if b.waiting >= b.queue {
		// Retry-After: when the backlog will have drained one slot.
		need := float64(b.waiting+1) - b.tokens
		b.mu.Unlock()
		return 0, &OverloadError{Class: class,
			RetryAfter: time.Duration(need / b.rate * float64(time.Second))}
	}
	// Reserve: tokens go negative; this waiter owns the refill instant
	// at which they return to zero on its behalf. FIFO by arrival
	// under the lock.
	b.waiting++
	b.tokens--
	wait := time.Duration(-b.tokens / b.rate * float64(time.Second))
	b.mu.Unlock()

	err := b.sleep(ctx, wait)
	b.mu.Lock()
	b.waiting--
	if err != nil {
		b.tokens++ // cancelled: hand the reservation back
	}
	b.mu.Unlock()
	if err != nil {
		return wait, err
	}
	return wait, nil
}

// admission is the per-class bucket set.
type admission struct {
	classes map[string]*bucket
}

func newAdmission(classes map[string]ClassConfig) (*admission, error) {
	if len(classes) == 0 {
		classes = DefaultClasses()
	}
	a := &admission{classes: make(map[string]*bucket, len(classes))}
	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := classes[name]
		if !validClassName(name) {
			return nil, fmt.Errorf("serve: admission class name %q must be non-empty [a-z0-9_-] (it names the class's serve/latency metric)", name)
		}
		if c.Rate <= 0 {
			return nil, fmt.Errorf("serve: admission class %q needs a positive rate, got %g", name, c.Rate)
		}
		if c.Burst < 1 {
			c.Burst = 1
		}
		if c.Queue < 0 {
			c.Queue = 0
		}
		a.classes[name] = &bucket{
			rate:   c.Rate,
			burst:  float64(c.Burst),
			queue:  c.Queue,
			tokens: float64(c.Burst),
			nowNS: func() int64 {
				return time.Now().UnixNano() //opmlint:allow determinism — admission pacing is wall-clock policy, never an input to results
			},
			sleep: sleepCtx,
		}
	}
	return a, nil
}

// validClassName bounds class names to metric-safe tokens: each class
// mints a serve/latency/<class> histogram, so the name set must stay
// closed and exposition-clean.
func validClassName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// names returns the configured class names, sorted.
func (a *admission) names() []string {
	out := make([]string, 0, len(a.classes))
	for name := range a.classes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// has reports whether class is configured. Serving paths use it to
// keep client-supplied class strings from minting metric names.
func (a *admission) has(class string) bool {
	_, ok := a.classes[class]
	return ok
}

// acquire admits one request under class, blocking in the class's wait
// queue if needed. Unknown classes are rejected outright — the class
// set is server configuration, not client input to expand.
func (a *admission) acquire(ctx context.Context, class string) (time.Duration, error) {
	b, ok := a.classes[class]
	if !ok {
		return 0, fmt.Errorf("serve: unknown admission class %q", class)
	}
	return b.acquire(ctx, class)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
