package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// TestServeClassLatencyHistograms covers the per-class SLO surface:
// every admission class's serve/latency/<class> histogram is
// pre-registered at New (so the first Prometheus scrape carries the
// full roster), traffic lands in its class's histogram, and a
// client-typo'd class on a hot-set hit mints no metric name.
func TestServeClassLatencyHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := store.Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := New(Config{Store: st, Registry: reg, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	// Pre-registration: all three default classes are on /metrics/prom
	// before any request, each with a zero count.
	w := getPath(t, h, "/metrics/prom")
	if w.Code != http.StatusOK {
		t.Fatalf("prom scrape status %d", w.Code)
	}
	body := w.Body.String()
	for _, class := range []string{"interactive", "batch", "refine"} {
		mn := "opm_serve_latency_" + class + "_seconds"
		if !strings.Contains(body, mn+"_count 0") {
			t.Fatalf("first scrape missing pre-registered %s_count 0:\n%s", mn, body)
		}
	}

	// One interactive query (the default class) lands one observation.
	q := QueryRequest{Platform: "broadwell", Mode: "ddr", Kind: "GEMM", N: 1024, NB: 128}
	decodeQuery(t, postQuery(t, h, "/v1/query", q))
	if n := reg.Histogram("serve/latency/interactive").Count(); n != 1 {
		t.Fatalf("serve/latency/interactive count = %d, want 1", n)
	}
	if n := reg.Histogram("serve/latency/batch").Count(); n != 0 {
		t.Fatalf("serve/latency/batch count = %d, want 0", n)
	}

	// A hot-set hit under an unknown class serves fine (it never
	// reaches admission) but must not mint a histogram from the typo.
	q.Class = "interactiv"
	if r := decodeQuery(t, postQuery(t, h, "/v1/query", q)); r.Source != "hot" {
		t.Fatalf("repeat source %q, want hot", r.Source)
	}
	if _, ok := reg.Snapshot().Histograms["serve/latency/interactiv"]; ok {
		t.Fatal("client-supplied class minted a histogram name")
	}
}

// TestServeRefineClassLatency checks the background refinement path
// reports into serve/latency/refine — the class a dashboard watches to
// see twin-first debt being paid down.
func TestServeRefineClassLatency(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := store.Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := New(Config{Store: st, Registry: reg, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	q := QueryRequest{Platform: "broadwell", Mode: "edram", Kernel: "Stream",
		Footprint: 1 << 20, Estimator: "twin-first"}
	decodeQuery(t, postQuery(t, h, "/v1/query", q))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.WaitRefinements(ctx); err != nil {
		t.Fatal(err)
	}
	if n := reg.Histogram("serve/latency/refine").Count(); n != 1 {
		t.Fatalf("serve/latency/refine count = %d, want 1", n)
	}
}

// TestServeAdmissionClassNames checks the validation guarding the
// metric namespace: class names become serve/latency/<class>
// histograms, so New refuses names that are empty or carry
// exposition-hostile characters.
func TestServeAdmissionClassNames(t *testing.T) {
	for _, bad := range []string{"", "Interactive", "a b", "x/y", `q"q`} {
		_, err := New(Config{Classes: map[string]ClassConfig{bad: {Rate: 1}}})
		if err == nil {
			t.Fatalf("class name %q accepted", bad)
		}
	}
	if _, err := New(Config{Classes: map[string]ClassConfig{"gpu-batch_2": {Rate: 1}}}); err != nil {
		t.Fatalf("valid class name rejected: %v", err)
	}
}
