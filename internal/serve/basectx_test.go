package serve

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// Regression tests for the background-work context plumbing the
// ctxflow check surfaced: batch sweep jobs and twin-first refinements
// used to run under context.Background(), so a Drain that gave up left
// them computing headless forever, and workerPool.run could block on a
// full shard queue with no way to abandon the wait.

// TestWorkerPoolRunCancelledBeforeEnqueue proves a cancelled caller
// never dispatches: fn must not run and the shard loads stay balanced.
func TestWorkerPoolRunCancelledBeforeEnqueue(t *testing.T) {
	pool := newWorkerPool(2, &roundRobinRouter{})
	defer pool.close(context.Background()) //nolint:errcheck

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := pool.run(ctx, "k", func(w *sweep.Worker) {
		t.Error("fn ran under a cancelled context")
	})
	if err == nil {
		t.Fatal("run with cancelled context returned nil error")
	}
	for i, l := range pool.snapshot() {
		if l != 0 {
			t.Fatalf("shard %d load %d after cancelled run, want 0", i, l)
		}
	}
}

// TestDrainInterruptedCancelsBase proves the leak fix: when Drain's
// ctx expires with work still in flight, the server cancels its base
// context so background sweeps and refinements stop at their next
// context check instead of running forever.
func TestDrainInterruptedCancelsBase(t *testing.T) {
	srv, err := New(Config{Registry: obs.NewRegistry(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !srv.begin() {
		t.Fatal("begin refused before drain")
	}
	defer srv.done()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("interrupted drain returned nil error")
	}
	select {
	case <-srv.base.Done():
	default:
		t.Fatal("interrupted drain left the base context alive — background work would leak")
	}
	// Work holding its drain slot now observes cancellation wherever it
	// threads s.base — the pool refuses before dispatch.
	if _, err := srv.pool.run(srv.base, "k", func(w *sweep.Worker) {
		t.Error("dispatched after base cancellation")
	}); err == nil {
		t.Fatal("pool.run under cancelled base returned nil error")
	}
}

// TestDrainCleanShutsPoolAndBase proves the orderly path: an
// uncontested drain closes the worker pool within its ctx and also
// releases the base context (nothing should outlive a drained server).
func TestDrainCleanShutsPoolAndBase(t *testing.T) {
	srv, err := New(Config{Registry: obs.NewRegistry(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("clean drain: %v", err)
	}
	select {
	case <-srv.base.Done():
	default:
		t.Fatal("drained server left its base context alive")
	}
}

// TestConfigBaseContextPropagates proves the owner's injected root
// reaches background work: cancelling it cancels the derived base.
func TestConfigBaseContextPropagates(t *testing.T) {
	root, cancel := context.WithCancel(context.Background())
	srv, err := New(Config{Registry: obs.NewRegistry(), Workers: 1, BaseContext: root})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.base.Done():
		t.Fatal("base cancelled before its root")
	default:
	}
	cancel()
	<-srv.base.Done()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain after root cancellation: %v", err)
	}
}
