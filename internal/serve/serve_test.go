package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/twin"
)

// postQuery drives one request through the daemon's real mux.
func postQuery(t testing.TB, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", path, bytes.NewReader(buf)))
	return w
}

func getPath(t testing.TB, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

func decodeQuery(t *testing.T, w *httptest.ResponseRecorder) *QueryResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("query status %d: %s", w.Code, w.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return &resp
}

// traceNames returns the event-name multiset of one trace chain, seen
// after a seq watermark.
func traceNames(tr *obs.Tracer, trace string, afterSeq uint64) map[string]int {
	names := map[string]int{}
	for _, ev := range tr.Events() {
		if ev.Trace == trace && ev.Seq > afterSeq {
			names[ev.Name]++
		}
	}
	return names
}

func maxSeq(tr *obs.Tracer) uint64 {
	var max uint64
	for _, ev := range tr.Events() {
		if ev.Seq > max {
			max = ev.Seq
		}
	}
	return max
}

// TestServeColdThenHotThenStore proves acceptance (a) and the serve
// half of (b): a cold query computes through admission + router +
// pool, journals under the exact digest the batch sweeps derive, and
// returns byte-for-byte the value the batch per-job body computes; a
// repeat is a hot-set hit whose trace chain shows it never touched the
// journal or the pool; a fresh daemon over the same journal serves the
// same bytes as a store hit without computing.
func TestServeColdThenHotThenStore(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	st, err := store.Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := New(Config{Store: st, Registry: reg, Tracer: tr, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	const fp = int64(1 << 20)
	q := QueryRequest{Platform: "broadwell", Mode: "edram", Kernel: "Stream", Footprint: fp}
	r1 := decodeQuery(t, postQuery(t, h, "/v1/query", q))
	if r1.Source != "computed" || !r1.Refined || r1.Estimator != "exact" {
		t.Fatalf("cold answer = source %q estimator %q refined %v", r1.Source, r1.Estimator, r1.Refined)
	}
	if r1.GFlops <= 0 || r1.AppGBs <= 0 || r1.Footprint <= 0 {
		t.Fatalf("cold answer rendered empty cell: %+v", r1)
	}

	// The digest is exactly the one batch sweeps derive for this cell,
	// so opmbench runs and the daemon warm each other.
	spec, err := harness.NewCurveSpec("broadwell")
	if err != nil {
		t.Fatal(err)
	}
	wantDigest := harness.CellDigest(core.Exact, harness.CurveSweepID("Stream"),
		spec.ConfigHash(), harness.CurveCellKey(fp))
	if r1.Digest != wantDigest {
		t.Fatalf("digest %q, want batch digest %q", r1.Digest, wantDigest)
	}
	if r1.Trace != harness.CellTraceID(wantDigest) {
		t.Fatalf("trace %q, want cell trace %q", r1.Trace, harness.CellTraceID(wantDigest))
	}

	// The journaled bytes are the response bytes...
	raw, ok := st.GetRaw(wantDigest)
	if !ok {
		t.Fatal("cold compute did not journal the cell")
	}
	if !bytes.Equal(raw, r1.Cell) {
		t.Fatalf("journal bytes differ from served cell:\n%s\n%s", raw, r1.Cell)
	}
	// ...and identical to what the batch per-job body (the exact
	// closure runCurves hands to sweep.MapCached) computes and the
	// store cache would marshal.
	pt, err := spec.ComputeCell(context.Background(), &sweep.Engine{}, sweep.NewWorker(0),
		core.Exact, "Stream", fp)
	if err != nil {
		t.Fatal(err)
	}
	batchBytes, err := json.Marshal(pt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batchBytes, r1.Cell) {
		t.Fatalf("served cell differs from batch-computed cell:\n%s\n%s", batchBytes, r1.Cell)
	}

	// The cold chain has the canonical batch shape plus the serve
	// prologue — opmprof reads it natively.
	coldNames := traceNames(tr, r1.Trace, 0)
	for _, ev := range []string{obs.EvServeRecv, obs.EvAdmit, obs.EvEnqueue, obs.EvDispatch,
		obs.EvStoreCommit, obs.EvDone, obs.EvRoute} {
		if coldNames[ev] == 0 {
			t.Fatalf("cold chain missing %s (chain: %v)", ev, coldNames)
		}
	}

	// Acceptance (a): the repeat is a hot-set hit that bypasses the
	// journal and the pool. Counters and the trace chain both show it.
	watermark := maxSeq(tr)
	storeBefore := st.Stats()
	r2 := decodeQuery(t, postQuery(t, h, "/v1/query", q))
	if r2.Source != "hot" {
		t.Fatalf("repeat source %q, want hot", r2.Source)
	}
	if !bytes.Equal(r2.Cell, r1.Cell) || r2.Digest != r1.Digest {
		t.Fatal("hot hit served different bytes or digest")
	}
	if hits := reg.Counter("serve/hits").Value(); hits != 1 {
		t.Fatalf("serve/hits = %d, want 1", hits)
	}
	if after := st.Stats(); after.Hits != storeBefore.Hits || after.Misses != storeBefore.Misses {
		t.Fatalf("hot hit touched the journal: %+v → %+v", storeBefore, after)
	}
	hotNames := traceNames(tr, r2.Trace, watermark)
	if hotNames[obs.EvServeRecv] != 1 || hotNames[obs.EvServeHot] != 1 || len(hotNames) != 2 {
		t.Fatalf("hot chain = %v, want exactly {serve/recv, serve/hot_hit}", hotNames)
	}

	// A fresh daemon over the same journal answers from the store
	// (promoting into its hot set) without computing.
	reg2 := obs.NewRegistry()
	tr2 := obs.NewTracer(0)
	srv2, err := New(Config{Store: st, Registry: reg2, Tracer: tr2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r3 := decodeQuery(t, postQuery(t, srv2.Handler(), "/v1/query", q))
	if r3.Source != "store" || !bytes.Equal(r3.Cell, r1.Cell) {
		t.Fatalf("fresh daemon source %q, want store hit with identical bytes", r3.Source)
	}
	storeNames := traceNames(tr2, r3.Trace, 0)
	if storeNames[obs.EvEnqueue] != 0 || storeNames[obs.EvDispatch] != 0 {
		t.Fatalf("store hit reached the pool: %v", storeNames)
	}
	if reg2.Counter("serve/store_hits").Value() != 1 || reg2.Counter("serve/computed").Value() != 0 {
		t.Fatal("store hit miscounted or recomputed")
	}
}

// TestServeAnswersBatchJournaledCells proves the batch half of
// acceptance (b): cells journaled by a real opmbench figure run (fig12
// through harness.Get, here under the analytic twin so the sweep runs
// in milliseconds) are store hits for the daemon at every footprint of
// the figure's grid, byte-for-byte.
func TestServeAnswersBatchJournaledCells(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := store.Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	opt := harness.Options{Store: st, Estimator: twin.Estimator{}, CurvePoints: 4, Workers: 2}
	exp, err := harness.Get("fig12") // Stream on Broadwell
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background(), opt); err != nil {
		t.Fatal(err)
	}

	srv, err := New(Config{Store: st, Registry: reg, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	spec, err := harness.NewCurveSpec("broadwell")
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range spec.Footprints(opt) {
		q := QueryRequest{Platform: "broadwell", Mode: "ddr", Kernel: "Stream",
			Footprint: fp, Estimator: "twin"}
		resp := decodeQuery(t, postQuery(t, h, "/v1/query", q))
		if resp.Source != "store" {
			t.Fatalf("fp %d: source %q, want store hit on the batch-journaled cell", fp, resp.Source)
		}
		if resp.Estimator != "twin" || resp.GFlops <= 0 {
			t.Fatalf("fp %d: estimator %q gflops %g", fp, resp.Estimator, resp.GFlops)
		}
		raw, ok := st.GetRaw(resp.Digest)
		if !ok || !bytes.Equal(raw, resp.Cell) {
			t.Fatalf("fp %d: served bytes differ from the journal", fp)
		}
	}
	if reg.Counter("serve/computed").Value() != 0 {
		t.Fatal("daemon recomputed cells the batch run had journaled")
	}
}

// TestServeOverloadRejects proves the 429 half of acceptance (c): past
// the burst with a zero-length wait queue, admission rejects with 429
// and a Retry-After hint.
func TestServeOverloadRejects(t *testing.T) {
	reg := obs.NewRegistry()
	classes := map[string]ClassConfig{"interactive": {Rate: 0.1, Burst: 1, Queue: 0}}
	srv, err := New(Config{Registry: reg, Classes: classes, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	q := QueryRequest{Platform: "broadwell", Mode: "ddr", Kind: "GEMM", N: 1024, NB: 128}
	if w := postQuery(t, h, "/v1/query", q); w.Code != http.StatusOK {
		t.Fatalf("burst-admitted query status %d: %s", w.Code, w.Body)
	}

	q.N = 2048 // a different cell, so the hot set cannot answer it
	w := postQuery(t, h, "/v1/query", q)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429 (%s)", w.Code, w.Body)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", w.Header().Get("Retry-After"))
	}
	if reg.Counter("serve/rejected").Value() != 1 {
		t.Fatalf("serve/rejected = %d, want 1", reg.Counter("serve/rejected").Value())
	}
}

// TestServeGracefulDrainLosesNothing proves the drain half of
// acceptance (c): requests accepted before Drain — including ones
// still waiting in the admission queue — all complete with 200 and
// reach the journal; requests after Drain get 503.
func TestServeGracefulDrainLosesNothing(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := store.Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Rate 5/s with burst 1 forces five of the six requests to queue,
	// so Drain provably overlaps waiting admissions.
	classes := map[string]ClassConfig{"interactive": {Rate: 5, Burst: 1, Queue: 16}}
	srv, err := New(Config{Store: st, Registry: reg, Classes: classes, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	const n = 6
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			q := QueryRequest{Platform: "broadwell", Mode: "ddr", Kind: "GEMM",
				N: 512 * (i + 1), NB: 128}
			codes <- postQuery(t, h, "/v1/query", q).Code
		}(i)
	}

	// Wait until every request is accepted (admitted or queued), then
	// drain while the queue is still paying out tokens.
	b := srv.adm.classes["interactive"]
	deadline := time.Now().Add(10 * time.Second)
	for {
		b.mu.Lock()
		waiting := b.waiting
		b.mu.Unlock()
		if reg.Counter("serve/admitted").Value()+int64(waiting) >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("requests never reached admission")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < n; i++ {
		if c := <-codes; c != http.StatusOK {
			t.Fatalf("accepted request lost to drain: status %d", c)
		}
	}
	if st.Len() != n {
		t.Fatalf("journal holds %d cells after drain, want all %d accepted requests", st.Len(), n)
	}

	// Once draining, new work is refused and health flips.
	q := QueryRequest{Platform: "broadwell", Mode: "ddr", Kind: "GEMM", N: 8192, NB: 128}
	if w := postQuery(t, h, "/v1/query", q); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query status %d, want 503", w.Code)
	}
	if w := getPath(t, h, "/v1/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", w.Code)
	}
}

// TestServeTwinFirstRefines proves acceptance (d): a twin-first answer
// carries the family's calibrated error bound and is flagged
// unrefined; the journal holds the twin value only under its own twin
// digest; after the background refinement commits, the same exact
// digest serves the exact value, refined.
func TestServeTwinFirstRefines(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(0)
	st, err := store.Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := New(Config{Store: st, Registry: reg, Tracer: tr, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	const fp = int64(1 << 20)
	q := QueryRequest{Platform: "broadwell", Mode: "edram", Kernel: "Stream",
		Footprint: fp, Estimator: "twin-first"}
	r1 := decodeQuery(t, postQuery(t, h, "/v1/query", q))
	if r1.Source != "computed" || r1.Estimator != "twin" || r1.Refined {
		t.Fatalf("twin-first answer = source %q estimator %q refined %v", r1.Source, r1.Estimator, r1.Refined)
	}
	if want := twin.DefaultBounds()[twin.Family("Stream")]; r1.ErrBound != want {
		t.Fatalf("err_bound %g, want calibrated stream bound %g", r1.ErrBound, want)
	}

	spec, err := harness.NewCurveSpec("broadwell")
	if err != nil {
		t.Fatal(err)
	}
	exactDigest := harness.CellDigest(core.Exact, harness.CurveSweepID("Stream"),
		spec.ConfigHash(), harness.CurveCellKey(fp))
	twinDigest := harness.CellDigest(twin.Estimator{}, harness.CurveSweepID("Stream"),
		spec.ConfigHash(), harness.CurveCellKey(fp))
	if r1.Digest != exactDigest {
		t.Fatalf("twin-first answered under %q, want the exact digest %q", r1.Digest, exactDigest)
	}
	if twinDigest == exactDigest {
		t.Fatal("estimator separation lost: twin and exact digests collide")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.WaitRefinements(ctx); err != nil {
		t.Fatalf("refinement never finished: %v", err)
	}
	if v := reg.Counter("serve/refinements").Value(); v != 1 {
		t.Fatalf("serve/refinements = %d, want 1", v)
	}

	// DESIGN §11: the journal holds the twin bytes under the twin
	// digest and the exact bytes under the exact digest — never aliased.
	twinRaw, ok := st.GetRaw(twinDigest)
	if !ok || !bytes.Equal(twinRaw, r1.Cell) {
		t.Fatal("twin value not journaled under its own twin digest")
	}
	exactRaw, ok := st.GetRaw(exactDigest)
	if !ok {
		t.Fatal("refinement did not journal the exact cell")
	}
	if bytes.Equal(exactRaw, twinRaw) {
		t.Fatal("exact digest holds twin bytes")
	}

	// The same digest now serves the exact value, refined.
	r2 := decodeQuery(t, postQuery(t, h, "/v1/query", q))
	if r2.Digest != r1.Digest {
		t.Fatalf("refined answer moved digests: %q → %q", r1.Digest, r2.Digest)
	}
	if r2.Source != "hot" || r2.Estimator != "exact" || !r2.Refined || r2.ErrBound != 0 {
		t.Fatalf("post-refinement answer = source %q estimator %q refined %v bound %g",
			r2.Source, r2.Estimator, r2.Refined, r2.ErrBound)
	}
	if !bytes.Equal(r2.Cell, exactRaw) {
		t.Fatal("post-refinement answer differs from the journaled exact cell")
	}
	if names := traceNames(tr, r1.Trace, 0); names[obs.EvRefine] != 1 {
		t.Fatalf("refinement chain missing %s: %v", obs.EvRefine, names)
	}
}

// TestServeSweepJobs covers the async batch endpoint: accepted sweeps
// answer every cell through the same serving path and report through
// the job table; unknown jobs 404.
func TestServeSweepJobs(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := New(Config{Registry: reg, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	req := SweepRequest{Queries: []QueryRequest{
		{Platform: "broadwell", Mode: "ddr", Kind: "GEMM", N: 1024, NB: 128},
		{Platform: "broadwell", Mode: "edram", Kind: "Cholesky", N: 1024, NB: 256},
	}}
	w := postQuery(t, h, "/v1/sweep", req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("sweep status %d: %s", w.Code, w.Body)
	}
	var acc map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	id := acc["job"]
	if id == "" {
		t.Fatal("sweep returned no job ID")
	}

	var job JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		w := getPath(t, h, "/v1/jobs/"+id)
		if w.Code != http.StatusOK {
			t.Fatalf("job poll status %d: %s", w.Code, w.Body)
		}
		if err := json.Unmarshal(w.Body.Bytes(), &job); err != nil {
			t.Fatal(err)
		}
		if job.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", job)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if job.Total != 2 || job.Done != 2 || job.Failed != 0 {
		t.Fatalf("job = %+v, want 2/2 done, 0 failed", job)
	}
	for i, r := range job.Results {
		if r == nil || r.GFlops <= 0 {
			t.Fatalf("result %d empty: %+v", i, r)
		}
	}
	if w := getPath(t, h, "/v1/jobs/job-404"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", w.Code)
	}

	// A repeat sweep answers from the hot set the first one filled.
	decodeQuery(t, postQuery(t, h, "/v1/query", req.Queries[0]))
	if reg.Counter("serve/hits").Value() == 0 {
		t.Fatal("sweep results did not warm the hot set")
	}
}

// TestServeBadRequests pins the 400 surface: malformed shapes are
// rejected before touching admission or the pool.
func TestServeBadRequests(t *testing.T) {
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	for name, q := range map[string]QueryRequest{
		"unknown estimator": {Platform: "broadwell", Mode: "ddr", Kernel: "Stream", Footprint: 1 << 20, Estimator: "psychic"},
		"unknown platform":  {Platform: "vax", Mode: "ddr", Kernel: "Stream", Footprint: 1 << 20},
		"wrong mode":        {Platform: "broadwell", Mode: "flat", Kernel: "Stream", Footprint: 1 << 20},
		"no footprint":      {Platform: "broadwell", Mode: "ddr", Kernel: "Stream"},
		"both families":     {Platform: "broadwell", Mode: "ddr", Kernel: "Stream", Footprint: 1 << 20, Kind: "GEMM", N: 512, NB: 128},
		"neither family":    {Platform: "broadwell", Mode: "ddr"},
		"bad blocking":      {Platform: "broadwell", Mode: "ddr", Kind: "GEMM", N: 128, NB: 512},
		"unknown class":     {Platform: "broadwell", Mode: "ddr", Kind: "GEMM", N: 512, NB: 128, Class: "vip"},
	} {
		if w := postQuery(t, h, "/v1/query", q); w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", name, w.Code, w.Body)
		}
	}
	if w := postQuery(t, h, "/v1/sweep", SweepRequest{}); w.Code != http.StatusBadRequest {
		t.Fatalf("empty sweep status %d, want 400", w.Code)
	}
	if w := getPath(t, h, "/v1/stats"); w.Code != http.StatusOK {
		t.Fatalf("stats status %d: %s", w.Code, w.Body)
	}
	if w := getPath(t, h, "/v1/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz status %d, want 200 while serving", w.Code)
	}
}
