// Package serve is the long-running query daemon over the paper's
// cell space (cmd/opmserve): "what does kernel K at footprint F cost
// on platform P in OPM mode X?" answered at production latency. The
// request path is layered (DESIGN.md §13):
//
//	hot set  →  journal  →  admission  →  router  →  compute
//
// An in-memory LRU hot set keyed by store content digests sits in
// front of the journal — hits serve the exact bytes a batch run
// journaled and never touch disk or the worker pool. Journal hits
// promote into the hot set. Misses pass token-bucket admission control
// (per-class rates, bounded wait queue, 429 + Retry-After on overflow)
// and a pluggable router — round-robin, least-loaded, or
// cache-affinity — onto a pool of persistent sweep workers whose
// pooled simulators stay warm across requests. Computed cells are
// journaled under the same digests the batch sweeps use, so the daemon
// and opmbench warm each other.
//
// Twin-first answering ("estimator": "twin-first") responds from the
// analytic twin within its calibrated error bound and enqueues the
// exact computation in the background; once the refinement commits,
// the same digest serves the exact value. Provisional answers live
// only in the hot set, flagged — the journal never aliases twin bytes
// under an exact digest (DESIGN.md §11).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/twin"
)

// Config assembles a Server. Zero values select sane defaults; only
// Store is meaningfully optional (a store-less daemon computes every
// cold query and remembers it only in the hot set).
type Config struct {
	// Store is the persistent result journal (nil = memory only).
	Store *store.Store
	// Registry receives serve metrics (nil = telemetry off).
	Registry *obs.Registry
	// Tracer records per-request causal chains that join batch job
	// chains on the same cells (nil = tracing off).
	Tracer *obs.Tracer
	// Policy is the retry/breaker policy cold computes run under. For
	// a daemon, set BreakerCooldown so tripped families recover.
	Policy *resilience.Policy
	// Workers is the persistent worker pool size (default 4).
	Workers int
	// HotSet is the LRU capacity in cells (default 4096).
	HotSet int
	// Router selects the shard policy: "affinity" (default),
	// "least-loaded", or "round-robin".
	Router string
	// Classes overrides the admission classes (default
	// DefaultClasses).
	Classes map[string]ClassConfig
	// TwinMaxErr is the auto estimator's tolerance (default 0.10).
	TwinMaxErr float64
	// BaseContext is the root context background work — batch sweep
	// jobs and twin-first refinements — runs under. The server derives
	// a cancellable child from it, cancelled when Drain gives up, so an
	// interrupted drain never strands headless goroutines computing
	// forever. Nil means a process-lifetime root.
	BaseContext context.Context
}

// Server is the daemon: an http.Handler plus the serving layers.
type Server struct {
	st   *store.Store
	reg  *obs.Registry
	tr   *obs.Tracer
	eng  *sweep.Engine
	hot  *hotSet
	adm  *admission
	pool *workerPool
	cat  *catalog

	estimators map[string]core.Estimator
	bounds     map[string]float64 // twin.Family → calibrated MAPE
	policy     *resilience.Policy

	breakerMu sync.Mutex
	breakers  map[string]*resilience.Breaker // per kernel family

	refineMu sync.Mutex
	refining map[string]bool // exact digests with a refinement in flight

	jobs *jobTable

	drainMu  sync.RWMutex
	draining atomic.Bool
	inflight sync.WaitGroup

	// base is the detached context background work (sweep jobs,
	// refinements) runs under; cancelBase fires when a drain is
	// interrupted so that work stops instead of leaking.
	base       context.Context
	cancelBase context.CancelFunc

	startNS int64
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	route, err := newRouter(cfg.Router)
	if err != nil {
		return nil, err
	}
	adm, err := newAdmission(cfg.Classes)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	maxErr := cfg.TwinMaxErr
	if maxErr <= 0 {
		maxErr = 0.10
	}
	auto, err := twin.Select("auto", maxErr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		st:  cfg.Store,
		reg: cfg.Registry,
		tr:  cfg.Tracer,
		eng: &sweep.Engine{Obs: cfg.Registry, Trace: cfg.Tracer, Policy: cfg.Policy},
		hot: newHotSet(cfg.HotSet),
		adm: adm,
		cat: newCatalog(),
		estimators: map[string]core.Estimator{
			"exact": core.Exact,
			"twin":  twin.Estimator{},
			"auto":  auto,
		},
		bounds:   map[string]float64{},
		policy:   cfg.Policy,
		breakers: map[string]*resilience.Breaker{},
		refining: map[string]bool{},
		jobs:     newJobTable(64),
		startNS:  nowNS(),
	}
	base := cfg.BaseContext
	if base == nil {
		base = context.Background() //opmlint:allow ctxflow — the daemon's process-lifetime root when the owner injects no BaseContext; Drain cancels the derived child
	}
	s.base, s.cancelBase = context.WithCancel(base)
	for fam, b := range twin.DefaultBounds() {
		s.bounds[fam] = b
	}
	// Pre-register every class's SLO histogram so /metrics/prom carries
	// the full class roster from the first scrape, not on first traffic.
	for _, name := range adm.names() {
		s.reg.Histogram("serve/latency/" + name) //opmlint:allow counternames — class names are the closed admission-config set validated by newAdmission
	}
	s.pool = newWorkerPool(workers, route)
	return s, nil
}

// observeClass records one request's end-to-end latency in its
// admission class's SLO histogram. Unknown classes are dropped rather
// than minting metric names from client input — hot-set hits skip
// admission, so a typo'd class can reach here without being rejected.
func (s *Server) observeClass(class string, d time.Duration) {
	if !s.adm.has(class) {
		return
	}
	s.reg.Histogram("serve/latency/" + class).Observe(d) //opmlint:allow counternames — the class set is closed server configuration, validated by newAdmission
}

func nowNS() int64 {
	return time.Now().UnixNano() //opmlint:allow determinism — serving latency and uptime are telemetry, never inputs to results
}

// Handler returns the daemon's HTTP mux: the v1 API plus the obs
// metrics endpoints, so one listener serves queries and scrapes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/query", s.timed("serve/latency/query", s.handleQuery))
	mux.Handle("POST /v1/sweep", s.timed("serve/latency/sweep", s.handleSweep))
	mux.Handle("GET /v1/jobs/{id}", s.timed("serve/latency/jobs", s.handleJob))
	mux.Handle("GET /v1/healthz", s.timed("serve/latency/healthz", s.handleHealthz))
	mux.Handle("GET /v1/stats", s.timed("serve/latency/stats", s.handleStats))
	mux.Handle("GET /metrics", obs.MetricsHandler(s.reg, nil))
	mux.Handle("GET /metrics/prom", obs.PromHandler(s.reg))
	return mux
}

// timed wraps a handler with its route's latency histogram.
func (s *Server) timed(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := nowNS()
		h(w, r)
		s.reg.Histogram(name).Observe(time.Duration(nowNS() - start)) //opmlint:allow counternames — route histogram names are the closed serve/latency/* set passed by Handler
	})
}

// begin registers one unit of accepted work against graceful drain.
// It returns false — and the caller must reject with 503 — once
// draining has begun. Accepted work is never lost: Drain waits for
// every begin to be balanced by done.
func (s *Server) begin() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) done() { s.inflight.Done() }

// Drain gracefully shuts serving down: new requests are rejected with
// 503, every accepted request (including queued admissions, batch
// jobs, and background refinements) runs to completion, then the
// worker pool exits. ctx bounds the wait. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	first := !s.draining.Load()
	s.draining.Store(true)
	s.drainMu.Unlock()
	if !first {
		return nil
	}
	doneC := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(doneC)
	}()
	select {
	case <-doneC:
	case <-ctx.Done():
		// Giving up on the wait must not strand the work: cancel the
		// base context so batch jobs and refinements running under it
		// stop at their next context check instead of computing
		// headless forever. The pool stays open — in-flight tasks may
		// still be enqueuing, and closing under them would panic.
		s.cancelBase()
		return fmt.Errorf("serve: drain interrupted with work in flight: %w", ctx.Err())
	}
	err := s.pool.close(ctx)
	s.cancelBase()
	return err
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleQuery answers one cell.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.begin() {
		httpError(w, http.StatusServiceUnavailable, errors.New("serve: draining"))
		return
	}
	defer s.done()
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding query: %w", err))
		return
	}
	if req.Class == "" {
		req.Class = "interactive"
	}
	resp, err := s.answer(r.Context(), req)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeQueryError maps an answer error onto its status code.
func writeQueryError(w http.ResponseWriter, err error) {
	var over *OverloadError
	switch {
	case errors.As(err, &over):
		secs := int64(over.RetryAfter/time.Second) + 1
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, resilience.ErrBreakerOpen):
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		httpError(w, 499, err) // client went away mid-wait
	default:
		httpError(w, http.StatusBadRequest, err)
	}
}

// answer runs the full serving path for one request. The caller must
// hold a begin() slot.
func (s *Server) answer(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	start := nowNS()
	defer func() {
		s.observeClass(req.Class, time.Duration(nowNS()-start))
	}()
	estName := req.Estimator
	if estName == "" {
		estName = "exact"
	}
	twinFirst := estName == "twin-first"
	canonical := estName
	if twinFirst {
		canonical = "exact"
	}
	est, ok := s.estimators[canonical]
	if !ok {
		return nil, fmt.Errorf("serve: unknown estimator %q (want exact, twin, auto or twin-first)", estName)
	}
	c, err := s.cat.resolve(req, s.eng)
	if err != nil {
		return nil, err
	}
	digest := c.digestFor(est)
	traceID := harness.CellTraceID(digest)
	traceKey := c.expFor(est) + "/" + c.key
	s.tr.Emit(traceID, obs.EvServeRecv, traceKey, -1, 0, "query|"+req.Class)

	// Layer 1: the hot set. Hits never touch disk or the pool.
	lookStart := nowNS()
	if e, ok := s.hot.get(digest); ok {
		s.reg.Counter("serve/hits").Inc()
		s.tr.Emit(traceID, obs.EvServeHot, traceKey, -1, time.Duration(nowNS()-lookStart), e.estimator)
		return s.respond(c, digest, traceID, "hot", e)
	}
	s.reg.Counter("serve/misses").Inc()

	// Layer 2: the journal. Hits promote into the hot set.
	if data, ok := s.st.GetRaw(digest); ok {
		s.reg.Counter("serve/store_hits").Inc()
		e := hotEntry{data: data, estimator: canonical}
		s.hot.add(digest, e)
		s.tr.Emit(traceID, obs.EvStoreHit, traceKey, -1, time.Duration(nowNS()-lookStart), "serve")
		return s.respond(c, digest, traceID, "store", e)
	}

	// Twin-first: answer from the twin inside its calibrated bound and
	// refine to exact in the background.
	if twinFirst {
		if bound, ok := s.bounds[twin.Family(c.kernelName)]; ok {
			return s.answerTwinFirst(ctx, req, c, digest, traceID, traceKey, bound)
		}
		// No calibrated bound to honor — fall through to sync exact.
	}

	// Layers 3–5: admission, router, compute.
	data, _, err := s.computeCell(ctx, c, est, canonical, digest, traceID, traceKey, req.Class)
	if err != nil {
		return nil, err
	}
	e := hotEntry{data: data, estimator: canonical}
	s.hot.add(digest, e)
	return s.respond(c, digest, traceID, "computed", e)
}

// respond renders a response from a cell's stored bytes.
func (s *Server) respond(c *cell, digest, traceID, source string, e hotEntry) (*QueryResponse, error) {
	resp := &QueryResponse{
		Digest:    digest,
		Trace:     traceID,
		Source:    source,
		Estimator: e.estimator,
		Refined:   !e.provisional,
		Cell:      json.RawMessage(e.data),
	}
	if e.provisional {
		resp.ErrBound = e.errBound
	}
	if err := c.render(e.data, resp); err != nil {
		s.reg.Counter("serve/errors").Inc()
		return nil, err
	}
	return resp, nil
}

// admit passes one request through its class's token bucket, emitting
// the admit/reject trace events and counters.
func (s *Server) admit(ctx context.Context, class, traceID, traceKey string) error {
	wait, err := s.adm.acquire(ctx, class)
	if err != nil {
		var over *OverloadError
		if errors.As(err, &over) {
			s.reg.Counter("serve/rejected").Inc()
			s.tr.Emit(traceID, obs.EvReject, traceKey, -1, 0, class)
		}
		return err
	}
	s.reg.Counter("serve/admitted").Inc()
	s.tr.Emit(traceID, obs.EvAdmit, traceKey, -1, wait, class)
	return nil
}

// computeCell runs the admitted cold path: route to a worker shard,
// evaluate under the resilience policy, journal, and return the cell's
// canonical bytes. It emits the same enqueue→dispatch→done chain shape
// batch sweeps emit, so opmprof reads serve chains natively.
func (s *Server) computeCell(ctx context.Context, c *cell, est core.Estimator, estName, digest, traceID, traceKey, class string) ([]byte, int, error) {
	if err := s.admit(ctx, class, traceID, traceKey); err != nil {
		return nil, -1, err
	}
	s.tr.Emit(traceID, obs.EvEnqueue, traceKey, -1, 0, "serve")

	var (
		data []byte
		err  error
	)
	shard, runErr := s.pool.run(ctx, digest, func(w *sweep.Worker) {
		busy := nowNS()
		s.tr.Emit(traceID, obs.EvDispatch, traceKey, w.ID(), 0, "")
		cctx := obs.WithTraceContext(ctx, s.tr, traceID, traceKey, w.ID())
		var v any
		v, err = s.evalWithPolicy(cctx, c, est, w, traceID, traceKey)
		if err != nil {
			s.tr.Emit(traceID, obs.EvError, traceKey, w.ID(), 0, err.Error())
			return
		}
		data, err = json.Marshal(v)
		if err != nil {
			err = fmt.Errorf("serve: encoding cell: %w", err)
			return
		}
		if s.st != nil {
			commit := nowNS()
			//opmlint:allow ctxflow — a journal append must complete once begun; a frame torn by cancellation is exactly the corruption the store guards against
			if perr := s.st.Put(digest, c.expFor(est), c.key, json.RawMessage(data)); perr != nil {
				// A failed checkpoint must slow serving down, never
				// kill it — same contract as the batch sweeps.
				s.reg.Counter("serve/commit_errors").Inc()
			} else {
				s.tr.Emit(traceID, obs.EvStoreCommit, traceKey, w.ID(), time.Duration(nowNS()-commit), "serve")
			}
		}
		s.tr.Emit(traceID, obs.EvDone, traceKey, w.ID(), time.Duration(nowNS()-busy), "")
	})
	if runErr != nil {
		// Cancelled before the task was ever enqueued: the closure did
		// not run and nothing was dispatched or journaled.
		s.reg.Counter("serve/errors").Inc()
		return nil, shard, runErr
	}
	s.tr.Emit(traceID, obs.EvRoute, traceKey, shard, 0, fmt.Sprintf("%s:%d", s.pool.route.name(), shard))
	if err != nil {
		s.reg.Counter("serve/errors").Inc()
		return nil, shard, err
	}
	s.reg.Counter("serve/computed").Inc()
	return data, shard, nil
}

// evalWithPolicy evaluates one cell under the resilience policy: the
// per-family circuit breaker gates the attempt, transient failures
// retry with the policy's deterministic backoff, and the verdict feeds
// the breaker. A nil policy evaluates once, as the batch path does.
func (s *Server) evalWithPolicy(ctx context.Context, c *cell, est core.Estimator, w *sweep.Worker, traceID, traceKey string) (any, error) {
	br := s.breaker(twin.Family(c.kernelName))
	if !br.Allow() {
		s.tr.Emit(traceID, obs.EvBreakerOpen, traceKey, w.ID(), 0, "short-circuit")
		s.reg.Counter("serve/breaker_rejects").Inc()
		return nil, fmt.Errorf("serve: family %s: %w", twin.Family(c.kernelName), resilience.ErrBreakerOpen)
	}
	attempts := s.policy.Attempts()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		v, err := c.compute(ctx, w, est)
		if err == nil {
			br.Success()
			return v, nil
		}
		lastErr = err
		if attempt < attempts && s.policy.Retryable(err) {
			s.reg.Counter("serve/retries").Inc()
			d := s.policy.Backoff(c.key, attempt)
			s.tr.Emit(traceID, obs.EvRetry, traceKey, w.ID(), d, err.Error())
			if serr := s.policy.SleepBackoff(ctx, d); serr != nil {
				lastErr = serr
				break
			}
			continue
		}
		break
	}
	if br.Failure() {
		s.tr.Emit(traceID, obs.EvBreakerOpen, traceKey, w.ID(), 0, "tripped")
	}
	return nil, lastErr
}

// breaker returns (creating if needed) the family's circuit breaker.
// Nil when the policy disables breaking — resilience.Breaker is
// nil-safe.
func (s *Server) breaker(family string) *resilience.Breaker {
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	br, ok := s.breakers[family]
	if !ok {
		br = s.policy.NewBreaker()
		s.breakers[family] = br
	}
	return br
}

// answerTwinFirst serves the provisional twin answer inline and
// enqueues the exact refinement. The twin value is journaled under its
// own twin digest (it is a legitimate twin cell); only the hot set
// holds it under the exact digest, flagged provisional.
func (s *Server) answerTwinFirst(ctx context.Context, req QueryRequest, c *cell, exactDigest, traceID, traceKey string, bound float64) (*QueryResponse, error) {
	if err := s.admit(ctx, req.Class, traceID, traceKey); err != nil {
		return nil, err
	}
	twinEst := s.estimators["twin"]
	twinDigest := c.digestFor(twinEst)

	// The twin is analytic — microseconds, no pooled simulator — so it
	// runs inline on the request goroutine.
	data, ok := s.st.GetRaw(twinDigest)
	if !ok {
		cctx := obs.WithTraceContext(ctx, s.tr, traceID, traceKey, -1)
		v, err := c.compute(cctx, nil, twinEst)
		if err != nil {
			s.reg.Counter("serve/errors").Inc()
			return nil, err
		}
		data, err = json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("serve: encoding twin cell: %w", err)
		}
		if s.st != nil {
			//opmlint:allow ctxflow — a journal append must complete once begun; a frame torn by cancellation is exactly the corruption the store guards against
			if perr := s.st.Put(twinDigest, c.expFor(twinEst), c.key, json.RawMessage(data)); perr != nil {
				s.reg.Counter("serve/commit_errors").Inc()
			}
		}
	}
	s.reg.Counter("serve/computed").Inc()
	e := hotEntry{data: data, estimator: "twin", provisional: true, errBound: bound}
	s.hot.add(exactDigest, e)
	s.spawnRefinement(req, c, exactDigest, traceID, traceKey)
	return s.respond(c, exactDigest, traceID, "computed", e)
}

// spawnRefinement starts (at most one) background exact computation
// for an exact digest. The refinement holds a drain slot, admits under
// the "refine" class, computes through the pool, journals under the
// exact digest, and replaces the provisional hot-set entry — after
// which the same digest serves the exact value.
func (s *Server) spawnRefinement(req QueryRequest, c *cell, exactDigest, traceID, traceKey string) {
	s.refineMu.Lock()
	if s.refining[exactDigest] {
		s.refineMu.Unlock()
		return
	}
	s.refining[exactDigest] = true
	s.refineMu.Unlock()
	if !s.begin() {
		// Draining: the provisional answer stands; no refinement is
		// accepted (and none was promised to the caller).
		s.refineMu.Lock()
		delete(s.refining, exactDigest)
		s.refineMu.Unlock()
		return
	}
	go func() {
		defer s.done()
		defer func() {
			s.refineMu.Lock()
			delete(s.refining, exactDigest)
			s.refineMu.Unlock()
		}()
		start := nowNS()
		// The request that triggered the refinement may be long gone;
		// the refinement runs under the server's base context instead,
		// so an interrupted Drain can still cancel it.
		data, _, err := s.computeCell(s.base, c, s.estimators["exact"], "exact",
			exactDigest, traceID, traceKey, "refine")
		s.observeClass("refine", time.Duration(nowNS()-start))
		if err != nil {
			s.reg.Counter("serve/refine_errors").Inc()
			return
		}
		s.hot.add(exactDigest, hotEntry{data: data, estimator: "exact"})
		s.reg.Counter("serve/refinements").Inc()
		s.tr.Emit(traceID, obs.EvRefine, traceKey, -1, time.Duration(nowNS()-start), "committed")
	}()
}

// WaitRefinements blocks until no refinement is in flight — a test
// and shutdown hook (Drain also waits for them via the inflight
// group).
func (s *Server) WaitRefinements(ctx context.Context) error {
	for {
		s.refineMu.Lock()
		n := len(s.refining)
		s.refineMu.Unlock()
		if n == 0 {
			return nil
		}
		if err := sleepCtx(ctx, 2*time.Millisecond); err != nil {
			return err
		}
	}
}

// handleHealthz reports liveness; a draining daemon answers 503 so
// load balancers stop sending traffic before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleStats reports the serving posture: cache occupancy, pool
// shape, uptime, and job counts. Detailed counters live on /metrics.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := map[string]any{
		"uptime_seconds": float64(nowNS()-s.startNS) / 1e9,
		"draining":       s.Draining(),
		"hot_set": map[string]any{
			"entries": s.hot.len(),
			"cap":     s.hot.cap,
		},
		"workers": s.pool.size(),
		"router":  s.pool.route.name(),
		"loads":   s.pool.snapshot(),
		"jobs":    s.jobs.counts(),
	}
	if s.st != nil {
		st := s.st.Stats()
		stats["store"] = map[string]any{
			"live": s.st.Len(), "hits": st.Hits, "misses": st.Misses,
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) //opmlint:allow errdiscard — the status line is already committed; an encode error means the client hung up and there is no channel left to report on
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
