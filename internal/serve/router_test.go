package serve

import (
	"context"
	"sync"
	"testing"

	"repro/internal/sweep"
)

func TestNewRouterNames(t *testing.T) {
	for _, tc := range []struct{ flag, name string }{
		{"", "affinity"},
		{"affinity", "affinity"},
		{"least-loaded", "least-loaded"},
		{"round-robin", "round-robin"},
	} {
		r, err := newRouter(tc.flag)
		if err != nil {
			t.Fatalf("newRouter(%q): %v", tc.flag, err)
		}
		if r.name() != tc.name {
			t.Fatalf("newRouter(%q).name() = %q, want %q", tc.flag, r.name(), tc.name)
		}
	}
	if _, err := newRouter("random"); err == nil {
		t.Fatal("unknown router accepted")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	r := &roundRobinRouter{}
	loads := make([]int64, 3)
	for i := 0; i < 7; i++ {
		if got, want := r.pick("k", loads), i%3; got != want {
			t.Fatalf("pick %d = %d, want %d", i, got, want)
		}
	}
}

func TestLeastLoadedPicksMinimum(t *testing.T) {
	r := leastLoadedRouter{}
	if got := r.pick("k", []int64{3, 1, 2}); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
	// Ties break to the lowest index — deterministic under equal load.
	if got := r.pick("k", []int64{2, 0, 0}); got != 1 {
		t.Fatalf("tie pick = %d, want 1", got)
	}
}

func TestAffinityStickyAndEviction(t *testing.T) {
	r := &affinityRouter{shards: map[string]int{}, cap: 2}
	// New key routes by load...
	if got := r.pick("a", []int64{5, 0, 0}); got != 1 {
		t.Fatalf("first pick = %d, want least-loaded 1", got)
	}
	// ...and sticks there regardless of later load.
	if got := r.pick("a", []int64{0, 9, 0}); got != 1 {
		t.Fatalf("sticky pick = %d, want 1", got)
	}
	// FIFO eviction past cap: a and b fill the map, c evicts a.
	r.pick("b", []int64{0, 9, 9})
	r.pick("c", []int64{9, 9, 0})
	if got := r.pick("a", []int64{9, 0, 9}); got != 1 {
		t.Fatalf("evicted key re-pick = %d, want least-loaded 1", got)
	}
}

func TestWorkerPoolRunsOnPickedShard(t *testing.T) {
	pool := newWorkerPool(3, &roundRobinRouter{})
	var mu sync.Mutex
	seen := map[int]int{} // worker ID → runs
	for i := 0; i < 6; i++ {
		shard, err := pool.run(context.Background(), "k", func(w *sweep.Worker) {
			mu.Lock()
			seen[w.ID()]++
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if shard < 0 || shard >= 3 {
			t.Fatalf("run returned shard %d outside pool", shard)
		}
	}
	for id := 0; id < 3; id++ {
		if seen[id] != 2 {
			t.Fatalf("round-robin shard %d ran %d tasks, want 2 (seen %v)", id, seen[id], seen)
		}
	}
	for i, l := range pool.snapshot() {
		if l != 0 {
			t.Fatalf("shard %d load %d after quiesce, want 0", i, l)
		}
	}
	if err := pool.close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
}
