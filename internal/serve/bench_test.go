package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
)

// BenchmarkServeHotPath measures the full request path of a hot-set
// hit — mux, decode, catalog resolve, digest, LRU lookup, render,
// encode — which the ISSUE gates sub-millisecond. The single warm-up
// request computes the cell; every timed iteration is a hot hit.
func BenchmarkServeHotPath(b *testing.B) {
	reg := obs.NewRegistry()
	srv, err := New(Config{Registry: reg, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	body := []byte(`{"platform":"broadwell","mode":"edram","kind":"GEMM","n":2048,"nb":256}`)

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body)))
	if w.Code != http.StatusOK {
		b.Fatalf("warm-up status %d: %s", w.Code, w.Body)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body)))
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
	b.StopTimer()
	if reg.Counter("serve/hits").Value() < int64(b.N) {
		b.Fatalf("hot path missed: %d hits for %d iterations",
			reg.Counter("serve/hits").Value(), b.N)
	}
}
