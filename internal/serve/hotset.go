package serve

import (
	"container/list"
	"sync"
)

// hotEntry is one cached cell in the hot set: the verbatim store
// payload plus the serving metadata the response renders from.
type hotEntry struct {
	// data is the cell's JSON exactly as the store journals it — a
	// hot-set hit serves the same bytes a journal hit would.
	data []byte
	// estimator is the mode that produced data ("exact", "twin", ...).
	estimator string
	// provisional marks a twin-first answer parked under the exact
	// digest while its background refinement runs. Provisional entries
	// never reach the persistent store under that digest — the journal
	// only ever holds twin values under twin digests and exact values
	// under exact digests (DESIGN.md §11); the aliasing is confined to
	// this in-memory layer and is labelled in every response.
	provisional bool
	// errBound is the calibrated family error bound a provisional
	// answer carries (fraction, e.g. 0.054).
	errBound float64
}

// hotSet is the in-memory LRU in front of the journal, keyed by store
// content digests. Hits never touch disk or the worker pool. All
// methods are safe for concurrent use.
type hotSet struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element
	lru   *list.List // front = most recently used
}

type hotItem struct {
	digest string
	e      hotEntry
}

func newHotSet(capacity int) *hotSet {
	if capacity <= 0 {
		capacity = 4096
	}
	return &hotSet{cap: capacity, items: make(map[string]*list.Element), lru: list.New()}
}

// get returns the entry under digest, promoting it to most recently
// used.
func (h *hotSet) get(digest string) (hotEntry, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	el, ok := h.items[digest]
	if !ok {
		return hotEntry{}, false
	}
	h.lru.MoveToFront(el)
	return el.Value.(*hotItem).e, true
}

// add inserts or replaces the entry under digest and evicts from the
// cold end past capacity. A refined (non-provisional) entry always
// replaces a provisional one; a provisional entry never downgrades an
// existing refined one — a twin-first race can only improve the cache.
func (h *hotSet) add(digest string, e hotEntry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.items[digest]; ok {
		it := el.Value.(*hotItem)
		if e.provisional && !it.e.provisional {
			h.lru.MoveToFront(el)
			return
		}
		it.e = e
		h.lru.MoveToFront(el)
		return
	}
	h.items[digest] = h.lru.PushFront(&hotItem{digest: digest, e: e})
	for h.lru.Len() > h.cap {
		old := h.lru.Back()
		h.lru.Remove(old)
		delete(h.items, old.Value.(*hotItem).digest)
	}
}

// len returns the live entry count.
func (h *hotSet) len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lru.Len()
}
