package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sweep"
)

// The router picks which persistent worker shard runs a cold cell.
// Workers pool one simulator per machine configuration (sweep.Worker),
// so shard choice is a cache decision: a digest that previously landed
// on a warm shard finds its pooled simulators hot.

// router is the pluggable shard-selection policy.
type router interface {
	name() string
	// pick returns a shard index in [0, len(loads)); loads is the
	// current queued+running depth per shard.
	pick(key string, loads []int64) int
}

// newRouter builds the policy named by the -router flag.
func newRouter(name string) (router, error) {
	switch name {
	case "", "affinity":
		return &affinityRouter{shards: map[string]int{}, cap: 1 << 16}, nil
	case "least-loaded":
		return leastLoadedRouter{}, nil
	case "round-robin":
		return &roundRobinRouter{}, nil
	}
	return nil, fmt.Errorf("serve: unknown router %q (want affinity, least-loaded or round-robin)", name)
}

// roundRobinRouter cycles shards regardless of key or load.
type roundRobinRouter struct{ next atomic.Uint64 }

func (r *roundRobinRouter) name() string { return "round-robin" }
func (r *roundRobinRouter) pick(_ string, loads []int64) int {
	return int((r.next.Add(1) - 1) % uint64(len(loads)))
}

// leastLoadedRouter picks the minimum-depth shard, lowest index on
// ties — deterministic under equal load.
type leastLoadedRouter struct{}

func (leastLoadedRouter) name() string { return "least-loaded" }
func (leastLoadedRouter) pick(_ string, loads []int64) int {
	best := 0
	for i, l := range loads {
		if l < loads[best] {
			best = i
		}
	}
	return best
}

// affinityRouter routes a digest back to the shard that computed it
// last (warm pooled simulators), falling back to least-loaded for new
// digests. The digest→shard map is bounded by FIFO eviction, so a
// digest churned out of the map simply re-routes by load.
type affinityRouter struct {
	mu     sync.Mutex
	shards map[string]int
	ring   []string
	head   int
	cap    int
}

func (r *affinityRouter) name() string { return "affinity" }

func (r *affinityRouter) pick(key string, loads []int64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard, ok := r.shards[key]; ok && shard < len(loads) {
		return shard
	}
	shard := leastLoadedRouter{}.pick(key, loads)
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, key)
	} else {
		delete(r.shards, r.ring[r.head])
		r.ring[r.head] = key
		r.head = (r.head + 1) % r.cap
	}
	r.shards[key] = shard
	return shard
}

// task is one unit of work submitted to a shard.
type task struct {
	fn   func(w *sweep.Worker)
	done chan struct{}
}

// workerPool is the fixed set of persistent sweep workers the router
// schedules over. Each shard owns one sweep.Worker for its goroutine's
// lifetime, so pooled simulators stay warm across requests — the whole
// point of affinity routing.
type workerPool struct {
	route  router
	queues []chan *task
	loads  []atomic.Int64
	wg     sync.WaitGroup
}

func newWorkerPool(n int, route router) *workerPool {
	if n < 1 {
		n = 1
	}
	p := &workerPool{
		route:  route,
		queues: make([]chan *task, n),
		loads:  make([]atomic.Int64, n),
	}
	for i := 0; i < n; i++ {
		q := make(chan *task, 1024)
		p.queues[i] = q
		p.wg.Add(1)
		go func(shard int, q chan *task) {
			defer p.wg.Done()
			w := sweep.NewWorker(shard)
			for t := range q {
				t.fn(w)
				p.loads[shard].Add(-1)
				close(t.done)
			}
		}(i, q)
	}
	return p
}

func (p *workerPool) size() int { return len(p.queues) }

func (p *workerPool) snapshot() []int64 {
	out := make([]int64, len(p.loads))
	for i := range p.loads {
		out[i] = p.loads[i].Load()
	}
	return out
}

// run executes fn on the shard the router picks for key and waits for
// it to finish, returning the shard. Admission control bounds how many
// callers can be here at once, so the per-shard queues cannot grow
// unboundedly. ctx bounds the enqueue: a caller cancelled while its
// shard's queue is full gets ctx's error back and fn never runs. Once
// the task is enqueued the completion wait is unconditional — the
// shard goroutine drains its queue in order, and fn itself observes
// ctx — so fn has always finished (or never started) when run returns
// and the caller may read fn's captured results without racing.
func (p *workerPool) run(ctx context.Context, key string, fn func(w *sweep.Worker)) (int, error) {
	if err := ctx.Err(); err != nil {
		return -1, err
	}
	shard := p.route.pick(key, p.snapshot())
	p.loads[shard].Add(1)
	t := &task{fn: fn, done: make(chan struct{})}
	select {
	case p.queues[shard] <- t:
	case <-ctx.Done():
		p.loads[shard].Add(-1)
		return shard, ctx.Err()
	}
	<-t.done
	return shard, nil
}

// close shuts the shards down after in-flight tasks finish. The caller
// must guarantee no further run calls (the server drains first). ctx
// bounds the wait for the shard goroutines to exit.
func (p *workerPool) close(ctx context.Context) error {
	for _, q := range p.queues {
		close(q)
	}
	exited := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(exited)
	}()
	select {
	case <-exited:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: worker pool shutdown interrupted: %w", ctx.Err())
	}
}
