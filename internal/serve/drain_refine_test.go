package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/store"
)

// Graceful drain vs background exact refinements: an accepted
// refinement either completes and commits before Drain returns, or —
// when drain has already begun — is dropped cleanly without ever
// touching the journal. There is no third state where a drain
// interleaves with a half-written refinement commit.

// TestServeDrainWaitsForRefinement proves the commit half: a
// twin-first refinement holds its drain slot from the moment it is
// accepted (before the triggering request even returns), so a Drain
// racing it blocks until the exact cell is journaled — and the journal
// it leaves behind reopens with zero corruption and no torn tail.
func TestServeDrainWaitsForRefinement(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	st, err := store.Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := New(Config{Store: st, Registry: reg, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	const fp = int64(1 << 20)
	q := QueryRequest{Platform: "broadwell", Mode: "edram", Kernel: "Stream",
		Footprint: fp, Estimator: "twin-first"}
	decodeQuery(t, postQuery(t, h, "/v1/query", q))

	// The refinement was accepted synchronously inside the query, so
	// Drain must now wait for its commit — no WaitRefinements first.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if v := reg.Counter("serve/refinements").Value(); v != 1 {
		t.Fatalf("drain returned with serve/refinements = %d, want 1", v)
	}

	spec, err := harness.NewCurveSpec("broadwell")
	if err != nil {
		t.Fatal(err)
	}
	exactDigest := harness.CellDigest(core.Exact, harness.CurveSweepID("Stream"),
		spec.ConfigHash(), harness.CurveCellKey(fp))
	if _, ok := st.GetRaw(exactDigest); !ok {
		t.Fatal("drain returned before the refinement journaled the exact cell")
	}

	// The journal the drained daemon leaves behind is clean: a
	// read-only scan finds every committed frame intact — the twin
	// cell and the exact refinement — with no torn tail.
	entries, stats, err := store.ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corrupt != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("post-drain journal damaged: %+v", stats)
	}
	if len(entries) != 2 {
		t.Fatalf("post-drain journal holds %d entries, want twin + exact", len(entries))
	}
	found := false
	for _, e := range entries {
		if e.Digest == exactDigest {
			found = true
		}
	}
	if !found {
		t.Fatal("exact refinement missing from the scanned journal")
	}
}

// TestServeDrainDropsUnstartedRefinement proves the drop half: once
// drain has begun, a refinement that has not yet claimed its slot is
// refused by begin() and vanishes without a trace — no goroutine, no
// refining entry, no journal write, not even a partial one.
func TestServeDrainDropsUnstartedRefinement(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	st, err := store.Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := New(Config{Store: st, Registry: reg, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Reach under the HTTP layer: the server is draining, and a
	// twin-first answer tries to spawn its refinement anyway.
	req := QueryRequest{Platform: "broadwell", Mode: "edram", Kernel: "Stream",
		Footprint: 1 << 20, Estimator: "twin-first"}
	c, err := srv.cat.resolve(req, srv.eng)
	if err != nil {
		t.Fatal(err)
	}
	exactDigest := c.digestFor(srv.estimators["exact"])
	srv.spawnRefinement(req, c, exactDigest, "trace-drop", "key-drop")

	// Dropped cleanly: no in-flight marker survives, WaitRefinements
	// has nothing to wait for, and nothing was committed or even
	// started against the journal.
	if err := srv.WaitRefinements(ctx); err != nil {
		t.Fatal(err)
	}
	srv.refineMu.Lock()
	pending := len(srv.refining)
	srv.refineMu.Unlock()
	if pending != 0 {
		t.Fatalf("%d refinements marked in flight after drop", pending)
	}
	if v := reg.Counter("serve/refinements").Value(); v != 0 {
		t.Fatalf("dropped refinement committed: counter = %d", v)
	}
	if st.Len() != 0 {
		t.Fatalf("dropped refinement wrote %d cells", st.Len())
	}
	entries, stats, err := store.ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || stats.Corrupt != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("dropped refinement touched the journal: %d entries, %+v", len(entries), stats)
	}
}
