package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// admClock is a manual clock wired into a bucket's nowNS seam.
type admClock struct {
	mu sync.Mutex
	ns int64
}

func (c *admClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *admClock) advance(d time.Duration) {
	c.mu.Lock()
	c.ns += int64(d)
	c.mu.Unlock()
}

// testBucket builds a bucket on a manual clock whose sleep records the
// requested durations without actually sleeping.
func testBucket(rate float64, burst, queue int) (*bucket, *admClock, *[]time.Duration) {
	clk := &admClock{}
	sleeps := &[]time.Duration{}
	b := &bucket{
		rate:   rate,
		burst:  float64(burst),
		queue:  queue,
		tokens: float64(burst),
		nowNS:  clk.now,
		sleep: func(_ context.Context, d time.Duration) error {
			*sleeps = append(*sleeps, d)
			return nil
		},
	}
	return b, clk, sleeps
}

func within(t *testing.T, got, want, tol time.Duration, what string) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > tol {
		t.Fatalf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestBucketBurstThenReserve(t *testing.T) {
	b, _, sleeps := testBucket(10, 2, 8)
	ctx := context.Background()

	// The burst admits instantly, no sleep.
	for i := 0; i < 2; i++ {
		wait, err := b.acquire(ctx, "c")
		if err != nil || wait != 0 {
			t.Fatalf("burst acquire %d: wait=%v err=%v", i, wait, err)
		}
	}
	if len(*sleeps) != 0 {
		t.Fatalf("burst acquires slept: %v", *sleeps)
	}

	// Empty bucket: each waiter reserves the next refill instant, FIFO.
	wait, err := b.acquire(ctx, "c")
	if err != nil {
		t.Fatal(err)
	}
	within(t, wait, 100*time.Millisecond, time.Millisecond, "first reserved wait")
	wait, err = b.acquire(ctx, "c")
	if err != nil {
		t.Fatal(err)
	}
	within(t, wait, 200*time.Millisecond, time.Millisecond, "second reserved wait")
	if len(*sleeps) != 2 {
		t.Fatalf("reserved acquires slept %d times, want 2", len(*sleeps))
	}
}

func TestBucketRefill(t *testing.T) {
	b, clk, _ := testBucket(10, 1, 8)
	ctx := context.Background()
	if _, err := b.acquire(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	clk.advance(100 * time.Millisecond) // exactly one token back
	wait, err := b.acquire(ctx, "c")
	if err != nil || wait != 0 {
		t.Fatalf("post-refill acquire: wait=%v err=%v, want instant", wait, err)
	}
	// Refill never exceeds the burst depth.
	clk.advance(time.Hour)
	b.mu.Lock()
	b.refillLocked()
	tokens := b.tokens
	b.mu.Unlock()
	if tokens != 1 {
		t.Fatalf("tokens after long idle = %g, want burst cap 1", tokens)
	}
}

func TestBucketOverflowRejectsWithRetryAfter(t *testing.T) {
	b, _, _ := testBucket(10, 1, 1)
	release := make(chan struct{})
	b.sleep = func(context.Context, time.Duration) error {
		<-release
		return nil
	}
	ctx := context.Background()

	if _, err := b.acquire(ctx, "c"); err != nil { // burst token
		t.Fatal(err)
	}
	waiterDone := make(chan error, 1)
	go func() {
		_, err := b.acquire(ctx, "c") // fills the queue
		waiterDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		waiting := b.waiting
		b.mu.Unlock()
		if waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: the third arrival is rejected immediately with the
	// backlog-drain estimate (waiting+1 - tokens)/rate = (1+1+1)/10.
	_, err := b.acquire(ctx, "c")
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("overflow returned %v, want *OverloadError", err)
	}
	if over.Class != "c" {
		t.Fatalf("OverloadError.Class = %q, want %q", over.Class, "c")
	}
	within(t, over.RetryAfter, 300*time.Millisecond, time.Millisecond, "RetryAfter")

	close(release)
	if err := <-waiterDone; err != nil {
		t.Fatalf("queued waiter failed: %v", err)
	}
}

func TestBucketCancelReturnsReservation(t *testing.T) {
	b, _, _ := testBucket(10, 1, 8)
	b.sleep = func(context.Context, time.Duration) error { return context.Canceled }
	ctx := context.Background()
	if _, err := b.acquire(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.acquire(ctx, "c"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire returned %v, want context.Canceled", err)
	}
	b.mu.Lock()
	tokens, waiting := b.tokens, b.waiting
	b.mu.Unlock()
	if tokens != 0 || waiting != 0 {
		t.Fatalf("after cancel tokens=%g waiting=%d, want reservation returned (0, 0)", tokens, waiting)
	}
}

func TestAdmissionClassValidation(t *testing.T) {
	if _, err := newAdmission(map[string]ClassConfig{"x": {Rate: 0}}); err == nil {
		t.Fatal("zero-rate class accepted")
	}
	a, err := newAdmission(nil) // defaults
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"interactive", "batch", "refine"} {
		if _, ok := a.classes[class]; !ok {
			t.Fatalf("default class %q missing", class)
		}
	}
	if _, err := a.acquire(context.Background(), "no-such-class"); err == nil {
		t.Fatal("unknown class admitted")
	}
}
