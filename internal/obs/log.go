package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a structured logger writing to w at the given
// level, as logfmt-style text or JSON. Telemetry logs go to stderr by
// convention so they never contaminate rendered reports on stdout.
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// nopHandler drops every record without formatting it.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

var nopLogger = slog.New(nopHandler{})

// NopLogger returns a logger that discards everything with Enabled
// always false, so disabled logging skips argument evaluation cost in
// slog's fast path.
func NopLogger() *slog.Logger { return nopLogger }
