package obs

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"
)

// Manifest is the provenance record attached to a run: what built and
// drove it, on what, with which configuration. It rides in the
// -metrics JSON dump (and on harness reports) but never in the
// deterministic report bytes — two runs of the same configuration
// produce identical reports and distinct manifests.
type Manifest struct {
	// Tool names the producer (e.g. "opmbench").
	Tool string `json:"tool"`
	// GoVersion, GOOS and GOARCH identify the toolchain and platform.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS is the runtime's processor limit at manifest creation.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Workers is the sweep engine's configured pool bound (0 means
	// GOMAXPROCS).
	Workers int `json:"workers"`
	// Machines is the platform/mode matrix available to the run
	// ("broadwell/ddr", "knl/flat", ...).
	Machines []string `json:"machines,omitempty"`
	// ConfigHash fingerprints the run's options (see Hash) so reports
	// from different configurations are never conflated.
	ConfigHash string `json:"config_hash"`
	// Start and End bound the run's wall clock; End is the zero time
	// until Finish is called.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// WallMS is End-Start in milliseconds (0 until Finish).
	WallMS int64 `json:"wall_ms"`
}

// NewManifest records the runtime environment and starts the clock.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Tool:       tool,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Start:      time.Now(), //opmlint:allow determinism — provenance timestamp; manifests ride beside reports and never enter the compared bytes
	}
}

// Finish stamps the end of the run. Safe on a nil manifest.
func (m *Manifest) Finish() {
	if m == nil {
		return
	}
	m.End = time.Now() //opmlint:allow determinism — provenance timestamp; manifests ride beside reports and never enter the compared bytes
	m.WallMS = m.End.Sub(m.Start).Milliseconds()
}

// Hash fingerprints a configuration: FNV-1a over the %#v rendering of
// each value, hex-encoded. Stable across runs of one binary for
// comparable values (structs of scalars, strings, slices) — enough to
// tell two sweep configurations apart in archived metrics dumps.
func Hash(vals ...any) string {
	h := fnv.New64a()
	for _, v := range vals {
		fmt.Fprintf(h, "%#v;", v)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
