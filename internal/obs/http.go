package obs

import (
	"bytes"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// MetricsHandler serves the registry (plus manifest, may both be nil)
// as the same JSON document -metrics writes, so a long sweep can be
// inspected live with curl while it runs.
//
// The snapshot renders into a buffer first: a marshal failure can then
// still become a proper 500, and a failed response write — a client
// hanging up mid-scrape, not a server bug — is counted on
// obs/http_write_errors instead of being silently discarded or
// uselessly http.Error'd after the headers already went out.
func MetricsHandler(r *Registry, manifest func() *Manifest) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var m *Manifest
		if manifest != nil {
			m = manifest()
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf, m); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(buf.Bytes()); err != nil {
			r.Counter("obs/http_write_errors").Inc()
		}
	})
}

var expvarOnce sync.Once

// PublishExpvar exposes the registry under the expvar name "opm" (on
// /debug/vars). Only the first registry published wins — expvar names
// are process-global and re-publishing panics — which matches the
// one-registry-per-process CLI usage.
func PublishExpvar(r *Registry) {
	if r == nil {
		return
	}
	expvarOnce.Do(func() {
		expvar.Publish("opm", expvar.Func(func() any { return r.Snapshot() }))
	})
}

// Serve starts a debug HTTP server on addr exposing net/http/pprof
// (/debug/pprof/), expvar (/debug/vars, including the registry under
// "opm"), the live registry dump (/metrics), and the Prometheus
// text-exposition rendering (/metrics/prom). It returns the server
// and its bound address (useful with ":0") and never blocks; Close the
// server to stop it. The handlers are mounted on a private mux so
// importing this package does not pollute http.DefaultServeMux.
func Serve(addr string, r *Registry, manifest func() *Manifest) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	PublishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", MetricsHandler(r, manifest))
	mux.Handle("/metrics/prom", PromHandler(r))
	srv := &http.Server{Handler: mux}
	//opmlint:allow goroleak — http.Server.Serve exits when the returned *http.Server is Closed; the caller owns that lifecycle
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return srv, ln.Addr(), nil
}
