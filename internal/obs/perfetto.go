package obs

// Chrome trace-event (Perfetto-loadable) export. The format is the
// JSON object form — {"traceEvents": [...]} — using "X" complete
// events for each job's dispatch→end slice on its worker's track, "i"
// instant events for the intermediate chain steps (attempts, retries,
// fault fires, escalations, store ops), and "M" metadata records
// naming the process and threads. Load the output at ui.perfetto.dev
// or chrome://tracing; timestamps are microseconds from the tracer's
// epoch.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// chromeEvent is one trace-event record. Fields follow the Chrome
// trace-event format spec; Ph is the phase ("X" complete, "i" instant,
// "M" metadata).
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"` // µs
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope: "t" thread
	Args  map[string]any `json:"args,omitempty"`
}

const (
	perfettoPID = 1
	// Store hits never touch a worker; they render on a synthetic
	// track after the last real worker's.
	hitsTrackOffset = 1
)

// WriteChromeTrace renders a trace as Chrome trace-event JSON. Each
// job chain becomes a complete event spanning dispatch→end on its
// worker's thread track (cache hits land on a dedicated "store hits"
// track), and every intermediate event becomes a thread-scoped instant
// so retries, fault fires, and estimator escalations are visible on
// the timeline. Deterministic traces render byte-identically.
func WriteChromeTrace(w io.Writer, events []Event) error {
	p := AnalyzeTrace(events)

	maxWorker := -1
	for _, ws := range p.Workers {
		if ws.Worker > maxWorker {
			maxWorker = ws.Worker
		}
	}
	hitsTID := maxWorker + hitsTrackOffset + 1
	tid := func(worker int) int {
		if worker < 0 {
			return hitsTID
		}
		return worker
	}

	out := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: perfettoPID,
		Args: map[string]any{"name": "opm sweep"},
	}}
	tids := map[int]bool{}
	for _, ws := range p.Workers {
		tids[tid(ws.Worker)] = true
	}
	tidList := make([]int, 0, len(tids))
	for t := range tids {
		tidList = append(tidList, t)
	}
	sort.Ints(tidList)
	for _, t := range tidList {
		name := fmt.Sprintf("worker %d", t)
		if t == hitsTID {
			name = "store hits"
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: perfettoPID, TID: t,
			Args: map[string]any{"name": name},
		})
	}

	for _, c := range p.Chains {
		t := tid(c.Worker)
		start := c.StartNS + c.QueueNS // dispatch time
		dur := c.EndNS - start
		if dur < 0 {
			dur = 0
		}
		name := c.Job
		if name == "" {
			name = c.Trace
		}
		args := map[string]any{
			"trace":    c.Trace,
			"queue_us": float64(c.QueueNS) / 1e3,
		}
		if c.CacheHit {
			args["cache"] = "hit"
		}
		if c.Failed {
			args["error"] = c.Detail
		}
		if c.Retries > 0 {
			args["retries"] = c.Retries
		}
		out = append(out, chromeEvent{
			Name: name, Ph: "X",
			TS: float64(start) / 1e3, Dur: float64(dur) / 1e3,
			PID: perfettoPID, TID: t, Args: args,
		})
		for _, ev := range c.Events {
			switch ev.Name {
			case EvEnqueue, EvDispatch, EvDone, EvError:
				continue // represented by the slice itself
			}
			out = append(out, chromeEvent{
				Name: ev.Name, Ph: "i", Scope: "t",
				TS:  float64(ev.TSNS) / 1e3,
				PID: perfettoPID, TID: t,
				Args: map[string]any{"trace": ev.Trace, "detail": ev.Detail},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{out})
}

// WriteChromeTraceFile writes the Perfetto-loadable rendering of
// events to path.
func WriteChromeTraceFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	werr := WriteChromeTrace(f, events)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("obs: writing %s: %w", path, werr)
	}
	return nil
}
