package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// spanStat aggregates every End() of one span path.
type spanStat struct {
	count atomic.Int64
	ns    atomic.Int64
}

// Span measures the wall time of one phase of a run. Spans are
// hierarchical by path: "exp/fig9" is the parent of "exp/fig9/sweep",
// and SpanReport renders the nesting with per-phase shares. Unlike a
// tracing system, spans here aggregate — ending two spans with the
// same path accumulates count and total time, which is exactly what a
// sweep of thousands of identical jobs needs.
type Span struct {
	reg   *Registry
	path  string
	start time.Time
}

// StartSpan begins a span at the given slash-separated path. On a nil
// registry it returns a nil span whose methods all no-op, so phase
// timing costs nothing when telemetry is off.
func (r *Registry) StartSpan(path string) *Span {
	if r == nil {
		return nil
	}
	// This is the obs layer's one legitimate clock start: span timing is
	// reported to operators and dumped in snapshots, and nothing in this
	// package feeds the deterministic report bytes (see package doc).
	return &Span{reg: r, path: path, start: time.Now()} //opmlint:allow determinism — span wall time is telemetry output only, never an input to simulated results
}

// Child starts a sub-span nested under this span's path. Safe on a
// nil span (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.reg.StartSpan(s.path + "/" + name) //opmlint:allow counternames — forwarding helper: the child name constant is checked at the Child call site
}

// End records the span's wall time into its registry and returns it.
// Safe on a nil span (returns 0). A span may be ended once; ending it
// again records a second interval from the same start.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start) //opmlint:allow determinism — span wall time is telemetry output only, never an input to simulated results
	s.reg.mu.RLock()
	st, ok := s.reg.spans[s.path]
	s.reg.mu.RUnlock()
	if !ok {
		s.reg.mu.Lock()
		st, ok = s.reg.spans[s.path]
		if !ok {
			st = &spanStat{}
			s.reg.spans[s.path] = st
		}
		s.reg.mu.Unlock()
	}
	st.count.Add(1)
	st.ns.Add(int64(d))
	return d
}

// SpanSnapshot is the aggregate of one span path.
type SpanSnapshot struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
	MeanNS  int64 `json:"mean_ns"`
}

// SpanReport renders the recorded spans as an indented tree with total
// time, invocation count, and each span's share of its parent — the
// per-phase wall-time breakdown of a finished run. Returns "" when no
// spans were recorded (or on a nil registry).
func (r *Registry) SpanReport() string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	type row struct {
		path  string
		count int64
		ns    int64
	}
	rows := make([]row, 0, len(r.spans))
	for p, st := range r.spans {
		rows = append(rows, row{p, st.count.Load(), st.ns.Load()})
	}
	r.mu.RUnlock()
	if len(rows) == 0 {
		return ""
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].path < rows[j].path })
	total := map[string]int64{}
	for _, rw := range rows {
		total[rw.path] = rw.ns
	}
	var b strings.Builder
	b.WriteString("phase breakdown (wall time):\n")
	for _, rw := range rows {
		depth := strings.Count(rw.path, "/")
		name := rw.path
		share := ""
		if i := strings.LastIndex(rw.path, "/"); i >= 0 {
			name = rw.path[i+1:]
			if pt, ok := total[rw.path[:i]]; ok && pt > 0 {
				share = fmt.Sprintf(" (%.0f%% of %s)", 100*float64(rw.ns)/float64(pt), rw.path[:i])
			}
		}
		fmt.Fprintf(&b, "  %s%-24s %10s  ×%d%s\n",
			strings.Repeat("  ", depth), name,
			time.Duration(rw.ns).Round(time.Microsecond), rw.count, share)
	}
	return b.String()
}
