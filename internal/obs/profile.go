package obs

// Trace analysis: reconstruct per-job chains and per-worker timelines
// from a flat event stream and attribute wall time to phases — queue
// wait, compute, store I/O, retry backoff. This is the paper's
// phase-attribution methodology applied to the reproduction's own
// runtime: "where did the wall-clock go" answered from the same event
// stream Perfetto renders. cmd/opmprof is a thin CLI over this file.

import (
	"fmt"
	"sort"
)

// JobChain is one reconstructed occurrence of a traced job: its event
// chain in emission order plus derived phase attribution.
type JobChain struct {
	Trace  string // stable trace ID (digest-derived for store-backed sweeps)
	Job    string // human job key
	Worker int    // worker that ran it; -1 for store hits served inline

	StartNS int64 // enqueue timestamp (first event's TS)
	EndNS   int64 // done/error timestamp (last event's TS)

	QueueNS   int64 // enqueue → dispatch
	BackoffNS int64 // sum of retry backoff durations
	StoreNS   int64 // sum of store lookup/commit durations
	ComputeNS int64 // busy time minus backoff and store time

	Attempts    int // resilient attempts started
	Retries     int // backoff sleeps taken
	Faults      int // injected fault fires
	Escalations int // twin→exact escalations
	CacheHit    bool
	Failed      bool
	Detail      string // error text when Failed

	Events []Event
}

// WallNS is the chain's end-to-end wall time (enqueue to done).
func (c *JobChain) WallNS() int64 { return c.EndNS - c.StartNS }

// WorkerStat aggregates one worker's share of a trace.
type WorkerStat struct {
	Worker int
	Jobs   int
	BusyNS int64 // sum of dispatch→end per job
}

// TraceProfile is the analysis of one trace: every job chain plus the
// aggregate phase breakdown and per-worker timeline stats.
type TraceProfile struct {
	Chains  []*JobChain
	Workers []WorkerStat // sorted by worker ID; hits (worker -1) first

	Jobs       int
	Hits       int
	Failures   int
	MakespanNS int64 // first enqueue → last end across the trace

	QueueNS   int64 // phase totals summed over chains
	ComputeNS int64
	StoreNS   int64
	BackoffNS int64
}

// AnalyzeTrace reconstructs job chains from a flat event stream. Events
// are processed in Seq order; a chain opens at EvEnqueue (a second
// enqueue for the same trace ID — the same content digest recomputed in
// a later sweep — opens a new occurrence) and closes at EvDone/EvError.
// Chains are returned in order of their first event, so the analysis of
// a deterministic trace is deterministic.
func AnalyzeTrace(events []Event) *TraceProfile {
	evs := make([]Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })

	p := &TraceProfile{}
	open := map[string]*JobChain{} // trace ID → currently open occurrence
	var dispatch = map[string]int64{}

	for _, ev := range evs {
		c := open[ev.Trace]
		if ev.Name == EvEnqueue || c == nil {
			// EvEnqueue always opens a fresh occurrence; any other event
			// with no open chain (ring truncated its enqueue) opens a
			// partial one so nothing is silently dropped.
			c = &JobChain{Trace: ev.Trace, Job: ev.Job, Worker: ev.Worker, StartNS: ev.TSNS}
			open[ev.Trace] = c
			p.Chains = append(p.Chains, c)
		}
		c.Events = append(c.Events, ev)
		c.EndNS = ev.TSNS
		if ev.Job != "" {
			c.Job = ev.Job
		}
		if ev.Worker >= 0 {
			c.Worker = ev.Worker
		}
		switch ev.Name {
		case EvDispatch:
			c.QueueNS = ev.TSNS - c.StartNS
			dispatch[ev.Trace] = ev.TSNS
		case EvAttempt:
			c.Attempts++
		case EvRetry:
			c.Retries++
			c.BackoffNS += ev.DurNS
		case EvFault:
			c.Faults++
		case EvEscalate:
			c.Escalations++
		case EvStoreHit:
			c.CacheHit = true
			c.StoreNS += ev.DurNS
		case EvStoreMiss, EvStoreCommit:
			c.StoreNS += ev.DurNS
		case EvDone, EvError:
			if ev.Name == EvError {
				c.Failed = true
				c.Detail = ev.Detail
			}
			busy := ev.DurNS
			if busy == 0 {
				if d, ok := dispatch[ev.Trace]; ok {
					busy = ev.TSNS - d
				}
			}
			c.ComputeNS = busy - c.BackoffNS - c.StoreNS
			if c.ComputeNS < 0 {
				c.ComputeNS = 0
			}
			delete(open, ev.Trace)
			delete(dispatch, ev.Trace)
		}
	}

	byWorker := map[int]*WorkerStat{}
	var first, last int64
	for i, c := range p.Chains {
		if i == 0 || c.StartNS < first {
			first = c.StartNS
		}
		if c.EndNS > last {
			last = c.EndNS
		}
		p.Jobs++
		if c.CacheHit {
			p.Hits++
		}
		if c.Failed {
			p.Failures++
		}
		p.QueueNS += c.QueueNS
		p.ComputeNS += c.ComputeNS
		p.StoreNS += c.StoreNS
		p.BackoffNS += c.BackoffNS
		ws := byWorker[c.Worker]
		if ws == nil {
			ws = &WorkerStat{Worker: c.Worker}
			byWorker[c.Worker] = ws
		}
		ws.Jobs++
		ws.BusyNS += c.ComputeNS + c.BackoffNS + c.StoreNS
	}
	p.MakespanNS = last - first
	for _, ws := range byWorker {
		p.Workers = append(p.Workers, *ws)
	}
	sort.Slice(p.Workers, func(i, j int) bool { return p.Workers[i].Worker < p.Workers[j].Worker })
	return p
}

// CriticalPath returns the chain that finished last — the job whose
// completion set the sweep's makespan. Nil on an empty trace. Ties
// break toward the earlier chain, keeping the answer deterministic.
func (p *TraceProfile) CriticalPath() *JobChain {
	var crit *JobChain
	for _, c := range p.Chains {
		if crit == nil || c.EndNS > crit.EndNS {
			crit = c
		}
	}
	return crit
}

// TopSlowest returns up to k chains by descending wall time, ties
// broken by first-event order (stable and deterministic).
func (p *TraceProfile) TopSlowest(k int) []*JobChain {
	out := make([]*JobChain, len(p.Chains))
	copy(out, p.Chains)
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallNS() > out[j].WallNS() })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// PhaseBreakdown returns the trace's wall-time attribution as
// (label, ns) pairs in fixed order — the opmprof table.
func (p *TraceProfile) PhaseBreakdown() []struct {
	Label string
	NS    int64
} {
	return []struct {
		Label string
		NS    int64
	}{
		{"queue", p.QueueNS},
		{"compute", p.ComputeNS},
		{"store", p.StoreNS},
		{"retry-backoff", p.BackoffNS},
	}
}

// FmtNS renders nanoseconds human-readably (µs/ms/s) for opmprof
// output.
func FmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
