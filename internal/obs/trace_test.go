package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestTracerNilIsOff pins the off switch: every tracer method and the
// context helpers must be safe no-ops on a nil tracer, and a context
// with no trace bound must make TraceEvent free of side effects.
func TestTracerNilIsOff(t *testing.T) {
	var tr *Tracer
	tr.Emit("t", EvDone, "j", 0, 0, "")
	tr.SinkTo(&bytes.Buffer{})
	if err := tr.SinkFile(""); err == nil {
		t.Fatal("SinkFile on nil tracer must error, not silently drop the sink")
	}
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer Events = %v, want nil", got)
	}
	if tr.Emitted() != 0 || tr.Dropped() != 0 || tr.NextSweep() != 0 {
		t.Fatal("nil tracer counters not zero")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := WithTraceContext(context.Background(), nil, "id", "job", 0)
	if ctx != context.Background() {
		t.Fatal("WithTraceContext with nil tracer must return ctx unchanged")
	}
	TraceEvent(ctx, EvDone, "") // must not panic
}

// TestTracerRingOrderAndOverflow checks the bounded ring: events come
// back oldest-first with gapless 1-based Seq, and once full the ring
// overwrites the oldest event while Dropped and Emitted keep the true
// totals.
func TestTracerRingOrderAndOverflow(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit("t", EvAttempt, "j", 0, 0, "")
	}
	if got := tr.Emitted(); got != 10 {
		t.Fatalf("Emitted = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d Seq = %d, want %d (oldest-first)", i, ev.Seq, want)
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TSNS < evs[i-1].TSNS {
			t.Fatalf("timestamps ran backwards: %d then %d", evs[i-1].TSNS, evs[i].TSNS)
		}
	}
}

// TestTracerSinkRoundTrip writes a chain through the JSONL sink and
// reads it back: every field survives, and the in-memory ring and the
// sink agree.
func TestTracerSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(16)
	tr.SinkTo(&buf)
	tr.Emit("abc", EvEnqueue, "mat/a", -1, 0, "")
	tr.Emit("abc", EvDispatch, "mat/a", 2, 0, "")
	tr.Emit("abc", EvRetry, "mat/a", 2, 50*time.Microsecond, "transient")
	tr.Emit("abc", EvDone, "mat/a", 2, time.Millisecond, "")
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("sink replayed %d events, ring holds %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d diverged:\nsink %+v\nring %+v", i, got[i], want[i])
		}
	}
	if got[2].DurNS != int64(50*time.Microsecond) || got[2].Detail != "transient" {
		t.Fatalf("retry event lost payload: %+v", got[2])
	}
}

// TestReadTraceRejectsMalformed pins the line-numbered decode error.
func TestReadTraceRejectsMalformed(t *testing.T) {
	in := `{"seq":1,"ts_ns":1,"trace":"a","name":"job/enqueue","worker":-1}

not json
`
	_, err := ReadTrace(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("malformed line 3 not reported: %v", err)
	}
}

// TestTraceIDStable pins the trace-ID derivation: stable across calls,
// 16 hex digits, and length-prefixed so part boundaries matter.
func TestTraceIDStable(t *testing.T) {
	a := TraceID("store", "deadbeef")
	if a != TraceID("store", "deadbeef") {
		t.Fatal("TraceID not deterministic")
	}
	if len(a) != 16 {
		t.Fatalf("TraceID length = %d, want 16 hex digits", len(a))
	}
	if a == TraceID("stored", "eadbeef") {
		t.Fatal("TraceID collides across shifted part boundaries")
	}
	if TraceID("sweep", "1", "job", "2") == TraceID("sweep", "1", "job", "3") {
		t.Fatal("distinct jobs share a trace ID")
	}
}

// TestTraceContextPlumbing checks the ambient-context path end to end:
// an event emitted through TraceEventDur lands in the ring carrying the
// bound identity.
func TestTraceContextPlumbing(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTraceContext(context.Background(), tr, "id1", "matrix/x", 3)
	TraceEvent(ctx, EvEstimator, "twin")
	TraceEventDur(ctx, EvStoreCommit, 2*time.Millisecond, "")
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("emitted %d events, want 2", len(evs))
	}
	if evs[0].Trace != "id1" || evs[0].Job != "matrix/x" || evs[0].Worker != 3 ||
		evs[0].Name != EvEstimator || evs[0].Detail != "twin" {
		t.Fatalf("context identity lost: %+v", evs[0])
	}
	if evs[1].DurNS != int64(2*time.Millisecond) {
		t.Fatalf("duration lost: %+v", evs[1])
	}
}

// TestHistogramQuantiles checks the pow2-bucket quantile estimates
// against a known distribution: estimates must land within their
// sample's bucket and clamp to the observed min/max.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test/lat")
	// 100 samples at 1ms, 10 at 100ms: p50 ≈ 1ms bucket, p99 ≈ 100ms.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := r.Snapshot().Histograms["test/lat"]
	if s.P50NS <= 0 || s.P50NS > int64(2*time.Millisecond) {
		t.Fatalf("p50 = %v, want within the 1ms bucket", time.Duration(s.P50NS))
	}
	if s.P99NS < int64(50*time.Millisecond) || s.P99NS > s.MaxNS {
		t.Fatalf("p99 = %v, want within the 100ms bucket and <= max", time.Duration(s.P99NS))
	}
	if s.P50NS > s.P95NS || s.P95NS > s.P99NS {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d", s.P50NS, s.P95NS, s.P99NS)
	}
	if got := s.Quantile(0); got != s.MinNS {
		t.Fatalf("Quantile(0) = %d, want MinNS %d", got, s.MinNS)
	}
	if got := s.Quantile(1); got != s.MaxNS {
		t.Fatalf("Quantile(1) = %d, want MaxNS %d", got, s.MaxNS)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %d, want 0", got)
	}
}

// TestWriteProm checks the exposition rendering: nil-safe, counters
// get _total, histograms render as summaries with the three quantile
// series, spans as path-labelled totals, and label values escape.
func TestWriteProm(t *testing.T) {
	var nilReg *Registry
	var buf bytes.Buffer
	if err := nilReg.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", buf.String(), err)
	}

	r := NewRegistry()
	r.Counter("sweep/jobs").Add(7)
	r.Gauge("sweep/workers").Set(4)
	r.Histogram("sweep/job_latency").Observe(time.Millisecond)
	sp := r.StartSpan("exp/fig9")
	sp.End()
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE opm_sweep_jobs_total counter\nopm_sweep_jobs_total 7\n",
		"# TYPE opm_sweep_workers gauge\nopm_sweep_workers 4\n",
		"# HELP opm_sweep_job_latency_seconds ",
		"# TYPE opm_sweep_job_latency_seconds summary\n",
		`opm_sweep_job_latency_seconds{quantile="0.5"}`,
		`opm_sweep_job_latency_seconds{quantile="0.95"}`,
		`opm_sweep_job_latency_seconds{quantile="0.99"}`,
		"opm_sweep_job_latency_seconds_count 1\n",
		`opm_span_seconds_total{path="exp/fig9"}`,
		`opm_span_invocations_total{path="exp/fig9"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value" with a parseable value.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("line %q value %q not numeric: %v", line, line[i+1:], err)
		}
	}
	if promEscape("a\"b\\c\nd") != `a\"b\\c\nd` {
		t.Fatalf("promEscape wrong: %q", promEscape("a\"b\\c\nd"))
	}
	// Label values escape structurally — a hostile span path cannot
	// break the line format.
	hostile := NewRegistry()
	hostile.StartSpan("exp/evil\"path\n2").End()
	buf.Reset()
	if err := hostile.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `opm_span_invocations_total{path="exp/evil\"path\n2"} 1`; !strings.Contains(buf.String(), want) {
		t.Fatalf("hostile label not escaped, want %q in:\n%s", want, buf.String())
	}
}

// TestAnalyzeTrace builds a synthetic two-job trace — one clean job,
// one with a retry, a fault, a store commit and an escalation — and
// checks the reconstructed chains, phase attribution, critical path
// and top-k ordering.
func TestAnalyzeTrace(t *testing.T) {
	evs := []Event{
		{Seq: 1, TSNS: 0, Trace: "a", Name: EvEnqueue, Job: "ja", Worker: -1},
		{Seq: 2, TSNS: 10, Trace: "b", Name: EvEnqueue, Job: "jb", Worker: -1},
		{Seq: 3, TSNS: 100, Trace: "a", Name: EvDispatch, Job: "ja", Worker: 0},
		{Seq: 4, TSNS: 110, Trace: "b", Name: EvDispatch, Job: "jb", Worker: 1},
		{Seq: 5, TSNS: 120, Trace: "a", Name: EvAttempt, Job: "ja", Worker: 0, Detail: "1"},
		{Seq: 6, TSNS: 130, Trace: "b", Name: EvAttempt, Job: "jb", Worker: 1, Detail: "1"},
		{Seq: 7, TSNS: 140, Trace: "b", Name: EvFault, Job: "jb", Worker: 1, Detail: "job:transient"},
		{Seq: 8, TSNS: 150, Trace: "b", Name: EvRetry, Job: "jb", Worker: 1, DurNS: 200, Detail: "boom"},
		{Seq: 9, TSNS: 360, Trace: "b", Name: EvAttempt, Job: "jb", Worker: 1, Detail: "2"},
		{Seq: 10, TSNS: 400, Trace: "a", Name: EvEstimator, Job: "ja", Worker: 0, Detail: "twin"},
		{Seq: 11, TSNS: 420, Trace: "b", Name: EvEscalate, Job: "jb", Worker: 1, Detail: "sptrsv"},
		{Seq: 12, TSNS: 500, Trace: "a", Name: EvDone, Job: "ja", Worker: 0, DurNS: 400},
		{Seq: 13, TSNS: 600, Trace: "b", Name: EvStoreCommit, Job: "jb", Worker: 1, DurNS: 50},
		{Seq: 14, TSNS: 700, Trace: "b", Name: EvDone, Job: "jb", Worker: 1, DurNS: 590},
	}
	p := AnalyzeTrace(evs)
	if p.Jobs != 2 || p.Failures != 0 || p.Hits != 0 {
		t.Fatalf("jobs=%d failures=%d hits=%d, want 2/0/0", p.Jobs, p.Failures, p.Hits)
	}
	if p.MakespanNS != 700 {
		t.Fatalf("makespan = %d, want 700", p.MakespanNS)
	}
	a, b := p.Chains[0], p.Chains[1]
	if a.Trace != "a" || b.Trace != "b" {
		t.Fatalf("chains out of first-event order: %s, %s", a.Trace, b.Trace)
	}
	if a.QueueNS != 100 || b.QueueNS != 100 {
		t.Fatalf("queue attribution: a=%d b=%d, want 100/100", a.QueueNS, b.QueueNS)
	}
	if a.ComputeNS != 400 {
		t.Fatalf("clean job compute = %d, want its 400ns busy time", a.ComputeNS)
	}
	if b.Retries != 1 || b.BackoffNS != 200 || b.Faults != 1 || b.Escalations != 1 {
		t.Fatalf("faulted chain: %+v", b)
	}
	if b.StoreNS != 50 || b.ComputeNS != 590-200-50 {
		t.Fatalf("faulted compute = %d store = %d, want 340/50", b.ComputeNS, b.StoreNS)
	}
	if crit := p.CriticalPath(); crit.Trace != "b" {
		t.Fatalf("critical path = %s, want b (last to finish)", crit.Trace)
	}
	if top := p.TopSlowest(1); len(top) != 1 || top[0].Trace != "b" {
		t.Fatalf("TopSlowest(1) = %v", top)
	}
	phases := p.PhaseBreakdown()
	if phases[0].Label != "queue" || phases[0].NS != 200 ||
		phases[3].Label != "retry-backoff" || phases[3].NS != 200 {
		t.Fatalf("phase breakdown: %+v", phases)
	}
}

// TestAnalyzeTraceReoccurrence checks the warm/cold join: the same
// trace ID enqueued twice (recompute then cache hit) yields two
// occurrences, the second flagged as a hit at worker -1.
func TestAnalyzeTraceReoccurrence(t *testing.T) {
	evs := []Event{
		{Seq: 1, TSNS: 0, Trace: "x", Name: EvEnqueue, Job: "j", Worker: -1},
		{Seq: 2, TSNS: 10, Trace: "x", Name: EvDispatch, Job: "j", Worker: 0},
		{Seq: 3, TSNS: 50, Trace: "x", Name: EvDone, Job: "j", Worker: 0, DurNS: 40},
		{Seq: 4, TSNS: 100, Trace: "x", Name: EvEnqueue, Job: "j", Worker: -1},
		{Seq: 5, TSNS: 110, Trace: "x", Name: EvStoreHit, Job: "j", Worker: -1, DurNS: 5},
		{Seq: 6, TSNS: 115, Trace: "x", Name: EvDone, Job: "j", Worker: -1, Detail: "cache_hit"},
	}
	p := AnalyzeTrace(evs)
	if p.Jobs != 2 || p.Hits != 1 {
		t.Fatalf("jobs=%d hits=%d, want 2 occurrences with 1 hit", p.Jobs, p.Hits)
	}
	if !p.Chains[1].CacheHit || p.Chains[1].Worker != -1 {
		t.Fatalf("second occurrence not a worker -1 hit: %+v", p.Chains[1])
	}
	if p.Chains[0].CacheHit {
		t.Fatal("cold occurrence marked as hit")
	}
}

// TestWriteChromeTrace checks the Perfetto export shape: a valid JSON
// object with one X slice per chain, thread-name metadata, and instant
// events for intermediate chain steps.
func TestWriteChromeTrace(t *testing.T) {
	evs := []Event{
		{Seq: 1, TSNS: 0, Trace: "a", Name: EvEnqueue, Job: "ja", Worker: -1},
		{Seq: 2, TSNS: 1000, Trace: "a", Name: EvDispatch, Job: "ja", Worker: 0},
		{Seq: 3, TSNS: 2000, Trace: "a", Name: EvEstimator, Job: "ja", Worker: 0, Detail: "exact"},
		{Seq: 4, TSNS: 5000, Trace: "a", Name: EvDone, Job: "ja", Worker: 0, DurNS: 4000},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var slices, instants, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			slices++
			if ev["dur"] == nil {
				t.Fatalf("X slice without dur: %v", ev)
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if slices != 1 || instants != 1 || meta == 0 {
		t.Fatalf("slices=%d instants=%d meta=%d, want 1 slice, 1 instant (estimator), metadata", slices, instants, meta)
	}
}
