package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsNoOp is the zero-cost-when-disabled contract: every
// operation on a nil registry and its nil instruments must be safe.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(3.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge stored")
	}
	h := r.Histogram("z")
	h.Observe(time.Second)
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram observed")
	}
	sp := r.StartSpan("a")
	if d := sp.Child("b").End(); d != 0 {
		t.Fatal("nil span measured time")
	}
	sp.End()
	if s := r.Snapshot(); s.Counters != nil || s.Histograms != nil {
		t.Fatal("nil registry produced a non-empty snapshot")
	}
	if r.SpanReport() != "" {
		t.Fatal("nil registry produced a span report")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountersGaugesAndLookupIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sweep/jobs")
	b := r.Counter("sweep/jobs")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Add(3)
	b.Inc()
	b.AddUint64(2)
	if a.Value() != 6 {
		t.Fatalf("counter = %d, want 6", a.Value())
	}
	b.AddUint64(math.MaxUint64) // saturates instead of wrapping negative
	if a.Value() < 6 {
		t.Fatalf("counter wrapped negative: %d", a.Value())
	}
	g := r.Gauge("util")
	g.Set(0.75)
	if g.Value() != 0.75 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

// TestHistogramBuckets pins the bucket layout: ≤1µs in bucket 0,
// power-of-two upper bounds after, catch-all at the top.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{24 * time.Hour, numBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.d); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
		if tc.want < numBuckets-1 && BucketBound(tc.want) < tc.d {
			t.Errorf("bucket %d bound %v below its member %v", tc.want, BucketBound(tc.want), tc.d)
		}
	}
	h := NewRegistry().Histogram("lat")
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(-time.Second) // clamps to 0
	s := h.snapshot()
	if s.Count != 3 || s.MinNS != 0 || s.MaxNS != int64(3*time.Millisecond) {
		t.Fatalf("snapshot %+v", s)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("bucket counts sum to %d, want 3", total)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("lat")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestSpansAggregateAndReport(t *testing.T) {
	r := NewRegistry()
	exp := r.StartSpan("exp/fig9")
	for i := 0; i < 3; i++ {
		sw := exp.Child("sweep")
		time.Sleep(time.Millisecond)
		if sw.End() <= 0 {
			t.Fatal("span measured nothing")
		}
	}
	exp.End()
	s := r.Snapshot()
	sw, ok := s.Spans["exp/fig9/sweep"]
	if !ok || sw.Count != 3 || sw.TotalNS <= 0 || sw.MeanNS <= 0 {
		t.Fatalf("sweep span %+v (ok=%v)", sw, ok)
	}
	if s.Spans["exp/fig9"].Count != 1 {
		t.Fatalf("parent span %+v", s.Spans["exp/fig9"])
	}
	rep := r.SpanReport()
	if !strings.Contains(rep, "sweep") || !strings.Contains(rep, "×3") ||
		!strings.Contains(rep, "% of exp/fig9") {
		t.Fatalf("span report missing structure:\n%s", rep)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("memsim/l1/hits").Add(42)
	r.Gauge("sweep/worker_utilization").Set(0.9)
	r.Histogram("sweep/job_latency").Observe(2 * time.Millisecond)
	m := NewManifest("test")
	m.Workers = 4
	m.Machines = []string{"broadwell/ddr"}
	m.ConfigHash = Hash(1, "x")
	m.Finish()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["memsim/l1/hits"] != 42 {
		t.Fatalf("counters %+v", s.Counters)
	}
	if s.Gauges["sweep/worker_utilization"] != 0.9 {
		t.Fatalf("gauges %+v", s.Gauges)
	}
	if s.Histograms["sweep/job_latency"].Count != 1 {
		t.Fatalf("histograms %+v", s.Histograms)
	}
	if s.Manifest == nil || s.Manifest.GoVersion == "" || s.Manifest.WallMS < 0 ||
		s.Manifest.Tool != "test" || len(s.Manifest.Machines) != 1 {
		t.Fatalf("manifest %+v", s.Manifest)
	}
}

func TestHashIsStableAndDiscriminating(t *testing.T) {
	if Hash(1, "a") != Hash(1, "a") {
		t.Fatal("hash unstable")
	}
	if Hash(1, "a") == Hash(2, "a") || Hash(1) == Hash(1, "") {
		t.Fatal("hash collides on trivially different configs")
	}
}

func TestParseLevelAndLoggers(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "Info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bad level accepted")
	}
	var buf bytes.Buffer
	NewLogger(&buf, slog.LevelInfo, false).Info("hello", "k", 1)
	if !strings.Contains(buf.String(), "hello") {
		t.Fatal("text logger wrote nothing")
	}
	buf.Reset()
	NewLogger(&buf, slog.LevelInfo, true).Info("hello")
	if !strings.Contains(buf.String(), `"msg":"hello"`) {
		t.Fatalf("json logger output %q", buf.String())
	}
	nop := NopLogger()
	if nop.Enabled(nil, slog.LevelError) { //nolint:staticcheck // nil ctx fine for handler
		t.Fatal("nop logger claims to be enabled")
	}
	nop.Info("dropped")
}

// TestServeEndpoints boots the debug server on an ephemeral port and
// exercises /metrics, /debug/vars and a pprof index fetch.
func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("sweep/jobs").Add(7)
	m := NewManifest("test")
	srv, addr, err := Serve("127.0.0.1:0", r, func() *Manifest { return m })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, `"sweep/jobs": 7`) ||
		!strings.Contains(body, `"tool": "test"`) {
		t.Fatalf("/metrics body:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "opm") {
		t.Fatalf("/debug/vars missing registry:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}
}
