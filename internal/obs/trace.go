package obs

// This file is the causal per-job event tracer: where the metrics
// registry aggregates (how many retries happened), the tracer keeps
// the chain (THIS job retried after THIS fault, then escalated to the
// exact estimator, then committed to the store). Every sweep job emits
// a monotonically-timestamped event chain — enqueue, queue wait,
// dispatch, attempts, retries, breaker decisions, fault fires,
// estimator choice, validation gate, store lookup/commit — into a
// bounded in-memory ring and, optionally, an append-only JSONL sink.
//
// Three invariants, mirroring the registry's:
//
//   - Nil is off. Every method no-ops on a nil *Tracer, and
//     WithTraceContext on a nil tracer returns ctx unchanged, so call
//     sites never branch on "is tracing on".
//
//   - Trace IDs are content-derived. A store-backed sweep derives each
//     job's trace ID from the same content digest that addresses its
//     cached result (sweep.TraceKeyer), so the chain of the run that
//     computed a cell and the chain of every later run that served it
//     from the store share one ID — traces join against cached
//     results. Sweeps without a store fall back to
//     TraceID("sweep", N, "job", i), still stable run to run.
//
//   - Timestamps are telemetry. TSNS is monotonic nanoseconds since
//     the tracer's epoch (Go's time.Since uses the monotonic clock),
//     so within one trace the chain never runs backwards; but wall
//     time is never fed back into results — traced and untraced runs
//     render byte-identical reports (DESIGN.md §12).
//
// Event ordering: Seq is a per-tracer total order assigned under the
// emit lock. The global interleaving of concurrent jobs is
// scheduling-dependent, but the sub-sequence of any single trace ID is
// causal and deterministic — the per-job chain tests pin it.

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Canonical trace event names. Like metric names these are grep-able
// compile-time constants matching [a-z0-9_/]+ (opmlint counternames
// covers Emit/TraceEvent call sites); cmd/opmprof's phase attribution
// keys on them.
const (
	EvEnqueue     = "job/enqueue"        // job submitted to a sweep (worker -1)
	EvDispatch    = "job/dispatch"       // worker picked the job up (TS − enqueue TS = queue wait)
	EvAttempt     = "job/attempt"        // one resilient attempt started (detail: attempt number)
	EvRetry       = "job/retry_backoff"  // backoff sleep before the next attempt (dur: planned backoff)
	EvBreakerOpen = "job/breaker_open"   // circuit breaker tripped or short-circuited this job
	EvDone        = "job/done"           // job finished successfully (dur: dispatch-to-done busy time)
	EvError       = "job/error"          // job failed or was skipped (detail: error)
	EvFault       = "fault/fire"         // chaos injector fired (detail: point:kind)
	EvEstimator   = "estimator/serve"    // estimator choice (detail: exact | twin)
	EvEscalate    = "estimator/escalate" // auto policy escalated twin→exact (detail: kernel family)
	EvGate        = "gate/result"        // validation gate verdict (detail: ok | quarantine)
	EvStoreHit    = "store/hit"          // cache lookup hit — job bypasses the pool (dur: lookup)
	EvStoreMiss   = "store/miss"         // cache lookup missed — job will compute (dur: lookup)
	EvStoreCommit = "store/commit"       // result checkpointed to the store (dur: commit)

	// Serve-daemon request events (internal/serve). They share the
	// cell's store-digest trace ID, so a request chain joins the batch
	// job chains that computed or will compute the same cell.
	EvServeRecv = "serve/recv"    // request arrived (detail: route|class)
	EvServeHot  = "serve/hot_hit" // hot-set hit — served from memory, no disk, no pool (dur: lookup)
	EvAdmit     = "serve/admit"   // admission granted (dur: queue wait, detail: class)
	EvReject    = "serve/reject"  // admission rejected with 429 (detail: class)
	EvRoute     = "serve/route"   // router picked a worker shard (detail: policy:shard)
	EvRefine    = "serve/refine"  // background exact refinement committed (dur: compute)

	// Sharded-execution events (internal/shard). Assign/steal/restart
	// are emitted by the coordinator under the run's trace ID; merge is
	// emitted per cell under the cell's store-digest trace ID, so the
	// coordinator chain joins the worker chains that computed the cell.
	EvShardAssign  = "shard/assign"  // cells partitioned to a shard (detail: shard:count)
	EvShardSteal   = "shard/steal"   // idle slot stole work from the slowest shard (detail: from:to:count)
	EvShardRestart = "shard/restart" // supervisor respawned a dead or stalled worker (detail: shard:generation:cause)
	EvShardMerge   = "shard/merge"   // cell folded into the canonical store (detail: duplicates, or quarantined)
)

// Event is one step of a job's causal chain.
type Event struct {
	// Seq is the tracer-wide emission order (1-based, gapless).
	Seq uint64 `json:"seq"`
	// TSNS is monotonic nanoseconds since the tracer's epoch.
	TSNS int64 `json:"ts_ns"`
	// DurNS is the phase duration some events carry (retry backoff,
	// store lookup/commit, job busy time); 0 for instants.
	DurNS int64 `json:"dur_ns,omitempty"`
	// Trace is the stable job/trace ID the chain groups under.
	Trace string `json:"trace"`
	// Name is one of the Ev* constants.
	Name string `json:"name"`
	// Job is the human job key (matrix name, dense cell, submission
	// index) — what opmprof prints next to the chain.
	Job string `json:"job,omitempty"`
	// Worker is the sweep worker that emitted the event, -1 when no
	// worker is involved (enqueue, store hits).
	Worker int `json:"worker"`
	// Detail is free-form event payload (attempt number, error text,
	// fault point:kind, estimator mode).
	Detail string `json:"detail,omitempty"`
}

// DefaultTraceCapacity bounds the in-memory ring when NewTracer is
// given no explicit capacity: 64k events ≈ a full quick-mode opmbench
// run with chaos on.
const DefaultTraceCapacity = 1 << 16

// Tracer records Events into a bounded ring and an optional JSONL
// sink. All methods are safe for concurrent use and on a nil receiver
// (the off switch).
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	seq     uint64
	ring    []Event
	size    int // live events in ring
	next    int // ring write position
	dropped uint64
	sweeps  uint64
	sink    *bufio.Writer
	sinkF   *os.File
	sinkErr error
}

// NewTracer returns a tracer whose ring holds capacity events
// (capacity <= 0 selects DefaultTraceCapacity). The epoch — the zero
// point of every TSNS — is the moment of construction.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		// The tracer's one epoch read: every event timestamp is a
		// monotonic delta from here, and nothing downstream of a report
		// ever reads it.
		epoch: time.Now(), //opmlint:allow determinism — trace timestamps are telemetry output only, never an input to simulated results
		ring:  make([]Event, capacity),
	}
}

// SinkTo streams every subsequent event as one JSON line to w (in
// addition to the ring). The caller owns w's lifetime; use Flush or
// Close to drain the internal buffer. No-op on a nil tracer.
func (t *Tracer) SinkTo(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = bufio.NewWriter(w)
	t.mu.Unlock()
}

// SinkFile creates (truncating) path and streams every subsequent
// event to it as JSONL. Close flushes and closes the file.
func (t *Tracer) SinkFile(path string) error {
	if t == nil {
		return fmt.Errorf("obs: SinkFile on nil tracer")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace sink: %w", err)
	}
	t.mu.Lock()
	t.sinkF = f
	t.sink = bufio.NewWriter(f)
	t.mu.Unlock()
	return nil
}

// Emit records one event: trace/job identity, the emitting worker
// (-1 for none), an optional phase duration, and free-form detail.
// Timestamp and sequence number are assigned here, under the lock, so
// Seq order and TSNS order agree. No-op on a nil tracer.
func (t *Tracer) Emit(trace, name, job string, worker int, dur time.Duration, detail string) {
	if t == nil {
		return
	}
	ts := time.Since(t.epoch) //opmlint:allow determinism — trace timestamps are telemetry output only, never an input to simulated results
	t.mu.Lock()
	t.seq++
	ev := Event{Seq: t.seq, TSNS: int64(ts), DurNS: int64(dur),
		Trace: trace, Name: name, Job: job, Worker: worker, Detail: detail}
	if t.size == len(t.ring) {
		t.dropped++
	} else {
		t.size++
	}
	t.ring[t.next] = ev
	t.next = (t.next + 1) % len(t.ring)
	if t.sink != nil && t.sinkErr == nil {
		data, err := json.Marshal(ev)
		if err == nil {
			data = append(data, '\n')
			_, err = t.sink.Write(data)
		}
		// First sink failure sticks and disables the sink: Close
		// surfaces it, and a broken trace file must never slow or fail
		// the sweep it was observing.
		t.sinkErr = err
	}
	t.mu.Unlock()
}

// Events returns the ring's live events, oldest first. The slice is a
// copy. Empty (not nil-panicking) on a nil tracer.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.size)
	start := t.next - t.size
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.size; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Emitted returns the total number of events emitted (including any
// the bounded ring has since dropped). 0 on a nil tracer.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dropped returns how many events the ring overwrote. The JSONL sink,
// when set, still received them. 0 on a nil tracer.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// NextSweep returns a fresh per-tracer sweep sequence number — the
// fallback trace-ID ingredient for sweeps without a content-addressed
// cache. Deterministic as long as sweeps start in a deterministic
// order, which the harness's sequential experiment loop guarantees.
func (t *Tracer) NextSweep() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweeps++
	return t.sweeps
}

// Flush drains the sink's buffer (if any) and reports the first sink
// error. Safe on a nil tracer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Tracer) flushLocked() error {
	if t.sink != nil {
		if err := t.sink.Flush(); err != nil && t.sinkErr == nil {
			t.sinkErr = err
		}
	}
	return t.sinkErr
}

// Close flushes and closes the sink (if SinkFile opened one) and
// reports the first error the sink hit. Safe on a nil tracer.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.flushLocked()
	if t.sinkF != nil {
		if cerr := t.sinkF.Close(); err == nil {
			err = cerr
		}
		t.sinkF = nil
	}
	t.sink = nil
	return err
}

// TraceID derives a stable 16-hex-digit trace ID from its parts,
// length-prefix hashed like store.Digest so distinct part lists never
// collide by concatenation.
func TraceID(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// ReadTrace decodes a JSONL event stream (the SinkFile format). Blank
// lines are skipped; a malformed line fails the read with its line
// number.
func ReadTrace(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		data := sc.Bytes()
		if len(data) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(data, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, nil
}

// ReadTraceFile loads a JSONL trace written by SinkFile.
func ReadTraceFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	defer f.Close() // read-only fd; decode errors surface via ReadTrace
	return ReadTrace(f)
}

// traceCtxKey carries the ambient trace reference through a job's
// context so layers below the sweep engine (estimators, the validation
// gate, the fault injector, store commits) can append to the job's
// chain without new parameters.
type traceCtxKey struct{}

type traceRef struct {
	tr     *Tracer
	id     string
	job    string
	worker int
}

// WithTraceContext binds (tracer, trace ID, job key, worker) into ctx.
// With a nil tracer it returns ctx unchanged, so untraced runs never
// pay for a context wrap.
func WithTraceContext(ctx context.Context, tr *Tracer, id, job string, worker int) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, traceRef{tr: tr, id: id, job: job, worker: worker})
}

// TraceEvent appends an instant event to the chain bound into ctx.
// No-op when ctx carries no trace (the untraced fast path: one failed
// context lookup).
func TraceEvent(ctx context.Context, name, detail string) {
	TraceEventDur(ctx, name, 0, detail)
}

// TraceEventDur is TraceEvent with a phase duration (retry backoff,
// store commit time).
func TraceEventDur(ctx context.Context, name string, dur time.Duration, detail string) {
	ref, ok := ctx.Value(traceCtxKey{}).(traceRef)
	if !ok {
		return
	}
	ref.tr.Emit(ref.id, name, ref.job, ref.worker, dur, detail) //opmlint:allow counternames — forwarding helper: the event-name constant is checked at the TraceEvent/TraceEventDur call site
}
