// Package obs is the reproduction's observability layer: a lightweight
// metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms), hierarchical wall-time spans, structured logging
// helpers, and a run manifest for provenance. The sweep engine, the
// hierarchy simulator and the experiment harness all publish into one
// Registry, and cmd/opmbench dumps it as JSON (-metrics) or serves it
// live next to net/http/pprof (-pprof).
//
// Two invariants shape the design:
//
//   - Zero cost when disabled. Every method is safe on a nil *Registry
//     and on the nil instruments a nil registry hands out, so call
//     sites never branch on "is telemetry on" — the nil receiver IS
//     the off switch, one predictable branch per call.
//
//   - Telemetry lives beside results, never inside them. Nothing in
//     this package feeds the deterministic report bytes (text, CSV,
//     findings) that the parallel==sequential equivalence tests
//     compare; see DESIGN.md.
//
// The hot path (Counter.Add, Gauge.Set, Histogram.Observe) is a single
// atomic operation after instrument lookup; instruments are meant to be
// resolved once per sweep, not once per cell.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds every named instrument of one run. The zero value is
// not useful — use NewRegistry — but a nil *Registry is: every method
// no-ops and hands out nil instruments whose methods also no-op.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*spanStat
}

// NewRegistry returns an empty registry ready for concurrent use.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*spanStat{},
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// AddUint64 increments the counter by n, saturating at the int64
// maximum instead of wrapping — the convenient form for the
// simulator's uint64 traffic counters.
func (c *Counter) AddUint64(n uint64) {
	if c == nil {
		return
	}
	for {
		cur := c.v.Load()
		next := int64(math.MaxInt64)
		if n < math.MaxInt64 && cur <= math.MaxInt64-int64(n) {
			next = cur + int64(n)
		}
		if c.v.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 holding the latest value of some level
// (worker utilization, ETA seconds, queue depth).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// numBuckets is the fixed bucket count of every histogram: bucket i
// spans (1µs·2^(i-1), 1µs·2^i], bucket 0 absorbs everything ≤ 1µs and
// the last bucket is a catch-all (≈ 36 minutes and beyond). Fixed
// power-of-two buckets keep Observe allocation-free and branch-light.
const numBuckets = 32

// Histogram is a fixed-bucket latency histogram with power-of-two
// bucket widths starting at 1µs, plus running sum/count/min/max.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	sum    atomic.Int64 // ns
	count  atomic.Int64
	min    atomic.Int64 // ns; math.MaxInt64 until first observation
	max    atomic.Int64 // ns
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	us := (uint64(d) + uint64(time.Microsecond) - 1) / uint64(time.Microsecond)
	if us <= 1 {
		return 0
	}
	if i := bits.Len64(us - 1); i < numBuckets {
		return i
	}
	return numBuckets - 1
}

// BucketBound returns the inclusive upper bound of bucket i, or a
// negative duration for the final catch-all bucket.
func BucketBound(i int) time.Duration {
	if i >= numBuckets-1 {
		return -1
	}
	return time.Microsecond << i
}

// Observe records one duration. Negative durations clamp to zero.
// No-op on a nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	h.counts[bucketIndex(d)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Mean returns the mean observed duration (0 before any observation).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Counter returns (creating on first use) the named counter, or nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating on first use) the named gauge, or nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating on first use) the named histogram, or
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = newHistogram()
	r.hists[name] = h
	return h
}
