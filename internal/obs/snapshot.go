package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

// BucketSnapshot is one non-empty histogram bucket. LeNS is the
// inclusive upper bound in nanoseconds, -1 for the catch-all bucket.
type BucketSnapshot struct {
	LeNS  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the point-in-time state of one histogram.
// P50NS/P95NS/P99NS are quantile estimates interpolated from the
// power-of-two buckets (see Quantile) — good to roughly a factor of
// two inside a bucket, which is what pow2 buckets buy.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	SumNS   int64            `json:"sum_ns"`
	MinNS   int64            `json:"min_ns"`
	MaxNS   int64            `json:"max_ns"`
	MeanNS  int64            `json:"mean_ns"`
	P50NS   int64            `json:"p50_ns,omitempty"`
	P95NS   int64            `json:"p95_ns,omitempty"`
	P99NS   int64            `json:"p99_ns,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Quantile estimates the q-th quantile (0 < q < 1) in nanoseconds by
// linear interpolation inside the pow2 bucket holding the target rank:
// the bucket spanning (le/2, le] is treated as uniform, the catch-all
// as spanning (largest finite bound, MaxNS]. Estimates clamp to the
// observed [MinNS, MaxNS]; q <= 0 returns MinNS, q >= 1 MaxNS, and an
// empty snapshot 0.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.MinNS
	}
	if q >= 1 {
		return s.MaxNS
	}
	target := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if next >= target {
			lo, hi := bucketRangeNS(b.LeNS, s.MaxNS)
			frac := (target - cum) / float64(b.Count)
			est := int64(float64(lo) + frac*float64(hi-lo))
			if est < s.MinNS {
				est = s.MinNS
			}
			if est > s.MaxNS {
				est = s.MaxNS
			}
			return est
		}
		cum = next
	}
	return s.MaxNS
}

// bucketRangeNS maps a bucket's inclusive upper bound (le, in ns; -1
// for the catch-all) to the (lo, hi] interpolation range. Buckets are
// pow2 from 1µs, so a finite bucket's lower bound is half its upper,
// except bucket 0 which starts at 0.
func bucketRangeNS(le, maxNS int64) (lo, hi int64) {
	if le < 0 {
		lo = int64(BucketBound(numBuckets - 2))
		hi = maxNS
		if hi < lo {
			hi = lo
		}
		return lo, hi
	}
	if le > int64(time.Microsecond) {
		return le / 2, le
	}
	return 0, le
}

// Snapshot is a consistent-enough point-in-time dump of a registry:
// counters and gauges by name, histograms with their non-empty
// buckets, span aggregates, and optionally the run manifest.
// encoding/json renders map keys sorted, so a snapshot of a finished
// run marshals deterministically given deterministic metric values.
type Snapshot struct {
	Manifest   *Manifest                    `json:"manifest,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      map[string]SpanSnapshot      `json:"spans,omitempty"`
}

// Snapshot captures the registry's current state. Safe on a nil
// registry (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	if len(r.spans) > 0 {
		s.Spans = make(map[string]SpanSnapshot, len(r.spans))
		for path, st := range r.spans {
			n, ns := st.count.Load(), st.ns.Load()
			sp := SpanSnapshot{Count: n, TotalNS: ns}
			if n > 0 {
				sp.MeanNS = ns / n
			}
			s.Spans[path] = sp
		}
	}
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumNS: h.sum.Load(),
		MaxNS: h.max.Load(),
	}
	if min := h.min.Load(); min != math.MaxInt64 {
		s.MinNS = min
	}
	if s.Count > 0 {
		s.MeanNS = s.SumNS / s.Count
	}
	for i := 0; i < numBuckets; i++ {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketSnapshot{LeNS: int64(BucketBound(i)), Count: n})
		}
	}
	if s.Count > 0 {
		s.P50NS = s.Quantile(0.50)
		s.P95NS = s.Quantile(0.95)
		s.P99NS = s.Quantile(0.99)
	}
	return s
}

// WriteJSON marshals a snapshot (with the given manifest, which may be
// nil) as indented JSON. Safe on a nil registry — the dump then holds
// only the manifest.
func (r *Registry) WriteJSON(w io.Writer, m *Manifest) error {
	s := r.Snapshot()
	s.Manifest = m
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile dumps the registry (and manifest) to path as JSON.
func (r *Registry) WriteFile(path string, m *Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	werr := r.WriteJSON(f, m)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("obs: writing %s: %w", path, werr)
	}
	return nil
}
