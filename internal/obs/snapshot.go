package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// BucketSnapshot is one non-empty histogram bucket. LeNS is the
// inclusive upper bound in nanoseconds, -1 for the catch-all bucket.
type BucketSnapshot struct {
	LeNS  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the point-in-time state of one histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	SumNS   int64            `json:"sum_ns"`
	MinNS   int64            `json:"min_ns"`
	MaxNS   int64            `json:"max_ns"`
	MeanNS  int64            `json:"mean_ns"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot is a consistent-enough point-in-time dump of a registry:
// counters and gauges by name, histograms with their non-empty
// buckets, span aggregates, and optionally the run manifest.
// encoding/json renders map keys sorted, so a snapshot of a finished
// run marshals deterministically given deterministic metric values.
type Snapshot struct {
	Manifest   *Manifest                    `json:"manifest,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      map[string]SpanSnapshot      `json:"spans,omitempty"`
}

// Snapshot captures the registry's current state. Safe on a nil
// registry (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	if len(r.spans) > 0 {
		s.Spans = make(map[string]SpanSnapshot, len(r.spans))
		for path, st := range r.spans {
			n, ns := st.count.Load(), st.ns.Load()
			sp := SpanSnapshot{Count: n, TotalNS: ns}
			if n > 0 {
				sp.MeanNS = ns / n
			}
			s.Spans[path] = sp
		}
	}
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumNS: h.sum.Load(),
		MaxNS: h.max.Load(),
	}
	if min := h.min.Load(); min != math.MaxInt64 {
		s.MinNS = min
	}
	if s.Count > 0 {
		s.MeanNS = s.SumNS / s.Count
	}
	for i := 0; i < numBuckets; i++ {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketSnapshot{LeNS: int64(BucketBound(i)), Count: n})
		}
	}
	return s
}

// WriteJSON marshals a snapshot (with the given manifest, which may be
// nil) as indented JSON. Safe on a nil registry — the dump then holds
// only the manifest.
func (r *Registry) WriteJSON(w io.Writer, m *Manifest) error {
	s := r.Snapshot()
	s.Manifest = m
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile dumps the registry (and manifest) to path as JSON.
func (r *Registry) WriteFile(path string, m *Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	werr := r.WriteJSON(f, m)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("obs: writing %s: %w", path, werr)
	}
	return nil
}
